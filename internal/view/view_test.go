package view

import (
	"testing"
	"unsafe"
)

type header struct {
	Ino  uint64
	Size uint64
	Gen  uint32
	Flag uint8
}

type pointery struct {
	N    uint64
	Next *pointery
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestOfRoundTrip(t *testing.T) {
	b := make([]byte, 64)
	h := Of[header](b)
	h.Ino = 0xDEADBEEF
	h.Size = 4096
	h.Gen = 7
	h.Flag = 1
	// The view aliases the frame: a second view sees the same values.
	g := Of[header](b)
	if g.Ino != 0xDEADBEEF || g.Size != 4096 || g.Gen != 7 || g.Flag != 1 {
		t.Fatalf("second view read %+v", *g)
	}
	// And the raw bytes changed.
	nonZero := false
	for _, x := range b[:int(unsafe.Sizeof(header{}))] {
		if x != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("writing through the view left the frame all-zero")
	}
}

func TestAtOffset(t *testing.T) {
	b := make([]byte, 64)
	*At[uint64](b, 8) = 42
	if got := *At[uint64](b, 8); got != 42 {
		t.Fatalf("At(8) = %d, want 42", got)
	}
	if got := *At[uint64](b, 0); got != 0 {
		t.Fatalf("At(0) = %d, want 0 (offset write leaked)", got)
	}
}

func TestBoundsChecks(t *testing.T) {
	b := make([]byte, 16)
	mustPanic(t, "Of too small", func() { Of[[32]byte](b) })
	mustPanic(t, "At negative", func() { At[uint64](b, -1) })
	mustPanic(t, "At past end", func() { At[uint64](b, 9) })
	mustPanic(t, "Slice too many", func() { Slice[uint64](b, 3) })
	mustPanic(t, "Slice negative", func() { Slice[uint64](b, -1) })
	// Exactly at the end is fine.
	*At[uint64](b, 8) = 1
	if s := Slice[uint64](b, 2); len(s) != 2 || s[1] != 1 {
		t.Fatalf("Slice = %v", s)
	}
}

func TestAlignmentCheck(t *testing.T) {
	b := make([]byte, 64)
	// make([]byte) is 8-aligned in practice; offset by 1 to misalign.
	mustPanic(t, "misaligned", func() { At[uint64](b, 1) })
}

func TestPointerfulTypesRejected(t *testing.T) {
	b := make([]byte, 64)
	mustPanic(t, "struct with pointer", func() { Of[pointery](b) })
	mustPanic(t, "raw pointer", func() { Of[*int](b) })
	mustPanic(t, "string", func() { Of[string](b) })
	mustPanic(t, "slice", func() { Of[[]byte](b) })
	mustPanic(t, "map", func() { Of[map[int]int](b) })
	mustPanic(t, "array of pointers", func() { Of[[2]*int](b) })
	mustPanic(t, "Slice of pointers", func() { Slice[*int](b, 1) })
	// Rejection is sticky (cached) and repeatable.
	mustPanic(t, "struct with pointer again", func() { Of[pointery](b) })
}

func TestPointerFreeTypesAccepted(t *testing.T) {
	b := make([]byte, 64)
	Of[uint64](b)
	Of[[8]uint32](b)
	Of[header](b)
	Of[struct{ A, B float64 }](b)
}

func TestFits(t *testing.T) {
	b := make([]byte, 64)
	if n := Fits[uint64](b); n != 8 {
		t.Fatalf("Fits[uint64] = %d, want 8", n)
	}
	if n := Fits[header](b); n != 64/int(unsafe.Sizeof(header{})) {
		t.Fatalf("Fits[header] = %d", n)
	}
	mustPanic(t, "Fits pointerful", func() { Fits[*int](b) })
}

func TestZeroAndFill(t *testing.T) {
	b := make([]byte, 33)
	Fill(b, 0xA5)
	for i, x := range b {
		if x != 0xA5 {
			t.Fatalf("Fill missed byte %d", i)
		}
	}
	Zero(b)
	for i, x := range b {
		if x != 0 {
			t.Fatalf("Zero missed byte %d", i)
		}
	}
}

func TestSliceAliases(t *testing.T) {
	b := make([]byte, 64)
	s := Slice[uint32](b, 16)
	s[3] = 0x01020304
	if *At[uint32](b, 12) != 0x01020304 {
		t.Fatal("Slice does not alias the frame")
	}
}
