// Package view is the typed-access layer over raw arena bytes — and the
// only package in the module allowed to reach arena memory through
// package unsafe (enforced by prudence-vet's arenaunsafe analyzer).
//
// With the mmap arena backend (see internal/memarena), object memory
// lives outside the Go heap: the garbage collector neither scans nor
// tracks it. Two hazards follow, and this package's job is to make both
// unrepresentable for its callers:
//
//   - A Go pointer stored into off-heap memory is invisible to the GC;
//     the pointee can be collected while the "reference" still reads
//     back, yielding a use-after-free no race detector will attribute.
//     Of therefore rejects any T containing pointers (pointers, maps,
//     chans, funcs, slices, strings, interfaces) at first use.
//   - An unsafe.Pointer cast with the wrong size or alignment reads or
//     writes beyond the frame, or tears on architectures that trap on
//     misaligned access. Of bounds- and alignment-checks every view
//     before the cast.
//
// Violations panic: like the arena's own bounds checks they are
// construction bugs in the calling allocator layer, not runtime
// conditions to degrade through.
package view

import (
	"fmt"
	"reflect"
	"sync"
	"unsafe"
)

// ptrFree caches, per concrete type, whether the type is free of
// GC-visible pointers. Read-mostly: every type is decided exactly once.
var ptrFree sync.Map // reflect.Type → bool

// hasPointers reports whether t contains any GC-visible pointer.
func hasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return t.Len() > 0 && hasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		// Ptr, UnsafePointer, Map, Chan, Func, Slice, String, Interface —
		// everything else the reflect kind space offers holds a pointer.
		return true
	}
}

// checkPointerFree panics unless T carries no GC-visible pointers.
func checkPointerFree[T any]() {
	t := reflect.TypeFor[T]()
	if ok, hit := ptrFree.Load(t); hit {
		if !ok.(bool) {
			panic(fmt.Sprintf("view: type %v contains Go pointers and cannot live in arena memory (the GC does not scan the arena)", t))
		}
		return
	}
	free := !hasPointers(t)
	ptrFree.Store(t, free)
	if !free {
		panic(fmt.Sprintf("view: type %v contains Go pointers and cannot live in arena memory (the GC does not scan the arena)", t))
	}
}

// Of returns a typed view of the start of b. It panics if T contains
// pointers, if b is shorter than T, or if b's start is misaligned for T.
// The returned pointer aliases b's backing memory: writes through it are
// writes into the frame.
func Of[T any](b []byte) *T {
	return At[T](b, 0)
}

// At returns a typed view of b at byte offset off, with the same checks
// as Of.
func At[T any](b []byte, off int) *T {
	checkPointerFree[T]()
	size := int(unsafe.Sizeof(*new(T)))
	if off < 0 || size > len(b)-off {
		panic(fmt.Sprintf("view: %v (%d bytes) at offset %d does not fit in %d-byte frame",
			reflect.TypeFor[T](), size, off, len(b)))
	}
	p := unsafe.Pointer(unsafe.SliceData(b[off:]))
	if align := unsafe.Alignof(*new(T)); uintptr(p)%align != 0 {
		panic(fmt.Sprintf("view: %v requires %d-byte alignment; frame offset %d sits at %#x",
			reflect.TypeFor[T](), align, off, uintptr(p)))
	}
	return (*T)(p)
}

// Slice returns a typed view of b as a slice of n Ts, with the same
// pointer-freedom, bounds and alignment checks as Of.
func Slice[T any](b []byte, n int) []T {
	checkPointerFree[T]()
	size := int(unsafe.Sizeof(*new(T)))
	if n < 0 || (n > 0 && (size == 0 || n > len(b)/size)) {
		panic(fmt.Sprintf("view: %d×%v (%d bytes each) does not fit in %d-byte frame",
			n, reflect.TypeFor[T](), size, len(b)))
	}
	if n == 0 {
		return nil
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if align := unsafe.Alignof(*new(T)); uintptr(p)%align != 0 {
		panic(fmt.Sprintf("view: %v requires %d-byte alignment; frame base sits at %#x",
			reflect.TypeFor[T](), align, uintptr(p)))
	}
	return unsafe.Slice((*T)(p), n)
}

// Fits reports how many Ts fit in b. It performs the pointer-freedom
// check so callers can size a Slice call without duplicating layout
// arithmetic.
func Fits[T any](b []byte) int {
	checkPointerFree[T]()
	size := int(unsafe.Sizeof(*new(T)))
	if size == 0 {
		return 0
	}
	return len(b) / size
}

// Zero clears b. It is the module's one memset: routing all arena
// zeroing (slab grow, idle pre-zeroing, poison clears) through here
// keeps the cost attributable and the loop in one place for the
// compiler's memclr pattern match.
func Zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// Fill sets every byte of b to v (the poison pattern writer).
func Fill(b []byte, v byte) {
	for i := range b {
		b[i] = v
	}
}
