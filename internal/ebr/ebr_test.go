package ebr_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prudence/internal/alloctest"
	"prudence/internal/core"
	"prudence/internal/ebr"
	"prudence/internal/memarena"
	"prudence/internal/pagealloc"
	"prudence/internal/rcuhash"
	"prudence/internal/rculist"
	"prudence/internal/rcutree"
	"prudence/internal/slabcore"
	"prudence/internal/vcpu"
)

func fastOpts() ebr.Options {
	return ebr.Options{
		AdvanceInterval: 50 * time.Microsecond,
		PollInterval:    10 * time.Microsecond,
	}
}

func newEngine(t *testing.T, cpus int) (*vcpu.Machine, *ebr.EBR) {
	t.Helper()
	m := vcpu.NewMachine(cpus)
	e := ebr.New(m, fastOpts())
	t.Cleanup(func() {
		e.Stop()
		m.Stop()
	})
	return m, e
}

// core.GracePeriods must be satisfied.
var _ core.GracePeriods = (*ebr.EBR)(nil)

func TestSynchronizeAdvancesEpochs(t *testing.T) {
	_, e := newEngine(t, 2)
	before := e.Epoch()
	e.Synchronize()
	if e.Epoch() < before+2 {
		t.Fatalf("epoch advanced %d -> %d; a grace period needs two advances", before, e.Epoch())
	}
	if e.GPsCompleted() == 0 {
		t.Fatal("no grace periods recorded")
	}
}

func TestPinnedReaderBlocksGracePeriod(t *testing.T) {
	_, e := newEngine(t, 2)
	e.Enter(0)
	cookie := e.Snapshot()
	done := make(chan struct{})
	go func() {
		e.WaitElapsedOn(1, cookie)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("grace period elapsed despite pinned reader")
	case <-time.After(20 * time.Millisecond):
	}
	e.Exit(0)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("grace period stalled after reader exit")
	}
}

func TestNestedSections(t *testing.T) {
	_, e := newEngine(t, 1)
	e.Enter(0)
	e.Enter(0)
	e.Exit(0)
	if !e.Held(0) {
		t.Fatal("outer section lost")
	}
	e.Exit(0)
	if e.Held(0) {
		t.Fatal("section not closed")
	}
}

func TestUnbalancedExitPanics(t *testing.T) {
	_, e := newEngine(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Exit did not panic")
		}
	}()
	e.Exit(0)
}

func TestWaitInsideSectionPanics(t *testing.T) {
	_, e := newEngine(t, 1)
	e.Enter(0)
	defer e.Exit(0)
	defer func() {
		if recover() == nil {
			t.Fatal("WaitElapsedOn inside section did not panic")
		}
	}()
	e.WaitElapsedOn(0, e.Snapshot())
}

func TestCookieSemantics(t *testing.T) {
	_, e := newEngine(t, 1)
	c := e.Snapshot()
	if e.Elapsed(c) {
		t.Fatal("fresh cookie already elapsed")
	}
	e.Synchronize()
	if !e.Elapsed(c) {
		t.Fatal("cookie not elapsed after Synchronize")
	}
	if e.Elapsed(e.Snapshot()) {
		t.Fatal("new cookie elapsed without new grace period")
	}
}

// Prudence runs unchanged over EBR: deferred objects are not reused
// while a reader is pinned, become reusable after a grace period, and
// drain to zero — the turnkey-generality claim of the paper.
func TestPrudenceOverEBR(t *testing.T) {
	arena := memarena.New(2048)
	defer arena.Close()
	pages := pagealloc.New(arena)
	machine := vcpu.NewMachine(4)
	e := ebr.New(machine, fastOpts())
	defer machine.Stop()
	defer e.Stop()

	a := core.New(pages, e, machine, core.Options{})
	cache := a.NewCache(alloctest.TestCacheConfig("over-ebr")).(*core.Cache)

	// Reader pins the epoch; a deferred object must not be reused.
	e.Enter(1)
	r, err := cache.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(r.Bytes(), []byte("EBR-LIVE"))
	cache.FreeDeferred(0, r)
	for i := 0; i < 100; i++ {
		nr, err := cache.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		if nr.Slab == r.Slab && nr.Idx == r.Idx {
			t.Fatalf("deferred object reused while reader pinned (iteration %d)", i)
		}
		cache.Free(0, nr)
	}
	if string(r.Bytes()[:8]) != "EBR-LIVE" {
		t.Fatal("deferred object memory overwritten while reader pinned")
	}
	e.Exit(1)

	// After a grace period the object must come back.
	e.Synchronize()
	found := false
	deadline := time.Now().Add(5 * time.Second)
	for !found {
		var batch []slabcore.Ref
		for i := 0; i < 10; i++ {
			nr, err := cache.Malloc(0)
			if err != nil {
				t.Fatal(err)
			}
			if nr.Slab == r.Slab && nr.Idx == r.Idx {
				found = true
			}
			batch = append(batch, nr)
		}
		for _, nr := range batch {
			cache.Free(0, nr)
		}
		if time.Now().After(deadline) {
			t.Fatal("deferred object never reusable over EBR")
		}
	}
	cache.Drain()
	if err := cache.Audit(); err != nil {
		t.Fatal(err)
	}
	if used := arena.UsedPages(); used != 0 {
		t.Fatalf("%d pages leaked", used)
	}
}

// A concurrent smoke: per-CPU writers defer-freeing under EBR while
// readers pin/unpin; everything drains.
func TestPrudenceOverEBRConcurrent(t *testing.T) {
	arena := memarena.New(4096)
	defer arena.Close()
	pages := pagealloc.New(arena)
	machine := vcpu.NewMachine(4)
	e := ebr.New(machine, fastOpts())
	defer machine.Stop()
	defer e.Stop()
	a := core.New(pages, e, machine, core.Options{})
	cache := a.NewCache(alloctest.TestCacheConfig("ebr-conc")).(*core.Cache)

	var fail atomic.Bool
	var wg sync.WaitGroup
	machine.RunOnAll(func(c *vcpu.CPU) {
		cpu := c.ID()
		for i := 0; i < 3000; i++ {
			e.Enter(cpu)
			r, err := cache.Malloc(cpu)
			if err != nil {
				e.Exit(cpu)
				fail.Store(true)
				return
			}
			r.Bytes()[0] = byte(i)
			e.Exit(cpu)
			cache.FreeDeferred(cpu, r)
		}
	})
	wg.Wait()
	if fail.Load() {
		t.Fatal("allocation failed under concurrent EBR load")
	}
	cache.Drain()
	if err := cache.Audit(); err != nil {
		t.Fatal(err)
	}
	if used := arena.UsedPages(); used != 0 {
		t.Fatalf("%d pages leaked", used)
	}
}

// The full data-structure stack (list, hash map, tree) runs over EBR:
// the same read-side interface serves both engines.
func TestDataStructuresOverEBR(t *testing.T) {
	arena := memarena.New(4096)
	defer arena.Close()
	pages := pagealloc.New(arena)
	machine := vcpu.NewMachine(4)
	e := ebr.New(machine, fastOpts())
	defer machine.Stop()
	defer e.Stop()
	a := core.New(pages, e, machine, core.Options{})

	lcache := a.NewCache(alloctest.TestCacheConfig("ebr-list"))
	l := rculist.New(lcache, e)
	if err := l.Insert(0, 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if ok, err := l.Update(0, 1, []byte("uno")); err != nil || !ok {
		t.Fatalf("list update over EBR: %v %v", ok, err)
	}
	buf := make([]byte, 8)
	if _, ok := l.Lookup(0, 1, buf); !ok || string(buf[:3]) != "uno" {
		t.Fatalf("list lookup over EBR: %q", buf[:3])
	}

	mcache := a.NewCache(alloctest.TestCacheConfig("ebr-map"))
	m := rcuhash.New(mcache, e, 8)
	for k := uint64(0); k < 100; k++ {
		if err := m.Put(0, k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Resize(0, 32); err != nil {
		t.Fatalf("map resize over EBR (uses SynchronizeOn): %v", err)
	}
	if m.Len() != 100 {
		t.Fatalf("map lost entries over EBR: %d", m.Len())
	}

	tcache := a.NewCache(alloctest.TestCacheConfig("ebr-tree"))
	tr := rcutree.New(tcache, e)
	for k := uint64(0); k < 64; k++ {
		if err := tr.Put(0, k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := tr.Get(0, 42, buf); !ok || buf[0] != 42 {
		t.Fatal("tree get over EBR")
	}

	// Teardown everything and verify zero residual memory.
	if ok, err := l.Delete(0, 1); err != nil || !ok {
		t.Fatal("list delete")
	}
	for k := uint64(0); k < 100; k++ {
		if ok, err := m.Delete(0, k); err != nil || !ok {
			t.Fatal("map delete")
		}
	}
	for k := uint64(0); k < 64; k++ {
		if ok, err := tr.Delete(0, k); err != nil || !ok {
			t.Fatal("tree delete")
		}
	}
	for _, c := range a.Caches() {
		c.Drain()
	}
	if used := arena.UsedPages(); used != 0 {
		t.Fatalf("%d pages leaked over EBR", used)
	}
}

// Retire parks objects in the engine's limbo bags until a full grace
// period passes; a pinned reader holds them there and Barrier observes
// the eventual drain. (The queue mechanics themselves are tested in
// internal/sync; this pins the ebr wiring.)
func TestRetireAndBarrier(t *testing.T) {
	_, e := newEngine(t, 2)
	entered := make(chan struct{})
	release := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		e.Enter(1)
		close(entered)
		<-release
		e.Exit(1)
	}()
	<-entered
	var freed atomic.Bool
	e.Retire(0, func() { freed.Store(true) })
	if e.RetireBacklog() != 1 {
		t.Fatalf("RetireBacklog = %d, want 1", e.RetireBacklog())
	}
	time.Sleep(5 * time.Millisecond)
	if freed.Load() {
		t.Fatal("retired object reclaimed under a pinned reader")
	}
	close(release)
	<-readerDone
	e.Barrier()
	if !freed.Load() {
		t.Fatal("Barrier returned before the retirement ran")
	}
	if e.RetireBacklog() != 0 {
		t.Fatalf("RetireBacklog = %d after Barrier", e.RetireBacklog())
	}
}
