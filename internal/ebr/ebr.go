// Package ebr implements epoch-based reclamation (Fraser-style EBR,
// one of the memory reclamation schemes surveyed by Hart et al., the
// paper's [22]) as an alternative grace-period provider for Prudence.
//
// Where internal/rcu detects reader completion through context-switch
// quiescent states, EBR does it through epochs: each CPU entering a
// critical section pins the global epoch it observed; the global epoch
// may advance only when every pinned CPU has observed the current one.
// A deferred object is safe once the global epoch has advanced twice
// past its stamp — readers from the stamp's epoch can survive at most
// one advance.
//
// The package satisfies core.GracePeriods, demonstrating the paper's
// turnkey claim: Prudence runs unchanged over a completely different
// procrastination-based synchronization mechanism, with all added
// complexity confined to the allocator side.
package ebr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prudence/internal/fault"
	"prudence/internal/metrics"
	"prudence/internal/stats"
	gsync "prudence/internal/sync"
	"prudence/internal/vcpu"
)

// Options configures the epoch engine.
type Options struct {
	// AdvanceInterval is the minimum gap between epoch advances
	// (default 200µs). Two advances make one grace period.
	AdvanceInterval time.Duration
	// PollInterval is how often the advancer re-checks pinned CPUs
	// (default 20µs).
	PollInterval time.Duration
	// RetireBatch bounds how many retired objects the limbo drainer
	// invokes per burst (default 32); RetireDelay is the pause between
	// bursts (default 0).
	RetireBatch int
	RetireDelay time.Duration
	// RetireExpeditedBatch and RetireQhimark are the limbo drainer's
	// pressure-scaling knobs (see sync.QueueOptions): the burst bound
	// under pressure/backlog, and the backlog past which batch limits
	// come off and the drainer raises expedited epoch demand.
	RetireExpeditedBatch int
	RetireQhimark        int
}

func init() {
	gsync.Register("ebr", func(m *vcpu.Machine, o gsync.Options) gsync.Backend {
		return New(m, Options{
			// Two epoch advances make one grace period, so the generic
			// grace-period interval halves into the advance interval.
			AdvanceInterval:      o.GPInterval / 2,
			PollInterval:         o.PollInterval,
			RetireBatch:          o.RetireBatch,
			RetireDelay:          o.RetireDelay,
			RetireExpeditedBatch: o.ExpeditedBlimit,
			RetireQhimark:        o.Qhimark,
		})
	})
}

func (o Options) withDefaults() Options {
	if o.AdvanceInterval <= 0 {
		o.AdvanceInterval = 200 * time.Microsecond
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 20 * time.Microsecond
	}
	return o
}

type cpuState struct {
	// pinned is 0 when outside any critical section; when inside, it
	// holds 1 + the global epoch observed at entry.
	pinned  atomic.Uint64
	nesting int32 // owner-goroutine only
	// qsCalls counts QuiescentState invocations for the periodic
	// scheduler yield (owner-goroutine only; atomic for the race
	// detector's benefit).
	qsCalls atomic.Uint32
}

// EBR is the epoch engine. Read-side sections are delimited with
// Enter/Exit; the engine exposes the same pollable grace-period state
// as internal/rcu (cookies in completed-grace-period units, where one
// grace period is two epoch advances).
type EBR struct {
	machine *vcpu.Machine
	opts    Options
	percpu  []*cpuState

	epoch atomic.Uint64 // global epoch counter
	// needGP is plain demand; expedite additionally asks the advancer
	// to skip the inter-advance pacing gap. Both are cleared when the
	// grace period (advance pair) they hastened completes.
	needGP   atomic.Bool
	expedite atomic.Bool
	// expeditedAdvances counts epoch advances taken on the expedited
	// path (pacing gap skipped).
	expeditedAdvances atomic.Uint64
	gpHist            stats.Histogram // latency of each two-advance grace period
	queue             *gsync.RetireQueue

	gpMu   sync.Mutex
	gpCond *sync.Cond
	kick   chan struct{}

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New creates and starts an epoch engine for machine.
func New(machine *vcpu.Machine, opts Options) *EBR {
	e := &EBR{
		machine: machine,
		opts:    opts.withDefaults(),
		percpu:  make([]*cpuState, machine.NumCPU()),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	e.gpCond = sync.NewCond(&e.gpMu)
	for i := range e.percpu {
		e.percpu[i] = &cpuState{}
	}
	e.wg.Add(1)
	go e.advancer()
	e.queue = gsync.NewRetireQueue(e, machine.NumCPU(), gsync.QueueOptions{
		Batch:          e.opts.RetireBatch,
		ExpeditedBatch: e.opts.RetireExpeditedBatch,
		Qhimark:        e.opts.RetireQhimark,
		Delay:          e.opts.RetireDelay,
		Poll:           e.opts.PollInterval,
	})
	return e
}

// Stop shuts the engine down.
func (e *EBR) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
	e.queue.Stop()
	e.gpMu.Lock()
	e.gpCond.Broadcast()
	e.gpMu.Unlock()
}

// Stopped reports whether Stop has begun.
func (e *EBR) Stopped() bool {
	select {
	case <-e.stop:
		return true
	default:
		return false
	}
}

func (e *EBR) cpu(id int) *cpuState {
	if id < 0 || id >= len(e.percpu) {
		panic(fmt.Sprintf("ebr: CPU id %d out of range [0,%d)", id, len(e.percpu)))
	}
	return e.percpu[id]
}

// Enter begins a read-side critical section on cpu, pinning the epoch
// it observes. Sections may nest.
func (e *EBR) Enter(cpu int) {
	cs := e.cpu(cpu)
	if cs.nesting == 0 {
		// Pin-then-recheck: the advancer may pass between our epoch
		// load and the pin store (it would have seen us unpinned). If
		// the epoch moved, re-pin at the new value — nothing has been
		// accessed yet, so observing the newer epoch is safe. Once the
		// epoch is stable across the pin, any later advance must see
		// the pin.
		for {
			cur := e.epoch.Load()
			cs.pinned.Store(1 + cur)
			if e.epoch.Load() == cur {
				break
			}
		}
	}
	cs.nesting++
}

// Exit ends a read-side critical section on cpu.
func (e *EBR) Exit(cpu int) {
	cs := e.cpu(cpu)
	cs.nesting--
	if cs.nesting < 0 {
		panic("ebr: unbalanced Exit")
	}
	if cs.nesting == 0 {
		cs.pinned.Store(0)
	}
}

// Held reports whether cpu is inside a critical section.
func (e *EBR) Held(cpu int) bool { return e.cpu(cpu).nesting > 0 }

// Epoch returns the current global epoch.
func (e *EBR) Epoch() uint64 { return e.epoch.Load() }

// --- core.GracePeriods ---
//
// Cookies are expressed in epochs: a cookie c is elapsed once the
// global epoch is at least c. Snapshot returns now+2: readers pinned at
// the current epoch may survive one advance (the advance waits only for
// CPUs pinned at OLDER epochs), so two advances bound their lifetime.

// Snapshot returns a grace-period cookie.
func (e *EBR) Snapshot() gsync.Cookie {
	return gsync.Cookie(e.epoch.Load() + 2)
}

// Elapsed reports whether the cookie's grace period has passed.
func (e *EBR) Elapsed(c gsync.Cookie) bool {
	return e.epoch.Load() >= uint64(c)
}

// NeedGP signals demand for epoch advances.
func (e *EBR) NeedGP() {
	e.needGP.Store(true)
	// Chaos: a lost wakeup drops the kick after demand is recorded; the
	// advancer's timer fallback must recover.
	//prudence:fault_point
	if fault.Fire(fault.LostWakeup) {
		return
	}
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// ExpediteGP raises expedited demand: the advancer skips the
// inter-advance pacing gap for the next grace period (advance pair)
// instead of holding AdvanceInterval between advances. The demand
// survives a lost kick exactly as NeedGP's does — the advancer reads
// the flag on its timer fallback.
func (e *EBR) ExpediteGP() {
	e.needGP.Store(true)
	e.expedite.Store(true)
	//prudence:fault_point
	if fault.Fire(fault.LostWakeup) {
		return
	}
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// GPsCompleted returns completed grace periods (epoch advances halved,
// so once-per-GP gates fire at the paper's granularity).
func (e *EBR) GPsCompleted() uint64 { return e.epoch.Load() / 2 }

// ExpeditedAdvances returns how many epoch advances skipped the pacing
// gap on expedited demand.
func (e *EBR) ExpeditedAdvances() uint64 { return e.expeditedAdvances.Load() }

// WaitElapsedOn blocks until cookie c elapses. EBR readers cannot block
// (the caller is outside any critical section by contract), so the
// calling CPU needs no special quiescent treatment: its pinned flag is
// already clear.
func (e *EBR) WaitElapsedOn(cpu int, c gsync.Cookie) bool {
	if e.cpu(cpu).nesting > 0 {
		panic("ebr: WaitElapsedOn inside critical section")
	}
	return e.waitElapsed(c)
}

// WaitElapsedOnTimeout is WaitElapsedOn with a deadline: it returns
// true as soon as the cookie elapses, or false once d passes (or the
// engine stops) without it elapsing. Demand is re-raised on every poll
// for the same reason waitElapsed re-raises it — the advancer clears
// demand on even advances, and a cookie snapshotted at an odd epoch
// outlives the pair that cleared it.
func (e *EBR) WaitElapsedOnTimeout(cpu int, c gsync.Cookie, d time.Duration) bool {
	if e.cpu(cpu).nesting > 0 {
		panic("ebr: WaitElapsedOnTimeout inside critical section")
	}
	deadline := time.Now().Add(d)
	for !e.Elapsed(c) {
		if time.Now().After(deadline) {
			return e.Elapsed(c)
		}
		e.ExpediteGP()
		select {
		case <-e.stop:
			return e.Elapsed(c)
		case <-time.After(e.opts.PollInterval):
		}
	}
	return true
}

// Synchronize blocks until a full grace period has elapsed.
func (e *EBR) Synchronize() {
	e.waitElapsed(e.Snapshot())
}

func (e *EBR) waitElapsed(c gsync.Cookie) bool {
	if e.Elapsed(c) {
		return true
	}
	e.ExpediteGP()
	e.gpMu.Lock()
	defer e.gpMu.Unlock()
	for !e.Elapsed(c) {
		select {
		case <-e.stop:
			return e.Elapsed(c)
		default:
		}
		// Re-raise demand on every pass: the advancer clears it after
		// each full grace period (every second advance), and a cookie
		// snapshotted at an odd epoch outlives the pair that cleared
		// it — waiting without re-arming would sleep forever. A
		// blocked waiter is latency-sensitive, so the demand is
		// expedited. The broadcast that wakes us is sent under gpMu,
		// so no advance can slip between this ExpediteGP and the Wait
		// below.
		e.ExpediteGP()
		e.gpCond.Wait()
	}
	return true
}

// advancer is the epoch-advance goroutine: when there is demand, it
// advances the global epoch as soon as no CPU remains pinned at an
// older epoch. Plain demand is paced by AdvanceInterval; expedited
// demand (ExpediteGP) short-circuits the pacing sleep — a kick arriving
// mid-sleep re-checks the flag, so escalation takes effect immediately
// rather than after the timer runs out.
func (e *EBR) advancer() {
	defer e.wg.Done()
	timer := time.NewTimer(e.opts.AdvanceInterval)
	defer timer.Stop()
	last := time.Now()
	pairStart := last
	for {
		if !e.needGP.Load() {
			select {
			case <-e.stop:
				return
			case <-e.kick:
			case <-timer.C:
				timer.Reset(e.opts.AdvanceInterval)
			}
			continue
		}
		expedited := false
		for {
			if e.expedite.Load() {
				expedited = true
				break
			}
			gap := time.Since(last)
			if gap >= e.opts.AdvanceInterval {
				break
			}
			select {
			case <-e.stop:
				return
			case <-e.kick:
				// Re-check: the kick may carry expedited demand.
			case <-time.After(e.opts.AdvanceInterval - gap):
			}
		}
		if expedited {
			e.expeditedAdvances.Add(1)
		}
		cur := e.epoch.Load()
		// Wait until no CPU is pinned at an epoch older than cur.
		for {
			stragglers := false
			for _, cs := range e.percpu {
				if p := cs.pinned.Load(); p != 0 && p-1 < cur {
					stragglers = true
					break
				}
			}
			if !stragglers {
				break
			}
			select {
			case <-e.stop:
				return
			case <-time.After(e.opts.PollInterval):
			}
		}
		// Chaos: stall the advance after observing no stragglers but
		// before publishing the new epoch.
		//prudence:fault_point
		if d := fault.FireDelay(fault.GPStall); d > 0 {
			select {
			case <-e.stop:
				return
			case <-time.After(d):
			}
		}
		e.epoch.Store(cur + 1)
		last = time.Now()
		// Demand is cleared only every second advance (a full grace
		// period); odd advances immediately continue. Expedited demand
		// is consumed with it: the grace period it hastened is done.
		if (cur+1)%2 == 0 {
			e.gpHist.Observe(last.Sub(pairStart))
			e.needGP.Store(false)
			e.expedite.Store(false)
		} else {
			pairStart = last
		}
		e.gpMu.Lock()
		e.gpCond.Broadcast()
		e.gpMu.Unlock()
	}
}

// RegisterMetrics registers the epoch engine's observability series. It
// exports the same prudence_gp_* family names as internal/rcu, so
// dashboards read identically over either grace-period provider.
func (e *EBR) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("prudence_gp_completed_total", "Grace periods completed (epoch advances halved).",
		func() float64 { return float64(e.GPsCompleted()) })
	reg.RegisterHistogram("prudence_gp_duration_seconds",
		"Latency of one grace period (two epoch advances).", &e.gpHist)
	reg.CounterFunc("prudence_sync_expedited_advances_total", "Epoch advances taken on the expedited path (pacing gap skipped on demand).",
		func() float64 { return float64(e.expeditedAdvances.Load()) })
	e.queue.RegisterMetrics(reg)
	reg.GaugeFunc("prudence_ebr_epoch", "Current global epoch.",
		func() float64 { return float64(e.Epoch()) })
	reg.GaugeFunc("prudence_ebr_pinned_cpus", "CPUs currently pinning an epoch (inside a critical section).",
		func() float64 {
			n := 0
			for _, cs := range e.percpu {
				if cs.pinned.Load() != 0 {
					n++
				}
			}
			return float64(n)
		})
}

// ReadLock is an alias for Enter, letting the EBR engine satisfy the
// data structures' ReadSync interface directly.
func (e *EBR) ReadLock(cpu int) { e.Enter(cpu) }

// ReadUnlock is an alias for Exit.
func (e *EBR) ReadUnlock(cpu int) { e.Exit(cpu) }

// SynchronizeOn blocks until a grace period elapses; EBR needs no
// special quiescent treatment for the (unpinned) calling CPU.
func (e *EBR) SynchronizeOn(cpu int) {
	if e.cpu(cpu).nesting > 0 {
		panic("ebr: SynchronizeOn inside critical section")
	}
	e.Synchronize()
}

// QuiescentState contributes nothing to epoch detection (reader
// completion is observed through pinning), but — exactly as in
// rcu.QuiescentState — it periodically donates the core so the advancer
// and limbo drainer stay scheduled when the host has fewer cores than
// the machine has virtual CPUs (e.g. GOMAXPROCS=1): without the yield,
// tight workload loops starve the advancer and grace periods arrive at
// the preemption quantum instead of the demand rate.
func (e *EBR) QuiescentState(cpu int) {
	if e.cpu(cpu).qsCalls.Add(1)%32 == 0 {
		runtime.Gosched()
	}
}

// EnterIdle is a no-op: an idle CPU is simply one that is not pinned.
func (e *EBR) EnterIdle(cpu int) {}

// ExitIdle is a no-op, mirroring EnterIdle.
func (e *EBR) ExitIdle(cpu int) {}

// Retire schedules fn to run once every reader that might hold the
// retired object has finished: the entry lands in cpu's limbo bag
// stamped with the current cookie and the drainer invokes it once two
// epoch advances have passed.
func (e *EBR) Retire(cpu int, fn func()) { e.queue.Retire(cpu, fn) }

// RetireObject is the non-closure Retire variant; the queue carries
// the (reclaimer, obj, idx) payload in the limbo record itself, so the
// steady-state retire path allocates nothing.
func (e *EBR) RetireObject(cpu int, r gsync.Reclaimer, obj any, idx uint64) {
	e.queue.RetireObject(cpu, r, obj, idx)
}

// Barrier blocks until every retirement accepted before the call has
// run (or the engine stopped).
func (e *EBR) Barrier() { e.queue.Barrier() }

// SetPressure expedites limbo draining under memory pressure.
func (e *EBR) SetPressure(under bool) { e.queue.SetPressure(under) }

// RetireBacklog returns the number of retired objects awaiting their
// epoch pair.
func (e *EBR) RetireBacklog() int64 { return e.queue.Pending() }
