package ebr_test

import (
	"testing"
	"time"

	"prudence/internal/fault"
	"prudence/internal/rcu"
)

// Seed-pinned regression for the waitElapsed lost-demand hang: a cookie
// snapshotted at an odd epoch outlives the advance pair that clears
// demand, so a waiter that does not re-raise NeedGP on every wakeup
// sleeps forever once demand is cleared. The fault layer drops every
// wake-up kick (LostWakeup at rate 1.0), so recovery may rely only on
// the re-raised demand flag plus the advancer's timer fallback — the
// exact paths the fix added.
func TestWaitElapsedSurvivesLostDemand(t *testing.T) {
	inj := fault.Enable(fault.Config{
		Seed:  7,
		Rules: map[fault.Point]fault.Rule{fault.LostWakeup: {Rate: 1.0}},
	})
	defer fault.Disable()

	_, e := newEngine(t, 2)

	// Pin a reader at epoch 0. The first advance (0 -> 1) waits only for
	// CPUs pinned at older epochs, so it proceeds; the second (1 -> 2)
	// sees the reader as a straggler and stalls — parking the epoch at
	// an odd value.
	e.Enter(1)
	e.NeedGP()
	deadline := time.Now().Add(2 * time.Second)
	for e.Epoch() != 1 {
		if time.Now().After(deadline) {
			e.Exit(1)
			t.Fatalf("epoch never reached 1 (at %d); advancer stuck before the scenario even started", e.Epoch())
		}
		time.Sleep(50 * time.Microsecond)
	}

	// Snapshot at the odd epoch: cookie 3 needs one more advance than
	// the pair that will clear demand.
	c := e.Snapshot()
	if c != rcu.Cookie(3) {
		t.Fatalf("cookie = %d, want 3 (snapshot at odd epoch)", c)
	}

	done := make(chan bool, 1)
	go func() { done <- e.WaitElapsedOn(0, c) }()
	// Let the waiter block before releasing the reader, so it sleeps
	// through the demand-clearing advance to 2.
	time.Sleep(2 * time.Millisecond)
	e.Exit(1)

	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitElapsedOn returned without the cookie elapsing")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitElapsedOn hung: lost-demand regression (waiter must re-raise NeedGP on every wakeup)")
	}

	// The schedule must have been hostile: every kick dropped.
	if a, f := inj.Arrivals(fault.LostWakeup), inj.Fired(fault.LostWakeup); a == 0 || a != f {
		t.Fatalf("lost-wakeup injection not total: %d arrivals, %d dropped", a, f)
	}
}
