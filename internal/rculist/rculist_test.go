package rculist_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prudence/internal/alloc"
	"prudence/internal/alloctest"
	"prudence/internal/core"
	"prudence/internal/rculist"
	"prudence/internal/slub"
	"prudence/internal/vcpu"
)

// Both allocators must support the list identically.
func eachAllocator(t *testing.T, fn func(t *testing.T, s *alloctest.Stack, c alloc.Cache)) {
	builders := map[string]alloctest.BuildAllocator{
		"slub": func(s *alloctest.Stack) alloc.Allocator {
			return slub.New(s.Pages, s.RCU, s.Machine.NumCPU())
		},
		"prudence": func(s *alloctest.Stack) alloc.Allocator {
			return core.New(s.Pages, s.RCU, s.Machine, core.Options{})
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
			c := s.Alloc.NewCache(alloctest.TestCacheConfig("list-" + name))
			fn(t, s, c)
		})
	}
}

func val(s string) []byte { return []byte(s) }

func TestInsertLookup(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		l := rculist.New(c, s.RCU)
		if l.ValueSize() != 256 {
			t.Fatalf("ValueSize = %d", l.ValueSize())
		}
		for i := uint64(0); i < 20; i++ {
			if err := l.Insert(0, i, val(fmt.Sprintf("value-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if l.Len() != 20 {
			t.Fatalf("Len = %d, want 20", l.Len())
		}
		buf := make([]byte, 32)
		for i := uint64(0); i < 20; i++ {
			n, ok := l.Lookup(0, i, buf)
			if !ok {
				t.Fatalf("key %d not found", i)
			}
			want := fmt.Sprintf("value-%d", i)
			if string(buf[:len(want)]) != want {
				t.Fatalf("key %d value %q, want %q", i, buf[:n], want)
			}
		}
		if _, ok := l.Lookup(0, 999, buf); ok {
			t.Fatal("found missing key")
		}
	})
}

func TestUpdateReplacesValueAndDefersOld(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		l := rculist.New(c, s.RCU)
		if err := l.Insert(0, 1, val("old")); err != nil {
			t.Fatal(err)
		}
		ok, err := l.Update(0, 1, val("new"))
		if err != nil || !ok {
			t.Fatalf("Update = %v, %v", ok, err)
		}
		buf := make([]byte, 8)
		if _, found := l.Lookup(0, 1, buf); !found || string(buf[:3]) != "new" {
			t.Fatalf("after update value = %q", buf)
		}
		ctr := c.Counters().Snapshot()
		if ctr.DeferredFrees != 1 {
			t.Fatalf("DeferredFrees = %d, want 1", ctr.DeferredFrees)
		}
		if ok, _ := l.Update(0, 42, val("x")); ok {
			t.Fatal("update of missing key reported success")
		}
		// The failed update must not leak its speculative allocation.
		ctr = c.Counters().Snapshot()
		if ctr.Allocs != ctr.Frees+ctr.DeferredFrees+uint64(l.Len()) {
			t.Fatalf("allocation leak: %+v with %d live", ctr, l.Len())
		}
	})
}

func TestDelete(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		l := rculist.New(c, s.RCU)
		for i := uint64(0); i < 10; i++ {
			if err := l.Insert(0, i, val("v")); err != nil {
				t.Fatal(err)
			}
		}
		ok, err := l.Delete(0, 5)
		if err != nil || !ok {
			t.Fatalf("Delete = %v, %v", ok, err)
		}
		if _, found := l.Lookup(0, 5, make([]byte, 4)); found {
			t.Fatal("deleted key still found")
		}
		if l.Len() != 9 {
			t.Fatalf("Len = %d, want 9", l.Len())
		}
		if ok, _ := l.Delete(0, 5); ok {
			t.Fatal("double delete reported success")
		}
	})
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		l := rculist.New(c, s.RCU)
		for i := uint64(0); i < 5; i++ {
			if err := l.Insert(0, i, val("v")); err != nil {
				t.Fatal(err)
			}
		}
		var keys []uint64
		l.Walk(0, func(k uint64, _ []byte) bool {
			keys = append(keys, k)
			return true
		})
		// Head insertion: reverse order.
		for i, k := range keys {
			if k != uint64(4-i) {
				t.Fatalf("walk order %v", keys)
			}
		}
		count := 0
		l.Walk(0, func(uint64, []byte) bool {
			count++
			return count < 2
		})
		if count != 2 {
			t.Fatalf("early stop visited %d", count)
		}
	})
}

// The core RCU property end-to-end: readers concurrently traversing the
// list never observe torn or reclaimed payloads while writers
// continuously update. Payload carries a seqnum and its complement; a
// torn read or reuse-while-reading breaks the invariant.
func TestReadersNeverSeeTornValues(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		l := rculist.New(c, s.RCU)
		mkval := func(seq uint64) []byte {
			b := make([]byte, 16)
			binary.LittleEndian.PutUint64(b, seq)
			binary.LittleEndian.PutUint64(b[8:], ^seq)
			return b
		}
		const keys = 8
		for i := uint64(0); i < keys; i++ {
			if err := l.Insert(0, i, mkval(0)); err != nil {
				t.Fatal(err)
			}
		}
		var torn atomic.Int64
		var stop atomic.Bool
		var wg sync.WaitGroup
		// Readers on CPUs 1..3.
		for cpu := 1; cpu < s.Machine.NumCPU(); cpu++ {
			wg.Add(1)
			go func(cpu int) {
				defer wg.Done()
				s.RCU.ExitIdle(cpu)
				defer s.RCU.EnterIdle(cpu)
				for !stop.Load() {
					l.Walk(cpu, func(_ uint64, v []byte) bool {
						a := binary.LittleEndian.Uint64(v)
						b := binary.LittleEndian.Uint64(v[8:])
						if b != ^a {
							torn.Add(1)
						}
						return true
					})
					s.RCU.QuiescentState(cpu)
				}
			}(cpu)
		}
		// Writer on CPU 0.
		s.RCU.ExitIdle(0)
		for seq := uint64(1); seq <= 2000; seq++ {
			if _, err := l.Update(0, seq%keys, mkval(seq)); err != nil {
				t.Fatal(err)
			}
			s.RCU.QuiescentState(0)
		}
		s.RCU.EnterIdle(0)
		stop.Store(true)
		wg.Wait()
		if n := torn.Load(); n != 0 {
			t.Fatalf("readers observed %d torn/reclaimed payloads", n)
		}
	})
}

// Sustained concurrent updates from all CPUs against one list per CPU —
// the §3.5 endurance workload shape in miniature.
func TestPerCPUListsUpdateStorm(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		lists := make([]*rculist.List, s.Machine.NumCPU())
		for i := range lists {
			lists[i] = rculist.New(c, s.RCU)
		}
		s.Machine.RunOnAll(func(cpu *vcpu.CPU) {
			id := cpu.ID()
			s.RCU.ExitIdle(id)
			defer s.RCU.EnterIdle(id)
			l := lists[id]
			for i := uint64(0); i < 16; i++ {
				if err := l.Insert(id, i, val("init")); err != nil {
					t.Errorf("cpu %d insert: %v", id, err)
					return
				}
			}
			for i := 0; i < 500; i++ {
				if _, err := l.Update(id, uint64(i%16), val(fmt.Sprintf("u%d", i))); err != nil {
					t.Errorf("cpu %d update %d: %v", id, i, err)
					return
				}
				s.RCU.QuiescentState(id)
			}
		})
		ctr := c.Counters().Snapshot()
		wantDefers := uint64(500 * s.Machine.NumCPU())
		if ctr.DeferredFrees != wantDefers {
			t.Fatalf("DeferredFrees = %d, want %d", ctr.DeferredFrees, wantDefers)
		}
		for _, l := range lists {
			for i := uint64(0); i < 16; i++ {
				if ok, err := l.Delete(0, i); err != nil || !ok {
					t.Fatalf("teardown delete: %v, %v", ok, err)
				}
			}
		}
		c.Drain()
		if used := s.Arena.UsedPages(); used != 0 {
			t.Fatalf("%d pages leaked", used)
		}
	})
}

// A reader holding the list open sees the old value even after an
// update+grace-period on another CPU (staleness is acceptable; reuse is
// not).
func TestPreExistingReaderSeesOldConsistentValue(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		l := rculist.New(c, s.RCU)
		if err := l.Insert(0, 7, val("original")); err != nil {
			t.Fatal(err)
		}
		// Reader enters a critical section on CPU 1 and captures the
		// payload pointer by walking to it.
		s.RCU.ExitIdle(1)
		s.RCU.ReadLock(1)
		var seen []byte
		l.Walk(1, func(k uint64, v []byte) bool {
			if k == 7 {
				seen = v // retained inside the outer ReadLock
			}
			return true
		})
		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, err := l.Update(0, 7, val("replaced")); err != nil {
				t.Errorf("update: %v", err)
			}
		}()
		<-done
		// Old payload must still read "original" while the reader is
		// inside its critical section.
		time.Sleep(2 * time.Millisecond)
		if string(seen[:8]) != "original" {
			t.Fatalf("pre-existing reader saw %q", seen[:8])
		}
		s.RCU.ReadUnlock(1)
		s.RCU.QuiescentState(1)
		s.RCU.EnterIdle(1)
	})
}
