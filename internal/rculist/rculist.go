// Package rculist implements the RCU-protected linked list of the
// paper's Figure 1: readers traverse wait-free with no synchronization
// against writers; a writer updates an element by allocating a new
// object, copying, publishing the new version, and defer-freeing the old
// version through the allocator's deferred-free API.
//
// List spine nodes are small Go structs; element *payloads* live in
// slab-allocated objects from an alloc.Cache, so every update exercises
// exactly the allocation pattern the paper studies: one allocation plus
// one deferred free per update, with payload memory unsafe to reclaim
// until a grace period has elapsed.
package rculist

import (
	"sync"
	"sync/atomic"

	"prudence/internal/alloc"
	"prudence/internal/slabcore"
)

// ReadSync is the read-side synchronization surface the list needs:
// wait-free critical-section markers. Both internal/rcu's engine and
// internal/ebr's epochs satisfy it.
type ReadSync interface {
	ReadLock(cpu int)
	ReadUnlock(cpu int)
}

// node is a list spine element. The payload reference is immutable once
// the node is published; updates replace the whole node.
type node struct {
	key  uint64
	obj  slabcore.Ref
	next atomic.Pointer[node] //prudence:rcu wmu
}

// List is an RCU-protected singly linked list keyed by uint64.
// Readers (Lookup, Walk, Len) may run from any CPU concurrently with a
// writer. Writers (Insert, Update, Delete) are serialized by an internal
// mutex, as is conventional for RCU-protected structures.
type List struct {
	head  atomic.Pointer[node] //prudence:rcu wmu
	cache alloc.Cache
	rcu   ReadSync

	// wmu serializes writers; it is never held while calling into the
	// allocator's locked paths, but ranks below them for safety.
	//
	//prudence:lockorder 8
	wmu  sync.Mutex
	size atomic.Int64
}

// New creates a list whose element payloads are allocated from cache.
// r provides read-side protection (internal/rcu or internal/ebr).
func New(cache alloc.Cache, r ReadSync) *List {
	return &List{cache: cache, rcu: r}
}

// ValueSize returns the payload capacity of each element.
func (l *List) ValueSize() int { return l.cache.ObjectSize() }

// Len returns the number of elements (approximate under concurrency).
func (l *List) Len() int { return int(l.size.Load()) }

// Insert adds a key with the given value (truncated to ValueSize) at the
// head of the list. The caller runs on cpu. Duplicate keys are allowed;
// Lookup returns the most recently inserted.
func (l *List) Insert(cpu int, key uint64, value []byte) error {
	ref, err := l.cache.Malloc(cpu)
	if err != nil {
		return err
	}
	copy(ref.Bytes(), value)
	n := &node{key: key, obj: ref}

	l.wmu.Lock()
	n.next.Store(l.head.Load())
	l.head.Store(n) // publish
	l.size.Add(1)
	l.wmu.Unlock()
	return nil
}

// Lookup finds key and copies its value into buf, returning the number
// of bytes copied and whether the key was found. It runs inside a
// read-side critical section on cpu.
func (l *List) Lookup(cpu int, key uint64, buf []byte) (int, bool) {
	l.rcu.ReadLock(cpu)
	defer l.rcu.ReadUnlock(cpu)
	for n := l.head.Load(); n != nil; n = n.next.Load() {
		if n.key == key {
			return copy(buf, n.obj.Bytes()), true
		}
	}
	return 0, false
}

// Walk calls fn for each element's key and payload inside a single
// read-side critical section on cpu, stopping early if fn returns
// false. fn must not retain the payload slice.
func (l *List) Walk(cpu int, fn func(key uint64, value []byte) bool) {
	l.rcu.ReadLock(cpu)
	defer l.rcu.ReadUnlock(cpu)
	for n := l.head.Load(); n != nil; n = n.next.Load() {
		if !fn(n.key, n.obj.Bytes()) {
			return
		}
	}
}

// Update replaces the value of key following Figure 1: allocate a new
// object, copy the new value into it, publish a new node in place of the
// old one, and defer-free the old payload. Returns whether the key was
// found. Pre-existing readers may still be traversing the old node and
// reading the old payload; the deferred free protects them.
func (l *List) Update(cpu int, key uint64, value []byte) (bool, error) {
	ref, err := l.cache.Malloc(cpu)
	if err != nil {
		return false, err
	}
	copy(ref.Bytes(), value)

	l.wmu.Lock()
	prev, n := l.find(key)
	if n == nil {
		l.wmu.Unlock()
		l.cache.Free(cpu, ref)
		return false, nil
	}
	nn := &node{key: key, obj: ref}
	nn.next.Store(n.next.Load())
	if prev == nil {
		l.head.Store(nn)
	} else {
		prev.next.Store(nn)
	}
	l.wmu.Unlock()

	// The old node is unreachable for new readers; its payload waits
	// for pre-existing readers through the deferred free.
	l.cache.FreeDeferred(cpu, n.obj)
	return true, nil
}

// Delete unlinks key and defer-frees its payload. Returns whether the
// key was found.
func (l *List) Delete(cpu int, key uint64) (bool, error) {
	l.wmu.Lock()
	prev, n := l.find(key)
	if n == nil {
		l.wmu.Unlock()
		return false, nil
	}
	if prev == nil {
		l.head.Store(n.next.Load())
	} else {
		prev.next.Store(n.next.Load())
	}
	l.size.Add(-1)
	l.wmu.Unlock()

	l.cache.FreeDeferred(cpu, n.obj)
	return true, nil
}

// find returns the first node with key and its predecessor. Caller must
// hold wmu.
//
//prudence:requires wmu
func (l *List) find(key uint64) (prev, n *node) {
	for n = l.head.Load(); n != nil; prev, n = n, n.next.Load() {
		if n.key == key {
			return prev, n
		}
	}
	return nil, nil
}
