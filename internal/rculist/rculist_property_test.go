package rculist_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prudence/internal/alloc"
	"prudence/internal/alloctest"
	"prudence/internal/rculist"
)

// Model-based property test: a random op sequence against the list and
// a map model must agree on membership, values and size. Duplicate keys
// are avoided (the list allows them; the model does not).
func TestPropertyMatchesMapModel(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			l := rculist.New(c, s.RCU)
			model := map[uint64]byte{}
			for op := 0; op < 250; op++ {
				k := uint64(rng.Intn(48))
				switch rng.Intn(4) {
				case 0: // insert (only if absent, to keep keys unique)
					if _, ok := model[k]; !ok {
						v := byte(rng.Intn(256))
						if err := l.Insert(0, k, []byte{v}); err != nil {
							return false
						}
						model[k] = v
					}
				case 1: // update
					v := byte(rng.Intn(256))
					ok, err := l.Update(0, k, []byte{v})
					if err != nil {
						return false
					}
					if _, want := model[k]; ok != want {
						return false
					}
					if ok {
						model[k] = v
					}
				case 2: // delete
					ok, err := l.Delete(0, k)
					if err != nil {
						return false
					}
					if _, want := model[k]; ok != want {
						return false
					}
					delete(model, k)
				case 3: // lookup
					buf := make([]byte, 1)
					_, ok := l.Lookup(0, k, buf)
					v, want := model[k]
					if ok != want || (ok && buf[0] != v) {
						return false
					}
				}
			}
			if l.Len() != len(model) {
				return false
			}
			// Walk sees exactly the model's entries.
			seen := map[uint64]byte{}
			l.Walk(0, func(k uint64, v []byte) bool {
				seen[k] = v[0]
				return true
			})
			if len(seen) != len(model) {
				return false
			}
			for k, v := range model {
				if seen[k] != v {
					return false
				}
			}
			for k := range model {
				if ok, err := l.Delete(0, k); err != nil || !ok {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
			t.Fatal(err)
		}
		c.Drain()
		if used := s.Arena.UsedPages(); used != 0 {
			t.Fatalf("%d pages leaked across property iterations", used)
		}
	})
}
