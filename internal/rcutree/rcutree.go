// Package rcutree implements an RCU-protected balanced search tree
// (a treap with deterministic priorities) using the copy-on-update
// discipline of relativistic red-black trees: writers never modify a
// published node; they rebuild the affected path, swap the root, and
// defer-free the payloads of every replaced node.
//
// This is the data structure the paper's §3.1 points at when it notes
// that "tree re-balancing results in multiple deferred objects": a
// single insert or delete here defer-frees O(log n) objects, giving
// the allocator exactly the multi-object deferred bursts that list
// updates (one object each) do not.
//
// Node spines are small Go structs; each node owns one slab-allocated
// payload object carrying the value bytes. Spine copies allocate a new
// payload and defer-free the old one once the node is unpublished, so
// the allocator sees every structural change.
package rcutree

import (
	"sync"
	"sync/atomic"

	"prudence/internal/alloc"
	"prudence/internal/rculist"
	"prudence/internal/slabcore"
)

// node is an immutable published tree node. After publication only the
// enclosing Tree's root pointer changes; replaced nodes are dropped
// wholesale.
type node struct {
	key   uint64
	prio  uint64
	obj   slabcore.Ref
	left  *node
	right *node
}

// Tree is an RCU-protected ordered map from uint64 keys to fixed-size
// values. Readers (Get, Min, Max, Range, Len) run wait-free on any CPU;
// writers (Put, Delete) serialize on an internal mutex.
type Tree struct {
	root  atomic.Pointer[node]
	cache alloc.Cache
	rcu   rculist.ReadSync

	wmu  sync.Mutex
	size atomic.Int64
}

// New creates a tree whose values are allocated from cache. r provides
// read-side protection (internal/rcu or internal/ebr).
func New(cache alloc.Cache, r rculist.ReadSync) *Tree {
	return &Tree{cache: cache, rcu: r}
}

// ValueSize returns the value capacity of each entry.
func (t *Tree) ValueSize() int { return t.cache.ObjectSize() }

// Len returns the number of keys.
func (t *Tree) Len() int { return int(t.size.Load()) }

// prio derives a deterministic treap priority (splitmix64 finalizer).
func prio(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Get copies key's value into buf inside a read-side critical section
// on cpu, returning bytes copied and presence.
func (t *Tree) Get(cpu int, key uint64, buf []byte) (int, bool) {
	t.rcu.ReadLock(cpu)
	defer t.rcu.ReadUnlock(cpu)
	n := t.root.Load()
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return copy(buf, n.obj.Bytes()), true
		}
	}
	return 0, false
}

// Min returns the smallest key, if any.
func (t *Tree) Min(cpu int) (uint64, bool) {
	t.rcu.ReadLock(cpu)
	defer t.rcu.ReadUnlock(cpu)
	n := t.root.Load()
	if n == nil {
		return 0, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, true
}

// Max returns the largest key, if any.
func (t *Tree) Max(cpu int) (uint64, bool) {
	t.rcu.ReadLock(cpu)
	defer t.rcu.ReadUnlock(cpu)
	n := t.root.Load()
	if n == nil {
		return 0, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, true
}

// Range visits keys in [from, to] in ascending order inside one
// read-side critical section on cpu, stopping early if fn returns
// false. fn must not retain value.
func (t *Tree) Range(cpu int, from, to uint64, fn func(key uint64, value []byte) bool) {
	t.rcu.ReadLock(cpu)
	defer t.rcu.ReadUnlock(cpu)
	rangeWalk(t.root.Load(), from, to, fn)
}

func rangeWalk(n *node, from, to uint64, fn func(uint64, []byte) bool) bool {
	if n == nil {
		return true
	}
	if n.key > from {
		if !rangeWalk(n.left, from, to, fn) {
			return false
		}
	}
	if n.key >= from && n.key <= to {
		if !fn(n.key, n.obj.Bytes()) {
			return false
		}
	}
	if n.key < to {
		if !rangeWalk(n.right, from, to, fn) {
			return false
		}
	}
	return true
}

// update carries the per-operation writer state: the CPU, freshly
// allocated payloads (for rollback on OOM) and the payloads of replaced
// nodes (defer-freed after the root swap unpublishes them).
type update struct {
	t        *Tree
	cpu      int
	fresh    []slabcore.Ref
	replaced []slabcore.Ref
	err      error
}

// cloneWith allocates a new payload carrying value and returns a node
// that replaces n (which must be unpublished by the caller's root
// swap). n's payload is queued for deferred freeing.
func (u *update) clone(n *node) *node {
	if u.err != nil {
		return n
	}
	ref, err := u.t.cache.Malloc(u.cpu)
	if err != nil {
		u.err = err
		return n
	}
	copy(ref.Bytes(), n.obj.Bytes())
	u.fresh = append(u.fresh, ref)
	u.replaced = append(u.replaced, n.obj)
	return &node{key: n.key, prio: n.prio, obj: ref, left: n.left, right: n.right}
}

// fail rolls back freshly allocated payloads after an OOM mid-rebuild.
func (u *update) fail() {
	for _, ref := range u.fresh {
		u.t.cache.Free(u.cpu, ref)
	}
}

// commit publishes the new root and defer-frees every replaced payload.
func (u *update) commit(newRoot *node) {
	u.t.root.Store(newRoot)
	for _, ref := range u.replaced {
		u.t.cache.FreeDeferred(u.cpu, ref)
	}
}

// Put inserts key or replaces its value. The rebuilt search path (plus
// any rotations) defer-frees one payload per replaced node.
func (t *Tree) Put(cpu int, key uint64, value []byte) error {
	ref, err := t.cache.Malloc(cpu)
	if err != nil {
		return err
	}
	copy(ref.Bytes(), value)

	t.wmu.Lock()
	defer t.wmu.Unlock()
	u := &update{t: t, cpu: cpu}
	inserted := false
	newRoot := t.insert(u, t.root.Load(), key, ref, &inserted)
	if u.err != nil {
		u.fail()
		t.cache.Free(cpu, ref)
		return u.err
	}
	u.commit(newRoot)
	if inserted {
		t.size.Add(1)
	}
	return nil
}

// insert returns the new subtree replacing n after inserting (key, ref).
// Copied nodes are tracked in u.
func (t *Tree) insert(u *update, n *node, key uint64, ref slabcore.Ref, inserted *bool) *node {
	if u.err != nil {
		return n
	}
	if n == nil {
		*inserted = true
		return &node{key: key, prio: prio(key), obj: ref}
	}
	switch {
	case key == n.key:
		// Replace in place (copy-update): new node with the new
		// payload; the old payload is deferred.
		u.replaced = append(u.replaced, n.obj)
		return &node{key: key, prio: n.prio, obj: ref, left: n.left, right: n.right}
	case key < n.key:
		m := u.clone(n)
		if u.err != nil {
			return n
		}
		m.left = t.insert(u, n.left, key, ref, inserted)
		if u.err != nil {
			return n
		}
		if m.left != nil && m.left.prio > m.prio {
			m = rotateRight(m)
		}
		return m
	default:
		m := u.clone(n)
		if u.err != nil {
			return n
		}
		m.right = t.insert(u, n.right, key, ref, inserted)
		if u.err != nil {
			return n
		}
		if m.right != nil && m.right.prio > m.prio {
			m = rotateLeft(m)
		}
		return m
	}
}

// rotateRight/Left operate on freshly built (unpublished) nodes only:
// the pivot child is already a copy when its priority could have
// changed... the treap invariant means rotations happen exactly where
// the path was rebuilt, so mutating these spine copies is safe.
func rotateRight(n *node) *node {
	l := n.left
	nn := &node{key: n.key, prio: n.prio, obj: n.obj, left: l.right, right: n.right}
	return &node{key: l.key, prio: l.prio, obj: l.obj, left: l.left, right: nn}
}

func rotateLeft(n *node) *node {
	r := n.right
	nn := &node{key: n.key, prio: n.prio, obj: n.obj, left: n.left, right: r.left}
	return &node{key: r.key, prio: r.prio, obj: r.obj, left: nn, right: r.right}
}

// Delete removes key, defer-freeing its payload and the payloads of
// every path node rebuilt on the way. Reports whether the key existed.
func (t *Tree) Delete(cpu int, key uint64) (bool, error) {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	u := &update{t: t, cpu: cpu}
	removed := false
	newRoot := t.remove(u, t.root.Load(), key, &removed)
	if u.err != nil {
		u.fail()
		return false, u.err
	}
	if !removed {
		u.fail() // nothing was cloned on a miss, but stay safe
		return false, nil
	}
	u.commit(newRoot)
	t.size.Add(-1)
	return true, nil
}

// remove returns the new subtree replacing n after deleting key.
func (t *Tree) remove(u *update, n *node, key uint64, removed *bool) *node {
	if n == nil || u.err != nil {
		return n
	}
	switch {
	case key < n.key:
		m := u.clone(n)
		if u.err != nil {
			return n
		}
		m.left = t.remove(u, n.left, key, removed)
		if !*removed {
			return n // miss: discard the speculative clone via u.fail
		}
		return m
	case key > n.key:
		m := u.clone(n)
		if u.err != nil {
			return n
		}
		m.right = t.remove(u, n.right, key, removed)
		if !*removed {
			return n
		}
		return m
	default:
		*removed = true
		u.replaced = append(u.replaced, n.obj)
		return t.merge(u, n.left, n.right)
	}
}

// merge joins two subtrees whose keys are ordered (all of a < all of b),
// cloning the nodes whose children change.
func (t *Tree) merge(u *update, a, b *node) *node {
	if a == nil || u.err != nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio > b.prio {
		m := u.clone(a)
		if u.err != nil {
			return a
		}
		m.right = t.merge(u, a.right, b)
		return m
	}
	m := u.clone(b)
	if u.err != nil {
		return b
	}
	m.left = t.merge(u, a, b.left)
	return m
}
