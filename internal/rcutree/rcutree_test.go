package rcutree_test

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"prudence/internal/alloc"
	"prudence/internal/alloctest"
	"prudence/internal/core"
	"prudence/internal/rcutree"
	"prudence/internal/slub"
)

func eachAllocator(t *testing.T, fn func(t *testing.T, s *alloctest.Stack, c alloc.Cache)) {
	builders := map[string]alloctest.BuildAllocator{
		"slub": func(s *alloctest.Stack) alloc.Allocator {
			return slub.New(s.Pages, s.RCU, s.Machine.NumCPU())
		},
		"prudence": func(s *alloctest.Stack) alloc.Allocator {
			return core.New(s.Pages, s.RCU, s.Machine, core.Options{})
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			cfg := alloctest.DefaultStackConfig()
			cfg.Pages = 4096
			s := alloctest.NewStack(t, cfg, build)
			c := s.Alloc.NewCache(alloctest.TestCacheConfig("tree-" + name))
			fn(t, s, c)
		})
	}
}

func TestPutGetDelete(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		tr := rcutree.New(c, s.RCU)
		if tr.ValueSize() != 256 {
			t.Fatalf("ValueSize = %d", tr.ValueSize())
		}
		const n = 200
		for i := uint64(0); i < n; i++ {
			if err := tr.Put(0, i*7%n, []byte(fmt.Sprintf("v%d", i*7%n))); err != nil {
				t.Fatal(err)
			}
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		buf := make([]byte, 16)
		for k := uint64(0); k < n; k++ {
			got, ok := tr.Get(0, k, buf)
			want := fmt.Sprintf("v%d", k)
			if !ok || string(buf[:len(want)]) != want {
				t.Fatalf("Get(%d) = %q,%v (%d bytes)", k, buf[:len(want)], ok, got)
			}
		}
		if _, ok := tr.Get(0, 9999, buf); ok {
			t.Fatal("found missing key")
		}
		// Overwrite.
		if err := tr.Put(0, 5, []byte("newval")); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Fatalf("Len after overwrite = %d", tr.Len())
		}
		if _, ok := tr.Get(0, 5, buf); !ok || string(buf[:6]) != "newval" {
			t.Fatalf("overwrite lost: %q", buf[:6])
		}
		// Delete everything.
		for k := uint64(0); k < n; k++ {
			ok, err := tr.Delete(0, k)
			if err != nil || !ok {
				t.Fatalf("Delete(%d) = %v,%v", k, ok, err)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("Len after deletes = %d", tr.Len())
		}
		if ok, _ := tr.Delete(0, 3); ok {
			t.Fatal("delete on empty tree succeeded")
		}
		c.Drain()
		if used := s.Arena.UsedPages(); used != 0 {
			t.Fatalf("%d pages leaked", used)
		}
	})
}

func TestMinMaxRange(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		tr := rcutree.New(c, s.RCU)
		if _, ok := tr.Min(0); ok {
			t.Fatal("Min on empty tree")
		}
		if _, ok := tr.Max(0); ok {
			t.Fatal("Max on empty tree")
		}
		keys := []uint64{50, 10, 90, 30, 70, 20, 80}
		for _, k := range keys {
			if err := tr.Put(0, k, []byte{byte(k)}); err != nil {
				t.Fatal(err)
			}
		}
		if mn, _ := tr.Min(0); mn != 10 {
			t.Fatalf("Min = %d", mn)
		}
		if mx, _ := tr.Max(0); mx != 90 {
			t.Fatalf("Max = %d", mx)
		}
		var got []uint64
		tr.Range(0, 20, 80, func(k uint64, v []byte) bool {
			if v[0] != byte(k) {
				t.Errorf("key %d carries value %d", k, v[0])
			}
			got = append(got, k)
			return true
		})
		want := []uint64{20, 30, 50, 70, 80}
		if len(got) != len(want) {
			t.Fatalf("Range = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Range order = %v, want %v", got, want)
			}
		}
		count := 0
		tr.Range(0, 0, 100, func(uint64, []byte) bool { count++; return count < 3 })
		if count != 3 {
			t.Fatalf("early stop visited %d", count)
		}
		for _, k := range keys {
			if ok, err := tr.Delete(0, k); err != nil || !ok {
				t.Fatal("teardown delete failed")
			}
		}
		c.Drain()
	})
}

// Rebalancing produces multiple deferred objects per update (§3.1): a
// single Put or Delete into a populated tree defer-frees more than one
// payload.
func TestUpdatesDeferMultipleObjects(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		tr := rcutree.New(c, s.RCU)
		for k := uint64(0); k < 128; k++ {
			if err := tr.Put(0, k, []byte{1}); err != nil {
				t.Fatal(err)
			}
		}
		before := c.Counters().Snapshot()
		if err := tr.Put(0, 1000, []byte{2}); err != nil {
			t.Fatal(err)
		}
		d := c.Counters().Snapshot().Sub(before)
		if d.DeferredFrees < 2 {
			t.Fatalf("insert into a deep tree deferred only %d objects; path copying should defer several", d.DeferredFrees)
		}
		before = c.Counters().Snapshot()
		if ok, err := tr.Delete(0, 64); err != nil || !ok {
			t.Fatal(err)
		}
		d = c.Counters().Snapshot().Sub(before)
		if d.DeferredFrees < 2 {
			t.Fatalf("delete from a deep tree deferred only %d objects", d.DeferredFrees)
		}
	})
}

// Model-based property test: a random op sequence against the tree and
// a map+sort model must agree on contents, order and size.
func TestPropertyMatchesModel(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			tr := rcutree.New(c, s.RCU)
			model := map[uint64]byte{}
			for op := 0; op < 300; op++ {
				k := uint64(rng.Intn(64))
				switch rng.Intn(3) {
				case 0, 1:
					v := byte(rng.Intn(256))
					if err := tr.Put(0, k, []byte{v}); err != nil {
						return false
					}
					model[k] = v
				case 2:
					ok, err := tr.Delete(0, k)
					if err != nil {
						return false
					}
					if _, want := model[k]; ok != want {
						return false
					}
					delete(model, k)
				}
			}
			if tr.Len() != len(model) {
				return false
			}
			buf := make([]byte, 1)
			for k, v := range model {
				if _, ok := tr.Get(0, k, buf); !ok || buf[0] != v {
					return false
				}
			}
			// Full-range walk yields the model's keys in sorted order.
			var walked []uint64
			tr.Range(0, 0, ^uint64(0), func(k uint64, _ []byte) bool {
				walked = append(walked, k)
				return true
			})
			want := make([]uint64, 0, len(model))
			for k := range model {
				want = append(want, k)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(walked) != len(want) {
				return false
			}
			for i := range want {
				if walked[i] != want[i] {
					return false
				}
			}
			// Teardown so the next iteration starts clean.
			for k := range model {
				if ok, err := tr.Delete(0, k); err != nil || !ok {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
			t.Fatal(err)
		}
		c.Drain()
		if used := s.Arena.UsedPages(); used != 0 {
			t.Fatalf("%d pages leaked across property iterations", used)
		}
	})
}

// Readers walking the tree concurrently with a writer never observe a
// missing committed key or a torn value.
func TestReadersDuringWrites(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		tr := rcutree.New(c, s.RCU)
		const stable = 64 // keys 0..63 are never deleted
		mkval := func(seq uint64) []byte {
			b := make([]byte, 16)
			binary.LittleEndian.PutUint64(b, seq)
			binary.LittleEndian.PutUint64(b[8:], ^seq)
			return b
		}
		for k := uint64(0); k < stable; k++ {
			if err := tr.Put(0, k, mkval(0)); err != nil {
				t.Fatal(err)
			}
		}
		var bad atomic.Int64
		var stop atomic.Bool
		var wg sync.WaitGroup
		for cpu := 1; cpu < s.Machine.NumCPU(); cpu++ {
			wg.Add(1)
			go func(cpu int) {
				defer wg.Done()
				s.RCU.ExitIdle(cpu)
				defer s.RCU.EnterIdle(cpu)
				buf := make([]byte, 16)
				for !stop.Load() {
					for k := uint64(0); k < stable; k++ {
						if _, ok := tr.Get(cpu, k, buf); !ok {
							bad.Add(1)
							continue
						}
						a := binary.LittleEndian.Uint64(buf)
						b := binary.LittleEndian.Uint64(buf[8:])
						if b != ^a {
							bad.Add(1)
						}
					}
					s.RCU.QuiescentState(cpu)
				}
			}(cpu)
		}
		s.RCU.ExitIdle(0)
		for seq := uint64(1); seq <= 1500; seq++ {
			// Update a stable key and churn a volatile one.
			if err := tr.Put(0, seq%stable, mkval(seq)); err != nil {
				t.Fatal(err)
			}
			vk := stable + seq%32
			if err := tr.Put(0, vk, mkval(seq)); err != nil {
				t.Fatal(err)
			}
			if _, err := tr.Delete(0, vk); err != nil {
				t.Fatal(err)
			}
			s.RCU.QuiescentState(0)
		}
		s.RCU.EnterIdle(0)
		stop.Store(true)
		wg.Wait()
		if n := bad.Load(); n != 0 {
			t.Fatalf("readers observed %d missing/torn entries", n)
		}
	})
}
