package server

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// maxBodyBytes bounds request bodies: payloads larger than the cache
// object size would be truncated by the copy anyway, so reject early.
const maxBodyBytes = 1 << 16

// Handler returns the HTTP front end:
//
//	PUT    /v1/session/{id}   upsert session payload (body)
//	GET    /v1/session/{id}   fetch session payload
//	DELETE /v1/session/{id}   disconnect
//	PUT    /v1/route/{prefix} upsert route payload (body)
//	GET    /v1/route/{prefix} look a route up
//	DELETE /v1/route/{prefix} remove a route
//	POST   /v1/stall?hold=10ms park the key's shard in a read section
//	GET    /metrics           Prometheus exposition (server + stack)
//	GET    /healthz           liveness
//	GET    /statusz           human-readable status summary
//
// Data-plane requests go through TrySubmit: a saturated shard answers
// 503 (and raises expedited reclamation) instead of queueing without
// bound — admission control is the first backpressure tier.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/session/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.handleWrite(w, r, OpConnect, s.cfg.SessionBytes-2)
	})
	mux.HandleFunc("GET /v1/session/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.handleRead(w, r, OpGet, s.cfg.SessionBytes)
	})
	mux.HandleFunc("DELETE /v1/session/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.handleDelete(w, r, OpDisconnect)
	})
	mux.HandleFunc("PUT /v1/route/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.handleWrite(w, r, OpRouteAdd, s.cfg.RouteBytes-2)
	})
	mux.HandleFunc("GET /v1/route/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.handleRead(w, r, OpRouteLookup, s.cfg.RouteBytes)
	})
	mux.HandleFunc("DELETE /v1/route/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.handleDelete(w, r, OpRouteDel)
	})
	mux.HandleFunc("POST /v1/stall", s.handleStall)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	return mux
}

// WriteMetrics writes the server's own metric families followed by the
// full stack's (allocator, reclamation backend, page allocator, vCPUs)
// in Prometheus exposition format. The family names are disjoint, so
// the concatenation is a valid exposition document.
func (s *Server) WriteMetrics(w io.Writer) error {
	if err := s.reg.WritePrometheus(w); err != nil {
		return err
	}
	return s.sys.WriteMetrics(w)
}

// GatherMetrics snapshots server and stack metrics into one flat map.
func (s *Server) GatherMetrics() map[string]float64 {
	out := s.sys.GatherMetrics()
	for k, v := range s.reg.Gather() {
		out[k] = v
	}
	return out
}

// Serve accepts connections on l until Shutdown or Close. It wraps a
// net/http server with sane deployment timeouts; slow-loris behaviour
// belongs in OpStall, not in the transport.
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		<-s.stop
		hs.Close()
	}()
	err := hs.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

func (s *Server) doOne(op Op) (Op, error) {
	b := NewBatch(1)
	b.Ops = append(b.Ops, op)
	if err := s.TrySubmit(s.ShardFor(op.Key), b); err != nil {
		return op, err
	}
	got := <-b.Reply
	return got.Ops[0], nil
}

func parseKey(r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 0, 64)
	return id, err == nil
}

func (s *Server) submitError(w http.ResponseWriter, err error) {
	switch err {
	case ErrBusy:
		http.Error(w, "shard saturated, retry later", http.StatusServiceUnavailable)
	case ErrServerClosed:
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request, kind OpKind, maxPayload int) {
	key, ok := parseKey(r)
	if !ok {
		http.Error(w, "bad key", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	if len(body) > maxPayload {
		http.Error(w, fmt.Sprintf("payload exceeds %d bytes", maxPayload),
			http.StatusRequestEntityTooLarge)
		return
	}
	op, err := s.doOne(Op{Kind: kind, Key: key, Val: body})
	if err != nil {
		s.submitError(w, err)
		return
	}
	switch op.Status {
	case StatusOK:
		w.WriteHeader(http.StatusNoContent)
	case StatusOOM:
		http.Error(w, "out of memory", http.StatusInsufficientStorage)
	case StatusShutdown:
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	default:
		http.Error(w, op.Status.String(), http.StatusInternalServerError)
	}
}

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request, kind OpKind, size int) {
	key, ok := parseKey(r)
	if !ok {
		http.Error(w, "bad key", http.StatusBadRequest)
		return
	}
	buf := make([]byte, size)
	op, err := s.doOne(Op{Kind: kind, Key: key, Buf: buf})
	if err != nil {
		s.submitError(w, err)
		return
	}
	switch op.Status {
	case StatusOK:
		w.Write(buf[:op.N])
	case StatusNotFound:
		http.NotFound(w, r)
	case StatusShutdown:
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	default:
		http.Error(w, op.Status.String(), http.StatusInternalServerError)
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request, kind OpKind) {
	key, ok := parseKey(r)
	if !ok {
		http.Error(w, "bad key", http.StatusBadRequest)
		return
	}
	op, err := s.doOne(Op{Kind: kind, Key: key})
	if err != nil {
		s.submitError(w, err)
		return
	}
	switch op.Status {
	case StatusOK:
		w.WriteHeader(http.StatusNoContent)
	case StatusNotFound:
		http.NotFound(w, r)
	case StatusShutdown:
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	default:
		http.Error(w, op.Status.String(), http.StatusInternalServerError)
	}
}

func (s *Server) handleStall(w http.ResponseWriter, r *http.Request) {
	hold := 10 * time.Millisecond
	if h := r.URL.Query().Get("hold"); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil {
			http.Error(w, "bad hold", http.StatusBadRequest)
			return
		}
		hold = d
	}
	var key uint64
	if k := r.URL.Query().Get("key"); k != "" {
		v, err := strconv.ParseUint(k, 0, 64)
		if err != nil {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		key = v
	}
	op, err := s.doOne(Op{Kind: OpStall, Key: key, Hold: hold})
	if err != nil {
		s.submitError(w, err)
		return
	}
	fmt.Fprintf(w, "stalled shard %d for %v (status %s)\n",
		s.ShardFor(key), hold, op.Status)
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintf(w, "prudence-server: %s allocator, %s reclamation, %s arena, %d shards\n",
		s.sys.AllocatorName(), s.sys.ReclamationName(), s.sys.ArenaName(), s.shards)
	fmt.Fprintf(w, "sessions live     %d\n", s.LiveSessions())
	fmt.Fprintf(w, "routes            %d\n", s.Routes())
	fmt.Fprintf(w, "arena used        %d / %d bytes\n", s.sys.UsedBytes(), s.sys.TotalBytes())
	fmt.Fprintf(w, "grace periods     %d\n", s.sys.GracePeriods())
	fmt.Fprintf(w, "latent objects    %d (peak %d)\n", s.lastBacklog.Load(), s.peakBacklog.Load())
	fmt.Fprintf(w, "latent bytes      %d (peak %d)\n", s.lastLatentB.Load(), s.peakLatentB.Load())
	fmt.Fprintf(w, "busy rejects      %d\n", s.BusyRejects())
	fmt.Fprintf(w, "ooms              %d\n", s.OOMs())
	fmt.Fprintf(w, "expedites         %d\n", s.Expedites())
	for k := OpKind(0); k < numOpKinds; k++ {
		h := s.latency[k]
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "latency[%s] n=%d p50=%v p99=%v p999=%v max=%v\n",
			k, h.Count(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max())
	}
}
