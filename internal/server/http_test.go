package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	stdsync "sync"
	"testing"
	"time"
)

func newHTTPServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, testConfig(t))
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func request(t *testing.T, method, url string, body string) (int, string) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestHTTPSessionRoundTrip(t *testing.T) {
	_, hs := newHTTPServer(t)
	if code, _ := request(t, "PUT", hs.URL+"/v1/session/42", "session-state"); code != http.StatusNoContent {
		t.Fatalf("PUT: %d", code)
	}
	code, body := request(t, "GET", hs.URL+"/v1/session/42", "")
	if code != http.StatusOK || body != "session-state" {
		t.Fatalf("GET: %d %q", code, body)
	}
	if code, _ := request(t, "DELETE", hs.URL+"/v1/session/42", ""); code != http.StatusNoContent {
		t.Fatalf("DELETE: %d", code)
	}
	if code, _ := request(t, "GET", hs.URL+"/v1/session/42", ""); code != http.StatusNotFound {
		t.Fatalf("GET after DELETE: %d, want 404", code)
	}
	if code, _ := request(t, "GET", hs.URL+"/v1/session/notanumber", ""); code != http.StatusBadRequest {
		t.Fatalf("GET bad key: %d, want 400", code)
	}
}

func TestHTTPRouteAndStall(t *testing.T) {
	_, hs := newHTTPServer(t)
	if code, _ := request(t, "PUT", hs.URL+"/v1/route/10", "hop"); code != http.StatusNoContent {
		t.Fatalf("route PUT: %d", code)
	}
	code, body := request(t, "GET", hs.URL+"/v1/route/10", "")
	if code != http.StatusOK || body != "hop" {
		t.Fatalf("route GET: %d %q", code, body)
	}
	if code, _ := request(t, "POST", hs.URL+"/v1/stall?hold=1ms&key=3", ""); code != http.StatusOK {
		t.Fatalf("stall: %d", code)
	}
	if code, _ := request(t, "POST", hs.URL+"/v1/stall?hold=bogus", ""); code != http.StatusBadRequest {
		t.Fatalf("bad stall hold: %d, want 400", code)
	}
	code, body = request(t, "GET", hs.URL+"/statusz", "")
	if code != http.StatusOK || !strings.Contains(body, "sessions live") {
		t.Fatalf("statusz: %d %q", code, body)
	}
	if code, _ := request(t, "GET", hs.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
}

// parseExposition parses Prometheus text exposition into a flat map,
// failing the test on any line that is neither a comment nor a
// "name[{labels}] value" sample.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in line %q: %v", line, err)
		}
		if name == "" || strings.ContainsAny(name, " \t") {
			t.Fatalf("unparseable metric name in line %q", line)
		}
		if _, dup := out[name]; dup {
			t.Fatalf("duplicate series in one scrape: %q", name)
		}
		out[name] = v
	}
	if len(out) == 0 {
		t.Fatal("scrape returned no samples")
	}
	return out
}

// monotone reports whether a series name is contract-bound to never
// decrease: counters and histogram count/sum series.
func monotone(name string) bool {
	base := name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base = name[:i]
	}
	return strings.HasSuffix(base, "_total") ||
		strings.HasSuffix(base, "_count") ||
		strings.HasSuffix(base, "_sum")
}

// TestMetricsScrapeUnderLoad hammers the data plane from several
// goroutines while scraping /metrics concurrently: every scrape must
// parse, and monotone series must never regress between scrapes. Run
// with -race this also checks the exposition path against the per-CPU
// hot paths it reads.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	s, hs := newHTTPServer(t)
	stop := make(chan struct{})
	var wg stdsync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(c<<20 | i%512)
				b := NewBatch(3)
				b.Ops = append(b.Ops,
					Op{Kind: OpConnect, Key: key, Val: []byte("v")},
					Op{Kind: OpGet, Key: key, Buf: make([]byte, 8)},
					Op{Kind: OpDisconnect, Key: key})
				if err := s.Submit(s.ShardFor(key), b); err != nil {
					return
				}
				<-b.Reply
			}
		}(c)
	}

	prev := make(map[string]float64)
	deadline := time.Now().Add(2 * time.Second)
	scrapes := 0
	for time.Now().Before(deadline) {
		code, body := request(t, "GET", hs.URL+"/metrics", "")
		if code != http.StatusOK {
			t.Fatalf("scrape %d: status %d", scrapes, code)
		}
		cur := parseExposition(t, body)
		for name, v := range cur {
			if !monotone(name) {
				continue
			}
			if p, seen := prev[name]; seen && v < p {
				t.Fatalf("scrape %d: monotone series %s regressed %v -> %v",
					scrapes, name, p, v)
			}
		}
		// A scrape is a point-in-time snapshot of live counters, so a
		// series may advance between two samples of one scrape — but
		// it must exist at all, and key families must be present.
		for _, want := range []string{"prudence_server_ops_total", "prudence_server_op_latency_count"} {
			found := false
			for name := range cur {
				if strings.HasPrefix(name, want) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("scrape %d: no %s series", scrapes, want)
			}
		}
		prev = cur
		scrapes++
	}
	close(stop)
	wg.Wait()
	if scrapes < 3 {
		t.Fatalf("only %d scrapes completed in the window", scrapes)
	}
	t.Logf("%d scrapes, %d series last scrape, %d ops completed", scrapes, len(prev),
		s.OpsCompleted(OpConnect)+s.OpsCompleted(OpGet)+s.OpsCompleted(OpDisconnect))
}

// TestHTTPBusy503 saturates a depth-1 queue through the HTTP layer and
// expects 503 with a Retry-After-style shed, not queueing or a hang.
func TestHTTPBusy503(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 1
	s := newTestServer(t, cfg)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Pick a key and stall its shard directly so HTTP requests for the
	// same shard pile onto the full queue.
	stallKey := uint64(9)
	shard := s.ShardFor(stallKey)
	stall := NewBatch(1)
	stall.Ops = append(stall.Ops, Op{Kind: OpStall, Key: stallKey, Hold: 20 * time.Millisecond})
	if err := s.Submit(shard, stall); err != nil {
		t.Fatal(err)
	}
	// Concurrent PUTs to the stalled shard: the queue holds one, the
	// rest must be shed with 503.
	var keys []uint64
	for k := uint64(0); len(keys) < 8; k++ {
		if s.ShardFor(k) == shard {
			keys = append(keys, k)
		}
	}
	codes := make(chan int, len(keys))
	var wg stdsync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			req, err := http.NewRequest("PUT", fmt.Sprintf("%s/v1/session/%d", hs.URL, k), strings.NewReader("x"))
			if err != nil {
				codes <- 0
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				codes <- 0
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}(k)
	}
	wg.Wait()
	close(codes)
	<-stall.Reply
	saw503 := false
	for code := range codes {
		if code == http.StatusServiceUnavailable {
			saw503 = true
		}
	}
	if !saw503 {
		t.Skip("queue never saturated on this run (timing-dependent); TrySubmit shed is covered by TestTrySubmitShedsLoad")
	}
}
