package server

import (
	"fmt"
	"runtime"
	stdsync "sync"
	"testing"
	"time"

	"prudence"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		CPUs:                4,
		MemoryPages:         2048,
		SessionBuckets:      1 << 8,
		GracePeriodInterval: time.Millisecond,
		MonitorInterval:     2 * time.Millisecond,
		MaxStall:            20 * time.Millisecond,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func do(t *testing.T, s *Server, op Op) Op {
	t.Helper()
	b := NewBatch(1)
	b.Ops = append(b.Ops, op)
	if err := s.Submit(s.ShardFor(op.Key), b); err != nil {
		t.Fatalf("Submit(%v): %v", op.Kind, err)
	}
	select {
	case got := <-b.Reply:
		return got.Ops[0]
	case <-time.After(10 * time.Second):
		t.Fatalf("batch with %v never completed", op.Kind)
		return Op{}
	}
}

func TestSessionLifecycle(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	payload := []byte("hello, session")
	if op := do(t, s, Op{Kind: OpConnect, Key: 42, Val: payload}); op.Status != StatusOK {
		t.Fatalf("connect: %v", op.Status)
	}
	buf := make([]byte, 128)
	op := do(t, s, Op{Kind: OpGet, Key: 42, Buf: buf})
	if op.Status != StatusOK || string(buf[:op.N]) != string(payload) {
		t.Fatalf("get: status %v, payload %q", op.Status, buf[:op.N])
	}
	if op := do(t, s, Op{Kind: OpTouch, Key: 42, Val: []byte("updated")}); op.Status != StatusOK {
		t.Fatalf("touch: %v", op.Status)
	}
	op = do(t, s, Op{Kind: OpGet, Key: 42, Buf: buf})
	if op.Status != StatusOK || string(buf[:op.N]) != "updated" {
		t.Fatalf("get after touch: status %v, payload %q", op.Status, buf[:op.N])
	}
	if got := s.LiveSessions(); got != 1 {
		t.Fatalf("LiveSessions = %d, want 1", got)
	}
	if op := do(t, s, Op{Kind: OpDisconnect, Key: 42}); op.Status != StatusOK {
		t.Fatalf("disconnect: %v", op.Status)
	}
	if op := do(t, s, Op{Kind: OpGet, Key: 42, Buf: buf}); op.Status != StatusNotFound {
		t.Fatalf("get after disconnect: %v, want not_found", op.Status)
	}
	if op := do(t, s, Op{Kind: OpDisconnect, Key: 42}); op.Status != StatusNotFound {
		t.Fatalf("double disconnect: %v, want not_found", op.Status)
	}
}

func TestRouteLifecycle(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	if op := do(t, s, Op{Kind: OpRouteAdd, Key: 7, Val: []byte("next-hop")}); op.Status != StatusOK {
		t.Fatalf("route add: %v", op.Status)
	}
	buf := make([]byte, 64)
	op := do(t, s, Op{Kind: OpRouteLookup, Key: 7, Buf: buf})
	if op.Status != StatusOK || string(buf[:op.N]) != "next-hop" {
		t.Fatalf("route lookup: status %v, payload %q", op.Status, buf[:op.N])
	}
	if op := do(t, s, Op{Kind: OpRouteDel, Key: 7}); op.Status != StatusOK {
		t.Fatalf("route del: %v", op.Status)
	}
	if op := do(t, s, Op{Kind: OpRouteLookup, Key: 7, Buf: buf}); op.Status != StatusNotFound {
		t.Fatalf("route lookup after del: %v, want not_found", op.Status)
	}
}

func TestStallClampAndCounters(t *testing.T) {
	cfg := testConfig(t)
	s := newTestServer(t, cfg)
	start := time.Now()
	// A hostile hold far past MaxStall must be clamped to it.
	if op := do(t, s, Op{Kind: OpStall, Key: 1, Hold: time.Hour}); op.Status != StatusOK {
		t.Fatalf("stall: %v", op.Status)
	}
	if took := time.Since(start); took > 50*cfg.MaxStall {
		t.Fatalf("stall with hour hold took %v; clamp to %v broken", took, cfg.MaxStall)
	}
	if got := s.stallsServed.Load(); got != 1 {
		t.Fatalf("stalls served = %d, want 1", got)
	}
	if s.Latency(OpStall).Count() != 1 {
		t.Fatal("stall latency histogram empty")
	}
}

// TestStallDoesNotBlockOtherShards pins one shard's reader and checks
// the remaining shards keep serving — the slow-loris isolation story.
func TestStallDoesNotBlockOtherShards(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	stallKey := uint64(0)
	stallShard := s.ShardFor(stallKey)
	sb := NewBatch(1)
	sb.Ops = append(sb.Ops, Op{Kind: OpStall, Key: stallKey, Hold: 20 * time.Millisecond})
	if err := s.Submit(stallShard, sb); err != nil {
		t.Fatal(err)
	}
	served := 0
	for key := uint64(1); key < 100; key++ {
		if s.ShardFor(key) == stallShard {
			continue
		}
		if op := do(t, s, Op{Kind: OpConnect, Key: key, Val: []byte("x")}); op.Status == StatusOK {
			served++
		}
	}
	if served == 0 {
		t.Fatal("no other shard served while one was stalled")
	}
	<-sb.Reply
}

func TestTrySubmitShedsLoad(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 1
	s := newTestServer(t, cfg)
	shard := s.ShardFor(0)
	// Stall the shard so the queue backs up, then overfill it.
	stall := NewBatch(1)
	stall.Ops = append(stall.Ops, Op{Kind: OpStall, Key: 0, Hold: 20 * time.Millisecond})
	if err := s.Submit(shard, stall); err != nil {
		t.Fatal(err)
	}
	var sawBusy bool
	var pending []*Batch
	for i := 0; i < 50; i++ {
		b := NewBatch(1)
		b.Ops = append(b.Ops, Op{Kind: OpStall, Key: 0, Hold: time.Millisecond})
		switch err := s.TrySubmit(shard, b); err {
		case nil:
			pending = append(pending, b)
		case ErrBusy:
			sawBusy = true
		default:
			t.Fatalf("TrySubmit: %v", err)
		}
		if sawBusy {
			break
		}
	}
	if !sawBusy {
		t.Fatal("TrySubmit never returned ErrBusy with a stalled shard and depth-1 queue")
	}
	if s.BusyRejects() == 0 {
		t.Fatal("busy rejection not counted")
	}
	if s.Expedites() == 0 {
		t.Fatal("shed load did not raise expedited reclamation")
	}
	<-stall.Reply
	for _, b := range pending {
		<-b.Reply
	}
}

// TestBacklogMonitorExpedites floods deferred frees with a slow grace
// period so the monitor's latent gauge crosses BacklogHigh and raises
// expedited demand.
func TestBacklogMonitorExpedites(t *testing.T) {
	cfg := testConfig(t)
	cfg.GracePeriodInterval = 200 * time.Millisecond // garbage piles up
	cfg.BacklogHigh = 64
	cfg.MonitorInterval = time.Millisecond
	s := newTestServer(t, cfg)
	// Each touch copy-updates a session: one new object, one deferred.
	b := NewBatch(256)
	for i := 0; i < 256; i++ {
		b.Ops = append(b.Ops, Op{Kind: OpTouch, Key: 5, Val: []byte("v")})
	}
	if err := s.Submit(s.ShardFor(5), b); err != nil {
		t.Fatal(err)
	}
	<-b.Reply
	deadline := time.Now().Add(5 * time.Second)
	for s.Expedites() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("monitor never expedited: backlog sample %d (peak %d), high %d",
				s.lastBacklog.Load(), s.peakBacklog.Load(), cfg.BacklogHigh)
		}
		time.Sleep(time.Millisecond)
	}
	if s.PeakLatentBytes() == 0 {
		t.Fatal("latent-bytes peak never recorded")
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	s.Close()
	b := NewBatch(1)
	b.Ops = append(b.Ops, Op{Kind: OpConnect, Key: 1, Val: []byte("x")})
	if err := s.Submit(0, b); err != ErrServerClosed {
		t.Fatalf("Submit after Close: %v, want ErrServerClosed", err)
	}
	if err := s.TrySubmit(0, b); err != ErrServerClosed {
		t.Fatalf("TrySubmit after Close: %v, want ErrServerClosed", err)
	}
}

// TestCloseDrainsAcceptedBatches checks every batch accepted before
// Close completes (no stranded submitters), across both allocators and
// all registered schemes.
func TestCloseDrainsAcceptedBatches(t *testing.T) {
	for _, alloc := range []prudence.AllocatorKind{prudence.Prudence, prudence.SLUB} {
		for _, scheme := range prudence.Reclamations() {
			t.Run(fmt.Sprintf("%s/%s", alloc, scheme), func(t *testing.T) {
				cfg := testConfig(t)
				cfg.Allocator = alloc
				cfg.Reclamation = prudence.ReclamationKind(scheme)
				s := newTestServer(t, cfg)

				var wg stdsync.WaitGroup
				const clients = 8
				wg.Add(clients)
				for c := 0; c < clients; c++ {
					go func(c int) {
						defer wg.Done()
						for i := 0; i < 200; i++ {
							key := uint64(c*1000 + i)
							b := NewBatch(2)
							b.Ops = append(b.Ops,
								Op{Kind: OpConnect, Key: key, Val: []byte("payload")},
								Op{Kind: OpDisconnect, Key: key})
							if err := s.Submit(s.ShardFor(key), b); err != nil {
								return // closed underneath us: fine
							}
							got := <-b.Reply // must always arrive
							for j := range got.Ops {
								st := got.Ops[j].Status
								if st != StatusOK && st != StatusShutdown && st != StatusNotFound {
									t.Errorf("op status %v", st)
									return
								}
							}
						}
					}(c)
				}
				time.Sleep(5 * time.Millisecond)
				s.Close()
				done := make(chan struct{})
				go func() { wg.Wait(); close(done) }()
				select {
				case <-done:
				case <-time.After(30 * time.Second):
					t.Fatal("clients stranded after Close: a batch never got its reply")
				}
			})
		}
	}
}

// TestCloseStopsGoroutines pins the full teardown: server workers,
// monitor, and the whole stack underneath exit on Close.
func TestCloseStopsGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	s := newTestServer(t, testConfig(t))
	for i := uint64(0); i < 100; i++ {
		do(t, s, Op{Kind: OpConnect, Key: i, Val: []byte("x")})
	}
	s.Close()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after Close\n%s",
				base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestShardForCoversAllShards(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	seen := make(map[int]bool)
	for key := uint64(0); key < 1000; key++ {
		shard := s.ShardFor(key)
		if shard < 0 || shard >= s.Shards() {
			t.Fatalf("ShardFor(%d) = %d out of range", key, shard)
		}
		seen[shard] = true
	}
	if len(seen) != s.Shards() {
		t.Fatalf("1000 keys hit only %d of %d shards", len(seen), s.Shards())
	}
}
