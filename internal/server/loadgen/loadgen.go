// Package loadgen drives an in-process server.Server with millions of
// simulated sessions under realistic churn: steady connect/touch/get
// traffic with hot-key skew, disconnect/reconnect storms, the
// examples/dos open/close flood that manufactures deferred-free
// garbage at allocation speed, and slow-loris stall operations that
// park shard readers inside read-side critical sections.
//
// The generator is deliberately allocation-free in steady state: each
// worker owns a fixed pool of batches whose op and payload arrays are
// reused for the whole run, so the load measured is the server's, not
// the Go garbage collector's.
package loadgen

import (
	"fmt"
	stdsync "sync"
	"sync/atomic"
	"time"

	"prudence/internal/server"
)

// Config shapes one load run. The zero value of a field takes the
// documented default.
type Config struct {
	// Workers is the number of client goroutines (default: the
	// server's shard count).
	Workers int
	// Sessions is the target live-session population built during the
	// ramp phase, split across workers (default 100000).
	Sessions int
	// Ops is the operation budget for the churn phase after the ramp
	// (default 2x Sessions).
	Ops int
	// Duration caps the churn phase's wall-clock time; zero means the
	// op budget alone decides.
	Duration time.Duration
	// BatchSize is the ops per submitted batch (default 128).
	BatchSize int
	// PayloadBytes is the session payload size written on connect and
	// touch (default 96; must fit the server's SessionBytes).
	PayloadBytes int
	// HotPermille is the share (‰) of read traffic aimed at the shared
	// hot-key set (default 200).
	HotPermille int
	// HotKeys is the hot-set size (default 64).
	HotKeys int
	// StormPermille is the share (‰) of churn iterations that run a
	// disconnect/reconnect storm burst (default 30).
	StormPermille int
	// StormBurst is the sessions recycled per storm burst
	// (default 64).
	StormBurst int
	// DoSPermille is the share (‰) of churn iterations that run an
	// examples/dos-style connect+disconnect flood cycle (default 100).
	DoSPermille int
	// DoSBurst is the open/close pairs per flood cycle (default 128,
	// matching examples/dos).
	DoSBurst int
	// RoutePermille is the share (‰) of churn iterations that touch
	// the routing table (default 20).
	RoutePermille int
	// Routes is the routing-table population (default 1024).
	Routes int
	// StallEvery injects one slow-loris stall per worker every N churn
	// iterations (0 disables; default 0).
	StallEvery int
	// StallHold is the stall pin duration (default 20ms, clamped by
	// the server's MaxStall).
	StallHold time.Duration
	// Seed makes runs reproducible.
	Seed uint64
}

func (cfg *Config) fill(shards int) {
	if cfg.Workers <= 0 {
		cfg.Workers = shards
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 100000
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 2 * cfg.Sessions
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 128
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 96
	}
	if cfg.HotPermille <= 0 {
		cfg.HotPermille = 200
	}
	if cfg.HotKeys <= 0 {
		cfg.HotKeys = 64
	}
	if cfg.StormPermille < 0 {
		cfg.StormPermille = 0
	} else if cfg.StormPermille == 0 {
		cfg.StormPermille = 30
	}
	if cfg.StormBurst <= 0 {
		cfg.StormBurst = 64
	}
	if cfg.DoSPermille < 0 {
		cfg.DoSPermille = 0
	} else if cfg.DoSPermille == 0 {
		cfg.DoSPermille = 100
	}
	if cfg.DoSBurst <= 0 {
		cfg.DoSBurst = 128
	}
	if cfg.RoutePermille < 0 {
		cfg.RoutePermille = 0
	} else if cfg.RoutePermille == 0 {
		cfg.RoutePermille = 20
	}
	if cfg.Routes <= 0 {
		cfg.Routes = 1024
	}
	if cfg.StallHold <= 0 {
		cfg.StallHold = 20 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
}

// Result summarizes one run. Op counts come from the generator's own
// tally of returned batch statuses, so they cross-check the server's
// counters.
type Result struct {
	Elapsed        time.Duration
	SessionsTotal  uint64 // sessions ever connected (ramp + churn + dos)
	OpsTotal       uint64
	Connects       uint64
	Disconnects    uint64
	Gets           uint64
	Touches        uint64
	RouteOps       uint64
	Stalls         uint64
	NotFound       uint64
	OOMs           uint64
	ShutdownDrops  uint64
	PeakLive       int
	EndLive        int
	ThroughputOps  float64 // ops per second over the whole run
	P50, P99, P999 time.Duration
	MaxLatency     time.Duration
}

// String renders a one-screen summary.
func (r Result) String() string {
	return fmt.Sprintf(
		"loadgen: %d sessions (%d peak live, %d at end), %d ops in %v (%.0f ops/s)\n"+
			"  connect=%d disconnect=%d get=%d touch=%d route=%d stall=%d\n"+
			"  not_found=%d oom=%d shutdown=%d\n"+
			"  latency p50=%v p99=%v p999=%v max=%v",
		r.SessionsTotal, r.PeakLive, r.EndLive, r.OpsTotal,
		r.Elapsed.Truncate(time.Millisecond), r.ThroughputOps,
		r.Connects, r.Disconnects, r.Gets, r.Touches, r.RouteOps, r.Stalls,
		r.NotFound, r.OOMs, r.ShutdownDrops,
		r.P50, r.P99, r.P999, r.MaxLatency)
}

// splitmix64: per-worker deterministic RNG without math/rand, so runs
// replay exactly from Config.Seed.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// permille rolls an event with probability p/1000.
func (r *rng) permille(p int) bool { return int(r.next()%1000) < p }

// hot-set session ids live in their own high-bit namespace so they
// never collide with worker-generated ids.
const hotBase = uint64(0xFF) << 56

// worker tracks one client goroutine's state.
type worker struct {
	id          int
	rng         rng
	srv         *server.Server
	cfg         *Config
	tally       *tally
	fill        []*server.Batch // batch being filled, per shard (nil = none)
	free        []*server.Batch
	done        chan *server.Batch
	inflight    int
	maxInflight int
	live        []uint64 // session ids this worker believes are connected
	nextID      uint64
	opsSent     uint64
	arenas      map[*server.Batch][]byte
	scratch     []byte
	liveTotal   *atomic.Int64 // live sessions across all workers
	peakLive    *atomic.Int64
}

// tally accumulates completed-op outcomes; one per worker, merged at
// the end, so the hot path takes no locks.
type tally struct {
	connects, disconnects, gets, touches, routeOps, stalls uint64
	notFound, ooms, shutdown, opsTotal, sessions           uint64
}

func (t *tally) add(o *server.Op) {
	t.opsTotal++
	switch o.Status {
	case server.StatusNotFound:
		t.notFound++
	case server.StatusOOM:
		t.ooms++
	case server.StatusShutdown:
		t.shutdown++
		return
	}
	switch o.Kind {
	case server.OpConnect:
		if o.Status == server.StatusOK {
			t.connects++
			t.sessions++
		}
	case server.OpDisconnect:
		if o.Status == server.StatusOK {
			t.disconnects++
		}
	case server.OpGet, server.OpRouteLookup:
		if o.Kind == server.OpGet {
			t.gets++
		} else {
			t.routeOps++
		}
	case server.OpTouch:
		t.touches++
	case server.OpRouteAdd, server.OpRouteDel:
		t.routeOps++
	case server.OpStall:
		t.stalls++
	}
}

func (t *tally) merge(o *tally) {
	t.connects += o.connects
	t.disconnects += o.disconnects
	t.gets += o.gets
	t.touches += o.touches
	t.routeOps += o.routeOps
	t.stalls += o.stalls
	t.notFound += o.notFound
	t.ooms += o.ooms
	t.shutdown += o.shutdown
	t.opsTotal += o.opsTotal
	t.sessions += o.sessions
}

// newBatch builds a batch whose ops share one payload arena: slot i's
// Val and Buf views alias arena[i*P:(i+1)*P], reused across runs.
func (w *worker) newBatch() *server.Batch {
	b := server.NewBatch(w.cfg.BatchSize)
	b.Reply = w.done
	arena := make([]byte, w.cfg.BatchSize*w.cfg.PayloadBytes)
	b.Ops = b.Ops[:0]
	// Stash the arena by capacity trick: slot views are cut when ops
	// are appended (see appendOp), so keep it reachable via a map.
	w.arenas[b] = arena
	return b
}

func (w *worker) slot(b *server.Batch, i int) []byte {
	p := w.cfg.PayloadBytes
	return w.arenas[b][i*p : (i+1)*p]
}

// take returns an empty batch, recycling completed ones first and
// blocking on completions once maxInflight batches are outstanding.
func (w *worker) take() *server.Batch {
	for {
		select {
		case b := <-w.done:
			w.inflight--
			w.recycle(b)
		default:
			if n := len(w.free); n > 0 {
				b := w.free[n-1]
				w.free = w.free[:n-1]
				return b
			}
			if w.inflight < w.maxInflight {
				return w.newBatch()
			}
			b := <-w.done
			w.inflight--
			w.recycle(b)
		}
	}
}

func (w *worker) recycle(b *server.Batch) {
	for i := range b.Ops {
		w.tally.add(&b.Ops[i])
	}
	b.Ops = b.Ops[:0]
	w.free = append(w.free, b)
}

// appendOp places op in the fill batch for its shard, flushing the
// batch once full.
func (w *worker) appendOp(op server.Op) error {
	shard := w.srv.ShardFor(op.Key)
	b := w.fill[shard]
	if b == nil {
		b = w.take()
		w.fill[shard] = b
	}
	i := len(b.Ops)
	s := w.slot(b, i)
	switch op.Kind {
	case server.OpConnect, server.OpTouch, server.OpRouteAdd:
		n := copy(s, op.Val)
		op.Val = s[:n]
	case server.OpGet, server.OpRouteLookup:
		op.Buf = s
	}
	b.Ops = append(b.Ops, op)
	w.opsSent++
	if len(b.Ops) == w.cfg.BatchSize {
		w.fill[shard] = nil
		return w.flush(shard, b)
	}
	return nil
}

func (w *worker) flush(shard int, b *server.Batch) error {
	if len(b.Ops) == 0 {
		w.free = append(w.free, b)
		return nil
	}
	if err := w.srv.Submit(shard, b); err != nil {
		// Server closing underneath the run: count the ops as dropped.
		for i := range b.Ops {
			b.Ops[i].Status = server.StatusShutdown
		}
		w.recycle(b)
		return err
	}
	w.inflight++
	return nil
}

// flushAll submits every partial batch and waits out all completions.
func (w *worker) flushAll() {
	for shard, b := range w.fill {
		if b != nil {
			w.fill[shard] = nil
			w.flush(shard, b)
		}
	}
	for w.inflight > 0 {
		b := <-w.done
		w.inflight--
		w.recycle(b)
	}
}

func (w *worker) payload(key uint64) []byte {
	p := w.scratch
	for i := range p {
		p[i] = byte(key >> (8 * (uint(i) % 8)))
	}
	return p
}

// connectOne connects a fresh session id and remembers it as live.
// Live accounting is optimistic (at submission, not completion): it
// feeds the peak-live statistic, not correctness.
func (w *worker) connectOne() error {
	id := (uint64(w.id+1) << 48) | w.nextID
	w.nextID++
	w.live = append(w.live, id)
	l := w.liveTotal.Add(1)
	for {
		p := w.peakLive.Load()
		if l <= p || w.peakLive.CompareAndSwap(p, l) {
			break
		}
	}
	return w.appendOp(server.Op{Kind: server.OpConnect, Key: id, Val: w.payload(id)})
}

// disconnectRandom removes a random live session (swap-delete).
func (w *worker) disconnectRandom() error {
	n := len(w.live)
	if n == 0 {
		return nil
	}
	i := int(w.rng.next() % uint64(n))
	id := w.live[i]
	w.live[i] = w.live[n-1]
	w.live = w.live[:n-1]
	w.liveTotal.Add(-1)
	return w.appendOp(server.Op{Kind: server.OpDisconnect, Key: id})
}

// Run drives the server with cfg's workload and blocks until the op
// budget (or duration cap) is spent and every batch has completed.
// The server is left running; callers own its lifecycle.
func Run(srv *server.Server, cfg Config) Result {
	cfg.fill(srv.Shards())
	start := time.Now()

	var (
		wg        stdsync.WaitGroup
		rampWg    stdsync.WaitGroup
		tallies   = make([]tally, cfg.Workers)
		liveTotal atomic.Int64
		peakLive  atomic.Int64
	)
	perWorkerSessions := cfg.Sessions / cfg.Workers
	perWorkerOps := cfg.Ops / cfg.Workers
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}

	wg.Add(cfg.Workers)
	rampWg.Add(cfg.Workers)
	for wi := 0; wi < cfg.Workers; wi++ {
		go func(wi int) {
			defer wg.Done()
			w := &worker{
				id:          wi,
				rng:         rng{s: cfg.Seed + uint64(wi)*0x9e3779b97f4a7c15},
				srv:         srv,
				cfg:         &cfg,
				tally:       &tallies[wi],
				fill:        make([]*server.Batch, srv.Shards()),
				done:        make(chan *server.Batch, 4*srv.Shards()),
				maxInflight: 2 * srv.Shards(),
				live:        make([]uint64, 0, perWorkerSessions+cfg.StormBurst),
				arenas:      make(map[*server.Batch][]byte),
				scratch:     make([]byte, cfg.PayloadBytes),
				liveTotal:   &liveTotal,
				peakLive:    &peakLive,
			}
			w.run(wi, perWorkerSessions, perWorkerOps, deadline, &rampWg)
		}(wi)
	}
	wg.Wait()

	var t tally
	for i := range tallies {
		t.merge(&tallies[i])
	}
	elapsed := time.Since(start)
	h := srv.Latency(server.OpGet)
	res := Result{
		Elapsed:       elapsed,
		SessionsTotal: t.sessions,
		OpsTotal:      t.opsTotal,
		Connects:      t.connects,
		Disconnects:   t.disconnects,
		Gets:          t.gets,
		Touches:       t.touches,
		RouteOps:      t.routeOps,
		Stalls:        t.stalls,
		NotFound:      t.notFound,
		OOMs:          t.ooms,
		ShutdownDrops: t.shutdown,
		PeakLive:      int(peakLive.Load()),
		EndLive:       srv.LiveSessions(),
		ThroughputOps: float64(t.opsTotal) / elapsed.Seconds(),
		P50:           h.Quantile(0.50),
		P99:           h.Quantile(0.99),
		P999:          h.Quantile(0.999),
		MaxLatency:    h.Max(),
	}
	return res
}

func (w *worker) run(wi, sessions, ops int, deadline time.Time, rampWg *stdsync.WaitGroup) {
	// Ramp: build this worker's share of the live population. Worker 0
	// additionally owns the shared hot set. flushAll is the per-worker
	// ordering barrier (once it returns, every connect has been
	// applied); rampWg then synchronizes the workers so churn-phase
	// hot-key reads find the hot set populated.
	if wi == 0 {
		for i := 0; i < w.cfg.HotKeys; i++ {
			id := hotBase | uint64(i)
			w.appendOp(server.Op{Kind: server.OpConnect, Key: id, Val: w.payload(id)})
		}
	}
	rampFailed := false
	for i := 0; i < sessions; i++ {
		if err := w.connectOne(); err != nil {
			rampFailed = true
			break
		}
	}
	w.flushAll()
	rampWg.Done()
	rampWg.Wait()
	if rampFailed {
		return
	}

	// Churn: the steady-state mix. Each iteration emits one "primary"
	// op plus whatever burst events the dice roll adds.
	checkEvery := 64
	for it := 0; w.opsSent < uint64(ops); it++ {
		if !deadline.IsZero() && it%checkEvery == 0 && time.Now().After(deadline) {
			break
		}
		var err error
		switch {
		case w.cfg.StallEvery > 0 && it%w.cfg.StallEvery == w.cfg.StallEvery-1:
			// Slow-loris: pin a pseudo-random shard's reader.
			err = w.appendOp(server.Op{
				Kind: server.OpStall,
				Key:  w.rng.next(),
				Hold: w.cfg.StallHold,
			})
		case w.rng.permille(w.cfg.DoSPermille):
			// examples/dos flood: open/close pairs back to back, all
			// garbage, all deferred. The connect and its disconnect
			// share a key, hence a shard, hence stay ordered.
			for i := 0; i < w.cfg.DoSBurst && err == nil; i++ {
				if err = w.connectOne(); err == nil {
					err = w.disconnectRandomLast()
				}
			}
		case w.rng.permille(w.cfg.StormPermille):
			// Storm: recycle a burst of the live population.
			for i := 0; i < w.cfg.StormBurst && err == nil; i++ {
				err = w.disconnectRandom()
			}
			for i := 0; i < w.cfg.StormBurst && err == nil; i++ {
				err = w.connectOne()
			}
		case w.rng.permille(w.cfg.RoutePermille):
			key := w.rng.next() % uint64(w.cfg.Routes)
			switch w.rng.next() % 4 {
			case 0:
				err = w.appendOp(server.Op{Kind: server.OpRouteAdd, Key: key, Val: w.payload(key)})
			case 1:
				err = w.appendOp(server.Op{Kind: server.OpRouteDel, Key: key})
			default:
				err = w.appendOp(server.Op{Kind: server.OpRouteLookup, Key: key})
			}
		case w.rng.permille(w.cfg.HotPermille):
			id := hotBase | (w.rng.next() % uint64(w.cfg.HotKeys))
			err = w.appendOp(server.Op{Kind: server.OpGet, Key: id})
		default:
			// Plain traffic on this worker's own sessions.
			if n := len(w.live); n > 0 {
				id := w.live[int(w.rng.next()%uint64(n))]
				if w.rng.permille(300) {
					err = w.appendOp(server.Op{Kind: server.OpTouch, Key: id, Val: w.payload(id)})
				} else {
					err = w.appendOp(server.Op{Kind: server.OpGet, Key: id})
				}
			} else {
				err = w.connectOne()
			}
		}
		if err != nil {
			break
		}
	}
	w.flushAll()
}

// disconnectRandomLast removes the most recently connected session —
// the dos flood's open/close pairing.
func (w *worker) disconnectRandomLast() error {
	n := len(w.live)
	if n == 0 {
		return nil
	}
	id := w.live[n-1]
	w.live = w.live[:n-1]
	w.liveTotal.Add(-1)
	return w.appendOp(server.Op{Kind: server.OpDisconnect, Key: id})
}
