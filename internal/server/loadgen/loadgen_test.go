package loadgen

import (
	"fmt"
	"testing"
	"time"

	"prudence"
	"prudence/internal/server"
)

func smallConfig() Config {
	return Config{
		Sessions:   2000,
		Ops:        8000,
		BatchSize:  64,
		StallEvery: 25,
		StallHold:  2 * time.Millisecond,
		Seed:       7,
	}
}

// TestRunInvariants drives a small load across both allocators and
// every registered scheme and checks the generator's accounting
// against the server's applied state.
func TestRunInvariants(t *testing.T) {
	for _, alloc := range []prudence.AllocatorKind{prudence.Prudence, prudence.SLUB} {
		for _, scheme := range prudence.Reclamations() {
			t.Run(fmt.Sprintf("%s/%s", alloc, scheme), func(t *testing.T) {
				srv, err := server.New(server.Config{
					CPUs:                4,
					MemoryPages:         4096,
					Allocator:           alloc,
					Reclamation:         prudence.ReclamationKind(scheme),
					SessionBuckets:      1 << 10,
					GracePeriodInterval: time.Millisecond,
					MonitorInterval:     2 * time.Millisecond,
					MaxStall:            10 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				res := Run(srv, smallConfig())

				if res.OpsTotal == 0 {
					t.Fatal("no ops completed")
				}
				if res.ShutdownDrops != 0 {
					t.Fatalf("%d ops dropped at shutdown during a normal run", res.ShutdownDrops)
				}
				if res.OOMs != 0 {
					t.Fatalf("%d OOMs in a run sized to fit", res.OOMs)
				}
				// Applied state must match the generator's tally:
				// every OK connect minus every OK disconnect is live.
				if got, want := uint64(res.EndLive), res.Connects-res.Disconnects; got != want {
					t.Fatalf("live sessions %d != connects-disconnects %d", got, want)
				}
				if res.PeakLive < 2000/2 {
					t.Fatalf("peak live %d never approached the %d target", res.PeakLive, 2000)
				}
				if res.Stalls == 0 {
					t.Fatal("no slow-loris stalls served despite StallEvery")
				}
				if res.P99 == 0 {
					t.Fatal("no latency recorded")
				}
			})
		}
	}
}

// TestRunDeterministicOpMix replays the same seed twice and expects an
// identical submitted op mix (completion timing varies; the generated
// workload must not).
func TestRunDeterministicOpMix(t *testing.T) {
	counts := make([]Result, 2)
	for i := range counts {
		srv, err := server.New(server.Config{
			CPUs:                2,
			MemoryPages:         2048,
			SessionBuckets:      1 << 8,
			GracePeriodInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig()
		cfg.Sessions = 500
		cfg.Ops = 2000
		cfg.StallEvery = 0
		counts[i] = Run(srv, cfg)
		srv.Close()
	}
	a, b := counts[0], counts[1]
	if a.Connects != b.Connects || a.Disconnects != b.Disconnects ||
		a.OpsTotal != b.OpsTotal || a.RouteOps != b.RouteOps {
		t.Fatalf("same seed, different workload:\n%v\nvs\n%v", a, b)
	}
}
