// Package server is the long-running service built on top of the
// prudence facade: a session cache (RCU hash map) and a routing table
// (RCU treap) served by one worker goroutine per virtual CPU, with the
// full observability and backpressure story a deployed
// procrastination-based system needs — /metrics scraping, per-op
// latency histograms, retire-backlog monitoring that raises expedited
// grace-period demand, and graceful drain through the whole stack at
// shutdown.
//
// The design mirrors the ownership contract of the rest of the
// repository: virtual CPU i is owned by shard worker i, and every
// operation on RCU-protected state executes on the owning worker.
// Clients (the HTTP front end, the load generator) never touch the
// structures directly; they submit batches of operations to a shard's
// queue and wait for the reply. That keeps the per-CPU fast paths of
// the allocator and the reclamation backend uncontended even though
// requests arrive from arbitrary goroutines.
//
// Backpressure has two triggers. TrySubmit returns ErrBusy when a
// shard's queue is full — the HTTP layer turns that into 503 — and
// both paths raise ExpediteReclaim, on the theory that a saturated
// server is usually a server whose reclamation is behind (the paper's
// §3.4 DoS scenario). Independently, a monitor goroutine samples the
// backend's retire backlog and the allocator's latent-object gauges
// and expedites once they cross Config.BacklogHigh, bounding latent
// bytes even when the queues themselves are keeping up.
package server

import (
	"errors"
	"fmt"
	"strings"
	stdsync "sync"
	"sync/atomic"
	"time"

	"prudence"
	"prudence/internal/metrics"
	"prudence/internal/stats"
)

// OpKind identifies one operation a batch carries.
type OpKind uint8

// The operation vocabulary. Session operations hit the RCU hash map;
// route operations hit the RCU treap; OpStall occupies the shard
// inside a read-side critical section for Op.Hold — the slow-loris
// reader that arms nebr neutralization and keeps hp scan paths honest.
const (
	OpConnect     OpKind = iota // upsert session Key with payload Val
	OpGet                       // copy session Key's payload into Buf
	OpTouch                     // overwrite session Key's payload (copy-update)
	OpDisconnect                // delete session Key
	OpRouteAdd                  // upsert route Key with payload Val
	OpRouteLookup               // copy route Key's payload into Buf
	OpRouteDel                  // delete route Key
	OpStall                     // pin the shard in a read-side section for Hold
	numOpKinds
)

var opNames = [numOpKinds]string{
	"connect", "get", "touch", "disconnect",
	"route_add", "route_lookup", "route_del", "stall",
}

// String returns the metric-label spelling of the op kind.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op%d", int(k))
}

// Status is the per-operation outcome.
type Status uint8

// Operation outcomes.
const (
	StatusPending  Status = iota // not yet executed
	StatusOK                     // executed successfully
	StatusNotFound               // lookup/delete missed
	StatusOOM                    // allocation failed: arena exhausted
	StatusShutdown               // server closed before execution
)

var statusNames = [...]string{"pending", "ok", "not_found", "oom", "shutdown"}

// String returns the metric-label spelling of the status.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status%d", int(s))
}

// Op is one operation inside a Batch. The server never retains Val or
// Buf past the operation: payloads are copied into (out of) cache
// objects, so batch owners may reuse the backing memory as soon as the
// batch completes.
type Op struct {
	Kind   OpKind
	Key    uint64
	Val    []byte        // payload for Connect/Touch/RouteAdd
	Buf    []byte        // destination for Get/RouteLookup
	Hold   time.Duration // OpStall pin duration (clamped to Config.MaxStall)
	N      int           // bytes copied into Buf (set by the server)
	Status Status        // outcome (set by the server)
}

// Batch is a group of operations executed in order on one shard.
// Reply, if non-nil, receives the batch after its last op completes;
// it must have free capacity for every batch outstanding on it or the
// shard worker will block. A batch may be reused (reset Ops, resubmit)
// once it has been received back.
type Batch struct {
	Ops       []Op
	Reply     chan *Batch
	submitted time.Time
}

// NewBatch returns an empty batch with the given op capacity and a
// private reply channel of capacity one.
func NewBatch(capacity int) *Batch {
	return &Batch{Ops: make([]Op, 0, capacity), Reply: make(chan *Batch, 1)}
}

// Submission errors.
var (
	// ErrServerClosed is returned by Submit and TrySubmit after Close.
	ErrServerClosed = errors.New("server: closed")
	// ErrBusy is returned by TrySubmit when the shard queue is full.
	ErrBusy = errors.New("server: shard queue full")
)

// Config sizes the server and the prudence system underneath it. The
// zero value is a usable small deployment.
type Config struct {
	// CPUs is the virtual CPU count — one shard worker each
	// (default 8).
	CPUs int
	// MemoryPages is the arena size in 4KiB pages (default 16384).
	MemoryPages int
	// Allocator, Reclamation and Arena select the stack underneath
	// (defaults: Prudence, RCU, heap — the facade's defaults).
	Allocator   prudence.AllocatorKind
	Reclamation prudence.ReclamationKind
	Arena       prudence.ArenaKind
	// GracePeriodInterval passes through to the reclamation backend.
	GracePeriodInterval time.Duration
	// SessionBytes is the session payload object size (default 128).
	SessionBytes int
	// RouteBytes is the route payload object size (default 64).
	RouteBytes int
	// SessionBuckets is the hash map bucket count, a power of two
	// (default 1<<14).
	SessionBuckets int
	// QueueDepth is the per-shard batch queue capacity (default 64).
	QueueDepth int
	// BacklogHigh is the latent-object count past which the monitor
	// raises expedited grace-period demand (default 1<<16; negative
	// disables the monitor's expedite trigger).
	BacklogHigh int
	// MonitorInterval is the backlog sampling period (default 20ms).
	MonitorInterval time.Duration
	// MaxStall clamps OpStall hold times (default 100ms).
	MaxStall time.Duration
}

func (cfg *Config) fill() {
	if cfg.SessionBytes <= 0 {
		cfg.SessionBytes = 128
	}
	if cfg.RouteBytes <= 0 {
		cfg.RouteBytes = 64
	}
	if cfg.SessionBuckets <= 0 {
		cfg.SessionBuckets = 1 << 14
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.BacklogHigh == 0 {
		cfg.BacklogHigh = 1 << 16
	}
	if cfg.MonitorInterval <= 0 {
		cfg.MonitorInterval = 20 * time.Millisecond
	}
	if cfg.MaxStall <= 0 {
		cfg.MaxStall = 100 * time.Millisecond
	}
}

// Server is the running service. Create with New, submit work with
// Submit/TrySubmit (or through the HTTP handler), stop with Close.
type Server struct {
	cfg    Config
	sys    *prudence.System
	shards int

	sessionCache *prudence.Cache
	routeCache   *prudence.Cache
	sessions     *prudence.Map
	routes       *prudence.Tree

	// scratch[cpu] is the shard's value-framing buffer: the RCU
	// structures store fixed-size objects with no length, so payloads
	// travel as [uint16 length | bytes]. Only the owning worker
	// touches its slot.
	scratch [][]byte

	queues []chan *Batch
	stop   chan struct{}
	closed atomic.Bool
	wg     stdsync.WaitGroup
	once   stdsync.Once

	reg     *metrics.Registry
	latency [numOpKinds]*stats.Histogram
	opsDone [numOpKinds]*metrics.Counter
	batches *metrics.Counter

	busyRejects   atomic.Uint64
	ooms          atomic.Uint64
	expedites     atomic.Uint64
	stallsServed  atomic.Uint64
	lastBacklog   atomic.Int64
	lastLatentB   atomic.Int64
	peakBacklog   atomic.Int64
	peakLatentB   atomic.Int64
	monitorPasses atomic.Uint64
}

// New builds the full stack — arena, allocator, reclamation backend,
// caches, RCU structures — and starts the shard workers and the
// backlog monitor.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	sys, err := prudence.New(prudence.Config{
		CPUs:                cfg.CPUs,
		MemoryPages:         cfg.MemoryPages,
		Allocator:           cfg.Allocator,
		Reclamation:         cfg.Reclamation,
		Arena:               cfg.Arena,
		GracePeriodInterval: cfg.GracePeriodInterval,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		sys:    sys,
		shards: sys.NumCPU(),
		stop:   make(chan struct{}),
		reg:    metrics.NewRegistry(),
	}
	s.sessionCache = sys.NewCache("server-sessions", cfg.SessionBytes)
	s.routeCache = sys.NewCache("server-routes", cfg.RouteBytes)
	scratchLen := cfg.SessionBytes
	if cfg.RouteBytes > scratchLen {
		scratchLen = cfg.RouteBytes
	}
	s.scratch = make([][]byte, sys.NumCPU())
	for i := range s.scratch {
		s.scratch[i] = make([]byte, scratchLen)
	}
	s.sessions = sys.NewMap(s.sessionCache, cfg.SessionBuckets)
	s.routes = sys.NewTree(s.routeCache)
	s.queues = make([]chan *Batch, s.shards)
	for i := range s.queues {
		s.queues[i] = make(chan *Batch, cfg.QueueDepth)
	}
	s.registerMetrics()
	s.wg.Add(s.shards + 1)
	for i := 0; i < s.shards; i++ {
		go s.worker(i)
	}
	go s.monitor()
	return s, nil
}

func (s *Server) registerMetrics() {
	for k := OpKind(0); k < numOpKinds; k++ {
		s.latency[k] = s.reg.NewHistogram("prudence_server_op_latency",
			"Submit-to-completion latency per operation, by kind.",
			metrics.Label{Name: "op", Value: k.String()})
		s.opsDone[k] = s.reg.NewCounter("prudence_server_ops_total",
			"Operations completed, by kind.", s.shards,
			metrics.Label{Name: "op", Value: k.String()})
	}
	s.batches = s.reg.NewCounter("prudence_server_batches_total",
		"Batches completed.", s.shards)
	s.reg.GaugeFunc("prudence_server_sessions_live",
		"Sessions currently resident in the session map.",
		func() float64 { return float64(s.sessions.Len()) })
	s.reg.GaugeFunc("prudence_server_routes",
		"Routes currently resident in the routing table.",
		func() float64 { return float64(s.routes.Len()) })
	s.reg.GaugeFunc("prudence_server_queue_depth",
		"Batches waiting in shard queues.", func() float64 {
			n := 0
			for _, q := range s.queues {
				n += len(q)
			}
			return float64(n)
		})
	s.reg.CounterFunc("prudence_server_busy_rejects_total",
		"TrySubmit rejections due to a full shard queue.",
		func() float64 { return float64(s.busyRejects.Load()) })
	s.reg.CounterFunc("prudence_server_oom_total",
		"Operations failed on arena exhaustion.",
		func() float64 { return float64(s.ooms.Load()) })
	s.reg.CounterFunc("prudence_server_expedites_total",
		"Expedited grace periods raised by backpressure.",
		func() float64 { return float64(s.expedites.Load()) })
	s.reg.CounterFunc("prudence_server_stalls_total",
		"Slow-loris stall operations served.",
		func() float64 { return float64(s.stallsServed.Load()) })
	s.reg.GaugeFunc("prudence_server_latent_objects",
		"Latent objects at the last monitor sample (backend retire "+
			"backlog plus allocator latent gauges).",
		func() float64 { return float64(s.lastBacklog.Load()) })
	s.reg.GaugeFunc("prudence_server_latent_bytes",
		"Estimated latent bytes at the last monitor sample.",
		func() float64 { return float64(s.lastLatentB.Load()) })
	s.reg.GaugeFunc("prudence_server_latent_bytes_peak",
		"Largest latent-byte estimate observed by the monitor.",
		func() float64 { return float64(s.peakLatentB.Load()) })
}

// System returns the prudence system underneath the server, for tests
// and load reports that need direct metric access.
func (s *Server) System() *prudence.System { return s.sys }

// Shards returns the shard (and virtual CPU) count.
func (s *Server) Shards() int { return s.shards }

// ShardFor maps a key to the shard that must execute its operations.
// All operations on one key route to one shard, so a single client's
// writes to a key are applied in submission order.
func (s *Server) ShardFor(key uint64) int {
	return int(mix64(key) % uint64(s.shards))
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche hash so
// sequential session ids spread across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Submit enqueues b on shard, blocking while the queue is full. It
// fails only once the server is closing.
func (s *Server) Submit(shard int, b *Batch) error {
	if s.closed.Load() {
		return ErrServerClosed
	}
	b.submitted = time.Now()
	select {
	case s.queues[shard] <- b:
		return nil
	case <-s.stop:
		return ErrServerClosed
	}
}

// TrySubmit enqueues b on shard without blocking. A full queue returns
// ErrBusy and raises expedited reclamation — saturation usually means
// the backend is behind the update rate, and shedding load without
// expediting would leave the latent backlog in place.
func (s *Server) TrySubmit(shard int, b *Batch) error {
	if s.closed.Load() {
		return ErrServerClosed
	}
	b.submitted = time.Now()
	select {
	case s.queues[shard] <- b:
		return nil
	case <-s.stop:
		return ErrServerClosed
	default:
		s.busyRejects.Add(1)
		s.expedites.Add(1)
		s.sys.ExpediteReclaim()
		return ErrBusy
	}
}

// worker owns virtual CPU `shard`: it executes every batch submitted
// to that shard, reporting quiescent states between operations and
// entering the extended quiescent state (idle) around blocking queue
// receives so an empty shard never stalls grace periods.
func (s *Server) worker(shard int) {
	defer s.wg.Done()
	q := s.queues[shard]
	for {
		select {
		case b := <-q:
			s.runBatch(shard, b)
			continue
		default:
		}
		s.sys.QuiescentState(shard)
		s.sys.EnterIdle(shard)
		select {
		case b := <-q:
			s.sys.ExitIdle(shard)
			s.runBatch(shard, b)
		case <-s.stop:
			s.sys.ExitIdle(shard)
			// Drain: every batch accepted before the stop must still
			// execute and reply, or its submitter waits forever.
			for {
				select {
				case b := <-q:
					s.runBatch(shard, b)
				default:
					s.sys.QuiescentState(shard)
					s.sys.EnterIdle(shard)
					return
				}
			}
		}
	}
}

func (s *Server) runBatch(cpu int, b *Batch) {
	for i := range b.Ops {
		s.runOp(cpu, &b.Ops[i])
		s.sys.QuiescentState(cpu)
	}
	// One latency sample per op at batch completion: queueing delay
	// plus service of everything ahead of it in the batch, which is
	// what a client sharing the batch would observe.
	lat := time.Since(b.submitted)
	for i := range b.Ops {
		k := b.Ops[i].Kind
		if k < numOpKinds {
			s.latency[k].Observe(lat)
			s.opsDone[k].Inc(cpu)
		}
	}
	s.batches.Inc(cpu)
	if b.Reply != nil {
		b.Reply <- b
	}
}

// frame packs v into cpu's scratch buffer as [uint16 length | bytes],
// truncating to the cache's usable payload capacity (size-2).
func (s *Server) frame(cpu int, v []byte, size int) []byte {
	sc := s.scratch[cpu][:size]
	n := len(v)
	if n > size-2 {
		n = size - 2
	}
	sc[0] = byte(n)
	sc[1] = byte(n >> 8)
	copy(sc[2:], v[:n])
	return sc[:2+n]
}

// readFramed copies the framed value for key out of get into dst,
// returning the payload length and whether the key existed.
func (s *Server) readFramed(cpu int, get func(int, uint64, []byte) (int, bool), key uint64, size int, dst []byte) (int, bool) {
	sc := s.scratch[cpu][:size]
	n, ok := get(cpu, key, sc)
	if !ok {
		return 0, false
	}
	if n < 2 {
		return 0, true
	}
	l := int(sc[0]) | int(sc[1])<<8
	if l > n-2 {
		l = n - 2
	}
	return copy(dst, sc[2:2+l]), true
}

func (s *Server) runOp(cpu int, op *Op) {
	switch op.Kind {
	case OpConnect, OpTouch:
		if err := s.sessions.Put(cpu, op.Key, s.frame(cpu, op.Val, s.cfg.SessionBytes)); err != nil {
			op.Status = s.failStatus(err)
			return
		}
		op.Status = StatusOK
	case OpGet:
		n, ok := s.readFramed(cpu, s.sessions.Get, op.Key, s.cfg.SessionBytes, op.Buf)
		op.N = n
		if ok {
			op.Status = StatusOK
		} else {
			op.Status = StatusNotFound
		}
	case OpDisconnect:
		ok, err := s.sessions.Delete(cpu, op.Key)
		if err != nil {
			op.Status = s.failStatus(err)
			return
		}
		if ok {
			op.Status = StatusOK
		} else {
			op.Status = StatusNotFound
		}
	case OpRouteAdd:
		if err := s.routes.Put(cpu, op.Key, s.frame(cpu, op.Val, s.cfg.RouteBytes)); err != nil {
			op.Status = s.failStatus(err)
			return
		}
		op.Status = StatusOK
	case OpRouteLookup:
		n, ok := s.readFramed(cpu, s.routes.Get, op.Key, s.cfg.RouteBytes, op.Buf)
		op.N = n
		if ok {
			op.Status = StatusOK
		} else {
			op.Status = StatusNotFound
		}
	case OpRouteDel:
		ok, err := s.routes.Delete(cpu, op.Key)
		if err != nil {
			op.Status = s.failStatus(err)
			return
		}
		if ok {
			op.Status = StatusOK
		} else {
			op.Status = StatusNotFound
		}
	case OpStall:
		s.stall(cpu, op)
	default:
		op.Status = StatusNotFound
	}
}

// stall is the slow-loris reader: it pins the shard inside a read-side
// critical section for the requested hold. Under rcu this visibly
// delays grace periods; under nebr it runs long enough to be
// neutralized; under hp it forces scans to walk a stable hazard. The
// hold is clamped so a hostile client cannot park a shard forever, and
// a closing server cuts it short.
func (s *Server) stall(cpu int, op *Op) {
	hold := op.Hold
	if hold <= 0 || hold > s.cfg.MaxStall {
		hold = s.cfg.MaxStall
	}
	s.sys.ReadLock(cpu)
	t := time.NewTimer(hold)
	select { //prudence:nolint:sleepcheck the stall op exists to park a reader inside the read-side section: it is the adversarial slow-loris input the reclamation tiers are measured against
	case <-t.C:
	case <-s.stop:
		t.Stop()
	}
	s.sys.ReadUnlock(cpu)
	s.stallsServed.Add(1)
	op.Status = StatusOK
}

func (s *Server) failStatus(err error) Status {
	if errors.Is(err, prudence.ErrOutOfMemory) {
		s.ooms.Add(1)
		s.expedites.Add(1)
		s.sys.ExpediteReclaim()
		return StatusOOM
	}
	return StatusNotFound
}

// monitor samples the stack's latent backlog: the reclamation
// backend's retire/callback queues plus the Prudence allocator's
// latent-object gauges. Past Config.BacklogHigh it raises expedited
// grace-period demand — the deployed analogue of the paper's §3.5
// memory-pressure wiring, triggered by garbage accumulation rather
// than page exhaustion.
func (s *Server) monitor() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.MonitorInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sampleBacklog()
		}
	}
}

func (s *Server) sampleBacklog() {
	g := s.sys.GatherMetrics()
	var objs, latent float64
	for name, v := range g {
		switch {
		// Exact names: the *_peak high-water variants of these gauges
		// must not count, or the estimate never comes back down.
		case name == "prudence_sync_retire_backlog",
			name == "prudence_rcu_callback_backlog":
			// Backend-side backlog (the SLUB path). Cache attribution
			// is gone by the time an object reaches the retire queue;
			// estimate with the dominant (session) object size.
			objs += v
			latent += v * float64(s.cfg.SessionBytes)
		case strings.HasPrefix(name, "prudence_cache_latent_objects"):
			// Allocator-side latent objects (the Prudence path) carry
			// cache labels, so size attribution is exact.
			objs += v
			sz := s.cfg.SessionBytes
			if strings.Contains(name, s.routeCache.Name()) {
				sz = s.cfg.RouteBytes
			}
			latent += v * float64(sz)
		}
	}
	s.monitorPasses.Add(1)
	s.lastBacklog.Store(int64(objs))
	s.lastLatentB.Store(int64(latent))
	if int64(objs) > s.peakBacklog.Load() {
		s.peakBacklog.Store(int64(objs))
	}
	if int64(latent) > s.peakLatentB.Load() {
		s.peakLatentB.Store(int64(latent))
	}
	if s.cfg.BacklogHigh >= 0 && objs > float64(s.cfg.BacklogHigh) {
		s.expedites.Add(1)
		s.sys.ExpediteReclaim()
	}
}

// Latency returns the latency histogram for one op kind.
func (s *Server) Latency(kind OpKind) *stats.Histogram { return s.latency[kind] }

// PeakLatentBytes returns the largest latent-byte estimate the monitor
// observed.
func (s *Server) PeakLatentBytes() int64 { return s.peakLatentB.Load() }

// PeakLatentObjects returns the largest latent-object count the
// monitor observed.
func (s *Server) PeakLatentObjects() int64 { return s.peakBacklog.Load() }

// Expedites returns the number of expedited grace periods raised by
// the server's backpressure paths.
func (s *Server) Expedites() uint64 { return s.expedites.Load() }

// OOMs returns the number of operations failed on arena exhaustion.
func (s *Server) OOMs() uint64 { return s.ooms.Load() }

// BusyRejects returns the number of TrySubmit shed loads.
func (s *Server) BusyRejects() uint64 { return s.busyRejects.Load() }

// LiveSessions returns the sessions currently resident.
func (s *Server) LiveSessions() int { return s.sessions.Len() }

// Routes returns the routes currently resident.
func (s *Server) Routes() int { return s.routes.Len() }

// OpsCompleted returns the total operations completed for kind.
func (s *Server) OpsCompleted(kind OpKind) uint64 { return s.opsDone[kind].Value() }

// Close shuts the service down gracefully: refuse new submissions, let
// the workers drain every accepted batch, flush the caches' latent and
// cached objects back to the arena (waiting out grace periods), then
// stop the stack. Close is idempotent and safe to call concurrently.
func (s *Server) Close() {
	s.once.Do(func() {
		s.closed.Store(true)
		close(s.stop)
		s.wg.Wait()
		// A submitter that raced Close may have enqueued after its
		// worker's final drain pass; fail those batches explicitly so
		// no client waits forever on a reply.
		for _, q := range s.queues {
		sweep:
			for {
				select {
				case b := <-q:
					for i := range b.Ops {
						b.Ops[i].Status = StatusShutdown
					}
					if b.Reply != nil {
						b.Reply <- b
					}
				default:
					break sweep
				}
			}
		}
		s.sessionCache.Drain()
		s.routeCache.Drain()
		s.sys.Close()
	})
}
