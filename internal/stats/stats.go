// Package stats provides the metric plumbing shared by the allocators
// and the benchmark harness: atomic counter sets matching the attributes
// the paper reports (cache hits, object cache churns, slab churns, peak
// slab usage, total fragmentation), a time-series sampler for the
// used-memory traces of Figure 3, and small formatting helpers.
package stats

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// hotShards is the number of per-CPU shards in AllocCounters. A power
// of two so the shard index is a mask; larger than any machine the
// experiments build so distinct CPUs get distinct shards.
const hotShards = 64

// hotShard packs the counters every single Malloc/Free touches into
// one cache line owned by one CPU, padded to 128 bytes so adjacent
// CPUs' shards never share a line (nor an adjacent-line prefetch
// pair). One allocation updates allocs, cacheHits and requested — all
// on the CPU's own line — instead of three shared atomics contended by
// every core.
//
//prudence:padded 128
type hotShard struct {
	allocs        atomic.Uint64
	cacheHits     atomic.Uint64
	latentHits    atomic.Uint64
	frees         atomic.Uint64
	deferredFrees atomic.Uint64
	requested     atomic.Int64 // live objects held by users (may go negative per shard)
	_             [80]byte
}

// AllocCounters is the live, atomically-updated counter set for one slab
// cache (or one allocator instance). The quantities map one-to-one onto
// the paper's Figures 7-12.
//
// The fast-path counters (allocation requests, cache hits, frees,
// deferred frees, live-object accounting) are sharded per CPU and
// cache-line padded: increments touch only the owning CPU's line and
// reads sum the shards. The slow-path counters (refills, flushes,
// grows, ...) are updated at most once per node-lock crossing and stay
// single atomics.
type AllocCounters struct {
	hot [hotShards]hotShard

	Refills      atomic.Uint64 // object cache refill operations
	PartialFills atomic.Uint64 // refills that were deliberately partial (Prudence)
	Flushes      atomic.Uint64 // object cache flush operations
	PreFlushes   atomic.Uint64 // idle-time latent cache pre-flush operations (Prudence)
	Grows        atomic.Uint64 // slab cache grow operations (pages allocated)
	Shrinks      atomic.Uint64 // slab cache shrink operations (pages returned)
	PreMoves     atomic.Uint64 // slab pre-movements between node lists (Prudence)
	GPWaits      atomic.Uint64 // allocations that had to wait for a grace period (OOM delay)
	// OOMDelayTimeouts counts OOM-delay waits that timed out before a
	// grace period elapsed (stalled or overloaded grace-period engine).
	OOMDelayTimeouts atomic.Uint64
	OOMs             atomic.Uint64 // allocations that failed with out-of-memory

	peakSlabs    atomic.Int64
	currentSlabs atomic.Int64
}

func (c *AllocCounters) shard(cpu int) *hotShard {
	return &c.hot[uint(cpu)&(hotShards-1)]
}

// IncAllocs counts one allocation request on cpu.
func (c *AllocCounters) IncAllocs(cpu int) { c.shard(cpu).allocs.Add(1) }

// IncCacheHits counts one allocation served from cpu's object cache.
func (c *AllocCounters) IncCacheHits(cpu int) { c.shard(cpu).cacheHits.Add(1) }

// IncLatentHits counts one allocation served by a latent merge on cpu.
func (c *AllocCounters) IncLatentHits(cpu int) { c.shard(cpu).latentHits.Add(1) }

// IncFrees counts one immediate free on cpu.
func (c *AllocCounters) IncFrees(cpu int) { c.shard(cpu).frees.Add(1) }

// IncDeferredFrees counts one deferred free on cpu.
func (c *AllocCounters) IncDeferredFrees(cpu int) { c.shard(cpu).deferredFrees.Add(1) }

// UserAlloc accounts one object handed to a user on cpu.
func (c *AllocCounters) UserAlloc(cpu int) { c.shard(cpu).requested.Add(1) }

// UserFree accounts one object returned by a user on cpu (free or
// deferred). Objects may be freed on a different CPU than they were
// allocated on, so an individual shard's count may legitimately go
// negative; only the sum is meaningful.
func (c *AllocCounters) UserFree(cpu int) { c.shard(cpu).requested.Add(-1) }

// Allocs returns total allocation requests.
func (c *AllocCounters) Allocs() uint64 {
	return c.sum(func(s *hotShard) uint64 { return s.allocs.Load() })
}

// CacheHits returns allocations served from per-CPU object caches.
func (c *AllocCounters) CacheHits() uint64 {
	return c.sum(func(s *hotShard) uint64 { return s.cacheHits.Load() })
}

// LatentHits returns allocations served by merging safe latent objects.
func (c *AllocCounters) LatentHits() uint64 {
	return c.sum(func(s *hotShard) uint64 { return s.latentHits.Load() })
}

// Frees returns immediate frees.
func (c *AllocCounters) Frees() uint64 {
	return c.sum(func(s *hotShard) uint64 { return s.frees.Load() })
}

// DeferredFrees returns frees deferred for a grace period.
func (c *AllocCounters) DeferredFrees() uint64 {
	return c.sum(func(s *hotShard) uint64 { return s.deferredFrees.Load() })
}

// Requested returns the number of objects currently held by users. The
// value is exact when the cache is quiescent; concurrent updates on
// other CPUs may skew a live read by the operations in flight.
func (c *AllocCounters) Requested() int64 {
	var total int64
	for i := range c.hot {
		total += c.hot[i].requested.Load()
	}
	return total
}

func (c *AllocCounters) sum(read func(*hotShard) uint64) uint64 {
	var total uint64
	for i := range c.hot {
		total += read(&c.hot[i])
	}
	return total
}

// SlabGrown records count slabs added and maintains the peak.
func (c *AllocCounters) SlabGrown(count int) {
	c.Grows.Add(uint64(count))
	cur := c.currentSlabs.Add(int64(count))
	for {
		peak := c.peakSlabs.Load()
		if cur <= peak || c.peakSlabs.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// SlabShrunk records count slabs returned to the page allocator.
func (c *AllocCounters) SlabShrunk(count int) {
	c.Shrinks.Add(uint64(count))
	if c.currentSlabs.Add(int64(-count)) < 0 {
		panic("stats: negative slab count")
	}
}

// CurrentSlabs returns the number of slabs currently allocated.
func (c *AllocCounters) CurrentSlabs() int { return int(c.currentSlabs.Load()) }

// PeakSlabs returns the high-water mark of allocated slabs.
func (c *AllocCounters) PeakSlabs() int { return int(c.peakSlabs.Load()) }

// AllocSnapshot is an immutable copy of AllocCounters.
type AllocSnapshot struct {
	Allocs        uint64
	CacheHits     uint64
	LatentHits    uint64
	Refills       uint64
	PartialFills  uint64
	Flushes       uint64
	PreFlushes    uint64
	Grows         uint64
	Shrinks       uint64
	Frees         uint64
	DeferredFrees uint64
	PreMoves      uint64
	GPWaits       uint64
	// OOMDelayTimeouts counts OOM-delay waits that hit their deadline.
	OOMDelayTimeouts uint64
	OOMs             uint64
	PeakSlabs        int
	CurrentSlabs     int
}

// Snapshot copies the counters.
func (c *AllocCounters) Snapshot() AllocSnapshot {
	return AllocSnapshot{
		Allocs:           c.Allocs(),
		CacheHits:        c.CacheHits(),
		LatentHits:       c.LatentHits(),
		Refills:          c.Refills.Load(),
		PartialFills:     c.PartialFills.Load(),
		Flushes:          c.Flushes.Load(),
		PreFlushes:       c.PreFlushes.Load(),
		Grows:            c.Grows.Load(),
		Shrinks:          c.Shrinks.Load(),
		Frees:            c.Frees(),
		DeferredFrees:    c.DeferredFrees(),
		PreMoves:         c.PreMoves.Load(),
		GPWaits:          c.GPWaits.Load(),
		OOMDelayTimeouts: c.OOMDelayTimeouts.Load(),
		OOMs:             c.OOMs.Load(),
		PeakSlabs:        c.PeakSlabs(),
		CurrentSlabs:     c.CurrentSlabs(),
	}
}

// Sub returns the difference s - o, field by field (peaks and current
// values are taken from s).
func (s AllocSnapshot) Sub(o AllocSnapshot) AllocSnapshot {
	return AllocSnapshot{
		Allocs:           s.Allocs - o.Allocs,
		CacheHits:        s.CacheHits - o.CacheHits,
		LatentHits:       s.LatentHits - o.LatentHits,
		Refills:          s.Refills - o.Refills,
		PartialFills:     s.PartialFills - o.PartialFills,
		Flushes:          s.Flushes - o.Flushes,
		PreFlushes:       s.PreFlushes - o.PreFlushes,
		Grows:            s.Grows - o.Grows,
		Shrinks:          s.Shrinks - o.Shrinks,
		Frees:            s.Frees - o.Frees,
		DeferredFrees:    s.DeferredFrees - o.DeferredFrees,
		PreMoves:         s.PreMoves - o.PreMoves,
		GPWaits:          s.GPWaits - o.GPWaits,
		OOMDelayTimeouts: s.OOMDelayTimeouts - o.OOMDelayTimeouts,
		OOMs:             s.OOMs - o.OOMs,
		PeakSlabs:        s.PeakSlabs,
		CurrentSlabs:     s.CurrentSlabs,
	}
}

// CacheHitRate returns the fraction of allocations served from the
// object cache (including latent merges, which the paper counts as
// cache hits since no node-list work is involved).
func (s AllocSnapshot) CacheHitRate() float64 {
	if s.Allocs == 0 {
		return 0
	}
	return float64(s.CacheHits+s.LatentHits) / float64(s.Allocs)
}

// ObjectCacheChurns returns the number of refill/flush pairs — the
// object cache churn metric of Figure 8.
func (s AllocSnapshot) ObjectCacheChurns() uint64 {
	return min(s.Refills, s.Flushes)
}

// SlabChurns returns the number of grow/shrink pairs — the slab churn
// metric of Figure 9.
func (s AllocSnapshot) SlabChurns() uint64 {
	return min(s.Grows, s.Shrinks)
}

// DeferredFreeRatio returns the fraction of free operations that were
// deferred — the metric of Figure 12.
func (s AllocSnapshot) DeferredFreeRatio() float64 {
	total := s.Frees + s.DeferredFrees
	if total == 0 {
		return 0
	}
	return float64(s.DeferredFrees) / float64(total)
}

// Point is one sample of a time series.
type Point struct {
	T time.Time
	V float64
}

// Series is a concurrency-safe append-only time series.
type Series struct {
	mu     sync.Mutex
	points []Point
}

// Add appends a sample with the current time.
func (s *Series) Add(v float64) { s.AddAt(time.Now(), v) }

// AddAt appends a sample with an explicit timestamp.
func (s *Series) AddAt(t time.Time, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{T: t, V: v})
	s.mu.Unlock()
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Points returns a copy of all samples.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Max returns the maximum sample value, or 0 for an empty series.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := 0.0
	for _, p := range s.points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Downsample returns at most n points, evenly spaced across the series.
func (s *Series) Downsample(n int) []Point {
	pts := s.Points()
	if n <= 0 || len(pts) <= n {
		return pts
	}
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*len(pts)/n])
	}
	return out
}

// Table is a minimal fixed-width text table builder used by the bench
// harness to print paper-style result tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Ratio formats new/old as a human-readable improvement multiple or
// percentage delta, matching how the paper reports results.
func Ratio(baseline, improved float64) string {
	if baseline == 0 {
		return "n/a"
	}
	r := improved / baseline
	if r >= 2 {
		return fmt.Sprintf("%.1fx", r)
	}
	return fmt.Sprintf("%+.1f%%", (r-1)*100)
}
