// Package stats provides the metric plumbing shared by the allocators
// and the benchmark harness: atomic counter sets matching the attributes
// the paper reports (cache hits, object cache churns, slab churns, peak
// slab usage, total fragmentation), a time-series sampler for the
// used-memory traces of Figure 3, and small formatting helpers.
package stats

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// AllocCounters is the live, atomically-updated counter set for one slab
// cache (or one allocator instance). The fields map one-to-one onto the
// quantities in the paper's Figures 7-12.
type AllocCounters struct {
	Allocs        atomic.Uint64 // total allocation requests
	CacheHits     atomic.Uint64 // allocations served from the per-CPU object cache
	LatentHits    atomic.Uint64 // allocations served by merging safe latent objects (Prudence)
	Refills       atomic.Uint64 // object cache refill operations
	PartialFills  atomic.Uint64 // refills that were deliberately partial (Prudence)
	Flushes       atomic.Uint64 // object cache flush operations
	PreFlushes    atomic.Uint64 // idle-time latent cache pre-flush operations (Prudence)
	Grows         atomic.Uint64 // slab cache grow operations (pages allocated)
	Shrinks       atomic.Uint64 // slab cache shrink operations (pages returned)
	Frees         atomic.Uint64 // immediate frees
	DeferredFrees atomic.Uint64 // frees deferred for a grace period
	PreMoves      atomic.Uint64 // slab pre-movements between node lists (Prudence)
	GPWaits       atomic.Uint64 // allocations that had to wait for a grace period (OOM delay)
	OOMs          atomic.Uint64 // allocations that failed with out-of-memory

	peakSlabs    atomic.Int64
	currentSlabs atomic.Int64
}

// SlabGrown records count slabs added and maintains the peak.
func (c *AllocCounters) SlabGrown(count int) {
	c.Grows.Add(uint64(count))
	cur := c.currentSlabs.Add(int64(count))
	for {
		peak := c.peakSlabs.Load()
		if cur <= peak || c.peakSlabs.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// SlabShrunk records count slabs returned to the page allocator.
func (c *AllocCounters) SlabShrunk(count int) {
	c.Shrinks.Add(uint64(count))
	if c.currentSlabs.Add(int64(-count)) < 0 {
		panic("stats: negative slab count")
	}
}

// CurrentSlabs returns the number of slabs currently allocated.
func (c *AllocCounters) CurrentSlabs() int { return int(c.currentSlabs.Load()) }

// PeakSlabs returns the high-water mark of allocated slabs.
func (c *AllocCounters) PeakSlabs() int { return int(c.peakSlabs.Load()) }

// AllocSnapshot is an immutable copy of AllocCounters.
type AllocSnapshot struct {
	Allocs        uint64
	CacheHits     uint64
	LatentHits    uint64
	Refills       uint64
	PartialFills  uint64
	Flushes       uint64
	PreFlushes    uint64
	Grows         uint64
	Shrinks       uint64
	Frees         uint64
	DeferredFrees uint64
	PreMoves      uint64
	GPWaits       uint64
	OOMs          uint64
	PeakSlabs     int
	CurrentSlabs  int
}

// Snapshot copies the counters.
func (c *AllocCounters) Snapshot() AllocSnapshot {
	return AllocSnapshot{
		Allocs:        c.Allocs.Load(),
		CacheHits:     c.CacheHits.Load(),
		LatentHits:    c.LatentHits.Load(),
		Refills:       c.Refills.Load(),
		PartialFills:  c.PartialFills.Load(),
		Flushes:       c.Flushes.Load(),
		PreFlushes:    c.PreFlushes.Load(),
		Grows:         c.Grows.Load(),
		Shrinks:       c.Shrinks.Load(),
		Frees:         c.Frees.Load(),
		DeferredFrees: c.DeferredFrees.Load(),
		PreMoves:      c.PreMoves.Load(),
		GPWaits:       c.GPWaits.Load(),
		OOMs:          c.OOMs.Load(),
		PeakSlabs:     c.PeakSlabs(),
		CurrentSlabs:  c.CurrentSlabs(),
	}
}

// Sub returns the difference s - o, field by field (peaks and current
// values are taken from s).
func (s AllocSnapshot) Sub(o AllocSnapshot) AllocSnapshot {
	return AllocSnapshot{
		Allocs:        s.Allocs - o.Allocs,
		CacheHits:     s.CacheHits - o.CacheHits,
		LatentHits:    s.LatentHits - o.LatentHits,
		Refills:       s.Refills - o.Refills,
		PartialFills:  s.PartialFills - o.PartialFills,
		Flushes:       s.Flushes - o.Flushes,
		PreFlushes:    s.PreFlushes - o.PreFlushes,
		Grows:         s.Grows - o.Grows,
		Shrinks:       s.Shrinks - o.Shrinks,
		Frees:         s.Frees - o.Frees,
		DeferredFrees: s.DeferredFrees - o.DeferredFrees,
		PreMoves:      s.PreMoves - o.PreMoves,
		GPWaits:       s.GPWaits - o.GPWaits,
		OOMs:          s.OOMs - o.OOMs,
		PeakSlabs:     s.PeakSlabs,
		CurrentSlabs:  s.CurrentSlabs,
	}
}

// CacheHitRate returns the fraction of allocations served from the
// object cache (including latent merges, which the paper counts as
// cache hits since no node-list work is involved).
func (s AllocSnapshot) CacheHitRate() float64 {
	if s.Allocs == 0 {
		return 0
	}
	return float64(s.CacheHits+s.LatentHits) / float64(s.Allocs)
}

// ObjectCacheChurns returns the number of refill/flush pairs — the
// object cache churn metric of Figure 8.
func (s AllocSnapshot) ObjectCacheChurns() uint64 {
	return min(s.Refills, s.Flushes)
}

// SlabChurns returns the number of grow/shrink pairs — the slab churn
// metric of Figure 9.
func (s AllocSnapshot) SlabChurns() uint64 {
	return min(s.Grows, s.Shrinks)
}

// DeferredFreeRatio returns the fraction of free operations that were
// deferred — the metric of Figure 12.
func (s AllocSnapshot) DeferredFreeRatio() float64 {
	total := s.Frees + s.DeferredFrees
	if total == 0 {
		return 0
	}
	return float64(s.DeferredFrees) / float64(total)
}

// Point is one sample of a time series.
type Point struct {
	T time.Time
	V float64
}

// Series is a concurrency-safe append-only time series.
type Series struct {
	mu     sync.Mutex
	points []Point
}

// Add appends a sample with the current time.
func (s *Series) Add(v float64) { s.AddAt(time.Now(), v) }

// AddAt appends a sample with an explicit timestamp.
func (s *Series) AddAt(t time.Time, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{T: t, V: v})
	s.mu.Unlock()
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Points returns a copy of all samples.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Max returns the maximum sample value, or 0 for an empty series.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := 0.0
	for _, p := range s.points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Downsample returns at most n points, evenly spaced across the series.
func (s *Series) Downsample(n int) []Point {
	pts := s.Points()
	if n <= 0 || len(pts) <= n {
		return pts
	}
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*len(pts)/n])
	}
	return out
}

// Table is a minimal fixed-width text table builder used by the bench
// harness to print paper-style result tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Ratio formats new/old as a human-readable improvement multiple or
// percentage delta, matching how the paper reports results.
func Ratio(baseline, improved float64) string {
	if baseline == 0 {
		return "n/a"
	}
	r := improved / baseline
	if r >= 2 {
		return fmt.Sprintf("%.1fx", r)
	}
	return fmt.Sprintf("%+.1f%%", (r-1)*100)
}
