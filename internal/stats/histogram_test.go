package stats

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for _, d := range []time.Duration{10, 20, 30, 40, 1000} {
		h.Observe(d * time.Nanosecond)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 10*time.Nanosecond || h.Max() != 1000*time.Nanosecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 220*time.Nanosecond {
		t.Fatalf("Mean = %v", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 99 fast observations, 1 slow.
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Nanosecond)
	}
	h.Observe(100 * time.Microsecond)
	p50 := h.Quantile(0.5)
	p999 := h.Quantile(0.999)
	// Log buckets: p50 within a factor of two of 100ns.
	if p50 < 64*time.Nanosecond || p50 > 256*time.Nanosecond {
		t.Fatalf("p50 = %v, want ~100ns", p50)
	}
	if p999 < 50*time.Microsecond {
		t.Fatalf("p999 = %v, want to catch the slow outlier", p999)
	}
	if h.Quantile(0) != 0 || h.Quantile(1.5) != 0 {
		t.Fatal("out-of-range quantiles should be 0")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5 * time.Nanosecond)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative observation mishandled: %s", h.String())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Input must not be reordered.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatal("Median mutated its input")
	}
}
