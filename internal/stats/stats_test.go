package stats

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
	"unsafe"
)

func TestSlabGrowShrinkPeak(t *testing.T) {
	var c AllocCounters
	c.SlabGrown(3)
	c.SlabGrown(2)
	if got := c.CurrentSlabs(); got != 5 {
		t.Fatalf("CurrentSlabs = %d, want 5", got)
	}
	c.SlabShrunk(4)
	if got := c.CurrentSlabs(); got != 1 {
		t.Fatalf("CurrentSlabs = %d, want 1", got)
	}
	if got := c.PeakSlabs(); got != 5 {
		t.Fatalf("PeakSlabs = %d, want 5", got)
	}
	s := c.Snapshot()
	if s.Grows != 5 || s.Shrinks != 4 || s.PeakSlabs != 5 || s.CurrentSlabs != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestNegativeSlabCountPanics(t *testing.T) {
	var c AllocCounters
	defer func() {
		if recover() == nil {
			t.Fatal("negative slab count did not panic")
		}
	}()
	c.SlabShrunk(1)
}

func TestSnapshotSub(t *testing.T) {
	var c AllocCounters
	for i := 0; i < 10; i++ {
		c.IncAllocs(i) // spread over shards; reads must still sum correctly
	}
	for i := 0; i < 7; i++ {
		c.IncCacheHits(i)
	}
	before := c.Snapshot()
	for i := 0; i < 5; i++ {
		c.IncAllocs(i)
	}
	c.IncCacheHits(0)
	c.IncCacheHits(70) // wraps onto shard 6; sums, not shard layout, are the contract
	c.Flushes.Add(3)
	d := c.Snapshot().Sub(before)
	if d.Allocs != 5 || d.CacheHits != 2 || d.Flushes != 3 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestDerivedMetrics(t *testing.T) {
	s := AllocSnapshot{
		Allocs:        100,
		CacheHits:     70,
		LatentHits:    20,
		Refills:       8,
		Flushes:       5,
		Grows:         4,
		Shrinks:       6,
		Frees:         60,
		DeferredFrees: 40,
	}
	if got := s.CacheHitRate(); got != 0.9 {
		t.Errorf("CacheHitRate = %v, want 0.9", got)
	}
	if got := s.ObjectCacheChurns(); got != 5 {
		t.Errorf("ObjectCacheChurns = %d, want 5", got)
	}
	if got := s.SlabChurns(); got != 4 {
		t.Errorf("SlabChurns = %d, want 4", got)
	}
	if got := s.DeferredFreeRatio(); got != 0.4 {
		t.Errorf("DeferredFreeRatio = %v, want 0.4", got)
	}
}

func TestDerivedMetricsZeroDenominators(t *testing.T) {
	var s AllocSnapshot
	if s.CacheHitRate() != 0 || s.DeferredFreeRatio() != 0 {
		t.Fatal("zero-denominator metrics should be 0")
	}
}

func TestSeriesBasics(t *testing.T) {
	var s Series
	base := time.Now()
	for i := 0; i < 10; i++ {
		s.AddAt(base.Add(time.Duration(i)*time.Millisecond), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	if s.Max() != 9 {
		t.Fatalf("Max = %v, want 9", s.Max())
	}
	pts := s.Points()
	pts[0].V = 999 // must not affect internal state
	if s.Points()[0].V == 999 {
		t.Fatal("Points returned aliased storage")
	}
	ds := s.Downsample(4)
	if len(ds) != 4 {
		t.Fatalf("Downsample len = %d, want 4", len(ds))
	}
	full := s.Downsample(100)
	if len(full) != 10 {
		t.Fatalf("Downsample beyond length = %d, want 10", len(full))
	}
}

func TestSeriesConcurrent(t *testing.T) {
	var s Series
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Add(float64(i))
			}
		}()
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d, want 400", s.Len())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("cache", "slub", "prudence")
	tb.AddRow("filp", 100, 42)
	tb.AddRow("dentry", 3.14159, "ok")
	out := tb.String()
	if !strings.Contains(out, "cache") || !strings.Contains(out, "filp") {
		t.Fatalf("table missing content:\n%s", out)
	}
	if !strings.Contains(out, "3.14") {
		t.Fatalf("float not formatted:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// Columns align: every line has the same prefix width for column 2.
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("missing separator:\n%s", out)
	}
}

func TestRatioFormatting(t *testing.T) {
	cases := []struct {
		base, improved float64
		want           string
	}{
		{100, 390, "3.9x"},
		{100, 104, "+4.0%"},
		{100, 96, "-4.0%"},
		{0, 5, "n/a"},
	}
	for _, c := range cases {
		if got := Ratio(c.base, c.improved); got != c.want {
			t.Errorf("Ratio(%v,%v) = %q, want %q", c.base, c.improved, got, c.want)
		}
	}
}

// Property: churns are symmetric in the sense of being bounded by both
// refills and flushes.
func TestPropertyChurnBounds(t *testing.T) {
	f := func(refills, flushes uint16) bool {
		s := AllocSnapshot{Refills: uint64(refills), Flushes: uint64(flushes)}
		ch := s.ObjectCacheChurns()
		return ch <= s.Refills && ch <= s.Flushes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHotShardPadding pins the per-CPU counter shard to 128 bytes (a
// cache line pair, covering adjacent-line prefetch) so neighbouring
// CPUs' fast-path counters never false-share.
func TestHotShardPadding(t *testing.T) {
	if s := unsafe.Sizeof(hotShard{}); s != 128 {
		t.Fatalf("hotShard is %d bytes, want 128 — resize its pad field", s)
	}
}

// TestShardedCountersSum exercises every write method across more CPUs
// than shards and checks the summed reads.
func TestShardedCountersSum(t *testing.T) {
	var c AllocCounters
	const cpus = hotShards + 3 // force wraparound
	for cpu := 0; cpu < cpus; cpu++ {
		c.IncAllocs(cpu)
		c.IncCacheHits(cpu)
		c.IncLatentHits(cpu)
		c.IncFrees(cpu)
		c.IncDeferredFrees(cpu)
		c.UserAlloc(cpu)
	}
	if got := c.Allocs(); got != cpus {
		t.Fatalf("Allocs = %d, want %d", got, cpus)
	}
	if got := c.CacheHits(); got != cpus {
		t.Fatalf("CacheHits = %d, want %d", got, cpus)
	}
	if got := c.LatentHits(); got != cpus {
		t.Fatalf("LatentHits = %d, want %d", got, cpus)
	}
	if got := c.Frees(); got != cpus {
		t.Fatalf("Frees = %d, want %d", got, cpus)
	}
	if got := c.DeferredFrees(); got != cpus {
		t.Fatalf("DeferredFrees = %d, want %d", got, cpus)
	}
	if got := c.Requested(); got != cpus {
		t.Fatalf("Requested = %d, want %d", got, cpus)
	}
	for cpu := 0; cpu < cpus; cpu++ {
		c.UserFree(cpus - 1 - cpu) // free on a different CPU than allocated
	}
	if got := c.Requested(); got != 0 {
		t.Fatalf("Requested after cross-CPU frees = %d, want 0", got)
	}
}
