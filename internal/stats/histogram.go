package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram is a concurrency-safe log-bucketed latency histogram used
// by the harness to report allocation-path latency distributions (the
// §3.3 comparison) rather than bare means.
//
// Buckets are powers of two in nanoseconds: bucket i covers
// [2^i, 2^(i+1)) ns, with an underflow bucket for < 1 ns.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := 0
	if d > 0 {
		idx = 64 - leadingZeros64(uint64(d))
		if idx >= len(h.buckets) {
			idx = len(h.buckets) - 1
		}
	}
	h.mu.Lock()
	h.buckets[idx]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average observation.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1) using the
// bucket upper bounds; accuracy is within a factor of two, which is
// plenty for order-of-magnitude path-cost comparisons.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q <= 0 || q > 1 {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return time.Nanosecond
			}
			return time.Duration(uint64(1) << uint(i))
		}
	}
	return h.max
}

// HistogramSnapshot is an immutable copy of a Histogram's raw state.
// Bucket i holds observations with bit length i nanoseconds, i.e. the
// interval [2^(i-1), 2^i) ns, with bucket 0 counting zero durations.
type HistogramSnapshot struct {
	Buckets [64]uint64
	Count   uint64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
}

// Export snapshots the histogram for exporters (internal/metrics).
func (h *Histogram) Export() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Buckets: h.buckets,
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
	}
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d min=%v p50=%v p99=%v max=%v mean=%v",
		h.Count(), h.Min(), h.Quantile(0.5), h.Quantile(0.99), h.Max(), h.Mean())
}

// Median returns the exact median of a duration slice (helper for
// repeated-run reporting; modifies a copy, not the input).
func Median(ds []float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	cp := make([]float64, len(ds))
	copy(cp, ds)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}
