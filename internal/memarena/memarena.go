// Package memarena provides the simulated physical memory that the rest
// of the system allocates from.
//
// The paper's evaluation runs inside the Linux kernel where slabs are
// built out of physical page frames obtained from the buddy page
// allocator. In this reproduction the "physical memory" is a fixed-size
// arena divided into page frames with real []byte backing. The arena is
// the single source of truth for the "total used memory in the system"
// series plotted in Figure 3: every slab grow consumes frames here and
// every slab shrink returns them.
//
// The arena itself only hands out page frames and tracks accounting;
// placement policy (orders, splitting, coalescing) lives in package
// pagealloc.
package memarena

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the size of a page frame in bytes. It mirrors the 4 KiB
// pages of the paper's x86 test machine.
const PageSize = 4096

// Arena is a fixed-capacity collection of page frames.
//
// Frames are identified by index in [0, Pages()). Data access returns
// slices aliasing the arena's backing store, so objects handed out by
// the allocators are real memory that callers can read and write.
type Arena struct {
	pages   int
	backing []byte

	// used counts frames currently handed out. It is maintained with
	// atomics so that samplers never block allocation.
	used atomic.Int64
	peak atomic.Int64

	mu       sync.Mutex
	samplers []func(usedPages, totalPages int)
}

// New creates an arena with the given number of page frames.
// It panics if pages is not positive; the arena is the root of the
// simulated machine and a zero-size machine is a construction bug, not
// a runtime condition.
func New(pages int) *Arena {
	if pages <= 0 {
		panic(fmt.Sprintf("memarena: non-positive page count %d", pages))
	}
	return &Arena{
		pages:   pages,
		backing: make([]byte, pages*PageSize),
	}
}

// Pages returns the total number of page frames in the arena.
func (a *Arena) Pages() int { return a.pages }

// Bytes returns the total capacity of the arena in bytes.
func (a *Arena) Bytes() int64 { return int64(a.pages) * PageSize }

// UsedPages returns the number of frames currently handed out.
func (a *Arena) UsedPages() int { return int(a.used.Load()) }

// UsedBytes returns the number of bytes currently handed out.
func (a *Arena) UsedBytes() int64 { return a.used.Load() * PageSize }

// PeakPages returns the high-water mark of frames handed out.
func (a *Arena) PeakPages() int { return int(a.peak.Load()) }

// Page returns the backing bytes of frame idx. The returned slice has
// length PageSize and aliases arena memory.
func (a *Arena) Page(idx int) []byte {
	if idx < 0 || idx >= a.pages {
		panic(fmt.Sprintf("memarena: page index %d out of range [0,%d)", idx, a.pages))
	}
	off := idx * PageSize
	return a.backing[off : off+PageSize : off+PageSize]
}

// Range returns the backing bytes for n contiguous frames starting at
// frame idx.
func (a *Arena) Range(idx, n int) []byte {
	if n < 0 || idx < 0 || idx+n > a.pages {
		panic(fmt.Sprintf("memarena: range [%d,%d) out of bounds [0,%d)", idx, idx+n, a.pages))
	}
	off := idx * PageSize
	end := off + n*PageSize
	return a.backing[off:end:end]
}

// Acquire records that n frames were handed out. The page allocator
// calls this after it has chosen which frames to hand out; the arena
// only does accounting and sampling.
func (a *Arena) Acquire(n int) {
	if n <= 0 {
		return
	}
	used := a.used.Add(int64(n))
	if used > int64(a.pages) {
		// The page allocator must never over-commit the arena; this is
		// an internal invariant, not a caller-visible OOM.
		panic(fmt.Sprintf("memarena: over-commit: %d used of %d", used, a.pages))
	}
	for {
		peak := a.peak.Load()
		if used <= peak || a.peak.CompareAndSwap(peak, used) {
			break
		}
	}
	a.notify(int(used))
}

// Release records that n frames were returned.
func (a *Arena) Release(n int) {
	if n <= 0 {
		return
	}
	used := a.used.Add(int64(-n))
	if used < 0 {
		panic(fmt.Sprintf("memarena: negative usage %d", used))
	}
	a.notify(int(used))
}

// AddSampler registers fn to be invoked (synchronously) whenever the
// used-page count changes. Samplers feed the used-memory time series of
// Figure 3. fn must be fast and must not call back into the arena.
func (a *Arena) AddSampler(fn func(usedPages, totalPages int)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.samplers = append(a.samplers, fn)
}

func (a *Arena) notify(used int) {
	a.mu.Lock()
	samplers := a.samplers
	a.mu.Unlock()
	for _, fn := range samplers {
		fn(used, a.pages)
	}
}
