// Package memarena provides the simulated physical memory that the rest
// of the system allocates from.
//
// The paper's evaluation runs inside the Linux kernel where slabs are
// built out of physical page frames obtained from the buddy page
// allocator. In this reproduction the "physical memory" is a fixed-size
// arena divided into page frames. The arena is the single source of
// truth for the "total used memory in the system" series plotted in
// Figure 3: every slab grow consumes frames here and every slab shrink
// returns them.
//
// Two backends provide the backing bytes, selected by name through
// NewBackend (see Backends):
//
//   - "heap": one GC-visible []byte allocation (the portable default).
//     The Go runtime accounts, sweeps and paces against the arena, so
//     GC behaviour pollutes memory-cost measurements at large sizes.
//   - "mmap" (linux only): an anonymous private mapping obtained from
//     the kernel via mmap(2), outside the Go heap entirely. The GC
//     neither accounts nor touches it, page frames have real first-touch
//     and memset costs, and the arena must be released explicitly —
//     Close unmaps it.
//
// Both backends hand the arena a plain []byte, so everything above this
// package (buddy allocator, slabs, object caches) works on ordinary
// slices; typed access to frame contents goes through internal/view,
// the one package allowed to build unsafe views over these bytes.
//
// The arena itself only hands out page frames and tracks accounting;
// placement policy (orders, splitting, coalescing) lives in package
// pagealloc.
package memarena

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// PageSize is the size of a page frame in bytes. It mirrors the 4 KiB
// pages of the paper's x86 test machine.
const PageSize = 4096

// DefaultBackend is the backend New uses and the fallback everywhere a
// backend name is optional.
const DefaultBackend = "heap"

// A mapFunc obtains size bytes of zeroed backing memory. It returns the
// bytes and a release function invoked exactly once by Arena.Close (nil
// when the memory needs no explicit release).
type mapFunc func(size int) (backing []byte, release func([]byte) error, err error)

var (
	backendMu sync.Mutex
	backends  = map[string]mapFunc{}
)

// registerBackend adds a named backing-store implementation. Backends
// register from init functions; duplicate names are construction bugs.
func registerBackend(name string, fn mapFunc) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("memarena: duplicate backend %q", name))
	}
	backends[name] = fn
}

// Backends returns the registered backend names, sorted. "heap" is
// always present; "mmap" is present on linux.
func Backends() []string {
	backendMu.Lock()
	defer backendMu.Unlock()
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BackendAvailable reports whether name is a registered backend on this
// platform.
func BackendAvailable(name string) bool {
	backendMu.Lock()
	defer backendMu.Unlock()
	_, ok := backends[name]
	return ok
}

func init() {
	registerBackend("heap", func(size int) ([]byte, func([]byte) error, error) {
		return make([]byte, size), nil, nil
	})
}

// Arena is a fixed-capacity collection of page frames.
//
// Frames are identified by index in [0, Pages()). Data access returns
// slices aliasing the arena's backing store, so objects handed out by
// the allocators are real memory that callers can read and write.
type Arena struct {
	pages   int
	backing []byte
	backend string
	release func([]byte) error
	closed  atomic.Bool

	// used counts frames currently handed out. It is maintained with
	// atomics so that samplers never block allocation.
	used atomic.Int64
	peak atomic.Int64

	// samplerCount mirrors len(samplers) so the Acquire/Release hot path
	// can skip the sampler mutex entirely while sampling is off — the
	// common case for every run that is not plotting Figure 3.
	samplerCount atomic.Int32

	mu       sync.Mutex
	samplers []func(usedPages, totalPages int)
}

// New creates a heap-backed arena with the given number of page frames.
// It panics if pages is not positive; the arena is the root of the
// simulated machine and a zero-size machine is a construction bug, not
// a runtime condition.
func New(pages int) *Arena {
	a, err := NewBackend(DefaultBackend, pages)
	if err != nil {
		// The heap backend cannot fail to map.
		panic(fmt.Sprintf("memarena: %v", err))
	}
	return a
}

// NewBackend creates an arena with the named backing store. It panics if
// pages is not positive (a construction bug, as in New) and returns an
// error if the backend is unknown on this platform or its mapping fails
// (an environment condition: mmap can legitimately be refused).
func NewBackend(backend string, pages int) (*Arena, error) {
	if pages <= 0 {
		panic(fmt.Sprintf("memarena: non-positive page count %d", pages))
	}
	if backend == "" {
		backend = DefaultBackend
	}
	backendMu.Lock()
	fn, ok := backends[backend]
	backendMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("memarena: unknown arena backend %q (available: %v)", backend, Backends())
	}
	backing, release, err := fn(pages * PageSize)
	if err != nil {
		return nil, fmt.Errorf("memarena: backend %q: mapping %d pages: %w", backend, pages, err)
	}
	if len(backing) != pages*PageSize {
		return nil, fmt.Errorf("memarena: backend %q returned %d bytes, want %d", backend, len(backing), pages*PageSize)
	}
	return &Arena{
		pages:   pages,
		backing: backing,
		backend: backend,
		release: release,
	}, nil
}

// Backend returns the name of the backing store behind this arena.
func (a *Arena) Backend() string { return a.backend }

// Close releases the arena's backing store. For the mmap backend this
// unmaps the memory: any frame slice still held becomes invalid and
// touching it faults. Close is idempotent; only the first call releases.
func (a *Arena) Close() error {
	if !a.closed.CompareAndSwap(false, true) {
		return nil
	}
	backing := a.backing
	a.backing = nil
	if a.release == nil {
		return nil
	}
	if err := a.release(backing); err != nil {
		return fmt.Errorf("memarena: backend %q: %w", a.backend, err)
	}
	return nil
}

// Pages returns the total number of page frames in the arena.
func (a *Arena) Pages() int { return a.pages }

// Bytes returns the total capacity of the arena in bytes.
func (a *Arena) Bytes() int64 { return int64(a.pages) * PageSize }

// UsedPages returns the number of frames currently handed out.
func (a *Arena) UsedPages() int { return int(a.used.Load()) }

// UsedBytes returns the number of bytes currently handed out.
func (a *Arena) UsedBytes() int64 { return a.used.Load() * PageSize }

// PeakPages returns the high-water mark of frames handed out.
func (a *Arena) PeakPages() int { return int(a.peak.Load()) }

// Page returns the backing bytes of frame idx. The returned slice has
// length PageSize and aliases arena memory.
func (a *Arena) Page(idx int) []byte {
	if idx < 0 || idx >= a.pages {
		panic(fmt.Sprintf("memarena: page index %d out of range [0,%d)", idx, a.pages))
	}
	if a.closed.Load() {
		panic(fmt.Sprintf("memarena: page access after Close (backend %q)", a.backend))
	}
	off := idx * PageSize
	return a.backing[off : off+PageSize : off+PageSize]
}

// Range returns the backing bytes for n contiguous frames starting at
// frame idx.
func (a *Arena) Range(idx, n int) []byte {
	if n < 0 || idx < 0 || idx+n > a.pages {
		panic(fmt.Sprintf("memarena: range [%d,%d) out of bounds [0,%d)", idx, idx+n, a.pages))
	}
	if a.closed.Load() {
		panic(fmt.Sprintf("memarena: range access after Close (backend %q)", a.backend))
	}
	off := idx * PageSize
	end := off + n*PageSize
	return a.backing[off:end:end]
}

// Acquire records that n frames were handed out. The page allocator
// calls this after it has chosen which frames to hand out; the arena
// only does accounting and sampling.
func (a *Arena) Acquire(n int) {
	if n <= 0 {
		return
	}
	used := a.used.Add(int64(n))
	if used > int64(a.pages) {
		// The page allocator must never over-commit the arena; this is
		// an internal invariant, not a caller-visible OOM.
		panic(fmt.Sprintf("memarena: over-commit: %d used of %d", used, a.pages))
	}
	for {
		peak := a.peak.Load()
		if used <= peak || a.peak.CompareAndSwap(peak, used) {
			break
		}
	}
	a.notify(int(used))
}

// Release records that n frames were returned.
func (a *Arena) Release(n int) {
	if n <= 0 {
		return
	}
	used := a.used.Add(int64(-n))
	if used < 0 {
		panic(fmt.Sprintf("memarena: negative usage %d", used))
	}
	a.notify(int(used))
}

// AddSampler registers fn to be invoked (synchronously) whenever the
// used-page count changes. Samplers feed the used-memory time series of
// Figure 3. fn must be fast and must not call back into the arena.
func (a *Arena) AddSampler(fn func(usedPages, totalPages int)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.samplers = append(a.samplers, fn)
	a.samplerCount.Store(int32(len(a.samplers)))
}

func (a *Arena) notify(used int) {
	// Fast path: with no samplers registered, an Acquire/Release is just
	// the used-counter atomic (plus the peak load) — no lock, no loop.
	if a.samplerCount.Load() == 0 {
		return
	}
	a.mu.Lock()
	samplers := a.samplers
	a.mu.Unlock()
	for _, fn := range samplers {
		fn(used, a.pages)
	}
}
