package memarena

import (
	"sync"
	"testing"
)

func TestNewPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestSizes(t *testing.T) {
	a := New(16)
	if got := a.Pages(); got != 16 {
		t.Errorf("Pages() = %d, want 16", got)
	}
	if got := a.Bytes(); got != 16*PageSize {
		t.Errorf("Bytes() = %d, want %d", got, 16*PageSize)
	}
	if got := a.UsedPages(); got != 0 {
		t.Errorf("fresh arena UsedPages() = %d, want 0", got)
	}
}

func TestAcquireRelease(t *testing.T) {
	a := New(8)
	a.Acquire(3)
	if got := a.UsedPages(); got != 3 {
		t.Fatalf("UsedPages() = %d, want 3", got)
	}
	a.Acquire(5)
	if got := a.UsedPages(); got != 8 {
		t.Fatalf("UsedPages() = %d, want 8", got)
	}
	if got := a.PeakPages(); got != 8 {
		t.Fatalf("PeakPages() = %d, want 8", got)
	}
	a.Release(8)
	if got := a.UsedPages(); got != 0 {
		t.Fatalf("UsedPages() = %d, want 0", got)
	}
	if got := a.PeakPages(); got != 8 {
		t.Fatalf("PeakPages() after release = %d, want 8", got)
	}
	if got := a.UsedBytes(); got != 0 {
		t.Fatalf("UsedBytes() = %d, want 0", got)
	}
}

func TestAcquireZeroAndNegativeIgnored(t *testing.T) {
	a := New(4)
	a.Acquire(0)
	a.Acquire(-2)
	a.Release(0)
	a.Release(-2)
	if got := a.UsedPages(); got != 0 {
		t.Fatalf("UsedPages() = %d, want 0", got)
	}
}

func TestOverCommitPanics(t *testing.T) {
	a := New(4)
	a.Acquire(4)
	defer func() {
		if recover() == nil {
			t.Error("over-commit did not panic")
		}
	}()
	a.Acquire(1)
}

func TestNegativeUsagePanics(t *testing.T) {
	a := New(4)
	defer func() {
		if recover() == nil {
			t.Error("negative usage did not panic")
		}
	}()
	a.Release(1)
}

func TestPageBackingDistinct(t *testing.T) {
	a := New(4)
	p0 := a.Page(0)
	p1 := a.Page(1)
	if len(p0) != PageSize || len(p1) != PageSize {
		t.Fatalf("page lengths %d,%d want %d", len(p0), len(p1), PageSize)
	}
	for i := range p0 {
		p0[i] = 0xAA
	}
	for _, b := range p1 {
		if b != 0 {
			t.Fatal("write to page 0 leaked into page 1")
		}
	}
	// Capacity is clipped so appends cannot stomp the next page.
	p0 = append(p0, 0xBB)
	if a.Page(1)[0] != 0 {
		t.Fatal("append to page slice overwrote neighbouring page")
	}
}

func TestPageOutOfRangePanics(t *testing.T) {
	a := New(2)
	for _, idx := range []int{-1, 2, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Page(%d) did not panic", idx)
				}
			}()
			a.Page(idx)
		}()
	}
}

func TestRange(t *testing.T) {
	a := New(8)
	r := a.Range(2, 3)
	if len(r) != 3*PageSize {
		t.Fatalf("Range len = %d, want %d", len(r), 3*PageSize)
	}
	r[0] = 0x7F
	if a.Page(2)[0] != 0x7F {
		t.Fatal("Range does not alias Page backing")
	}
	for _, bad := range [][2]int{{-1, 1}, {7, 2}, {0, -1}, {0, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Range(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			a.Range(bad[0], bad[1])
		}()
	}
}

func TestSamplerObservesChanges(t *testing.T) {
	a := New(8)
	var mu sync.Mutex
	var seen []int
	a.AddSampler(func(used, total int) {
		if total != 8 {
			t.Errorf("sampler total = %d, want 8", total)
		}
		mu.Lock()
		seen = append(seen, used)
		mu.Unlock()
	})
	a.Acquire(2)
	a.Acquire(1)
	a.Release(3)
	mu.Lock()
	defer mu.Unlock()
	want := []int{2, 3, 0}
	if len(seen) != len(want) {
		t.Fatalf("sampler saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("sampler saw %v, want %v", seen, want)
		}
	}
}

func TestBackendRegistry(t *testing.T) {
	names := Backends()
	found := false
	for _, n := range names {
		if n == "heap" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Backends() = %v, missing %q", names, "heap")
	}
	if !BackendAvailable("heap") {
		t.Fatal("heap backend not available")
	}
	if BackendAvailable("no-such-backend") {
		t.Fatal("nonexistent backend reported available")
	}
	if _, err := NewBackend("no-such-backend", 4); err == nil {
		t.Fatal("NewBackend with unknown name did not error")
	}
}

func TestNewBackendDefaultsToHeap(t *testing.T) {
	a, err := NewBackend("", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if got := a.Backend(); got != "heap" {
		t.Fatalf("Backend() = %q, want heap", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	for _, backend := range Backends() {
		a, err := NewBackend(backend, 4)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if err := a.Close(); err != nil {
			t.Fatalf("%s: first Close: %v", backend, err)
		}
		if err := a.Close(); err != nil {
			t.Fatalf("%s: second Close: %v", backend, err)
		}
	}
}

func TestPageAccessAfterClosePanics(t *testing.T) {
	for _, backend := range Backends() {
		a, err := NewBackend(backend, 4)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		a.Close()
		for name, fn := range map[string]func(){
			"Page":  func() { a.Page(0) },
			"Range": func() { a.Range(0, 2) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: %s after Close did not panic", backend, name)
					}
				}()
				fn()
			}()
		}
	}
}

func TestConcurrentAccounting(t *testing.T) {
	const workers, perWorker = 8, 100
	a := New(workers * perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				a.Acquire(1)
			}
			for i := 0; i < perWorker; i++ {
				a.Release(1)
			}
		}()
	}
	wg.Wait()
	if got := a.UsedPages(); got != 0 {
		t.Fatalf("UsedPages() = %d after balanced ops, want 0", got)
	}
	if got := a.PeakPages(); got < perWorker || got > workers*perWorker {
		t.Fatalf("PeakPages() = %d, want within [%d,%d]", got, perWorker, workers*perWorker)
	}
}
