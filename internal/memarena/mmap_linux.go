//go:build linux

package memarena

import (
	"fmt"
	"syscall"
)

// The mmap backend obtains the arena from the kernel as one anonymous
// private mapping: real memory outside the Go heap. The garbage
// collector does not account, sweep or pace against it — the heap goal
// no longer inflates with the arena size, and page-frame costs
// (first-touch faults, memsets) are hardware costs rather than runtime
// artifacts. MAP_ANONYMOUS memory is zero-filled on first touch, which
// is exactly the freshness invariant pagealloc's known-zero seeding
// assumes.
//
// Unlike the heap backend the mapping is invisible to the runtime, so
// nothing reclaims it when the Arena is dropped: Close (munmap) is
// mandatory, and System.Close / bench.Stack.Close call it.
func init() {
	registerBackend("mmap", func(size int) ([]byte, func([]byte) error, error) {
		b, err := syscall.Mmap(-1, 0, size,
			syscall.PROT_READ|syscall.PROT_WRITE,
			syscall.MAP_ANONYMOUS|syscall.MAP_PRIVATE)
		if err != nil {
			return nil, nil, fmt.Errorf("mmap(%d bytes): %w", size, err)
		}
		return b, syscall.Munmap, nil
	})
}
