// Package arenatest is the cross-backend conformance suite for
// memarena: every property the layers above rely on — frame bounds,
// range aliasing, zero-fill on first use, typed-view round trips,
// accounting parity — expressed once and run against every registered
// backend. The heap and mmap backends must be indistinguishable through
// the Arena surface; only their relationship to the Go runtime differs.
package arenatest

import (
	"math/rand"
	"testing"

	"prudence/internal/memarena"
	"prudence/internal/view"
)

// Run executes the conformance suite against the named backend,
// skipping if the backend is not registered on this platform.
func Run(t *testing.T, backend string) {
	t.Helper()
	if !memarena.BackendAvailable(backend) {
		t.Skipf("arena backend %q not available on this platform", backend)
	}
	t.Run("PageBounds", func(t *testing.T) { testPageBounds(t, backend) })
	t.Run("RangeAliasing", func(t *testing.T) { testRangeAliasing(t, backend) })
	t.Run("ZeroFilled", func(t *testing.T) { testZeroFilled(t, backend) })
	t.Run("FrameIsolation", func(t *testing.T) { testFrameIsolation(t, backend) })
	t.Run("TypedViewRoundTrip", func(t *testing.T) { testTypedViewRoundTrip(t, backend) })
	t.Run("TypedViewStaysInFrame", func(t *testing.T) { testTypedViewStaysInFrame(t, backend) })
	t.Run("AccountingParity", func(t *testing.T) { testAccountingParity(t, backend) })
	t.Run("CloseReleases", func(t *testing.T) { testCloseReleases(t, backend) })
}

func newArena(t *testing.T, backend string, pages int) *memarena.Arena {
	t.Helper()
	a, err := memarena.NewBackend(backend, pages)
	if err != nil {
		t.Fatalf("NewBackend(%q, %d): %v", backend, pages, err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func testPageBounds(t *testing.T, backend string) {
	a := newArena(t, backend, 8)
	if len(a.Page(0)) != memarena.PageSize || len(a.Page(7)) != memarena.PageSize {
		t.Fatal("page length != PageSize")
	}
	for _, idx := range []int{-1, 8, 1 << 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Page(%d) did not panic", idx)
				}
			}()
			a.Page(idx)
		}()
	}
	for _, bad := range [][2]int{{-1, 1}, {7, 2}, {0, -1}, {0, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Range(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			a.Range(bad[0], bad[1])
		}()
	}
}

func testRangeAliasing(t *testing.T, backend string) {
	a := newArena(t, backend, 8)
	r := a.Range(2, 3)
	if len(r) != 3*memarena.PageSize {
		t.Fatalf("Range len = %d", len(r))
	}
	r[0] = 0x7F
	r[len(r)-1] = 0x80
	if a.Page(2)[0] != 0x7F {
		t.Fatal("Range start does not alias Page(2)")
	}
	if p := a.Page(4); p[len(p)-1] != 0x80 {
		t.Fatal("Range end does not alias Page(4)")
	}
	// Appending to a clipped range must not stomp the next frame.
	_ = append(r, 0xFF)
	if a.Page(5)[0] != 0 {
		t.Fatal("append to Range slice overwrote the next frame")
	}
}

func testZeroFilled(t *testing.T, backend string) {
	a := newArena(t, backend, 16)
	for idx := 0; idx < 16; idx++ {
		for i, b := range a.Page(idx) {
			if b != 0 {
				t.Fatalf("fresh frame %d byte %d = %#x, want 0", idx, i, b)
			}
		}
	}
}

func testFrameIsolation(t *testing.T, backend string) {
	a := newArena(t, backend, 4)
	view.Fill(a.Page(1), 0xAA)
	for _, idx := range []int{0, 2, 3} {
		for i, b := range a.Page(idx) {
			if b != 0 {
				t.Fatalf("write to frame 1 leaked into frame %d byte %d", idx, i)
			}
		}
	}
}

type obj struct {
	Key   uint64
	Gen   uint32
	Flags uint32
	Data  [6]uint64
}

func testTypedViewRoundTrip(t *testing.T, backend string) {
	a := newArena(t, backend, 4)
	frame := a.Page(2)
	n := view.Fits[obj](frame)
	if n == 0 {
		t.Fatal("no objects fit in a frame")
	}
	objs := view.Slice[obj](frame, n)
	for i := range objs {
		objs[i].Key = uint64(i) * 3
		objs[i].Gen = uint32(i)
		objs[i].Data[5] = ^uint64(i)
	}
	// Re-derive the views from the raw frame: the values must survive,
	// i.e. the view writes really landed in arena memory.
	again := view.Slice[obj](a.Page(2), n)
	for i := range again {
		if again[i].Key != uint64(i)*3 || again[i].Gen != uint32(i) || again[i].Data[5] != ^uint64(i) {
			t.Fatalf("object %d did not round-trip: %+v", i, again[i])
		}
	}
	// And neighbouring frames stayed untouched.
	for _, idx := range []int{1, 3} {
		for i, b := range a.Page(idx) {
			if b != 0 {
				t.Fatalf("typed writes to frame 2 leaked into frame %d byte %d", idx, i)
			}
		}
	}
}

// testTypedViewStaysInFrame drives random typed writes through views at
// random offsets and checks no write ever escapes the frame — the
// deterministic twin of FuzzViewStaysInFrame.
func testTypedViewStaysInFrame(t *testing.T, backend string) {
	a := newArena(t, backend, 3)
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		frame := a.Page(1)
		switch rng.Intn(3) {
		case 0:
			off := rng.Intn(memarena.PageSize-8+1) &^ 7
			*view.At[uint64](frame, off) = rng.Uint64()
		case 1:
			off := rng.Intn(memarena.PageSize-4+1) &^ 3
			*view.At[uint32](frame, off) = rng.Uint32()
		case 2:
			n := rng.Intn(view.Fits[obj](frame)) + 1
			s := view.Slice[obj](frame, n)
			s[n-1].Key = rng.Uint64()
		}
		if iter%97 == 0 {
			for _, idx := range []int{0, 2} {
				for i, b := range a.Page(idx) {
					if b != 0 {
						t.Fatalf("iter %d: write escaped into frame %d byte %d", iter, idx, i)
					}
				}
			}
		}
	}
}

func testAccountingParity(t *testing.T, backend string) {
	// The same Acquire/Release schedule must produce identical
	// used/peak series on every backend (accounting is backend-blind).
	schedule := []int{3, 5, -4, 2, -6, 7, -7}
	a := newArena(t, backend, 16)
	h := newArena(t, "heap", 16)
	for i, n := range schedule {
		for _, ar := range []*memarena.Arena{a, h} {
			if n >= 0 {
				ar.Acquire(n)
			} else {
				ar.Release(-n)
			}
		}
		if a.UsedPages() != h.UsedPages() || a.PeakPages() != h.PeakPages() {
			t.Fatalf("step %d: %s used=%d peak=%d vs heap used=%d peak=%d",
				i, backend, a.UsedPages(), a.PeakPages(), h.UsedPages(), h.PeakPages())
		}
	}
	if a.UsedPages() != 0 || a.PeakPages() != 8 {
		t.Fatalf("final used=%d peak=%d, want 0/8", a.UsedPages(), a.PeakPages())
	}
}

func testCloseReleases(t *testing.T, backend string) {
	a, err := memarena.NewBackend(backend, 8)
	if err != nil {
		t.Fatal(err)
	}
	view.Fill(a.Page(0), 0x42)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Page after Close did not panic")
		}
	}()
	a.Page(0)
}
