package arenatest

import (
	"testing"

	"prudence/internal/memarena"
	"prudence/internal/view"
)

// TestConformanceAllBackends runs the shared suite against every
// backend registered on this platform (heap everywhere, mmap on linux).
func TestConformanceAllBackends(t *testing.T) {
	for _, backend := range memarena.Backends() {
		t.Run(backend, func(t *testing.T) { Run(t, backend) })
	}
}

// TestMmapExercisedOnLinux pins that the linux CI runner really covers
// the mmap backend: a silent skip there would hollow out the matrix.
func TestMmapExercisedOnLinux(t *testing.T) {
	if !memarena.BackendAvailable("mmap") {
		t.Skip("not linux: mmap backend absent by design")
	}
	Run(t, "mmap")
}

// FuzzViewStaysInFrame fuzzes typed writes through views: whatever
// (offset, width, value) the fuzzer picks, either the view constructor
// panics (out of bounds / misaligned — converted to a skip) or the
// write lands entirely inside the chosen frame. Neighbour frames are
// canaried with a sentinel pattern; any escape fails.
func FuzzViewStaysInFrame(f *testing.F) {
	f.Add(0, uint8(0), uint64(0))
	f.Add(memarena.PageSize-8, uint8(1), uint64(0xFFFFFFFFFFFFFFFF))
	f.Add(4096, uint8(2), uint64(1))
	f.Add(7, uint8(0), uint64(42))
	f.Add(-1, uint8(1), uint64(3))
	f.Fuzz(func(t *testing.T, off int, width uint8, val uint64) {
		for _, backend := range memarena.Backends() {
			a, err := memarena.NewBackend(backend, 3)
			if err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
			const sentinel = 0x5C
			view.Fill(a.Page(0), sentinel)
			view.Fill(a.Page(2), sentinel)
			frame := a.Page(1)

			func() {
				// A panic is the view API doing its job (bounds or
				// alignment rejection); the property under fuzz is only
				// about writes that are accepted.
				defer func() { _ = recover() }()
				switch width % 3 {
				case 0:
					*view.At[uint64](frame, off) = val
				case 1:
					*view.At[uint32](frame, off) = uint32(val)
				case 2:
					*view.At[[16]byte](frame, off) = [16]byte{byte(val), byte(val >> 8)}
				}
			}()

			for _, idx := range []int{0, 2} {
				for i, b := range a.Page(idx) {
					if b != sentinel {
						t.Fatalf("%s: write(off=%d,width=%d) escaped frame 1 into frame %d byte %d",
							backend, off, width%3, idx, i)
					}
				}
			}
			a.Close()
		}
	})
}
