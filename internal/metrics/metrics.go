// Package metrics is the system-wide observability layer: a registry of
// named metric families — counters, gauges and latency histograms —
// that every subsystem (the allocators, the reclamation engines, the
// page allocator, the vCPU machine) registers into, exported in
// Prometheus exposition format and as a human-readable dump.
//
// The paper's entire evaluation is a story told through exactly these
// quantities (refills, flushes, latent merges, pre-moves, grace-period
// waits, callback backlogs), and operable reclamation schemes must
// surface their reclamation lag continuously, not just in post-run
// snapshots. Two design rules keep the layer free on the hot path:
//
//   - Hot-path counters that are written from many CPUs use Counter,
//     which shards one cache-line-padded atomic per CPU; increments
//     touch only the owning CPU's line and reads sum the shards.
//   - Metrics that already exist as subsystem state (stats.AllocCounters
//     fields, pagealloc counters, RCU engine counters) are registered as
//     func-backed series read at scrape time, adding zero instructions
//     to allocation and synchronization paths.
//
// Histograms reuse stats.Histogram, so the registry exports the same
// log-bucketed distributions the benchmark harness reports.
package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prudence/internal/stats"
)

// Label is one name/value pair qualifying a series within a family.
type Label struct{ Name, Value string }

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Kind classifies a metric family for the exposition format.
type Kind string

// Family kinds, matching Prometheus TYPE values.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// counterShard pads each per-CPU slot to its own cache line pair so
// concurrent increments from different CPUs never contend on a shared
// line (128 bytes covers the spatial prefetcher's adjacent-line pairs).
type counterShard struct {
	v atomic.Uint64
	_ [120]byte
}

// Counter is a monotonically increasing counter sharded per CPU.
// Add/Inc are lock-free and touch only the calling CPU's shard; Value
// sums the shards. Obtain counters from Registry.NewCounter.
type Counter struct {
	shards []counterShard
}

// Inc adds one on the calling CPU.
func (c *Counter) Inc(cpu int) { c.Add(cpu, 1) }

// Add adds n on the calling CPU. CPU ids outside [0, cpus) wrap, so a
// counter is safe to use from auxiliary goroutines with any id.
func (c *Counter) Add(cpu int, n uint64) {
	c.shards[uint(cpu)%uint(len(c.shards))].v.Add(n)
}

// Value returns the sum over all shards.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Emit publishes one sample from a collector callback.
type Emit func(value float64, labels ...Label)

// Collector produces a family's samples at scrape time — the hook used
// for series whose population is dynamic (one series per slab cache,
// per buddy order, per CPU).
type Collector func(emit Emit)

// series is one fixed sample source within a family.
type series struct {
	labels []Label
	read   func() float64   // counter/gauge kinds
	hist   *stats.Histogram // histogram kind
}

// family is one named metric with help text and its sample sources.
type family struct {
	name, help string
	kind       Kind
	series     []*series
	collectors []Collector
}

// Registry holds metric families in registration order. Registration
// typically happens once at system construction; scraping may happen
// concurrently with updates at any time.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// fam returns the named family, creating it on first use. Registering
// the same name with a different kind is a programming error.
func (r *Registry) fam(name, help string, kind Kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: family %q registered as %s and %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// NewCounter creates a per-CPU sharded counter with one shard per CPU,
// not yet attached to any registry. Subsystems that are constructed
// before the registry exists use this and attach the counter later with
// Registry.RegisterCounter.
func NewCounter(cpus int) *Counter {
	if cpus < 1 {
		cpus = 1
	}
	return &Counter{shards: make([]counterShard, cpus)}
}

// NewCounter registers and returns a per-CPU sharded counter with one
// shard per CPU.
func (r *Registry) NewCounter(name, help string, cpus int, labels ...Label) *Counter {
	c := NewCounter(cpus)
	r.RegisterCounter(name, help, c, labels...)
	return c
}

// RegisterCounter registers an existing Counter as a series.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) {
	f := r.fam(name, help, KindCounter)
	f.series = append(f.series, &series{labels: labels, read: func() float64 { return float64(c.Value()) }})
}

// NewGauge registers and returns a settable gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	f := r.fam(name, help, KindGauge)
	f.series = append(f.series, &series{labels: labels, read: func() float64 { return float64(g.Value()) }})
	return g
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the zero-hot-path-cost mirror of an existing atomic.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.fam(name, help, KindCounter)
	f.series = append(f.series, &series{labels: labels, read: fn})
}

// GaugeFunc registers a gauge series computed by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.fam(name, help, KindGauge)
	f.series = append(f.series, &series{labels: labels, read: fn})
}

// CollectCounters registers a collector producing the family's counter
// samples at scrape time.
func (r *Registry) CollectCounters(name, help string, c Collector) {
	f := r.fam(name, help, KindCounter)
	f.collectors = append(f.collectors, c)
}

// CollectGauges registers a collector producing the family's gauge
// samples at scrape time.
func (r *Registry) CollectGauges(name, help string, c Collector) {
	f := r.fam(name, help, KindGauge)
	f.collectors = append(f.collectors, c)
}

// NewHistogram registers and returns a latency histogram.
func (r *Registry) NewHistogram(name, help string, labels ...Label) *stats.Histogram {
	h := &stats.Histogram{}
	r.RegisterHistogram(name, help, h, labels...)
	return h
}

// RegisterHistogram registers an existing stats.Histogram as a series.
func (r *Registry) RegisterHistogram(name, help string, h *stats.Histogram, labels ...Label) {
	f := r.fam(name, help, KindHistogram)
	f.series = append(f.series, &series{labels: labels, hist: h})
}

// histogramBounds are the bucket indices exported as Prometheus `le`
// bounds: 2^i nanoseconds for each i, spanning 1µs to 67ms — the range
// allocation paths and grace periods live in. stats.Histogram's bucket
// j holds observations in [2^(j-1), 2^j) ns, so the cumulative count at
// bound i is the sum of buckets 0..i.
var histogramBounds = []int{10, 12, 14, 16, 18, 20, 22, 24, 26}

func formatValue(v float64) string {
	if v == float64(uint64(v)) {
		return strconv.FormatUint(uint64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelString renders {a="b",c="d"}, with extra appended last.
func labelString(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// snapshot returns the families under the registry lock; family
// contents are only appended to, so reading them afterwards is safe.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.families))
	copy(out, r.families)
	return out
}

// WritePrometheus writes all families in Prometheus exposition text
// format (text/plain; version=0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		var err error
		emit := func(v float64, labels ...Label) {
			if err != nil {
				return
			}
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(labels), formatValue(v))
		}
		for _, s := range f.series {
			if s.hist != nil {
				if err = writeHistogram(w, f.name, s.labels, s.hist); err != nil {
					return err
				}
				continue
			}
			emit(s.read(), s.labels...)
		}
		for _, c := range f.collectors {
			c(emit)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one stats.Histogram as cumulative buckets plus
// _sum and _count.
func writeHistogram(w io.Writer, name string, labels []Label, h *stats.Histogram) error {
	snap := h.Export()
	var cum uint64
	next := 0
	for _, bound := range histogramBounds {
		for next <= bound && next < len(snap.Buckets) {
			cum += snap.Buckets[next]
			next++
		}
		le := strconv.FormatFloat(float64(uint64(1)<<uint(bound))/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, L("le", le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, L("le", "+Inf")), snap.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(labels), formatValue(snap.Sum.Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels), snap.Count)
	return err
}

// String renders a compact human-readable dump: one line per sample,
// histograms summarized by their quantiles.
func (r *Registry) String() string {
	var b strings.Builder
	for _, f := range r.snapshot() {
		emit := func(v float64, labels ...Label) {
			fmt.Fprintf(&b, "%-12s %s%s = %s\n", f.kind, f.name, labelString(labels), formatValue(v))
		}
		for _, s := range f.series {
			if s.hist != nil {
				fmt.Fprintf(&b, "%-12s %s%s: %s\n", f.kind, f.name, labelString(s.labels), s.hist)
				continue
			}
			emit(s.read(), s.labels...)
		}
		for _, c := range f.collectors {
			c(emit)
		}
	}
	return b.String()
}

// Gather returns every non-histogram sample as a flat map from
// "name{labels}" to value — the programmatic read used by tests and
// assertions on top of the exporter.
func (r *Registry) Gather() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.snapshot() {
		emit := func(v float64, labels ...Label) {
			out[f.name+labelString(labels)] = v
		}
		for _, s := range f.series {
			if s.hist != nil {
				snap := s.hist.Export()
				out[f.name+"_count"+labelString(s.labels)] = float64(snap.Count)
				out[f.name+"_sum"+labelString(s.labels)] = snap.Sum.Seconds()
				continue
			}
			emit(s.read(), s.labels...)
		}
		for _, c := range f.collectors {
			c(emit)
		}
	}
	return out
}

// ObserveSince is a convenience for histogram timing call sites.
func ObserveSince(h *stats.Histogram, start time.Time) {
	h.Observe(time.Since(start))
}
