package metrics

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

// The exporter emits exactly the Prometheus exposition text expected
// for a registry with every series kind: registered counters, gauges,
// func-backed series, collectors, and a histogram.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Operations performed.", 4, L("cache", "filp"))
	for cpu := 0; cpu < 4; cpu++ {
		c.Add(cpu, uint64(10*(cpu+1)))
	}
	g := r.NewGauge("test_backlog", "Objects awaiting a grace period.")
	g.Set(7)
	r.CounterFunc("test_refills_total", "Refill operations.", func() float64 { return 42 })
	r.GaugeFunc("test_idle_ratio", "Fraction of time idle.", func() float64 { return 0.25 })
	r.CollectGauges("test_free_blocks", "Free blocks by order.", func(emit Emit) {
		emit(3, L("order", "0"))
		emit(1, L("order", "1"))
	})
	h := r.NewHistogram("test_gp_duration_seconds", "Grace-period latency.")
	h.Observe(500 * time.Nanosecond)  // bucket 9: below the 2^10 bound
	h.Observe(100 * time.Microsecond) // 1e5 ns < 2^17: inside the 2^18 bound
	h.Observe(50 * time.Millisecond)  // 5e7 ns < 2^26: inside the 2^26 bound
	h.Observe(200 * time.Millisecond) // 2e8 ns > 2^26: only in +Inf

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_ops_total Operations performed.
# TYPE test_ops_total counter
test_ops_total{cache="filp"} 100
# HELP test_backlog Objects awaiting a grace period.
# TYPE test_backlog gauge
test_backlog 7
# HELP test_refills_total Refill operations.
# TYPE test_refills_total counter
test_refills_total 42
# HELP test_idle_ratio Fraction of time idle.
# TYPE test_idle_ratio gauge
test_idle_ratio 0.25
# HELP test_free_blocks Free blocks by order.
# TYPE test_free_blocks gauge
test_free_blocks{order="0"} 3
test_free_blocks{order="1"} 1
# HELP test_gp_duration_seconds Grace-period latency.
# TYPE test_gp_duration_seconds histogram
test_gp_duration_seconds_bucket{le="1.024e-06"} 1
test_gp_duration_seconds_bucket{le="4.096e-06"} 1
test_gp_duration_seconds_bucket{le="1.6384e-05"} 1
test_gp_duration_seconds_bucket{le="6.5536e-05"} 1
test_gp_duration_seconds_bucket{le="0.000262144"} 2
test_gp_duration_seconds_bucket{le="0.001048576"} 2
test_gp_duration_seconds_bucket{le="0.004194304"} 2
test_gp_duration_seconds_bucket{le="0.016777216"} 2
test_gp_duration_seconds_bucket{le="0.067108864"} 3
test_gp_duration_seconds_bucket{le="+Inf"} 4
test_gp_duration_seconds_sum 0.2501005
test_gp_duration_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// Concurrent increments from many goroutines across all shards land
// exactly; run under -race this also proves the counter is data-race
// free.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const cpus, goroutines, perG = 8, 32, 5000
	c := r.NewCounter("test_total", "t", cpus)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc(g) // ids beyond cpus wrap, deliberately exercised
			}
		}(g)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Value = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gather()["test_total"]; got != goroutines*perG {
		t.Fatalf("Gather = %v, want %d", got, goroutines*perG)
	}
}

// Scraping concurrently with updates must be safe (run under -race).
func TestScrapeDuringUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "t", 4)
	g := r.NewGauge("test_gauge", "t")
	h := r.NewHistogram("test_hist_seconds", "t")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc(i)
			g.Set(int64(i))
			h.Observe(time.Duration(i) * time.Microsecond)
		}
	}()
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		_ = r.String()
	}
	close(stop)
	wg.Wait()
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a family under a different kind did not panic")
		}
	}()
	r := NewRegistry()
	r.CounterFunc("test_x", "t", func() float64 { return 0 })
	r.GaugeFunc("test_x", "t", func() float64 { return 0 })
}

// Label values containing quotes, backslashes and newlines are escaped
// per the exposition format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_g", "a\nb", func() float64 { return 1 }, L("k", "a\"b\\c\nd"))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP test_g a\\nb\n# TYPE test_g gauge\ntest_g{k=\"a\\\"b\\\\c\\nd\"} 1\n"
	if b.String() != want {
		t.Errorf("got %q, want %q", b.String(), want)
	}
}

// The per-CPU sharded counter's increment path must scale: this is the
// benchmark backing the "no shared-cacheline contention" requirement.
func BenchmarkCounterParallel(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("bench_total", "b", 64)
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		cpu := int(next.Add(1) - 1)
		for pb.Next() {
			c.Inc(cpu)
		}
	})
	if c.Value() == 0 {
		b.Fatal("counter never incremented")
	}
}

// TestCounterShardPadding pins the per-CPU counter shard to 128 bytes
// (a cache line pair, covering adjacent-line prefetch) so neighbouring
// CPUs' counters never false-share.
func TestCounterShardPadding(t *testing.T) {
	if s := unsafe.Sizeof(counterShard{}); s != 128 {
		t.Fatalf("counterShard is %d bytes, want 128 — resize its pad field", s)
	}
}
