package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prudence/internal/vcpu"
)

// fastOpts keeps grace periods quick so tests stay snappy.
func fastOpts() Options {
	return Options{
		Blimit:         10,
		ThrottleDelay:  50 * time.Microsecond,
		MinGPInterval:  50 * time.Microsecond,
		QSPollInterval: 10 * time.Microsecond,
	}
}

func newEngine(t *testing.T, cpus int) (*vcpu.Machine, *RCU) {
	t.Helper()
	m := vcpu.NewMachine(cpus)
	r := New(m, fastOpts())
	t.Cleanup(func() {
		r.Stop()
		m.Stop()
	})
	return m, r
}

func TestSynchronizeCompletesWithIdleCPUs(t *testing.T) {
	_, r := newEngine(t, 4)
	done := make(chan struct{})
	go func() {
		r.Synchronize()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Synchronize stalled with all CPUs idle")
	}
	if r.GPsCompleted() == 0 {
		t.Fatal("no grace period recorded")
	}
}

func TestGracePeriodWaitsForReader(t *testing.T) {
	_, r := newEngine(t, 2)
	r.ExitIdle(0)
	r.ReadLock(0)

	cookie := r.Snapshot()
	released := make(chan struct{})
	synced := make(chan struct{})
	go func() {
		r.WaitElapsed(cookie)
		close(synced)
	}()
	// The grace period must not complete while CPU 0 is in a read-side
	// critical section and never quiescing.
	select {
	case <-synced:
		t.Fatal("grace period completed despite active reader")
	case <-time.After(20 * time.Millisecond):
	}
	go func() {
		r.ReadUnlock(0)
		r.QuiescentState(0)
		r.EnterIdle(0)
		close(released)
	}()
	<-released
	select {
	case <-synced:
	case <-time.After(5 * time.Second):
		t.Fatal("grace period never completed after reader exit")
	}
}

func TestElapsedMonotoneAndSnapshotFresh(t *testing.T) {
	_, r := newEngine(t, 1)
	c1 := r.Snapshot()
	if r.Elapsed(c1) {
		t.Fatal("fresh cookie already elapsed")
	}
	r.Synchronize()
	if !r.Elapsed(c1) {
		t.Fatal("cookie not elapsed after Synchronize")
	}
	c2 := r.Snapshot()
	if r.Elapsed(c2) {
		t.Fatal("new cookie elapsed without new grace period")
	}
}

func TestCallbackInvokedAfterGracePeriod(t *testing.T) {
	_, r := newEngine(t, 2)
	var invoked atomic.Bool
	r.Call(0, func() { invoked.Store(true) })
	deadline := time.After(5 * time.Second)
	for !invoked.Load() {
		select {
		case <-deadline:
			t.Fatal("callback never invoked")
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	if got := r.PendingCallbacks(); got != 0 {
		t.Fatalf("PendingCallbacks = %d, want 0", got)
	}
	st := r.Stats()
	if st.CallbacksQueued != 1 || st.CallbacksInvoked != 1 {
		t.Fatalf("stats queued=%d invoked=%d, want 1/1", st.CallbacksQueued, st.CallbacksInvoked)
	}
}

func TestCallbackOrderingFIFOPerCPU(t *testing.T) {
	_, r := newEngine(t, 1)
	const n = 50
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		r.Call(0, func() {
			mu.Lock()
			order = append(order, i)
			if len(order) == n {
				close(done)
			}
			mu.Unlock()
		})
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("callbacks did not drain")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("callback order[%d] = %d, want FIFO", i, v)
		}
	}
}

func TestThrottlingBoundsBatchSize(t *testing.T) {
	m := vcpu.NewMachine(1)
	defer m.Stop()
	r := New(m, Options{
		Blimit:         5,
		ThrottleDelay:  2 * time.Millisecond,
		MinGPInterval:  50 * time.Microsecond,
		QSPollInterval: 10 * time.Microsecond,
	})
	defer r.Stop()

	const n = 25
	var invoked atomic.Int32
	for i := 0; i < n; i++ {
		r.Call(0, func() { invoked.Add(1) })
	}
	// Wait for the grace period, then sample shortly after the first
	// batch: with blimit 5 and 2ms delay, all 25 can't be done quickly.
	r.Synchronize()
	time.Sleep(1 * time.Millisecond)
	if got := invoked.Load(); got > 15 {
		t.Fatalf("processed %d callbacks well before throttle allows", got)
	}
	deadline := time.After(10 * time.Second)
	for invoked.Load() != n {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d callbacks processed", invoked.Load(), n)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if st := r.Stats(); st.ThrottledBatches < 5 {
		t.Fatalf("ThrottledBatches = %d, want >= 5 for 25 cbs at blimit 5", st.ThrottledBatches)
	}
}

func TestPressureExpeditesProcessing(t *testing.T) {
	m := vcpu.NewMachine(1)
	defer m.Stop()
	r := New(m, Options{
		Blimit:          2,
		ExpeditedBlimit: 1000,
		ThrottleDelay:   10 * time.Millisecond,
		MinGPInterval:   50 * time.Microsecond,
		QSPollInterval:  10 * time.Microsecond,
	})
	defer r.Stop()

	r.SetPressure(true)
	const n = 200
	var invoked atomic.Int32
	for i := 0; i < n; i++ {
		r.Call(0, func() { invoked.Add(1) })
	}
	deadline := time.After(5 * time.Second)
	for invoked.Load() != n {
		select {
		case <-deadline:
			t.Fatalf("expedited processing finished only %d/%d", invoked.Load(), n)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if st := r.Stats(); st.ExpeditedBatches == 0 {
		t.Fatal("no expedited batches recorded under pressure")
	}
}

func TestQuiescentStateNoOpInsideReader(t *testing.T) {
	_, r := newEngine(t, 1)
	r.ExitIdle(0)
	defer r.EnterIdle(0)
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	before := r.Stats().QuiescentReports
	r.QuiescentState(0)
	if got := r.Stats().QuiescentReports; got != before {
		t.Fatalf("QuiescentState inside reader reported (reports %d -> %d)", before, got)
	}
}

func TestUnbalancedReadUnlockPanics(t *testing.T) {
	_, r := newEngine(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced ReadUnlock did not panic")
		}
	}()
	r.ReadUnlock(0)
}

func TestEnterIdleInsideReaderPanics(t *testing.T) {
	_, r := newEngine(t, 1)
	r.ExitIdle(0)
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	defer func() {
		if recover() == nil {
			t.Fatal("EnterIdle inside reader did not panic")
		}
	}()
	r.EnterIdle(0)
}

func TestNestedReaders(t *testing.T) {
	_, r := newEngine(t, 1)
	r.ExitIdle(0)
	r.ReadLock(0)
	r.ReadLock(0)
	r.ReadUnlock(0)
	if !r.ReadHeld(0) {
		t.Fatal("outer reader lost after inner unlock")
	}
	cookie := r.Snapshot()
	done := make(chan struct{})
	go func() {
		r.WaitElapsed(cookie)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("grace period elapsed inside nested reader")
	case <-time.After(10 * time.Millisecond):
	}
	r.ReadUnlock(0)
	r.QuiescentState(0)
	r.EnterIdle(0)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("grace period stalled after nested readers finished")
	}
}

// The canonical RCU usage pattern: a writer unpublishes a value, waits a
// grace period, and only then may readers no longer observe it.
func TestWriterReaderIntegration(t *testing.T) {
	m, r := newEngine(t, 4)
	var shared atomic.Pointer[int]
	v := 42
	shared.Store(&v)

	var stale atomic.Int64
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	for c := 1; c < m.NumCPU(); c++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			r.ExitIdle(cpu)
			defer r.EnterIdle(cpu)
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				r.ReadLock(cpu)
				if p := shared.Load(); p != nil && *p != 42 {
					stale.Add(1)
				}
				r.ReadUnlock(cpu)
				r.QuiescentState(cpu)
			}
		}(c)
	}
	time.Sleep(2 * time.Millisecond)
	shared.Store(nil) // unpublish
	r.Synchronize()
	// After the grace period, the writer may reclaim; readers that ran
	// before unpublish have finished. Mutating v now must be invisible.
	v = -1
	time.Sleep(2 * time.Millisecond)
	close(stopReaders)
	wg.Wait()
	if stale.Load() != 0 {
		t.Fatalf("readers observed reclaimed value %d times", stale.Load())
	}
}

func TestStopDrainsElapsedCallbacks(t *testing.T) {
	m := vcpu.NewMachine(1)
	defer m.Stop()
	r := New(m, Options{
		Blimit:         1,
		ThrottleDelay:  50 * time.Millisecond, // would take
		MinGPInterval:  50 * time.Microsecond,
		QSPollInterval: 10 * time.Microsecond,
	})
	var invoked atomic.Int32
	const n = 10
	for i := 0; i < n; i++ {
		r.Call(0, func() { invoked.Add(1) })
	}
	r.Synchronize() // grace period elapsed; callbacks throttled
	r.Stop()        // must drain ready callbacks
	if got := invoked.Load(); got != n {
		t.Fatalf("Stop drained %d/%d elapsed callbacks", got, n)
	}
}

func TestManyCallersConcurrent(t *testing.T) {
	m, r := newEngine(t, 8)
	var invoked atomic.Int64
	const perCPU = 200
	m.RunOnAll(func(c *vcpu.CPU) {
		for i := 0; i < perCPU; i++ {
			r.Call(c.ID(), func() { invoked.Add(1) })
		}
	})
	deadline := time.After(20 * time.Second)
	want := int64(perCPU * m.NumCPU())
	for invoked.Load() != want {
		select {
		case <-deadline:
			t.Fatalf("invoked %d/%d", invoked.Load(), want)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if st := r.Stats(); st.MaxBacklog == 0 {
		t.Fatal("MaxBacklog never recorded")
	}
}

func TestSnapshotElapsedAcrossManyGPs(t *testing.T) {
	_, r := newEngine(t, 1)
	var cookies []Cookie
	for i := 0; i < 5; i++ {
		cookies = append(cookies, r.Snapshot())
		r.Synchronize()
	}
	for i, c := range cookies {
		if !r.Elapsed(c) {
			t.Fatalf("cookie %d not elapsed after %d synchronizes", i, len(cookies))
		}
	}
}

func TestBarrierWaitsForAllQueued(t *testing.T) {
	m, r := newEngine(t, 4)
	var invoked atomic.Int64
	const perCPU = 50
	for cpu := 0; cpu < m.NumCPU(); cpu++ {
		for i := 0; i < perCPU; i++ {
			r.Call(cpu, func() { invoked.Add(1) })
		}
	}
	r.Barrier()
	if got := invoked.Load(); got != perCPU*int64(m.NumCPU()) {
		t.Fatalf("Barrier returned with %d/%d callbacks invoked", got, perCPU*m.NumCPU())
	}
}

func TestBarrierEmptyQueues(t *testing.T) {
	_, r := newEngine(t, 2)
	done := make(chan struct{})
	go func() {
		r.Barrier()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Barrier hung on empty queues")
	}
}

func TestWaitElapsedOnTreatsCPUQuiescent(t *testing.T) {
	_, r := newEngine(t, 2)
	// CPU 0 is active (non-idle) and will block inside WaitElapsedOn;
	// the grace period must still complete because a blocked waiter is
	// context-switched.
	r.ExitIdle(0)
	defer r.EnterIdle(0)
	done := make(chan struct{})
	go func() {
		if !r.WaitElapsedOn(0, r.Snapshot()) {
			t.Error("WaitElapsedOn returned false")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitElapsedOn self-deadlocked on an active CPU")
	}
}

func TestWaitElapsedOnInsideReaderPanics(t *testing.T) {
	_, r := newEngine(t, 1)
	r.ExitIdle(0)
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	defer func() {
		if recover() == nil {
			t.Fatal("WaitElapsedOn inside reader did not panic")
		}
	}()
	r.WaitElapsedOn(0, r.Snapshot())
}

func TestSynchronizeOnRestoresIdleState(t *testing.T) {
	_, r := newEngine(t, 2)
	r.ExitIdle(0)
	defer r.EnterIdle(0)
	r.SynchronizeOn(0)
	// The CPU must be active again afterwards: a reader that never
	// quiesces must block grace periods.
	r.ReadLock(0)
	cookie := r.Snapshot()
	done := make(chan struct{})
	go func() {
		r.WaitElapsed(cookie)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("SynchronizeOn left the CPU marked idle: reader ignored")
	case <-time.After(20 * time.Millisecond):
	}
	r.ReadUnlock(0)
	r.QuiescentState(0)
	<-done
}

func TestSynchronizeOnInsideReaderPanics(t *testing.T) {
	_, r := newEngine(t, 1)
	r.ExitIdle(0)
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	defer func() {
		if recover() == nil {
			t.Fatal("SynchronizeOn inside reader did not panic")
		}
	}()
	r.SynchronizeOn(0)
}

func TestDebugStateRendersAllCPUs(t *testing.T) {
	_, r := newEngine(t, 2)
	r.ExitIdle(1)
	r.ReadLock(1)
	defer func() {
		r.ReadUnlock(1)
		r.EnterIdle(1)
	}()
	s := r.DebugState()
	for _, want := range []string{"cpu0", "cpu1", "nest=1", "started="} {
		if !contains(s, want) {
			t.Fatalf("DebugState %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCPUOutOfRangePanics(t *testing.T) {
	_, r := newEngine(t, 1)
	for _, id := range []int{-1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cpu %d did not panic", id)
				}
			}()
			r.ReadLock(id)
		}()
	}
}
