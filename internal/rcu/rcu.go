// Package rcu implements a Read-Copy-Update grace-period engine over
// virtual CPUs.
//
// It reproduces the properties of the Linux kernel's Tree-RCU that the
// paper's allocator work depends on:
//
//   - Readers delimit read-side critical sections with ReadLock and
//     ReadUnlock, which are wait-free per-CPU counter operations.
//   - A CPU reports a quiescent state whenever it passes a context
//     switch (QuiescentState) or sits in the idle loop (EnterIdle).
//   - A grace period elapses only after every CPU has passed a
//     quiescent state since the grace period started; an object removed
//     before a Snapshot is safe to reclaim once Elapsed(cookie) is true.
//   - Deferred frees can be registered as callbacks (Call), which a
//     per-CPU processor invokes *after* a grace period, in batches
//     limited by Blimit with a delay between batches. This batching and
//     throttling is exactly the mechanism that induces the extended
//     object lifetimes of §3.2: objects are safe long before the
//     processor gets to them.
//   - Under memory pressure the processor expedites (larger batches,
//     no inter-batch delay) just like the kernel behaviour visible at
//     ~70s in the paper's Figure 3 — and, like the kernel, a sufficient
//     deferred-free rate still outruns it.
//
// The allocator-facing integration surface the paper adds to RCU is the
// pollable grace-period state: Snapshot returns a cookie that Prudence
// stamps on each deferred object, and Elapsed(cookie) tells the
// allocator when that object's readers are guaranteed gone.
package rcu

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prudence/internal/fault"
	"prudence/internal/metrics"
	"prudence/internal/stats"
	gsync "prudence/internal/sync"
	"prudence/internal/vcpu"
)

// Cookie is a grace-period state snapshot. A cookie taken at time T has
// elapsed once a grace period that started after T has completed. It is
// an alias of the canonical internal/sync cookie, so grace-period state
// flows between the allocator and any registered backend unchanged.
type Cookie = gsync.Cookie

func init() {
	gsync.Register("rcu", func(m *vcpu.Machine, o gsync.Options) gsync.Backend {
		return New(m, Options{
			Blimit:          o.RetireBatch,
			ExpeditedBlimit: o.ExpeditedBlimit,
			Qhimark:         o.Qhimark,
			ThrottleDelay:   o.RetireDelay,
			MinGPInterval:   o.GPInterval,
			QSPollInterval:  o.PollInterval,
		})
	})
}

// Options configures the engine. Zero fields take defaults.
type Options struct {
	// Blimit is the maximum number of callbacks invoked per processor
	// batch (Linux's rcu blimit; default 10).
	Blimit int
	// ExpeditedBlimit is the batch size used under memory pressure
	// (default 100).
	ExpeditedBlimit int
	// ThrottleDelay is the pause between callback batches on a CPU
	// (default 100µs). Together with Blimit it bounds the deferred-free
	// processing rate — the throttling of §3.2/§3.3.
	ThrottleDelay time.Duration
	// ExpeditedDelay is the pause between batches while under memory
	// pressure. The default 0 lets expedited processing run flat out;
	// the endurance experiment sets it non-zero to reproduce the
	// kernel behaviour in Figure 3 where expediting raises but still
	// bounds the processing rate ("Despite this, RCU fails to keep
	// up").
	ExpeditedDelay time.Duration
	// Qhimark is the per-CPU callback backlog above which batch limits
	// come off entirely (the kernel's qhimark, default 10000): a CPU
	// that has fallen this far behind processes its whole ready list at
	// its next quiescent state. Set negative to disable (used by the
	// Figure 3 endurance configuration to model the deployed throttling
	// the paper measured against).
	Qhimark int
	// MinGPInterval is the minimum gap between consecutive grace-period
	// starts (default 200µs). Real grace periods take milliseconds; this
	// keeps thousands of updates per grace period, as §3.1 describes.
	MinGPInterval time.Duration
	// QSPollInterval is how often the grace-period driver re-checks
	// per-CPU quiescent states (default 20µs).
	QSPollInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.Blimit <= 0 {
		o.Blimit = 10
	}
	if o.ExpeditedBlimit <= 0 {
		o.ExpeditedBlimit = 100
	}
	if o.ThrottleDelay <= 0 {
		o.ThrottleDelay = 100 * time.Microsecond
	}
	if o.Qhimark == 0 {
		o.Qhimark = 10000
	}
	if o.MinGPInterval <= 0 {
		o.MinGPInterval = 200 * time.Microsecond
	}
	if o.QSPollInterval <= 0 {
		o.QSPollInterval = 20 * time.Microsecond
	}
	return o
}

// Stats counts engine activity.
type Stats struct {
	GPsStarted       uint64
	GPsCompleted     uint64
	CallbacksQueued  uint64
	CallbacksInvoked uint64
	MaxBacklog       int64 // high-water mark of pending callbacks
	ExpeditedBatches uint64
	ThrottledBatches uint64
	QuiescentReports uint64
	SynchronizeCalls uint64
}

// callback is one deferred invocation. It carries either a closure
// (fn) or, on the allocation-free RetireObject path, a (rec, obj, idx)
// triple interpreted by the reclaimer.
type callback struct {
	cookie Cookie
	fn     func()
	rec    gsync.Reclaimer
	obj    any
	idx    uint64
	cpu    int32
}

// invoke runs the deferred work, whichever form it was enqueued in.
func (cb *callback) invoke() {
	if cb.rec != nil {
		cb.rec.ReclaimRetired(int(cb.cpu), cb.obj, cb.idx)
		return
	}
	cb.fn()
}

type cpuState struct {
	nesting atomic.Int32 // read-side critical section depth
	qsSeq   atomic.Uint64
	idle    atomic.Bool

	//prudence:lockorder 40
	cbMu sync.Mutex
	//prudence:guarded_by cbMu
	cbs  []callback
	wake chan struct{}

	// cbCount mirrors len(cbs) for lock-free emptiness checks on the
	// hot quiescent-state path.
	cbCount atomic.Int64
	// qsCalls counts QuiescentState invocations for the periodic
	// scheduler yield (only the owning goroutine touches it).
	qsCalls atomic.Uint32
	// lastInline is the wall time (ns) of the last inline callback
	// batch, enforcing the throttle delay between batches.
	lastInline atomic.Int64
}

// RCU is the grace-period engine. All methods are safe for concurrent
// use subject to the per-CPU ownership contract: ReadLock, ReadUnlock,
// QuiescentState, EnterIdle and ExitIdle for a given CPU must be called
// from the goroutine owning that CPU.
type RCU struct {
	machine *vcpu.Machine
	opts    Options
	percpu  []*cpuState

	gpStarted   atomic.Uint64
	gpCompleted atomic.Uint64

	pending atomic.Int64 // callbacks not yet invoked
	needGP  atomic.Bool  // external demand for a grace period (Prudence)
	// expedite records expedited demand (ExpediteGP): the driver skips
	// the inter-GP gap while set. Cleared when the grace period it
	// hastened completes.
	expedite     atomic.Bool
	expeditedGPs atomic.Uint64
	pressure     atomic.Bool

	//prudence:lockorder 50
	gpMu sync.Mutex
	//prudence:guarded_by gpMu
	gpCond *sync.Cond
	kick   chan struct{}

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	// qsReports is hammered by every QuiescentState on every CPU, so it
	// is per-CPU sharded rather than a shared atomic.
	qsReports        *metrics.Counter
	gpHist           stats.Histogram
	cbInvoked        atomic.Uint64
	cbQueued         atomic.Uint64
	maxBacklog       atomic.Int64
	expeditedBatches atomic.Uint64
	throttledBatches atomic.Uint64
	syncCalls        atomic.Uint64
}

// New creates and starts an engine for machine. All CPUs begin in the
// idle (extended quiescent) state; workloads call ExitIdle before
// entering read-side critical sections and EnterIdle when done.
func New(machine *vcpu.Machine, opts Options) *RCU {
	r := &RCU{
		machine:   machine,
		opts:      opts.withDefaults(),
		percpu:    make([]*cpuState, machine.NumCPU()),
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		qsReports: metrics.NewCounter(machine.NumCPU()),
	}
	r.gpCond = sync.NewCond(&r.gpMu)
	for i := range r.percpu {
		cs := &cpuState{wake: make(chan struct{}, 1)}
		cs.idle.Store(true)
		r.percpu[i] = cs
	}
	r.wg.Add(1)
	go r.gpDriver()
	for i := range r.percpu {
		r.wg.Add(1)
		go r.cbProcessor(i)
	}
	return r
}

// Stop shuts the engine down. Pending callbacks are drained best-effort:
// callbacks whose grace period has already elapsed are invoked; others
// are dropped. Stop is idempotent.
func (r *RCU) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	// Broadcast under gpMu so that a waiter that checked the stop
	// channel before it closed is guaranteed to be inside Wait (and thus
	// woken) by the time we broadcast.
	r.gpMu.Lock()
	r.gpCond.Broadcast()
	r.gpMu.Unlock()
}

// Stopped reports whether Stop has begun.
func (r *RCU) Stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

func (r *RCU) cpu(id int) *cpuState {
	if id < 0 || id >= len(r.percpu) {
		panic(fmt.Sprintf("rcu: CPU id %d out of range [0,%d)", id, len(r.percpu)))
	}
	return r.percpu[id]
}

// ReadLock enters a read-side critical section on cpu.
func (r *RCU) ReadLock(cpu int) {
	r.cpu(cpu).nesting.Add(1)
}

// ReadUnlock exits a read-side critical section on cpu.
func (r *RCU) ReadUnlock(cpu int) {
	if n := r.cpu(cpu).nesting.Add(-1); n < 0 {
		panic("rcu: unbalanced ReadUnlock")
	}
}

// ReadHeld reports whether cpu is inside a read-side critical section.
func (r *RCU) ReadHeld(cpu int) bool {
	return r.cpu(cpu).nesting.Load() > 0
}

// QuiescentState reports a quiescent state on cpu (the analogue of a
// context switch). It is a no-op inside a read-side critical section.
//
// Like the kernel, callback processing rides the quiescent points of
// the CPU that queued the callbacks (RCU softirq at the context
// switch/tick): if ready callbacks exist and the throttle delay has
// passed since the last batch, up to Blimit of them are invoked here,
// on the owning CPU's own time. This is what makes the baseline pay
// for deferred-free processing with workload cycles, as it does on
// real hardware.
func (r *RCU) QuiescentState(cpu int) {
	cs := r.cpu(cpu)
	if cs.nesting.Load() > 0 {
		return
	}
	cs.qsSeq.Store(r.gpStarted.Load())
	r.qsReports.Inc(cpu)
	r.runInlineCallbacks(cs)
	// A context switch yields the CPU. Donating the core periodically
	// keeps the grace-period driver and background workers scheduled
	// even when the host has fewer cores than the machine has virtual
	// CPUs (e.g. GOMAXPROCS=1), where tight workload loops would
	// otherwise starve them.
	if cs.qsCalls.Add(1)%32 == 0 {
		runtime.Gosched()
	}
}

// runInlineCallbacks invokes one throttled batch of ready callbacks on
// the caller (the CPU's owning goroutine).
func (r *RCU) runInlineCallbacks(cs *cpuState) {
	backlog := cs.cbCount.Load()
	if backlog == 0 {
		return
	}
	// Over qhimark the CPU has fallen badly behind: the kernel removes
	// the batch limit and drains everything ready.
	expedited := r.pressure.Load() || (r.opts.Qhimark > 0 && backlog > int64(r.opts.Qhimark))
	now := time.Now().UnixNano()
	if !expedited {
		last := cs.lastInline.Load()
		if now-last < int64(r.opts.ThrottleDelay) || !cs.lastInline.CompareAndSwap(last, now) {
			return
		}
	} else if d := int64(r.opts.ExpeditedDelay); d > 0 {
		last := cs.lastInline.Load()
		if now-last < d || !cs.lastInline.CompareAndSwap(last, now) {
			return
		}
	}
	limit := r.opts.Blimit
	if expedited {
		limit = r.opts.ExpeditedBlimit
	}
	if r.opts.Qhimark > 0 && backlog > int64(r.opts.Qhimark) {
		limit = int(backlog) // drain everything ready
	}
	batch := r.takeReady(cs, limit)
	if len(batch) == 0 {
		return
	}
	if expedited {
		r.expeditedBatches.Add(1)
	} else {
		r.throttledBatches.Add(1)
	}
	// Chaos: delay callback invocation (objects stay latent longer).
	//prudence:fault_point
	fault.Sleep(fault.CBDelay)
	for _, cb := range batch {
		cb.invoke()
	}
	r.cbInvoked.Add(uint64(len(batch)))
	r.pending.Add(int64(-len(batch)))
}

// EnterIdle places cpu in the extended quiescent state: the grace-period
// driver treats it as permanently quiescent until ExitIdle. Panics if
// called inside a read-side critical section.
func (r *RCU) EnterIdle(cpu int) {
	cs := r.cpu(cpu)
	if cs.nesting.Load() > 0 {
		panic("rcu: EnterIdle inside read-side critical section")
	}
	cs.idle.Store(true)
}

// ExitIdle removes cpu from the extended quiescent state.
func (r *RCU) ExitIdle(cpu int) {
	r.cpu(cpu).idle.Store(false)
}

// Snapshot returns a cookie that elapses once every reader existing now
// has finished. This is the grace-period state the paper's modified
// synchronization mechanism exposes to the allocator (§4, requirement
// ii).
func (r *RCU) Snapshot() Cookie {
	// A grace period currently in progress may have started before the
	// caller's removal, so a full new grace period is required: cookie
	// is one past the last started GP.
	return Cookie(r.gpStarted.Load() + 1)
}

// Elapsed reports whether a full grace period has elapsed since the
// cookie was taken.
func (r *RCU) Elapsed(c Cookie) bool {
	return r.gpCompleted.Load() >= uint64(c)
}

// NeedGP tells the driver that someone is waiting on a grace period
// even though no callbacks are queued (Prudence's latent objects).
func (r *RCU) NeedGP() {
	r.needGP.Store(true)
	// Chaos: a lost wakeup drops the kick after demand is recorded,
	// leaving recovery to the driver's timer fallback — the failure mode
	// behind the PR 2 waitElapsed hang.
	//prudence:fault_point
	if fault.Fire(fault.LostWakeup) {
		return
	}
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// ExpediteGP raises expedited demand: the driver starts the next grace
// period without waiting out the inter-GP gap (quiescent-state
// detection is untouched — expediting never weakens the protocol).
// One-shot: consumed when the grace period it hastened completes.
func (r *RCU) ExpediteGP() {
	r.expedite.Store(true)
	r.needGP.Store(true)
	// Chaos: as in NeedGP, the recorded demand, not the kick, carries
	// the liveness guarantee.
	//prudence:fault_point
	if fault.Fire(fault.LostWakeup) {
		return
	}
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// ExpeditedAdvances returns how many grace periods started on the
// expedited path (inter-GP gap skipped on demand).
func (r *RCU) ExpeditedAdvances() uint64 { return r.expeditedGPs.Load() }

// WaitElapsed blocks until the cookie has elapsed (or the engine is
// stopped, in which case it returns false). A blocked synchronous
// waiter is latency-sensitive, so the demand it raises is expedited.
func (r *RCU) WaitElapsed(c Cookie) bool {
	if r.Elapsed(c) {
		return true
	}
	r.ExpediteGP()
	r.gpMu.Lock()
	defer r.gpMu.Unlock()
	for !r.Elapsed(c) {
		select {
		case <-r.stop:
			return r.Elapsed(c)
		default:
		}
		r.gpCond.Wait()
	}
	return true
}

// Synchronize blocks until a full grace period has elapsed. It must not
// be called from within a read-side critical section on a non-idle CPU
// that the caller owns (it would self-deadlock, as in the kernel).
func (r *RCU) Synchronize() {
	r.syncCalls.Add(1)
	r.WaitElapsed(r.Snapshot())
}

// WaitElapsedOn blocks until cookie has elapsed, treating the calling
// CPU as quiescent for the duration (the caller is blocked, which is a
// context switch). The caller must own cpu and must not be inside a
// read-side critical section. Returns false if the engine stopped first.
func (r *RCU) WaitElapsedOn(cpu int, c Cookie) bool {
	cs := r.cpu(cpu)
	if cs.nesting.Load() > 0 {
		panic("rcu: WaitElapsedOn inside read-side critical section")
	}
	wasIdle := cs.idle.Load()
	cs.idle.Store(true)
	ok := r.WaitElapsed(c)
	cs.idle.Store(wasIdle)
	return ok
}

// WaitElapsedOnTimeout is WaitElapsedOn with a deadline: it returns
// true as soon as the cookie elapses, or false once d has passed (or
// the engine stopped) without it elapsing. Like WaitElapsedOn it treats
// the calling CPU as quiescent for the duration; like waitElapsed it
// re-raises grace-period demand on every poll so a lost wakeup cannot
// turn the wait into its full timeout. This is the bounded wait the
// OOM-delay path uses so a stalled grace period degrades to an OOM
// report instead of a hang.
func (r *RCU) WaitElapsedOnTimeout(cpu int, c Cookie, d time.Duration) bool {
	cs := r.cpu(cpu)
	if cs.nesting.Load() > 0 {
		panic("rcu: WaitElapsedOnTimeout inside read-side critical section")
	}
	wasIdle := cs.idle.Load()
	cs.idle.Store(true)
	defer cs.idle.Store(wasIdle)
	deadline := time.Now().Add(d)
	for !r.Elapsed(c) {
		if time.Now().After(deadline) {
			return r.Elapsed(c)
		}
		// A deadline-bound waiter is starved by definition: expedite.
		r.ExpediteGP()
		select {
		case <-r.stop:
			return r.Elapsed(c)
		case <-time.After(r.opts.QSPollInterval):
		}
	}
	return true
}

// SynchronizeOn blocks until a full grace period has elapsed, treating
// the calling CPU as quiescent for the duration — the analogue of a
// kernel task sleeping in synchronize_rcu(), whose context switch is
// itself a quiescent state. The caller must own cpu and must not be in
// a read-side critical section.
func (r *RCU) SynchronizeOn(cpu int) {
	cs := r.cpu(cpu)
	if cs.nesting.Load() > 0 {
		panic("rcu: SynchronizeOn inside read-side critical section")
	}
	wasIdle := cs.idle.Load()
	cs.idle.Store(true)
	r.Synchronize()
	cs.idle.Store(wasIdle)
}

// Call registers fn to be invoked on cpu's callback processor after a
// grace period elapses. This is the Listing 1 path that the SLUB-based
// baseline uses for deferred frees.
func (r *RCU) Call(cpu int, fn func()) {
	r.enqueue(cpu, callback{fn: fn})
}

func (r *RCU) enqueue(cpu int, cb callback) {
	cs := r.cpu(cpu)
	cb.cookie = r.Snapshot()
	cs.cbMu.Lock()
	cs.cbs = append(cs.cbs, cb)
	cs.cbMu.Unlock()
	cs.cbCount.Add(1)
	pend := r.pending.Add(1)
	for {
		m := r.maxBacklog.Load()
		if pend <= m || r.maxBacklog.CompareAndSwap(m, pend) {
			break
		}
	}
	r.cbQueued.Add(1)
	select {
	case r.kick <- struct{}{}:
	default:
	}
	select {
	case cs.wake <- struct{}{}:
	default:
	}
}

// Retire implements the canonical backend surface's per-object
// retirement hook; for RCU it is exactly Call.
func (r *RCU) Retire(cpu int, fn func()) { r.Call(cpu, fn) }

// RetireObject is the non-closure Retire variant: an RCU callback
// carrying a (reclaimer, obj, idx) payload instead of a heap closure,
// so the Listing-1 deferred-free path enqueues with zero allocations.
func (r *RCU) RetireObject(cpu int, rec gsync.Reclaimer, obj any, idx uint64) {
	r.enqueue(cpu, callback{rec: rec, obj: obj, idx: idx, cpu: int32(cpu)})
}

// PendingCallbacks returns the number of callbacks queued but not yet
// invoked.
func (r *RCU) PendingCallbacks() int { return int(r.pending.Load()) }

// Barrier blocks until every callback queued before the call has been
// invoked — the rcu_barrier() analogue. It works by enqueueing a
// sentinel callback on every CPU (callbacks are per-CPU FIFO) and
// waiting for all sentinels to run.
func (r *RCU) Barrier() {
	// The sentinels decrement an atomic the caller polls. No waiter
	// goroutine: a helper blocked in wg.Wait would leak if the engine
	// stopped with a sentinel's grace period still outstanding (Stop
	// drops unelapsed callbacks, so the sentinel would never run).
	var remaining atomic.Int64
	remaining.Store(int64(len(r.percpu)))
	for cpu := range r.percpu {
		r.Call(cpu, func() { remaining.Add(-1) })
	}
	for remaining.Load() > 0 {
		select {
		case <-r.stop:
			return // engine stopping; Stop drains ready callbacks
		case <-time.After(200 * time.Microsecond):
			// Keep grace periods and processors moving while we wait.
			r.NeedGP()
		}
	}
}

// SetPressure switches expedited callback processing on or off. Wire it
// to pagealloc.Allocator.OnPressure.
func (r *RCU) SetPressure(under bool) {
	r.pressure.Store(under)
	if under {
		// Kick everything: the processors to drain, the driver to run
		// grace periods back to back.
		select {
		case r.kick <- struct{}{}:
		default:
		}
		for _, cs := range r.percpu {
			select {
			case cs.wake <- struct{}{}:
			default:
			}
		}
	}
}

// GPsCompleted returns the number of grace periods completed so far.
func (r *RCU) GPsCompleted() uint64 { return r.gpCompleted.Load() }

// Stats returns a snapshot of engine counters.
func (r *RCU) Stats() Stats {
	return Stats{
		GPsStarted:       r.gpStarted.Load(),
		GPsCompleted:     r.gpCompleted.Load(),
		CallbacksQueued:  r.cbQueued.Load(),
		CallbacksInvoked: r.cbInvoked.Load(),
		MaxBacklog:       r.maxBacklog.Load(),
		ExpeditedBatches: r.expeditedBatches.Load(),
		ThrottledBatches: r.throttledBatches.Load(),
		QuiescentReports: r.qsReports.Value(),
		SynchronizeCalls: r.syncCalls.Load(),
	}
}

// RegisterMetrics registers the engine's counters, the live callback
// backlog, and the grace-period latency histogram. Everything except
// the quiescent-report counter is a func-backed read of atomics the
// engine already maintains.
func (r *RCU) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("prudence_gp_started_total", "Grace periods started.",
		func() float64 { return float64(r.gpStarted.Load()) })
	reg.CounterFunc("prudence_gp_completed_total", "Grace periods completed.",
		func() float64 { return float64(r.gpCompleted.Load()) })
	reg.RegisterHistogram("prudence_gp_duration_seconds",
		"Latency from grace-period start to completion.", &r.gpHist)
	reg.CounterFunc("prudence_rcu_callbacks_queued_total", "Deferred-free callbacks registered via Call.",
		func() float64 { return float64(r.cbQueued.Load()) })
	reg.CounterFunc("prudence_rcu_callbacks_invoked_total", "Deferred-free callbacks invoked after their grace period.",
		func() float64 { return float64(r.cbInvoked.Load()) })
	reg.GaugeFunc("prudence_rcu_callback_backlog", "Callbacks queued but not yet invoked (reclamation lag).",
		func() float64 { return float64(r.pending.Load()) })
	reg.GaugeFunc("prudence_rcu_callback_backlog_peak", "High-water mark of the callback backlog.",
		func() float64 { return float64(r.maxBacklog.Load()) })
	reg.CounterFunc("prudence_rcu_expedited_batches_total", "Callback batches run expedited under memory pressure.",
		func() float64 { return float64(r.expeditedBatches.Load()) })
	reg.CounterFunc("prudence_rcu_throttled_batches_total", "Callback batches run at the throttled rate.",
		func() float64 { return float64(r.throttledBatches.Load()) })
	reg.RegisterCounter("prudence_rcu_quiescent_reports_total",
		"Quiescent states reported (context switches observed).", r.qsReports)
	reg.CounterFunc("prudence_rcu_synchronize_calls_total", "Blocking Synchronize calls.",
		func() float64 { return float64(r.syncCalls.Load()) })
	reg.CounterFunc("prudence_sync_expedited_advances_total", "Grace periods started on the expedited path (inter-GP gap skipped on demand).",
		func() float64 { return float64(r.expeditedGPs.Load()) })
	reg.GaugeFunc("prudence_rcu_callbacks_per_gp", "Mean callbacks invoked per completed grace period.",
		func() float64 {
			gps := r.gpCompleted.Load()
			if gps == 0 {
				return 0
			}
			return float64(r.cbInvoked.Load()) / float64(gps)
		})
}

// gpDriver is the grace-period kthread analogue: it starts a grace
// period whenever there is demand (pending callbacks, NeedGP, or
// waiters), waits for every CPU to pass a quiescent state, and then
// marks the grace period completed.
func (r *RCU) gpDriver() {
	defer r.wg.Done()
	timer := time.NewTimer(r.opts.MinGPInterval)
	defer timer.Stop()
	lastGP := time.Now()
	for {
		// Wait for demand.
		if !r.demandGP() {
			select {
			case <-r.stop:
				return
			case <-r.kick:
			case <-timer.C:
				timer.Reset(r.opts.MinGPInterval)
			}
			continue
		}
		// Enforce the inter-GP gap unless expediting — under pressure
		// or on explicit expedited demand.
		expedited := r.pressure.Load() || r.expedite.Load()
		if !expedited {
			if gap := time.Since(lastGP); gap < r.opts.MinGPInterval {
				select {
				case <-r.stop:
					return
				case <-time.After(r.opts.MinGPInterval - gap):
				}
				// Expedited demand may have arrived during the gap.
				expedited = r.pressure.Load() || r.expedite.Load()
			}
		}
		if expedited {
			r.expeditedGPs.Add(1)
		}
		r.needGP.Store(false)
		target := r.gpStarted.Add(1)
		gpBegin := time.Now()
		if !r.waitForQS(target) {
			return // stopping
		}
		// Chaos: stall the grace period after quiescence is observed but
		// before completion is published — every waiter sees an
		// arbitrarily late grace period.
		//prudence:fault_point
		if d := fault.FireDelay(fault.GPStall); d > 0 {
			select {
			case <-r.stop:
				return
			case <-time.After(d):
			}
		}
		r.gpCompleted.Store(target)
		r.expedite.Store(false)
		r.gpHist.Observe(time.Since(gpBegin))
		lastGP = time.Now()
		r.gpMu.Lock()
		r.gpCond.Broadcast()
		r.gpMu.Unlock()
		for _, cs := range r.percpu {
			select {
			case cs.wake <- struct{}{}:
			default:
			}
		}
	}
}

func (r *RCU) demandGP() bool {
	return r.pending.Load() > 0 || r.needGP.Load()
}

// waitForQS blocks until every CPU has either reported a quiescent state
// for grace period target or been observed idle after the grace period
// started. Returns false if the engine is stopping.
func (r *RCU) waitForQS(target uint64) bool {
	satisfied := make([]bool, len(r.percpu))
	remaining := len(r.percpu)
	for remaining > 0 {
		for i, cs := range r.percpu {
			if satisfied[i] {
				continue
			}
			// A CPU idle now has no readers predating the GP start:
			// read-side critical sections cannot span idle.
			if cs.idle.Load() && cs.nesting.Load() == 0 {
				satisfied[i] = true
				remaining--
				continue
			}
			if cs.qsSeq.Load() >= target {
				satisfied[i] = true
				remaining--
			}
		}
		if remaining == 0 {
			break
		}
		select {
		case <-r.stop:
			return false
		case <-time.After(r.opts.QSPollInterval):
		}
	}
	return true
}

// cbProcessor is the rcuo offload-thread analogue for one CPU: it
// invokes ready callbacks only while the CPU is otherwise idle (an
// active CPU processes its own callbacks inline at quiescent states).
// Batches are blimit-bounded with a delay in between; this deliberately
// bounded processing rate is what the paper identifies as the source of
// extended object lifetimes.
func (r *RCU) cbProcessor(cpu int) {
	defer r.wg.Done()
	cs := r.percpu[cpu]
	for {
		select {
		case <-r.stop:
			r.drainReady(cs)
			return
		case <-cs.wake:
		}
		for {
			if !cs.idle.Load() && !r.pressure.Load() {
				// The owning goroutine is active; it will process its
				// callbacks at its own quiescent points.
				break
			}
			expedited := r.pressure.Load()
			limit := r.opts.Blimit
			if expedited {
				limit = r.opts.ExpeditedBlimit
			}
			batch := r.takeReady(cs, limit)
			if len(batch) == 0 {
				break
			}
			if expedited {
				r.expeditedBatches.Add(1)
			} else {
				r.throttledBatches.Add(1)
			}
			// Chaos: delay offloaded callback invocation.
			//prudence:fault_point
			fault.Sleep(fault.CBDelay)
			for _, cb := range batch {
				cb.invoke()
			}
			r.cbInvoked.Add(uint64(len(batch)))
			r.pending.Add(int64(-len(batch)))
			// Throttle between batches: bounds jitter at the cost of
			// processing rate (§3.2). Expedited mode uses the (usually
			// zero) expedited delay instead.
			delay := r.opts.ThrottleDelay
			if expedited {
				delay = r.opts.ExpeditedDelay
			}
			if delay > 0 {
				select {
				case <-r.stop:
					r.drainReady(cs)
					return
				case <-time.After(delay):
				}
			}
		}
	}
}

// takeReady removes and returns up to limit callbacks from the front of
// cs's queue whose cookies have elapsed. Cookies are monotonic per CPU,
// so the ready callbacks form a prefix.
func (r *RCU) takeReady(cs *cpuState, limit int) []callback {
	completed := r.gpCompleted.Load()
	cs.cbMu.Lock()
	defer cs.cbMu.Unlock()
	n := 0
	for n < len(cs.cbs) && n < limit && uint64(cs.cbs[n].cookie) <= completed {
		n++
	}
	if n == 0 {
		return nil
	}
	batch := make([]callback, n)
	copy(batch, cs.cbs[:n])
	cs.cbs = cs.cbs[n:]
	cs.cbCount.Add(int64(-n))
	return batch
}

func (r *RCU) drainReady(cs *cpuState) {
	for {
		batch := r.takeReady(cs, 1<<30)
		if len(batch) == 0 {
			return
		}
		for _, cb := range batch {
			cb.invoke()
		}
		r.cbInvoked.Add(uint64(len(batch)))
		r.pending.Add(int64(-len(batch)))
	}
}

// DebugState reports per-CPU quiescent bookkeeping for diagnostics.
func (r *RCU) DebugState() string {
	out := fmt.Sprintf("started=%d completed=%d pending=%d needGP=%v pressure=%v |",
		r.gpStarted.Load(), r.gpCompleted.Load(), r.pending.Load(), r.needGP.Load(), r.pressure.Load())
	for i, cs := range r.percpu {
		out += fmt.Sprintf(" cpu%d{nest=%d qs=%d idle=%v}", i, cs.nesting.Load(), cs.qsSeq.Load(), cs.idle.Load())
	}
	return out
}
