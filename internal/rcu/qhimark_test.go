package rcu

import (
	"sync/atomic"
	"testing"
	"time"

	"prudence/internal/vcpu"
)

// Over qhimark, a quiescent state drains the whole ready backlog even
// though the normal batch limit is tiny.
func TestQhimarkRemovesBatchLimit(t *testing.T) {
	m := vcpu.NewMachine(1)
	defer m.Stop()
	r := New(m, Options{
		Blimit:         2,
		ThrottleDelay:  50 * time.Millisecond, // normal path would take ~minutes
		Qhimark:        100,
		MinGPInterval:  50 * time.Microsecond,
		QSPollInterval: 10 * time.Microsecond,
	})
	defer r.Stop()

	r.ExitIdle(0)
	defer r.EnterIdle(0)

	const n = 500 // 5x qhimark
	var invoked atomic.Int32
	for i := 0; i < n; i++ {
		r.Call(0, func() { invoked.Add(1) })
	}
	// Let the grace period elapse while CPU 0 stays active (so the idle
	// offload processor does not run).
	cookie := r.Snapshot()
	deadline := time.Now().Add(5 * time.Second)
	for !r.Elapsed(cookie) {
		r.QuiescentState(0)
		if time.Now().After(deadline) {
			t.Fatal("grace period never elapsed")
		}
	}
	// One quiescent state must now drain everything ready: the backlog
	// exceeds qhimark so the limit comes off.
	r.QuiescentState(0)
	if got := invoked.Load(); got != n {
		t.Fatalf("drained %d/%d callbacks at quiescent state over qhimark", got, n)
	}
}

// Under qhimark the blimit cap stays in force at quiescent states.
func TestUnderQhimarkKeepsBatchLimit(t *testing.T) {
	m := vcpu.NewMachine(1)
	defer m.Stop()
	r := New(m, Options{
		Blimit:         3,
		ThrottleDelay:  time.Nanosecond, // no time gate, only the batch cap
		Qhimark:        1000,
		MinGPInterval:  50 * time.Microsecond,
		QSPollInterval: 10 * time.Microsecond,
	})
	defer r.Stop()
	r.ExitIdle(0)
	defer r.EnterIdle(0)

	const n = 30
	var invoked atomic.Int32
	for i := 0; i < n; i++ {
		r.Call(0, func() { invoked.Add(1) })
	}
	cookie := r.Snapshot()
	deadline := time.Now().Add(5 * time.Second)
	for !r.Elapsed(cookie) {
		r.QuiescentState(0)
		if time.Now().After(deadline) {
			t.Fatal("grace period never elapsed")
		}
	}
	before := invoked.Load()
	time.Sleep(time.Millisecond) // pass the (1ns) throttle window
	r.QuiescentState(0)
	after := invoked.Load()
	if after-before > 3 {
		t.Fatalf("one quiescent state invoked %d callbacks, batch limit is 3", after-before)
	}
}

// Negative qhimark disables the unbounded drain entirely.
func TestQhimarkDisabled(t *testing.T) {
	m := vcpu.NewMachine(1)
	defer m.Stop()
	r := New(m, Options{
		Blimit:         2,
		ThrottleDelay:  time.Nanosecond,
		Qhimark:        -1,
		MinGPInterval:  50 * time.Microsecond,
		QSPollInterval: 10 * time.Microsecond,
	})
	defer r.Stop()
	r.ExitIdle(0)
	defer r.EnterIdle(0)

	const n = 50
	var invoked atomic.Int32
	for i := 0; i < n; i++ {
		r.Call(0, func() { invoked.Add(1) })
	}
	cookie := r.Snapshot()
	deadline := time.Now().Add(5 * time.Second)
	for !r.Elapsed(cookie) {
		r.QuiescentState(0)
		if time.Now().After(deadline) {
			t.Fatal("grace period never elapsed")
		}
	}
	before := invoked.Load()
	time.Sleep(time.Millisecond)
	r.QuiescentState(0)
	if d := invoked.Load() - before; d > 2 {
		t.Fatalf("disabled qhimark still drained %d callbacks in one batch", d)
	}
}

// A stalled grace period (reader held open) keeps the backlog intact;
// releasing the reader lets the engine drain it.
func TestBacklogSurvivesGPStall(t *testing.T) {
	m := vcpu.NewMachine(2)
	defer m.Stop()
	r := New(m, fastOpts())
	defer r.Stop()

	r.ExitIdle(1)
	r.ReadLock(1)

	var invoked atomic.Int32
	const n = 100
	for i := 0; i < n; i++ {
		r.Call(0, func() { invoked.Add(1) })
	}
	time.Sleep(10 * time.Millisecond)
	if got := invoked.Load(); got != 0 {
		t.Fatalf("%d callbacks invoked during grace-period stall", got)
	}
	if got := r.PendingCallbacks(); got != n {
		t.Fatalf("backlog = %d during stall, want %d", got, n)
	}
	r.ReadUnlock(1)
	r.QuiescentState(1)
	r.EnterIdle(1)
	deadline := time.Now().Add(5 * time.Second)
	for invoked.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d callbacks after stall released", invoked.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}
