package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"prudence/internal/alloctest"
	"prudence/internal/metrics"
	"prudence/internal/slabcore"
	"prudence/internal/vcpu"
)

// TestOwnerVisitorConcurrency drives the owner-core fast path and every
// cross-CPU slow path at once: per-CPU workers hammer Malloc / Free /
// FreeDeferred (owner Lock) while idle workers pre-flush (LockRemote),
// the RCU engine merges deferred objects, and a scraper goroutine
// continuously snapshots counters and the metrics registry. Its value
// is under -race: the owner-lock protocol must make every visitor
// access to per-CPU state well-ordered, not just mostly-correct.
func TestOwnerVisitorConcurrency(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("ownervisitor"))
	reg := metrics.NewRegistry()
	s.Alloc.RegisterMetrics(reg)

	stop := make(chan struct{})
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Cross-CPU reads of the sharded counters and gauges. The
			// snapshot is not atomic across shards (transient skew like
			// frees ahead of allocs is expected); the point is that the
			// reads are well-ordered under -race, not consistent.
			_ = c.Counters().Snapshot()
			_, _, _ = c.Fragmentation()
			_ = reg.String()
		}
	}()

	s.Machine.RunOnAll(func(cpu *vcpu.CPU) {
		id := cpu.ID()
		s.RCU.ExitIdle(id)
		defer s.RCU.EnterIdle(id)
		rng := rand.New(rand.NewSource(int64(id)))
		var live []slabcore.Ref
		for i := 0; i < 4000; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				r, err := c.Malloc(id)
				if err != nil {
					t.Errorf("cpu %d: %v", id, err)
					return
				}
				live = append(live, r)
			} else {
				j := rng.Intn(len(live))
				if rng.Intn(2) == 0 {
					c.Free(id, live[j])
				} else {
					c.FreeDeferred(id, live[j])
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			s.RCU.QuiescentState(id)
		}
		for _, r := range live {
			c.Free(id, r)
		}
	})
	close(stop)
	scraperWG.Wait()

	c.Drain()
	if err := c.(alloctest.Auditor).Audit(); err != nil {
		t.Fatalf("post-drain audit: %v", err)
	}
	if used := s.Arena.UsedPages(); used != 0 {
		t.Fatalf("%d pages leaked", used)
	}
}
