package core

import (
	"testing"
	"unsafe"
)

// TestCPULocalPadding pins cpuLocal to 128 bytes (a cache line pair,
// covering adjacent-line prefetch) so neighbouring CPUs' hot state
// never false-shares. The struct's pad field must shrink or grow
// whenever fields change.
func TestCPULocalPadding(t *testing.T) {
	if s := unsafe.Sizeof(cpuLocal{}); s != 128 {
		t.Fatalf("cpuLocal is %d bytes, want 128 — resize its pad field", s)
	}
}
