// Package core implements Prudence, the paper's contribution: a slab
// allocator tightly integrated with the procrastination-based
// synchronization mechanism so that deferred objects are visible to —
// and reclaimed by — the allocator itself.
//
// The structure follows the paper's Algorithm 1 and §4:
//
//   - Every per-CPU object cache has a latent cache holding deferred
//     objects stamped with the grace-period cookie after which they are
//     safe; every slab has a latent slab (see slabcore.Slab's latent
//     entries). Latent objects are hidden from ordinary allocation until
//     their grace period elapses, then merged.
//   - Object cache refill is partial: with o the object cache size and d
//     the latent backlog, only o-d objects are refilled so the later
//     merge cannot overflow the cache (MALLOC/REFILL, lines 8-14).
//   - When a deferred free would push object+latent counts past the
//     cache size, a latent-cache pre-flush is scheduled on the CPU's
//     idle worker, moving deferred objects to their latent slabs ahead
//     of time, aggressively when frees outpace allocations
//     (FREE_DEFERRED lines 39-51 and §4.2 "Latent cache pre-flush").
//   - Slabs are pre-moved between full/partial/free lists as soon as a
//     deferred free makes the future placement known (PRE_MOVE_SLAB,
//     lines 52-59).
//   - Refill slab selection scans a bounded prefix of the partial list
//     and avoids slabs whose live objects are mostly deferred, so those
//     slabs can drain completely and their pages return to the page
//     allocator — the total-fragmentation optimization of Figure 5.
//   - On memory exhaustion with deferred objects outstanding, the OOM
//     path waits for a grace period and retries instead of failing
//     (lines 31-32, "Handling memory pressure").
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"prudence/internal/alloc"
	"prudence/internal/fault"
	"prudence/internal/metrics"
	"prudence/internal/pagealloc"
	"prudence/internal/rcu"
	"prudence/internal/slabcore"
	"prudence/internal/stats"
	gsync "prudence/internal/sync"
	"prudence/internal/trace"
	"prudence/internal/vcpu"
)

// Options toggles Prudence's individual optimizations. The zero value
// enables everything; the toggles exist for the ablation benchmarks.
type Options struct {
	// DisablePartialRefill refills the object cache to capacity,
	// ignoring the latent backlog (turns off lines 8-14's sizing).
	DisablePartialRefill bool
	// DisablePreFlush turns off idle-time latent cache pre-flushing.
	DisablePreFlush bool
	// DisablePreMove turns off slab pre-movement between node lists.
	DisablePreMove bool
	// DisableSlabSelection makes refill take the first partial slab
	// like SLUB instead of the deferred-aware scan.
	DisableSlabSelection bool
	// DisableOOMDelay fails allocations immediately on page exhaustion
	// even when deferred objects are pending.
	DisableOOMDelay bool
	// EnablePrediction turns on the §6 future-work extension: flush
	// sizing adapts to a lifetime prediction for objects freed OUTSIDE
	// the deferred context. When recent allocations outpace immediate
	// frees, freed objects are predicted to be reallocated soon and the
	// overflow flush keeps more of them cached; when immediate frees
	// dominate (teardown bursts), the flush returns more to the slabs.
	// Off by default: it is an extension beyond the paper's evaluated
	// design.
	EnablePrediction bool
	// SlabScanLimit bounds how many partial slabs refill inspects
	// (default 10 — the paper's latency/fragmentation trade-off, §5.4).
	SlabScanLimit int
	// OOMDelayWait bounds one OOM-delay grace-period wait (default 5ms).
	// Waits back off exponentially on consecutive timeouts, so a stalled
	// grace period degrades to an out-of-memory report instead of a hang.
	OOMDelayWait time.Duration
	// OOMDelayRetries is how many timed-out waits the OOM path tolerates
	// before giving up and reporting out-of-memory (default 3).
	OOMDelayRetries int
}

func (o Options) withDefaults() Options {
	if o.SlabScanLimit <= 0 {
		o.SlabScanLimit = 10
	}
	if o.OOMDelayWait <= 0 {
		o.OOMDelayWait = 5 * time.Millisecond
	}
	if o.OOMDelayRetries <= 0 {
		o.OOMDelayRetries = 3
	}
	return o
}

// GracePeriods is the integration surface the paper's §4 (requirement
// ii) adds to the synchronization mechanism: a pollable grace-period
// state. Prudence is agnostic to HOW grace periods are detected —
// context-switch counting (internal/rcu), epoch-based reclamation
// (internal/ebr, internal/nebr) and hazard-pointer scanning
// (internal/hp) all satisfy it, demonstrating the paper's point that
// the added complexity stays inside the allocator.
//
// Deprecated: GracePeriods is now an alias for the canonical
// internal/sync.Backend interface, which unified the historical
// per-engine surfaces (this interface, the facade's private readSync,
// rcuhash.Sync, rculist.ReadSync). New code should name sync.Backend
// directly; the alias is kept so existing callers compile unchanged.
type GracePeriods = gsync.Backend

// Allocator is the Prudence allocator.
type Allocator struct {
	pages   *pagealloc.Allocator
	rcu     GracePeriods
	machine *vcpu.Machine
	opts    Options

	// mu guards the cache registry only; it ranks below every
	// allocation-path lock and is never held across one.
	//
	//prudence:lockorder 5
	mu     sync.Mutex
	caches []alloc.Cache //prudence:guarded_by mu
}

var _ alloc.Allocator = (*Allocator)(nil)

// New creates a Prudence allocator. machine provides the per-CPU idle
// workers used for pre-flush; r is the grace-period provider whose
// state the allocator polls (internal/rcu's engine or any other
// GracePeriods implementation, e.g. internal/ebr).
func New(pages *pagealloc.Allocator, r GracePeriods, machine *vcpu.Machine, opts Options) *Allocator {
	return &Allocator{
		pages:   pages,
		rcu:     r,
		machine: machine,
		opts:    opts.withDefaults(),
	}
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "prudence" }

// NewCache implements alloc.Allocator.
func (a *Allocator) NewCache(cfg slabcore.CacheConfig) alloc.Cache {
	cfg.CPUs = a.machine.NumCPU()
	c := &Cache{
		alloc: a,
		base:  slabcore.NewBase(a.pages, cfg),
	}
	c.percpu = make([]*cpuLocal, cfg.CPUs)
	for i := range c.percpu {
		cl := &cpuLocal{
			objs: slabcore.NewPerCPUCache(c.base.Cfg.CacheSize),
		}
		cl.elapsedFn = func(ck rcu.Cookie) bool { return c.elapsedLocal(cl, ck) }
		c.percpu[i] = cl
	}
	c.placeFn = c.placement
	c.shrinkGate = make([]atomic.Uint64, len(c.base.NodesArr))
	a.mu.Lock()
	a.caches = append(a.caches, c)
	a.mu.Unlock()
	return c
}

// Caches implements alloc.Allocator.
func (a *Allocator) Caches() []alloc.Cache {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]alloc.Cache, len(a.caches))
	copy(out, a.caches)
	return out
}

// RegisterMetrics implements alloc.Allocator: the shared per-cache
// counter families plus the latent backlog depth, which is Prudence's
// reclamation-lag signal (objects deferred but not yet reusable).
func (a *Allocator) RegisterMetrics(r *metrics.Registry) {
	alloc.RegisterCacheMetrics(r, a)
	r.CollectGauges("prudence_cache_latent_objects", "Deferred objects parked in latent caches and latent slabs.",
		func(emit metrics.Emit) {
			for _, c := range a.Caches() {
				if pc, ok := c.(*Cache); ok {
					emit(float64(pc.LatentTotal()), metrics.L("cache", pc.Name()))
				}
			}
		})
}

// latentObj is one deferred object in a latent cache.
type latentObj struct {
	ref    slabcore.Ref
	cookie rcu.Cookie
}

// cpuLocal is one CPU's object cache plus latent cache, guarded by the
// object cache's owner-core lock (the local-irq-disable analogue): the
// owning workload goroutine takes the fast path, the idle pre-flush
// worker and Drain take the visitor path. The latent cache is bounded
// by the object cache size (§4.1): overflow goes to latent slabs
// instead, so a post-grace-period merge can never overflow the object
// cache. Padded to 128 bytes so adjacent CPUs' cpuLocals never share a
// cache line (or an adjacent-line prefetch pair).
//
//prudence:padded 128
type cpuLocal struct {
	objs   *slabcore.PerCPUCache
	latent []latentObj //prudence:guarded_by objs

	// preflushArmed avoids queueing more than one pre-flush work item.
	preflushArmed bool //prudence:guarded_by objs

	// op counts since the last pre-flush decision, used for the
	// aggressive/lazy pre-flush rate heuristic (§4.2).
	allocsSince int //prudence:guarded_by objs
	freesSince  int //prudence:guarded_by objs

	// prediction window counters (EnablePrediction): immediate-path
	// traffic since the last overflow flush.
	predAllocs int //prudence:guarded_by objs
	predFrees  int //prudence:guarded_by objs

	// elapsedMax caches the highest grace-period cookie this CPU has
	// observed to elapse. Cookies are monotone ("once elapsed, always
	// elapsed" holds for every GracePeriods implementation), so queries
	// at or below the cached value answer locally instead of re-reading
	// the engine's shared completed-GP line on every latent-entry poll.
	// Guarded by the cache lock.
	elapsedMax rcu.Cookie //prudence:guarded_by objs

	// elapsedFn is the prebuilt cached-poll closure handed to
	// slabcore.Reconcile from paths holding this CPU's cache lock,
	// built once in NewCache so the hot path never allocates one.
	elapsedFn func(rcu.Cookie) bool

	_ [40]byte // pad to 128 bytes; sized by TestCPULocalPadding
}

// Cache is one Prudence slab cache.
type Cache struct {
	alloc  *Allocator
	base   *slabcore.Base
	percpu []*cpuLocal

	// latentTotal counts deferred objects anywhere in this cache
	// (latent caches + latent slabs); the OOM-delay path consults it.
	latentTotal atomic.Int64

	// shrinkGate[node] records the grace-period count at the last
	// latent-path shrink attempt on that node. Free-list slabs blocked
	// by latent objects can only become reclaimable after a further
	// grace period, so re-scanning before one completes is wasted work
	// under the node lock (and starves other CPUs off it).
	shrinkGate []atomic.Uint64

	// placeFn is the placement policy as a prebuilt func value for
	// slabcore.ReleaseRefs, so flush paths do not allocate a closure.
	placeFn func(*slabcore.Slab) slabcore.ListID
}

var _ alloc.Cache = (*Cache)(nil)

// Name implements alloc.Cache.
func (c *Cache) Name() string { return c.base.Cfg.Name }

// ObjectSize implements alloc.Cache.
func (c *Cache) ObjectSize() int { return c.base.Cfg.ObjectSize }

// Counters implements alloc.Cache.
func (c *Cache) Counters() *stats.AllocCounters { return &c.base.Ctr }

// Fragmentation implements alloc.Cache.
func (c *Cache) Fragmentation() (float64, int64, int64) {
	return c.base.Fragmentation()
}

// LatentTotal returns the number of deferred objects currently parked in
// this cache's latent caches and latent slabs.
func (c *Cache) LatentTotal() int64 { return c.latentTotal.Load() }

func (c *Cache) elapsed(ck rcu.Cookie) bool { return c.alloc.rcu.Elapsed(ck) }

// elapsedLocal answers a grace-period poll from cl's cached high-water
// cookie when possible, touching the engine's shared state only for
// cookies not yet known to have elapsed (and remembering the answer).
// Caller holds cl's cache lock.
//
//prudence:requires PerCPUCache
func (c *Cache) elapsedLocal(cl *cpuLocal, ck rcu.Cookie) bool {
	if ck <= cl.elapsedMax {
		return true
	}
	if c.alloc.rcu.Elapsed(ck) {
		cl.elapsedMax = ck
		return true
	}
	return false
}

// shrinkLimit is the deferred-aware free-slab threshold: on top of the
// configured limit, keep enough free slabs to re-home the current
// latent backlog. Those objects become allocatable at the next grace
// period, so returning their slabs' pages to the page allocator now
// would only cycle them straight back through grow (the ill-timed
// reclamation §3.3 warns about). When the deferred load stops, the
// backlog drops to zero and the cache shrinks to the configured limit.
func (c *Cache) shrinkLimit() int {
	per := c.base.Cfg.ObjectsPerSlab()
	return c.base.Cfg.FreeSlabLimit + int(c.latentTotal.Load())/per
}

// Malloc implements alloc.Cache following Algorithm 1's MALLOC.
func (c *Cache) Malloc(cpu int) (slabcore.Ref, error) {
	ctr := &c.base.Ctr
	ctr.IncAllocs(cpu)
	cl := c.percpu[cpu]

	// oomTimeouts counts consecutive timed-out OOM-delay waits; any
	// successful wait resets it. See the OOM path at the loop's end.
	oomTimeouts := 0
	for {
		cl.objs.Lock()
		cl.allocsSince++
		cl.predAllocs++
		if r := cl.objs.TryGet(); !r.IsZero() {
			cl.objs.Unlock()
			ctr.IncCacheHits(cpu)
			c.base.UserAlloc(cpu)
			if d := c.base.Debugger(); d != nil {
				d.OnAlloc(r, cpu)
			}
			return r, nil
		}
		// Lines 8-11: merge safe latent objects and retry. A latent
		// backlog in which nothing has elapsed means the allocator is
		// starved waiting on grace-period progress: raise expedited
		// demand so the engine advances now instead of at timer cadence.
		if len(cl.latent) > 0 && !c.elapsedLocal(cl, cl.latent[0].cookie) {
			c.alloc.rcu.ExpediteGP()
		}
		if n := c.mergeCaches(cl); n > 0 {
			c.base.Trace(trace.KindMerge, cpu, int64(n), 0)
			if r := cl.objs.TryGet(); !r.IsZero() {
				cl.objs.Unlock()
				ctr.IncLatentHits(cpu)
				c.base.UserAlloc(cpu)
				if d := c.base.Debugger(); d != nil {
					d.OnAlloc(r, cpu)
				}
				return r, nil
			}
		}
		// Line 12: refill, sized by the latent backlog.
		c.refill(cpu, cl)
		if r := cl.objs.TryGet(); !r.IsZero() {
			cl.objs.Unlock()
			c.base.UserAlloc(cpu)
			if d := c.base.Debugger(); d != nil {
				d.OnAlloc(r, cpu)
			}
			return r, nil
		}
		// Lines 29-30: grow the slab cache. A real kernel re-enables
		// IRQs before entering the buddy allocator; the stand-in grows
		// under the cache lock and accepts that the page allocator's
		// bounded zeroer wait may sleep there.
		node := c.base.NodeFor(cpu)
		_, err := c.base.NewSlab(node) //prudence:nolint:sleepcheck grow-under-cache-lock stand-in: the zeroer wait in pagealloc is bounded, and dropping the owner lock here would let visitors race the grow
		if err == nil {
			c.base.Trace(trace.KindGrow, cpu, 1, 0)
			c.refill(cpu, cl)
			r := cl.objs.TryGet()
			cl.objs.Unlock()
			if r.IsZero() {
				// The fresh slab's objects were taken by other CPUs
				// between our grow and refill: memory exists and the
				// system is making progress, so retry. If memory truly
				// runs out, the next grow fails and the OOM path below
				// decides.
				continue
			}
			c.base.UserAlloc(cpu)
			if d := c.base.Debugger(); d != nil {
				d.OnAlloc(r, cpu)
			}
			return r, nil
		}
		cl.objs.Unlock()

		// Lines 31-33: on exhaustion, wait for a grace period if
		// deferred objects are pending somewhere; they become
		// reallocatable once it elapses.
		if c.alloc.opts.DisableOOMDelay || c.latentTotal.Load() == 0 {
			ctr.OOMs.Add(1)
			c.base.Trace(trace.KindOOM, cpu, 0, 0)
			return slabcore.Ref{}, err
		}
		ctr.GPWaits.Add(1)
		c.base.Trace(trace.KindGPWait, cpu, 0, 0)
		// The wait treats this CPU as quiescent (the caller is blocked,
		// i.e. context-switched) so the grace period it is waiting for
		// can actually complete. The wait is bounded with exponential
		// backoff: Algorithm 1's lines 31-32 assume a grace period
		// always arrives, but a stalled or wedged engine must degrade
		// to an out-of-memory report, not a hang.
		wait := c.alloc.opts.OOMDelayWait << min(oomTimeouts, 4)
		// The OOM-delay wait is the most starved caller there is: the
		// allocation cannot proceed until a grace period frees memory.
		c.alloc.rcu.ExpediteGP()
		//prudence:fault_point
		elapsed := !fault.Fire(fault.OOMDelayExpire) &&
			c.alloc.rcu.WaitElapsedOnTimeout(cpu, c.alloc.rcu.Snapshot(), wait)
		if !elapsed {
			ctr.OOMDelayTimeouts.Add(1)
			oomTimeouts++
			if oomTimeouts >= c.alloc.opts.OOMDelayRetries {
				ctr.OOMs.Add(1)
				c.base.Trace(trace.KindOOM, cpu, 0, 0)
				return slabcore.Ref{}, err
			}
			continue
		}
		oomTimeouts = 0
		// Reconcile latent slabs across the nodes so freed-up slabs can
		// be found by the retry. Another CPU may win the refill race,
		// but per Algorithm 1 (lines 31-32) the allocation keeps
		// waiting as long as deferred objects are pending: deferral is
		// the system's guarantee that memory is coming back.
		for _, n := range c.base.NodesArr {
			c.reconcileNode(n)
		}
	}
}

// mergeCaches implements MERGE_CACHES (lines 60-65): move latent objects
// whose grace period has elapsed into the object cache, stopping when it
// is full. Caller holds cl's cache lock. Returns the number merged.
//
// Cookies are monotone within a CPU's latent cache, so one cached
// grace-period poll (elapsedLocal) bounds the eligible prefix and the
// splice transfers it in a single pass — the common cases (nothing
// elapsed, or everything has) cost one comparison per entry and at
// most one read of the engine's shared state.
//
//prudence:requires PerCPUCache
func (c *Cache) mergeCaches(cl *cpuLocal) int {
	room := cl.objs.Size - cl.objs.Len()
	if room <= 0 || len(cl.latent) == 0 {
		return 0
	}
	// The first unelapsed entry ends the eligible prefix.
	n := 0
	for n < len(cl.latent) && n < room && c.elapsedLocal(cl, cl.latent[n].cookie) {
		n++
	}
	if n == 0 {
		return 0
	}
	for _, lo := range cl.latent[:n] {
		cl.objs.Put(lo.ref)
	}
	cl.latent = append(cl.latent[:0], cl.latent[n:]...)
	c.latentTotal.Add(int64(-n))
	return n
}

// refill implements REFILL_OBJECT_CACHE (lines 13-30): partial refill
// sized by the latent backlog, selecting slabs to minimize total
// fragmentation. Objects move by whole freelist segments (FillFrom),
// one splice per selected slab under the node lock. Caller holds cl's
// cache lock.
//
//prudence:requires PerCPUCache
func (c *Cache) refill(cpu int, cl *cpuLocal) {
	// Chaos: a failed refill leaves the object cache empty; Malloc falls
	// through to grow (and eventually the OOM path).
	//prudence:fault_point
	if fault.Fire(fault.RefillFail) {
		return
	}
	full := cl.objs.Size - cl.objs.Len()
	want := full
	if !c.alloc.opts.DisablePartialRefill {
		// Line 14: leave room for the latent objects that will merge in
		// after the grace period.
		want = cl.objs.Size - len(cl.latent) - cl.objs.Len()
	}
	partial := want < full
	if floor := (cl.objs.Size + 1) / 2; want < floor && full >= floor {
		// Line 14's o-d sizing can degenerate to zero-or-one-object
		// refills when a defer storm pins the latent cache at its
		// limit. The merge loop cannot overflow the object cache (it
		// stops at capacity), so a floor of half a cache only trades
		// merge headroom for an order of magnitude fewer node-lock
		// crossings.
		want = floor
	}
	if want <= 0 {
		want = 1
	}
	node := c.base.NodeFor(cpu)
	moved := 0
	node.Lock()
	for want > 0 {
		s := c.selectSlab(node, cl.elapsedFn)
		if s == nil {
			break
		}
		got := cl.objs.FillFrom(s, want)
		want -= got
		moved += got
		node.Move(s, c.placement(s))
		if got == 0 {
			break
		}
	}
	node.Unlock()
	if moved > 0 {
		c.base.Ctr.Refills.Add(1)
		p := int64(0)
		if partial {
			c.base.Ctr.PartialFills.Add(1)
			p = 1
		}
		c.base.Trace(trace.KindRefill, cpu, int64(moved), p)
	}
}

// placement returns the node list a slab belongs on under Prudence's
// hint-aware policy (predicted list) or the conventional one when
// pre-movement is disabled.
func (c *Cache) placement(s *slabcore.Slab) slabcore.ListID {
	if c.alloc.opts.DisablePreMove {
		return slabcore.HomeList(s)
	}
	return slabcore.PredictedList(s)
}

// selectSlab picks the slab to refill from (lines 17-21 plus the §4.2
// "Reduces total fragmentation" policy): scan up to SlabScanLimit
// partial slabs, reconciling their latent entries, and prefer the slab
// with the most live objects, skipping slabs whose live objects are
// mostly deferred so they can drain to empty. Falls back to the free
// list. elapsed is the caller's grace-period poll (refill passes the
// CPU's cached one so a scan costs at most one shared-state read).
// Caller holds the node lock. Returns nil if nothing allocatable.
func (c *Cache) selectSlab(node *slabcore.Node, elapsed func(rcu.Cookie) bool) *slabcore.Slab {
	var best, fallback *slabcore.Slab
	var misplaced []*slabcore.Slab
	bestScore := -1
	scan := c.alloc.opts.SlabScanLimit
	node.WalkPartial(scan, func(s *slabcore.Slab) bool {
		if s.LatentCount() > 0 {
			if n := s.Reconcile(elapsed, c.base.Cfg.Poison); n > 0 {
				c.latentTotal.Add(int64(-n))
				// Reconciliation may have emptied the slab entirely;
				// re-home it after the walk or it strands on the
				// partial list where shrink never finds it.
				if c.placement(s) != s.List() {
					misplaced = append(misplaced, s)
				}
			}
		}
		if s.FreeCount() == 0 {
			return true // nothing to take; keep walking
		}
		if c.alloc.opts.DisableSlabSelection {
			best = s
			return false
		}
		// "Mostly deferred": more objects awaiting the grace period
		// than live; leave it to drain (Figure 5's slab B).
		if s.LatentCount() >= s.InUse() && s.LatentCount() > 0 {
			if fallback == nil {
				fallback = s
			}
			return true
		}
		// Fullest-first packs allocations into already-committed slabs,
		// letting sparse slabs drain — minimizing f_t.
		score := s.InUse()*1024 - s.LatentCount()
		if score > bestScore {
			bestScore = score
			best = s
		}
		return true
	})
	for _, s := range misplaced {
		if s != best && s != fallback {
			node.Move(s, c.placement(s))
		}
	}
	if best != nil {
		return best
	}
	// Free-list slabs may hold latent entries (pre-moved all-latent
	// slabs); reconcile to see if one is allocatable yet.
	for s := node.FirstFree(); s != nil; s = s.NextInList() {
		if s.LatentCount() > 0 {
			if n := s.Reconcile(elapsed, c.base.Cfg.Poison); n > 0 {
				c.latentTotal.Add(int64(-n))
			}
		}
		if s.FreeCount() > 0 {
			return s
		}
	}
	// Prefer a mostly-deferred partial slab over growing (§4.2: such
	// slabs are avoided "unless it needs to grow the slab cache").
	return fallback
}

// reconcileNode promotes elapsed latent objects in all of a node's
// slabs and fixes up placements, returning the number promoted. Called
// from the OOM-delay retry path and Drain.
func (c *Cache) reconcileNode(node *slabcore.Node) int {
	node.Lock()
	var moved []*slabcore.Slab
	total := 0
	walk := func(first *slabcore.Slab) {
		for s := first; s != nil; s = s.NextInList() {
			if s.LatentCount() > 0 {
				if n := s.Reconcile(c.elapsed, c.base.Cfg.Poison); n > 0 {
					c.latentTotal.Add(int64(-n))
					total += n
				}
			}
			// Re-home any slab whose placement drifted (e.g. it was
			// reconciled by an earlier pass that could not move it).
			if c.placement(s) != s.List() {
				moved = append(moved, s)
			}
		}
	}
	walk(node.FirstFull())
	walk(node.FirstPartial())
	walk(node.FirstFree())
	for _, s := range moved {
		node.Move(s, c.placement(s))
	}
	node.Unlock()
	return total
}

// Free implements alloc.Cache's immediate free. The flush size is
// latent-aware: more objects are flushed when the latent cache holds
// more deferred objects (§4.2 "Object cache flush").
func (c *Cache) Free(cpu int, r slabcore.Ref) {
	if d := c.base.Debugger(); d != nil {
		d.OnFree(r, cpu)
	}
	c.base.Ctr.IncFrees(cpu)
	c.base.UserFree(cpu)
	cl := c.percpu[cpu]
	cl.objs.Lock()
	cl.freesSince++
	cl.predFrees++
	cl.objs.Put(r)
	if cl.objs.Len() <= cl.objs.Size {
		cl.objs.Unlock()
		return
	}
	c.flushLocked(cpu, cl)
	cl.objs.Unlock()
	_, promoted := c.base.ShrinkNode(c.base.NodeFor(cpu), c.shrinkLimit(), c.elapsed)
	c.latentTotal.Add(int64(-promoted))
}

// flushLocked flushes the object cache to the node lists; the amount
// flushed grows with the latent backlog, and — with the prediction
// extension — shrinks when freed objects are predicted to be
// reallocated shortly. Caller holds cl's cache lock.
//
//prudence:requires PerCPUCache
func (c *Cache) flushLocked(cpu int, cl *cpuLocal) {
	n := cl.objs.Len()/2 + len(cl.latent)
	if c.alloc.opts.EnablePrediction {
		switch {
		case cl.predAllocs > cl.predFrees:
			// Allocation-heavy window: freed objects have short
			// "free lifetimes"; keep more of them cached.
			n = cl.objs.Len()/4 + len(cl.latent)
		case cl.predFrees > 2*cl.predAllocs:
			// Teardown burst: these objects will not be re-needed
			// soon; return more of them.
			n = cl.objs.Len()*3/4 + len(cl.latent)
		}
		cl.predAllocs, cl.predFrees = 0, 0
	}
	victims := cl.objs.Take(n)
	if len(victims) == 0 {
		return
	}
	c.base.Ctr.Flushes.Add(1)
	c.base.Trace(trace.KindFlush, cpu, int64(len(victims)), 0)
	c.base.ReleaseRefs(victims, c.placeFn)
}

// FreeDeferred implements the paper's Listing 2 turnkey API and
// Algorithm 1's FREE_DEFERRED (lines 34-51): stamp the object with the
// grace-period state and park it in the latent cache, spilling to the
// latent slab when the latent cache is at its limit.
func (c *Cache) FreeDeferred(cpu int, r slabcore.Ref) {
	if d := c.base.Debugger(); d != nil {
		d.OnFree(r, cpu)
	}
	ctr := &c.base.Ctr
	ctr.IncDeferredFrees(cpu)
	c.base.UserFree(cpu)
	cookie := c.alloc.rcu.Snapshot() // line 35: GET_GRACE_PERIOD_STATE
	c.alloc.rcu.NeedGP()

	cl := c.percpu[cpu]
	threshold := c.base.Cfg.CacheSize // latent cache limit = object cache size (§4.1)

	cl.objs.Lock()
	cl.freesSince++
	if len(cl.latent) < threshold { // line 39: fast path
		cl.latent = append(cl.latent, latentObj{ref: r, cookie: cookie})
		c.latentTotal.Add(1)
		if cl.objs.Len()+len(cl.latent) > cl.objs.Size { // lines 41-43
			c.armPreflush(cpu, cl)
		}
		cl.objs.Unlock()
		return
	}
	// Lines 45-48: flush the object cache, merge (frees latent space if
	// a grace period elapsed meanwhile), and retry the fast path.
	c.flushLocked(cpu, cl)
	c.mergeCaches(cl)
	if len(cl.latent) < threshold {
		cl.latent = append(cl.latent, latentObj{ref: r, cookie: cookie})
		c.latentTotal.Add(1)
		cl.objs.Unlock()
		return
	}
	// Lines 49-51: overflow goes to latent slabs. Spill the oldest half
	// of the latent cache in one batch (they elapse soonest and will be
	// reconciled where they lie) rather than paying a node-lock
	// round-trip per deferred object, and keep the newest — including
	// the current one — in the latent cache for cheap merging.
	spillCount := threshold / 2
	if spillCount < 1 {
		spillCount = 1
	}
	spill := make([]latentObj, spillCount)
	copy(spill, cl.latent[:spillCount])
	cl.latent = append(cl.latent[:0], cl.latent[spillCount:]...)
	cl.latent = append(cl.latent, latentObj{ref: r, cookie: cookie})
	c.latentTotal.Add(1)
	cl.objs.Unlock()

	// Spilling means the deferred-free rate has outrun grace-period
	// progress (merge could not free latent space): expedite.
	c.alloc.rcu.ExpediteGP()
	c.spillLatentBatch(spill)
}

// putLatentSlab parks a deferred object in its slab's latent list and
// performs PRE_MOVE_SLAB (lines 52-59).
func (c *Cache) putLatentSlab(r slabcore.Ref, cookie rcu.Cookie) {
	node := r.Slab.Node()
	node.Lock()
	r.Slab.PushLatent(r.Idx, cookie)
	c.latentTotal.Add(1)
	if !c.alloc.opts.DisablePreMove {
		want := slabcore.PredictedList(r.Slab)
		if want != r.Slab.List() {
			node.Move(r.Slab, want)
			c.base.Ctr.PreMoves.Add(1)
			c.base.Trace(trace.KindPreMove, -1, int64(want), 0)
		}
	}
	freeOver := node.FreeSlabs() > c.shrinkLimit()
	node.Unlock()
	if freeOver {
		c.maybeShrink(node)
	}
}

// maybeShrink shrinks the node's free list at most once per completed
// grace period: latent-blocked slabs cannot become reclaimable without
// a new grace period, and scanning them repeatedly under the node lock
// would starve the other CPUs (and thereby the grace period itself).
func (c *Cache) maybeShrink(node *slabcore.Node) {
	gate := &c.shrinkGate[node.ID()]
	gp := c.alloc.rcu.GPsCompleted() + 1 // +1: GP 0 state must still allow the first shrink
	for {
		last := gate.Load()
		if gp == last {
			return
		}
		if gate.CompareAndSwap(last, gp) {
			break
		}
	}
	freed, promoted := c.base.ShrinkNode(node, c.shrinkLimit(), c.elapsed)
	c.latentTotal.Add(int64(-promoted))
	if freed > 0 {
		c.base.Trace(trace.KindShrink, -1, int64(freed), 0)
	}
}

// armPreflush schedules an idle-time pre-flush for this CPU if one is
// not already queued. Caller holds cl's cache lock.
//
//prudence:requires PerCPUCache
func (c *Cache) armPreflush(cpu int, cl *cpuLocal) {
	if c.alloc.opts.DisablePreFlush || cl.preflushArmed {
		return
	}
	cl.preflushArmed = true
	c.alloc.machine.CPU(cpu).ScheduleIdle(func() { c.preflush(cpu) })
}

// preflush runs on the CPU's idle worker (§4.2 "Latent cache
// pre-flush"): it moves deferred objects from the latent cache to their
// latent slabs so the eventual merge cannot overflow the object cache,
// working aggressively when frees outpace allocations and lazily
// otherwise, and stopping once object+latent counts fit the cache.
func (c *Cache) preflush(cpu int) {
	cl := c.percpu[cpu]
	// Chaos: delay the idle-time flush of latent objects.
	//prudence:fault_point
	fault.Sleep(fault.LatentFlushDelay)
	for {
		// The idle worker is a visitor to the workload goroutine's
		// cache: take the deferential slow path so an armed pre-flush
		// never competes with the owner's fast path for the lock.
		cl.objs.LockRemote()
		// Merge first: if a grace period completed during pre-flush the
		// safe objects go to the object cache, not the latent slab.
		c.mergeCaches(cl)
		excess := cl.objs.Len() + len(cl.latent) - cl.objs.Size
		if excess <= 0 {
			cl.preflushArmed = false
			cl.allocsSince, cl.freesSince = 0, 0
			cl.objs.Unlock()
			return
		}
		aggressive := cl.freesSince >= cl.allocsSince ||
			len(cl.latent) >= c.base.Cfg.CacheSize-1
		batch := excess
		if !aggressive && batch > 2 {
			// Lazy mode: a high allocation rate will drain the object
			// cache by itself; trickle small batches and yield.
			batch = 2
		}
		if batch > len(cl.latent) {
			batch = len(cl.latent)
		}
		if batch == 0 {
			cl.preflushArmed = false
			cl.objs.Unlock()
			return
		}
		moved := make([]latentObj, batch)
		copy(moved, cl.latent[:batch])
		cl.latent = append(cl.latent[:0], cl.latent[batch:]...)
		cl.objs.Unlock()

		c.base.Ctr.PreFlushes.Add(1)
		c.base.Trace(trace.KindPreFlush, cpu, int64(batch), 0)
		c.spillLatentBatch(moved)
	}
}

// spillLatentBatch moves latent-cache entries into their latent slabs
// under one node-lock acquisition per node, pre-moving each touched
// slab once. Batching is what lets pre-flush spread node-list work over
// idle time instead of adding a lock round-trip per deferred object.
func (c *Cache) spillLatentBatch(entries []latentObj) {
	var touched []*slabcore.Slab // batches are small; linear dedup beats a map allocation
	for len(entries) > 0 {
		node := entries[0].ref.Slab.Node()
		rest := entries[:0]
		touched = touched[:0]
		node.Lock()
		for _, lo := range entries {
			if lo.ref.Slab.Node() != node {
				rest = append(rest, lo)
				continue
			}
			lo.ref.Slab.PushLatent(lo.ref.Idx, lo.cookie)
			seen := false
			for _, s := range touched {
				if s == lo.ref.Slab {
					seen = true
					break
				}
			}
			if !seen {
				touched = append(touched, lo.ref.Slab)
			}
		}
		if !c.alloc.opts.DisablePreMove {
			for _, s := range touched {
				want := slabcore.PredictedList(s)
				if want != s.List() {
					node.Move(s, want)
					c.base.Ctr.PreMoves.Add(1)
					c.base.Trace(trace.KindPreMove, -1, int64(want), 0)
				}
			}
		}
		freeOver := node.FreeSlabs() > c.shrinkLimit()
		node.Unlock()
		if freeOver {
			c.maybeShrink(node)
		}
		entries = rest
	}
}

// Drain implements alloc.Cache: merge/flush everything and return all
// reclaimable slabs, waiting out grace periods for latent objects.
func (c *Cache) Drain() {
	for {
		// Flush per-CPU object caches and spill latent caches to slabs.
		for _, cl := range c.percpu {
			cl.objs.LockRemote()
			c.mergeCaches(cl)
			objs := cl.objs.TakeAll()
			lat := cl.latent
			cl.latent = nil
			cl.objs.Unlock()
			if len(objs) > 0 {
				c.base.Ctr.Flushes.Add(1)
				c.base.ReleaseRefs(objs, c.placeFn)
			}
			for _, lo := range lat {
				c.latentTotal.Add(-1)
				c.putLatentSlab(lo.ref, lo.cookie)
			}
		}
		for _, n := range c.base.NodesArr {
			c.reconcileNode(n)
			_, promoted := c.base.ShrinkNode(n, 0, c.elapsed)
			c.latentTotal.Add(int64(-promoted))
		}
		if c.latentTotal.Load() == 0 && c.percpuEmpty() {
			return
		}
		// A stopped backend can never elapse the remaining latent
		// cookies (Synchronize returns immediately once stopped), so
		// looping would spin forever. This is the teardown race a
		// long-running service's Close hits: give up on the latent
		// remainder — the arena behind it is being released anyway.
		if c.alloc.rcu.Stopped() {
			return
		}
		// Latent objects remain, or a concurrent idle pre-flush merged
		// objects into a CPU cache after we flushed it; wait out a
		// grace period and retry.
		c.alloc.rcu.Synchronize()
	}
}

// percpuEmpty verifies under the per-CPU locks that no objects remain
// in any object or latent cache. Needed because the idle pre-flush
// worker can merge elapsed latent objects into a CPU cache concurrently
// with Drain's flush pass.
func (c *Cache) percpuEmpty() bool {
	for _, cl := range c.percpu {
		cl.objs.LockRemote()
		empty := cl.objs.Len() == 0 && len(cl.latent) == 0
		cl.objs.Unlock()
		if !empty {
			return false
		}
	}
	return true
}

// Audit verifies the cache's structural invariants (see slabcore.Audit).
func (c *Cache) Audit() error { return c.base.Audit() }

// EnableDebug attaches SLUB_DEBUG-style red zones and owner tracking to
// this cache. Must be called before the first allocation when red zones
// are requested.
func (c *Cache) EnableDebug(cfg slabcore.DebugConfig) *slabcore.Debugger {
	return c.base.EnableDebug(cfg)
}

// SetTrace attaches an event ring to this cache (nil detaches).
func (c *Cache) SetTrace(r *trace.Ring) { c.base.SetTrace(r) }
