package core_test

import (
	"testing"

	"prudence/internal/alloctest"
	"prudence/internal/core"
	"prudence/internal/memarena"
	"prudence/internal/pagealloc"
	"prudence/internal/rcu"
	"prudence/internal/slabcore"
	"prudence/internal/vcpu"
)

// FuzzAllocatorOps drives Prudence with an arbitrary single-CPU op tape
// — malloc, free, defer-free, synchronize — then drains and audits.
// Each byte's low two bits pick the op; the rest picks the victim.
func FuzzAllocatorOps(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x01, 0x02, 0x03, 0x00, 0x06, 0x0A})
	f.Add([]byte{0x02, 0x02, 0x02, 0x02, 0x03, 0x03, 0x03, 0x03})
	f.Add(make([]byte, 100))
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 400 {
			tape = tape[:400]
		}
		arena := memarena.New(1024)
		defer arena.Close()
		pages := pagealloc.New(arena)
		machine := vcpu.NewMachine(1)
		r := rcu.New(machine, rcu.Options{})
		defer machine.Stop()
		defer r.Stop()
		a := core.New(pages, r, machine, core.Options{})
		cache := a.NewCache(alloctest.TestCacheConfig("fuzz")).(*core.Cache)

		var live []slabcore.Ref
		for _, b := range tape {
			switch b & 3 {
			case 0: // malloc
				ref, err := cache.Malloc(0)
				if err != nil {
					continue
				}
				ref.Bytes()[0] = b
				live = append(live, ref)
			case 1: // free
				if len(live) > 0 {
					i := int(b>>2) % len(live)
					cache.Free(0, live[i])
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			case 2: // defer-free
				if len(live) > 0 {
					i := int(b>>2) % len(live)
					cache.FreeDeferred(0, live[i])
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			case 3: // grace period
				if b>>2 == 0 {
					r.Synchronize()
				}
			}
		}
		for _, ref := range live {
			cache.Free(0, ref)
		}
		cache.Drain()
		if err := cache.Audit(); err != nil {
			t.Fatal(err)
		}
		if used := arena.UsedPages(); used != 0 {
			t.Fatalf("%d pages leaked", used)
		}
		ctr := cache.Counters().Snapshot()
		if ctr.Allocs != ctr.Frees+ctr.DeferredFrees {
			t.Fatalf("unbalanced: allocs=%d frees=%d deferred=%d", ctr.Allocs, ctr.Frees, ctr.DeferredFrees)
		}
	})
}
