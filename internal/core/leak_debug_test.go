package core

import (
	"fmt"
	"math/rand"
	"testing"

	"prudence/internal/memarena"
	"prudence/internal/pagealloc"
	"prudence/internal/rcu"
	"prudence/internal/slabcore"
	"prudence/internal/vcpu"
	"prudence/internal/workload"
)

// debugDump renders the cache's internal accounting for leak forensics.
func debugDump(c *Cache) string {
	out := fmt.Sprintf("latentTotal=%d currentSlabs=%d requested=%d\n",
		c.latentTotal.Load(), c.base.Ctr.CurrentSlabs(), c.base.Requested())
	for i, cl := range c.percpu {
		cl.objs.LockRemote()
		out += fmt.Sprintf("  cpu%d objs=%d latent=%d armed=%v\n", i, cl.objs.Len(), len(cl.latent), cl.preflushArmed)
		cl.objs.Unlock()
	}
	for _, n := range c.base.NodesArr {
		n.Lock()
		out += fmt.Sprintf("  node%d full=%d partial=%d free=%d\n", n.ID(), n.FullSlabs(), n.PartialSlabs(), n.FreeSlabs())
		for _, first := range []*slabcore.Slab{n.FirstFull(), n.FirstPartial(), n.FirstFree()} {
			for s := first; s != nil; s = s.NextInList() {
				out += fmt.Sprintf("    slab[%v] free=%d latent=%d inUse=%d\n", s.List(), s.FreeCount(), s.LatentCount(), s.InUse())
			}
		}
		n.Unlock()
	}
	return out
}

// TestLeakReproNoPreMove hammers the NoPreMove variant's concurrent
// mixed workload repeatedly; on a post-Drain leak it dumps internals.
func TestLeakReproNoPreMove(t *testing.T) {
	if testing.Short() {
		t.Skip("stress repro")
	}
	for round := 0; round < 30; round++ {
		arena := memarena.New(2048)
		pages := pagealloc.New(arena)
		machine := vcpu.NewMachine(4)
		r := rcu.New(machine, rcu.Options{})
		a := New(pages, r, machine, Options{DisablePreMove: true})
		cfg := slabcore.CacheConfig{
			Name: "leak", ObjectSize: 256, SlabOrder: 0,
			CacheSize: 8, FreeSlabLimit: 2, Poison: true,
		}
		c := a.NewCache(cfg).(*Cache)
		env := workload.Env{Machine: machine, Sync: r, Pages: pages}
		_ = env
		machine.RunOnAll(func(cpu *vcpu.CPU) {
			id := cpu.ID()
			r.ExitIdle(id)
			defer r.EnterIdle(id)
			rng := rand.New(rand.NewSource(int64(round*10 + id)))
			var live []slabcore.Ref
			for i := 0; i < 2000; i++ {
				if rng.Intn(2) == 0 || len(live) == 0 {
					ref, err := c.Malloc(id)
					if err != nil {
						t.Errorf("cpu %d: %v", id, err)
						return
					}
					live = append(live, ref)
				} else {
					j := rng.Intn(len(live))
					if rng.Intn(2) == 0 {
						c.Free(id, live[j])
					} else {
						c.FreeDeferred(id, live[j])
					}
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				r.QuiescentState(id)
			}
			for _, ref := range live {
				c.Free(id, ref)
			}
		})
		c.Drain()
		if used := arena.UsedPages(); used != 0 {
			t.Fatalf("round %d: %d pages leaked\n%s", round, used, debugDump(c))
		}
		r.Stop()
		machine.Stop()
		arena.Close()
	}
}
