package core_test

import (
	"errors"
	"testing"
	"time"

	"prudence/internal/alloc"
	"prudence/internal/alloctest"
	"prudence/internal/core"
	"prudence/internal/fault"
	"prudence/internal/pagealloc"
	"prudence/internal/slabcore"
	"prudence/internal/trace"
)

func build(s *alloctest.Stack) alloc.Allocator {
	return core.New(s.Pages, s.RCU, s.Machine, core.Options{})
}

func buildWith(opts core.Options) alloctest.BuildAllocator {
	return func(s *alloctest.Stack) alloc.Allocator {
		return core.New(s.Pages, s.RCU, s.Machine, opts)
	}
}

func TestConformance(t *testing.T) {
	alloctest.RunConformance(t, build)
}

// Every ablation variant must still be a correct allocator.
func TestConformanceAblations(t *testing.T) {
	variants := map[string]core.Options{
		"NoPartialRefill": {DisablePartialRefill: true},
		"NoPreFlush":      {DisablePreFlush: true},
		"NoPreMove":       {DisablePreMove: true},
		"NoSlabSelection": {DisableSlabSelection: true},
		"NoOOMDelay":      {DisableOOMDelay: true},
		"WithPrediction":  {EnablePrediction: true},
		"AllOff": {
			DisablePartialRefill: true,
			DisablePreFlush:      true,
			DisablePreMove:       true,
			DisableSlabSelection: true,
			DisableOOMDelay:      true,
		},
	}
	for name, opts := range variants {
		t.Run(name, func(t *testing.T) {
			alloctest.RunConformance(t, buildWith(opts))
		})
	}
}

func TestName(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	if got := s.Alloc.Name(); got != "prudence" {
		t.Fatalf("Name() = %q, want prudence", got)
	}
}

// The headline behaviour: after a grace period, deferred objects are
// served straight from the latent cache merge — no node-list refill, no
// RCU callback processing.
func TestLatentMergeServesAllocations(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("latent"))

	// Drain the object cache so the next allocations miss, then defer a
	// few objects and let the grace period elapse.
	var warm []slabcore.Ref
	for i := 0; i < 8; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		warm = append(warm, r)
	}
	for _, r := range warm {
		c.FreeDeferred(0, r)
	}
	s.RCU.Synchronize()

	before := c.Counters().Snapshot()
	r, err := c.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	after := c.Counters().Snapshot().Sub(before)
	if after.LatentHits != 1 {
		t.Fatalf("LatentHits delta = %d, want 1 (refills=%d hits=%d)", after.LatentHits, after.Refills, after.CacheHits)
	}
	if after.Refills != 0 {
		t.Fatalf("latent merge still refilled from node lists (%d refills)", after.Refills)
	}
	c.Free(0, r)
	c.Drain()
}

// Latent cache is bounded by the object cache size; overflow goes to
// latent slabs, pre-moving the slab.
func TestLatentCacheBoundedSpillsToLatentSlab(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	cfg := alloctest.TestCacheConfig("bound")
	a := s.Alloc.(*core.Allocator)
	c := a.NewCache(cfg).(*core.Cache)

	// Block grace periods so nothing can merge out of the latent cache.
	s.RCU.ExitIdle(1)
	s.RCU.ReadLock(1)
	defer func() {
		s.RCU.ReadUnlock(1)
		s.RCU.QuiescentState(1)
		s.RCU.EnterIdle(1)
		c.Drain()
	}()

	var refs []slabcore.Ref
	for i := 0; i < cfg.CacheSize*3; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	for _, r := range refs {
		c.FreeDeferred(0, r)
	}
	if got := c.LatentTotal(); got != int64(len(refs)) {
		t.Fatalf("LatentTotal = %d, want %d", got, len(refs))
	}
	// With 24 deferred and a latent cache capped at 8, at least 16 went
	// to latent slabs; pre-movement should have been recorded.
	ctr := c.Counters().Snapshot()
	if ctr.PreMoves == 0 {
		t.Fatal("no slab pre-movements despite latent slab spills")
	}
}

// Partial refill: with d latent objects, a refill adds only o-d objects
// so the later merge cannot overflow the cache.
func TestPartialRefill(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	cfg := alloctest.TestCacheConfig("partial")
	c := s.Alloc.NewCache(cfg)

	// Block grace periods so latent objects stay latent.
	s.RCU.ExitIdle(1)
	s.RCU.ReadLock(1)
	defer func() {
		s.RCU.ReadUnlock(1)
		s.RCU.QuiescentState(1)
		s.RCU.EnterIdle(1)
		c.Drain()
	}()

	// Put d=4 objects in the latent cache, empty the object cache, then
	// trigger a refill.
	var batch []slabcore.Ref
	for i := 0; i < 20; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, r)
	}
	for _, r := range batch[:4] {
		c.FreeDeferred(0, r)
	}
	// Drain the object cache through allocations until a refill happens.
	before := c.Counters().Snapshot()
	var got []slabcore.Ref
	for {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
		if c.Counters().Snapshot().Refills > before.Refills {
			break
		}
		if len(got) > 100 {
			t.Fatal("no refill after 100 allocations")
		}
	}
	d := c.Counters().Snapshot().Sub(before)
	if d.PartialFills == 0 {
		t.Fatalf("refill with latent backlog was not partial: %+v", d)
	}
	for _, r := range append(batch[4:], got...) {
		c.Free(0, r)
	}
}

// OOM delay: with the arena exhausted but deferred objects pending, an
// allocation waits for the grace period and then succeeds (lines 31-32).
func TestOOMDelayReclaimsDeferred(t *testing.T) {
	cfg := alloctest.DefaultStackConfig()
	cfg.Pages = 4 // one slab cache can use at most 4 slabs
	s := alloctest.NewStack(t, cfg, build)
	ccfg := alloctest.TestCacheConfig("oomdelay")
	c := s.Alloc.NewCache(ccfg)

	// Exhaust the arena: 4 pages × 16 objects.
	var refs []slabcore.Ref
	for i := 0; i < 64; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
		refs = append(refs, r)
	}
	// Defer-free half of the objects; the arena is still fully
	// committed, but after a grace period those objects are reusable.
	for _, r := range refs[:32] {
		c.FreeDeferred(0, r)
	}
	r, err := c.Malloc(0)
	if err != nil {
		t.Fatalf("allocation with pending deferred objects failed: %v", err)
	}
	if got := c.Counters().Snapshot().GPWaits; got == 0 {
		t.Fatal("allocation succeeded without recording a grace-period wait")
	}
	c.Free(0, r)
	for _, x := range refs[32:] {
		c.Free(0, x)
	}
	c.Drain()
}

// Without OOM delay, the same situation fails immediately.
func TestOOMDelayDisabled(t *testing.T) {
	cfg := alloctest.DefaultStackConfig()
	cfg.Pages = 4
	s := alloctest.NewStack(t, cfg, buildWith(core.Options{DisableOOMDelay: true}))
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("nodelay"))

	// Block grace periods entirely; then even deferred objects can't
	// save the allocation.
	s.RCU.ExitIdle(1)
	s.RCU.ReadLock(1)
	defer func() {
		s.RCU.ReadUnlock(1)
		s.RCU.QuiescentState(1)
		s.RCU.EnterIdle(1)
	}()

	var refs []slabcore.Ref
	for {
		r, err := c.Malloc(0)
		if err != nil {
			break
		}
		refs = append(refs, r)
	}
	for _, r := range refs[:len(refs)/2] {
		c.FreeDeferred(0, r)
	}
	if _, err := c.Malloc(0); !errors.Is(err, pagealloc.ErrOutOfMemory) {
		t.Fatalf("expected immediate OOM, got %v", err)
	}
}

// A stalled grace period must not hang the OOM-delay path: with
// readers blocking every grace period and deferred objects pending,
// Malloc's bounded waits time out, the timeouts are counted, and the
// allocation degrades to ErrOutOfMemory.
func TestOOMDelayBoundedWhenGPStalled(t *testing.T) {
	cfg := alloctest.DefaultStackConfig()
	cfg.Pages = 4
	s := alloctest.NewStack(t, cfg, buildWith(core.Options{
		OOMDelayWait:    2 * time.Millisecond,
		OOMDelayRetries: 3,
	}))
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("stalledgp"))

	// Stall every grace period: CPU 1 sits in a read-side critical
	// section for the whole test.
	s.RCU.ExitIdle(1)
	s.RCU.ReadLock(1)
	defer func() {
		s.RCU.ReadUnlock(1)
		s.RCU.QuiescentState(1)
		s.RCU.EnterIdle(1)
	}()

	var refs []slabcore.Ref
	for {
		r, err := c.Malloc(0)
		if err != nil {
			break
		}
		refs = append(refs, r)
	}
	for _, r := range refs[:len(refs)/2] {
		c.FreeDeferred(0, r)
	}

	type result struct {
		err error
	}
	done := make(chan result, 1)
	go func() {
		_, err := c.Malloc(0)
		done <- result{err}
	}()
	select {
	case res := <-done:
		if !errors.Is(res.err, pagealloc.ErrOutOfMemory) {
			t.Fatalf("expected ErrOutOfMemory after bounded delay, got %v", res.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Malloc hung on a stalled grace period: OOM delay is unbounded")
	}
	snap := c.Counters().Snapshot()
	if snap.OOMDelayTimeouts < 3 {
		t.Fatalf("OOMDelayTimeouts = %d, want >= 3 (retries exhausted)", snap.OOMDelayTimeouts)
	}
	if snap.OOMs == 0 {
		t.Fatal("degraded allocation did not count an OOM")
	}
}

// The oom_delay_expire fault point forces the same degradation without
// stalling the engine, pinned to a seed so it replays.
func TestOOMDelayExpireFaultInjection(t *testing.T) {
	inj := fault.Enable(fault.Config{Seed: 7, Rules: map[fault.Point]fault.Rule{
		fault.OOMDelayExpire: {Rate: 1},
	}})
	defer fault.Disable()

	cfg := alloctest.DefaultStackConfig()
	cfg.Pages = 4
	s := alloctest.NewStack(t, cfg, buildWith(core.Options{
		OOMDelayWait:    time.Millisecond,
		OOMDelayRetries: 2,
	}))
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("oomexpire"))

	var refs []slabcore.Ref
	for {
		r, err := c.Malloc(0)
		if err != nil {
			break
		}
		refs = append(refs, r)
	}
	for _, r := range refs[:len(refs)/2] {
		c.FreeDeferred(0, r)
	}
	if _, err := c.Malloc(0); !errors.Is(err, pagealloc.ErrOutOfMemory) {
		t.Fatalf("expected forced OOM, got %v", err)
	}
	if got := c.Counters().Snapshot().OOMDelayTimeouts; got < 2 {
		t.Fatalf("OOMDelayTimeouts = %d, want >= 2", got)
	}
	if inj.Fired(fault.OOMDelayExpire) < 2 {
		t.Fatalf("fault point fired %d times, want >= 2", inj.Fired(fault.OOMDelayExpire))
	}
}

// Pre-flush: overflowing object+latent counts schedules idle work that
// moves latent objects to latent slabs.
func TestPreflushMovesLatentToSlabs(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	cfg := alloctest.TestCacheConfig("preflush")
	a := s.Alloc.(*core.Allocator)
	c := a.NewCache(cfg).(*core.Cache)

	// Keep grace periods blocked so merging can't relieve the pressure
	// and pre-flush must do the work.
	s.RCU.ExitIdle(1)
	s.RCU.ReadLock(1)

	var refs []slabcore.Ref
	for i := 0; i < cfg.CacheSize; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	// Fill the object cache via plain frees, then defer-free to push
	// object+latent over the limit.
	var more []slabcore.Ref
	for i := 0; i < cfg.CacheSize; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		more = append(more, r)
	}
	for _, r := range more {
		c.Free(0, r)
	}
	for _, r := range refs {
		c.FreeDeferred(0, r)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Counters().PreFlushes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pre-flush never ran")
		}
		time.Sleep(100 * time.Microsecond)
	}

	s.RCU.ReadUnlock(1)
	s.RCU.QuiescentState(1)
	s.RCU.EnterIdle(1)
	c.Drain()
}

// Disabling pre-flush keeps the idle path quiet.
func TestPreflushDisabled(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), buildWith(core.Options{DisablePreFlush: true}))
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("nopre"))
	var refs []slabcore.Ref
	for i := 0; i < 64; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	for _, r := range refs {
		c.FreeDeferred(0, r)
	}
	time.Sleep(5 * time.Millisecond)
	if got := c.Counters().PreFlushes.Load(); got != 0 {
		t.Fatalf("PreFlushes = %d with pre-flush disabled", got)
	}
	c.Drain()
}

// Slab pre-movement: defer-freeing every object of a full slab moves it
// to the free list before the grace period ends (PredictedList), and its
// pages are only reclaimed after the grace period.
func TestPreMoveToFreeListAndSafeShrink(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	cfg := alloctest.TestCacheConfig("premove")
	cfg.CacheSize = 4
	a := s.Alloc.(*core.Allocator)
	c := a.NewCache(cfg).(*core.Cache)

	s.RCU.ExitIdle(1)
	s.RCU.ReadLock(1)

	// Allocate four slabs' worth so several slabs go full.
	var refs []slabcore.Ref
	for i := 0; i < 64; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	used := s.Arena.UsedPages()
	// Defer-free everything: latent cache takes 4, the rest spill to
	// latent slabs; fully-latent slabs pre-move to the free list but
	// their pages must NOT return to the arena yet.
	for _, r := range refs {
		c.FreeDeferred(0, r)
	}
	if got := c.Counters().Snapshot().PreMoves; got == 0 {
		t.Fatal("no pre-movements recorded")
	}
	if got := s.Arena.UsedPages(); got != used {
		t.Fatalf("pages reclaimed while grace period blocked: %d -> %d", used, got)
	}

	s.RCU.ReadUnlock(1)
	s.RCU.QuiescentState(1)
	s.RCU.EnterIdle(1)
	c.Drain()
	if got := s.Arena.UsedPages(); got != 0 {
		t.Fatalf("pages not reclaimed after drain: %d", got)
	}
}

// Deferred-aware slab selection (Figure 5): refill prefers the slab
// whose live objects are NOT mostly deferred, letting the deferred slab
// drain fully.
func TestSlabSelectionPrefersLiveSlabs(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	cfg := alloctest.TestCacheConfig("select")
	cfg.CacheSize = 2
	a := s.Alloc.(*core.Allocator)
	c := a.NewCache(cfg).(*core.Cache)

	s.RCU.ExitIdle(1)
	s.RCU.ReadLock(1)
	defer func() {
		s.RCU.ReadUnlock(1)
		s.RCU.QuiescentState(1)
		s.RCU.EnterIdle(1)
		c.Drain()
	}()

	// Build two partial slabs, A and B (16 objects each): allocate 32,
	// then free most of each, keeping 4 live in each.
	var refs []slabcore.Ref
	for i := 0; i < 32; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	slabA, slabB := refs[0].Slab, refs[16].Slab
	if slabA == slabB {
		t.Fatal("test setup: expected two distinct slabs")
	}
	for _, r := range refs {
		if r.Idx >= 4 {
			c.Free(0, r)
		}
	}
	// Defer-free B's four live objects: two fill the latent cache
	// (CacheSize=2), two spill into B's latent slab, making B "mostly
	// deferred" — Figure 5's slab B, about to be entirely free.
	for _, r := range refs {
		if r.Slab == slabB && r.Idx < 4 {
			c.FreeDeferred(0, r)
		}
	}
	// Refilled allocations (non-cache-hits) must come from A, not B.
	// Cache hits may legitimately return B objects that were sitting in
	// the per-CPU object cache from the frees above; skip those.
	var got []slabcore.Ref
	checked := 0
	for i := 0; i < 24 && checked < 8; i++ {
		before := c.Counters().Snapshot()
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
		d := c.Counters().Snapshot().Sub(before)
		if d.CacheHits == 1 {
			continue // served from object cache remnants
		}
		checked++
		if r.Slab == slabB {
			t.Fatalf("refill %d came from the draining slab B", checked)
		}
	}
	if checked == 0 {
		t.Fatal("no refilled allocations observed")
	}
	for _, r := range got {
		c.Free(0, r)
	}
	for _, r := range refs {
		if r.Slab == slabA && r.Idx < 4 {
			c.Free(0, r)
		}
	}
}

// Prudence needs no RCU callbacks at all: the engine's callback counters
// stay at zero under a pure Prudence workload.
func TestNoRCUCallbacksUsed(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("nocb"))
	for i := 0; i < 500; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		c.FreeDeferred(0, r)
	}
	c.Drain()
	if st := s.RCU.Stats(); st.CallbacksQueued != 0 {
		t.Fatalf("Prudence queued %d RCU callbacks", st.CallbacksQueued)
	}
}

// Tracing: an attached ring observes the allocator's refill and
// grace-period-wait events.
func TestTraceRingObservesEvents(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	a := s.Alloc.(*core.Allocator)
	c := a.NewCache(alloctest.TestCacheConfig("traced")).(*core.Cache)
	ring := trace.NewRing(256)
	c.SetTrace(ring)
	var refs []slabcore.Ref
	for i := 0; i < 64; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	counts := ring.CountByKind()
	if counts[trace.KindRefill] == 0 {
		t.Fatalf("no refill events traced: %v", counts)
	}
	for _, r := range refs {
		c.Free(0, r)
	}
	c.SetTrace(nil) // detach: no more events
	before := ring.Len()
	r, _ := c.Malloc(0)
	c.Free(0, r)
	if ring.Len() != before {
		t.Fatal("detached ring still recording")
	}
	c.Drain()
}

// The §6 prediction extension changes overflow flush sizing with the
// observed immediate-path traffic mix.
func TestPredictionAdaptsFlushSize(t *testing.T) {
	run := func(enable bool, allocHeavy bool) uint64 {
		opts := core.Options{EnablePrediction: enable}
		s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), buildWith(opts))
		cfg := alloctest.TestCacheConfig("pred")
		c := s.Alloc.NewCache(cfg)
		// Warm a pool.
		var pool []slabcore.Ref
		for i := 0; i < 64; i++ {
			r, err := c.Malloc(0)
			if err != nil {
				t.Fatal(err)
			}
			pool = append(pool, r)
		}
		if allocHeavy {
			// Alloc-heavy traffic: each round allocates 3, frees 1.
			for i := 0; i < 200; i++ {
				r, err := c.Malloc(0)
				if err != nil {
					t.Fatal(err)
				}
				pool = append(pool, r)
				if i%3 == 0 && len(pool) > 0 {
					c.Free(0, pool[0])
					pool = pool[1:]
				}
			}
		}
		// Teardown burst: free everything (forces overflow flushes).
		for _, r := range pool {
			c.Free(0, r)
		}
		flushes := c.Counters().Snapshot().Flushes
		c.Drain()
		return flushes
	}
	// With prediction on, an alloc-heavy prelude keeps flushes small, so
	// the later burst needs MORE flush operations than the
	// teardown-dominated baseline where each flush moves 3/4 of a cache.
	_ = run(true, true)  // exercise the alloc-heavy branch
	_ = run(true, false) // exercise the teardown branch
	offFlushes := run(false, false)
	if offFlushes == 0 {
		t.Fatal("teardown produced no flushes at all")
	}
	// Behavioural check: prediction on with pure teardown traffic flushes
	// in larger chunks, so it needs at most as many flush operations.
	onFlushes := run(true, false)
	if onFlushes > offFlushes {
		t.Errorf("teardown with prediction used %d flushes, baseline %d (larger chunks expected)", onFlushes, offFlushes)
	}
}
