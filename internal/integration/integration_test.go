// Package integration_test exercises the full stack — arena, buddy
// allocator, virtual CPUs, RCU, both allocators, and all three
// RCU-protected data structures — in combined scenarios that no single
// package test covers: many caches sharing one arena, mixed data
// structures updated concurrently, failure injection, and post-run
// structural audits.
package integration_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"prudence/internal/alloc"
	"prudence/internal/alloctest"
	"prudence/internal/core"
	"prudence/internal/pagealloc"
	"prudence/internal/rcuhash"
	"prudence/internal/rculist"
	"prudence/internal/rcutree"
	"prudence/internal/slabcore"
	"prudence/internal/slub"
	"prudence/internal/vcpu"
)

func builders() map[string]alloctest.BuildAllocator {
	return map[string]alloctest.BuildAllocator{
		"slub": func(s *alloctest.Stack) alloc.Allocator {
			return slub.New(s.Pages, s.RCU, s.Machine.NumCPU())
		},
		"prudence": func(s *alloctest.Stack) alloc.Allocator {
			return core.New(s.Pages, s.RCU, s.Machine, core.Options{})
		},
	}
}

func auditAll(t *testing.T, a alloc.Allocator) {
	t.Helper()
	for _, c := range a.Caches() {
		if auditor, ok := c.(alloctest.Auditor); ok {
			if err := auditor.Audit(); err != nil {
				t.Fatalf("cache %s: %v", c.Name(), err)
			}
		}
	}
}

// All three data structures share one allocator and one arena, updated
// from every CPU concurrently, then drain to zero.
func TestAllStructuresShareOneArena(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			cfg := alloctest.DefaultStackConfig()
			cfg.Pages = 8192
			s := alloctest.NewStack(t, cfg, build)

			listCache := s.Alloc.NewCache(slabcore.DefaultConfig("lnode", 128, cfg.CPUs))
			hashCache := s.Alloc.NewCache(slabcore.DefaultConfig("hnode", 64, cfg.CPUs))
			treeCache := s.Alloc.NewCache(slabcore.DefaultConfig("tnode", 256, cfg.CPUs))

			lists := make([]*rculist.List, cfg.CPUs)
			for i := range lists {
				lists[i] = rculist.New(listCache, s.RCU)
			}
			m := rcuhash.New(hashCache, s.RCU, 16)
			trees := make([]*rcutree.Tree, cfg.CPUs)
			for i := range trees {
				trees[i] = rcutree.New(treeCache, s.RCU)
			}

			var failed atomic.Bool
			s.Machine.RunOnAll(func(c *vcpu.CPU) {
				cpu := c.ID()
				s.RCU.ExitIdle(cpu)
				defer s.RCU.EnterIdle(cpu)
				base := uint64(cpu) << 32
				for i := uint64(0); i < 400; i++ {
					if err := lists[cpu].Insert(cpu, i, []byte{byte(i)}); err != nil {
						failed.Store(true)
						return
					}
					if i%2 == 0 {
						if _, err := lists[cpu].Update(cpu, i/2, []byte{byte(i)}); err != nil {
							failed.Store(true)
							return
						}
					}
					if err := m.Put(cpu, base+i%64, []byte{byte(i)}); err != nil {
						failed.Store(true)
						return
					}
					if err := trees[cpu].Put(cpu, i%128, []byte{byte(i)}); err != nil {
						failed.Store(true)
						return
					}
					if i%8 == 7 {
						if _, err := trees[cpu].Delete(cpu, (i-4)%128); err != nil {
							failed.Store(true)
							return
						}
					}
					s.RCU.QuiescentState(cpu)
				}
			})
			if failed.Load() {
				t.Fatal("a structure operation failed")
			}

			// Teardown every structure, then drain every cache.
			s.Machine.RunOnAll(func(c *vcpu.CPU) {
				cpu := c.ID()
				s.RCU.ExitIdle(cpu)
				defer s.RCU.EnterIdle(cpu)
				base := uint64(cpu) << 32
				for i := uint64(0); i < 400; i++ {
					if ok, err := lists[cpu].Delete(cpu, i); err != nil || !ok {
						failed.Store(true)
						return
					}
					if i < 64 {
						if _, err := m.Delete(cpu, base+i); err != nil {
							failed.Store(true)
							return
						}
					}
					if i < 128 {
						if _, err := trees[cpu].Delete(cpu, i); err != nil {
							failed.Store(true)
							return
						}
					}
					s.RCU.QuiescentState(cpu)
				}
			})
			if failed.Load() {
				t.Fatal("teardown failed")
			}
			for _, c := range s.Alloc.Caches() {
				c.Drain()
			}
			auditAll(t, s.Alloc)
			if used := s.Arena.UsedPages(); used != 0 {
				t.Fatalf("%d pages leaked with empty structures", used)
			}
		})
	}
}

// Caches compete for a small arena: one cache's OOM does not corrupt
// its siblings, and freeing one cache's memory lets another grow.
func TestCachesCompeteForArena(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			cfg := alloctest.DefaultStackConfig()
			cfg.Pages = 32
			s := alloctest.NewStack(t, cfg, build)
			big := s.Alloc.NewCache(slabcore.CacheConfig{
				Name: "big", ObjectSize: 2048, SlabOrder: 0, CacheSize: 2, Poison: true,
			})
			small := s.Alloc.NewCache(slabcore.CacheConfig{
				Name: "small", ObjectSize: 256, SlabOrder: 0, CacheSize: 4, Poison: true,
			})

			// big consumes the whole arena.
			var hogs []slabcore.Ref
			for {
				r, err := big.Malloc(0)
				if err != nil {
					if !errors.Is(err, pagealloc.ErrOutOfMemory) {
						t.Fatalf("unexpected error: %v", err)
					}
					break
				}
				hogs = append(hogs, r)
			}
			// small now cannot grow.
			if _, err := small.Malloc(0); !errors.Is(err, pagealloc.ErrOutOfMemory) {
				t.Fatalf("small cache allocated from a full arena: %v", err)
			}
			// Release a chunk of big; small must recover.
			for _, r := range hogs[:len(hogs)/2] {
				big.Free(0, r)
			}
			big.Drain() // return free slabs to the buddy allocator
			r, err := small.Malloc(0)
			if err != nil {
				t.Fatalf("small cache still starved after big freed: %v", err)
			}
			small.Free(0, r)
			for _, h := range hogs[len(hogs)/2:] {
				big.Free(0, h)
			}
			big.Drain()
			small.Drain()
			auditAll(t, s.Alloc)
			if used := s.Arena.UsedPages(); used != 0 {
				t.Fatalf("%d pages leaked", used)
			}
		})
	}
}

// Failure injection: a reader that never quiesces stalls grace periods;
// deferred objects pile up but immediate frees keep both allocators
// fully functional, and releasing the reader drains everything.
func TestGPStallDoesNotBlockImmediatePath(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			cfg := alloctest.DefaultStackConfig()
			cfg.Pages = 4096
			s := alloctest.NewStack(t, cfg, build)
			c := s.Alloc.NewCache(alloctest.TestCacheConfig("stall"))

			s.RCU.ExitIdle(1)
			s.RCU.ReadLock(1)

			// Deferred objects accumulate unprocessed...
			for i := 0; i < 200; i++ {
				r, err := c.Malloc(0)
				if err != nil {
					t.Fatal(err)
				}
				c.FreeDeferred(0, r)
			}
			// ...while the immediate path cycles fine.
			for i := 0; i < 5000; i++ {
				r, err := c.Malloc(0)
				if err != nil {
					t.Fatalf("immediate path failed during GP stall: %v", err)
				}
				c.Free(0, r)
			}
			gps := s.RCU.GPsCompleted()
			s.RCU.ReadUnlock(1)
			s.RCU.QuiescentState(1)
			s.RCU.EnterIdle(1)
			c.Drain()
			auditAll(t, s.Alloc)
			if used := s.Arena.UsedPages(); used != 0 {
				t.Fatalf("%d pages leaked after stall release", used)
			}
			if s.RCU.GPsCompleted() == gps {
				t.Fatal("no grace period completed after the stall was released")
			}
		})
	}
}

// The kmalloc front works end-to-end over both allocators with mixed
// sizes from all CPUs.
func TestKmallocFrontConcurrent(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			cfg := alloctest.DefaultStackConfig()
			cfg.Pages = 16384
			s := alloctest.NewStack(t, cfg, build)
			k := alloc.NewKmalloc(s.Alloc, cfg.CPUs)
			var fail atomic.Bool
			s.Machine.RunOnAll(func(c *vcpu.CPU) {
				cpu := c.ID()
				s.RCU.ExitIdle(cpu)
				defer s.RCU.EnterIdle(cpu)
				sizes := []int{24, 64, 100, 256, 777, 2048, 4000}
				var live []slabcore.Ref
				for i := 0; i < 2000; i++ {
					sz := sizes[i%len(sizes)]
					r, err := k.Malloc(cpu, sz)
					if err != nil {
						fail.Store(true)
						return
					}
					r.Bytes()[0] = byte(i)
					live = append(live, r)
					if len(live) > 32 {
						victim := live[0]
						live = live[1:]
						if i%3 == 0 {
							k.FreeDeferred(cpu, victim)
						} else {
							k.Free(cpu, victim)
						}
					}
					s.RCU.QuiescentState(cpu)
				}
				for _, r := range live {
					k.Free(cpu, r)
				}
			})
			if fail.Load() {
				t.Fatal("kmalloc op failed")
			}
			for _, c := range k.Caches() {
				c.Drain()
			}
			auditAll(t, s.Alloc)
			if used := s.Arena.UsedPages(); used != 0 {
				t.Fatalf("%d pages leaked", used)
			}
		})
	}
}

// Endurance smoke in integration form: with deployed-style throttling
// on a small arena, the baseline must hit OOM before finishing while
// Prudence finishes. (The full comparison lives in internal/bench; this
// guards the integration of workload+allocator+rcu at the test level.)
func TestEnduranceContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent comparison")
	}
	mkStack := func(build alloctest.BuildAllocator) (*alloctest.Stack, alloc.Cache) {
		cfg := alloctest.DefaultStackConfig()
		cfg.Pages = 512
		cfg.RCU.Blimit = 2
		cfg.RCU.ExpeditedBlimit = 2
		cfg.RCU.ThrottleDelay = 10 * time.Millisecond
		cfg.RCU.ExpeditedDelay = 10 * time.Millisecond
		cfg.RCU.Qhimark = -1
		s := alloctest.NewStack(t, cfg, build)
		return s, s.Alloc.NewCache(slabcore.DefaultConfig("endur", 512, cfg.CPUs))
	}

	s1, slubCache := mkStack(builders()["slub"])
	var slubOOM atomic.Bool
	lists := make([]*rculist.List, s1.Machine.NumCPU())
	for i := range lists {
		lists[i] = rculist.New(slubCache, s1.RCU)
	}
	s1.Machine.RunOnAll(func(c *vcpu.CPU) {
		cpu := c.ID()
		s1.RCU.ExitIdle(cpu)
		defer s1.RCU.EnterIdle(cpu)
		l := lists[cpu]
		for k := 0; k < 8; k++ {
			if err := l.Insert(cpu, uint64(k), []byte{1}); err != nil {
				slubOOM.Store(true)
				return
			}
		}
		for i := 0; i < 50000; i++ {
			if _, err := l.Update(cpu, uint64(i%8), []byte{2}); err != nil {
				slubOOM.Store(true)
				return
			}
			s1.RCU.QuiescentState(cpu)
		}
	})
	if !slubOOM.Load() {
		t.Error("baseline survived the endurance contrast (expected OOM)")
	}

	s2, pruCache := mkStack(builders()["prudence"])
	var pruFail atomic.Bool
	lists2 := make([]*rculist.List, s2.Machine.NumCPU())
	for i := range lists2 {
		lists2[i] = rculist.New(pruCache, s2.RCU)
	}
	s2.Machine.RunOnAll(func(c *vcpu.CPU) {
		cpu := c.ID()
		s2.RCU.ExitIdle(cpu)
		defer s2.RCU.EnterIdle(cpu)
		l := lists2[cpu]
		for k := 0; k < 8; k++ {
			if err := l.Insert(cpu, uint64(k), []byte{1}); err != nil {
				pruFail.Store(true)
				return
			}
		}
		for i := 0; i < 50000; i++ {
			if _, err := l.Update(cpu, uint64(i%8), []byte{2}); err != nil {
				pruFail.Store(true)
				return
			}
			s2.RCU.QuiescentState(cpu)
		}
	})
	if pruFail.Load() {
		t.Error("Prudence failed the endurance contrast")
	}
}
