package slabcore

import (
	"errors"
	"strings"
	"testing"

	"prudence/internal/memarena"
	"prudence/internal/pagealloc"
	"prudence/internal/rcu"
)

func TestAuditCleanCache(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s1, _ := b.NewSlab(n)
	s2, _ := b.NewSlab(n)
	n.Lock()
	s1.PopFree()
	n.Move(s1, ListPartial)
	var refs []Ref
	for s2.FreeCount() > 0 {
		refs = append(refs, s2.PopFree())
	}
	n.Move(s2, ListFull)
	n.Unlock()
	if err := b.Audit(); err != nil {
		t.Fatalf("clean cache failed audit: %v", err)
	}
	n.Lock()
	for _, r := range refs {
		s2.PushFree(r.Idx, false)
	}
	n.Move(s2, HomeList(s2))
	n.Unlock()
	if err := b.Audit(); err != nil {
		t.Fatalf("audit after free-back: %v", err)
	}
}

func TestAuditDetectsWrongListPlacement(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s, _ := b.NewSlab(n)
	n.Lock()
	// Exhaust the slab but leave it on the free list: a fully in-use
	// slab on the free list must be flagged.
	for s.FreeCount() > 0 {
		s.PopFree()
	}
	n.Unlock()
	err := b.Audit()
	if err == nil || !errors.Is(err, ErrAudit) {
		t.Fatalf("audit missed in-use slab on free list: %v", err)
	}
	if !strings.Contains(err.Error(), "free list") {
		t.Fatalf("unhelpful audit error: %v", err)
	}
}

func TestAuditDetectsCounterDrift(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	if _, err := b.NewSlab(n); err != nil {
		t.Fatal(err)
	}
	b.Ctr.SlabGrown(1) // phantom slab in the counter
	err := b.Audit()
	if err == nil || !strings.Contains(err.Error(), "lists hold") {
		t.Fatalf("audit missed counter drift: %v", err)
	}
}

func TestAuditDetectsFreeSlabOnFullList(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s, _ := b.NewSlab(n)
	n.Lock()
	n.Move(s, ListFull) // untouched (fully free) slab placed on full list
	n.Unlock()
	err := b.Audit()
	if err == nil || !strings.Contains(err.Error(), "full list") {
		t.Fatalf("audit missed free slab on full list: %v", err)
	}
}

func TestAuditAllowsLatentPlacements(t *testing.T) {
	// Prudence's predictive placement: an all-latent slab on the free
	// list and a latent-bearing slab on the partial list are both legal.
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s, _ := b.NewSlab(n)
	n.Lock()
	var refs []Ref
	for s.FreeCount() > 0 {
		refs = append(refs, s.PopFree())
	}
	for _, r := range refs {
		s.PushLatent(r.Idx, rcu.Cookie(3))
	}
	n.Move(s, ListFree) // PredictedList placement
	n.Unlock()
	if err := b.Audit(); err != nil {
		t.Fatalf("audit rejected predictive placement: %v", err)
	}
}

func TestAuditMultiNode(t *testing.T) {
	cfg := smallCfg()
	cfg.Nodes = 2
	cfg.CPUs = 4
	pa := pagealloc.New(memarena.New(512))
	b := NewBase(pa, cfg)
	if _, err := b.NewSlab(b.NodeFor(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.NewSlab(b.NodeFor(3)); err != nil {
		t.Fatal(err)
	}
	if err := b.Audit(); err != nil {
		t.Fatalf("multi-node audit: %v", err)
	}
}
