package slabcore

import (
	"testing"
	"unsafe"
)

// falseSharingPad is the padding target for per-CPU hot structures:
// two 64-byte cache lines, because adjacent-line prefetchers pull
// cache lines in pairs, so neighbours one line apart still ping-pong.
const falseSharingPad = 128

// TestPerCPUCachePadding pins the per-CPU object cache to a multiple
// of the false-sharing pad so adjacent CPUs' caches (allocated from
// the same size class) never land on the same line pair.
func TestPerCPUCachePadding(t *testing.T) {
	if s := unsafe.Sizeof(PerCPUCache{}); s != falseSharingPad {
		t.Fatalf("PerCPUCache is %d bytes, want %d — fix the struct's pad field", s, falseSharingPad)
	}
}
