// Package slabcore provides the slab machinery shared by the SLUB
// baseline (internal/slub) and Prudence (internal/core): slab layout
// over buddy-allocated page runs, per-slab object freelists, intrusive
// full/partial/free node lists under a node lock, per-CPU object caches,
// and the sizing heuristics both allocators reuse (§4.3: Prudence
// deliberately reuses SLUB's empirically tuned cache size, slab size and
// shrink threshold so that measured differences come from deferred-object
// handling, not tuning).
package slabcore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"prudence/internal/memarena"
	"prudence/internal/pagealloc"
	"prudence/internal/rcu"
	"prudence/internal/stats"
	"prudence/internal/trace"
	"prudence/internal/view"
)

// PoisonByte fills freed objects when CacheConfig.Poison is set, so that
// tests can detect use-after-free writes through stale references.
const PoisonByte = 0xA5

// CacheConfig describes one slab cache (one object type/size).
type CacheConfig struct {
	// Name identifies the cache in reports (e.g. "filp", "kmalloc-64").
	Name string
	// ObjectSize is the size of each object in bytes.
	ObjectSize int
	// SlabOrder is the page order of each slab (2^SlabOrder pages).
	SlabOrder int
	// CacheSize is the capacity of each per-CPU object cache.
	CacheSize int
	// FreeSlabLimit is the number of free slabs a node keeps before the
	// cache is shrunk (SLUB's min_partial analogue).
	FreeSlabLimit int
	// Nodes is the number of NUMA nodes the cache spreads slabs over.
	Nodes int
	// CPUs is the number of CPUs (per-CPU caches).
	CPUs int
	// Poison fills freed object memory with PoisonByte so tests can
	// detect use-after-free writes.
	Poison bool
	// DisableColoring turns off slab coloring (the Bonwick cache-line
	// offset scheme both allocators reuse, §4.3).
	DisableColoring bool
}

// DefaultConfig returns SLUB-like heuristics for an object size:
// slabs sized so they hold a reasonable number of objects, and object
// caches sized down as objects get larger (the paper relies on this in
// explaining why Figure 6's improvement grows with object size: "larger
// objects are normally optimized for memory efficiency, hence have fewer
// objects in object cache and smaller slabs").
func DefaultConfig(name string, objectSize, cpus int) CacheConfig {
	if objectSize <= 0 {
		panic(fmt.Sprintf("slabcore: non-positive object size %d", objectSize))
	}
	order := 0
	for order < 3 && (memarena.PageSize<<order)/objectSize < 16 {
		order++
	}
	cacheSize := 2 * memarena.PageSize / objectSize
	if cacheSize > 120 {
		cacheSize = 120
	}
	if cacheSize < 4 {
		cacheSize = 4
	}
	return CacheConfig{
		Name:          name,
		ObjectSize:    objectSize,
		SlabOrder:     order,
		CacheSize:     cacheSize,
		FreeSlabLimit: 5,
		Nodes:         1,
		CPUs:          cpus,
	}
}

func (c CacheConfig) withDefaults() CacheConfig {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.CPUs <= 0 {
		c.CPUs = 1
	}
	if c.FreeSlabLimit <= 0 {
		c.FreeSlabLimit = 5
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	return c
}

// ObjectsPerSlab returns how many objects fit in one slab.
func (c CacheConfig) ObjectsPerSlab() int {
	return (memarena.PageSize << c.SlabOrder) / c.ObjectSize
}

// ListID identifies which node list a slab is on.
type ListID uint8

// Slab list membership states.
const (
	ListNone ListID = iota // owned by nobody (being constructed/destroyed)
	ListFull
	ListPartial
	ListFree
)

func (l ListID) String() string {
	switch l {
	case ListNone:
		return "none"
	case ListFull:
		return "full"
	case ListPartial:
		return "partial"
	case ListFree:
		return "free"
	}
	return fmt.Sprintf("ListID(%d)", uint8(l))
}

// latentEntry records one deferred object resident in a latent slab,
// stamped with the grace-period cookie after which it may be reused.
type latentEntry struct {
	cookie rcu.Cookie
	idx    uint32
}

// Slab is one run of pages carved into equal-size objects.
//
// Mutable state (freelist, latent entries, list membership) is protected
// by the owning Node's lock.
type Slab struct {
	run     pagealloc.Run
	base    []byte
	objSize int
	cap     int
	// color is the cache-line offset of the first object within the
	// slab (Bonwick slab coloring): successive slabs start their
	// objects at different offsets so that the same-index objects of
	// different slabs do not all contend for the same cache lines.
	color int

	// free is the stack of free object indices.
	//prudence:guarded_by Node
	free []uint32
	//prudence:guarded_by Node
	latent []latentEntry
	// latentMin is the smallest cookie among latent entries; Reconcile
	// is O(1) when even the oldest entry has not elapsed.
	//prudence:guarded_by Node
	latentMin rcu.Cookie
	// pad is the per-side red-zone width (0 unless debugging).
	pad int

	// inUse counts objects not on the freelist and not latent: objects
	// held by users OR sitting in per-CPU object/latent caches.
	//prudence:guarded_by Node
	inUse int

	// touched is scratch state for batched releases (ReleaseRefs and
	// the allocators' spill paths): marks a slab already seen in the
	// current batch so list placement runs once per slab, not per
	// object. Guarded by the node lock; always false between batches.
	//prudence:guarded_by Node
	touched bool

	node *Node
	//prudence:guarded_by Node
	list ListID
	//prudence:guarded_by Node
	prev *Slab
	//prudence:guarded_by Node
	next *Slab
}

// Capacity returns the number of objects the slab holds.
func (s *Slab) Capacity() int { return s.cap }

// FreeCount returns the number of immediately allocatable objects.
// Caller must hold the node lock.
//
//prudence:requires Node
func (s *Slab) FreeCount() int { return len(s.free) }

// LatentCount returns the number of deferred objects parked in the
// latent slab. Caller must hold the node lock.
//
//prudence:requires Node
func (s *Slab) LatentCount() int { return len(s.latent) }

// InUse returns the number of objects neither free nor latent.
// Caller must hold the node lock.
//
//prudence:requires Node
func (s *Slab) InUse() int { return s.inUse }

// Node returns the NUMA node owning this slab.
func (s *Slab) Node() *Node { return s.node }

// List returns the node list the slab currently belongs to.
// Caller must hold the node lock.
//
//prudence:requires Node
func (s *Slab) List() ListID { return s.list }

// Ref is a reference to one object within a slab. The zero Ref is
// invalid; test with IsZero.
type Ref struct {
	Slab *Slab
	Idx  uint32
}

// IsZero reports whether the Ref is the zero (invalid) reference.
func (r Ref) IsZero() bool { return r.Slab == nil }

// Bytes returns the object's backing memory.
func (r Ref) Bytes() []byte {
	s := r.Slab
	off := s.color + int(r.Idx)*(s.objSize+2*s.pad) + s.pad
	return s.base[off : off+s.objSize : off+s.objSize]
}

// ViewOf returns a typed view of the object's memory. With the mmap
// arena backend object bytes live outside the Go heap, so T must be
// pointer-free (view.Of enforces this) and must fit the cache's object
// size. This — not a hand-rolled unsafe cast — is the supported way to
// store structured data in slab objects; prudence-vet's arenaunsafe
// analyzer rejects direct unsafe access everywhere outside
// internal/view.
func ViewOf[T any](r Ref) *T {
	return view.Of[T](r.Bytes())
}

// SliceOf returns the object's memory as a typed slice of n Ts, with
// the same constraints as ViewOf.
func SliceOf[T any](r Ref, n int) []T {
	return view.Slice[T](r.Bytes(), n)
}

// PopFree removes one object from the slab freelist. Caller must hold
// the node lock and ensure FreeCount() > 0.
//
//prudence:requires Node
func (s *Slab) PopFree() Ref {
	idx := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.inUse++
	return Ref{Slab: s, Idx: idx}
}

// PushFree returns an object to the slab freelist. Caller must hold the
// node lock.
//
//prudence:requires Node
func (s *Slab) PushFree(idx uint32, poison bool) {
	if poison {
		s.poisonObject(idx)
	}
	s.free = append(s.free, idx)
	s.inUse--
	if s.inUse < 0 {
		panic(fmt.Sprintf("slabcore: slab %v inUse went negative", s.run))
	}
}

// PushLatent parks a deferred object in the latent slab with its
// grace-period cookie. Caller must hold the node lock.
//
//prudence:requires Node
func (s *Slab) PushLatent(idx uint32, cookie rcu.Cookie) {
	if len(s.latent) == 0 || cookie < s.latentMin {
		s.latentMin = cookie
	}
	s.latent = append(s.latent, latentEntry{cookie: cookie, idx: idx})
	s.inUse--
	if s.inUse < 0 {
		panic(fmt.Sprintf("slabcore: slab %v inUse went negative (latent)", s.run))
	}
}

// poisonObject fills one object's user bytes with the poison pattern.
// Caller must hold the node lock.
//
//prudence:requires Node
func (s *Slab) poisonObject(idx uint32) {
	view.Fill((Ref{Slab: s, Idx: idx}).Bytes(), PoisonByte)
}

// Reconcile promotes latent objects whose grace period has elapsed onto
// the freelist and returns how many were promoted. Caller must hold the
// node lock. This is the lazy merge of latent slab into slab: like the
// paper's design it needs no per-object tracking by the synchronization
// mechanism — the allocator polls the grace-period state when it next
// touches the slab.
//
//prudence:requires Node
func (s *Slab) Reconcile(elapsed func(rcu.Cookie) bool, poison bool) int {
	if len(s.latent) == 0 {
		return 0
	}
	// Fast path: if even the oldest deferred object has not waited out
	// its grace period, nothing can be promoted. This keeps the
	// hot-path Reconcile calls (slab selection, shrink checks) O(1).
	if !elapsed(s.latentMin) {
		return 0
	}
	kept := s.latent[:0]
	promoted := 0
	for _, e := range s.latent {
		if elapsed(e.cookie) {
			if poison {
				s.poisonObject(e.idx)
			}
			s.free = append(s.free, e.idx)
			promoted++
		} else {
			kept = append(kept, e)
		}
	}
	s.latent = kept
	s.latentMin = 0
	for i, e := range s.latent {
		if i == 0 || e.cookie < s.latentMin {
			s.latentMin = e.cookie
		}
	}
	return promoted
}

// CheckPoison reports whether the object's memory still carries the
// poison pattern (i.e. nobody wrote to it while it was free).
func CheckPoison(r Ref) bool {
	for _, b := range r.Bytes() {
		if b != PoisonByte {
			return false
		}
	}
	return true
}

// slabList is an intrusive doubly-linked list of slabs. Lists live
// inside a Node and inherit its lock.
type slabList struct {
	//prudence:guarded_by Node
	head *Slab
	//prudence:guarded_by Node
	tail *Slab
	//prudence:guarded_by Node
	n int
}

//prudence:requires Node
func (l *slabList) pushFront(s *Slab) {
	s.prev = nil
	s.next = l.head
	if l.head != nil {
		l.head.prev = s
	}
	l.head = s
	if l.tail == nil {
		l.tail = s
	}
	l.n++
}

//prudence:requires Node
func (l *slabList) remove(s *Slab) {
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		l.head = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else {
		l.tail = s.prev
	}
	s.prev, s.next = nil, nil
	l.n--
}

//prudence:requires Node
func (l *slabList) front() *Slab { return l.head }

//prudence:requires Node
func (l *slabList) len() int { return l.n }

// Node is one NUMA node's share of a slab cache: the full, partial and
// free slab lists and the lock covering them (the "node list lock" whose
// contention the paper's pre-flush and pre-movement optimizations are
// designed to spread out).
//
//prudence:lockorder 20
type Node struct {
	mu sync.Mutex
	id int
	//prudence:guarded_by Node
	full slabList
	//prudence:guarded_by Node
	partial slabList
	//prudence:guarded_by Node
	freeL slabList
}

// ID returns the node's index.
func (n *Node) ID() int { return n.id }

// Lock acquires the node list lock.
func (n *Node) Lock() { n.mu.Lock() }

// Unlock releases the node list lock.
func (n *Node) Unlock() { n.mu.Unlock() }

// FreeSlabs returns the number of slabs on the free list.
// Caller must hold the node lock.
//
//prudence:requires Node
func (n *Node) FreeSlabs() int { return n.freeL.len() }

// PartialSlabs returns the number of slabs on the partial list.
// Caller must hold the node lock.
//
//prudence:requires Node
func (n *Node) PartialSlabs() int { return n.partial.len() }

// FullSlabs returns the number of slabs on the full list.
// Caller must hold the node lock.
//
//prudence:requires Node
func (n *Node) FullSlabs() int { return n.full.len() }

// FirstPartial returns the head of the partial list (or nil).
// Caller must hold the node lock.
//
//prudence:requires Node
func (n *Node) FirstPartial() *Slab { return n.partial.front() }

// FirstFree returns the head of the free list (or nil).
// Caller must hold the node lock.
//
//prudence:requires Node
func (n *Node) FirstFree() *Slab { return n.freeL.front() }

// WalkPartial calls fn for up to limit slabs on the partial list,
// stopping early if fn returns false. Caller must hold the node lock.
//
//prudence:requires Node
func (n *Node) WalkPartial(limit int, fn func(*Slab) bool) {
	for s := n.partial.front(); s != nil && limit > 0; s = s.next {
		limit--
		if !fn(s) {
			return
		}
	}
}

//prudence:requires Node
func (n *Node) list(id ListID) *slabList {
	switch id {
	case ListFull:
		return &n.full
	case ListPartial:
		return &n.partial
	case ListFree:
		return &n.freeL
	}
	panic(fmt.Sprintf("slabcore: no list %v", id))
}

// Attach places a slab on the given list. The slab must not currently be
// on any list, and must belong to this node (a slab's node is fixed at
// creation: callers read slab.Node() without the lock to decide which
// lock to take). Caller must hold the node lock.
//
//prudence:requires Node
func (n *Node) Attach(s *Slab, id ListID) {
	if s.list != ListNone {
		panic(fmt.Sprintf("slabcore: attach of slab already on %v", s.list))
	}
	if s.node != nil && s.node != n {
		panic("slabcore: attach of slab to foreign node")
	}
	n.list(id).pushFront(s)
	s.list = id
}

// Detach removes a slab from whatever list it is on. Caller must hold
// the node lock.
//
//prudence:requires Node
func (n *Node) Detach(s *Slab) {
	if s.list == ListNone {
		panic("slabcore: detach of unattached slab")
	}
	n.list(s.list).remove(s)
	s.list = ListNone
}

// Move transfers a slab to another list. Caller must hold the node lock.
//
//prudence:requires Node
func (n *Node) Move(s *Slab, to ListID) {
	if s.list == to {
		return
	}
	n.Detach(s)
	n.Attach(s, to)
}

// HomeList computes the list a slab belongs on from its counts, with
// latent objects counted as still occupying the slab (the conventional
// SLUB view). Caller must hold the node lock.
//
//prudence:requires Node
func HomeList(s *Slab) ListID {
	switch {
	case len(s.free) == 0:
		return ListFull
	case s.inUse == 0 && len(s.latent) == 0:
		return ListFree
	default:
		return ListPartial
	}
}

// PredictedList computes the list a slab *will* belong on once its
// latent objects become free — the hint-based placement Prudence's slab
// pre-movement uses (§4.2). Caller must hold the node lock.
//
//prudence:requires Node
func PredictedList(s *Slab) ListID {
	switch {
	case s.inUse == 0:
		// Everything is free or about-to-be-free.
		return ListFree
	case len(s.free) == 0 && len(s.latent) == 0:
		return ListFull
	default:
		return ListPartial
	}
}

// Base owns the machinery common to a slab cache in either allocator:
// configuration, the page allocator, per-node lists, and counters.
type Base struct {
	Cfg      CacheConfig
	Pages    *pagealloc.Allocator
	NodesArr []*Node
	Ctr      stats.AllocCounters

	// colorNext cycles slab colors (atomic; NewSlab runs concurrently).
	colorNext atomic.Uint32

	// badPageFrees counts page frees the buddy allocator rejected
	// (double free / wrong order). The slab is already detached when
	// that happens, so the pages are leaked rather than double-inserted;
	// the count keeps the degradation visible to Audit and tests.
	badPageFrees atomic.Uint64

	// ring, when non-nil, receives allocator events (see SetTrace).
	ring atomic.Pointer[trace.Ring]

	// redZonePad and debugger are set by EnableDebug before first use.
	redZonePad int
	debugger   *Debugger
}

// NewBase constructs the shared state for a cache.
func NewBase(pages *pagealloc.Allocator, cfg CacheConfig) *Base {
	cfg = cfg.withDefaults()
	if cfg.ObjectSize <= 0 {
		panic(fmt.Sprintf("slabcore: cache %q has non-positive object size", cfg.Name))
	}
	if cfg.ObjectsPerSlab() < 1 {
		panic(fmt.Sprintf("slabcore: cache %q objects do not fit in slab order %d", cfg.Name, cfg.SlabOrder))
	}
	b := &Base{Cfg: cfg, Pages: pages}
	b.NodesArr = make([]*Node, cfg.Nodes)
	for i := range b.NodesArr {
		b.NodesArr[i] = &Node{id: i}
	}
	return b
}

// Debugger returns the debugging state attached with EnableDebug, or
// nil.
func (b *Base) Debugger() *Debugger { return b.debugger }

// SetTrace attaches (or, with nil, detaches) an event ring. Recording
// is wait-free; the hook costs one atomic load when no ring is set.
func (b *Base) SetTrace(r *trace.Ring) {
	b.ring.Store(r)
}

// Trace records an event if a ring is attached.
func (b *Base) Trace(kind trace.Kind, cpu int, arg1, arg2 int64) {
	if r := b.ring.Load(); r != nil {
		r.Record(kind, cpu, arg1, arg2)
	}
}

// NodeFor maps a CPU to its NUMA node.
func (b *Base) NodeFor(cpu int) *Node {
	perNode := (b.Cfg.CPUs + len(b.NodesArr) - 1) / len(b.NodesArr)
	idx := cpu / perNode
	if idx >= len(b.NodesArr) {
		idx = len(b.NodesArr) - 1
	}
	return b.NodesArr[idx]
}

// NewSlab grows the cache by one slab on node n and attaches it to the
// free list. Caller must NOT hold the node lock (page allocation may
// block on the buddy allocator's own lock). Returns pagealloc.ErrOutOfMemory
// when the machine is out of pages.
func (b *Base) NewSlab(n *Node) (*Slab, error) {
	run, zeroed, err := b.Pages.AllocZeroed(b.Cfg.SlabOrder)
	if err != nil {
		return nil, err
	}
	capObjs := b.Cfg.ObjectsPerSlab()
	if b.redZonePad > 0 {
		capObjs = b.Cfg.ObjectsPerSlabPadded(b.redZonePad)
	}
	base := b.Pages.Bytes(run)
	color := 0
	stride := b.Cfg.ObjectSize + 2*b.redZonePad
	if !b.Cfg.DisableColoring {
		// Color in 64-byte cache-line steps, bounded by the slack left
		// after packing the objects.
		const line = 64
		if slack := len(base) - capObjs*stride; slack >= line {
			colors := slack/line + 1
			color = int(b.colorNext.Add(1)-1) % colors * line
		}
	}
	// Fresh slabs hand out zeroed memory, as kernel slab pages do; the
	// memset is also what makes a slab-cache grow operation distinctly
	// more expensive than an object-cache refill (§3.3's 14x vs 4x).
	// When the run came from the known-zero pool the cost was already
	// paid by an idle worker, so the grow path skips it.
	if !zeroed {
		view.Zero(base)
	}
	s := &Slab{
		run:     run,
		base:    base,
		objSize: b.Cfg.ObjectSize,
		cap:     capObjs,
		color:   color,
		pad:     b.redZonePad,
		free:    make([]uint32, capObjs),
		node:    n,
	}
	s.paintRedZones()
	for i := 0; i < capObjs; i++ {
		// LIFO order: lowest index on top for cache-friendly reuse.
		s.free[i] = uint32(capObjs - 1 - i)
	}
	b.Ctr.SlabGrown(1)
	n.Lock()
	n.Attach(s, ListFree)
	n.Unlock()
	return s, nil
}

// DestroySlab detaches a fully free slab and returns its pages. Caller
// must hold the node lock around the detach decision but NOT around this
// call; DestroySlab re-takes the lock.
func (b *Base) DestroySlab(s *Slab) {
	n := s.node
	n.Lock()
	if s.inUse != 0 || len(s.latent) != 0 {
		// Format while still holding the lock: reading the counts after
		// Unlock would race with concurrent slab mutations and could
		// report garbage in the panic message.
		msg := fmt.Sprintf("slabcore: destroying slab with inUse=%d latent=%d", s.inUse, len(s.latent))
		n.Unlock()
		panic(msg)
	}
	n.Detach(s)
	n.Unlock()
	if b.debugger != nil {
		b.debugger.forgetSlab(s)
	}
	if err := b.Pages.Free(s.run); err != nil {
		b.badPageFrees.Add(1)
	}
	b.Ctr.SlabShrunk(1)
}

// BadPageFrees reports how many slab page frees the buddy allocator
// rejected (the pages were leaked instead of double-inserted).
func (b *Base) BadPageFrees() uint64 { return b.badPageFrees.Load() }

// UserAlloc accounts one object handed to a user on cpu. The count
// lives in the CPU's padded counter shard, so the accounting that used
// to serialize every Malloc/Free behind a global mutex is now a local
// uncontended increment.
func (b *Base) UserAlloc(cpu int) { b.Ctr.UserAlloc(cpu) }

// UserFree accounts one object returned by a user on cpu (free or
// deferred). Cross-CPU frees make individual shards go negative;
// over-freeing is only detectable on the summed value, which Audit
// checks at quiescent points.
func (b *Base) UserFree(cpu int) { b.Ctr.UserFree(cpu) }

// Requested returns the number of objects currently held by users.
func (b *Base) Requested() int64 { return b.Ctr.Requested() }

// ReleaseRefs returns a batch of objects to their slabs' freelists with
// one node-lock acquisition per node (instead of per object) and one
// list-placement decision per touched slab (instead of per push). place
// maps each touched slab to its destination list — HomeList for the
// SLUB view, PredictedList-style policies for Prudence.
func (b *Base) ReleaseRefs(refs []Ref, place func(*Slab) ListID) {
	if len(refs) == 0 {
		return
	}
	for _, n := range b.NodesArr {
		var touched []*Slab
		locked := false
		for _, r := range refs {
			s := r.Slab
			if s.node != n {
				continue
			}
			if !locked {
				n.Lock()
				locked = true
			}
			s.PushFree(r.Idx, b.Cfg.Poison)
			if !s.touched {
				s.touched = true
				touched = append(touched, s)
			}
		}
		if !locked {
			continue
		}
		for _, s := range touched {
			s.touched = false
			n.Move(s, place(s))
		}
		n.Unlock()
	}
}

// Fragmentation returns the paper's total fragmentation metric
// f_t = allocated/requested = (slabs × slab bytes)/(objects × object
// size), and its components. When no objects are live it returns the
// allocated byte count with a fragmentation of +Inf if any slabs remain,
// or 1.0 for an empty cache.
func (b *Base) Fragmentation() (ft float64, allocatedBytes, requestedBytes int64) {
	slabBytes := int64(memarena.PageSize << b.Cfg.SlabOrder)
	allocatedBytes = int64(b.Ctr.CurrentSlabs()) * slabBytes
	requestedBytes = b.Requested() * int64(b.Cfg.ObjectSize)
	switch {
	case requestedBytes > 0:
		ft = float64(allocatedBytes) / float64(requestedBytes)
	case allocatedBytes == 0:
		ft = 1.0
	default:
		ft = float64(allocatedBytes) // degenerate; callers report bytes
	}
	return ft, allocatedBytes, requestedBytes
}

// PerCPUCache is a stack of free object references owned by one CPU,
// guarded by an owner-core lock standing in for the kernel's
// local-IRQ-disable: the owning workload goroutine takes the fast path
// (Lock), and that CPU's background processors (RCU callback
// processor, idle pre-flush worker) plus cross-CPU drains take the
// deferential slow path (LockRemote). The struct is padded to 128
// bytes so adjacent CPUs' caches never false-share a cache line (or an
// adjacent-line prefetch pair).
//
//prudence:lockorder 10 spin
//prudence:padded 128
type PerCPUCache struct {
	lock OwnerLock
	//prudence:guarded_by PerCPUCache
	Objs []Ref
	Size int // capacity (the "object cache size" o of §4.2)
	_    [128 - 4 /* lock */ - 4 /* align */ - 24 /* Objs */ - 8] /* Size */ byte
}

// NewPerCPUCache creates a cache with the given capacity.
func NewPerCPUCache(size int) *PerCPUCache {
	return &PerCPUCache{Objs: make([]Ref, 0, size), Size: size}
}

// Lock acquires the cache lock on the owner-core fast path.
func (c *PerCPUCache) Lock() { c.lock.Lock() }

// LockRemote acquires the cache lock as a cross-CPU visitor, yielding
// to the owner under contention.
func (c *PerCPUCache) LockRemote() { c.lock.LockRemote() }

// TryLock attempts a single lock acquisition without spinning.
func (c *PerCPUCache) TryLock() bool { return c.lock.TryLock() }

// Unlock releases the cache lock.
func (c *PerCPUCache) Unlock() { c.lock.Unlock() }

// TryGet pops an object, returning a zero Ref if empty. Caller must
// hold the cache lock.
//
//prudence:requires PerCPUCache
func (c *PerCPUCache) TryGet() Ref {
	if len(c.Objs) == 0 {
		return Ref{}
	}
	r := c.Objs[len(c.Objs)-1]
	c.Objs = c.Objs[:len(c.Objs)-1]
	return r
}

// Put pushes an object. Caller must hold the cache lock and ensure
// Len < Size or accept growing past Size (flushing is the caller's
// policy decision).
//
//prudence:requires PerCPUCache
func (c *PerCPUCache) Put(r Ref) {
	c.Objs = append(c.Objs, r)
}

// Len returns the number of cached objects. Caller must hold the cache
// lock.
//
//prudence:requires PerCPUCache
func (c *PerCPUCache) Len() int { return len(c.Objs) }

// FillFrom splices up to n objects from the slab's freelist into the
// cache in one operation, returning how many moved. Unlike a
// PopFree/Put loop this touches the slab's freelist once, so a whole
// refill costs one bounds-checked copy under the node lock rather than
// per-object push/pop traffic. Caller must hold both the node lock and
// the cache lock.
//
//prudence:requires Node,PerCPUCache
func (c *PerCPUCache) FillFrom(s *Slab, n int) int {
	if n > len(s.free) {
		n = len(s.free)
	}
	if n <= 0 {
		return 0
	}
	cut := len(s.free) - n
	for _, idx := range s.free[cut:] {
		c.Objs = append(c.Objs, Ref{Slab: s, Idx: idx})
	}
	s.free = s.free[:cut]
	s.inUse += n
	return n
}

// TakeAll removes and returns all objects. Caller must hold the cache
// lock.
//
//prudence:requires PerCPUCache
func (c *PerCPUCache) TakeAll() []Ref {
	out := c.Objs
	c.Objs = make([]Ref, 0, c.Size)
	return out
}

// Take removes and returns up to n objects from the bottom of the stack
// (the coldest entries). Caller must hold the cache lock.
//
//prudence:requires PerCPUCache
func (c *PerCPUCache) Take(n int) []Ref {
	if n > len(c.Objs) {
		n = len(c.Objs)
	}
	if n <= 0 {
		return nil
	}
	out := make([]Ref, n)
	copy(out, c.Objs[:n])
	c.Objs = append(c.Objs[:0], c.Objs[n:]...)
	return out
}

// ShrinkNode returns free slabs to the page allocator until the node's
// free list is at most limit slabs long. Slabs whose freedom depends on
// latent objects are first reconciled with elapsed (when non-nil); slabs
// still holding latent objects are skipped — their pages must not be
// reused until the grace period ends. Returns the number of slabs freed
// and the number of latent objects promoted during reconciliation (the
// caller's latent accounting must subtract these). Caller must NOT hold
// the node lock.
func (b *Base) ShrinkNode(n *Node, limit int, elapsed func(rcu.Cookie) bool) (freed, promoted int) {
	n.Lock()
	var victims []*Slab
	s := n.freeL.front()
	for s != nil && n.freeL.len() > limit {
		next := s.next
		if elapsed != nil {
			promoted += s.Reconcile(elapsed, b.Cfg.Poison)
		}
		if s.inUse == 0 && len(s.latent) == 0 {
			n.freeL.remove(s)
			s.list = ListNone
			victims = append(victims, s)
		}
		s = next
	}
	n.Unlock()
	for _, v := range victims {
		if b.debugger != nil {
			b.debugger.forgetSlab(v)
		}
		if err := b.Pages.Free(v.run); err != nil {
			b.badPageFrees.Add(1)
		}
		b.Ctr.SlabShrunk(1)
	}
	return len(victims), promoted
}

// NextInList returns the next slab on the same node list, for bounded
// traversals by the allocators. Caller must hold the node lock.
//
//prudence:requires Node
func (s *Slab) NextInList() *Slab { return s.next }

// FirstFull returns the head of the full list (or nil).
// Caller must hold the node lock.
//
//prudence:requires Node
func (n *Node) FirstFull() *Slab { return n.full.front() }

// Color returns the slab's coloring offset in bytes.
func (s *Slab) Color() int { return s.color }
