package slabcore

import (
	"runtime"
	"sync/atomic"
)

// OwnerLock is the asymmetric lock guarding per-CPU allocator state
// (object caches, latent caches). It replaces sync.Mutex on the
// allocation fast path with the owner-core protocol:
//
//   - The owning vCPU worker takes the lock with Lock. It is almost
//     always uncontended — per-CPU state is, by construction, touched
//     by one workload goroutine — so the fast path is a single
//     compare-and-swap with no futex, no state machine and no
//     starvation bookkeeping. On the rare conflict the owner spins
//     briefly (the visitor's critical section is short) before
//     yielding.
//   - Cross-CPU visitors (the RCU callback processor, the idle
//     pre-flush worker, Drain, stats drains) take the lock with
//     LockRemote, which yields the processor on every failed attempt:
//     visitors defer to the owner rather than competing with it.
//
// The lock is deliberately not reentrant and has no fairness
// guarantee; both match the kernel analogue (local_irq_disable plus a
// remote-access protocol) the per-CPU caches model.
//
//prudence:lockorder 10 spin
type OwnerLock struct {
	state atomic.Int32
}

// Lock acquires the lock on the owner-core fast path.
func (l *OwnerLock) Lock() {
	if l.state.CompareAndSwap(0, 1) {
		return
	}
	// Contended: a visitor (or a preempted owner goroutine on a
	// timeshared host) holds it. Spin a few times for short critical
	// sections, then donate the processor.
	for i := 0; ; i++ {
		if i >= 8 {
			runtime.Gosched()
		}
		if l.state.CompareAndSwap(0, 1) {
			return
		}
	}
}

// LockRemote acquires the lock on the cross-CPU slow path, yielding to
// the owner on every failed attempt.
func (l *OwnerLock) LockRemote() {
	for !l.state.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

// TryLock attempts a single acquisition without spinning.
func (l *OwnerLock) TryLock() bool {
	return l.state.CompareAndSwap(0, 1)
}

// Unlock releases the lock.
func (l *OwnerLock) Unlock() {
	l.state.Store(0)
}
