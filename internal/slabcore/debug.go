package slabcore

import (
	"fmt"
	"strings"
	"sync"

	"prudence/internal/memarena"
	"prudence/internal/view"
)

// RedZoneSize is the number of guard bytes placed on each side of every
// object when CacheConfig.RedZone is enabled (the SLUB_DEBUG red-zone
// analogue). Overflows and underflows by the object's user corrupt the
// guard pattern and are reported at free time or by CheckRedZones.
const RedZoneSize = 8

// RedZoneByte is the guard fill pattern.
const RedZoneByte = 0xBB

// DebugConfig enables allocator debugging features, at the cost of
// per-object space (red zones) and a little time (owner tracking).
type DebugConfig struct {
	// RedZone surrounds every object with guard bytes; corruption
	// panics on free and fails CheckRedZones/audits.
	RedZone bool
	// TrackOwners records the CPU of the last allocation of every live
	// object, enabling leak reports at drain time.
	TrackOwners bool
}

// ownerTable records, per slab cache, which CPU allocated each live
// object. It is sized lazily per slab.
type ownerTable struct {
	mu     sync.Mutex
	owners map[*Slab][]int32 // -1 = not live
}

func newOwnerTable() *ownerTable {
	return &ownerTable{owners: map[*Slab][]int32{}}
}

func (o *ownerTable) recordAlloc(r Ref, cpu int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	t := o.owners[r.Slab]
	if t == nil {
		t = make([]int32, r.Slab.Capacity())
		for i := range t {
			t[i] = -1
		}
		o.owners[r.Slab] = t
	}
	t[r.Idx] = int32(cpu)
}

func (o *ownerTable) recordFree(r Ref) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if t := o.owners[r.Slab]; t != nil {
		t[r.Idx] = -1
	}
}

func (o *ownerTable) forget(s *Slab) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.owners, s)
}

// live returns the number of live-tracked objects and a per-CPU tally.
func (o *ownerTable) live() (int, map[int]int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	total := 0
	byCPU := map[int]int{}
	for _, t := range o.owners {
		for _, cpu := range t {
			if cpu >= 0 {
				total++
				byCPU[int(cpu)]++
			}
		}
	}
	return total, byCPU
}

// Debugger carries a cache's debugging state. Obtain one with
// Base.EnableDebug; all methods are safe for concurrent use.
type Debugger struct {
	base   *Base
	cfg    DebugConfig
	owners *ownerTable
}

// EnableDebug switches on debugging features for the cache. With
// RedZone enabled the cache's object layout changes, so it must be
// called before any slabs are created (NewBase callers do this right
// after construction); it panics otherwise.
func (b *Base) EnableDebug(cfg DebugConfig) *Debugger {
	if cfg.RedZone {
		if b.Ctr.CurrentSlabs() != 0 {
			panic("slabcore: EnableDebug(RedZone) after slabs were created")
		}
		// Grow the stride so each object carries leading and trailing
		// guards. ObjectSize stays the user-visible size; the layout
		// stride is adjusted via redZonePad.
		b.redZonePad = RedZoneSize
		if b.Cfg.ObjectsPerSlabPadded(b.redZonePad) < 1 {
			panic("slabcore: red zones leave no room for objects")
		}
	}
	d := &Debugger{base: b, cfg: cfg}
	if cfg.TrackOwners {
		d.owners = newOwnerTable()
	}
	b.debugger = d
	return d
}

// ObjectsPerSlabPadded returns how many objects fit in one slab when
// each object carries pad guard bytes on both sides.
func (c CacheConfig) ObjectsPerSlabPadded(pad int) int {
	return (memarena.PageSize << c.SlabOrder) / (c.ObjectSize + 2*pad)
}

// OnAlloc hooks an allocation (called by the allocators when a debugger
// is attached).
func (d *Debugger) OnAlloc(r Ref, cpu int) {
	if d.cfg.RedZone {
		d.checkGuards(r, "alloc")
	}
	if d.owners != nil {
		d.owners.recordAlloc(r, cpu)
	}
}

// OnFree hooks a free (immediate or deferred).
func (d *Debugger) OnFree(r Ref, cpu int) {
	if d.cfg.RedZone {
		d.checkGuards(r, "free")
	}
	if d.owners != nil {
		d.owners.recordFree(r)
	}
}

// checkGuards panics when an object's red zones were overwritten.
func (d *Debugger) checkGuards(r Ref, when string) {
	lead, trail := r.redZones()
	for _, b := range lead {
		if b != RedZoneByte {
			panic(fmt.Sprintf("slabcore: cache %q object %d: leading red zone corrupted (detected at %s)",
				d.base.Cfg.Name, r.Idx, when))
		}
	}
	for _, b := range trail {
		if b != RedZoneByte {
			panic(fmt.Sprintf("slabcore: cache %q object %d: trailing red zone corrupted (detected at %s)",
				d.base.Cfg.Name, r.Idx, when))
		}
	}
}

// CheckRedZones scans every slab's guard bytes and returns descriptions
// of corrupted objects (empty when clean). Unlike the per-op checks it
// covers objects that are currently free or latent too.
func (d *Debugger) CheckRedZones() []string {
	if !d.cfg.RedZone {
		return nil
	}
	var bad []string
	for _, n := range d.base.NodesArr {
		n.Lock()
		for _, first := range []*Slab{n.FirstFull(), n.FirstPartial(), n.FirstFree()} {
			for s := first; s != nil; s = s.NextInList() {
				for idx := 0; idx < s.Capacity(); idx++ {
					r := Ref{Slab: s, Idx: uint32(idx)}
					lead, trail := r.redZones()
					for _, b := range lead {
						if b != RedZoneByte {
							bad = append(bad, fmt.Sprintf("object %d: leading guard", idx))
							break
						}
					}
					for _, b := range trail {
						if b != RedZoneByte {
							bad = append(bad, fmt.Sprintf("object %d: trailing guard", idx))
							break
						}
					}
				}
			}
		}
		n.Unlock()
	}
	return bad
}

// LeakReport describes objects still live at reporting time.
type LeakReport struct {
	Live  int
	ByCPU map[int]int
}

// String renders the report.
func (l LeakReport) String() string {
	if l.Live == 0 {
		return "no live objects"
	}
	var parts []string
	for cpu, n := range l.ByCPU {
		parts = append(parts, fmt.Sprintf("cpu%d:%d", cpu, n))
	}
	return fmt.Sprintf("%d live objects (%s)", l.Live, strings.Join(parts, " "))
}

// Leaks reports objects allocated but never freed, attributed to the
// allocating CPU. Call after the workload (and before Drain if you want
// in-flight deferred objects excluded — deferred frees count as freed).
func (d *Debugger) Leaks() LeakReport {
	if d.owners == nil {
		return LeakReport{}
	}
	live, byCPU := d.owners.live()
	return LeakReport{Live: live, ByCPU: byCPU}
}

// forgetSlab drops owner state for a destroyed slab.
func (d *Debugger) forgetSlab(s *Slab) {
	if d.owners != nil {
		d.owners.forget(s)
	}
}

// RedZones returns the object's guard regions (empty slices when the
// cache has no red zones). Exposed for debug tooling and for tests that
// simulate wild writes; normal code never touches these bytes.
func (r Ref) RedZones() (lead, trail []byte) {
	return r.redZones()
}

// redZones returns the object's guard slices (empty when the cache has
// no red zones).
func (r Ref) redZones() (lead, trail []byte) {
	s := r.Slab
	if s.pad == 0 {
		return nil, nil
	}
	stride := s.objSize + 2*s.pad
	off := s.color + int(r.Idx)*stride
	return s.base[off : off+s.pad], s.base[off+s.pad+s.objSize : off+stride]
}

// paintRedZones fills a fresh slab's guard bytes.
func (s *Slab) paintRedZones() {
	if s.pad == 0 {
		return
	}
	stride := s.objSize + 2*s.pad
	for idx := 0; idx < s.cap; idx++ {
		off := s.color + idx*stride
		view.Fill(s.base[off:off+s.pad], RedZoneByte)
		view.Fill(s.base[off+s.pad+s.objSize:off+stride], RedZoneByte)
	}
}
