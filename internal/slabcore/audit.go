package slabcore

import (
	"errors"
	"fmt"
)

// ErrAudit wraps all invariant violations found by Audit.
var ErrAudit = errors.New("slabcore: audit failed")

// Audit walks every node list of the cache and checks the structural
// invariants the allocators rely on:
//
//   - every slab's recorded list membership matches the list it is
//     actually linked on;
//   - per-slab accounting holds: free + latent + inUse == capacity, and
//     no object index appears in two places;
//   - no latent entry's cookie is below the slab's latentMin;
//   - the cache-level slab counter matches the number of linked slabs;
//   - HomeList placement: no conventionally-free slab hides on the full
//     list (Prudence may predictively place slabs, so partial/free
//     placements are allowed to disagree with HomeList, but a slab with
//     zero free objects must never sit on the free list unless
//     everything left in it is latent).
//
// Audit takes each node's lock; do not call it while holding one.
// Integration tests run it after workloads to catch accounting drift.
func (b *Base) Audit() error {
	var errs []error
	slabs := 0
	for _, n := range b.NodesArr {
		n.Lock()
		for _, l := range []struct {
			id    ListID
			first *Slab
		}{
			{ListFull, n.full.front()},
			{ListPartial, n.partial.front()},
			{ListFree, n.freeL.front()},
		} {
			for s := l.first; s != nil; s = s.next {
				slabs++
				if s.list != l.id {
					errs = append(errs, fmt.Errorf("slab on %v list records membership %v", l.id, s.list))
				}
				if s.node != n {
					errs = append(errs, fmt.Errorf("slab on node %d records node %d", n.id, s.node.id))
				}
				if got := len(s.free) + len(s.latent) + s.inUse; got != s.cap {
					errs = append(errs, fmt.Errorf("slab accounting: free=%d latent=%d inUse=%d != cap=%d",
						len(s.free), len(s.latent), s.inUse, s.cap))
				}
				seen := make(map[uint32]bool, s.cap)
				for _, idx := range s.free {
					if int(idx) >= s.cap {
						errs = append(errs, fmt.Errorf("free index %d out of range [0,%d)", idx, s.cap))
					}
					if seen[idx] {
						errs = append(errs, fmt.Errorf("object %d on freelist twice", idx))
					}
					seen[idx] = true
				}
				for _, e := range s.latent {
					if int(e.idx) >= s.cap {
						errs = append(errs, fmt.Errorf("latent index %d out of range [0,%d)", e.idx, s.cap))
					}
					if seen[e.idx] {
						errs = append(errs, fmt.Errorf("object %d both free and latent", e.idx))
					}
					seen[e.idx] = true
					if e.cookie < s.latentMin {
						errs = append(errs, fmt.Errorf("latent cookie %d below latentMin %d", e.cookie, s.latentMin))
					}
				}
				if l.id == ListFree && len(s.free) == 0 && len(s.latent) == 0 && s.cap > 0 {
					errs = append(errs, fmt.Errorf("fully in-use slab on the free list"))
				}
				if l.id == ListFull && s.inUse == 0 && len(s.latent) == 0 && s.cap > 0 {
					errs = append(errs, fmt.Errorf("fully free slab on the full list"))
				}
			}
		}
		n.Unlock()
	}
	if got := b.Ctr.CurrentSlabs(); got != slabs {
		errs = append(errs, fmt.Errorf("counter says %d slabs, lists hold %d", got, slabs))
	}
	// The per-CPU requested shards may individually go negative
	// (cross-CPU frees), but the sum is the live object count and must
	// never be: a negative total means more frees than allocations.
	if req := b.Requested(); req < 0 {
		errs = append(errs, fmt.Errorf("cache %q freed more objects than allocated (requested sum %d)", b.Cfg.Name, req))
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrAudit, errors.Join(errs...))
}
