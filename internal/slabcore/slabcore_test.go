package slabcore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prudence/internal/memarena"
	"prudence/internal/pagealloc"
	"prudence/internal/rcu"
)

func newBase(t *testing.T, cfg CacheConfig) *Base {
	t.Helper()
	pa := pagealloc.New(memarena.New(512))
	return NewBase(pa, cfg)
}

func smallCfg() CacheConfig {
	return CacheConfig{
		Name:       "test",
		ObjectSize: 512,
		SlabOrder:  0, // 8 objects per slab
		CacheSize:  4,
		CPUs:       2,
	}
}

func TestDefaultConfigHeuristics(t *testing.T) {
	cases := []struct {
		size      int
		wantOrder int
		wantCache int
	}{
		{64, 0, 120},   // 64 objects/page, big object cache
		{512, 1, 16},   // needs order 1 for >=16 objects
		{4096, 3, 4},   // big objects: order capped at 3, tiny cache
		{100000, 3, 4}, // absurd size still yields valid config (checked below)
	}
	for _, c := range cases {
		cfg := DefaultConfig("k", c.size, 4)
		if cfg.SlabOrder != c.wantOrder {
			t.Errorf("DefaultConfig(%d).SlabOrder = %d, want %d", c.size, cfg.SlabOrder, c.wantOrder)
		}
		if cfg.CacheSize != c.wantCache {
			t.Errorf("DefaultConfig(%d).CacheSize = %d, want %d", c.size, cfg.CacheSize, c.wantCache)
		}
	}
	// Monotonic: larger objects never get bigger caches (paper's Figure 6
	// explanation depends on this).
	prev := 1 << 30
	for size := 64; size <= 4096; size *= 2 {
		cs := DefaultConfig("k", size, 4).CacheSize
		if cs > prev {
			t.Errorf("cache size grew from %d to %d at object size %d", prev, cs, size)
		}
		prev = cs
	}
}

func TestDefaultConfigPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive object size")
		}
	}()
	DefaultConfig("bad", 0, 1)
}

func TestNewBaseRejectsOversizedObjects(t *testing.T) {
	pa := pagealloc.New(memarena.New(16))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when objects do not fit slab")
		}
	}()
	NewBase(pa, CacheConfig{Name: "huge", ObjectSize: 5 * memarena.PageSize, SlabOrder: 0})
}

func TestNewSlabLayout(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s, err := b.NewSlab(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 8 {
		t.Fatalf("Capacity = %d, want 8", s.Capacity())
	}
	n.Lock()
	defer n.Unlock()
	if s.FreeCount() != 8 || s.InUse() != 0 || s.LatentCount() != 0 {
		t.Fatalf("fresh slab free=%d inUse=%d latent=%d", s.FreeCount(), s.InUse(), s.LatentCount())
	}
	if s.List() != ListFree {
		t.Fatalf("fresh slab on list %v, want free", s.List())
	}
	if got := b.Ctr.CurrentSlabs(); got != 1 {
		t.Fatalf("CurrentSlabs = %d, want 1", got)
	}
}

func TestPopPushFreeRoundTrip(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s, _ := b.NewSlab(n)
	n.Lock()
	defer n.Unlock()
	seen := map[uint32]bool{}
	var refs []Ref
	for s.FreeCount() > 0 {
		r := s.PopFree()
		if seen[r.Idx] {
			t.Fatalf("index %d popped twice", r.Idx)
		}
		seen[r.Idx] = true
		refs = append(refs, r)
	}
	if len(refs) != 8 || s.InUse() != 8 {
		t.Fatalf("popped %d, inUse %d", len(refs), s.InUse())
	}
	for _, r := range refs {
		s.PushFree(r.Idx, false)
	}
	if s.FreeCount() != 8 || s.InUse() != 0 {
		t.Fatalf("after push-back free=%d inUse=%d", s.FreeCount(), s.InUse())
	}
}

func TestRefBytesDisjointAndSized(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s, _ := b.NewSlab(n)
	n.Lock()
	r0 := s.PopFree()
	r1 := s.PopFree()
	n.Unlock()
	b0, b1 := r0.Bytes(), r1.Bytes()
	if len(b0) != 512 || len(b1) != 512 {
		t.Fatalf("object sizes %d, %d; want 512", len(b0), len(b1))
	}
	for i := range b0 {
		b0[i] = 0xFF
	}
	for _, x := range b1 {
		if x == 0xFF {
			t.Fatal("objects overlap")
		}
	}
}

func TestPoisoning(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s, _ := b.NewSlab(n)
	n.Lock()
	r := s.PopFree()
	n.Unlock()
	copy(r.Bytes(), []byte("hello"))
	n.Lock()
	s.PushFree(r.Idx, true)
	n.Unlock()
	if !CheckPoison(r) {
		t.Fatal("freed object not poisoned")
	}
	r.Bytes()[0] = 1 // simulate use-after-free write
	if CheckPoison(r) {
		t.Fatal("poison check missed a stale write")
	}
}

func TestLatentReconcile(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s, _ := b.NewSlab(n)
	n.Lock()
	defer n.Unlock()
	r1, r2, r3 := s.PopFree(), s.PopFree(), s.PopFree()
	s.PushLatent(r1.Idx, rcu.Cookie(5))
	s.PushLatent(r2.Idx, rcu.Cookie(7))
	s.PushLatent(r3.Idx, rcu.Cookie(6))
	if s.LatentCount() != 3 || s.InUse() != 0 {
		t.Fatalf("latent=%d inUse=%d", s.LatentCount(), s.InUse())
	}
	// Only cookies <= 6 elapsed; note r2 (cookie 7) is in the middle of
	// FIFO order and must be retained.
	promoted := s.Reconcile(func(c rcu.Cookie) bool { return c <= 6 }, false)
	if promoted != 2 {
		t.Fatalf("promoted %d, want 2", promoted)
	}
	if s.LatentCount() != 1 || s.FreeCount() != 7 {
		t.Fatalf("after reconcile latent=%d free=%d", s.LatentCount(), s.FreeCount())
	}
	promoted = s.Reconcile(func(rcu.Cookie) bool { return true }, false)
	if promoted != 1 || s.LatentCount() != 0 || s.FreeCount() != 8 {
		t.Fatalf("final reconcile promoted=%d latent=%d free=%d", promoted, s.LatentCount(), s.FreeCount())
	}
}

func TestListTransitions(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s, _ := b.NewSlab(n)
	n.Lock()
	defer n.Unlock()
	if n.FreeSlabs() != 1 {
		t.Fatalf("FreeSlabs = %d, want 1", n.FreeSlabs())
	}
	n.Move(s, ListPartial)
	if n.FreeSlabs() != 0 || n.PartialSlabs() != 1 || s.List() != ListPartial {
		t.Fatal("move to partial failed")
	}
	n.Move(s, ListFull)
	if n.PartialSlabs() != 0 || n.FullSlabs() != 1 {
		t.Fatal("move to full failed")
	}
	n.Move(s, ListFull) // no-op move
	if n.FullSlabs() != 1 {
		t.Fatal("self-move broke list")
	}
	n.Detach(s)
	if n.FullSlabs() != 0 || s.List() != ListNone {
		t.Fatal("detach failed")
	}
	n.Attach(s, ListFree)
}

func TestDoubleAttachPanics(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s, _ := b.NewSlab(n)
	n.Lock()
	defer n.Unlock()
	defer func() {
		if recover() == nil {
			t.Fatal("double attach did not panic")
		}
	}()
	n.Attach(s, ListPartial)
}

func TestWalkPartialLimit(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	var slabs []*Slab
	for i := 0; i < 5; i++ {
		s, err := b.NewSlab(n)
		if err != nil {
			t.Fatal(err)
		}
		slabs = append(slabs, s)
	}
	n.Lock()
	defer n.Unlock()
	for _, s := range slabs {
		n.Move(s, ListPartial)
	}
	count := 0
	n.WalkPartial(3, func(*Slab) bool { count++; return true })
	if count != 3 {
		t.Fatalf("WalkPartial visited %d, want 3", count)
	}
	count = 0
	n.WalkPartial(100, func(*Slab) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early-stop walk visited %d, want 2", count)
	}
}

func TestHomeAndPredictedList(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s, _ := b.NewSlab(n)
	n.Lock()
	defer n.Unlock()

	if HomeList(s) != ListFree || PredictedList(s) != ListFree {
		t.Fatal("fresh slab should be free by both views")
	}
	r := s.PopFree()
	if HomeList(s) != ListPartial || PredictedList(s) != ListPartial {
		t.Fatal("slab with one object out should be partial")
	}
	var refs []Ref
	for s.FreeCount() > 0 {
		refs = append(refs, s.PopFree())
	}
	if HomeList(s) != ListFull || PredictedList(s) != ListFull {
		t.Fatal("exhausted slab should be full")
	}
	// Defer-free one object: conventionally still full-ish (no free
	// objects), but the prediction says partial — the premove hint.
	s.PushLatent(refs[0].Idx, rcu.Cookie(1))
	if HomeList(s) != ListFull {
		t.Fatalf("HomeList with latent = %v, want full", HomeList(s))
	}
	if PredictedList(s) != ListPartial {
		t.Fatalf("PredictedList with latent = %v, want partial", PredictedList(s))
	}
	// Defer-free everything else: prediction says entirely free.
	s.PushLatent(r.Idx, rcu.Cookie(1))
	for _, rr := range refs[1:] {
		s.PushLatent(rr.Idx, rcu.Cookie(1))
	}
	if PredictedList(s) != ListFree {
		t.Fatalf("PredictedList all-latent = %v, want free", PredictedList(s))
	}
	if HomeList(s) != ListFull {
		t.Fatalf("HomeList all-latent = %v, want full (latent hidden)", HomeList(s))
	}
}

func TestDestroySlabReturnsPages(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	used0 := b.Pages.Arena().UsedPages()
	s, _ := b.NewSlab(n)
	if b.Pages.Arena().UsedPages() != used0+1 {
		t.Fatal("slab did not consume a page")
	}
	b.DestroySlab(s)
	if b.Pages.Arena().UsedPages() != used0 {
		t.Fatal("destroy did not return pages")
	}
	if b.Ctr.CurrentSlabs() != 0 {
		t.Fatalf("CurrentSlabs = %d, want 0", b.Ctr.CurrentSlabs())
	}
}

func TestDestroyNonEmptySlabPanics(t *testing.T) {
	b := newBase(t, smallCfg())
	n := b.NodeFor(0)
	s, _ := b.NewSlab(n)
	n.Lock()
	s.PopFree()
	n.Unlock()
	defer func() {
		if recover() == nil {
			t.Fatal("destroying non-empty slab did not panic")
		}
	}()
	b.DestroySlab(s)
}

func TestFragmentationMetric(t *testing.T) {
	b := newBase(t, smallCfg()) // 512B objects, order-0 slabs: 4096B
	n := b.NodeFor(0)
	s, _ := b.NewSlab(n)
	n.Lock()
	s.PopFree()
	s.PopFree()
	n.Unlock()
	b.UserAlloc(0)
	b.UserAlloc(1)
	ft, allocated, requested := b.Fragmentation()
	if allocated != 4096 || requested != 1024 {
		t.Fatalf("allocated=%d requested=%d", allocated, requested)
	}
	if ft != 4.0 {
		t.Fatalf("fragmentation = %v, want 4.0", ft)
	}
	b.UserFree(1)
	b.UserFree(0)
	ft, _, _ = b.Fragmentation()
	if ft != 4096 {
		t.Fatalf("degenerate fragmentation = %v, want allocated bytes", ft)
	}
}

// TestUserAccountingCrossCPU checks the sharded requested counter: an
// individual shard may go negative when objects are freed on a CPU
// other than the one that allocated them, but the summed value stays
// exact, and Audit flags a genuinely negative sum (more frees than
// allocations).
func TestUserAccountingCrossCPU(t *testing.T) {
	b := newBase(t, smallCfg())
	b.UserAlloc(0)
	b.UserAlloc(0)
	b.UserFree(1) // cross-CPU free: shard 1 goes to -1, sum stays 1
	if got := b.Requested(); got != 1 {
		t.Fatalf("Requested = %d, want 1", got)
	}
	b.UserFree(1)
	if got := b.Requested(); got != 0 {
		t.Fatalf("Requested = %d, want 0", got)
	}
	if err := b.Audit(); err != nil {
		t.Fatalf("balanced accounting failed audit: %v", err)
	}
	b.UserFree(2) // underflow: sum goes negative
	if err := b.Audit(); err == nil {
		t.Fatal("audit did not flag user-free underflow")
	}
}

func TestNodeForSpreadsCPUs(t *testing.T) {
	cfg := smallCfg()
	cfg.CPUs = 8
	cfg.Nodes = 2
	b := newBase(t, cfg)
	if b.NodeFor(0) != b.NodeFor(3) {
		t.Fatal("CPUs 0-3 should share node 0")
	}
	if b.NodeFor(0) == b.NodeFor(4) {
		t.Fatal("CPUs 0 and 4 should be on different nodes")
	}
	if b.NodeFor(7).ID() != 1 {
		t.Fatalf("CPU 7 on node %d, want 1", b.NodeFor(7).ID())
	}
}

func TestPerCPUCacheOps(t *testing.T) {
	c := NewPerCPUCache(4)
	c.Lock()
	defer c.Unlock()
	if !c.TryGet().IsZero() {
		t.Fatal("empty cache returned object")
	}
	mk := func(i uint32) Ref { return Ref{Slab: &Slab{}, Idx: i} }
	for i := uint32(0); i < 4; i++ {
		c.Put(mk(i))
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	// LIFO
	if got := c.TryGet(); got.Idx != 3 {
		t.Fatalf("TryGet = %d, want 3 (LIFO)", got.Idx)
	}
	// Take removes from the bottom (coldest).
	taken := c.Take(2)
	if len(taken) != 2 || taken[0].Idx != 0 || taken[1].Idx != 1 {
		t.Fatalf("Take(2) = %v", taken)
	}
	if c.Len() != 1 || c.Objs[0].Idx != 2 {
		t.Fatalf("cache after take = %v", c.Objs)
	}
	all := c.TakeAll()
	if len(all) != 1 || c.Len() != 0 {
		t.Fatal("TakeAll failed")
	}
	if got := c.Take(5); got != nil {
		t.Fatalf("Take(5) on empty = %v, want nil", got)
	}
	if got := c.Take(-1); got != nil {
		t.Fatalf("Take(-1) = %v, want nil", got)
	}
}

// Property: arbitrary pop/push/latent/reconcile sequences keep the slab
// accounting identity: free + latent + inUse == capacity, and no index
// is ever in two places.
func TestPropertySlabAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBase(pagealloc.New(memarena.New(512)), smallCfg())
		n := b.NodeFor(0)
		s, err := b.NewSlab(n)
		if err != nil {
			return false
		}
		n.Lock()
		defer n.Unlock()
		var held []Ref
		cookie := rcu.Cookie(1)
		elapsed := rcu.Cookie(0)
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0: // pop
				if s.FreeCount() > 0 {
					held = append(held, s.PopFree())
				}
			case 1: // push free
				if len(held) > 0 {
					i := rng.Intn(len(held))
					s.PushFree(held[i].Idx, false)
					held[i] = held[len(held)-1]
					held = held[:len(held)-1]
				}
			case 2: // push latent
				if len(held) > 0 {
					i := rng.Intn(len(held))
					cookie++
					s.PushLatent(held[i].Idx, cookie)
					held[i] = held[len(held)-1]
					held = held[:len(held)-1]
				}
			case 3: // reconcile up to a random elapsed point
				elapsed = rcu.Cookie(rng.Intn(int(cookie) + 1))
				s.Reconcile(func(c rcu.Cookie) bool { return c <= elapsed }, false)
			}
			if s.FreeCount()+s.LatentCount()+s.InUse() != s.Capacity() {
				return false
			}
			if s.InUse() != len(held) {
				return false
			}
			seen := map[uint32]bool{}
			for _, idx := range s.free {
				if seen[idx] {
					return false
				}
				seen[idx] = true
			}
			for _, e := range s.latent {
				if seen[e.idx] {
					return false
				}
				seen[e.idx] = true
			}
			for _, r := range held {
				if seen[r.Idx] {
					return false
				}
				seen[r.Idx] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSlabColoringCyclesOffsets(t *testing.T) {
	cfg := CacheConfig{
		Name:       "color",
		ObjectSize: 192, // 21 objects per 4096-byte page, 64 bytes slack
		SlabOrder:  0,
		CPUs:       1,
	}
	b := NewBase(pagealloc.New(memarena.New(64)), cfg)
	n := b.NodeFor(0)
	colors := map[int]bool{}
	for i := 0; i < 4; i++ {
		s, err := b.NewSlab(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Color()%64 != 0 {
			t.Fatalf("color %d not cache-line aligned", s.Color())
		}
		if s.Color()+s.Capacity()*cfg.ObjectSize > memarena.PageSize {
			t.Fatalf("color %d pushes objects past the slab end", s.Color())
		}
		colors[s.Color()] = true
		// Objects remain in-bounds and disjoint under coloring.
		n.Lock()
		r0, r1 := s.PopFree(), s.PopFree()
		n.Unlock()
		r0.Bytes()[0] = 0xEE
		if r1.Bytes()[0] == 0xEE {
			t.Fatal("colored objects overlap")
		}
	}
	if len(colors) < 2 {
		t.Fatalf("coloring never varied: %v", colors)
	}
}

func TestSlabColoringDisabled(t *testing.T) {
	cfg := CacheConfig{
		Name:            "nocolor",
		ObjectSize:      192,
		SlabOrder:       0,
		CPUs:            1,
		DisableColoring: true,
	}
	b := NewBase(pagealloc.New(memarena.New(64)), cfg)
	n := b.NodeFor(0)
	for i := 0; i < 3; i++ {
		s, err := b.NewSlab(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Color() != 0 {
			t.Fatalf("slab colored (%d) with coloring disabled", s.Color())
		}
	}
}

func TestColoringNeverWhenNoSlack(t *testing.T) {
	cfg := CacheConfig{
		Name:       "tight",
		ObjectSize: 512, // 8 objects exactly fill the page: no slack
		SlabOrder:  0,
		CPUs:       1,
	}
	b := NewBase(pagealloc.New(memarena.New(64)), cfg)
	n := b.NodeFor(0)
	for i := 0; i < 3; i++ {
		s, err := b.NewSlab(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Color() != 0 {
			t.Fatalf("slab colored (%d) with zero slack", s.Color())
		}
	}
}
