package slabcore_test

import (
	"strings"
	"testing"

	"prudence/internal/alloc"
	"prudence/internal/alloctest"
	"prudence/internal/core"
	"prudence/internal/slabcore"
	"prudence/internal/slub"
)

// Debug tests run through the allocators (external test package) so the
// OnAlloc/OnFree hook wiring is exercised, not just the Debugger itself.

type debugCache interface {
	alloc.Cache
	EnableDebug(slabcore.DebugConfig) *slabcore.Debugger
}

func eachDebugCache(t *testing.T, cfg slabcore.DebugConfig, fn func(t *testing.T, s *alloctest.Stack, c debugCache, d *slabcore.Debugger)) {
	builders := map[string]alloctest.BuildAllocator{
		"slub": func(s *alloctest.Stack) alloc.Allocator {
			return slub.New(s.Pages, s.RCU, s.Machine.NumCPU())
		},
		"prudence": func(s *alloctest.Stack) alloc.Allocator {
			return core.New(s.Pages, s.RCU, s.Machine, core.Options{})
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
			c := s.Alloc.NewCache(alloctest.TestCacheConfig("dbg-" + name)).(debugCache)
			d := c.EnableDebug(cfg)
			fn(t, s, c, d)
		})
	}
}

func TestRedZonesCleanOnNormalUse(t *testing.T) {
	eachDebugCache(t, slabcore.DebugConfig{RedZone: true}, func(t *testing.T, s *alloctest.Stack, c debugCache, d *slabcore.Debugger) {
		var refs []slabcore.Ref
		for i := 0; i < 64; i++ {
			r, err := c.Malloc(0)
			if err != nil {
				t.Fatal(err)
			}
			// Write the whole user area: guards must stay intact.
			b := r.Bytes()
			for j := range b {
				b[j] = 0xFF
			}
			refs = append(refs, r)
		}
		if bad := d.CheckRedZones(); len(bad) != 0 {
			t.Fatalf("full-object writes corrupted guards: %v", bad)
		}
		for _, r := range refs {
			c.Free(0, r)
		}
		c.Drain()
	})
}

func TestRedZoneCatchesOverflow(t *testing.T) {
	eachDebugCache(t, slabcore.DebugConfig{RedZone: true}, func(t *testing.T, s *alloctest.Stack, c debugCache, d *slabcore.Debugger) {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		// Simulate a C-style off-by-one: stomp the first byte past the
		// object, i.e. the trailing guard. (Bytes() clamps capacity, so
		// the wild write goes through the exposed guard region.)
		_, trail := r.RedZones()
		if len(trail) == 0 {
			t.Fatal("no trailing guard present")
		}
		trail[0] = 0x00

		if bad := d.CheckRedZones(); len(bad) == 0 {
			t.Fatal("CheckRedZones missed the overflow")
		} else if !strings.Contains(bad[0], "trailing") {
			t.Fatalf("wrong guard flagged: %v", bad)
		}
		defer func() {
			if recover() == nil {
				t.Fatal("free of an overflowed object did not panic")
			}
		}()
		c.Free(0, r)
	})
}

func TestOwnerTrackingReportsLeaks(t *testing.T) {
	eachDebugCache(t, slabcore.DebugConfig{TrackOwners: true}, func(t *testing.T, s *alloctest.Stack, c debugCache, d *slabcore.Debugger) {
		// Allocate on two CPUs, free some, leak the rest.
		var leaked []slabcore.Ref
		for i := 0; i < 10; i++ {
			r, err := c.Malloc(0)
			if err != nil {
				t.Fatal(err)
			}
			if i < 4 {
				c.Free(0, r)
			} else {
				leaked = append(leaked, r)
			}
		}
		r1, err := c.Malloc(1)
		if err != nil {
			t.Fatal(err)
		}
		leaked = append(leaked, r1)

		rep := d.Leaks()
		if rep.Live != 7 {
			t.Fatalf("Leaks reports %d live, want 7: %s", rep.Live, rep)
		}
		if rep.ByCPU[0] != 6 || rep.ByCPU[1] != 1 {
			t.Fatalf("leak attribution: %s", rep)
		}
		if !strings.Contains(rep.String(), "7 live objects") {
			t.Fatalf("report rendering: %s", rep)
		}
		for _, r := range leaked {
			c.FreeDeferred(0, r)
		}
		if rep := d.Leaks(); rep.Live != 0 {
			t.Fatalf("deferred frees should clear the leak report: %s", rep)
		}
		c.Drain()
		if rep := d.Leaks(); rep.String() != "no live objects" {
			t.Fatalf("after drain: %s", rep)
		}
	})
}

func TestRedZonesWithDeferredFrees(t *testing.T) {
	eachDebugCache(t, slabcore.DebugConfig{RedZone: true, TrackOwners: true}, func(t *testing.T, s *alloctest.Stack, c debugCache, d *slabcore.Debugger) {
		for i := 0; i < 200; i++ {
			r, err := c.Malloc(0)
			if err != nil {
				t.Fatal(err)
			}
			r.Bytes()[0] = byte(i)
			c.FreeDeferred(0, r)
		}
		c.Drain()
		if bad := d.CheckRedZones(); len(bad) != 0 {
			t.Fatalf("deferred path corrupted guards: %v", bad)
		}
		if used := s.Arena.UsedPages(); used != 0 {
			t.Fatalf("%d pages leaked", used)
		}
	})
}

func TestEnableRedZoneAfterSlabsPanics(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), func(s *alloctest.Stack) alloc.Allocator {
		return core.New(s.Pages, s.RCU, s.Machine, core.Options{})
	})
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("late")).(debugCache)
	if _, err := c.Malloc(0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("late EnableDebug(RedZone) did not panic")
		}
	}()
	c.EnableDebug(slabcore.DebugConfig{RedZone: true})
}
