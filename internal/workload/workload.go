// Package workload implements the load generators behind every
// experiment in the paper's evaluation:
//
//   - Micro: the Figure 6 kmalloc()/kfree_deferred() tight loop, per
//     object size, on all CPUs.
//   - Endurance: the §3.5/§5.5 per-CPU linked-list update storm with
//     512-byte objects that drives SLUB to OOM (Figure 3) while
//     Prudence reaches equilibrium.
//   - App profiles: synthetic substitutes for Postmark, Netperf,
//     Apache and PostgreSQL that reproduce each benchmark's
//     allocator-visible signature — which slab caches are stressed,
//     the deferred-free share of total frees (Figure 12), object hold
//     times and non-deferred interference (Figures 7-13).
//   - DoS: the §3.4 open/close flood.
//
// The real applications cannot run against a simulated kernel
// allocator; the profiles are the documented substitution (DESIGN.md §2)
// and carry the parameters the paper's own analysis says drive the
// results.
package workload

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"prudence/internal/alloc"
	"prudence/internal/pagealloc"
	"prudence/internal/rculist"
	"prudence/internal/slabcore"
	gsync "prudence/internal/sync"
	"prudence/internal/vcpu"
	"prudence/internal/view"
)

// Env bundles the substrate a workload runs on. Sync is the
// reclamation backend — workloads only touch the scheme-agnostic
// surface (idle transitions, quiescent states, synchronize), so any
// registered backend slots in.
type Env struct {
	Machine *vcpu.Machine
	Sync    gsync.Backend
	Pages   *pagealloc.Allocator
}

// ---------------------------------------------------------------------------
// Micro benchmark (Figure 6)

// MicroResult reports one micro-benchmark run.
type MicroResult struct {
	ObjectSize int
	Pairs      int           // total malloc/free_deferred pairs completed
	Elapsed    time.Duration // wall time
	Stalls     int           // allocations that had to wait out reclaim
}

// PairsPerSec returns the Figure 6 metric.
func (r MicroResult) PairsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Pairs) / r.Elapsed.Seconds()
}

// RunMicro executes pairsPerCPU kmalloc/kfree_deferred pairs on every
// CPU against cache and reports the aggregate rate. On transient
// exhaustion the loop waits for a grace period (the analogue of an
// allocation stalling in direct reclaim) and retries.
func RunMicro(env Env, cache alloc.Cache, pairsPerCPU int) MicroResult {
	var stalls atomic.Int64
	start := time.Now()
	env.Machine.RunOnAll(func(c *vcpu.CPU) {
		cpu := c.ID()
		env.Sync.ExitIdle(cpu)
		defer env.Sync.EnterIdle(cpu)
		for i := 0; i < pairsPerCPU; i++ {
			ref, err := cache.Malloc(cpu)
			for err != nil {
				stalls.Add(1)
				env.Sync.SynchronizeOn(cpu)
				ref, err = cache.Malloc(cpu)
			}
			*view.Of[byte](ref.Bytes()) = byte(i) // touch the object
			cache.FreeDeferred(cpu, ref)
			env.Sync.QuiescentState(cpu)
		}
	})
	return MicroResult{
		ObjectSize: cache.ObjectSize(),
		Pairs:      pairsPerCPU * env.Machine.NumCPU(),
		Elapsed:    time.Since(start),
		Stalls:     int(stalls.Load()),
	}
}

// ---------------------------------------------------------------------------
// Endurance (Figure 3, §3.5/§5.5)

// EnduranceConfig parameterizes the list-update storm.
type EnduranceConfig struct {
	// ListLen is the number of elements in each CPU's private list.
	ListLen int
	// Updates is the number of update operations per CPU (each is one
	// allocation plus one deferred free of an ObjectSize object).
	Updates int
	// PacePerUpdate throttles updates to a fixed rate (0 = flat out);
	// used to pin the defer rate above the callback processing rate.
	PacePerUpdate time.Duration
}

// EnduranceResult reports a run.
type EnduranceResult struct {
	OOM        bool          // the allocator ran out of memory
	OOMAfter   time.Duration // time of first OOM (if OOM)
	Updates    int           // updates completed across CPUs
	Elapsed    time.Duration
	PeakPages  int
	FinalPages int
}

// RunEndurance runs the §3.5 workload: every CPU continuously performs
// linked-list update operations on its own list (no list-lock
// contention), each allocating a new object and defer-freeing the old
// version. The caller samples used memory via the arena's sampler.
func RunEndurance(env Env, cache alloc.Cache, cfg EnduranceConfig) EnduranceResult {
	if cfg.ListLen <= 0 {
		cfg.ListLen = 64
	}
	lists := make([]*rculist.List, env.Machine.NumCPU())
	for i := range lists {
		lists[i] = rculist.New(cache, env.Sync)
	}
	var oom atomic.Bool
	var oomAt atomic.Int64 // nanoseconds since start
	var updates atomic.Int64
	start := time.Now()

	env.Machine.RunOnAll(func(c *vcpu.CPU) {
		cpu := c.ID()
		env.Sync.ExitIdle(cpu)
		defer env.Sync.EnterIdle(cpu)
		l := lists[cpu]
		for k := 0; k < cfg.ListLen; k++ {
			if err := l.Insert(cpu, uint64(k), []byte{byte(k)}); err != nil {
				recordOOM(&oom, &oomAt, start)
				return
			}
		}
		val := make([]byte, 8)
		for i := 0; i < cfg.Updates && !oom.Load(); i++ {
			val[0] = byte(i)
			if _, err := l.Update(cpu, uint64(i%cfg.ListLen), val); err != nil {
				if errors.Is(err, pagealloc.ErrOutOfMemory) {
					recordOOM(&oom, &oomAt, start)
					return
				}
				return
			}
			updates.Add(1)
			env.Sync.QuiescentState(cpu)
			if cfg.PacePerUpdate > 0 && i%64 == 63 {
				time.Sleep(64 * cfg.PacePerUpdate)
			}
		}
	})
	res := EnduranceResult{
		OOM:        oom.Load(),
		Updates:    int(updates.Load()),
		Elapsed:    time.Since(start),
		PeakPages:  env.Pages.Arena().PeakPages(),
		FinalPages: env.Pages.Arena().UsedPages(),
	}
	if res.OOM {
		res.OOMAfter = time.Duration(oomAt.Load())
	}
	return res
}

func recordOOM(oom *atomic.Bool, oomAt *atomic.Int64, start time.Time) {
	if oom.CompareAndSwap(false, true) {
		oomAt.Store(int64(time.Since(start)))
	}
}

// ---------------------------------------------------------------------------
// Application profiles (Figures 7-13)

// CacheMix describes how one slab cache is exercised per transaction.
type CacheMix struct {
	// Cache name and object size (the kernel cache it stands in for).
	Name       string
	ObjectSize int
	// AllocsPerTxn objects are allocated each transaction.
	AllocsPerTxn int
	// HoldTxns is how many transactions later the objects are freed
	// (0 = freed within the same transaction). Longer holds build a
	// live set, as open files and dentries do.
	HoldTxns int
	// DeferredPermille of the frees are deferred (RCU-protected
	// teardown); the rest are immediate. Out of 1000 for determinism.
	DeferredPermille int
	// BurstEvery, when non-zero, releases the cache's entire hold
	// queue every BurstEvery transactions — the delete phases of
	// Postmark-style workloads that empty whole slabs at once and
	// drive the bursty freeing of §3.1.
	BurstEvery int
}

// AppProfile is the allocator-visible signature of one benchmark.
type AppProfile struct {
	Name string
	// Mixes are the slab caches the benchmark stresses.
	Mixes []CacheMix
	// ThinkWork is the amount of non-allocator CPU work per transaction
	// (iterations of a hash mix), controlling how much of total runtime
	// the allocator represents — the paper's §5.4 point that overall
	// improvement depends on how hard the allocator is exercised.
	ThinkWork int
}

// Profiles returns the four benchmark profiles. The deferred-free
// shares reproduce Figure 12 (Postmark 24.4%, Netperf 14%, Apache 18%,
// PostgreSQL 4.4%), and the cache lists match the slab caches the paper
// reports for each benchmark (§5.3-5.4).
func Profiles() []AppProfile {
	return []AppProfile{
		{
			// Mail-server file churn on ext4: files created, appended,
			// read and deleted. dentry/inode/filp teardown is
			// RCU-deferred; data-path buffers are immediate.
			Name: "postmark",
			Mixes: []CacheMix{
				{Name: "filp", ObjectSize: 256, AllocsPerTxn: 2, HoldTxns: 8, DeferredPermille: 1000, BurstEvery: 64},
				{Name: "dentry", ObjectSize: 192, AllocsPerTxn: 2, HoldTxns: 16, DeferredPermille: 1000, BurstEvery: 64},
				{Name: "ext4_inode", ObjectSize: 1024, AllocsPerTxn: 1, HoldTxns: 16, DeferredPermille: 1000, BurstEvery: 64},
				{Name: "selinux", ObjectSize: 64, AllocsPerTxn: 2, HoldTxns: 8, DeferredPermille: 1000, BurstEvery: 64},
				{Name: "kmalloc-64", ObjectSize: 64, AllocsPerTxn: 22, HoldTxns: 1, DeferredPermille: 0},
			},
			ThinkWork: 300,
		},
		{
			// TCP connect/request/response: a socket file per
			// transaction (deferred teardown), transient buffers
			// immediate.
			Name: "netperf",
			Mixes: []CacheMix{
				{Name: "filp", ObjectSize: 256, AllocsPerTxn: 2, HoldTxns: 2, DeferredPermille: 1000},
				{Name: "selinux", ObjectSize: 64, AllocsPerTxn: 1, HoldTxns: 2, DeferredPermille: 1000},
				{Name: "kmalloc-256", ObjectSize: 256, AllocsPerTxn: 18, HoldTxns: 0, DeferredPermille: 0},
			},
			ThinkWork: 150,
		},
		{
			// HTTP requests over epoll: eventpoll items removed via RCU,
			// connection filps deferred, header buffers immediate.
			Name: "apache",
			Mixes: []CacheMix{
				{Name: "eventpoll_epi", ObjectSize: 128, AllocsPerTxn: 2, HoldTxns: 4, DeferredPermille: 1000, BurstEvery: 128},
				{Name: "filp", ObjectSize: 256, AllocsPerTxn: 2, HoldTxns: 4, DeferredPermille: 1000, BurstEvery: 128},
				{Name: "selinux", ObjectSize: 64, AllocsPerTxn: 1, HoldTxns: 4, DeferredPermille: 1000},
				{Name: "kmalloc-64", ObjectSize: 64, AllocsPerTxn: 23, HoldTxns: 1, DeferredPermille: 0},
			},
			ThinkWork: 250,
		},
		{
			// OLTP sessions: mostly immediate kmalloc-64 churn with a
			// small RCU-deferred share; the heavy non-deferred free
			// traffic on kmalloc-64 interferes with Prudence's
			// decisions (the paper's PostgreSQL kmalloc-64 outlier).
			Name: "postgresql",
			Mixes: []CacheMix{
				{Name: "filp", ObjectSize: 256, AllocsPerTxn: 1, HoldTxns: 12, DeferredPermille: 1000},
				{Name: "selinux", ObjectSize: 64, AllocsPerTxn: 1, HoldTxns: 12, DeferredPermille: 300},
				{Name: "kmalloc-64", ObjectSize: 64, AllocsPerTxn: 31, HoldTxns: 1, DeferredPermille: 5},
			},
			ThinkWork: 400,
		},
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (AppProfile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return AppProfile{}, false
}

// ExpectedDeferredRatio computes the deferred share of all frees the
// profile generates — the Figure 12 quantity, derivable statically.
func (p AppProfile) ExpectedDeferredRatio() float64 {
	total, deferred := 0.0, 0.0
	for _, m := range p.Mixes {
		frees := float64(m.AllocsPerTxn)
		total += frees
		deferred += frees * float64(m.DeferredPermille) / 1000
	}
	if total == 0 {
		return 0
	}
	return deferred / total
}

// AppResult reports one application-profile run over one allocator.
type AppResult struct {
	Profile      string
	Transactions int
	Elapsed      time.Duration
	// PerCache maps cache name to its counters snapshot at end of run
	// (before drain), for Figures 7-11.
	PerCache map[string]CacheReport
}

// CacheReport is the per-slab-cache measurement set of Figures 7-11.
type CacheReport struct {
	Snapshot      SnapshotAlias
	Fragmentation float64
}

// SnapshotAlias re-exports stats.AllocSnapshot without importing stats
// into callers' namespaces; defined via type alias in report.go.

// TxnPerSec returns the Figure 13 throughput metric.
func (r AppResult) TxnPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Transactions) / r.Elapsed.Seconds()
}

// held tracks objects waiting to be freed HoldTxns later.
type held struct {
	ref     slabcore.Ref
	release int
}

// RunApp executes the profile: every CPU runs txnsPerCPU transactions,
// each allocating per the mixes, doing ThinkWork, and freeing objects
// whose hold has expired (deferred or immediate per the mix).
func RunApp(env Env, a alloc.Allocator, p AppProfile, txnsPerCPU int) (AppResult, error) {
	caches := make([]alloc.Cache, len(p.Mixes))
	for i, m := range p.Mixes {
		cfg := slabcore.DefaultConfig(m.Name, m.ObjectSize, env.Machine.NumCPU())
		caches[i] = a.NewCache(cfg)
	}
	var firstErr error
	var errMu sync.Mutex
	start := time.Now()
	env.Machine.RunOnAll(func(c *vcpu.CPU) {
		cpu := c.ID()
		env.Sync.ExitIdle(cpu)
		defer env.Sync.EnterIdle(cpu)
		queues := make([][]held, len(p.Mixes))
		freeCounter := make([]int, len(p.Mixes))
		sink := uint64(0)
		for txn := 0; txn < txnsPerCPU; txn++ {
			for mi, m := range p.Mixes {
				// Release due objects; a burst phase releases the whole
				// queue at once.
				q := queues[mi]
				due := 0
				if m.BurstEvery > 0 && txn > 0 && txn%m.BurstEvery == 0 {
					due = len(q)
				}
				for due < len(q) && q[due].release <= txn {
					due++
				}
				for _, h := range q[:due] {
					freeCounter[mi] += m.DeferredPermille
					if freeCounter[mi] >= 1000 {
						freeCounter[mi] -= 1000
						caches[mi].FreeDeferred(cpu, h.ref)
					} else {
						caches[mi].Free(cpu, h.ref)
					}
				}
				queues[mi] = append(q[:0], q[due:]...)
				// Allocate this transaction's objects.
				for k := 0; k < m.AllocsPerTxn; k++ {
					ref, err := caches[mi].Malloc(cpu)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					*view.Of[byte](ref.Bytes()) = byte(txn)
					queues[mi] = append(queues[mi], held{ref: ref, release: txn + m.HoldTxns})
				}
			}
			// Application work outside the allocator.
			for w := 0; w < p.ThinkWork; w++ {
				sink = sink*0x9E3779B97F4A7C15 + uint64(w)
			}
			env.Sync.QuiescentState(cpu)
		}
		_ = sink
		// Drain the hold queues (end of benchmark teardown).
		for mi, m := range p.Mixes {
			for _, h := range queues[mi] {
				freeCounter[mi] += m.DeferredPermille
				if freeCounter[mi] >= 1000 {
					freeCounter[mi] -= 1000
					caches[mi].FreeDeferred(cpu, h.ref)
				} else {
					caches[mi].Free(cpu, h.ref)
				}
			}
		}
	})
	elapsed := time.Since(start)
	res := AppResult{
		Profile:      p.Name,
		Transactions: txnsPerCPU * env.Machine.NumCPU(),
		Elapsed:      elapsed,
		PerCache:     map[string]CacheReport{},
	}
	if firstErr != nil {
		return res, firstErr
	}
	for _, c := range caches {
		ft, _, _ := c.Fragmentation()
		res.PerCache[c.Name()] = CacheReport{
			Snapshot:      c.Counters().Snapshot(),
			Fragmentation: ft,
		}
	}
	// Fragmentation is measured after the completion of each run (§5.4
	// of the paper measures "after the completion of each run"): report
	// it before draining, once deferred objects have settled.
	return res, nil
}

// ---------------------------------------------------------------------------
// Denial of service (§3.4)

// DoSResult reports an open/close flood run.
type DoSResult struct {
	OOM      bool
	OOMAfter time.Duration
	Cycles   int
	Elapsed  time.Duration
}

// RunDoS floods the filp cache with open/close cycles — each cycle
// allocates a file object and immediately defer-frees it, the attack
// reported against the kernel's RCU where a tight open/close loop
// exhausts memory. duration bounds the attack.
func RunDoS(env Env, cache alloc.Cache, duration time.Duration) DoSResult {
	var oom atomic.Bool
	var oomAt atomic.Int64
	var cycles atomic.Int64
	start := time.Now()
	env.Machine.RunOnAll(func(c *vcpu.CPU) {
		cpu := c.ID()
		env.Sync.ExitIdle(cpu)
		defer env.Sync.EnterIdle(cpu)
		for !oom.Load() && time.Since(start) < duration {
			for i := 0; i < 64; i++ {
				ref, err := cache.Malloc(cpu)
				if err != nil {
					recordOOM(&oom, &oomAt, start)
					return
				}
				cache.FreeDeferred(cpu, ref)
			}
			cycles.Add(64)
			env.Sync.QuiescentState(cpu)
		}
	})
	res := DoSResult{
		OOM:     oom.Load(),
		Cycles:  int(cycles.Load()),
		Elapsed: time.Since(start),
	}
	if res.OOM {
		res.OOMAfter = time.Duration(oomAt.Load())
	}
	return res
}
