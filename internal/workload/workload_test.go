package workload_test

import (
	"math"
	"testing"
	"time"

	"prudence/internal/alloc"
	"prudence/internal/alloctest"
	"prudence/internal/core"
	"prudence/internal/slabcore"
	"prudence/internal/slub"
	"prudence/internal/workload"
)

func slubBuild(s *alloctest.Stack) alloc.Allocator {
	return slub.New(s.Pages, s.RCU, s.Machine.NumCPU())
}

func prudenceBuild(s *alloctest.Stack) alloc.Allocator {
	return core.New(s.Pages, s.RCU, s.Machine, core.Options{})
}

func env(s *alloctest.Stack) workload.Env {
	return workload.Env{Machine: s.Machine, Sync: s.RCU, Pages: s.Pages}
}

func TestRunMicroCompletesAndCounts(t *testing.T) {
	for name, build := range map[string]alloctest.BuildAllocator{"slub": slubBuild, "prudence": prudenceBuild} {
		t.Run(name, func(t *testing.T) {
			cfg := alloctest.DefaultStackConfig()
			cfg.Pages = 4096
			s := alloctest.NewStack(t, cfg, build)
			cache := s.Alloc.NewCache(slabcore.DefaultConfig("kmalloc-512", 512, s.Machine.NumCPU()))
			res := workload.RunMicro(env(s), cache, 2000)
			if res.Pairs != 2000*s.Machine.NumCPU() {
				t.Fatalf("Pairs = %d", res.Pairs)
			}
			if res.PairsPerSec() <= 0 {
				t.Fatal("non-positive rate")
			}
			if res.ObjectSize != 512 {
				t.Fatalf("ObjectSize = %d", res.ObjectSize)
			}
			ctr := cache.Counters().Snapshot()
			if ctr.DeferredFrees != uint64(res.Pairs) {
				t.Fatalf("DeferredFrees = %d, want %d", ctr.DeferredFrees, res.Pairs)
			}
			cache.Drain()
			if used := s.Arena.UsedPages(); used != 0 {
				t.Fatalf("%d pages leaked", used)
			}
		})
	}
}

func TestEnduranceCompletesWithinBudget(t *testing.T) {
	cfg := alloctest.DefaultStackConfig()
	cfg.Pages = 8192
	s := alloctest.NewStack(t, cfg, prudenceBuild)
	cache := s.Alloc.NewCache(slabcore.DefaultConfig("endur", 512, s.Machine.NumCPU()))
	res := workload.RunEndurance(env(s), cache, workload.EnduranceConfig{
		ListLen: 32,
		Updates: 3000,
	})
	if res.OOM {
		t.Fatalf("Prudence endurance OOMed after %v", res.OOMAfter)
	}
	if res.Updates != 3000*s.Machine.NumCPU() {
		t.Fatalf("Updates = %d", res.Updates)
	}
	if res.PeakPages <= 0 || res.PeakPages > cfg.Pages {
		t.Fatalf("PeakPages = %d", res.PeakPages)
	}
}

func TestEnduranceReportsOOMOnTinyArena(t *testing.T) {
	cfg := alloctest.DefaultStackConfig()
	cfg.Pages = 48
	// Throttle callbacks hard so the SLUB path cannot recycle.
	cfg.RCU.Blimit = 1
	cfg.RCU.ExpeditedBlimit = 1
	cfg.RCU.ThrottleDelay = 50 * time.Millisecond
	cfg.RCU.ExpeditedDelay = 50 * time.Millisecond
	s := alloctest.NewStack(t, cfg, slubBuild)
	cache := s.Alloc.NewCache(slabcore.DefaultConfig("endur-oom", 512, s.Machine.NumCPU()))
	res := workload.RunEndurance(env(s), cache, workload.EnduranceConfig{
		ListLen: 8,
		Updates: 100000,
	})
	if !res.OOM {
		t.Fatal("SLUB with throttled callbacks on a tiny arena did not OOM")
	}
	if res.OOMAfter < 0 || res.OOMAfter > res.Elapsed {
		t.Fatalf("OOMAfter = %v outside run of %v", res.OOMAfter, res.Elapsed)
	}
}

func TestProfilesMatchFigure12(t *testing.T) {
	// Paper, Figure 12: deferred frees as a share of all frees.
	want := map[string]float64{
		"postmark":   0.244,
		"netperf":    0.14,
		"apache":     0.18,
		"postgresql": 0.044,
	}
	profiles := workload.Profiles()
	if len(profiles) != len(want) {
		t.Fatalf("%d profiles, want %d", len(profiles), len(want))
	}
	for _, p := range profiles {
		w, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected profile %q", p.Name)
		}
		got := p.ExpectedDeferredRatio()
		if math.Abs(got-w) > 0.02 {
			t.Errorf("%s deferred ratio = %.3f, paper reports %.3f", p.Name, got, w)
		}
	}
	if _, ok := workload.ProfileByName("postmark"); !ok {
		t.Fatal("ProfileByName failed")
	}
	if _, ok := workload.ProfileByName("nope"); ok {
		t.Fatal("ProfileByName found a ghost")
	}
}

func TestRunAppProducesPerCacheReports(t *testing.T) {
	for name, build := range map[string]alloctest.BuildAllocator{"slub": slubBuild, "prudence": prudenceBuild} {
		t.Run(name, func(t *testing.T) {
			cfg := alloctest.DefaultStackConfig()
			cfg.Pages = 16384
			s := alloctest.NewStack(t, cfg, build)
			p, _ := workload.ProfileByName("netperf")
			res, err := workload.RunApp(env(s), s.Alloc, p, 500)
			if err != nil {
				t.Fatal(err)
			}
			if res.Transactions != 500*s.Machine.NumCPU() {
				t.Fatalf("Transactions = %d", res.Transactions)
			}
			if res.TxnPerSec() <= 0 {
				t.Fatal("non-positive throughput")
			}
			if len(res.PerCache) != len(p.Mixes) {
				t.Fatalf("PerCache has %d entries, want %d", len(res.PerCache), len(p.Mixes))
			}
			rep, ok := res.PerCache["filp"]
			if !ok {
				t.Fatal("filp cache missing from report")
			}
			if rep.Snapshot.Allocs == 0 || rep.Snapshot.DeferredFrees == 0 {
				t.Fatalf("filp snapshot empty: %+v", rep.Snapshot)
			}
			// Measured deferred ratio across caches approximates the
			// profile's expectation.
			var frees, defers float64
			for _, r := range res.PerCache {
				frees += float64(r.Snapshot.Frees + r.Snapshot.DeferredFrees)
				defers += float64(r.Snapshot.DeferredFrees)
			}
			if math.Abs(defers/frees-p.ExpectedDeferredRatio()) > 0.03 {
				t.Errorf("measured deferred ratio %.3f vs expected %.3f", defers/frees, p.ExpectedDeferredRatio())
			}
			// All objects were released by the workload teardown.
			for _, c := range s.Alloc.Caches() {
				c.Drain()
			}
			if used := s.Arena.UsedPages(); used != 0 {
				t.Fatalf("%d pages leaked after app run", used)
			}
		})
	}
}

func TestRunDoS(t *testing.T) {
	t.Run("slub-ooms", func(t *testing.T) {
		cfg := alloctest.DefaultStackConfig()
		cfg.Pages = 64
		cfg.RCU.Blimit = 1
		cfg.RCU.ExpeditedBlimit = 1
		cfg.RCU.ThrottleDelay = 50 * time.Millisecond
		cfg.RCU.ExpeditedDelay = 50 * time.Millisecond
		s := alloctest.NewStack(t, cfg, slubBuild)
		cache := s.Alloc.NewCache(slabcore.DefaultConfig("filp", 256, s.Machine.NumCPU()))
		res := workload.RunDoS(env(s), cache, 5*time.Second)
		if !res.OOM {
			t.Fatal("DoS against SLUB did not exhaust memory")
		}
	})
	t.Run("prudence-survives", func(t *testing.T) {
		cfg := alloctest.DefaultStackConfig()
		cfg.Pages = 64
		s := alloctest.NewStack(t, cfg, prudenceBuild)
		cache := s.Alloc.NewCache(slabcore.DefaultConfig("filp", 256, s.Machine.NumCPU()))
		res := workload.RunDoS(env(s), cache, 100*time.Millisecond)
		if res.OOM {
			t.Fatal("Prudence OOMed under the DoS flood")
		}
		if res.Cycles == 0 {
			t.Fatal("no cycles completed")
		}
	})
}

func TestZeroElapsedRates(t *testing.T) {
	if got := (workload.MicroResult{Pairs: 10}).PairsPerSec(); got != 0 {
		t.Fatalf("zero-elapsed PairsPerSec = %v", got)
	}
	if got := (workload.AppResult{Transactions: 10}).TxnPerSec(); got != 0 {
		t.Fatalf("zero-elapsed TxnPerSec = %v", got)
	}
}
