package workload

import "prudence/internal/stats"

// SnapshotAlias is the counters snapshot type embedded in CacheReport.
type SnapshotAlias = stats.AllocSnapshot
