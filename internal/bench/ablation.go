package bench

import (
	"fmt"

	"prudence/internal/core"
	"prudence/internal/slabcore"
	"prudence/internal/stats"
	"prudence/internal/workload"
)

// AblationRow is one Prudence variant's micro-benchmark result.
type AblationRow struct {
	Variant    string
	PairsPerS  float64
	VsFull     float64 // rate relative to the full design
	PreFlushes uint64
	PreMoves   uint64
	Partial    uint64
}

// AblationResult compares Prudence with each §4.2 optimization disabled
// in turn, under the Figure 6 micro-benchmark at 512 B.
type AblationResult struct {
	Rows []AblationRow
}

// AblationVariants enumerates the design-choice toggles of DESIGN.md §4.
func AblationVariants() map[string]core.Options {
	return map[string]core.Options{
		"full":              {},
		"with-prediction":   {EnablePrediction: true},
		"no-partial-refill": {DisablePartialRefill: true},
		"no-pre-flush":      {DisablePreFlush: true},
		"no-pre-move":       {DisablePreMove: true},
		"no-slab-selection": {DisableSlabSelection: true},
		"all-disabled": {
			DisablePartialRefill: true,
			DisablePreFlush:      true,
			DisablePreMove:       true,
			DisableSlabSelection: true,
		},
	}
}

// RunAblation measures each variant.
func RunAblation(cfg Config, pairsPerCPU int) (AblationResult, error) {
	var res AblationResult
	order := []string{"full", "with-prediction", "no-partial-refill", "no-pre-flush", "no-pre-move", "no-slab-selection", "all-disabled"}
	variants := AblationVariants()
	var fullRate float64
	for _, name := range order {
		c := cfg
		c.Prudence = variants[name]
		s := NewStack(KindPrudence, c)
		cache := s.Alloc.NewCache(slabcore.DefaultConfig("kmalloc-512", 512, c.CPUs))
		r := workload.RunMicro(s.Env(), cache, pairsPerCPU)
		snap := cache.Counters().Snapshot()
		row := AblationRow{
			Variant:    name,
			PairsPerS:  r.PairsPerSec(),
			PreFlushes: snap.PreFlushes,
			PreMoves:   snap.PreMoves,
			Partial:    snap.PartialFills,
		}
		if name == "full" {
			fullRate = row.PairsPerS
		}
		if fullRate > 0 {
			row.VsFull = row.PairsPerS / fullRate
		}
		res.Rows = append(res.Rows, row)
		cache.Drain()
		s.Close()
	}
	return res, nil
}

// Table renders the ablation comparison.
func (r AblationResult) Table() string {
	t := stats.NewTable("variant", "pairs/s", "vs full", "preflushes", "premoves", "partial refills")
	for _, row := range r.Rows {
		t.AddRow(row.Variant, fmt.Sprintf("%.0f", row.PairsPerS), fmt.Sprintf("%.2fx", row.VsFull),
			row.PreFlushes, row.PreMoves, row.Partial)
	}
	return "Ablation: Prudence optimizations toggled off (512 B micro-benchmark)\n" + t.String()
}
