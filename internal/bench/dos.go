package bench

import (
	"time"

	"prudence/internal/slabcore"
	"prudence/internal/stats"
	"prudence/internal/workload"
)

// DoSResult compares both allocators under the §3.4 open/close flood.
type DoSResult struct {
	SLUB     workload.DoSResult
	Prudence workload.DoSResult
}

// RunDoS reproduces §3.4: a malicious open/close loop generating a high
// rate of deferred frees. The baseline's extended object lifetimes let
// the backlog exhaust memory; Prudence recycles deferred objects after
// each grace period and survives.
func RunDoS(cfg Config, duration time.Duration) (DoSResult, error) {
	var res DoSResult
	for _, kind := range []Kind{KindSLUB, KindPrudence} {
		c := cfg
		c.RCU.ThrottleDelay = 200 * time.Microsecond
		if c.RCU.ExpeditedDelay == 0 {
			c.RCU.ExpeditedDelay = c.RCU.ThrottleDelay
		}
		if c.RCU.ExpeditedBlimit == 0 || c.RCU.ExpeditedBlimit > 3*c.RCU.Blimit {
			c.RCU.ExpeditedBlimit = 3 * c.RCU.Blimit
		}
		// Model deployed throttling: keep batch limits in force even
		// when the backlog is huge, as the paper's kernel (which still
		// failed to keep up despite expediting) effectively behaves at
		// sustained defer rates.
		c.RCU.Qhimark = -1
		s := NewStack(kind, c)
		cache := s.Alloc.NewCache(slabcore.DefaultConfig("filp", 256, c.CPUs))
		r := workload.RunDoS(s.Env(), cache, duration)
		switch kind {
		case KindSLUB:
			res.SLUB = r
		case KindPrudence:
			res.Prudence = r
		}
		s.Close()
	}
	return res, nil
}

// Table renders the comparison.
func (r DoSResult) Table() string {
	t := stats.NewTable("allocator", "survived", "cycles", "OOM after")
	row := func(name string, d workload.DoSResult) {
		oom := "-"
		if d.OOM {
			oom = d.OOMAfter.Truncate(time.Millisecond).String()
		}
		t.AddRow(name, !d.OOM, d.Cycles, oom)
	}
	row("slub", r.SLUB)
	row("prudence", r.Prudence)
	return "§3.4 denial-of-service: open/close flood\n" + t.String()
}
