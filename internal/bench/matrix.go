package bench

import (
	"fmt"

	"prudence/internal/slabcore"
	"prudence/internal/stats"
	gsync "prudence/internal/sync"
	"prudence/internal/workload"

	// Register every backend so an empty scheme list sweeps them all.
	_ "prudence/internal/ebr"
	_ "prudence/internal/hp"
	_ "prudence/internal/nebr"
	_ "prudence/internal/rcu"
)

// MatrixCell is one (scheme, allocator, workload) measurement.
type MatrixCell struct {
	Scheme   string
	Kind     Kind
	Workload string
	// OpsPerSec is the workload's headline rate: malloc/free_deferred
	// pairs for micro, list updates for endurance.
	OpsPerSec float64
	// Stalls counts allocations that had to wait out reclamation
	// (micro only).
	Stalls int
	// GPs is how many grace periods the backend completed during the
	// run — the procrastination rate behind the throughput number.
	GPs uint64
	// OOM reports whether the endurance run hit out-of-memory (the
	// Figure 3 failure mode; micro runs never set it).
	OOM bool
	// PeakPages is the endurance run's high-water arena usage.
	PeakPages int
}

// MatrixResult is the scheme × allocator × workload sweep.
type MatrixResult struct {
	Size      int
	OpsPerCPU int
	CPUs      int
	Cells     []MatrixCell
}

// MatrixWorkloads are the workload axes RunMatrix understands.
var MatrixWorkloads = []string{"micro", "endurance"}

// RunMatrix extends the scaling sweep's methodology across reclamation
// schemes: every registered backend (or the given subset) drives both
// allocators through each workload on an identical machine. The matrix
// answers the question the single-scheme benchmarks cannot: how much of
// Prudence's advantage is the allocator integration itself, and how
// much is the particular grace-period detector behind it.
func RunMatrix(cfg Config, size, opsPerCPU int, schemes, workloads []string) (MatrixResult, error) {
	if len(schemes) == 0 {
		schemes = gsync.Backends()
	}
	if len(workloads) == 0 {
		workloads = MatrixWorkloads
	}
	res := MatrixResult{Size: size, OpsPerCPU: opsPerCPU, CPUs: cfg.CPUs}
	for _, scheme := range schemes {
		if !gsync.Registered(scheme) {
			return res, fmt.Errorf("bench: unknown reclamation scheme %q (registered: %v)", scheme, gsync.Backends())
		}
		for _, wl := range workloads {
			for _, kind := range []Kind{KindSLUB, KindPrudence} {
				cell, err := runMatrixCell(cfg, scheme, wl, kind, size, opsPerCPU)
				if err != nil {
					return res, err
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res, nil
}

func runMatrixCell(cfg Config, scheme, wl string, kind Kind, size, opsPerCPU int) (MatrixCell, error) {
	c := cfg
	c.Scheme = scheme
	if c.PressureWatermark == 0 {
		// As in RunScaling: let the stacks expedite under pressure so
		// cells measure throughput, not reclaim stalls.
		c.PressureWatermark = c.ArenaPages / 2
	}
	s := NewStack(kind, c)
	defer s.Close()
	cell := MatrixCell{Scheme: scheme, Kind: kind, Workload: wl}
	switch wl {
	case "micro":
		cache := s.Alloc.NewCache(slabcore.DefaultConfig(fmt.Sprintf("kmalloc-%d", size), size, c.CPUs))
		r := workload.RunMicro(s.Env(), cache, opsPerCPU)
		cell.OpsPerSec = r.PairsPerSec()
		cell.Stalls = r.Stalls
		cache.Drain()
	case "endurance":
		cache := s.Alloc.NewCache(slabcore.DefaultConfig("endurance-512", 512, c.CPUs))
		r := workload.RunEndurance(s.Env(), cache, workload.EnduranceConfig{
			ListLen: 32,
			Updates: opsPerCPU,
		})
		if r.Elapsed > 0 {
			cell.OpsPerSec = float64(r.Updates) / r.Elapsed.Seconds()
		}
		cell.OOM = r.OOM
		cell.PeakPages = r.PeakPages
		cache.Drain()
	default:
		return cell, fmt.Errorf("bench: unknown matrix workload %q (have %v)", wl, MatrixWorkloads)
	}
	cell.GPs = s.Sync.GPsCompleted()
	return cell, nil
}

// Table renders the matrix grouped by workload.
func (r MatrixResult) Table() string {
	out := fmt.Sprintf("Reclamation matrix: %d CPUs, %d B objects, %d ops/CPU (ops/s, higher is better)\n",
		r.CPUs, r.Size, r.OpsPerCPU)
	for _, wl := range MatrixWorkloads {
		t := stats.NewTable("scheme", "slub ops/s", "prudence ops/s", "ratio", "slub GPs", "prudence GPs", "notes")
		seen := false
		bykey := map[string]MatrixCell{}
		var order []string
		for _, c := range r.Cells {
			if c.Workload != wl {
				continue
			}
			seen = true
			if _, dup := bykey[c.Scheme]; !dup {
				order = append(order, c.Scheme)
			}
			bykey[c.Scheme+"/"+string(c.Kind)] = c
			bykey[c.Scheme] = c
		}
		if !seen {
			continue
		}
		for _, scheme := range order {
			sl := bykey[scheme+"/"+string(KindSLUB)]
			pr := bykey[scheme+"/"+string(KindPrudence)]
			ratio := 0.0
			if sl.OpsPerSec > 0 {
				ratio = pr.OpsPerSec / sl.OpsPerSec
			}
			notes := ""
			if sl.OOM {
				notes += "slub-oom "
			}
			if pr.OOM {
				notes += "prudence-oom"
			}
			t.AddRow(scheme, fmt.Sprintf("%.0f", sl.OpsPerSec), fmt.Sprintf("%.0f", pr.OpsPerSec),
				fmt.Sprintf("%.1fx", ratio), sl.GPs, pr.GPs, notes)
		}
		out += wl + ":\n" + t.String() + "\n"
	}
	return out
}

// Records flattens the matrix for the benchmark-trajectory JSON.
func (r MatrixResult) Records() []Record {
	var out []Record
	for _, c := range r.Cells {
		oom := 0.0
		if c.OOM {
			oom = 1
		}
		label := fmt.Sprintf("{scheme=%s,alloc=%s,workload=%s}", c.Scheme, c.Kind, c.Workload)
		out = append(out,
			Record{Exp: "matrix", Metric: "ops_per_sec" + label, Value: c.OpsPerSec, Unit: "ops/s"},
			Record{Exp: "matrix", Metric: "gps_completed" + label, Value: float64(c.GPs), Unit: "count"},
		)
		if c.Workload == "endurance" {
			out = append(out,
				Record{Exp: "matrix", Metric: "oom" + label, Value: oom, Unit: "bool"},
				Record{Exp: "matrix", Metric: "peak_pages" + label, Value: float64(c.PeakPages), Unit: "pages"},
			)
		}
	}
	return out
}
