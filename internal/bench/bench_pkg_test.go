package bench

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// smallConfig keeps package tests fast; the full-scale runs live in the
// repository-root bench_test.go and cmd/prudence-bench.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.CPUs = 4
	cfg.ArenaPages = 4096
	return cfg
}

func TestNewStackKinds(t *testing.T) {
	for _, kind := range []Kind{KindSLUB, KindPrudence} {
		s := NewStack(kind, smallConfig())
		if s.Alloc.Name() != string(kind) {
			t.Errorf("stack %s has allocator %s", kind, s.Alloc.Name())
		}
		s.Close()
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown kind did not panic")
		}
	}()
	NewStack(Kind("bogus"), smallConfig())
}

func TestRunFig6ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison run")
	}
	if RaceEnabled {
		t.Skip("timing-sensitive comparison; race detector changes the rate balance")
	}
	cfg := smallConfig()
	// Individual sizes (and under host load, even aggregates) are noisy
	// on small machines; this guards against persistent regressions, so
	// a failing sweep gets one retry before it counts.
	var lastMsg string
	for attempt := 0; attempt < 2; attempt++ {
		res, err := RunFig6(cfg, 8000)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(Fig6Sizes) {
			t.Fatalf("%d rows, want %d", len(res.Rows), len(Fig6Sizes))
		}
		if !strings.Contains(res.Table(), "Figure 6") {
			t.Fatal("table missing title")
		}
		var slubAll, pruAll, slubBig, pruBig float64
		for _, row := range res.Rows {
			if row.SLUBPairs <= 0 || row.PrudencePairs <= 0 {
				t.Fatalf("zero rate in row %+v", row)
			}
			slubAll += row.SLUBPairs
			pruAll += row.PrudencePairs
			if row.Size >= 1024 {
				slubBig += row.SLUBPairs
				pruBig += row.PrudencePairs
			}
		}
		switch {
		case pruAll <= slubAll:
			lastMsg = fmt.Sprintf("Prudence behind overall (%.0f vs %.0f):\n%s", pruAll, slubAll, res.Table())
		case pruBig < 0.9*slubBig:
			lastMsg = fmt.Sprintf("Prudence regressed on large objects (%.0f vs %.0f):\n%s", pruBig, slubBig, res.Table())
		default:
			return // shape holds
		}
	}
	t.Error(lastMsg)
}

func TestRunFig3ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison run")
	}
	if RaceEnabled {
		t.Skip("timing-sensitive comparison; race detector changes the rate balance")
	}
	cfg := smallConfig()
	cfg.ArenaPages = 2048 // 8 MiB
	f3 := DefaultFig3Config()
	f3.UpdatesPerCPU = 40000
	res, err := RunFig3(cfg, f3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SLUB.Result.OOM {
		t.Errorf("SLUB did not OOM:\n%s", res.Table())
	}
	if res.Prudence.Result.OOM {
		t.Errorf("Prudence OOMed:\n%s", res.Table())
	}
	if res.Prudence.Series.Len() == 0 || res.SLUB.Series.Len() == 0 {
		t.Error("missing used-memory series")
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "sample,slub_bytes,prudence_bytes\n") {
		t.Error("CSV header wrong")
	}
}

func TestRunCostTableOrdering(t *testing.T) {
	res, err := RunCostTable(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Hit < res.Refill && res.Refill < res.Grow) {
		t.Errorf("cost ordering violated: hit=%v refill=%v grow=%v", res.Hit, res.Refill, res.Grow)
	}
	if res.RefillFactor() < 1.5 {
		t.Errorf("refill only %.1fx a hit (paper: 4x)", res.RefillFactor())
	}
	if res.GrowFactor() < 3 {
		t.Errorf("grow only %.1fx a hit (paper: 14x)", res.GrowFactor())
	}
	if !strings.Contains(res.Table(), "slab cache grow") {
		t.Error("table incomplete")
	}
}

func TestRunDoSShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison run")
	}
	if RaceEnabled {
		t.Skip("timing-sensitive comparison; race detector changes the rate balance")
	}
	// Sizing: the baseline's callback backlog grows without bound, so
	// it exhausts any arena; Prudence's steady-state backlog is about
	// one grace period's worth of deferred objects (~0.75 MiB at this
	// rate), which must fit.
	cfg := smallConfig()
	cfg.ArenaPages = 512 // 2 MiB
	cfg.RCU.Blimit = 4
	cfg.RCU.ThrottleDelay = 2 * time.Millisecond
	res, err := RunDoS(cfg, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SLUB.OOM {
		t.Errorf("SLUB survived the DoS flood:\n%s", res.Table())
	}
	if res.Prudence.OOM {
		t.Errorf("Prudence died under the DoS flood:\n%s", res.Table())
	}
}

func TestRunAppsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison run")
	}
	cfg := smallConfig()
	res, err := RunApps(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Comparisons) != 4 {
		t.Fatalf("%d comparisons, want 4", len(res.Comparisons))
	}
	for _, tbl := range []string{
		res.Fig7Table(), res.Fig8Table(), res.Fig9Table(),
		res.Fig10Table(), res.Fig11Table(), res.Fig12Table(), res.Fig13Table(),
	} {
		if !strings.Contains(tbl, "postmark") {
			t.Errorf("table missing postmark rows:\n%s", tbl)
		}
	}
}

func TestRunAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison run")
	}
	res, err := RunAblation(smallConfig(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("%d ablation rows, want 7", len(res.Rows))
	}
	if res.Rows[0].Variant != "full" || res.Rows[0].VsFull != 1 {
		t.Fatalf("first row should be the full design: %+v", res.Rows[0])
	}
}

func TestRunGPSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison run")
	}
	cfg := smallConfig()
	res, err := RunGPSweep(cfg, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(GPSweepIntervals) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Memory footprints grow with the grace-period interval for both
	// allocators (more in-flight deferred objects per GP).
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.PrudPeakKiB < first.PrudPeakKiB {
		t.Errorf("Prudence peak shrank with longer GPs: %v", res.Rows)
	}
	if !strings.Contains(res.Table(), "Grace-period") {
		t.Error("table title missing")
	}
	for _, row := range res.Rows {
		if row.SLUBPairs <= 0 || row.PrudencePairs <= 0 {
			t.Fatalf("zero rate: %+v", row)
		}
	}
}

func TestRunAppsMedianAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison run")
	}
	cfg := smallConfig()
	res, err := RunAppsMedian(cfg, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Comparisons) != 4 {
		t.Fatalf("%d comparisons", len(res.Comparisons))
	}
	for _, cmp := range res.Comparisons {
		if cmp.SLUB.TxnPerSec() <= 0 || cmp.Prudence.TxnPerSec() <= 0 {
			t.Fatalf("%s: non-positive median rate", cmp.Profile.Name)
		}
	}
	// repeats < 1 clamps to one run.
	if _, err := RunAppsMedian(cfg, 100, 0); err != nil {
		t.Fatal(err)
	}
}
