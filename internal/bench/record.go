package bench

import (
	"encoding/json"
	"fmt"
	"io"
)

// Record is one machine-readable measurement: experiment name, metric
// name (including any qualifiers like allocator or CPU count), value
// and unit. cmd/prudence-bench's -json flag emits a list of these so
// the performance trajectory of the repository can be tracked across
// PRs (BENCH_PR2.json holds the first baseline-vs-after pair).
type Record struct {
	Exp    string  `json:"exp"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
}

// WriteRecords writes records as indented JSON.
func WriteRecords(w io.Writer, records []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// Records flattens the scaling sweep.
func (r ScalingResult) Records() []Record {
	var out []Record
	for _, p := range r.Points {
		out = append(out,
			Record{Exp: "scaling", Metric: fmt.Sprintf("slub_pairs_per_sec{cpus=%d,size=%d}", p.CPUs, r.Size), Value: p.SLUBPairs, Unit: "pairs/s"},
			Record{Exp: "scaling", Metric: fmt.Sprintf("prudence_pairs_per_sec{cpus=%d,size=%d}", p.CPUs, r.Size), Value: p.PrudencePairs, Unit: "pairs/s"},
		)
	}
	return out
}

// Records flattens the Figure 6 sweep.
func (r Fig6Result) Records() []Record {
	var out []Record
	for _, row := range r.Rows {
		out = append(out,
			Record{Exp: "fig6", Metric: fmt.Sprintf("slub_pairs_per_sec{size=%d}", row.Size), Value: row.SLUBPairs, Unit: "pairs/s"},
			Record{Exp: "fig6", Metric: fmt.Sprintf("prudence_pairs_per_sec{size=%d}", row.Size), Value: row.PrudencePairs, Unit: "pairs/s"},
			Record{Exp: "fig6", Metric: fmt.Sprintf("speedup{size=%d}", row.Size), Value: row.Speedup, Unit: "ratio"},
		)
	}
	return out
}
