//go:build race

package bench

// RaceEnabled reports whether the race detector is compiled in.
const RaceEnabled = true
