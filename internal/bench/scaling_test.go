package bench

import (
	"strings"
	"testing"
)

func TestDefaultScalingCPUs(t *testing.T) {
	got := DefaultScalingCPUs(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("DefaultScalingCPUs(8) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DefaultScalingCPUs(8) = %v, want %v", got, want)
		}
	}
	// Non-power-of-two max appears as the final point.
	got = DefaultScalingCPUs(6)
	if got[len(got)-1] != 6 {
		t.Fatalf("DefaultScalingCPUs(6) = %v, want final point 6", got)
	}
}

func TestRunScalingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison run")
	}
	res, err := RunScaling(smallConfig(), 512, 4000, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.SLUBPairs <= 0 || p.PrudencePairs <= 0 {
			t.Fatalf("non-positive throughput at %d CPUs: %+v", p.CPUs, p)
		}
	}
	if !strings.Contains(res.Table(), "Scaling") {
		t.Fatal("table missing title")
	}
	recs := res.Records()
	if len(recs) != 4 {
		t.Fatalf("%d records, want 4", len(recs))
	}
	for _, r := range recs {
		if r.Exp != "scaling" || r.Value <= 0 || r.Unit != "pairs/s" {
			t.Fatalf("malformed record %+v", r)
		}
	}
	if _, err := RunScaling(smallConfig(), 512, 100, []int{0}); err == nil {
		t.Fatal("non-positive CPU count accepted")
	}
}
