// Package bench is the experiment harness: one runner per table/figure
// of the paper's evaluation (§3.5 and §5), each building identical
// simulated machines for the SLUB baseline and Prudence, running the
// matching workload from internal/workload, and reporting paper-style
// rows/series. cmd/prudence-bench and the repository's bench_test.go are
// thin wrappers over these runners.
//
// Absolute numbers differ from the paper (user-space simulation vs a
// 64-thread Xeon kernel); the reproduced quantity is the *shape*: who
// wins, roughly by how much, and in which direction each per-cache
// metric moves. EXPERIMENTS.md records paper-vs-measured for every
// figure.
package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"prudence/internal/alloc"
	"prudence/internal/core"
	"prudence/internal/memarena"
	"prudence/internal/metrics"
	"prudence/internal/pagealloc"
	"prudence/internal/rcu"
	"prudence/internal/slub"
	gsync "prudence/internal/sync"
	"prudence/internal/vcpu"
	"prudence/internal/workload"
)

// Kind selects the allocator under test.
type Kind string

// Allocator kinds.
const (
	KindSLUB     Kind = "slub"
	KindPrudence Kind = "prudence"
)

// Config parameterizes a simulated machine for one experiment run.
type Config struct {
	CPUs       int
	ArenaPages int
	// Arena selects the memory backend behind the arena by registered
	// name ("heap", and "mmap" on Linux); empty means memarena's
	// default. Experiments comparing backends hold everything else
	// fixed and vary only this.
	Arena string
	// Scheme selects the reclamation backend by registered name; empty
	// means "rcu", built directly from the RCU options below. Other
	// schemes (ebr, hp, nebr) are resolved through the internal/sync
	// registry, deriving their options from the RCU ones where they
	// translate (grace-period interval, batch, throttle).
	Scheme string
	RCU    rcu.Options
	// Prudence carries the ablation toggles (ignored for SLUB).
	Prudence core.Options
	// PressureWatermark arms the page allocator's memory pressure
	// notification at this used-page count and wires it to the RCU
	// engine's expediting (§3.5's kernel behaviour: "RCU attempts to
	// process more deferred objects as the memory pressure increases").
	// Zero means the default of 3/4 of the arena; negative disables.
	PressureWatermark int
	// MetricsTo, when non-nil, receives a Prometheus-format dump of the
	// stack's metrics registry when the stack is closed.
	MetricsTo io.Writer
	// DisablePreZero turns off idle-time page pre-zeroing (both kinds
	// get it by default, keeping the SLUB-vs-Prudence comparison fair).
	DisablePreZero bool
}

// DefaultConfig returns the machine used by the experiments: 8 virtual
// CPUs (scaled down from the paper's 64 hardware threads) and a 64 MiB
// arena, with kernel-flavoured RCU settings.
func DefaultConfig() Config {
	return Config{
		CPUs:       8,
		ArenaPages: 16384, // 64 MiB of 4 KiB pages
		RCU: rcu.Options{
			Blimit:          10,
			ExpeditedBlimit: 300,
			// 10 callbacks per 20µs per CPU ≈ 500k/s: application-rate
			// deferred frees are processed promptly (as kernel softirq
			// does), while allocator-saturating workloads still outrun
			// it and expose the §3 pathologies.
			ThrottleDelay:  20 * time.Microsecond,
			MinGPInterval:  500 * time.Microsecond,
			QSPollInterval: 20 * time.Microsecond,
		},
	}
}

// Stack is a fully assembled simulated machine plus allocator.
type Stack struct {
	Kind   Kind
	Scheme string
	// ArenaName is the memory backend behind Arena.
	ArenaName string
	Arena     *memarena.Arena
	Pages     *pagealloc.Allocator
	Machine   *vcpu.Machine
	// Sync is the reclamation backend every layer shares. RCU aliases
	// it when (and only when) Scheme is "rcu" — the figure runners that
	// introspect engine internals (Fig. 3's backlog) use it and must
	// nil-check.
	Sync  gsync.Backend
	RCU   *rcu.RCU
	Alloc alloc.Allocator
	// Reg collects every layer's metrics; WriteMetrics scrapes it.
	Reg *metrics.Registry

	metricsTo io.Writer
	zeroer    *pagealloc.Zeroer
}

// NewStack builds a machine and allocator of the given kind, backed by
// cfg.Scheme's reclamation backend.
func NewStack(kind Kind, cfg Config) *Stack {
	if cfg.Scheme == "" {
		cfg.Scheme = "rcu"
	}
	if cfg.Arena == "" {
		cfg.Arena = os.Getenv("PRUDENCE_ARENA")
	}
	if cfg.Arena == "" {
		cfg.Arena = memarena.DefaultBackend
	}
	s := &Stack{Kind: kind, Scheme: cfg.Scheme, ArenaName: cfg.Arena, metricsTo: cfg.MetricsTo}
	arena, err := memarena.NewBackend(cfg.Arena, cfg.ArenaPages)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	s.Arena = arena
	s.Pages = pagealloc.New(s.Arena)
	s.Machine = vcpu.NewMachine(cfg.CPUs)
	if cfg.Scheme == "rcu" {
		// Build directly so the full rcu.Options surface (expedited
		// blimit, QS poll) keeps applying, not just the subset the
		// registry factory maps.
		s.RCU = rcu.New(s.Machine, cfg.RCU)
		s.Sync = s.RCU
	} else {
		backend, err := gsync.New(cfg.Scheme, s.Machine, gsync.Options{
			GPInterval:      cfg.RCU.MinGPInterval,
			PollInterval:    cfg.RCU.QSPollInterval,
			RetireBatch:     cfg.RCU.Blimit,
			RetireDelay:     cfg.RCU.ThrottleDelay,
			ExpeditedBlimit: cfg.RCU.ExpeditedBlimit,
			Qhimark:         cfg.RCU.Qhimark,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		s.Sync = backend
	}
	if cfg.PressureWatermark == 0 {
		cfg.PressureWatermark = cfg.ArenaPages * 3 / 4
	}
	if cfg.PressureWatermark > 0 {
		if ps, ok := s.Sync.(gsync.PressureSetter); ok {
			s.Pages.OnPressure(ps.SetPressure)
		}
		s.Pages.SetPressureWatermark(cfg.PressureWatermark)
	}
	switch kind {
	case KindSLUB:
		s.Alloc = slub.New(s.Pages, s.Sync, cfg.CPUs)
	case KindPrudence:
		s.Alloc = core.New(s.Pages, s.Sync, s.Machine, cfg.Prudence)
	default:
		panic(fmt.Sprintf("bench: unknown allocator kind %q", kind))
	}
	if !cfg.DisablePreZero {
		s.zeroer = pagealloc.StartPreZero(s.Pages, s.Machine)
	}
	s.Reg = metrics.NewRegistry()
	s.Pages.RegisterMetrics(s.Reg)
	s.Sync.RegisterMetrics(s.Reg)
	s.Alloc.RegisterMetrics(s.Reg)
	s.Machine.RegisterMetrics(s.Reg)
	return s
}

// WriteMetrics scrapes the stack's registry in Prometheus text format.
func (s *Stack) WriteMetrics(w io.Writer) error {
	return s.Reg.WritePrometheus(w)
}

// Env returns the workload environment view of the stack.
func (s *Stack) Env() workload.Env {
	return workload.Env{Machine: s.Machine, Sync: s.Sync, Pages: s.Pages}
}

// Close tears the stack down, dumping the metrics registry first if the
// config asked for it.
func (s *Stack) Close() {
	if s.metricsTo != nil {
		fmt.Fprintf(s.metricsTo, "# stack %s final metrics\n", s.Kind)
		s.WriteMetrics(s.metricsTo)
	}
	if s.zeroer != nil {
		s.zeroer.Stop()
	}
	s.Sync.Stop()
	s.Machine.Stop()
	s.Arena.Close()
}

// both runs fn against a fresh stack of each kind and returns the
// results keyed by kind.
func both(cfg Config, fn func(s *Stack) error) (map[Kind]*Stack, error) {
	out := map[Kind]*Stack{}
	for _, kind := range []Kind{KindSLUB, KindPrudence} {
		s := NewStack(kind, cfg)
		if err := fn(s); err != nil {
			s.Close()
			for _, other := range out {
				other.Close()
			}
			return nil, fmt.Errorf("%s: %w", kind, err)
		}
		out[kind] = s
	}
	return out, nil
}
