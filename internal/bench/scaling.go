package bench

import (
	"fmt"

	"prudence/internal/slabcore"
	"prudence/internal/stats"
	"prudence/internal/workload"
)

// ScalingPoint is one CPU count of the contention sweep.
type ScalingPoint struct {
	CPUs          int
	SLUBPairs     float64 // pairs/sec, all CPUs combined
	PrudencePairs float64
	SLUBStalls    int
}

// ScalingResult is the pairs/s-vs-CPU-count curve for both allocators.
type ScalingResult struct {
	Size        int
	PairsPerCPU int
	Points      []ScalingPoint
}

// DefaultScalingCPUs returns the CPU counts of the sweep: powers of two
// from 1 up to and including max.
func DefaultScalingCPUs(max int) []int {
	var out []int
	for n := 1; n < max; n *= 2 {
		out = append(out, n)
	}
	return append(out, max)
}

// RunScaling measures the Figure 6 micro-benchmark (kmalloc/
// kfree_deferred pairs per second, one tight loop per CPU) at each CPU
// count, under both allocators. Unlike RunFig6, which sweeps object
// size at a fixed machine width, this sweeps machine width at a fixed
// object size: the curve exposes hot-path serialization (per-CPU cache
// locks, node-lock traffic, the buddy-allocator lock) that a
// single-width run hides. The total pair count is held proportional to
// the CPU count so each point measures per-CPU cost under increasing
// cross-CPU interference.
func RunScaling(cfg Config, size, pairsPerCPU int, cpuCounts []int) (ScalingResult, error) {
	if len(cpuCounts) == 0 {
		cpuCounts = DefaultScalingCPUs(cfg.CPUs)
	}
	res := ScalingResult{Size: size, PairsPerCPU: pairsPerCPU}
	for _, n := range cpuCounts {
		if n <= 0 {
			return res, fmt.Errorf("bench: non-positive CPU count %d in scaling sweep", n)
		}
		pt := ScalingPoint{CPUs: n}
		for _, kind := range []Kind{KindSLUB, KindPrudence} {
			c := cfg
			c.CPUs = n
			if c.PressureWatermark == 0 {
				// As in RunFig6: let the baseline expedite under
				// pressure so it measures throughput, not reclaim
				// stalls.
				c.PressureWatermark = c.ArenaPages / 2
			}
			s := NewStack(kind, c)
			cache := s.Alloc.NewCache(slabcore.DefaultConfig(fmt.Sprintf("kmalloc-%d", size), size, n))
			r := workload.RunMicro(s.Env(), cache, pairsPerCPU)
			switch kind {
			case KindSLUB:
				pt.SLUBPairs = r.PairsPerSec()
				pt.SLUBStalls = r.Stalls
			case KindPrudence:
				pt.PrudencePairs = r.PairsPerSec()
			}
			cache.Drain()
			s.Close()
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Table renders the curve.
func (r ScalingResult) Table() string {
	t := stats.NewTable("cpus", "slub pairs/s", "prudence pairs/s", "speedup", "slub stalls")
	for _, p := range r.Points {
		speedup := 0.0
		if p.SLUBPairs > 0 {
			speedup = p.PrudencePairs / p.SLUBPairs
		}
		t.AddRow(p.CPUs, fmt.Sprintf("%.0f", p.SLUBPairs), fmt.Sprintf("%.0f", p.PrudencePairs),
			fmt.Sprintf("%.1fx", speedup), p.SLUBStalls)
	}
	return fmt.Sprintf("Scaling: %d B kmalloc/kfree_deferred pairs per second vs CPU count (higher is better)\n%s", r.Size, t.String())
}
