package bench

import (
	"fmt"
	"time"

	"prudence/internal/slabcore"
	"prudence/internal/stats"
)

// CostResult reports the relative cost of the three allocation paths
// (§3.3: "object allocation cost, compared to cache hit, is 4x
// expensive if it involves object cache refill and 14x expensive if it
// involves slab cache grow").
type CostResult struct {
	Hit    time.Duration // allocation served from the object cache
	Refill time.Duration // allocation requiring an object cache refill
	Grow   time.Duration // allocation requiring a slab cache grow
}

// RefillFactor returns Refill/Hit.
func (c CostResult) RefillFactor() float64 { return ratio(c.Refill, c.Hit) }

// GrowFactor returns Grow/Hit.
func (c CostResult) GrowFactor() float64 { return ratio(c.Grow, c.Hit) }

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// RunCostTable measures the three allocation paths on the baseline
// allocator with single-CPU access, isolating path cost from
// contention.
func RunCostTable(cfg Config) (CostResult, error) {
	cfg.CPUs = 1
	s := NewStack(KindSLUB, cfg)
	defer s.Close()
	ccfg := slabcore.DefaultConfig("cost", 256, 1)
	cache := s.Alloc.NewCache(ccfg)
	var res CostResult

	const rounds = 3000

	// Path 1 — cache hit: free then immediately allocate; the object
	// cache never empties.
	warm, err := cache.Malloc(0)
	if err != nil {
		return res, err
	}
	cache.Free(0, warm)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		r, err := cache.Malloc(0)
		if err != nil {
			return res, err
		}
		cache.Free(0, r)
	}
	res.Hit = time.Since(start) / (2 * rounds) // per malloc+free pair, halved

	// Path 2 — refill: drain the object cache fully each round so the
	// timed allocation must refill from the node partial list.
	batch := make([]slabcore.Ref, 0, ccfg.CacheSize+1)
	// Pre-populate node lists with enough partial slabs.
	var prime []slabcore.Ref
	for i := 0; i < ccfg.ObjectsPerSlab()*4; i++ {
		r, err := cache.Malloc(0)
		if err != nil {
			return res, err
		}
		prime = append(prime, r)
	}
	for _, r := range prime {
		cache.Free(0, r)
	}
	var refillTotal time.Duration
	refills := 0
	for i := 0; i < rounds/10; i++ {
		// Empty the per-CPU cache (these are hits).
		batch = batch[:0]
		for {
			before := cache.Counters().Refills.Load()
			t0 := time.Now()
			r, err := cache.Malloc(0)
			dt := time.Since(t0)
			if err != nil {
				return res, err
			}
			batch = append(batch, r)
			if cache.Counters().Refills.Load() > before {
				refillTotal += dt
				refills++
				break
			}
			if len(batch) > 4*ccfg.CacheSize {
				break
			}
		}
		for _, r := range batch {
			cache.Free(0, r)
		}
	}
	if refills > 0 {
		res.Refill = refillTotal / time.Duration(refills)
	}

	// Path 3 — grow: drain the whole cache so allocation must get fresh
	// pages from the buddy allocator.
	cache.Drain()
	var growTotal time.Duration
	grows := 0
	for i := 0; i < rounds/10; i++ {
		before := cache.Counters().Grows.Load()
		t0 := time.Now()
		r, err := cache.Malloc(0)
		dt := time.Since(t0)
		if err != nil {
			return res, err
		}
		if cache.Counters().Grows.Load() > before {
			growTotal += dt
			grows++
		}
		cache.Free(0, r)
		cache.Drain() // force the next allocation to grow again
	}
	if grows > 0 {
		res.Grow = growTotal / time.Duration(grows)
	}
	return res, nil
}

// Table renders the §3.3 cost comparison.
func (c CostResult) Table() string {
	t := stats.NewTable("path", "latency", "vs hit", "paper")
	t.AddRow("object cache hit", c.Hit.String(), "1.0x", "1x")
	t.AddRow("object cache refill", c.Refill.String(), fmt.Sprintf("%.1fx", c.RefillFactor()), "4x")
	t.AddRow("slab cache grow", c.Grow.String(), fmt.Sprintf("%.1fx", c.GrowFactor()), "14x")
	return "§3.3 allocation path costs\n" + t.String()
}
