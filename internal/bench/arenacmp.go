package bench

import (
	"fmt"
	"runtime"

	"prudence/internal/memarena"
	"prudence/internal/slabcore"
	"prudence/internal/stats"
	"prudence/internal/workload"
)

// ArenaCell is one (arena, scheme, allocator, workload) measurement,
// annotated with the Go runtime's view of the run. The workload-facing
// fields mirror MatrixCell; the MemStats fields are what the arena
// backends are supposed to change.
type ArenaCell struct {
	Arena    string
	Scheme   string
	Kind     Kind
	Workload string

	OpsPerSec float64
	Stalls    int
	GPs       uint64
	OOM       bool
	PeakPages int

	// LiveHeapInuse is runtime.MemStats.HeapInuse sampled after a forced
	// collection while the arena is still mapped. A heap arena's backing
	// array is live heap and shows up here; an mmap arena's pages are
	// invisible to the runtime, so the number stays near the baseline.
	LiveHeapInuse uint64
	// NumGC and PauseNs are the collection count and total stop-the-world
	// pause accumulated across the cell's run (stack build + workload +
	// the forced sample collection, identically for every backend).
	NumGC   uint32
	PauseNs uint64
}

// ArenaCompareResult is the arena × scheme × allocator × workload sweep.
type ArenaCompareResult struct {
	Size      int
	OpsPerCPU int
	CPUs      int
	Arenas    []string
	Cells     []ArenaCell
}

// RunArenaCompare reruns the reclamation matrix once per arena backend,
// holding machine, scheme, and workload fixed so the only variable is
// where the arena's bytes live. Alongside throughput it records the GC
// metrics that justify the mmap backend: live heap occupied by the
// arena, collections triggered, and pause time. Empty slices mean "all
// registered" (arenas available on this platform, schemes, workloads).
func RunArenaCompare(cfg Config, size, opsPerCPU int, arenas, schemes, workloads []string) (ArenaCompareResult, error) {
	if len(arenas) == 0 {
		arenas = memarena.Backends()
	}
	if len(schemes) == 0 {
		schemes = []string{"rcu"}
	}
	if len(workloads) == 0 {
		workloads = MatrixWorkloads
	}
	res := ArenaCompareResult{Size: size, OpsPerCPU: opsPerCPU, CPUs: cfg.CPUs, Arenas: arenas}
	for _, arena := range arenas {
		if !memarena.BackendAvailable(arena) {
			return res, fmt.Errorf("bench: unknown arena backend %q (available: %v)", arena, memarena.Backends())
		}
		for _, scheme := range schemes {
			for _, wl := range workloads {
				for _, kind := range []Kind{KindSLUB, KindPrudence} {
					cell, err := runArenaCell(cfg, arena, scheme, wl, kind, size, opsPerCPU)
					if err != nil {
						return res, err
					}
					res.Cells = append(res.Cells, cell)
				}
			}
		}
	}
	return res, nil
}

func runArenaCell(cfg Config, arena, scheme, wl string, kind Kind, size, opsPerCPU int) (ArenaCell, error) {
	c := cfg
	c.Arena = arena
	c.Scheme = scheme
	if c.PressureWatermark == 0 {
		c.PressureWatermark = c.ArenaPages / 2
	}
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	s := NewStack(kind, c)
	defer s.Close()
	cell := ArenaCell{Arena: arena, Scheme: scheme, Kind: kind, Workload: wl}
	switch wl {
	case "micro":
		cache := s.Alloc.NewCache(slabcore.DefaultConfig(fmt.Sprintf("kmalloc-%d", size), size, c.CPUs))
		r := workload.RunMicro(s.Env(), cache, opsPerCPU)
		cell.OpsPerSec = r.PairsPerSec()
		cell.Stalls = r.Stalls
		cache.Drain()
	case "endurance":
		cache := s.Alloc.NewCache(slabcore.DefaultConfig("endurance-512", 512, c.CPUs))
		r := workload.RunEndurance(s.Env(), cache, workload.EnduranceConfig{
			ListLen: 32,
			Updates: opsPerCPU,
		})
		if r.Elapsed > 0 {
			cell.OpsPerSec = float64(r.Updates) / r.Elapsed.Seconds()
		}
		cell.OOM = r.OOM
		cell.PeakPages = r.PeakPages
		cache.Drain()
	default:
		return cell, fmt.Errorf("bench: unknown arena-compare workload %q (have %v)", wl, MatrixWorkloads)
	}
	cell.GPs = s.Sync.GPsCompleted()
	// Sample with the arena still mapped: after a forced collection,
	// HeapInuse retains a heap arena's backing array but not mmap pages.
	runtime.GC()
	var live runtime.MemStats
	runtime.ReadMemStats(&live)
	cell.LiveHeapInuse = live.HeapInuse
	cell.NumGC = live.NumGC - before.NumGC
	cell.PauseNs = live.PauseTotalNs - before.PauseTotalNs
	return cell, nil
}

// cellKey indexes a cell within one workload's group.
func (r ArenaCompareResult) cell(arena, scheme, wl string, kind Kind) (ArenaCell, bool) {
	for _, c := range r.Cells {
		if c.Arena == arena && c.Scheme == scheme && c.Workload == wl && c.Kind == kind {
			return c, true
		}
	}
	return ArenaCell{}, false
}

// Table renders the comparison grouped by workload: one row per
// (scheme, allocator), one column group per arena backend.
func (r ArenaCompareResult) Table() string {
	out := fmt.Sprintf("Arena comparison: %d CPUs, %d B objects, %d ops/CPU (ops/s, higher is better)\n",
		r.CPUs, r.Size, r.OpsPerCPU)
	for _, wl := range MatrixWorkloads {
		cols := []string{"scheme", "alloc"}
		for _, a := range r.Arenas {
			cols = append(cols, a+" ops/s", a+" heap MiB", a+" GCs", a+" pause µs")
		}
		if len(r.Arenas) == 2 {
			cols = append(cols, "ratio")
		}
		t := stats.NewTable(cols...)
		seen := false
		var schemes []string
		inScheme := map[string]bool{}
		for _, c := range r.Cells {
			if c.Workload == wl && !inScheme[c.Scheme] {
				inScheme[c.Scheme] = true
				schemes = append(schemes, c.Scheme)
			}
		}
		for _, scheme := range schemes {
			for _, kind := range []Kind{KindSLUB, KindPrudence} {
				row := []any{scheme, string(kind)}
				var ops []float64
				found := false
				for _, a := range r.Arenas {
					c, ok := r.cell(a, scheme, wl, kind)
					if !ok {
						row = append(row, "-", "-", "-", "-")
						ops = append(ops, 0)
						continue
					}
					found = true
					row = append(row,
						fmt.Sprintf("%.0f", c.OpsPerSec),
						fmt.Sprintf("%.1f", float64(c.LiveHeapInuse)/(1<<20)),
						c.NumGC,
						fmt.Sprintf("%.0f", float64(c.PauseNs)/1e3))
					ops = append(ops, c.OpsPerSec)
				}
				if !found {
					continue
				}
				seen = true
				if len(r.Arenas) == 2 {
					ratio := 0.0
					if ops[0] > 0 {
						ratio = ops[1] / ops[0]
					}
					row = append(row, fmt.Sprintf("%.2fx", ratio))
				}
				t.AddRow(row...)
			}
		}
		if seen {
			out += wl + ":\n" + t.String() + "\n"
		}
	}
	return out
}

// Records flattens the comparison for the benchmark-trajectory JSON.
func (r ArenaCompareResult) Records() []Record {
	var out []Record
	for _, c := range r.Cells {
		label := fmt.Sprintf("{arena=%s,scheme=%s,alloc=%s,workload=%s}", c.Arena, c.Scheme, c.Kind, c.Workload)
		out = append(out,
			Record{Exp: "arenacmp", Metric: "ops_per_sec" + label, Value: c.OpsPerSec, Unit: "ops/s"},
			Record{Exp: "arenacmp", Metric: "live_heap_inuse" + label, Value: float64(c.LiveHeapInuse), Unit: "bytes"},
			Record{Exp: "arenacmp", Metric: "num_gc" + label, Value: float64(c.NumGC), Unit: "count"},
			Record{Exp: "arenacmp", Metric: "gc_pause_ns" + label, Value: float64(c.PauseNs), Unit: "ns"},
		)
		if c.Workload == "endurance" {
			oom := 0.0
			if c.OOM {
				oom = 1
			}
			out = append(out,
				Record{Exp: "arenacmp", Metric: "oom" + label, Value: oom, Unit: "bool"},
				Record{Exp: "arenacmp", Metric: "peak_pages" + label, Value: float64(c.PeakPages), Unit: "pages"},
			)
		}
	}
	return out
}
