package bench

import (
	"fmt"
	"time"

	"prudence/internal/slabcore"
	"prudence/internal/stats"
	"prudence/internal/workload"
)

// Fig3Config parameterizes the endurance experiment.
type Fig3Config struct {
	// ObjectSize is 512 bytes in the paper.
	ObjectSize int
	// ListLen is each CPU's private list length.
	ListLen int
	// UpdatesPerCPU bounds the run.
	UpdatesPerCPU int
	// SampleEvery is the used-memory sampling period (paper: 10 ms).
	SampleEvery time.Duration
	// PacePerUpdate bounds the per-CPU update rate so that the paper's
	// equilibrium is visible: demand times grace-period latency must
	// fit the arena for Prudence, while still exceeding the baseline's
	// callback-processing rate.
	PacePerUpdate time.Duration
	// MetricsEvery, when positive and Config.MetricsTo is set, dumps
	// the stack's metrics registry at this period during the run —
	// the backlog/latency series behind Figure 3, live.
	MetricsEvery time.Duration
}

// DefaultFig3Config scales the paper's 196-second, 252 GB run down to
// seconds and megabytes while preserving the dynamics: the deferred-free
// rate exceeds the baseline's maximum callback-processing rate, so SLUB's
// backlog grows without bound while Prudence recycles after each grace
// period.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		ObjectSize:    512,
		ListLen:       64,
		UpdatesPerCPU: 60000,
		SampleEvery:   time.Millisecond,
		// Flat out: the paper's workload "continuously performs linked
		// list update operations on all the CPUs". (Pacing can show a
		// below-capacity Prudence plateau, but sleep granularity makes
		// paced rates unreliable on small hosts; pass -pace to
		// cmd/prudence-endurance to experiment.)
		PacePerUpdate: 0,
	}
}

// Fig3Side is one allocator's trace.
type Fig3Side struct {
	Series     stats.Series
	Result     workload.EnduranceResult
	GPs        uint64
	CBBacklog  int64 // max RCU callback backlog (SLUB only)
	PeakBytes  int64
	FinalBytes int64
}

// Fig3Result is the two-line plot of Figure 3.
type Fig3Result struct {
	SLUB     *Fig3Side
	Prudence *Fig3Side
	Config   Fig3Config
}

// RunFig3 reproduces Figure 3 / §3.5 / §5.5: per-CPU linked-list update
// storms with 512 B objects. The baseline's RCU callback processing is
// rate-limited (even when expedited under memory pressure), as the
// kernel's is, so its used memory ramps to OOM; Prudence reaches
// equilibrium.
func RunFig3(cfg Config, f3 Fig3Config) (Fig3Result, error) {
	res := Fig3Result{Config: f3}
	for _, kind := range []Kind{KindSLUB, KindPrudence} {
		c := cfg
		// Kernel-style behaviour under pressure: expedite at 75% used.
		if c.PressureWatermark == 0 {
			c.PressureWatermark = c.ArenaPages * 3 / 4
		}
		// The endurance point requires the baseline's processing rate to
		// be bounded below the defer rate even when expedited ("Despite
		// this, RCU fails to keep up", §3.5). Scale the kernel's
		// blimit-style throttle accordingly.
		c.RCU.ThrottleDelay = 200 * time.Microsecond
		if c.RCU.ExpeditedDelay == 0 {
			c.RCU.ExpeditedDelay = c.RCU.ThrottleDelay
		}
		if c.RCU.ExpeditedBlimit == 0 || c.RCU.ExpeditedBlimit > 2*c.RCU.Blimit {
			c.RCU.ExpeditedBlimit = 2 * c.RCU.Blimit
		}
		// Model deployed throttling: keep batch limits in force even
		// when the backlog is huge, as the paper's kernel (which still
		// failed to keep up despite expediting) effectively behaves at
		// sustained defer rates.
		c.RCU.Qhimark = -1
		s := NewStack(kind, c)
		cache := s.Alloc.NewCache(slabcore.DefaultConfig("list-512", f3.ObjectSize, c.CPUs))

		side := &Fig3Side{}
		stopSampler := make(chan struct{})
		samplerDone := make(chan struct{})
		go func() {
			defer close(samplerDone)
			tick := time.NewTicker(f3.SampleEvery)
			defer tick.Stop()
			var metricsTick <-chan time.Time
			if f3.MetricsEvery > 0 && c.MetricsTo != nil {
				mt := time.NewTicker(f3.MetricsEvery)
				defer mt.Stop()
				metricsTick = mt.C
			}
			for {
				select {
				case <-stopSampler:
					return
				case <-tick.C:
					side.Series.Add(float64(s.Arena.UsedBytes()))
				case <-metricsTick:
					fmt.Fprintf(c.MetricsTo, "# stack %s periodic metrics\n", kind)
					s.WriteMetrics(c.MetricsTo)
				}
			}
		}()

		side.Result = workload.RunEndurance(s.Env(), cache, workload.EnduranceConfig{
			ListLen:       f3.ListLen,
			Updates:       f3.UpdatesPerCPU,
			PacePerUpdate: f3.PacePerUpdate,
		})
		close(stopSampler)
		<-samplerDone
		side.GPs = s.Sync.GPsCompleted()
		if s.RCU != nil { // engine-internal: callback backlog is rcu-only
			side.CBBacklog = s.RCU.Stats().MaxBacklog
		}
		side.PeakBytes = int64(s.Arena.PeakPages()) * 4096
		side.FinalBytes = s.Arena.UsedBytes()
		switch kind {
		case KindSLUB:
			res.SLUB = side
		case KindPrudence:
			res.Prudence = side
		}
		s.Close()
	}
	return res, nil
}

// Table summarizes the run; the full series is available for plotting
// via CSV (cmd/prudence-endurance).
func (r Fig3Result) Table() string {
	t := stats.NewTable("allocator", "OOM", "OOM after", "updates done", "peak MiB", "final MiB", "max cb backlog", "GPs")
	row := func(name string, s *Fig3Side) {
		oomAfter := "-"
		if s.Result.OOM {
			oomAfter = s.Result.OOMAfter.Truncate(time.Millisecond).String()
		}
		t.AddRow(name, s.Result.OOM, oomAfter, s.Result.Updates,
			fmt.Sprintf("%.1f", float64(s.PeakBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(s.FinalBytes)/(1<<20)),
			s.CBBacklog, s.GPs)
	}
	row("slub", r.SLUB)
	row("prudence", r.Prudence)
	return "Figure 3: endurance under per-CPU list-update storm (512 B objects)\n" + t.String()
}

// CSV renders both used-memory series as "ms,slub_bytes,prudence_bytes"
// rows (series lengths may differ; missing cells are blank).
func (r Fig3Result) CSV() string {
	a := r.SLUB.Series.Points()
	b := r.Prudence.Series.Points()
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := "sample,slub_bytes,prudence_bytes\n"
	for i := 0; i < n; i++ {
		va, vb := "", ""
		if i < len(a) {
			va = fmt.Sprintf("%.0f", a[i].V)
		}
		if i < len(b) {
			vb = fmt.Sprintf("%.0f", b[i].V)
		}
		out += fmt.Sprintf("%d,%s,%s\n", i, va, vb)
	}
	return out
}
