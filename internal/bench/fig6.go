package bench

import (
	"fmt"

	"prudence/internal/slabcore"
	"prudence/internal/stats"
	"prudence/internal/workload"
)

// Fig6Sizes are the allocation sizes of the paper's micro-benchmark.
var Fig6Sizes = []int{64, 128, 256, 512, 1024, 2048, 4096}

// Fig6Row is one bar group of Figure 6.
type Fig6Row struct {
	Size          int
	SLUBPairs     float64 // pairs/sec
	PrudencePairs float64 // pairs/sec
	SLUBStalls    int
	Speedup       float64 // Prudence / SLUB
}

// Fig6Result is the full micro-benchmark sweep.
type Fig6Result struct {
	Rows        []Fig6Row
	PairsPerCPU int
}

// RunFig6 reproduces Figure 6: kmalloc()/kfree_deferred() pairs per
// second for each object size, on all CPUs, under both allocators.
func RunFig6(cfg Config, pairsPerCPU int) (Fig6Result, error) {
	res := Fig6Result{PairsPerCPU: pairsPerCPU}
	for _, size := range Fig6Sizes {
		row := Fig6Row{Size: size}
		for _, kind := range []Kind{KindSLUB, KindPrudence} {
			c := cfg
			if c.PressureWatermark == 0 {
				// Let the baseline expedite under pressure, as the
				// kernel does; without this SLUB spends the whole run
				// in reclaim stalls.
				c.PressureWatermark = c.ArenaPages / 2
			}
			s := NewStack(kind, c)
			cache := s.Alloc.NewCache(slabcore.DefaultConfig(fmt.Sprintf("kmalloc-%d", size), size, c.CPUs))
			r := workload.RunMicro(s.Env(), cache, pairsPerCPU)
			switch kind {
			case KindSLUB:
				row.SLUBPairs = r.PairsPerSec()
				row.SLUBStalls = r.Stalls
			case KindPrudence:
				row.PrudencePairs = r.PairsPerSec()
			}
			cache.Drain()
			s.Close()
		}
		if row.SLUBPairs > 0 {
			row.Speedup = row.PrudencePairs / row.SLUBPairs
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the paper-style rows.
func (r Fig6Result) Table() string {
	t := stats.NewTable("size(B)", "slub pairs/s", "prudence pairs/s", "speedup", "slub stalls")
	for _, row := range r.Rows {
		t.AddRow(row.Size, fmt.Sprintf("%.0f", row.SLUBPairs), fmt.Sprintf("%.0f", row.PrudencePairs),
			fmt.Sprintf("%.1fx", row.Speedup), row.SLUBStalls)
	}
	return "Figure 6: kmalloc/kfree_deferred pairs per second (higher is better)\n" + t.String()
}
