package bench

import (
	"fmt"
	"time"

	"prudence/internal/slabcore"
	"prudence/internal/stats"
	"prudence/internal/workload"
)

// GPSweepRow is one grace-period-interval setting's outcome.
type GPSweepRow struct {
	Interval      time.Duration
	SLUBPairs     float64
	PrudencePairs float64
	SLUBPeakKiB   int64
	PrudPeakKiB   int64
}

// GPSweepResult is the grace-period sensitivity study.
type GPSweepResult struct {
	Rows []GPSweepRow
}

// GPSweepIntervals are the grace-period gaps swept.
var GPSweepIntervals = []time.Duration{
	100 * time.Microsecond,
	500 * time.Microsecond,
	2 * time.Millisecond,
	10 * time.Millisecond,
}

// RunGPSweep measures how both allocators respond to grace-period
// length under the 512 B micro-benchmark. This extends the paper's
// analysis (§3.1: thousands of updates per grace period; §5.5:
// equilibrium at the reallocation rate): longer grace periods mean a
// larger in-flight deferred population, so memory footprints grow with
// the interval for both designs — but the baseline's backlog adds
// callback-processing lag on top, while Prudence's footprint tracks the
// interval alone.
func RunGPSweep(cfg Config, pairsPerCPU int) (GPSweepResult, error) {
	var res GPSweepResult
	for _, ival := range GPSweepIntervals {
		row := GPSweepRow{Interval: ival}
		for _, kind := range []Kind{KindSLUB, KindPrudence} {
			c := cfg
			c.RCU.MinGPInterval = ival
			if c.PressureWatermark == 0 {
				c.PressureWatermark = c.ArenaPages / 2
			}
			s := NewStack(kind, c)
			cache := s.Alloc.NewCache(slabcore.DefaultConfig("kmalloc-512", 512, c.CPUs))
			r := workload.RunMicro(s.Env(), cache, pairsPerCPU)
			peak := int64(s.Arena.PeakPages()) * 4
			switch kind {
			case KindSLUB:
				row.SLUBPairs = r.PairsPerSec()
				row.SLUBPeakKiB = peak
			case KindPrudence:
				row.PrudencePairs = r.PairsPerSec()
				row.PrudPeakKiB = peak
			}
			cache.Drain()
			s.Close()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the sweep.
func (r GPSweepResult) Table() string {
	t := stats.NewTable("GP interval", "slub pairs/s", "prudence pairs/s", "slub peak KiB", "prudence peak KiB")
	for _, row := range r.Rows {
		t.AddRow(row.Interval.String(),
			fmt.Sprintf("%.0f", row.SLUBPairs), fmt.Sprintf("%.0f", row.PrudencePairs),
			row.SLUBPeakKiB, row.PrudPeakKiB)
	}
	return "Grace-period sensitivity (512 B micro-benchmark)\n" + t.String()
}
