package bench

import (
	"fmt"
	"sort"
	"time"

	"prudence/internal/stats"
	"prudence/internal/workload"
)

// AppComparison holds one profile's results under both allocators.
type AppComparison struct {
	Profile  workload.AppProfile
	SLUB     workload.AppResult
	Prudence workload.AppResult
}

// AppsResult holds every profile's comparison; Figures 7-13 are all
// views over it.
type AppsResult struct {
	Comparisons []AppComparison
	TxnsPerCPU  int
}

// RunApps runs every application profile under both allocators on
// identical machines. One run feeds Figures 7, 8, 9, 10, 11, 12 and 13.
func RunApps(cfg Config, txnsPerCPU int) (AppsResult, error) {
	res := AppsResult{TxnsPerCPU: txnsPerCPU}
	for _, p := range workload.Profiles() {
		cmp := AppComparison{Profile: p}
		for _, kind := range []Kind{KindSLUB, KindPrudence} {
			s := NewStack(kind, cfg)
			r, err := workload.RunApp(s.Env(), s.Alloc, p, txnsPerCPU)
			if err != nil {
				s.Close()
				return res, fmt.Errorf("%s/%s: %w", p.Name, kind, err)
			}
			switch kind {
			case KindSLUB:
				cmp.SLUB = r
			case KindPrudence:
				cmp.Prudence = r
			}
			for _, c := range s.Alloc.Caches() {
				c.Drain()
			}
			s.Close()
		}
		res.Comparisons = append(res.Comparisons, cmp)
	}
	return res, nil
}

// RunAppsMedian runs the application comparison `repeats` times and
// returns the run whose per-benchmark throughput ratios are the
// element-wise medians — the paper's own methodology of averaging three
// runs, adapted to medians for robustness on noisy hosts. The returned
// AppsResult carries the medianized throughputs; per-cache counters come
// from the final run (they are far less noisy than wall-clock rates).
func RunAppsMedian(cfg Config, txnsPerCPU, repeats int) (AppsResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	var last AppsResult
	slubRates := map[string][]float64{}
	pruRates := map[string][]float64{}
	for i := 0; i < repeats; i++ {
		res, err := RunApps(cfg, txnsPerCPU)
		if err != nil {
			return res, err
		}
		for _, cmp := range res.Comparisons {
			slubRates[cmp.Profile.Name] = append(slubRates[cmp.Profile.Name], cmp.SLUB.TxnPerSec())
			pruRates[cmp.Profile.Name] = append(pruRates[cmp.Profile.Name], cmp.Prudence.TxnPerSec())
		}
		last = res
	}
	// Rewrite the last run's elapsed times so TxnPerSec reports medians.
	for i := range last.Comparisons {
		cmp := &last.Comparisons[i]
		if m := stats.Median(slubRates[cmp.Profile.Name]); m > 0 {
			cmp.SLUB.Elapsed = time.Duration(float64(cmp.SLUB.Transactions) / m * float64(time.Second))
		}
		if m := stats.Median(pruRates[cmp.Profile.Name]); m > 0 {
			cmp.Prudence.Elapsed = time.Duration(float64(cmp.Prudence.Transactions) / m * float64(time.Second))
		}
	}
	return last, nil
}

// cacheNames returns the sorted cache names present in a comparison.
func (c AppComparison) cacheNames() []string {
	names := make([]string, 0, len(c.SLUB.PerCache))
	for n := range c.SLUB.PerCache {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// perCacheTable renders one Figure 7-11 style table using metric to
// extract the value from a cache report.
func (r AppsResult) perCacheTable(title, unit string, metric func(workload.CacheReport) float64, higherIsBetter bool) string {
	t := stats.NewTable("benchmark", "cache", "slub "+unit, "prudence "+unit, "change")
	for _, cmp := range r.Comparisons {
		for _, name := range cmp.cacheNames() {
			sv := metric(cmp.SLUB.PerCache[name])
			pv := metric(cmp.Prudence.PerCache[name])
			change := "n/a"
			if sv != 0 {
				delta := (pv - sv) / sv * 100
				change = fmt.Sprintf("%+.1f%%", delta)
			}
			t.AddRow(cmp.Profile.Name, name, fmt.Sprintf("%.2f", sv), fmt.Sprintf("%.2f", pv), change)
		}
	}
	direction := "lower is better"
	if higherIsBetter {
		direction = "higher is better"
	}
	return title + " (" + direction + ")\n" + t.String()
}

// Fig7Table reports the object cache hit rate per benchmark and cache.
func (r AppsResult) Fig7Table() string {
	return r.perCacheTable("Figure 7: % allocations served from object cache", "hit%",
		func(c workload.CacheReport) float64 { return c.Snapshot.CacheHitRate() * 100 }, true)
}

// Fig8Table reports object cache churns (refill/flush pairs).
func (r AppsResult) Fig8Table() string {
	return r.perCacheTable("Figure 8: object cache churns", "churns",
		func(c workload.CacheReport) float64 { return float64(c.Snapshot.ObjectCacheChurns()) }, false)
}

// Fig9Table reports slab churns (grow/shrink pairs).
func (r AppsResult) Fig9Table() string {
	return r.perCacheTable("Figure 9: slab churns", "churns",
		func(c workload.CacheReport) float64 { return float64(c.Snapshot.SlabChurns()) }, false)
}

// Fig10Table reports peak slab usage.
func (r AppsResult) Fig10Table() string {
	return r.perCacheTable("Figure 10: peak slab usage", "slabs",
		func(c workload.CacheReport) float64 { return float64(c.Snapshot.PeakSlabs) }, false)
}

// Fig11Table reports total fragmentation after each run.
func (r AppsResult) Fig11Table() string {
	return r.perCacheTable("Figure 11: total fragmentation (allocated/requested)", "f_t",
		func(c workload.CacheReport) float64 { return c.Fragmentation }, false)
}

// Fig12Table reports the deferred share of free operations.
func (r AppsResult) Fig12Table() string {
	t := stats.NewTable("benchmark", "deferred frees %", "paper %")
	paper := map[string]float64{"postmark": 24.4, "netperf": 14, "apache": 18, "postgresql": 4.4}
	for _, cmp := range r.Comparisons {
		var frees, defers float64
		for _, rep := range cmp.Prudence.PerCache {
			frees += float64(rep.Snapshot.Frees + rep.Snapshot.DeferredFrees)
			defers += float64(rep.Snapshot.DeferredFrees)
		}
		pct := 0.0
		if frees > 0 {
			pct = defers / frees * 100
		}
		t.AddRow(cmp.Profile.Name, fmt.Sprintf("%.1f", pct), fmt.Sprintf("%.1f", paper[cmp.Profile.Name]))
	}
	return "Figure 12: deferred frees out of total frees\n" + t.String()
}

// Fig13Table reports overall throughput improvement.
func (r AppsResult) Fig13Table() string {
	t := stats.NewTable("benchmark", "slub txn/s", "prudence txn/s", "improvement", "paper")
	paper := map[string]string{"postmark": "+18%", "netperf": "+4.2%", "apache": "+5.6%", "postgresql": "+4.6%"}
	for _, cmp := range r.Comparisons {
		sv, pv := cmp.SLUB.TxnPerSec(), cmp.Prudence.TxnPerSec()
		t.AddRow(cmp.Profile.Name, fmt.Sprintf("%.0f", sv), fmt.Sprintf("%.0f", pv),
			stats.Ratio(sv, pv), paper[cmp.Profile.Name])
	}
	return "Figure 13: overall throughput (higher is better)\n" + t.String()
}
