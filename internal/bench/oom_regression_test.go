package bench

import (
	"testing"

	"prudence/internal/slabcore"
	"prudence/internal/workload"
)

// The nebr×slub endurance cell OOMed through PR 6: every deferred free
// rode the shared retire queue at the throttled batch rate (10 per 20µs
// ≈ 500k/s), the fastest updaters outran the drain, and the limbo bags
// ate the arena. The qhimark escalation (backlog-proportional drain
// batches + expedited grace-period demand, PR 7) is the fix. This pins
// the exact scaled-down scenario that reproduced the OOM on the pre-fix
// tree — seed configuration and page budget fixed — and requires it to
// stay OOM-free.
func TestEnduranceNebrSlubNoOOM(t *testing.T) {
	cfg := DefaultConfig() // pinned knobs: Blimit 10, ThrottleDelay 20µs
	cfg.CPUs = 8
	cfg.ArenaPages = 4096 // pinned page budget: pre-fix peak hits all 4096
	cfg.Scheme = "nebr"
	cfg.PressureWatermark = cfg.ArenaPages / 2
	s := NewStack(KindSLUB, cfg)
	defer s.Close()
	cache := s.Alloc.NewCache(slabcore.DefaultConfig("endurance-512", 512, cfg.CPUs))
	r := workload.RunEndurance(s.Env(), cache, workload.EnduranceConfig{
		ListLen: 32,
		Updates: 8000,
	})
	cache.Drain()
	if r.OOM {
		t.Fatalf("nebr×slub endurance OOMed again (updates=%d peak=%d/%d pages, gps=%d): retire-drain escalation regressed",
			r.Updates, r.PeakPages, cfg.ArenaPages, s.Sync.GPsCompleted())
	}
	// The fix works by keeping the limbo backlog bounded; a peak at the
	// arena ceiling means we only escaped OOM by luck.
	if r.PeakPages >= cfg.ArenaPages {
		t.Fatalf("endurance run consumed the whole arena (peak=%d pages)", r.PeakPages)
	}
}
