//go:build !race

package bench

// RaceEnabled reports whether the race detector is compiled in. The
// comparison shape tests assert timing-sensitive outcomes (who OOMs
// first) that do not hold when the detector slows every memory access.
const RaceEnabled = false
