package bench

import (
	"fmt"

	"prudence"
	"prudence/internal/server"
	"prudence/internal/server/loadgen"
	"prudence/internal/stats"
)

// ServerConfig parameterizes the long-running-service experiment: the
// cmd/prudence-server session-cache workload driven by its load
// generator, swept across allocator x reclamation-scheme combinations
// so the facade stack is compared under the same churn the standalone
// binary serves.
type ServerConfig struct {
	// CPUs and Pages size the stack (defaults 8 and 16384).
	CPUs  int
	Pages int
	// Arena picks the memory backend ("" = facade default / env).
	Arena string
	// Sessions is the ramp-phase live population; Ops the churn
	// budget (defaults 50000 and 2x Sessions).
	Sessions int
	Ops      int
	// StallEvery forwards slow-loris stalls to the generator
	// (default 2048 churn iterations per stall).
	StallEvery int
	// Seed makes runs reproducible (default 1).
	Seed uint64
	// Allocators and Schemes select the sweep grid (defaults
	// {slub, prudence} x {rcu, nebr}).
	Allocators []prudence.AllocatorKind
	Schemes    []prudence.ReclamationKind
}

func (cfg *ServerConfig) fill() {
	if cfg.CPUs <= 0 {
		cfg.CPUs = 8
	}
	if cfg.Pages <= 0 {
		cfg.Pages = 16384
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 50000
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 2 * cfg.Sessions
	}
	if cfg.StallEvery == 0 {
		cfg.StallEvery = 2048
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Allocators) == 0 {
		cfg.Allocators = []prudence.AllocatorKind{prudence.SLUB, prudence.Prudence}
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = []prudence.ReclamationKind{prudence.RCU, prudence.NEBR}
	}
}

// ServerRun is one cell of the sweep grid.
type ServerRun struct {
	Allocator string
	Scheme    string
	Load      loadgen.Result
	// Server-side peaks and pressure counters for the run.
	PeakLatentBytes int64
	Expedites       uint64
	OOMs            uint64
	BusyRejects     uint64
	GracePeriods    uint64
}

// ServerResult holds the full sweep.
type ServerResult struct {
	Runs []ServerRun
}

// RunServer stands a fresh server stack up for every allocator/scheme
// pair, drives the seeded load-generator mix (connect/disconnect
// storms, hot-key skew, DoS flood cycles, slow-loris stalls) against
// it, and tears the stack down through the full Close path. Any
// shutdown drop or live-session accounting mismatch is an error: the
// experiment doubles as an end-to-end correctness gate.
func RunServer(cfg ServerConfig) (ServerResult, error) {
	cfg.fill()
	var res ServerResult
	for _, alloc := range cfg.Allocators {
		for _, scheme := range cfg.Schemes {
			srv, err := server.New(server.Config{
				CPUs:        cfg.CPUs,
				MemoryPages: cfg.Pages,
				Allocator:   alloc,
				Reclamation: scheme,
				Arena:       prudence.ArenaKind(cfg.Arena),
			})
			if err != nil {
				return res, fmt.Errorf("server %s/%s: %w", alloc, scheme, err)
			}
			load := loadgen.Run(srv, loadgen.Config{
				Sessions:   cfg.Sessions,
				Ops:        cfg.Ops,
				StallEvery: cfg.StallEvery,
				Seed:       cfg.Seed,
			})
			run := ServerRun{
				Allocator:       string(alloc),
				Scheme:          string(scheme),
				Load:            load,
				PeakLatentBytes: srv.PeakLatentBytes(),
				Expedites:       srv.Expedites(),
				OOMs:            srv.OOMs(),
				BusyRejects:     srv.BusyRejects(),
				GracePeriods:    srv.System().GracePeriods(),
			}
			srv.Close()
			if load.ShutdownDrops > 0 {
				return res, fmt.Errorf("server %s/%s: %d batches dropped at shutdown",
					alloc, scheme, load.ShutdownDrops)
			}
			if uint64(load.EndLive) != load.Connects-load.Disconnects {
				return res, fmt.Errorf("server %s/%s: live-session accounting broken: end=%d connects-disconnects=%d",
					alloc, scheme, load.EndLive, load.Connects-load.Disconnects)
			}
			res.Runs = append(res.Runs, run)
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r ServerResult) Table() string {
	t := stats.NewTable("alloc", "scheme", "sessions", "ops/s", "p50", "p99", "p999",
		"latent peak", "expedites", "ooms")
	for _, run := range r.Runs {
		t.AddRow(run.Allocator, run.Scheme,
			run.Load.SessionsTotal,
			fmt.Sprintf("%.0f", run.Load.ThroughputOps),
			run.Load.P50, run.Load.P99, run.Load.P999,
			fmt.Sprintf("%dB", run.PeakLatentBytes),
			run.Expedites, run.OOMs)
	}
	return "server: session-cache service under churn + stalls\n" + t.String()
}

// Records flattens the sweep for -json.
func (r ServerResult) Records() []Record {
	var out []Record
	for _, run := range r.Runs {
		q := fmt.Sprintf("{alloc=%s,scheme=%s}", run.Allocator, run.Scheme)
		out = append(out,
			Record{Exp: "server", Metric: "sessions_total" + q, Value: float64(run.Load.SessionsTotal), Unit: "sessions"},
			Record{Exp: "server", Metric: "peak_live_sessions" + q, Value: float64(run.Load.PeakLive), Unit: "sessions"},
			Record{Exp: "server", Metric: "ops_total" + q, Value: float64(run.Load.OpsTotal), Unit: "ops"},
			Record{Exp: "server", Metric: "throughput" + q, Value: run.Load.ThroughputOps, Unit: "ops/s"},
			Record{Exp: "server", Metric: "latency_p50" + q, Value: run.Load.P50.Seconds() * 1e6, Unit: "us"},
			Record{Exp: "server", Metric: "latency_p99" + q, Value: run.Load.P99.Seconds() * 1e6, Unit: "us"},
			Record{Exp: "server", Metric: "latency_p999" + q, Value: run.Load.P999.Seconds() * 1e6, Unit: "us"},
			Record{Exp: "server", Metric: "latent_bytes_peak" + q, Value: float64(run.PeakLatentBytes), Unit: "bytes"},
			Record{Exp: "server", Metric: "expedites" + q, Value: float64(run.Expedites), Unit: "count"},
			Record{Exp: "server", Metric: "ooms" + q, Value: float64(run.OOMs), Unit: "count"},
			Record{Exp: "server", Metric: "grace_periods" + q, Value: float64(run.GracePeriods), Unit: "count"},
		)
	}
	return out
}
