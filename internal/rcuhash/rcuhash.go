// Package rcuhash implements an RCU-protected hash table over
// rculist buckets — the kind of read-mostly structure (route caches,
// dentry-like lookup tables) the paper's introduction motivates as the
// major user of synchronization via procrastination.
//
// Readers hash to a bucket and traverse it wait-free inside a read-side
// critical section. Writers serialize per bucket (via the bucket list's
// writer lock) and defer-free replaced payloads through the allocator.
// Resizing swaps in a new bucket array and rebuilds it with copy-update
// operations, defer-freeing every old payload — a deliberate burst of
// deferred frees akin to the table moves of resizable RCU hash tables.
package rcuhash

import (
	"sync"
	"sync/atomic"

	"prudence/internal/alloc"
	"prudence/internal/rculist"
)

// Sync is the synchronization surface the map needs: read-side markers
// plus a blocking grace-period wait for the resize teardown.
type Sync interface {
	rculist.ReadSync
	// SynchronizeOn blocks until a full grace period has elapsed,
	// treating the calling CPU as quiescent.
	SynchronizeOn(cpu int)
}

// Map is an RCU-protected hash map from uint64 keys to fixed-size
// values.
type Map struct {
	cache alloc.Cache
	rcu   Sync

	table atomic.Pointer[table] //prudence:rcu resizeMu
	// resizeMu serializes resizes; normal writers only take per-bucket
	// locks inside rculist. It ranks below the bucket writer locks
	// (rculist.List.wmu, rank 8) because Resize holds it across bucket
	// rebuild operations.
	//
	//prudence:lockorder 7
	resizeMu sync.Mutex
}

type table struct {
	buckets []*rculist.List
	mask    uint64
}

// New creates a map with the given power-of-two bucket count. r
// provides synchronization (internal/rcu or internal/ebr).
func New(cache alloc.Cache, r Sync, buckets int) *Map {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		panic("rcuhash: bucket count must be a positive power of two")
	}
	m := &Map{cache: cache, rcu: r}
	m.table.Store(newTable(cache, r, buckets))
	return m
}

func newTable(cache alloc.Cache, r Sync, buckets int) *table {
	t := &table{buckets: make([]*rculist.List, buckets), mask: uint64(buckets - 1)}
	for i := range t.buckets {
		t.buckets[i] = rculist.New(cache, r)
	}
	return t
}

// hash mixes the key (splitmix64 finalizer) so sequential keys spread.
func hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (t *table) bucket(key uint64) *rculist.List {
	return t.buckets[hash(key)&t.mask]
}

// ValueSize returns the payload capacity of each entry.
func (m *Map) ValueSize() int { return m.cache.ObjectSize() }

// loadTable reads the table pointer outside a read-side critical
// section. That is safe for the pointer itself — the table struct and
// its bucket lists are GC-backed, so an old table stays valid however
// late it is dereferenced; only payload slices handed out by buckets
// need grace-period protection. Writer-path callers (Put, Delete)
// additionally rely on the single-resizer rule: writers quiesce during
// a resize, so they can never load a table mid-swap. Read paths that
// DO return payload data (Get, ForEach) load the pointer inside their
// critical sections instead and are checked.
func (m *Map) loadTable() *table {
	return m.table.Load() //prudence:nolint:rcucheck the bare pointer load is safe: tables are GC-backed and writers quiesce during resize (see comment)
}

// Buckets returns the current bucket count.
func (m *Map) Buckets() int { return len(m.loadTable().buckets) }

// Len returns the number of entries (approximate under concurrency).
func (m *Map) Len() int {
	t := m.loadTable()
	n := 0
	for _, b := range t.buckets {
		n += b.Len()
	}
	return n
}

// Get copies the value for key into buf inside a read-side critical
// section on cpu. Returns bytes copied and whether the key was present.
func (m *Map) Get(cpu int, key uint64, buf []byte) (int, bool) {
	// The table pointer must be dereferenced inside the critical
	// section: a resize tears the old table down only after a grace
	// period, so holding the read lock across load+lookup is what makes
	// the swap safe.
	m.rcu.ReadLock(cpu)
	defer m.rcu.ReadUnlock(cpu)
	return m.table.Load().bucket(key).Lookup(cpu, key, buf)
}

// Put inserts or replaces key's value. A replace defer-frees the old
// payload (copy-update); an insert allocates fresh.
func (m *Map) Put(cpu int, key uint64, value []byte) error {
	b := m.loadTable().bucket(key)
	found, err := b.Update(cpu, key, value)
	if err != nil || found {
		return err
	}
	return b.Insert(cpu, key, value)
}

// Delete removes key, defer-freeing its payload. Reports whether it was
// present.
func (m *Map) Delete(cpu int, key uint64) (bool, error) {
	return m.loadTable().bucket(key).Delete(cpu, key)
}

// ForEach visits every entry. Each bucket is traversed in its own
// read-side critical section on cpu; entries added or removed during
// iteration may or may not be seen. fn must not retain value.
func (m *Map) ForEach(cpu int, fn func(key uint64, value []byte) bool) {
	m.rcu.ReadLock(cpu)
	defer m.rcu.ReadUnlock(cpu)
	t := m.table.Load()
	for _, b := range t.buckets {
		stop := false
		b.Walk(cpu, func(k uint64, v []byte) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Resize rebuilds the map with a new power-of-two bucket count. Every
// entry is copied into a fresh allocation in the new table and the old
// payload defer-freed, producing the deferred-free burst characteristic
// of RCU hash-table moves. Concurrent readers keep working against
// whichever table they loaded; concurrent writers are not supported
// during a resize (writer-side callers must quiesce, as with relativistic
// hash tables' single-resizer rule).
func (m *Map) Resize(cpu int, buckets int) error {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		panic("rcuhash: bucket count must be a positive power of two")
	}
	m.resizeMu.Lock()
	defer m.resizeMu.Unlock()

	old := m.table.Load()
	nt := newTable(m.cache, m.rcu, buckets)

	// Phase 1: copy every entry into the new table. Readers still use
	// the old table and see a complete view throughout.
	type kv struct {
		k uint64
		v []byte
	}
	var entries []kv
	for _, b := range old.buckets {
		b.Walk(cpu, func(k uint64, v []byte) bool {
			cp := make([]byte, len(v))
			copy(cp, v)
			entries = append(entries, kv{k, cp})
			return true
		})
	}
	for i, e := range entries {
		if err := nt.bucket(e.k).Insert(cpu, e.k, e.v); err != nil {
			// Roll back the partially built table, freeing its copies.
			for _, done := range entries[:i] {
				if _, derr := nt.bucket(done.k).Delete(cpu, done.k); derr != nil {
					return derr
				}
			}
			return err
		}
	}

	// Phase 2: publish the new table, wait for pre-existing readers of
	// the old table to finish, then tear the old table down. The
	// payloads are defer-freed, covering any reader that captured a
	// payload slice just before the table swap.
	m.table.Store(nt)
	m.rcu.SynchronizeOn(cpu)
	for _, e := range entries {
		if _, err := old.bucket(e.k).Delete(cpu, e.k); err != nil {
			return err
		}
	}
	return nil
}
