package rcuhash_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"prudence/internal/alloc"
	"prudence/internal/alloctest"
	"prudence/internal/core"
	"prudence/internal/rcuhash"
	"prudence/internal/slub"
	"prudence/internal/vcpu"
)

func eachAllocator(t *testing.T, fn func(t *testing.T, s *alloctest.Stack, c alloc.Cache)) {
	builders := map[string]alloctest.BuildAllocator{
		"slub": func(s *alloctest.Stack) alloc.Allocator {
			return slub.New(s.Pages, s.RCU, s.Machine.NumCPU())
		},
		"prudence": func(s *alloctest.Stack) alloc.Allocator {
			return core.New(s.Pages, s.RCU, s.Machine, core.Options{})
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
			c := s.Alloc.NewCache(alloctest.TestCacheConfig("hash-" + name))
			fn(t, s, c)
		})
	}
}

func TestBadBucketCountPanics(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		for _, n := range []int{0, -4, 3, 12} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("New with %d buckets did not panic", n)
					}
				}()
				rcuhash.New(c, s.RCU, n)
			}()
		}
	})
}

func TestPutGetDelete(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		m := rcuhash.New(c, s.RCU, 8)
		buf := make([]byte, 32)
		for k := uint64(0); k < 100; k++ {
			if err := m.Put(0, k, []byte(fmt.Sprintf("v-%d", k))); err != nil {
				t.Fatal(err)
			}
		}
		if m.Len() != 100 {
			t.Fatalf("Len = %d, want 100", m.Len())
		}
		for k := uint64(0); k < 100; k++ {
			n, ok := m.Get(0, k, buf)
			want := fmt.Sprintf("v-%d", k)
			if !ok || string(buf[:len(want)]) != want {
				t.Fatalf("Get(%d) = %q,%v", k, buf[:n], ok)
			}
		}
		// Overwrite is a copy-update with a deferred free.
		before := c.Counters().Snapshot()
		if err := m.Put(0, 5, []byte("newval")); err != nil {
			t.Fatal(err)
		}
		if d := c.Counters().Snapshot().Sub(before); d.DeferredFrees != 1 {
			t.Fatalf("overwrite produced %d deferred frees, want 1", d.DeferredFrees)
		}
		if m.Len() != 100 {
			t.Fatalf("Len after overwrite = %d", m.Len())
		}
		if _, ok := m.Get(0, 5, buf); !ok || string(buf[:6]) != "newval" {
			t.Fatalf("overwritten value = %q", buf[:6])
		}
		ok, err := m.Delete(0, 5)
		if err != nil || !ok {
			t.Fatalf("Delete = %v,%v", ok, err)
		}
		if _, ok := m.Get(0, 5, buf); ok {
			t.Fatal("deleted key still present")
		}
		if ok, _ := m.Delete(0, 5); ok {
			t.Fatal("double delete succeeded")
		}
	})
}

func TestForEachVisitsAll(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		m := rcuhash.New(c, s.RCU, 4)
		want := map[uint64]bool{}
		for k := uint64(0); k < 50; k++ {
			if err := m.Put(0, k, []byte("x")); err != nil {
				t.Fatal(err)
			}
			want[k] = true
		}
		seen := map[uint64]bool{}
		m.ForEach(0, func(k uint64, _ []byte) bool {
			if seen[k] {
				t.Errorf("key %d visited twice", k)
			}
			seen[k] = true
			return true
		})
		if len(seen) != len(want) {
			t.Fatalf("visited %d keys, want %d", len(seen), len(want))
		}
		count := 0
		m.ForEach(0, func(uint64, []byte) bool {
			count++
			return count < 7
		})
		if count != 7 {
			t.Fatalf("early stop visited %d", count)
		}
	})
}

func TestResizePreservesContents(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		m := rcuhash.New(c, s.RCU, 4)
		const n = 200
		for k := uint64(0); k < n; k++ {
			v := make([]byte, 8)
			binary.LittleEndian.PutUint64(v, k*3)
			if err := m.Put(0, k, v); err != nil {
				t.Fatal(err)
			}
		}
		before := c.Counters().Snapshot()
		if err := m.Resize(0, 64); err != nil {
			t.Fatal(err)
		}
		if m.Buckets() != 64 {
			t.Fatalf("Buckets = %d, want 64", m.Buckets())
		}
		if m.Len() != n {
			t.Fatalf("Len after resize = %d, want %d", m.Len(), n)
		}
		buf := make([]byte, 8)
		for k := uint64(0); k < n; k++ {
			if _, ok := m.Get(0, k, buf); !ok || binary.LittleEndian.Uint64(buf) != k*3 {
				t.Fatalf("key %d lost or corrupted after resize", k)
			}
		}
		// The resize defer-freed every old payload: a burst of n.
		if d := c.Counters().Snapshot().Sub(before); d.DeferredFrees != n {
			t.Fatalf("resize produced %d deferred frees, want %d", d.DeferredFrees, n)
		}
		// Shrink back down too.
		if err := m.Resize(0, 8); err != nil {
			t.Fatal(err)
		}
		if m.Len() != n {
			t.Fatalf("Len after shrink = %d", m.Len())
		}
		for k := uint64(0); k < n; k++ {
			if ok, err := m.Delete(0, k); err != nil || !ok {
				t.Fatalf("delete %d after shrink = %v, %v", k, ok, err)
			}
		}
		c.Drain()
		if used := s.Arena.UsedPages(); used != 0 {
			t.Fatalf("%d pages leaked after resize cycle", used)
		}
	})
}

// Concurrent readers across a resize never observe a missing key: the
// table swap publishes a complete view.
func TestReadersAcrossResize(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		m := rcuhash.New(c, s.RCU, 4)
		const n = 64
		for k := uint64(0); k < n; k++ {
			if err := m.Put(0, k, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		var missing atomic.Int64
		var stop atomic.Bool
		var wg sync.WaitGroup
		for cpu := 1; cpu < s.Machine.NumCPU(); cpu++ {
			wg.Add(1)
			go func(cpu int) {
				defer wg.Done()
				s.RCU.ExitIdle(cpu)
				defer s.RCU.EnterIdle(cpu)
				buf := make([]byte, 4)
				for !stop.Load() {
					for k := uint64(0); k < n; k++ {
						if _, ok := m.Get(cpu, k, buf); !ok {
							missing.Add(1)
						}
					}
					s.RCU.QuiescentState(cpu)
				}
			}(cpu)
		}
		s.RCU.ExitIdle(0)
		for i := 0; i < 6; i++ {
			buckets := 8 << (i % 3)
			if err := m.Resize(0, buckets); err != nil {
				t.Fatal(err)
			}
			s.RCU.QuiescentState(0)
		}
		s.RCU.EnterIdle(0)
		stop.Store(true)
		wg.Wait()
		if got := missing.Load(); got != 0 {
			t.Fatalf("readers missed keys %d times across resizes", got)
		}
	})
}

func TestConcurrentWritersDistinctKeyRanges(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		m := rcuhash.New(c, s.RCU, 16)
		s.Machine.RunOnAll(func(cpu *vcpu.CPU) {
			id := cpu.ID()
			s.RCU.ExitIdle(id)
			defer s.RCU.EnterIdle(id)
			base := uint64(id) << 32
			for i := uint64(0); i < 200; i++ {
				if err := m.Put(id, base+i, []byte("a")); err != nil {
					t.Errorf("cpu %d put: %v", id, err)
					return
				}
				if i%3 == 0 {
					if _, err := m.Delete(id, base+i); err != nil {
						t.Errorf("cpu %d delete: %v", id, err)
						return
					}
				}
				s.RCU.QuiescentState(id)
			}
		})
		want := s.Machine.NumCPU() * (200 - 67)
		if got := m.Len(); got != want {
			t.Fatalf("Len = %d, want %d", got, want)
		}
	})
}
