package rcuhash_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prudence/internal/alloc"
	"prudence/internal/alloctest"
	"prudence/internal/rcuhash"
)

// Model-based property test: random Put/Get/Delete/Resize sequences
// against a map model must agree on contents and size, across resizes.
func TestPropertyMatchesMapModel(t *testing.T) {
	eachAllocator(t, func(t *testing.T, s *alloctest.Stack, c alloc.Cache) {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			m := rcuhash.New(c, s.RCU, 8)
			model := map[uint64]byte{}
			for op := 0; op < 250; op++ {
				k := uint64(rng.Intn(64))
				switch rng.Intn(5) {
				case 0, 1: // put
					v := byte(rng.Intn(256))
					if err := m.Put(0, k, []byte{v}); err != nil {
						return false
					}
					model[k] = v
				case 2: // delete
					ok, err := m.Delete(0, k)
					if err != nil {
						return false
					}
					if _, want := model[k]; ok != want {
						return false
					}
					delete(model, k)
				case 3: // get
					buf := make([]byte, 1)
					_, ok := m.Get(0, k, buf)
					v, want := model[k]
					if ok != want || (ok && buf[0] != v) {
						return false
					}
				case 4: // occasional resize up or down
					if op%17 == 0 {
						buckets := 4 << rng.Intn(4) // 4..32
						if err := m.Resize(0, buckets); err != nil {
							return false
						}
					}
				}
			}
			if m.Len() != len(model) {
				return false
			}
			seen := map[uint64]byte{}
			m.ForEach(0, func(k uint64, v []byte) bool {
				seen[k] = v[0]
				return true
			})
			if len(seen) != len(model) {
				return false
			}
			for k, v := range model {
				if seen[k] != v {
					return false
				}
			}
			for k := range model {
				if ok, err := m.Delete(0, k); err != nil || !ok {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
			t.Fatal(err)
		}
		c.Drain()
		if used := s.Arena.UsedPages(); used != 0 {
			t.Fatalf("%d pages leaked across property iterations", used)
		}
	})
}
