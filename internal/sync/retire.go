package sync

import (
	stdsync "sync"
	"sync/atomic"
	"time"
)

// GracePoller is the slice of Backend a RetireQueue drives reclamation
// with: stamp retirements with Snapshot, free them once Elapsed, keep
// demand raised with NeedGP while work is pending.
type GracePoller interface {
	Snapshot() Cookie
	Elapsed(Cookie) bool
	NeedGP()
}

// retired is one deferred function stamped with the cookie it must
// outwait.
type retired struct {
	c  Cookie
	fn func()
}

// rqShard is one CPU's limbo bag. Entries are appended in Snapshot
// order, so the bag is cookie-sorted and the drainer frees a prefix.
type rqShard struct {
	// mu guards the bag only; it is released before any retired
	// function runs (retired functions take allocator locks).
	//
	//prudence:lockorder 42
	mu  stdsync.Mutex
	bag []retired //prudence:guarded_by mu
	// seq counts entries ever enqueued; done counts entries ever
	// invoked. Barrier waits for done to reach its snapshot of seq —
	// sound because the bag drains FIFO.
	seq  atomic.Uint64
	done atomic.Uint64
}

// RetireQueue gives per-batch schemes (ebr, nebr) their per-object
// retirement hook: per-CPU cookie-stamped limbo bags drained by one
// background goroutine as grace periods elapse. It is the moral
// equivalent of internal/rcu's callback lists, shared so every epoch
// flavor does not reimplement batching, throttling, barriers and
// pressure expediting.
type RetireQueue struct {
	gp     GracePoller
	shards []*rqShard

	batch     int
	delay     time.Duration
	poll      time.Duration
	pressured atomic.Bool

	pending    atomic.Int64
	maxBacklog atomic.Int64

	kick     chan struct{}
	stopOnce stdsync.Once
	stopCh   chan struct{}
	wg       stdsync.WaitGroup
}

// NewRetireQueue creates and starts a queue with one limbo bag per CPU.
// batch <= 0 defaults to 32 entries per invocation burst; delay is the
// pause between bursts (0 = none); poll <= 0 defaults to 50µs.
func NewRetireQueue(gp GracePoller, cpus, batch int, delay, poll time.Duration) *RetireQueue {
	if batch <= 0 {
		batch = 32
	}
	if delay < 0 {
		delay = 0
	}
	if poll <= 0 {
		poll = 50 * time.Microsecond
	}
	q := &RetireQueue{
		gp:     gp,
		shards: make([]*rqShard, cpus),
		batch:  batch,
		delay:  delay,
		poll:   poll,
		kick:   make(chan struct{}, 1),
		stopCh: make(chan struct{}),
	}
	for i := range q.shards {
		q.shards[i] = &rqShard{}
	}
	q.wg.Add(1)
	go q.drainer()
	return q
}

// Retire enqueues fn on cpu's limbo bag, stamped with the current
// grace-period cookie, and raises demand so the epoch machinery moves.
func (q *RetireQueue) Retire(cpu int, fn func()) {
	s := q.shards[cpu]
	c := q.gp.Snapshot()
	s.mu.Lock()
	s.bag = append(s.bag, retired{c: c, fn: fn})
	s.mu.Unlock()
	s.seq.Add(1)
	if n := q.pending.Add(1); n > q.maxBacklog.Load() {
		q.maxBacklog.Store(n)
	}
	q.gp.NeedGP()
	select {
	case q.kick <- struct{}{}:
	default:
	}
}

// Pending returns the number of retired functions not yet invoked.
func (q *RetireQueue) Pending() int64 { return q.pending.Load() }

// MaxBacklog returns the high-water mark of Pending.
func (q *RetireQueue) MaxBacklog() int64 { return q.maxBacklog.Load() }

// SetPressure switches the queue between throttled draining (batch +
// delay) and expedited draining (no inter-burst delay), mirroring the
// kernel's blimit lift under memory pressure.
func (q *RetireQueue) SetPressure(under bool) {
	q.pressured.Store(under)
	if under {
		q.gp.NeedGP()
		select {
		case q.kick <- struct{}{}:
		default:
		}
	}
}

// Barrier blocks until every retirement accepted before the call has
// been invoked, or the queue stops. Demand is re-raised on every poll:
// the epoch machinery may clear it while our cookies are still
// outstanding (the lost-demand class PR 2 fixed in rcu).
func (q *RetireQueue) Barrier() {
	targets := make([]uint64, len(q.shards))
	for i, s := range q.shards {
		targets[i] = s.seq.Load()
	}
	for {
		reached := true
		for i, s := range q.shards {
			if s.done.Load() < targets[i] {
				reached = false
				break
			}
		}
		if reached {
			return
		}
		q.gp.NeedGP()
		select {
		case q.kick <- struct{}{}:
		default:
		}
		select {
		case <-q.stopCh:
			return
		case <-time.After(q.poll):
		}
	}
}

// Stop shuts the drainer down. Entries whose grace period has already
// elapsed are invoked (so a final Synchronize+Stop does not strand
// reclaimable memory); the rest are dropped, as on rcu.Stop.
func (q *RetireQueue) Stop() {
	q.stopOnce.Do(func() {
		close(q.stopCh)
		q.wg.Wait()
		for i := range q.shards {
			q.drainShard(i, true)
		}
	})
}

func (q *RetireQueue) drainer() {
	defer q.wg.Done()
	for {
		select {
		case <-q.stopCh:
			return
		case <-q.kick:
		case <-time.After(q.poll):
		}
		for i := range q.shards {
			q.drainShard(i, false)
		}
		if q.pending.Load() > 0 {
			// Keep demand raised until the backlog clears: the epoch
			// machinery clears demand at grace-period boundaries, and
			// entries stamped just before a boundary outlive it.
			q.gp.NeedGP()
		}
	}
}

// drainShard invokes the elapsed prefix of shard i's bag in bounded
// bursts, sleeping delay between bursts unless pressured (or stopping).
func (q *RetireQueue) drainShard(i int, stopping bool) {
	s := q.shards[i]
	for {
		s.mu.Lock()
		ready := 0
		for ready < len(s.bag) && ready < q.batch && q.gp.Elapsed(s.bag[ready].c) {
			ready++
		}
		burst := make([]retired, ready)
		copy(burst, s.bag[:ready])
		s.bag = s.bag[ready:]
		s.mu.Unlock()
		if ready == 0 {
			return
		}
		for _, r := range burst {
			r.fn()
		}
		s.done.Add(uint64(ready))
		q.pending.Add(-int64(ready))
		if stopping {
			continue
		}
		if q.delay > 0 && !q.pressured.Load() {
			select {
			case <-q.stopCh:
			case <-time.After(q.delay):
			}
		}
	}
}
