package sync

import (
	stdsync "sync"
	"sync/atomic"
	"time"

	"prudence/internal/metrics"
)

// GracePoller is the slice of Backend a RetireQueue drives reclamation
// with: stamp retirements with Snapshot, free them once Elapsed, keep
// demand raised with NeedGP while work is pending, and escalate to
// ExpediteGP when the backlog shows the updaters outrunning the drain.
type GracePoller interface {
	Snapshot() Cookie
	Elapsed(Cookie) bool
	NeedGP()
	ExpediteGP()
}

// QueueOptions tunes a RetireQueue. Zero values take defaults.
type QueueOptions struct {
	// Batch bounds invocations per burst at the throttled rate
	// (default 32, the blimit analogue).
	Batch int
	// ExpeditedBatch is the burst bound under memory pressure or a
	// deep backlog (default 8 × Batch, the ExpeditedBlimit analogue).
	ExpeditedBatch int
	// Qhimark is the backlog above which batch limits come off
	// entirely and the queue raises expedited grace-period demand on
	// every drain pass (default 64 × Batch; negative disables). Past
	// half of it, drains already run at the expedited batch size with
	// no inter-burst delay — the backlog-proportional escalation that
	// keeps the fastest updaters from outrunning the drain.
	Qhimark int
	// Delay is the pause between bursts at the throttled rate (0 =
	// none).
	Delay time.Duration
	// Poll is the drainer's fallback re-check period (default 50µs).
	Poll time.Duration
}

func (o QueueOptions) withDefaults() QueueOptions {
	if o.Batch <= 0 {
		o.Batch = 32
	}
	if o.ExpeditedBatch <= 0 {
		o.ExpeditedBatch = 8 * o.Batch
	}
	if o.Qhimark == 0 {
		o.Qhimark = 64 * o.Batch
	}
	if o.Delay < 0 {
		o.Delay = 0
	}
	if o.Poll <= 0 {
		o.Poll = 50 * time.Microsecond
	}
	return o
}

// retired is one deferred free stamped with the cookie it must outwait.
// It carries either a closure (fn, the Retire path) or a non-closure
// (rec, obj, idx) triple (the RetireObject path); the latter is what
// keeps the steady-state deferred-free path at zero allocations per
// call.
type retired struct {
	c   Cookie
	fn  func()
	rec Reclaimer
	obj any
	idx uint64
	cpu int32
}

// invoke runs the deferred work, whichever form it was enqueued in.
func (r *retired) invoke() {
	if r.rec != nil {
		r.rec.ReclaimRetired(int(r.cpu), r.obj, r.idx)
		return
	}
	r.fn()
}

// rqShard is one CPU's limbo bag. Entries are appended in Snapshot
// order, so the bag is cookie-sorted and the drainer frees a prefix.
type rqShard struct {
	// mu guards the bag only; it is released before any retired
	// function runs (retired functions take allocator locks).
	//
	//prudence:lockorder 42
	mu  stdsync.Mutex
	bag []retired //prudence:guarded_by mu
	// burst is drain-side scratch for the ready prefix, reused across
	// bursts so steady-state draining allocates nothing. Only the
	// drain side touches it (the drainer goroutine while it runs, the
	// stopping goroutine after the drainer has exited), never under mu.
	burst []retired
	// seq counts entries ever enqueued; done counts entries ever
	// invoked. Barrier waits for done to reach its snapshot of seq —
	// sound because the bag drains FIFO.
	seq  atomic.Uint64
	done atomic.Uint64
}

// RetireQueue gives per-batch schemes (ebr, nebr) their per-object
// retirement hook: per-CPU cookie-stamped limbo bags drained by one
// background goroutine as grace periods elapse. It is the moral
// equivalent of internal/rcu's callback lists, shared so every epoch
// flavor does not reimplement batching, throttling, barriers and
// pressure expediting. Drain batches scale with the backlog (see
// QueueOptions.Qhimark) so a sustained deferred-free storm cannot grow
// the limbo bags without bound — the nebr×slub endurance OOM class.
type RetireQueue struct {
	gp     GracePoller
	shards []*rqShard

	opts      QueueOptions
	pressured atomic.Bool

	pending    atomic.Int64
	maxBacklog atomic.Int64
	// expeditedDrains counts bursts that ran above the throttled batch
	// size (pressure, deep backlog, or past qhimark).
	expeditedDrains atomic.Uint64

	kick     chan struct{}
	stopOnce stdsync.Once
	stopCh   chan struct{}
	wg       stdsync.WaitGroup
}

// NewRetireQueue creates and starts a queue with one limbo bag per CPU.
func NewRetireQueue(gp GracePoller, cpus int, opts QueueOptions) *RetireQueue {
	q := &RetireQueue{
		gp:     gp,
		shards: make([]*rqShard, cpus),
		opts:   opts.withDefaults(),
		kick:   make(chan struct{}, 1),
		stopCh: make(chan struct{}),
	}
	for i := range q.shards {
		q.shards[i] = &rqShard{}
	}
	q.wg.Add(1)
	go q.drainer()
	return q
}

// Retire enqueues fn on cpu's limbo bag, stamped with the current
// grace-period cookie, and raises demand so the epoch machinery moves —
// expedited demand once the backlog has grown past the qhimark.
func (q *RetireQueue) Retire(cpu int, fn func()) {
	q.enqueue(cpu, retired{fn: fn})
}

// RetireObject is the non-closure Retire variant: same ordering
// contract, zero allocations on the enqueue path (the bag's capacity
// is reused once the drain has caught up).
func (q *RetireQueue) RetireObject(cpu int, rec Reclaimer, obj any, idx uint64) {
	q.enqueue(cpu, retired{rec: rec, obj: obj, idx: idx, cpu: int32(cpu)})
}

func (q *RetireQueue) enqueue(cpu int, r retired) {
	s := q.shards[cpu]
	r.c = q.gp.Snapshot()
	s.mu.Lock()
	s.bag = append(s.bag, r)
	s.mu.Unlock()
	s.seq.Add(1)
	n := q.pending.Add(1)
	if n > q.maxBacklog.Load() {
		q.maxBacklog.Store(n)
	}
	if q.opts.Qhimark > 0 && n > int64(q.opts.Qhimark) {
		q.gp.ExpediteGP()
	} else {
		q.gp.NeedGP()
	}
	select {
	case q.kick <- struct{}{}:
	default:
	}
}

// Pending returns the number of retired functions not yet invoked.
func (q *RetireQueue) Pending() int64 { return q.pending.Load() }

// MaxBacklog returns the high-water mark of Pending.
func (q *RetireQueue) MaxBacklog() int64 { return q.maxBacklog.Load() }

// ExpeditedDrains returns how many bursts ran above the throttled batch
// size.
func (q *RetireQueue) ExpeditedDrains() uint64 { return q.expeditedDrains.Load() }

// effectiveBatch returns the per-burst invocation bound for the current
// backlog: the throttled batch normally, the expedited batch under
// pressure or past half the qhimark, and the whole backlog once the
// qhimark itself is crossed (rcu's "limits come off entirely").
func (q *RetireQueue) effectiveBatch() (limit int, expedited bool) {
	limit = q.opts.Batch
	backlog := int(q.pending.Load())
	if q.pressured.Load() {
		limit, expedited = q.opts.ExpeditedBatch, true
	}
	if q.opts.Qhimark > 0 && backlog > q.opts.Qhimark/2 {
		limit, expedited = q.opts.ExpeditedBatch, true
		if backlog > q.opts.Qhimark {
			limit = backlog
		}
	}
	return limit, expedited
}

// SetPressure switches the queue between throttled draining (batch +
// delay) and expedited draining (larger batches, no inter-burst delay),
// mirroring the kernel's blimit lift under memory pressure.
func (q *RetireQueue) SetPressure(under bool) {
	q.pressured.Store(under)
	if under {
		q.gp.ExpediteGP()
		select {
		case q.kick <- struct{}{}:
		default:
		}
	}
}

// Barrier blocks until every retirement accepted before the call has
// been invoked, or the queue stops. Demand is re-raised on every poll:
// the epoch machinery may clear it while our cookies are still
// outstanding (the lost-demand class PR 2 fixed in rcu). A blocked
// barrier is latency-sensitive by definition, so the demand it raises
// is expedited.
func (q *RetireQueue) Barrier() {
	targets := make([]uint64, len(q.shards))
	for i, s := range q.shards {
		targets[i] = s.seq.Load()
	}
	for {
		reached := true
		for i, s := range q.shards {
			if s.done.Load() < targets[i] {
				reached = false
				break
			}
		}
		if reached {
			return
		}
		q.gp.ExpediteGP()
		select {
		case q.kick <- struct{}{}:
		default:
		}
		select {
		case <-q.stopCh:
			return
		case <-time.After(q.opts.Poll):
		}
	}
}

// Stop shuts the drainer down. Entries whose grace period has already
// elapsed are invoked (so a final Synchronize+Stop does not strand
// reclaimable memory); the rest are dropped, as on rcu.Stop.
func (q *RetireQueue) Stop() {
	q.stopOnce.Do(func() {
		close(q.stopCh)
		q.wg.Wait()
		for i := range q.shards {
			q.drainShard(i, true)
		}
	})
}

// RegisterMetrics registers the queue's observability series under the
// scheme-independent prudence_sync_retire_* names, so retire-drain
// behaviour reads identically over every backend built on the queue.
func (q *RetireQueue) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("prudence_sync_retire_backlog", "Retired objects enqueued but not yet invoked.",
		func() float64 { return float64(q.pending.Load()) })
	reg.GaugeFunc("prudence_sync_retire_backlog_peak", "High-water mark of the retire backlog.",
		func() float64 { return float64(q.maxBacklog.Load()) })
	reg.GaugeFunc("prudence_sync_retire_batch_size", "Current effective drain batch bound (backlog- and pressure-scaled).",
		func() float64 { l, _ := q.effectiveBatch(); return float64(l) })
	reg.CounterFunc("prudence_sync_retire_expedited_drains_total", "Drain bursts run above the throttled batch size.",
		func() float64 { return float64(q.expeditedDrains.Load()) })
}

func (q *RetireQueue) drainer() {
	defer q.wg.Done()
	for {
		select {
		case <-q.stopCh:
			return
		case <-q.kick:
		case <-time.After(q.opts.Poll):
		}
		for i := range q.shards {
			q.drainShard(i, false)
		}
		if q.pending.Load() > 0 {
			// Keep demand raised until the backlog clears: the epoch
			// machinery clears demand at grace-period boundaries, and
			// entries stamped just before a boundary outlive it. A
			// backlog past the qhimark means the drain is losing the
			// race — escalate.
			if q.opts.Qhimark > 0 && q.pending.Load() > int64(q.opts.Qhimark) {
				q.gp.ExpediteGP()
			} else {
				q.gp.NeedGP()
			}
		}
	}
}

// drainShard invokes the elapsed prefix of shard i's bag in bounded
// bursts, sleeping delay between bursts only at the throttled rate
// (never when pressured, backlogged past qhimark/2, or stopping).
func (q *RetireQueue) drainShard(i int, stopping bool) {
	s := q.shards[i]
	for {
		limit, expedited := q.effectiveBatch()
		s.mu.Lock()
		ready := 0
		for ready < len(s.bag) && ready < limit && q.gp.Elapsed(s.bag[ready].c) {
			ready++
		}
		if cap(s.burst) < ready {
			s.burst = make([]retired, ready)
		}
		burst := s.burst[:ready]
		copy(burst, s.bag[:ready])
		// Compact in place instead of re-slicing the front away:
		// s.bag = s.bag[ready:] would strand the drained prefix's
		// capacity and force the enqueue side to reallocate forever.
		n := copy(s.bag, s.bag[ready:])
		tail := s.bag[n:]
		for i := range tail {
			tail[i] = retired{} // drop closure/payload references
		}
		s.bag = s.bag[:n]
		s.mu.Unlock()
		if ready == 0 {
			return
		}
		if expedited {
			q.expeditedDrains.Add(1)
		}
		for i := range burst {
			burst[i].invoke()
			burst[i] = retired{}
		}
		s.done.Add(uint64(ready))
		q.pending.Add(-int64(ready))
		if stopping {
			continue
		}
		if q.opts.Delay > 0 && !expedited {
			select {
			case <-q.stopCh:
			case <-time.After(q.opts.Delay):
			}
		}
	}
}
