package sync_test

import (
	"testing"
	"time"

	"prudence/internal/hp"
	"prudence/internal/nebr"
	gsync "prudence/internal/sync"
	"prudence/internal/sync/synctest"
	"prudence/internal/vcpu"

	// Registered through init side effects; resolved by name below.
	_ "prudence/internal/ebr"
	_ "prudence/internal/rcu"
)

func TestRegistry(t *testing.T) {
	names := gsync.Backends()
	for _, want := range []string{"ebr", "hp", "nebr", "rcu"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("backend %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Backends() not sorted: %v", names)
		}
	}
	if !gsync.Registered("rcu") || gsync.Registered("no-such-scheme") {
		t.Fatal("Registered misreports")
	}
	m := vcpu.NewMachine(2)
	defer m.Stop()
	if _, err := gsync.New("no-such-scheme", m, gsync.Options{}); err == nil {
		t.Fatal("New accepted an unregistered scheme")
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { gsync.Register("", func(*vcpu.Machine, gsync.Options) gsync.Backend { return nil }) })
	mustPanic("nil factory", func() { gsync.Register("synctest-nil", nil) })
	gsync.Register("synctest-dup", func(*vcpu.Machine, gsync.Options) gsync.Backend { return nil })
	mustPanic("duplicate name", func() {
		gsync.Register("synctest-dup", func(*vcpu.Machine, gsync.Options) gsync.Backend { return nil })
	})
}

// Every registered scheme passes the shared conformance suite. nebr is
// constructed directly with its neutralization bound pushed far above
// the suite's reader-hold windows: neutralizing a deliberately pinned
// reader is its designed behaviour, and internal/nebr's own tests cover
// it; here it must behave like plain EBR.
func TestConformance(t *testing.T) {
	const cpus = 4
	factories := map[string]synctest.Factory{
		"rcu": func(t *testing.T) gsync.Backend {
			return newRegistered(t, "rcu", cpus)
		},
		"ebr": func(t *testing.T) gsync.Backend {
			return newRegistered(t, "ebr", cpus)
		},
		"hp": func(t *testing.T) gsync.Backend {
			return newRegistered(t, "hp", cpus)
		},
		"nebr": func(t *testing.T) gsync.Backend {
			m := vcpu.NewMachine(cpus)
			t.Cleanup(m.Stop)
			return nebr.New(m, nebr.Options{
				AdvanceInterval: 500 * time.Microsecond,
				NeutralizeAfter: time.Minute,
			})
		},
	}
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) { synctest.Run(t, cpus, factory) })
	}
}

func newRegistered(t *testing.T, name string, cpus int) gsync.Backend {
	t.Helper()
	m := vcpu.NewMachine(cpus)
	t.Cleanup(m.Stop)
	b, err := gsync.New(name, m, gsync.Options{GPInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The hp backend reached through the registry still exposes its native
// per-pointer API.
func TestRegistryPreservesConcreteType(t *testing.T) {
	m := vcpu.NewMachine(2)
	defer m.Stop()
	b, err := gsync.New("hp", m, gsync.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	if _, ok := b.(*hp.HP); !ok {
		t.Fatalf("registry returned %T for hp", b)
	}
}
