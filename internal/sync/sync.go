// Package sync defines the canonical synchronization-backend surface of
// the repository: one interface every procrastination-based reclamation
// scheme implements, and a name-keyed registry through which the facade
// resolves Config.Reclamation.
//
// The interface unifies what used to be four partial views of the same
// engines — core.GracePeriods (the allocator's pollable grace-period
// state, the paper's §4 integration surface), the facade's private
// readSync, rcuhash.Sync and rculist.ReadSync (the data structures'
// read-side markers) — and adds the per-object retirement hook (Retire/
// Barrier) that SLUB's deferred frees need. Per-batch schemes (rcu, ebr,
// nebr) implement Retire with a cookie-stamped queue; per-pointer
// schemes (hazard pointers) implement it with retire lists scanned
// against published protections. Both fit behind the same eleven words
// of contract: a retired function runs after every reader that could
// hold the object has finished.
//
// Backends self-register from an init function, database/sql style:
//
//	func init() {
//		sync.Register("ebr", func(m *vcpu.Machine, o sync.Options) sync.Backend {
//			return New(m, Options{AdvanceInterval: o.GPInterval / 2})
//		})
//	}
//
// so linking a backend package is all it takes to make its name
// resolvable. The facade links all four in-tree schemes ("rcu", "ebr",
// "hp", "nebr").
package sync

import (
	"fmt"
	"sort"
	stdsync "sync"
	"time"

	"prudence/internal/metrics"
	"prudence/internal/vcpu"
)

// Cookie is an opaque grace-period timestamp. Snapshot returns one;
// Elapsed answers whether every reader that existed at Snapshot time has
// finished. Cookies from one backend are meaningless to another, but
// within a backend they are monotone: a later Snapshot never returns a
// smaller cookie, and Elapsed, once true for a cookie, stays true.
//
// internal/rcu aliases this type (rcu.Cookie = sync.Cookie), so code
// written against either name compiles against both.
type Cookie uint64

// Backend is the full synchronization surface a reclamation scheme
// provides. It is the union of the read-side markers the RCU-protected
// data structures need, the pollable grace-period state the Prudence
// allocator polls (the paper's §4 "turnkey" integration surface), and
// the per-object retirement hook the SLUB baseline's deferred frees go
// through.
//
// Per-CPU calls (ReadLock, QuiescentState, Retire, ...) follow the
// repository-wide ownership contract: the caller must own the named
// virtual CPU for the duration of the call.
type Backend interface {
	// ReadLock enters a read-side critical section on cpu. Sections may
	// nest. Objects reachable inside the section are safe from
	// reclamation until the matching ReadUnlock.
	ReadLock(cpu int)
	// ReadUnlock leaves the innermost read-side critical section on cpu.
	ReadUnlock(cpu int)

	// QuiescentState reports a context-switch-equivalent point on cpu.
	// Quiescent-state-based schemes (rcu) use it to detect reader
	// completion; epoch- and pointer-based schemes treat it as a no-op.
	QuiescentState(cpu int)
	// EnterIdle marks cpu idle: an extended quiescent state excluded
	// from grace-period tracking until ExitIdle. No-op for schemes that
	// do not track per-CPU activity.
	EnterIdle(cpu int)
	// ExitIdle marks cpu active again.
	ExitIdle(cpu int)

	// Snapshot returns a cookie that elapses once every reader existing
	// now has finished.
	Snapshot() Cookie
	// Elapsed reports whether the cookie's grace period has passed.
	Elapsed(Cookie) bool
	// NeedGP signals demand for grace-period progress even with no
	// callbacks queued. Backends must tolerate lost wakeups after the
	// demand is recorded (the fault layer's lost_wakeup point): a timer
	// fallback, not the kick, is the liveness guarantee.
	NeedGP()
	// ExpediteGP raises *expedited* grace-period demand: the caller is
	// actively starved (an allocator whose latent merge found nothing
	// elapsed, an OOM-delay wait, a retire backlog past its qhimark) and
	// the backend should drive the next grace period as fast as its
	// safety protocol allows — skipping pacing gaps between advances —
	// instead of at timer cadence. It implies NeedGP. Expedited demand
	// is one-shot: it is consumed when the grace period it hastened
	// completes. The same lost-wakeup tolerance applies: recording the
	// demand, not the kick, is what the liveness guarantee rests on.
	ExpediteGP()
	// WaitElapsedOn blocks until the cookie elapses, treating the
	// calling CPU as quiescent; returns false if the backend stopped.
	//
	//prudence:may_block
	WaitElapsedOn(cpu int, c Cookie) bool
	// WaitElapsedOnTimeout is WaitElapsedOn with a deadline: it returns
	// false if d passes (or the backend stops) before the cookie
	// elapses. The allocator's OOM-delay path relies on the bounded
	// return to degrade to an out-of-memory report instead of a hang.
	//
	//prudence:may_block
	WaitElapsedOnTimeout(cpu int, c Cookie, d time.Duration) bool
	// GPsCompleted counts completed grace periods; it is monotone and
	// gates once-per-grace-period work.
	GPsCompleted() uint64
	// Synchronize blocks until a full grace period has elapsed.
	//
	//prudence:may_block
	Synchronize()
	// SynchronizeOn is Synchronize with the calling CPU treated as
	// quiescent for the duration.
	//
	//prudence:may_block
	SynchronizeOn(cpu int)

	// Retire schedules fn to run on some backend-managed goroutine once
	// every reader that might hold the retired object has finished. It
	// is the per-object retirement hook: rcu maps it to an RCU callback,
	// ebr/nebr to a cookie-stamped limbo entry, hp to a retire-list
	// entry scanned against published hazards.
	Retire(cpu int, fn func())
	// RetireObject is Retire without the closure: the same ordering
	// contract, but the deferred work is carried as a (Reclaimer, obj,
	// idx) triple instead of a heap-allocated func value. The steady-
	// state deferred-free path goes through here so that retiring an
	// object costs zero allocations per call — the reclamation scheme
	// must not itself generate the garbage it exists to manage. When
	// the grace period elapses the backend calls
	// r.ReclaimRetired(cpu, obj, idx) with the cpu the retirement was
	// enqueued on.
	RetireObject(cpu int, r Reclaimer, obj any, idx uint64)
	// Barrier blocks until every Retire accepted before the call has
	// run (or the backend stopped).
	//
	//prudence:may_block
	Barrier()

	// Stop shuts down the backend's goroutines. Idempotent. Blocked
	// waiters return.
	Stop()
	// Stopped reports whether Stop has begun. Teardown paths that loop
	// on grace-period progress (a cache drain waiting out latent
	// cookies) use it to terminate instead of spinning forever on
	// cookies that can no longer elapse.
	Stopped() bool
	// RegisterMetrics registers the backend's observability series. All
	// backends export the shared prudence_gp_* families so dashboards
	// read identically over any scheme.
	RegisterMetrics(*metrics.Registry)
}

// Reclaimer receives retirements enqueued through Backend.RetireObject
// once their grace period has elapsed. Implementations interpret (obj,
// idx) themselves — the slab allocators pass the slab pointer and the
// object index within it — so the payload stays scheme-agnostic and
// pointer-shaped: storing a pointer in obj and the implementation in
// the interface word allocates nothing.
type Reclaimer interface {
	// ReclaimRetired frees the object identified by (obj, idx). cpu is
	// the CPU the retirement was enqueued on; as with closures passed
	// to Retire, the call arrives on a backend-managed goroutine that
	// is a cross-CPU visitor, not the CPU's owner.
	ReclaimRetired(cpu int, obj any, idx uint64)
}

// PressureSetter is the optional capability of reacting to memory
// pressure by expediting reclamation (§3.5's kernel behaviour). The
// bench harness wires the page allocator's pressure notification to any
// backend that implements it.
type PressureSetter interface {
	SetPressure(under bool)
}

// Options is the scheme-independent tuning surface a factory receives.
// Zero values mean "backend default". Each factory maps these onto its
// scheme's own knobs (e.g. ebr halves GPInterval into its per-advance
// interval, since two epoch advances make one grace period).
type Options struct {
	// GPInterval is the minimum gap between grace-period boundaries.
	GPInterval time.Duration
	// PollInterval is the backend's internal re-check period for
	// straggler readers and elapsed cookies.
	PollInterval time.Duration
	// RetireBatch bounds how many retired objects are processed per
	// batch (the kernel's blimit analogue).
	RetireBatch int
	// RetireDelay is the pause between retire-processing batches.
	RetireDelay time.Duration
	// ExpeditedBlimit is the retire batch bound under memory pressure or
	// expedited demand (rcu's ExpeditedBlimit analogue).
	ExpeditedBlimit int
	// Qhimark is the retire backlog above which batch limits come off
	// entirely and the queue raises expedited grace-period demand
	// itself (rcu's qhimark analogue). Negative disables the
	// escalation.
	Qhimark int
}

// Factory builds a started backend for machine.
type Factory func(m *vcpu.Machine, o Options) Backend

var (
	registryMu stdsync.Mutex
	registry   = make(map[string]Factory)
)

// Register makes a backend constructible by name. It panics if name is
// empty, factory is nil, or name is already taken — registration
// happens in init functions, where a duplicate is a programming error.
func Register(name string, factory Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" {
		panic("sync: Register with empty backend name")
	}
	if factory == nil {
		panic(fmt.Sprintf("sync: Register(%q) with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sync: Register(%q) called twice", name))
	}
	registry[name] = factory
}

// Registered reports whether name resolves to a backend.
func Registered(name string) bool {
	registryMu.Lock()
	defer registryMu.Unlock()
	_, ok := registry[name]
	return ok
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds a started backend by registered name.
func New(name string, m *vcpu.Machine, o Options) (Backend, error) {
	registryMu.Lock()
	factory, ok := registry[name]
	registryMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("sync: unknown backend %q (registered: %v)", name, Backends())
	}
	return factory(m, o), nil
}
