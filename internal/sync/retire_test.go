package sync_test

import (
	"sync/atomic"
	"testing"
	"time"

	gsync "prudence/internal/sync"
)

// fakePoller is a hand-cranked grace-period source: cookies are epoch+1
// and elapse when Advance has been called past them. needGP and expedite
// count demand so tests can assert the queue keeps raising it and
// escalates past the qhimark.
type fakePoller struct {
	epoch    atomic.Uint64
	needGP   atomic.Uint64
	expedite atomic.Uint64
}

func (f *fakePoller) Snapshot() gsync.Cookie      { return gsync.Cookie(f.epoch.Load() + 1) }
func (f *fakePoller) Elapsed(c gsync.Cookie) bool { return f.epoch.Load() >= uint64(c) }
func (f *fakePoller) NeedGP()                     { f.needGP.Add(1) }
func (f *fakePoller) ExpediteGP()                 { f.expedite.Add(1) }
func (f *fakePoller) Advance()                    { f.epoch.Add(1) }

func TestRetireQueueDrainsInOrder(t *testing.T) {
	fp := &fakePoller{}
	q := gsync.NewRetireQueue(fp, 2, gsync.QueueOptions{Batch: 4, Poll: 100 * time.Microsecond})
	defer q.Stop()

	var order []int
	done := make(chan int, 10)
	for i := 0; i < 10; i++ {
		i := i
		q.Retire(0, func() { done <- i })
	}
	if got := q.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	// Nothing may drain before the grace period elapses.
	time.Sleep(5 * time.Millisecond)
	select {
	case i := <-done:
		t.Fatalf("entry %d drained before its cookie elapsed", i)
	default:
	}
	fp.Advance() // epoch 1 >= cookie 1
	q.Barrier()
	if got := q.Pending(); got != 0 {
		t.Fatalf("Pending = %d after Barrier", got)
	}
	close(done)
	for i := range done {
		order = append(order, i)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("drain order %v not FIFO", order)
		}
	}
	if q.MaxBacklog() != 10 {
		t.Fatalf("MaxBacklog = %d, want 10", q.MaxBacklog())
	}
	if fp.needGP.Load() == 0 {
		t.Fatal("queue never raised grace-period demand")
	}
}

// Entries stamped after an advance need a later epoch than entries from
// before it; the drainer frees exactly the elapsed prefix.
func TestRetireQueuePartialElapse(t *testing.T) {
	fp := &fakePoller{}
	q := gsync.NewRetireQueue(fp, 1, gsync.QueueOptions{Poll: 100 * time.Microsecond})
	defer q.Stop()

	var early, late atomic.Bool
	q.Retire(0, func() { early.Store(true) }) // cookie 1
	fp.Advance()                              // epoch 1
	q.Retire(0, func() { late.Store(true) })  // cookie 2

	deadline := time.Now().Add(5 * time.Second)
	for !early.Load() {
		if time.Now().After(deadline) {
			t.Fatal("elapsed entry never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if late.Load() {
		t.Fatal("un-elapsed entry drained")
	}
	fp.Advance() // epoch 2
	q.Barrier()
	if !late.Load() {
		t.Fatal("second entry not drained after its epoch")
	}
}

// Past the qhimark, Retire escalates to expedited grace-period demand
// and drains run above the throttled batch size (batch limits come off
// entirely), so a deferred-free storm cannot grow the bags unboundedly.
func TestRetireQueueQhimarkEscalation(t *testing.T) {
	fp := &fakePoller{}
	q := gsync.NewRetireQueue(fp, 1, gsync.QueueOptions{
		Batch:   4,
		Qhimark: 16,
		Delay:   time.Hour, // throttled drains would be glacial
		Poll:    100 * time.Microsecond,
	})
	defer q.Stop()

	var invoked atomic.Int64
	for i := 0; i < 64; i++ {
		q.Retire(0, func() { invoked.Add(1) })
	}
	if fp.expedite.Load() == 0 {
		t.Fatal("backlog past qhimark never raised expedited demand")
	}
	fp.Advance()
	q.Barrier()
	if got := invoked.Load(); got != 64 {
		t.Fatalf("invoked = %d, want 64", got)
	}
	if q.ExpeditedDrains() == 0 {
		t.Fatal("deep backlog drained without any expedited bursts")
	}
}

// Below the qhimark the queue raises plain demand, not expedited.
func TestRetireQueueBelowQhimarkPlainDemand(t *testing.T) {
	fp := &fakePoller{}
	q := gsync.NewRetireQueue(fp, 1, gsync.QueueOptions{
		Batch:   4,
		Qhimark: 1000,
		Poll:    time.Hour, // drainer parked: only Retire raises demand
	})
	defer q.Stop()
	for i := 0; i < 8; i++ {
		q.Retire(0, func() {})
	}
	if fp.expedite.Load() != 0 {
		t.Fatalf("expedited demand raised %d times below the qhimark", fp.expedite.Load())
	}
	if fp.needGP.Load() == 0 {
		t.Fatal("queue never raised plain demand")
	}
}

// Stop invokes already-elapsed entries (reclaimable memory must not be
// stranded) and drops the rest.
func TestRetireQueueStopDrainsElapsed(t *testing.T) {
	fp := &fakePoller{}
	q := gsync.NewRetireQueue(fp, 1, gsync.QueueOptions{Poll: time.Hour}) // drainer effectively parked
	var elapsed, pinned atomic.Bool
	q.Retire(0, func() { elapsed.Store(true) }) // cookie 1
	fp.Advance()                                // epoch 1: first entry elapsed
	q.Retire(0, func() { pinned.Store(true) })  // cookie 2: never elapses
	q.Stop()
	if !elapsed.Load() {
		t.Fatal("Stop stranded an elapsed entry")
	}
	if pinned.Load() {
		t.Fatal("Stop invoked an un-elapsed entry")
	}
}

// chanReclaimer signals each RetireObject delivery so tests can assert
// the non-closure path preserves its payload and interleaves FIFO with
// the closure path on the same shard.
type chanReclaimer struct {
	got chan [2]uint64 // {idx, cpu}
}

func (r *chanReclaimer) ReclaimRetired(cpu int, obj any, idx uint64) {
	if obj == nil {
		panic("retire_test: RetireObject payload lost its obj")
	}
	r.got <- [2]uint64{idx, uint64(cpu)}
}

func TestRetireQueueRetireObject(t *testing.T) {
	fp := &fakePoller{}
	q := gsync.NewRetireQueue(fp, 2, gsync.QueueOptions{Poll: 100 * time.Microsecond})
	defer q.Stop()

	rec := &chanReclaimer{got: make(chan [2]uint64, 8)}
	payload := new(int)
	for i := 0; i < 4; i++ {
		q.RetireObject(1, rec, payload, uint64(i))
	}
	if got := q.Pending(); got != 4 {
		t.Fatalf("Pending = %d, want 4", got)
	}
	fp.Advance()
	q.Barrier()
	if got := q.Pending(); got != 0 {
		t.Fatalf("Pending = %d after Barrier", got)
	}
	close(rec.got)
	i := uint64(0)
	for g := range rec.got {
		if g[0] != i || g[1] != 1 {
			t.Fatalf("delivery %d = {idx %d, cpu %d}, want {idx %d, cpu 1}", i, g[0], g[1], i)
		}
		i++
	}
	if i != 4 {
		t.Fatalf("reclaimer saw %d deliveries, want 4", i)
	}
}
