// Package synctest is the shared conformance suite for reclamation
// backends: every scheme registered with internal/sync must pass it
// (under -race) before the facade will treat it as interchangeable with
// the others. The suite pins down the contracts the allocator and the
// RCU-protected structures actually rely on:
//
//   - Snapshot cookies elapse after Synchronize, and GPsCompleted never
//     moves backwards.
//   - Demand raised through NeedGP survives a lost wakeup kick: the
//     driver's timer fallback must finish the grace period anyway (the
//     lost-demand bug class PR 2 and PR 5 fixed in rcu/ebr).
//   - WaitElapsedOnTimeout returns within a bounded multiple of its
//     deadline even when a pinned reader blocks the grace period.
//   - An object retired while a reader is inside a read-side critical
//     section is not reclaimed until that reader finishes; Barrier then
//     observes the reclamation.
//
// Backends with designed deviations construct themselves accordingly:
// nebr, whose whole point is that a stalled reader eventually STOPS
// blocking reclamation, must run the suite with its neutralization
// bound set far above the suite's hold windows.
package synctest

import (
	stdsync "sync"
	"testing"
	"time"

	"prudence/internal/fault"
	gsync "prudence/internal/sync"
)

// recordingReclaimer captures RetireObject deliveries for the
// conformance check of the non-closure retirement path.
type recordingReclaimer struct {
	mu  stdsync.Mutex
	got []reclaimed // under mu
}

type reclaimed struct {
	cpu int
	obj any
	idx uint64
}

func (r *recordingReclaimer) ReclaimRetired(cpu int, obj any, idx uint64) {
	r.mu.Lock()
	r.got = append(r.got, reclaimed{cpu: cpu, obj: obj, idx: idx})
	r.mu.Unlock()
}

// Factory builds a fresh backend for one subtest; the suite calls Stop
// when the subtest ends. Implementations should use a short
// grace-period interval (~1ms) so the suite runs quickly.
type Factory func(t *testing.T) gsync.Backend

// Run executes the conformance suite against fresh backends from
// factory. cpus is the CPU count the factory's machines use (the suite
// needs at least 2).
func Run(t *testing.T, cpus int, factory Factory) {
	if cpus < 2 {
		t.Fatalf("synctest: need >= 2 CPUs, got %d", cpus)
	}
	fresh := func(t *testing.T) gsync.Backend {
		b := factory(t)
		t.Cleanup(b.Stop)
		return b
	}

	t.Run("SnapshotElapses", func(t *testing.T) {
		b := fresh(t)
		c := b.Snapshot()
		b.Synchronize()
		if !b.Elapsed(c) {
			t.Fatal("cookie taken before Synchronize has not elapsed after it")
		}
		// A later cookie is never "more elapsed" than an earlier one.
		c2 := b.Snapshot()
		if b.Elapsed(c2) && !b.Elapsed(c) {
			t.Fatal("later cookie elapsed before earlier one")
		}
	})

	t.Run("GPsCompletedMonotone", func(t *testing.T) {
		b := fresh(t)
		prev := b.GPsCompleted()
		for i := 0; i < 3; i++ {
			b.Synchronize()
			cur := b.GPsCompleted()
			if cur < prev {
				t.Fatalf("GPsCompleted went backwards: %d -> %d", prev, cur)
			}
			prev = cur
		}
		if prev == 0 {
			t.Fatal("no grace periods completed across three Synchronize calls")
		}
	})

	t.Run("LostDemandRecovers", func(t *testing.T) {
		// Every NeedGP kick is dropped; only the driver's timer
		// fallback remains. Synchronize must still complete.
		fault.Enable(fault.Config{Seed: 1, Rules: map[fault.Point]fault.Rule{
			fault.LostWakeup: {Rate: 1.0},
		}})
		defer fault.Disable()
		b := fresh(t)
		done := make(chan struct{})
		go func() {
			defer close(done)
			b.Synchronize()
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("Synchronize hung with NeedGP kicks suppressed — timer fallback missing")
		}
	})

	t.Run("TimeoutBounded", func(t *testing.T) {
		b := fresh(t)
		held := make(chan struct{})
		release := make(chan struct{})
		readerDone := make(chan struct{})
		go func() {
			defer close(readerDone)
			b.ExitIdle(1)
			b.ReadLock(1)
			close(held)
			<-release //prudence:nolint:sleepcheck the harness pins a reader on purpose: it parks inside the read-side section until the test releases it
			b.ReadUnlock(1)
			b.EnterIdle(1)
		}()
		<-held
		c := b.Snapshot()
		const d = 30 * time.Millisecond
		start := time.Now()
		b.WaitElapsedOnTimeout(0, c, d)
		if took := time.Since(start); took > 100*d {
			t.Fatalf("WaitElapsedOnTimeout(%v) blocked for %v with a pinned reader", d, took)
		}
		close(release)
		<-readerDone
		if !b.WaitElapsedOn(0, c) {
			t.Fatal("WaitElapsedOn failed after the reader released")
		}
	})

	t.Run("RetireBlockedByReader", func(t *testing.T) {
		b := fresh(t)
		held := make(chan struct{})
		release := make(chan struct{})
		readerDone := make(chan struct{})
		go func() {
			defer close(readerDone)
			b.ExitIdle(1)
			b.ReadLock(1)
			close(held)
			<-release //prudence:nolint:sleepcheck the harness pins a reader on purpose: it parks inside the read-side section until the test releases it
			b.ReadUnlock(1)
			b.EnterIdle(1)
		}()
		<-held
		freed := make(chan struct{})
		b.Retire(0, func() { close(freed) })
		select {
		case <-freed:
			t.Fatal("retired object reclaimed while a reader was pinned")
		case <-time.After(50 * time.Millisecond):
		}
		close(release)
		<-readerDone
		b.Barrier()
		select {
		case <-freed:
		default:
			t.Fatal("Barrier returned before the retired object was reclaimed")
		}
	})

	t.Run("RetireObjectRuns", func(t *testing.T) {
		// The non-closure retirement path: payloads survive the trip
		// through the backend's retire machinery intact and arrive at
		// the reclaimer after their grace period, covered by Barrier.
		b := fresh(t)
		rec := &recordingReclaimer{}
		objs := make([]int, 4)
		for i := range objs {
			b.RetireObject(0, rec, &objs[i], uint64(i))
		}
		b.Synchronize()
		b.Barrier()
		rec.mu.Lock()
		defer rec.mu.Unlock()
		if len(rec.got) != len(objs) {
			t.Fatalf("reclaimer saw %d retirements, want %d", len(rec.got), len(objs))
		}
		for i, g := range rec.got {
			if g.cpu != 0 {
				t.Errorf("retirement %d arrived with cpu %d, want 0", i, g.cpu)
			}
			if g.obj != any(&objs[g.idx]) {
				t.Errorf("retirement idx %d arrived with wrong obj pointer", g.idx)
			}
		}
	})

	t.Run("ExpeditedDemandCompletes", func(t *testing.T) {
		// The expedited contract: ExpediteGP raised while a reader is
		// pinned must drive a grace period to completion within a
		// bounded number of poll passes once the reader releases — the
		// demand may not be lost to the pacing machinery it bypasses.
		b := fresh(t)
		held := make(chan struct{})
		release := make(chan struct{})
		readerDone := make(chan struct{})
		go func() {
			defer close(readerDone)
			b.ExitIdle(1)
			b.ReadLock(1)
			close(held)
			<-release //prudence:nolint:sleepcheck the harness pins a reader on purpose: it parks inside the read-side section until the test releases it
			b.ReadUnlock(1)
			b.EnterIdle(1)
		}()
		<-held
		c := b.Snapshot()
		b.ExpediteGP()
		close(release)
		<-readerDone
		const passes = 2000
		for i := 0; i < passes; i++ {
			if b.Elapsed(c) {
				return
			}
			b.QuiescentState(0)
			time.Sleep(100 * time.Microsecond)
		}
		t.Fatalf("cookie not elapsed within %d poll passes of expedited demand", passes)
	})

	t.Run("ExpediteImpliesNeedGP", func(t *testing.T) {
		// ExpediteGP alone (no NeedGP, no waiter) must complete a grace
		// period: it implies plain demand.
		b := fresh(t)
		c := b.Snapshot()
		b.ExpediteGP()
		deadline := time.Now().Add(30 * time.Second)
		for !b.Elapsed(c) {
			if time.Now().After(deadline) {
				t.Fatal("ExpediteGP without other demand never completed a grace period")
			}
			b.QuiescentState(0)
			time.Sleep(100 * time.Microsecond)
		}
	})

	t.Run("NestedReadLock", func(t *testing.T) {
		b := fresh(t)
		done := make(chan struct{})
		go func() {
			defer close(done)
			b.ExitIdle(0)
			b.ReadLock(0)
			b.ReadLock(0)
			b.ReadUnlock(0)
			b.ReadUnlock(0)
			b.QuiescentState(0)
			b.EnterIdle(0)
		}()
		<-done
		b.Synchronize()
	})
}
