package alloc_test

import (
	"strings"
	"testing"

	"prudence/internal/alloc"
	"prudence/internal/alloctest"
	"prudence/internal/core"
	"prudence/internal/slub"
)

func builders() map[string]alloctest.BuildAllocator {
	return map[string]alloctest.BuildAllocator{
		"slub": func(s *alloctest.Stack) alloc.Allocator {
			return slub.New(s.Pages, s.RCU, s.Machine.NumCPU())
		},
		"prudence": func(s *alloctest.Stack) alloc.Allocator {
			return core.New(s.Pages, s.RCU, s.Machine, core.Options{})
		},
	}
}

func TestKmallocSizeClasses(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			cfg := alloctest.DefaultStackConfig()
			cfg.Pages = 8192
			s := alloctest.NewStack(t, cfg, build)
			k := alloc.NewKmalloc(s.Alloc, s.Machine.NumCPU())

			if got := len(k.Caches()); got != len(alloc.KmallocSizes) {
				t.Fatalf("%d caches, want %d", got, len(alloc.KmallocSizes))
			}
			// Requests route to the smallest class that fits.
			cases := []struct{ req, class int }{
				{1, 64}, {64, 64}, {65, 128}, {128, 128},
				{129, 256}, {500, 512}, {513, 1024}, {4096, 4096},
			}
			for _, c := range cases {
				cache := k.CacheFor(c.req)
				if cache == nil || cache.ObjectSize() != c.class {
					t.Errorf("CacheFor(%d) -> %v, want class %d", c.req, cache, c.class)
				}
			}
			if k.CacheFor(4097) != nil {
				t.Error("CacheFor beyond the largest class should be nil")
			}
			if _, err := k.Malloc(0, 5000); err == nil {
				t.Error("Malloc beyond the largest class should fail")
			} else if !strings.Contains(err.Error(), "exceeds") {
				t.Errorf("unhelpful error: %v", err)
			}

			// Round-trip through the front: Free and FreeDeferred find
			// the owning class from the object size.
			r, err := k.Malloc(0, 100) // -> kmalloc-128
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Bytes()) != 128 {
				t.Fatalf("object size %d, want 128", len(r.Bytes()))
			}
			k.Free(0, r)
			r2, err := k.Malloc(0, 2000) // -> kmalloc-2048
			if err != nil {
				t.Fatal(err)
			}
			k.FreeDeferred(0, r2)
			c128 := k.CacheFor(128).Counters().Snapshot()
			if c128.Allocs != 1 || c128.Frees != 1 {
				t.Errorf("kmalloc-128 counters: %+v", c128)
			}
			c2048 := k.CacheFor(2048).Counters().Snapshot()
			if c2048.DeferredFrees != 1 {
				t.Errorf("kmalloc-2048 counters: %+v", c2048)
			}
			for _, c := range k.Caches() {
				c.Drain()
			}
			if used := s.Arena.UsedPages(); used != 0 {
				t.Fatalf("%d pages leaked", used)
			}
		})
	}
}

func TestKmallocNamesMatchKernelConvention(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), builders()["prudence"])
	k := alloc.NewKmalloc(s.Alloc, s.Machine.NumCPU())
	for i, c := range k.Caches() {
		want := alloc.KmallocSizes[i]
		if c.Name() != "kmalloc-"+itoa(want) {
			t.Errorf("cache %d named %q", want, c.Name())
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
