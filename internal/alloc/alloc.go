// Package alloc defines the allocator abstraction shared by the SLUB
// baseline and Prudence so that workloads, examples and the benchmark
// harness can run identically over either allocator and compare the
// attributes the paper reports.
package alloc

import (
	"fmt"
	"sort"

	"prudence/internal/metrics"
	"prudence/internal/slabcore"
	"prudence/internal/stats"
	"prudence/internal/trace"
)

// Cache is one slab cache: a named pool of fixed-size objects.
type Cache interface {
	// Name returns the cache's report name (e.g. "filp").
	Name() string
	// ObjectSize returns the object size in bytes.
	ObjectSize() int
	// Malloc allocates one object on the calling CPU. It returns
	// pagealloc.ErrOutOfMemory (possibly wrapped) when the machine is
	// out of memory.
	Malloc(cpu int) (slabcore.Ref, error)
	// Free immediately returns an object.
	Free(cpu int, r slabcore.Ref)
	// FreeDeferred defers the freeing of an object until a grace period
	// has elapsed. For SLUB this registers an RCU callback (Listing 1);
	// for Prudence this is the turnkey free_deferred API (Listing 2).
	FreeDeferred(cpu int, r slabcore.Ref)
	// Counters exposes the cache's live metric counters.
	Counters() *stats.AllocCounters
	// Fragmentation returns the paper's total-fragmentation metric and
	// its byte components.
	Fragmentation() (ft float64, allocatedBytes, requestedBytes int64)
	// Drain flushes all per-CPU state back to slabs, waits for any
	// pending deferred objects to become reclaimable, and returns all
	// free slabs to the page allocator. Used at end of run for
	// accounting and teardown.
	Drain()
	// SetTrace attaches an event ring recording the cache's slow-path
	// activity (nil detaches).
	SetTrace(r *trace.Ring)
}

// Allocator constructs caches. One Allocator instance manages one
// machine-wide allocator (either SLUB or Prudence).
type Allocator interface {
	// Name identifies the allocator in reports ("slub" or "prudence").
	Name() string
	// NewCache creates a cache from an explicit configuration.
	NewCache(cfg slabcore.CacheConfig) Cache
	// Caches returns all caches created so far.
	Caches() []Cache
	// RegisterMetrics registers the allocator's observability series
	// (per-cache counters plus any allocator-specific gauges).
	RegisterMetrics(r *metrics.Registry)
}

// cacheCounterFields maps one metric family onto each counter the paper
// reports per cache (Figures 7-12).
var cacheCounterFields = []struct {
	name, help string
	read       func(c *stats.AllocCounters) uint64
}{
	{"prudence_cache_allocs_total", "Allocation requests.",
		func(c *stats.AllocCounters) uint64 { return c.Allocs() }},
	{"prudence_cache_hits_total", "Allocations served from the per-CPU object cache.",
		func(c *stats.AllocCounters) uint64 { return c.CacheHits() }},
	{"prudence_cache_latent_hits_total", "Allocations served by merging safe latent objects (Prudence).",
		func(c *stats.AllocCounters) uint64 { return c.LatentHits() }},
	{"prudence_cache_refills_total", "Object cache refill operations.",
		func(c *stats.AllocCounters) uint64 { return c.Refills.Load() }},
	{"prudence_cache_partial_refills_total", "Refills that were deliberately partial (Prudence).",
		func(c *stats.AllocCounters) uint64 { return c.PartialFills.Load() }},
	{"prudence_cache_flushes_total", "Object cache flush operations.",
		func(c *stats.AllocCounters) uint64 { return c.Flushes.Load() }},
	{"prudence_cache_preflushes_total", "Idle-time latent cache pre-flushes (Prudence).",
		func(c *stats.AllocCounters) uint64 { return c.PreFlushes.Load() }},
	{"prudence_cache_grows_total", "Slab cache grow operations.",
		func(c *stats.AllocCounters) uint64 { return c.Grows.Load() }},
	{"prudence_cache_shrinks_total", "Slab cache shrink operations.",
		func(c *stats.AllocCounters) uint64 { return c.Shrinks.Load() }},
	{"prudence_cache_frees_total", "Immediate frees.",
		func(c *stats.AllocCounters) uint64 { return c.Frees() }},
	{"prudence_cache_deferred_frees_total", "Frees deferred for a grace period.",
		func(c *stats.AllocCounters) uint64 { return c.DeferredFrees() }},
	{"prudence_cache_premoves_total", "Slab pre-movements between node lists (Prudence).",
		func(c *stats.AllocCounters) uint64 { return c.PreMoves.Load() }},
	{"prudence_cache_gp_waits_total", "Allocations that waited for a grace period (OOM delay).",
		func(c *stats.AllocCounters) uint64 { return c.GPWaits.Load() }},
	{"prudence_cache_oom_delay_timeouts_total", "OOM-delay waits that timed out before a grace period elapsed.",
		func(c *stats.AllocCounters) uint64 { return c.OOMDelayTimeouts.Load() }},
	{"prudence_cache_oom_total", "Allocations that failed with out-of-memory.",
		func(c *stats.AllocCounters) uint64 { return c.OOMs.Load() }},
}

// RegisterCacheMetrics registers the per-cache counter and gauge
// families for allocator a. Samples are produced by enumerating
// a.Caches() at scrape time, so caches created after registration are
// picked up automatically and the allocation hot path pays nothing.
func RegisterCacheMetrics(r *metrics.Registry, a Allocator) {
	r.GaugeFunc("prudence_allocator_info", "Constant 1, labelled with the active allocator.",
		func() float64 { return 1 }, metrics.L("allocator", a.Name()))
	for _, f := range cacheCounterFields {
		r.CollectCounters(f.name, f.help, func(emit metrics.Emit) {
			for _, c := range a.Caches() {
				emit(float64(f.read(c.Counters())), metrics.L("cache", c.Name()))
			}
		})
	}
	r.CollectGauges("prudence_cache_slabs", "Slabs currently allocated per cache.",
		func(emit metrics.Emit) {
			for _, c := range a.Caches() {
				emit(float64(c.Counters().CurrentSlabs()), metrics.L("cache", c.Name()))
			}
		})
	r.CollectGauges("prudence_cache_slabs_peak", "High-water mark of allocated slabs per cache.",
		func(emit metrics.Emit) {
			for _, c := range a.Caches() {
				emit(float64(c.Counters().PeakSlabs()), metrics.L("cache", c.Name()))
			}
		})
	r.CollectGauges("prudence_cache_fragmentation_ratio", "Total fragmentation F_T per cache (allocated/requested bytes).",
		func(emit metrics.Emit) {
			for _, c := range a.Caches() {
				ft, _, _ := c.Fragmentation()
				emit(ft, metrics.L("cache", c.Name()))
			}
		})
}

// KmallocSizes are the power-of-two size classes used by the general
// -purpose allocation front, mirroring the kernel's kmalloc caches used
// in the paper's micro-benchmark (Figure 6).
var KmallocSizes = []int{64, 128, 256, 512, 1024, 2048, 4096}

// Kmalloc is a size-class front over an Allocator: Malloc(size) routes
// to the smallest kmalloc cache that fits, like the kernel's kmalloc.
type Kmalloc struct {
	sizes  []int
	caches []Cache
}

// NewKmalloc creates the kmalloc size-class caches on a. cpus is the
// machine's CPU count used for default cache sizing.
func NewKmalloc(a Allocator, cpus int) *Kmalloc {
	k := &Kmalloc{sizes: KmallocSizes}
	for _, sz := range k.sizes {
		cfg := slabcore.DefaultConfig(fmt.Sprintf("kmalloc-%d", sz), sz, cpus)
		k.caches = append(k.caches, a.NewCache(cfg))
	}
	return k
}

// CacheFor returns the kmalloc cache serving allocations of size bytes,
// or nil if size exceeds the largest class.
func (k *Kmalloc) CacheFor(size int) Cache {
	i := sort.SearchInts(k.sizes, size)
	if i >= len(k.sizes) {
		return nil
	}
	return k.caches[i]
}

// Malloc allocates size bytes on cpu from the matching size class.
func (k *Kmalloc) Malloc(cpu, size int) (slabcore.Ref, error) {
	c := k.CacheFor(size)
	if c == nil {
		return slabcore.Ref{}, fmt.Errorf("alloc: kmalloc size %d exceeds largest class %d", size, k.sizes[len(k.sizes)-1])
	}
	return c.Malloc(cpu)
}

// Free returns an object to its size class. The object must have been
// allocated through this Kmalloc front.
func (k *Kmalloc) Free(cpu int, r slabcore.Ref) {
	k.cacheOf(r).Free(cpu, r)
}

// FreeDeferred defer-frees an object allocated through this front.
func (k *Kmalloc) FreeDeferred(cpu int, r slabcore.Ref) {
	k.cacheOf(r).FreeDeferred(cpu, r)
}

func (k *Kmalloc) cacheOf(r slabcore.Ref) Cache {
	size := len(r.Bytes())
	c := k.CacheFor(size)
	if c == nil || c.ObjectSize() != size {
		panic(fmt.Sprintf("alloc: object of size %d was not allocated by this kmalloc front", size))
	}
	return c
}

// Caches returns the size-class caches in ascending size order.
func (k *Kmalloc) Caches() []Cache { return k.caches }
