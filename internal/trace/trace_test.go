package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {100, 128}, {1024, 1024},
	}
	for _, c := range cases {
		if got := NewRing(c.in).Cap(); got != c.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	r := NewRing(16)
	r.Record(KindRefill, 2, 8, 1)
	r.Record(KindFlush, 3, 4, 0)
	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("Snapshot len = %d", len(evs))
	}
	if evs[0].Kind != KindRefill || evs[0].CPU != 2 || evs[0].Arg1 != 8 || evs[0].Arg2 != 1 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != KindFlush {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestOverwriteKeepsNewest(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 40; i++ {
		r.Record(KindMalloc, 0, int64(i), 0)
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	for i, e := range evs {
		if e.Arg1 != int64(24+i) {
			t.Fatalf("event %d has arg1=%d, want %d (oldest-first ordering)", i, e.Arg1, 24+i)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindNone; k <= KindOOM; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if s := Kind(200).String(); !strings.HasPrefix(s, "Kind(") {
		t.Errorf("unknown kind renders %q", s)
	}
}

func TestDumpAndCounts(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 5; i++ {
		r.Record(KindGrow, 1, 1, 0)
	}
	r.Record(KindShrink, 1, 3, 0)
	counts := r.CountByKind()
	if counts[KindGrow] != 5 || counts[KindShrink] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	dump := r.Dump(2)
	lines := strings.Count(dump, "\n")
	if lines != 2 {
		t.Fatalf("Dump(2) has %d lines:\n%s", lines, dump)
	}
	if !strings.Contains(dump, "shrink") {
		t.Fatalf("dump missing newest event:\n%s", dump)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRing(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(KindDefer, cpu, int64(i), 0)
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 8000 {
		t.Fatalf("Len = %d, want 8000", r.Len())
	}
	evs := r.Snapshot()
	if len(evs) == 0 || len(evs) > 1024 {
		t.Fatalf("Snapshot retained %d", len(evs))
	}
	for _, e := range evs {
		if e.Kind != KindDefer {
			t.Fatalf("torn event: %+v", e)
		}
	}
}
