// Package trace provides a low-overhead, fixed-capacity event ring for
// observing allocator behaviour: cache refills and flushes, slab grows,
// shrinks and pre-movements, latent merges and grace-period waits. The
// benchmark CLI can attach a ring to a cache and dump the trailing
// events, which is how the churn patterns of §3 were inspected during
// development.
//
// Recording is wait-free (one atomic increment plus a slot write); the
// ring overwrites its oldest entries when full. Events carry a
// coarse-grained wall-clock timestamp, the CPU, and two free-form
// arguments whose meaning depends on the kind.
package trace

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Kind identifies an event type.
type Kind uint8

// Event kinds.
const (
	KindNone     Kind = iota
	KindMalloc        // arg1 = object index, arg2 = 1 for cache hit
	KindFree          // arg1 = object index
	KindDefer         // arg1 = object index, arg2 = grace-period cookie
	KindRefill        // arg1 = objects moved, arg2 = 1 when partial
	KindFlush         // arg1 = objects moved
	KindGrow          // arg1 = slabs added
	KindShrink        // arg1 = slabs returned
	KindPreMove       // arg1 = destination list id
	KindPreFlush      // arg1 = objects moved to latent slabs
	KindMerge         // arg1 = objects merged from latent cache
	KindGPWait        // allocation waited for a grace period
	KindOOM           // allocation failed with out-of-memory
)

var kindNames = [...]string{
	KindNone:     "none",
	KindMalloc:   "malloc",
	KindFree:     "free",
	KindDefer:    "defer",
	KindRefill:   "refill",
	KindFlush:    "flush",
	KindGrow:     "grow",
	KindShrink:   "shrink",
	KindPreMove:  "premove",
	KindPreFlush: "preflush",
	KindMerge:    "merge",
	KindGPWait:   "gpwait",
	KindOOM:      "oom",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded occurrence.
type Event struct {
	At   time.Time
	Kind Kind
	CPU  int32
	Arg1 int64
	Arg2 int64
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("%s cpu%d %s arg1=%d arg2=%d",
		e.At.Format("15:04:05.000000"), e.CPU, e.Kind, e.Arg1, e.Arg2)
}

// Ring is a fixed-capacity overwrite-on-full event buffer, safe for
// concurrent recording from any goroutine.
type Ring struct {
	slots []slot
	next  atomic.Uint64
	mask  uint64
}

type slot struct {
	seq atomic.Uint64 // odd while being written; event valid when even and non-zero
	ev  Event
}

// NewRing creates a ring holding up to capacity events, rounded up to a
// power of two (minimum 16).
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Record appends an event, overwriting the oldest when full.
func (r *Ring) Record(kind Kind, cpu int, arg1, arg2 int64) {
	idx := r.next.Add(1) - 1
	s := &r.slots[idx&r.mask]
	// Seqlock-style: odd marks the slot as mid-write so Snapshot can
	// discard torn reads.
	seq := s.seq.Add(1) // odd
	_ = seq
	s.ev = Event{At: time.Now(), Kind: kind, CPU: int32(cpu), Arg1: arg1, Arg2: arg2}
	s.seq.Add(1) // even
}

// Len returns how many events have ever been recorded (not the number
// retained).
func (r *Ring) Len() int { return int(r.next.Load()) }

// Snapshot returns the retained events, oldest first. Events being
// written concurrently are skipped.
func (r *Ring) Snapshot() []Event {
	total := r.next.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if total > n {
		start = total - n
	}
	out := make([]Event, 0, total-start)
	for i := start; i < total; i++ {
		s := &r.slots[i&r.mask]
		before := s.seq.Load()
		if before%2 != 0 {
			continue // mid-write
		}
		ev := s.ev
		if s.seq.Load() != before {
			continue // overwritten while reading
		}
		if ev.Kind == KindNone {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// CountByKind tallies the retained events.
func (r *Ring) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range r.Snapshot() {
		out[e.Kind]++
	}
	return out
}

// Dump renders the trailing max events, oldest first.
func (r *Ring) Dump(max int) string {
	evs := r.Snapshot()
	if max > 0 && len(evs) > max {
		evs = evs[len(evs)-max:]
	}
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
