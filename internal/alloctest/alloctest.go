// Package alloctest provides a reusable test harness and conformance
// suite run against both allocators (internal/slub and internal/core).
// Behaviours every correct allocator in this system must exhibit —
// round-trip integrity, no reuse of deferred objects before their grace
// period, balanced accounting after drain — are encoded once here.
package alloctest

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"testing"
	"time"

	"prudence/internal/alloc"
	"prudence/internal/memarena"
	"prudence/internal/pagealloc"
	"prudence/internal/rcu"
	"prudence/internal/slabcore"
	"prudence/internal/vcpu"
)

// Stack bundles a full simulated machine: arena, page allocator, CPUs,
// RCU engine and an allocator under test.
type Stack struct {
	Arena   *memarena.Arena
	Pages   *pagealloc.Allocator
	Machine *vcpu.Machine
	RCU     *rcu.RCU
	Alloc   alloc.Allocator
}

// StackConfig controls stack construction.
type StackConfig struct {
	CPUs  int
	Pages int
	// Arena names the memarena backend; empty falls back to the
	// PRUDENCE_ARENA environment variable and then the default, so CI
	// can sweep the whole allocator test suite across backends without
	// touching individual tests.
	Arena string
	RCU   rcu.Options
}

// DefaultStackConfig returns a small fast stack for unit tests.
func DefaultStackConfig() StackConfig {
	return StackConfig{
		CPUs:  4,
		Pages: 2048,
		RCU: rcu.Options{
			Blimit:         32,
			ThrottleDelay:  50 * time.Microsecond,
			MinGPInterval:  100 * time.Microsecond,
			QSPollInterval: 10 * time.Microsecond,
		},
	}
}

// BuildAllocator constructs the allocator under test from the stack's
// substrates.
type BuildAllocator func(s *Stack) alloc.Allocator

// NewStack builds a stack and registers cleanup with t.
func NewStack(t testing.TB, cfg StackConfig, build BuildAllocator) *Stack {
	t.Helper()
	backend := cfg.Arena
	if backend == "" {
		backend = os.Getenv("PRUDENCE_ARENA")
	}
	if backend == "" {
		backend = memarena.DefaultBackend
	}
	s := &Stack{}
	arena, err := memarena.NewBackend(backend, cfg.Pages)
	if err != nil {
		t.Fatalf("alloctest: %v", err)
	}
	s.Arena = arena
	s.Pages = pagealloc.New(s.Arena)
	s.Machine = vcpu.NewMachine(cfg.CPUs)
	s.RCU = rcu.New(s.Machine, cfg.RCU)
	s.Alloc = build(s)
	t.Cleanup(func() {
		s.RCU.Stop()
		s.Machine.Stop()
		s.Arena.Close()
	})
	return s
}

// Auditor is implemented by caches that can verify their structural
// invariants; the conformance suite audits after every drain.
type Auditor interface {
	Audit() error
}

func audit(t *testing.T, c alloc.Cache) {
	t.Helper()
	if a, ok := c.(Auditor); ok {
		if err := a.Audit(); err != nil {
			t.Fatalf("post-drain audit: %v", err)
		}
	}
}

// TestCacheConfig returns a small cache configuration with poisoning on,
// so use-after-free through stale refs is detectable.
func TestCacheConfig(name string) slabcore.CacheConfig {
	return slabcore.CacheConfig{
		Name:          name,
		ObjectSize:    256,
		SlabOrder:     0, // 16 objects per slab
		CacheSize:     8,
		FreeSlabLimit: 2,
		Poison:        true,
	}
}

// RunConformance runs the cross-allocator behavioural suite. build must
// return a fresh allocator for the given stack.
func RunConformance(t *testing.T, build BuildAllocator) {
	t.Run("AllocFreeRoundTrip", func(t *testing.T) {
		s := NewStack(t, DefaultStackConfig(), build)
		c := s.Alloc.NewCache(TestCacheConfig("rt"))
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Bytes()) != 256 {
			t.Fatalf("object size %d, want 256", len(r.Bytes()))
		}
		copy(r.Bytes(), []byte("payload"))
		c.Free(0, r)
		ctr := c.Counters().Snapshot()
		if ctr.Allocs != 1 || ctr.Frees != 1 {
			t.Fatalf("counters allocs=%d frees=%d, want 1/1", ctr.Allocs, ctr.Frees)
		}
	})

	t.Run("ObjectsDistinct", func(t *testing.T) {
		s := NewStack(t, DefaultStackConfig(), build)
		c := s.Alloc.NewCache(TestCacheConfig("distinct"))
		const n = 100
		refs := make([]slabcore.Ref, n)
		for i := range refs {
			r, err := c.Malloc(0)
			if err != nil {
				t.Fatal(err)
			}
			binary.LittleEndian.PutUint64(r.Bytes(), uint64(i))
			refs[i] = r
		}
		for i, r := range refs {
			if got := binary.LittleEndian.Uint64(r.Bytes()); got != uint64(i) {
				t.Fatalf("object %d holds %d: objects overlap", i, got)
			}
			c.Free(0, r)
		}
	})

	t.Run("DeferredNotReusedBeforeGracePeriod", func(t *testing.T) {
		s := NewStack(t, DefaultStackConfig(), build)
		c := s.Alloc.NewCache(TestCacheConfig("defer"))
		// Hold a read-side critical section on CPU 1 so no grace period
		// can complete.
		s.RCU.ExitIdle(1)
		s.RCU.ReadLock(1)

		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		marker := r.Bytes()
		copy(marker, []byte("LIVE-DATA"))
		// Capture the handle before the deferred free: the object is
		// dead to us afterwards (no-touch-after-defer), but the test
		// still needs its identity to detect premature reuse.
		deadSlab, deadIdx := r.Slab, r.Idx
		c.FreeDeferred(0, r)

		// Allocate aggressively on CPU 0: none of these may alias the
		// deferred object while the grace period is blocked.
		var got []slabcore.Ref
		for i := 0; i < 200; i++ {
			nr, err := c.Malloc(0)
			if err != nil {
				t.Fatal(err)
			}
			if nr.Slab == deadSlab && nr.Idx == deadIdx {
				t.Fatalf("deferred object handed out before grace period (iteration %d)", i)
			}
			got = append(got, nr)
		}
		if string(marker[:9]) != "LIVE-DATA" {
			t.Fatal("deferred object memory was overwritten before grace period")
		}
		for _, nr := range got {
			c.Free(0, nr)
		}
		// Release the reader; the object must eventually become
		// reusable (Drain waits for it).
		s.RCU.ReadUnlock(1)
		s.RCU.QuiescentState(1)
		s.RCU.EnterIdle(1)
		c.Drain()
		if used := s.Arena.UsedPages(); used != 0 {
			t.Fatalf("%d pages still used after drain", used)
		}
	})

	t.Run("DeferredReusableAfterGracePeriod", func(t *testing.T) {
		s := NewStack(t, DefaultStackConfig(), build)
		c := s.Alloc.NewCache(TestCacheConfig("reuse"))
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		// Capture the handle before the deferred free (the object is
		// dead to us afterwards); the loop below watches for it to be
		// handed out again.
		deadSlab, deadIdx := r.Slab, r.Idx
		c.FreeDeferred(0, r)
		s.RCU.Synchronize()
		// The object must come back through Malloc eventually: for SLUB
		// once the callback processor frees it, for Prudence at the next
		// cache miss (so allocate in batches larger than the object
		// cache to force misses).
		batch := TestCacheConfig("reuse").CacheSize + 2
		deadline := time.Now().Add(5 * time.Second)
		for {
			same := false
			refs := make([]slabcore.Ref, 0, batch)
			for i := 0; i < batch; i++ {
				nr, err := c.Malloc(0)
				if err != nil {
					t.Fatal(err)
				}
				if nr.Slab == deadSlab && nr.Idx == deadIdx {
					same = true
				}
				refs = append(refs, nr)
			}
			for _, nr := range refs {
				c.Free(0, nr)
			}
			if same {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("deferred object never became reusable")
			}
			time.Sleep(100 * time.Microsecond)
		}
	})

	t.Run("DrainReturnsAllMemory", func(t *testing.T) {
		s := NewStack(t, DefaultStackConfig(), build)
		c := s.Alloc.NewCache(TestCacheConfig("drain"))
		rng := rand.New(rand.NewSource(7))
		var live []slabcore.Ref
		for i := 0; i < 3000; i++ {
			switch {
			case len(live) == 0 || rng.Intn(3) == 0:
				r, err := c.Malloc(0)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, r)
			case rng.Intn(2) == 0:
				i := rng.Intn(len(live))
				c.Free(0, live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			default:
				i := rng.Intn(len(live))
				c.FreeDeferred(0, live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, r := range live {
			c.Free(0, r)
		}
		c.Drain()
		audit(t, c)
		if used := s.Arena.UsedPages(); used != 0 {
			t.Fatalf("%d pages leaked after drain", used)
		}
		ctr := c.Counters().Snapshot()
		if ctr.CurrentSlabs != 0 {
			t.Fatalf("%d slabs still accounted after drain", ctr.CurrentSlabs)
		}
		if ctr.Frees+ctr.DeferredFrees != ctr.Allocs {
			t.Fatalf("allocs=%d frees=%d deferred=%d unbalanced", ctr.Allocs, ctr.Frees, ctr.DeferredFrees)
		}
	})

	t.Run("OOMOnExhaustion", func(t *testing.T) {
		cfg := DefaultStackConfig()
		cfg.Pages = 8
		s := NewStack(t, cfg, build)
		c := s.Alloc.NewCache(TestCacheConfig("oom"))
		var live []slabcore.Ref
		var sawOOM bool
		for i := 0; i < 8*16+10; i++ {
			r, err := c.Malloc(0)
			if err != nil {
				if !errors.Is(err, pagealloc.ErrOutOfMemory) {
					t.Fatalf("unexpected error %v", err)
				}
				sawOOM = true
				break
			}
			live = append(live, r)
		}
		if !sawOOM {
			t.Fatal("allocator never reported OOM on a full arena")
		}
		for _, r := range live {
			c.Free(0, r)
		}
		c.Drain()
	})

	t.Run("ConcurrentMixedWorkload", func(t *testing.T) {
		s := NewStack(t, DefaultStackConfig(), build)
		c := s.Alloc.NewCache(TestCacheConfig("conc"))
		s.Machine.RunOnAll(func(cpu *vcpu.CPU) {
			id := cpu.ID()
			s.RCU.ExitIdle(id)
			defer s.RCU.EnterIdle(id)
			rng := rand.New(rand.NewSource(int64(id)))
			var live []slabcore.Ref
			for i := 0; i < 2000; i++ {
				if rng.Intn(2) == 0 || len(live) == 0 {
					r, err := c.Malloc(id)
					if err != nil {
						t.Errorf("cpu %d: %v", id, err)
						return
					}
					live = append(live, r)
				} else {
					j := rng.Intn(len(live))
					if rng.Intn(2) == 0 {
						c.Free(id, live[j])
					} else {
						c.FreeDeferred(id, live[j])
					}
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				s.RCU.QuiescentState(id)
			}
			for _, r := range live {
				c.Free(id, r)
			}
		})
		c.Drain()
		audit(t, c)
		if used := s.Arena.UsedPages(); used != 0 {
			t.Fatalf("%d pages leaked after concurrent workload", used)
		}
	})

	t.Run("MultipleCaches", func(t *testing.T) {
		s := NewStack(t, DefaultStackConfig(), build)
		c1 := s.Alloc.NewCache(TestCacheConfig("a"))
		cfg2 := TestCacheConfig("b")
		cfg2.ObjectSize = 512
		c2 := s.Alloc.NewCache(cfg2)
		r1, err := c1.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := c2.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Bytes()) == len(r2.Bytes()) {
			t.Fatal("caches share object size unexpectedly")
		}
		if got := len(s.Alloc.Caches()); got != 2 {
			t.Fatalf("Caches() = %d entries, want 2", got)
		}
		c1.Free(0, r1)
		c2.Free(0, r2)
		c1.Drain()
		c2.Drain()
	})

	t.Run("MultiNodeNUMA", func(t *testing.T) {
		s := NewStack(t, DefaultStackConfig(), build)
		cfg := TestCacheConfig("numa")
		cfg.Nodes = 2
		c := s.Alloc.NewCache(cfg)
		// CPUs 0-1 sit on node 0, CPUs 2-3 on node 1. Allocate on one
		// node, free and defer-free from the other: objects must return
		// to their owning slab's node regardless of the freeing CPU.
		var fromNode0 []slabcore.Ref
		for i := 0; i < 64; i++ {
			r, err := c.Malloc(0)
			if err != nil {
				t.Fatal(err)
			}
			fromNode0 = append(fromNode0, r)
		}
		var fromNode1 []slabcore.Ref
		for i := 0; i < 64; i++ {
			r, err := c.Malloc(3)
			if err != nil {
				t.Fatal(err)
			}
			fromNode1 = append(fromNode1, r)
		}
		for i, r := range fromNode0 {
			if i%2 == 0 {
				c.Free(3, r) // cross-node immediate free
			} else {
				c.FreeDeferred(3, r) // cross-node deferred free
			}
		}
		for _, r := range fromNode1 {
			c.Free(0, r)
		}
		c.Drain()
		audit(t, c)
		if used := s.Arena.UsedPages(); used != 0 {
			t.Fatalf("%d pages leaked after cross-node traffic", used)
		}
	})

	t.Run("FragmentationReported", func(t *testing.T) {
		s := NewStack(t, DefaultStackConfig(), build)
		c := s.Alloc.NewCache(TestCacheConfig("frag"))
		var refs []slabcore.Ref
		for i := 0; i < 16; i++ {
			r, err := c.Malloc(0)
			if err != nil {
				t.Fatal(err)
			}
			refs = append(refs, r)
		}
		ft, allocated, requested := c.Fragmentation()
		if requested != 16*256 {
			t.Fatalf("requested = %d, want %d", requested, 16*256)
		}
		if allocated < requested {
			t.Fatalf("allocated %d < requested %d", allocated, requested)
		}
		if ft < 1.0 {
			t.Fatalf("fragmentation %v < 1", ft)
		}
		for _, r := range refs {
			c.Free(0, r)
		}
		c.Drain()
	})
}
