// Package a is the rcucheck fixture: List.head is an RCU-published
// pointer with WMu as its writer lock, and fault-injection calls need
// their audit annotation. (Use-after-FreeDeferred moved to the
// retirecheck fixture.)
package a

import (
	"sync"
	"sync/atomic"

	"prudence/internal/fault"
)

// RS mimics internal/rcu's read-side API: recognition is by method
// name, so any type with ReadLock/ReadUnlock works.
type RS struct{}

func (r *RS) ReadLock(cpu int)   {}
func (r *RS) ReadUnlock(cpu int) {}

//prudence:lockorder 10
type WMu struct{ mu sync.Mutex }

func (w *WMu) Lock()   { w.mu.Lock() }
func (w *WMu) Unlock() { w.mu.Unlock() }

type Node struct{ V int }

type List struct {
	wmu  WMu
	head atomic.Pointer[Node] //prudence:rcu WMu
}

func GoodRead(l *List, r *RS) *Node {
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	return l.head.Load()
}

func BadRead(l *List) *Node {
	return l.head.Load() // want `loads RCU pointer a\.List\.head outside a read-side critical section`
}

// Holding the writer lock is as good as a read-side section.
func WriterRead(l *List) *Node {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	return l.head.Load()
}

func GoodPublish(l *List, n *Node) {
	l.wmu.Lock()
	l.head.Store(n)
	l.wmu.Unlock()
}

func BadPublish(l *List, n *Node) {
	l.head.Store(n) // want `publishes RCU pointer a\.List\.head without holding writer lock WMu`
}

// The rcu_read contract marks callers already inside a section.
//
//prudence:rcu_read
func Marked(l *List) *Node {
	return l.head.Load()
}

// A fresh list is unpublished; its constructor may store directly.
func NewList(n *Node) *List {
	l := &List{}
	l.head.Store(n)
	return l
}

// Cache mimics the allocator's deferred-free entry point; the taint it
// seeds is retirecheck's contract now, but the fault probes below still
// key off a deferred object.
type Cache struct{}

func (c *Cache) FreeDeferred(cpu int, n *Node) {}

//prudence:nocheck rcucheck
func Suppressed(l *List) *Node {
	return l.head.Load()
}

// An annotated injection site is an audited probe.
func AnnotatedFaultProbe(c *Cache, n *Node) {
	c.FreeDeferred(0, n)
	//prudence:fault_point
	fault.Fire(fault.Point(n.V))
}

// Without the annotation the injection call is illegal (retirecheck
// additionally flags the probe argument as a use-after-retire).
func UnannotatedFaultProbe(c *Cache, n *Node) {
	c.FreeDeferred(0, n)
	fault.Fire(fault.Point(n.V)) // want `fault injection site must be annotated //prudence:fault_point`
}

// Harness plumbing (Enable, Enabled, ...) is not an injection point and
// needs no annotation.
func FaultPlumbing() bool {
	return fault.Enabled()
}

// The annotation on anything that is not an injection call is misuse:
// it would silently grant a taint exemption.

//prudence:fault_point
var notAFaultPoint = 0 // want `prudence:fault_point does not annotate a call into internal/fault`

var _ = notAFaultPoint
