package rcucheck

import (
	"testing"

	"prudence/internal/analysis/analysistest"
)

func TestRCUCheck(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/a")
}
