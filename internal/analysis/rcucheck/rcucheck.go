// Package rcucheck is the sparse-__rcu analogue for this module's RCU
// discipline. It enforces two contracts:
//
//  1. Fields annotated //prudence:rcu [<writer-spec>] are RCU-published
//     pointers. Loading one requires a read-side critical section
//     (a ReadLock call in scope, or a //prudence:rcu_read caller
//     contract) or the writer lock; storing one requires the declared
//     writer lock class (rcu_assign_pointer discipline). Stores are
//     unchecked when no writer spec is declared.
//
//  2. Calls into internal/fault's injection entry points (Fire,
//     FireDelay, Sleep) must carry a //prudence:fault_point annotation
//     on the call line or the line above. Annotated injection sites are
//     deliberate, audited probes; unannotated injection calls are
//     reported, as is a fault_point annotation on anything that is not
//     an injection call.
//
// The no-touch-after-FreeDeferred taint that used to live here moved to
// the interprocedural retirecheck analyzer, which sees retires through
// helper calls via effect summaries instead of resetting at every call
// boundary.
package rcucheck

import (
	"go/ast"
	"go/token"
	"strings"

	"prudence/internal/analysis"
	"prudence/internal/analysis/annot"
	"prudence/internal/analysis/lockstate"
)

// Analyzer is the rcucheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "rcucheck",
	Doc:  "check read-side access to prudence:rcu pointers and fault-point annotations",
	Run:  run,
}

var rcuMethods = map[string]bool{
	"Load": true, "Store": true, "Swap": true, "CompareAndSwap": true,
}

func run(pass *analysis.Pass) error {
	fp := collectFaultPoints(pass)
	for _, f := range pass.Files {
		checkFaultPoints(pass, f, fp)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if annot.FuncHas(fn, annot.VerbNoCheck, "rcucheck") {
				continue
			}
			checkRCUPointers(pass, fn)
		}
	}
	fp.reportUnused(pass)
	return nil
}

type fileLine struct {
	file string
	line int
}

// faultPoints indexes every //prudence:fault_point comment in the
// package by file and line, tracking which ones an injection call
// consumed.
type faultPoints struct {
	fset  *token.FileSet
	lines map[fileLine]token.Pos
	used  map[fileLine]bool
}

func collectFaultPoints(pass *analysis.Pass) *faultPoints {
	fp := &faultPoints{
		fset:  pass.Fset,
		lines: make(map[fileLine]token.Pos),
		used:  make(map[fileLine]bool),
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, d := range annot.Parse(cg) {
				if d.Verb != annot.VerbFaultPoint {
					continue
				}
				p := pass.Fset.Position(d.Pos)
				fp.lines[fileLine{p.Filename, p.Line}] = d.Pos
			}
		}
	}
	return fp
}

// annotated reports whether call carries a fault_point annotation (on
// its own line or the line above), consuming it.
func (fp *faultPoints) annotated(call *ast.CallExpr) bool {
	p := fp.fset.Position(call.Pos())
	for _, line := range []int{p.Line, p.Line - 1} {
		k := fileLine{p.Filename, line}
		if _, ok := fp.lines[k]; ok {
			fp.used[k] = true
			return true
		}
	}
	return false
}

// reportUnused flags fault_point annotations that no injection call
// consumed: the annotation on arbitrary code would silently grant a
// taint exemption it must not have. The report points at the line the
// annotation claims to cover.
func (fp *faultPoints) reportUnused(pass *analysis.Pass) {
	for k, pos := range fp.lines {
		if fp.used[k] {
			continue
		}
		at := pos
		if tf := fp.fset.File(pos); tf != nil && k.line+1 <= tf.LineCount() {
			at = tf.LineStart(k.line + 1)
		}
		pass.Reportf(at, "prudence:fault_point does not annotate a call into internal/fault")
	}
}

// checkFaultPoints requires the fault_point annotation on every
// injection call in f.
func checkFaultPoints(pass *analysis.Pass, f *ast.File, fp *faultPoints) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lockstate.IsFaultInjection(pass.TypesInfo, call) && !fp.annotated(call) {
			pass.Reportf(call.Pos(), "fault injection site must be annotated //prudence:fault_point")
		}
		return true
	})
}

// checkRCUPointers walks fn with lock/read-depth state and validates
// every accessor call on an annotated pointer field. The walker
// consumes effect summaries, so a helper that enters a read-side
// section (or returns holding the writer lock) for its caller counts.
func checkRCUPointers(pass *analysis.Pass, fn *ast.FuncDecl) {
	w := &lockstate.Walker{Info: pass.TypesInfo, Table: pass.Directives, Callees: pass.Summaries}
	w.Hooks.OnNode = func(n ast.Node, st *lockstate.State) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !rcuMethods[sel.Sel.Name] {
			return
		}
		fieldSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return
		}
		key := lockstate.FieldKey(pass.TypesInfo, fieldSel)
		if key == "" {
			return
		}
		info, ok := pass.Directives.RCUPtrInfo(key)
		if !ok {
			return
		}
		if base := baseIdent(fieldSel); base != nil {
			obj := pass.TypesInfo.Uses[base]
			if obj == nil {
				obj = pass.TypesInfo.Defs[base]
			}
			if st.IsFresh(obj) {
				return // init-before-publish
			}
		}
		writerHeld := info.Writer != "" && st.HoldsSpec(info.Writer)
		if sel.Sel.Name == "Load" {
			if st.ReadDepth == 0 && !writerHeld {
				pass.Reportf(sel.Sel.Pos(), "loads RCU pointer %s outside a read-side critical section", shortKey(key))
			}
			return
		}
		if info.Writer == "" {
			return // store discipline unknown without a writer spec
		}
		if !writerHeld {
			pass.Reportf(sel.Sel.Pos(), "publishes RCU pointer %s without holding writer lock %s", shortKey(key), info.Writer)
		}
	}
	w.Walk(fn)
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
