// Package rcucheck is the sparse-__rcu analogue for this module's RCU
// discipline. It enforces two contracts:
//
//  1. Fields annotated //prudence:rcu [<writer-spec>] are RCU-published
//     pointers. Loading one requires a read-side critical section
//     (a ReadLock call in scope, or a //prudence:rcu_read caller
//     contract) or the writer lock; storing one requires the declared
//     writer lock class (rcu_assign_pointer discipline). Stores are
//     unchecked when no writer spec is declared.
//
//  2. A value passed to any FreeDeferred method is dead to the caller:
//     the paper's no-touch-after-defer rule. Any later use of the same
//     variable (or a field/element reached through it) in the function
//     is flagged; rebinding the variable kills the taint.
//
//  3. Calls into internal/fault's injection entry points (Fire,
//     FireDelay, Sleep) must carry a //prudence:fault_point annotation
//     on the call line or the line above. Annotated injection sites are
//     deliberate, audited probes and are exempt from contract 2's taint
//     (a probe may key off a deferred object's identity); unannotated
//     injection calls are reported, as is a fault_point annotation on
//     anything that is not an injection call.
package rcucheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"prudence/internal/analysis"
	"prudence/internal/analysis/annot"
	"prudence/internal/analysis/lockstate"
)

// Analyzer is the rcucheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "rcucheck",
	Doc:  "check read-side access to prudence:rcu pointers and no-use-after-FreeDeferred",
	Run:  run,
}

var rcuMethods = map[string]bool{
	"Load": true, "Store": true, "Swap": true, "CompareAndSwap": true,
}

func run(pass *analysis.Pass) error {
	fp := collectFaultPoints(pass)
	for _, f := range pass.Files {
		checkFaultPoints(pass, f, fp)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if annot.FuncHas(fn, annot.VerbNoCheck, "rcucheck") {
				continue
			}
			checkRCUPointers(pass, fn)
			checkFreeDeferred(pass, fn, fp)
		}
	}
	fp.reportUnused(pass)
	return nil
}

// faultPkgPath is the injection layer; calls into it are legitimate
// only at annotated fault points.
const faultPkgPath = "prudence/internal/fault"

// faultInjectionFuncs are the entry points that perturb execution; the
// rest of the fault API (Enable, Current, ...) is harness plumbing and
// needs no annotation.
var faultInjectionFuncs = map[string]bool{
	"Fire": true, "FireDelay": true, "Sleep": true,
}

type fileLine struct {
	file string
	line int
}

// faultPoints indexes every //prudence:fault_point comment in the
// package by file and line, tracking which ones an injection call
// consumed.
type faultPoints struct {
	fset  *token.FileSet
	lines map[fileLine]token.Pos
	used  map[fileLine]bool
}

func collectFaultPoints(pass *analysis.Pass) *faultPoints {
	fp := &faultPoints{
		fset:  pass.Fset,
		lines: make(map[fileLine]token.Pos),
		used:  make(map[fileLine]bool),
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, d := range annot.Parse(cg) {
				if d.Verb != annot.VerbFaultPoint {
					continue
				}
				p := pass.Fset.Position(d.Pos)
				fp.lines[fileLine{p.Filename, p.Line}] = d.Pos
			}
		}
	}
	return fp
}

// annotated reports whether call carries a fault_point annotation (on
// its own line or the line above), consuming it.
func (fp *faultPoints) annotated(call *ast.CallExpr) bool {
	p := fp.fset.Position(call.Pos())
	for _, line := range []int{p.Line, p.Line - 1} {
		k := fileLine{p.Filename, line}
		if _, ok := fp.lines[k]; ok {
			fp.used[k] = true
			return true
		}
	}
	return false
}

// reportUnused flags fault_point annotations that no injection call
// consumed: the annotation on arbitrary code would silently grant a
// taint exemption it must not have. The report points at the line the
// annotation claims to cover.
func (fp *faultPoints) reportUnused(pass *analysis.Pass) {
	for k, pos := range fp.lines {
		if fp.used[k] {
			continue
		}
		at := pos
		if tf := fp.fset.File(pos); tf != nil && k.line+1 <= tf.LineCount() {
			at = tf.LineStart(k.line + 1)
		}
		pass.Reportf(at, "prudence:fault_point does not annotate a call into internal/fault")
	}
}

// isFaultInjection reports whether call invokes one of internal/fault's
// injection entry points.
func isFaultInjection(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !faultInjectionFuncs[sel.Sel.Name] {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == faultPkgPath
}

// checkFaultPoints requires the fault_point annotation on every
// injection call in f.
func checkFaultPoints(pass *analysis.Pass, f *ast.File, fp *faultPoints) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isFaultInjection(pass.TypesInfo, call) && !fp.annotated(call) {
			pass.Reportf(call.Pos(), "fault injection site must be annotated //prudence:fault_point")
		}
		return true
	})
}

// checkRCUPointers walks fn with lock/read-depth state and validates
// every accessor call on an annotated pointer field.
func checkRCUPointers(pass *analysis.Pass, fn *ast.FuncDecl) {
	w := &lockstate.Walker{Info: pass.TypesInfo, Table: pass.Directives}
	w.Hooks.OnNode = func(n ast.Node, st *lockstate.State) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !rcuMethods[sel.Sel.Name] {
			return
		}
		fieldSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return
		}
		key := lockstate.FieldKey(pass.TypesInfo, fieldSel)
		if key == "" {
			return
		}
		info, ok := pass.Directives.RCUPtrInfo(key)
		if !ok {
			return
		}
		if base := baseIdent(fieldSel); base != nil {
			obj := pass.TypesInfo.Uses[base]
			if obj == nil {
				obj = pass.TypesInfo.Defs[base]
			}
			if st.IsFresh(obj) {
				return // init-before-publish
			}
		}
		writerHeld := info.Writer != "" && st.HoldsSpec(info.Writer)
		if sel.Sel.Name == "Load" {
			if st.ReadDepth == 0 && !writerHeld {
				pass.Reportf(sel.Sel.Pos(), "loads RCU pointer %s outside a read-side critical section", shortKey(key))
			}
			return
		}
		if info.Writer == "" {
			return // store discipline unknown without a writer spec
		}
		if !writerHeld {
			pass.Reportf(sel.Sel.Pos(), "publishes RCU pointer %s without holding writer lock %s", shortKey(key), info.Writer)
		}
	}
	w.Walk(fn)
}

// taintKey identifies a tainted storage path by the base variable's
// types.Object plus the rendered path. Keying on the object (not the
// name) means a later variable that merely reuses the name — a new
// range variable, a shadowing declaration — carries no stale taint.
type taintKey struct {
	obj  types.Object
	path string
}

// checkFreeDeferred implements the no-touch-after-defer taint: once a
// value is handed to FreeDeferred, later uses in source order are
// reported until the variable is rebound. if/else branches are walked
// with separate taint sets and merged by union (may-taint), so a
// deferred free in one branch does not poison its sibling branch but
// still covers everything after the if.
func checkFreeDeferred(pass *analysis.Pass, fn *ast.FuncDecl, fp *faultPoints) {
	if fn.Body == nil {
		return
	}
	taints := make(map[taintKey]token.Pos)

	keyOf := func(e ast.Expr) (taintKey, bool) {
		path := exprPath(e)
		if path == "" {
			return taintKey{}, false
		}
		base := baseIdent(e)
		if base == nil {
			return taintKey{}, false
		}
		obj := pass.TypesInfo.Uses[base]
		if obj == nil {
			obj = pass.TypesInfo.Defs[base]
		}
		if obj == nil {
			return taintKey{}, false
		}
		return taintKey{obj: obj, path: path}, true
	}

	checkUse := func(e ast.Expr, k taintKey) bool {
		for tk, pos := range taints {
			if tk.obj != k.obj || e.Pos() <= pos {
				continue
			}
			if k.path == tk.path || strings.HasPrefix(k.path, tk.path+".") {
				pass.Reportf(e.Pos(), "uses %s after it was passed to FreeDeferred", k.path)
				return true
			}
		}
		return false
	}

	var visit func(n ast.Node) bool
	inspect := func(n ast.Node) {
		if n != nil {
			ast.Inspect(n, visit)
		}
	}
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			if x.Init != nil {
				inspect(x.Init)
			}
			inspect(x.Cond)
			before := make(map[taintKey]token.Pos, len(taints))
			for k, v := range taints {
				before[k] = v
			}
			inspect(x.Body)
			afterThen := taints
			taints = before
			if x.Else != nil {
				inspect(x.Else)
			}
			for k, v := range afterThen { // union: taint from either branch
				if _, ok := taints[k]; !ok {
					taints[k] = v
				}
			}
			return false
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				inspect(r)
			}
			for _, l := range x.Lhs {
				k, ok := keyOf(l)
				switch {
				case !ok:
					inspect(l)
				case strings.IndexByte(k.path, '.') < 0:
					// Rebinding the variable itself kills every taint
					// rooted at it.
					for tk := range taints {
						if tk.obj == k.obj {
							delete(taints, tk)
						}
					}
				default:
					if _, tainted := taints[k]; tainted {
						delete(taints, k) // rebinding the tainted field
						continue
					}
					if checkUse(l, k) {
						continue
					}
					inspect(l)
				}
			}
			return false
		case *ast.CallExpr:
			if isFaultInjection(pass.TypesInfo, x) && fp.annotated(x) {
				// Annotated injection sites are audited probes: they
				// may key off a deferred object's identity without
				// counting as a use of it.
				return false
			}
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if ok && sel.Sel.Name == "FreeDeferred" {
				inspect(x.Fun)
				for _, arg := range x.Args {
					inspect(arg)
				}
				for _, arg := range x.Args {
					if isScalar(pass.TypesInfo, arg) {
						continue
					}
					if k, ok := keyOf(arg); ok {
						taints[k] = x.End()
					}
				}
				return false
			}
			return true
		case *ast.SelectorExpr:
			if k, ok := keyOf(x); ok {
				if checkUse(x, k) {
					return false
				}
			}
			return true
		case *ast.Ident:
			if k, ok := keyOf(x); ok {
				checkUse(x, k)
			}
			return true
		}
		return true
	}
	ast.Inspect(fn.Body, visit)
}

// exprPath renders a pure ident/selector chain ("c.base.n"), or "".
func exprPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// isScalar reports whether arg's type is a basic type (ints, strings):
// scalars passed to FreeDeferred (the cpu number) carry no freed state.
func isScalar(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return true
	}
	_, basic := tv.Type.Underlying().(*types.Basic)
	return basic
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
