// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against x/tools-style expectations: a comment
//
//	// want "regexp" "another regexp"
//
// on a source line declares that the analyzer must report, on that
// line, one diagnostic matching each regexp. Diagnostics with no
// matching expectation, and expectations with no matching diagnostic,
// both fail the test.
//
// Fixture packages live under each analyzer's testdata directory. The
// testdata name keeps them out of ./... wildcards — `go build ./...`
// and prudence-vet's CI run never see the deliberately-broken code —
// while an explicit relative pattern (./testdata/src/a) loads them
// through the same driver the production tool uses.
package analysistest

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"prudence/internal/analysis"
	"prudence/internal/analysis/driver"
)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the packages matching patterns (relative to the test's
// working directory, i.e. the analyzer's package directory) and applies
// a to them, matching diagnostics against // want comments.
func Run(t *testing.T, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	load, err := driver.LoadPackages(".", patterns)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	for _, d := range load.DirectiveErrs {
		t.Errorf("malformed directive: %s", d)
	}

	// Analyze the whole fixture closure, not just the named packages: a
	// cross-package fixture's imported testdata packages carry // want
	// comments of their own, and diagnostics against them must be
	// asserted, not dropped.
	inTargets := make(map[string]bool, len(load.Targets))
	for _, pkg := range load.Targets {
		inTargets[pkg.ImportPath] = true
	}
	for _, pkg := range load.Local {
		if !inTargets[pkg.ImportPath] && strings.Contains(pkg.ImportPath, "/testdata/") {
			load.Targets = append(load.Targets, pkg)
		}
	}

	want := make(map[string][]*expectation) // "file:line" → expectations
	for _, pkg := range load.Targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := load.Fset.Position(c.Pos())
					res, perr := parseWant(c.Text)
					if perr != nil {
						t.Fatalf("%s: %v", pos, perr)
					}
					for _, re := range res {
						key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
						want[key] = append(want[key], &expectation{re: re})
					}
				}
			}
		}
	}

	findings, err := driver.Run(load, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		match := false
		for _, exp := range want[key] {
			if !exp.matched && exp.re.MatchString(f.Message) {
				exp.matched = true
				match = true
				break
			}
		}
		if !match {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for key, exps := range want {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: no diagnostic matching %q", key, exp.re)
			}
		}
	}
}

// RunSummaryGolden loads the single package matching pattern, renders
// the computed effect summaries of every function in its testdata
// closure, and diffs the result against the golden file. Run with
// PRUDENCE_UPDATE_GOLDEN=1 to rewrite the golden after an intentional
// change.
func RunSummaryGolden(t *testing.T, goldenPath string, pattern string) {
	t.Helper()
	load, err := driver.LoadPackages(".", []string{pattern})
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	var b strings.Builder
	for _, pkg := range load.Targets {
		b.WriteString(load.Summaries.Render(pkg.ImportPath + "."))
	}
	got := b.String()
	if os.Getenv("PRUDENCE_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("updating golden: %v", err)
		}
		return
	}
	wantBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with PRUDENCE_UPDATE_GOLDEN=1 to create it): %v", err)
	}
	if got != string(wantBytes) {
		t.Errorf("summaries diverge from %s (PRUDENCE_UPDATE_GOLDEN=1 to accept):\n--- got ---\n%s--- want ---\n%s", goldenPath, got, wantBytes)
	}
}

// parseWant extracts the regexps from a `// want "re" ...` comment.
// Comments without the want marker return nil.
func parseWant(text string) ([]*regexp.Regexp, error) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want ")
	if !ok {
		return nil, nil
	}
	var out []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		lit, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("want comment: expected quoted regexp at %q", rest)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("want comment: %v", err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return nil, fmt.Errorf("want comment: bad regexp %q: %v", unq, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(rest[len(lit):])
	}
	return out, nil
}
