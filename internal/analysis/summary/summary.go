// Package summary computes per-function effect summaries for the
// prudence-vet analyzers and propagates them to fixpoint over the
// module's call graph — the interprocedural layer that lets sleepcheck,
// retirecheck, lockorder and guardedby reason across function
// boundaries instead of conservatively forgetting state at every call.
//
// For every function declared in a module-local package, the summary
// records:
//
//   - may-block: the function can suspend the calling goroutine — a
//     channel send/receive, a select without default, a range over a
//     channel, time.Sleep, sync.WaitGroup.Wait / sync.Cond.Wait, a raw
//     syscall, a grace-period wait (Synchronize*/WaitElapsed*/Barrier,
//     by interface annotation or name), or a call to any function whose
//     summary may block.
//   - may-lock: the function can acquire a blocking (sleeping) mutex —
//     sync.Mutex/RWMutex.Lock or an annotated non-spin lock class.
//     Spin-class acquisitions (//prudence:lockorder <rank> spin) are
//     deliberately excluded: they never sleep, and taking one under a
//     read-side section is legal, as in the kernel.
//   - acquires: every annotated lock class the function (transitively)
//     acquires — lockorder's input for call-site rank checks.
//   - net-held / net-read: annotated classes still held, and the
//     read-side depth change, when the function returns — so a helper
//     that locks and returns locked, or enters a read-side section for
//     its caller, propagates that state (lockstate.CallEffects).
//   - retires: which parameters (receiver included) are passed —
//     directly or through callees — to a FreeDeferred method:
//     retirecheck's input for interprocedural double-retire and
//     use-after-retire.
//
// Summaries are propagated callee-to-caller in reverse topological
// order over the call graph's strongly connected components; recursive
// components iterate to fixpoint (effects are monotone and bounded, so
// the iteration terminates).
//
// Soundness gaps (documented in DESIGN.md §8): function values and
// closures passed as arguments are not attributed to the receiving
// call; goroutine bodies are excluded (they run concurrently); calls
// through interfaces merge no concrete summaries and rely on the
// //prudence:may_block annotation or the wait-method name table;
// reflection is invisible.
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"prudence/internal/analysis/annot"
	"prudence/internal/analysis/lockstate"
)

// Reason says why an effect holds, positioned at its source.
type Reason struct {
	Pos  token.Pos
	What string
}

// FuncEffect is one function's computed effect summary.
type FuncEffect struct {
	Key     string
	Pos     token.Pos
	HasBody bool
	// MayBlockAnnot records a //prudence:may_block declaration on the
	// function itself (verified by sleepcheck against the computed
	// effects).
	MayBlockAnnot bool

	// Blocks is non-nil when the function may suspend the goroutine.
	Blocks *Reason
	// LocksMutex is non-nil when the function may acquire a blocking
	// (non-spin) lock.
	LocksMutex *Reason
	// Acquires maps every annotated lock class the function may
	// (transitively) acquire to a representative position.
	Acquires map[string]token.Pos
	// AcquiresIndexed marks classes acquired through an indexed
	// receiver somewhere in the chain (shards[i].mu) — the escalation
	// idiom lockorder must not flag across calls.
	AcquiresIndexed map[string]bool
	// NetRead is the net read-side depth change at return.
	NetRead int
	// Retires maps argument index → reason. Index 0 is the receiver
	// for methods; parameters follow. For plain functions parameters
	// start at 0.
	Retires map[int]*Reason

	netHeld map[string]int // class key → net acquisitions held at exit

	d direct // immutable direct effects; fixpoint folds callees on top
}

// NetHeld returns the annotated class keys still held when the
// function returns, sorted.
func (f *FuncEffect) NetHeld() []string {
	var out []string
	for k, n := range f.netHeld {
		if n > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// NetReleased returns the annotated class keys the function releases
// on its caller's behalf (more textual unlocks than locks — pagealloc's
// unlockFrom), sorted. The count is flow-insensitive, so a function
// whose every early-return path unlocks once can tally negative too;
// over-releasing is the safe direction (the walker's held set clamps
// at empty).
func (f *FuncEffect) NetReleased() []string {
	var out []string
	for k, n := range f.netHeld {
		if n < 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

type callsite struct {
	key  string
	pos  token.Pos
	stmt bool // statement-level: net effects apply to the caller
	// argParams[i] is the caller parameter index passed as callee
	// argument i (receiver = 0), or -1.
	argParams []int
}

type direct struct {
	blocks, locksMutex *Reason
	acquires           map[string]token.Pos
	acquiresIndexed    map[string]bool
	netRead            int
	netHeld            map[string]int
	retires            map[int]*Reason
	calls              []callsite
}

// Pkg is one module-local package's source and type information.
type Pkg struct {
	Path  string
	Files []*ast.File
	Info  *types.Info
}

// Set is the module-wide summary table.
type Set struct {
	funcs map[string]*FuncEffect
	table *annot.Table
}

// Func returns the summary for key, or nil. A nil Set has no
// summaries (the methods tolerate it so analyzers can hand a possibly
// absent Set straight to lockstate.Walker.Callees).
func (s *Set) Func(key string) *FuncEffect {
	if s == nil {
		return nil
	}
	return s.funcs[key]
}

// Len returns the number of summarized functions.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.funcs)
}

// Keys returns every summarized function key, sorted.
func (s *Set) Keys() []string {
	out := make([]string, 0, len(s.funcs))
	for k := range s.funcs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NetEffects implements lockstate.CallEffects.
func (s *Set) NetEffects(key string) (held []lockstate.HeldEffect, released []string, readDelta int, ok bool) {
	f := s.Func(key)
	if f == nil {
		return nil, nil, 0, false
	}
	for _, k := range f.NetHeld() {
		held = append(held, lockstate.HeldEffect{Class: k, Indexed: f.AcquiresIndexed[k]})
	}
	return held, f.NetReleased(), f.NetRead, true
}

// Short strips the module-path prefix from a function or class key for
// diagnostics: "prudence/internal/rcu.RCU.Synchronize" →
// "rcu.RCU.Synchronize".
func Short(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// waitMethods are method names that wait for a grace period (or retire
// drain) by contract. They classify calls through interfaces and
// export-data-only functions, where no body is available to analyze;
// the //prudence:may_block annotation is the declarative override.
var waitMethods = map[string]bool{
	"Synchronize":          true,
	"SynchronizeOn":        true,
	"WaitElapsed":          true,
	"WaitElapsedOn":        true,
	"WaitElapsedOnTimeout": true,
	"Barrier":              true,
}

// externalEffect classifies a call against the stdlib blocking tables:
// time.Sleep, sync's waiting primitives, and raw syscalls. Lock-class
// acquisitions are classified separately (they carry annotations).
func externalEffect(fn *types.Func, call *ast.CallExpr) (blocks, locks *Reason) {
	if fn == nil || fn.Pkg() == nil {
		return nil, nil
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		if name == "Sleep" {
			return &Reason{call.Pos(), "calls time.Sleep"}, nil
		}
	case "sync":
		switch name {
		case "Wait": // WaitGroup.Wait, Cond.Wait
			return &Reason{call.Pos(), "calls sync " + recvName(fn) + ".Wait"}, nil
		case "Lock", "RLock":
			return nil, &Reason{call.Pos(), "acquires a sync." + recvName(fn)}
		}
	case "syscall":
		return &Reason{call.Pos(), "calls syscall." + name}, nil
	}
	return nil, nil
}

func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// externalFallback classifies a call to a function with no computed
// summary: a //prudence:may_block declaration (interface methods,
// boundary APIs) or a grace-period wait method by name.
func (s *Set) externalFallback(key string, pos token.Pos) *Reason {
	if key == "" {
		return nil
	}
	if s.table.FuncMayBlock(key) {
		return &Reason{pos, "calls " + Short(key) + " (declared //prudence:may_block)"}
	}
	if i := strings.LastIndex(key, "."); i >= 0 && waitMethods[key[i+1:]] {
		return &Reason{pos, "calls " + Short(key) + ", which waits for a grace period"}
	}
	return nil
}

// CallEffect classifies one call expression against the completed
// summary set: (blocks, locks) reasons, either possibly nil. This is
// sleepcheck's per-call entry point.
func (s *Set) CallEffect(info *types.Info, call *ast.CallExpr) (blocks, locks *Reason) {
	op, h := lockstate.Classify(info, s.table, call)
	switch op {
	case lockstate.OpAcquire:
		if !h.Class.Spin && isBlockingAcquire(call) {
			return nil, &Reason{call.Pos(), fmt.Sprintf("acquires blocking lock %s", Short(h.Class.Key))}
		}
		return nil, nil
	case lockstate.OpRelease, lockstate.OpReadLock, lockstate.OpReadUnlock:
		return nil, nil
	}
	fn := lockstate.CalleeFunc(info, call)
	if b, l := externalEffect(fn, call); b != nil || l != nil {
		return b, l
	}
	key := lockstate.FuncKey(fn)
	if f := s.funcs[key]; f != nil {
		if f.Blocks != nil {
			blocks = &Reason{call.Pos(), "calls " + Short(key) + ", which may block (" + f.Blocks.What + ")"}
		}
		if f.LocksMutex != nil {
			locks = &Reason{call.Pos(), "calls " + Short(key) + ", which " + f.LocksMutex.What}
		}
		return blocks, locks
	}
	return s.externalFallback(key, call.Pos()), nil
}

// CallRetires reports which argument indices of call are retired by the
// callee (receiver = index 0 for method calls): retirecheck's per-call
// entry point. The FreeDeferred method name is itself the base
// contract, with or without an analyzed body.
func (s *Set) CallRetires(info *types.Info, call *ast.CallExpr) map[int]*Reason {
	fn := lockstate.CalleeFunc(info, call)
	key := lockstate.FuncKey(fn)
	if f := s.funcs[key]; f != nil && len(f.Retires) > 0 {
		return f.Retires
	}
	if fn != nil && fn.Name() == "FreeDeferred" {
		out := make(map[int]*Reason)
		sig := fn.Type().(*types.Signature)
		base := 0
		if sig.Recv() != nil {
			base = 1
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if isScalar(sig.Params().At(i).Type()) {
				continue
			}
			out[base+i] = &Reason{call.Pos(), "passed to FreeDeferred"}
		}
		return out
	}
	return nil
}

// isBlockingAcquire reports whether the lock call's method blocks
// (Lock/LockRemote/RLock — TryLock never does).
func isBlockingAcquire(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name != "TryLock"
}

func isScalar(t types.Type) bool {
	if t == nil {
		return true
	}
	_, basic := t.Underlying().(*types.Basic)
	return basic
}

// Compute builds the summary set for the given packages and propagates
// effects to fixpoint over call-graph SCCs.
func Compute(fset *token.FileSet, pkgs []Pkg, table *annot.Table) *Set {
	s := &Set{funcs: make(map[string]*FuncEffect), table: table}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				key := lockstate.FuncKey(obj)
				if key == "" {
					continue
				}
				fe := &FuncEffect{
					Key:           key,
					Pos:           fd.Pos(),
					HasBody:       fd.Body != nil,
					MayBlockAnnot: annot.FuncHas(fd, annot.VerbMayBlock, ""),
				}
				computeDirect(fe, fd, pkg.Info, table)
				s.funcs[key] = fe
			}
		}
	}
	s.fixpoint()
	return s
}

// paramIndexes maps each parameter (and receiver) object of fd to its
// summary argument index.
func paramIndexes(fd *ast.FuncDecl, info *types.Info) map[types.Object]int {
	out := make(map[types.Object]int)
	idx := 0
	addField := func(fl *ast.Field) {
		if len(fl.Names) == 0 {
			idx++
			return
		}
		for _, n := range fl.Names {
			if obj := info.Defs[n]; obj != nil {
				out[obj] = idx
			}
			idx++
		}
	}
	if fd.Recv != nil {
		for _, fl := range fd.Recv.List {
			addField(fl)
		}
	}
	if fd.Type.Params != nil {
		for _, fl := range fd.Type.Params.List {
			addField(fl)
		}
	}
	return out
}

// computeDirect fills fe.d with fd's own effects and call sites.
func computeDirect(fe *FuncEffect, fd *ast.FuncDecl, info *types.Info, table *annot.Table) {
	d := &fe.d
	d.acquires = make(map[string]token.Pos)
	d.acquiresIndexed = make(map[string]bool)
	d.netHeld = make(map[string]int)
	d.retires = make(map[int]*Reason)
	if fd.Body == nil {
		return
	}
	params := paramIndexes(fd, info)

	// The FreeDeferred method name is the retire contract: a method so
	// named retires every non-scalar parameter it receives.
	if fd.Name.Name == "FreeDeferred" {
		for obj, idx := range params {
			if fd.Recv != nil && idx == 0 {
				continue
			}
			if !isScalar(obj.Type()) {
				d.retires[idx] = &Reason{fd.Pos(), "retired by " + Short(fe.Key) + " itself"}
			}
		}
	}

	// stmtCalls are calls whose net lock/read effects flow into the
	// caller: expression statements and single-assign right-hand sides.
	stmtCalls := make(map[*ast.CallExpr]bool)
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if c, ok := x.X.(*ast.CallExpr); ok {
				stmtCalls[c] = true
			}
		case *ast.AssignStmt:
			if len(x.Rhs) == 1 {
				if c, ok := x.Rhs[0].(*ast.CallExpr); ok {
					stmtCalls[c] = true
				}
			}
		case *ast.DeferStmt:
			deferred[x.Call] = true
		}
		return true
	})

	setBlocks := func(r *Reason) {
		if d.blocks == nil {
			d.blocks = r
		}
	}
	setLocks := func(r *Reason) {
		if d.locksMutex == nil {
			d.locksMutex = r
		}
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A literal invoked in place runs inline: include its body.
			// Every other literal (goroutine bodies, callbacks handed to
			// ScheduleIdle/Retire, stored closures) runs elsewhere —
			// excluding them is a documented soundness gap.
			return false
		case *ast.CallExpr:
			if fl, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, walk)
				for _, a := range x.Args {
					ast.Inspect(a, walk)
				}
				return false
			}
			visitCall(fe, x, info, table, params, stmtCalls[x], deferred[x], setBlocks, setLocks)
			return true
		case *ast.GoStmt:
			// Concurrent: argument expressions evaluate here, the body
			// does not.
			for _, a := range x.Call.Args {
				ast.Inspect(a, walk)
			}
			return false
		case *ast.SendStmt:
			setBlocks(&Reason{x.Pos(), "sends on a channel"})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				setBlocks(&Reason{x.Pos(), "receives from a channel"})
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				setBlocks(&Reason{x.Pos(), "selects without a default case"})
			}
			// Comm clauses' sends/receives are covered by the select's
			// own blocking semantics: visit bodies only.
			for _, c := range x.Body.List {
				cc := c.(*ast.CommClause)
				for _, st := range cc.Body {
					ast.Inspect(st, walk)
				}
			}
			return false
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					setBlocks(&Reason{x.Pos(), "ranges over a channel"})
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// visitCall records one call's direct effects into fe.d.
func visitCall(fe *FuncEffect, call *ast.CallExpr, info *types.Info, table *annot.Table,
	params map[types.Object]int, stmtLevel, isDeferred bool, setBlocks, setLocks func(*Reason)) {
	d := &fe.d
	op, h := lockstate.Classify(info, table, call)
	switch op {
	case lockstate.OpAcquire:
		if isDeferred {
			return // a deferred acquire is not an idiom this repo uses
		}
		d.acquires[h.Class.Key] = call.Pos()
		if h.HasIndex {
			d.acquiresIndexed[h.Class.Key] = true
		}
		if !h.Class.Spin && isBlockingAcquire(call) {
			setLocks(&Reason{call.Pos(), "acquires blocking lock " + Short(h.Class.Key)})
		}
		if stmtLevel {
			d.netHeld[h.Class.Key]++
		}
		return
	case lockstate.OpRelease:
		if stmtLevel || isDeferred {
			sel := call.Fun.(*ast.SelectorExpr)
			if class := lockstate.LockClassOf(info, table, sel.X); class != nil {
				d.netHeld[class.Key]--
			}
		}
		return
	case lockstate.OpReadLock:
		if stmtLevel && !isDeferred {
			d.netRead++
		}
		return
	case lockstate.OpReadUnlock:
		if stmtLevel || isDeferred {
			d.netRead--
		}
		return
	}

	fn := lockstate.CalleeFunc(info, call)
	if b, l := externalEffect(fn, call); b != nil || l != nil {
		if b != nil {
			setBlocks(b)
		}
		if l != nil {
			setLocks(l)
		}
		return
	}
	key := lockstate.FuncKey(fn)
	if key == "" {
		return
	}

	// Map argument expressions to caller parameters for retire
	// propagation. Index 0 is the receiver for method calls.
	var argExprs []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isSel := info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
			argExprs = append(argExprs, sel.X)
		}
	}
	argExprs = append(argExprs, call.Args...)
	argParams := make([]int, len(argExprs))
	for i, a := range argExprs {
		argParams[i] = -1
		if id, ok := ast.Unparen(a).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if idx, isParam := params[obj]; isParam {
					argParams[i] = idx
				}
			}
		}
	}
	d.calls = append(d.calls, callsite{key: key, pos: call.Pos(), stmt: stmtLevel && !isDeferred, argParams: argParams})

	// The FreeDeferred name contract applies at call sites too, so the
	// seed works even when the callee's body is export-data only.
	if fn != nil && fn.Name() == "FreeDeferred" {
		for i, a := range argExprs {
			if i == 0 && len(argExprs) > len(call.Args) {
				continue // receiver
			}
			if tv, ok := info.Types[a]; ok && tv.Type != nil && isScalar(tv.Type) {
				continue
			}
			if argParams[i] >= 0 {
				if _, dup := d.retires[argParams[i]]; !dup {
					d.retires[argParams[i]] = &Reason{call.Pos(), "passed to " + Short(key)}
				}
			}
		}
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// ---- fixpoint ----

// recompute rebuilds f's public effects from its direct effects plus
// the current state of its callees; it reports whether anything
// changed.
func (s *Set) recompute(f *FuncEffect) bool {
	blocks := f.d.blocks
	locks := f.d.locksMutex
	acquires := make(map[string]token.Pos, len(f.d.acquires))
	for k, v := range f.d.acquires {
		acquires[k] = v
	}
	acquiresIndexed := make(map[string]bool, len(f.d.acquiresIndexed))
	for k, v := range f.d.acquiresIndexed {
		acquiresIndexed[k] = v
	}
	netHeld := make(map[string]int, len(f.d.netHeld))
	for k, v := range f.d.netHeld {
		netHeld[k] = v
	}
	netRead := f.d.netRead
	retires := make(map[int]*Reason, len(f.d.retires))
	for k, v := range f.d.retires {
		retires[k] = v
	}

	for _, c := range f.d.calls {
		e := s.funcs[c.key]
		if e == nil {
			if blocks == nil {
				blocks = s.externalFallback(c.key, c.pos)
			}
			continue
		}
		if blocks == nil && e.Blocks != nil {
			blocks = &Reason{c.pos, "calls " + Short(c.key) + ", which may block"}
		}
		if locks == nil && e.LocksMutex != nil {
			locks = &Reason{c.pos, "calls " + Short(c.key) + ", which may acquire a blocking lock"}
		}
		for k := range e.Acquires {
			if _, ok := acquires[k]; !ok {
				acquires[k] = c.pos
			}
			if e.AcquiresIndexed[k] {
				acquiresIndexed[k] = true
			}
		}
		if c.stmt {
			for k, n := range e.netHeld {
				netHeld[k] += n
			}
			netRead += e.NetRead
		}
		for i, r := range e.Retires {
			if i < len(c.argParams) && c.argParams[i] >= 0 && r != nil {
				p := c.argParams[i]
				if _, dup := retires[p]; !dup {
					retires[p] = &Reason{c.pos, "passed to " + Short(c.key) + ", which retires it"}
				}
			}
		}
	}
	changed := (blocks == nil) != (f.Blocks == nil) ||
		(locks == nil) != (f.LocksMutex == nil) ||
		len(acquires) != len(f.Acquires) ||
		len(acquiresIndexed) != len(f.AcquiresIndexed) ||
		len(retires) != len(f.Retires) ||
		netRead != f.NetRead ||
		!sameCounts(netHeld, f.netHeld)
	f.Blocks = blocks
	f.LocksMutex = locks
	f.Acquires = acquires
	f.AcquiresIndexed = acquiresIndexed
	f.NetRead = netRead
	f.netHeld = netHeld
	f.Retires = retires
	return changed
}

func sameCounts(a, b map[string]int) bool {
	if b == nil {
		return len(a) == 0
	}
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// fixpoint propagates effects callee-to-caller over SCCs in reverse
// topological order, iterating recursive components until stable.
func (s *Set) fixpoint() {
	sccs := s.sccOrder()
	for _, scc := range sccs {
		for iter := 0; ; iter++ {
			changed := false
			for _, key := range scc {
				if s.recompute(s.funcs[key]) {
					changed = true
				}
			}
			if !changed || len(scc) == 1 || iter > len(scc)+8 {
				break
			}
		}
	}
}

// sccOrder returns the call graph's strongly connected components in
// reverse topological order (callees before callers), Tarjan's
// algorithm.
func (s *Set) sccOrder() [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	keys := s.Keys() // deterministic traversal

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, c := range s.funcs[v].d.calls {
			w := c.key
			if s.funcs[w] == nil {
				continue
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			strongconnect(k)
		}
	}
	return sccs
}

// Render formats the summaries of every function whose key has the
// given prefix, one line per function, for golden tests. Positions are
// omitted so goldens survive unrelated edits... of other packages;
// reason strings name their sources.
func (s *Set) Render(keyPrefix string) string {
	var b strings.Builder
	for _, k := range s.Keys() {
		if !strings.HasPrefix(k, keyPrefix) {
			continue
		}
		f := s.funcs[k]
		var parts []string
		if f.Blocks != nil {
			parts = append(parts, "blocks{"+f.Blocks.What+"}")
		}
		if f.LocksMutex != nil {
			parts = append(parts, "locks{"+f.LocksMutex.What+"}")
		}
		if len(f.Acquires) > 0 {
			keys := make([]string, 0, len(f.Acquires))
			for c := range f.Acquires {
				keys = append(keys, Short(c))
			}
			sort.Strings(keys)
			parts = append(parts, "acquires{"+strings.Join(keys, ",")+"}")
		}
		if held := f.NetHeld(); len(held) > 0 {
			short := make([]string, len(held))
			for i, h := range held {
				short[i] = Short(h)
			}
			parts = append(parts, "net-held{"+strings.Join(short, ",")+"}")
		}
		if rel := f.NetReleased(); len(rel) > 0 {
			short := make([]string, len(rel))
			for i, h := range rel {
				short[i] = Short(h)
			}
			parts = append(parts, "net-released{"+strings.Join(short, ",")+"}")
		}
		if f.NetRead != 0 {
			parts = append(parts, fmt.Sprintf("net-read{%+d}", f.NetRead))
		}
		if len(f.Retires) > 0 {
			var idx []int
			for i := range f.Retires {
				idx = append(idx, i)
			}
			sort.Ints(idx)
			ss := make([]string, len(idx))
			for i, v := range idx {
				ss[i] = fmt.Sprint(v)
			}
			parts = append(parts, "retires{"+strings.Join(ss, ",")+"}")
		}
		if f.MayBlockAnnot {
			parts = append(parts, "may_block-annot")
		}
		if len(parts) == 0 {
			parts = append(parts, "pure")
		}
		fmt.Fprintf(&b, "%s: %s\n", Short(k), strings.Join(parts, " "))
	}
	return b.String()
}
