// Package view is the arenaunsafe negative fixture: its import path
// ends in /view, so the same pointer-forging operations the positive
// fixture trips on are permitted here, mirroring the exemption for the
// real prudence/internal/view package.
package view

import "unsafe"

type header struct {
	key uint64
	gen uint32
}

// Of mirrors the real typed-view construction: an unsafe cast that is
// legal because this package carries the checking obligations.
func Of(b []byte) *header {
	return (*header)(unsafe.Pointer(&b[0]))
}

// SliceOf mirrors view.Slice.
func SliceOf(b []byte, n int) []header {
	return unsafe.Slice((*header)(unsafe.Pointer(&b[0])), n)
}
