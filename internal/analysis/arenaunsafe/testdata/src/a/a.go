// Package a is the arenaunsafe fixture: pointer-forging unsafe
// operations outside the typed-view package, which the analyzer must
// flag, alongside the compile-time layout queries it must not.
package a

import "unsafe"

type header struct {
	key uint64
	gen uint32
}

// CastFrame reinterprets raw arena bytes directly — the exact pattern
// the typed-view API exists to replace.
func CastFrame(b []byte) *header {
	return (*header)(unsafe.Pointer(&b[0])) // want `unsafe\.Pointer outside internal/view`
}

// WalkFrame forges a derived pointer.
func WalkFrame(p *header) *header {
	return (*header)(unsafe.Add(unsafe.Pointer(p), 16)) // want `unsafe\.Add outside internal/view` `unsafe\.Pointer outside internal/view`
}

// ReSlice forges a slice header over arena memory.
func ReSlice(p *header, n int) []header {
	return unsafe.Slice(p, n) // want `unsafe\.Slice outside internal/view`
}

// AliasString forges a string over arena bytes.
func AliasString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b)) // want `unsafe\.String outside internal/view` `unsafe\.SliceData outside internal/view`
}

// FieldDecl: unsafe.Pointer in a type position is just as dangerous as
// in a conversion.
type holder struct {
	raw unsafe.Pointer // want `unsafe\.Pointer outside internal/view`
}

// LayoutQueries are compile-time constants that never alias memory;
// the analyzer must stay quiet here.
func LayoutQueries() (uintptr, uintptr, uintptr) {
	var h header
	return unsafe.Sizeof(h), unsafe.Alignof(h), unsafe.Offsetof(h.gen)
}
