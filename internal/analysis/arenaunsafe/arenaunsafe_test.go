package arenaunsafe

import (
	"testing"

	"prudence/internal/analysis/analysistest"
)

func TestArenaUnsafe(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/a")
}

// The view fixture contains the same unsafe operations as the positive
// fixture but sits in a package whose path ends in /view, so it must
// produce no diagnostics (its file has no want comments).
func TestViewPackageExempt(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/view")
}
