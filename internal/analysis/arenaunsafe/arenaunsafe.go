// Package arenaunsafe fences the repository's unsafe arena access into
// internal/view. The typed-view package is the one place allowed to
// reinterpret arena bytes through unsafe.Pointer, because it is the one
// place that proves the preconditions (bounds, alignment, pointer-free
// element types) before every cast. Anywhere else, an unsafe
// reinterpretation of arena memory can silently hide Go pointers from
// the garbage collector — fatal with the mmap backend, where the arena
// is invisible to the runtime — so prudence-vet rejects it.
//
// Flagged: unsafe.Pointer (in any position), unsafe.Add, unsafe.Slice,
// unsafe.SliceData, unsafe.String, unsafe.StringData outside a package
// whose import path ends in "/view". Exempt everywhere:
// unsafe.Sizeof/Alignof/Offsetof, which are compile-time layout queries
// that never create an aliasing pointer.
package arenaunsafe

import (
	"go/ast"
	"go/types"
	"strings"

	"prudence/internal/analysis"
)

// Analyzer is the arenaunsafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "arenaunsafe",
	Doc:  "restrict pointer-forging unsafe operations to the typed-view package",
	Run:  run,
}

// pointerForging lists the unsafe package members that create or
// manipulate aliasing pointers. Sizeof, Alignof and Offsetof are absent
// deliberately: they are constant expressions over layout.
var pointerForging = map[string]bool{
	"Pointer":    true,
	"Add":        true,
	"Slice":      true,
	"SliceData":  true,
	"String":     true,
	"StringData": true,
}

func run(pass *analysis.Pass) error {
	if allowed(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !pointerForging[sel.Sel.Name] {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "unsafe" {
				return true
			}
			pass.Reportf(sel.Pos(), "unsafe.%s outside internal/view: route arena access through the typed-view API (view.Of/At/Slice) so bounds, alignment and pointer-freedom are checked",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}

// allowed reports whether the package is the typed-view package (or a
// fixture standing in for it: any import path ending in "/view" or
// named exactly "view").
func allowed(path string) bool {
	return path == "view" || strings.HasSuffix(path, "/view")
}
