// Package a is the sleepcheck fixture: read-side sections and
// spin-class critical sections that must not block, with violations
// both direct and hidden behind helpers (local and cross-package).
package a

import (
	"sync"
	"time"

	"prudence/internal/analysis/sleepcheck/testdata/src/b"
)

// RS mimics internal/rcu's read-side API: recognition is by method
// name, so any type with ReadLock/ReadUnlock works.
type RS struct{}

func (r *RS) ReadLock(cpu int)   {}
func (r *RS) ReadUnlock(cpu int) {}

// SpinMu is a spin-class lock: holders must not hard-block, but may
// take sleeping locks (the batched refill/flush idiom).
//
//prudence:lockorder 10 spin
type SpinMu struct{ state int32 }

func (s *SpinMu) Lock()   {}
func (s *SpinMu) Unlock() {}

//prudence:lockorder 20
type BMu struct{ mu sync.Mutex }

func (m *BMu) Lock()   { m.mu.Lock() }
func (m *BMu) Unlock() { m.mu.Unlock() }

// nap blocks, two frames deep.
//
//prudence:may_block
func nap() { time.Sleep(time.Millisecond) }

// ---- read-side sections ----

// The planted direct violation: a blocking call under ReadLock.
func BadSleep(r *RS) {
	r.ReadLock(0)
	time.Sleep(time.Millisecond) // want `may-block call inside read-side critical section: calls time\.Sleep`
	r.ReadUnlock(0)
}

// The same violation through a local helper: only the summary sees it.
func BadSleepIndirect(r *RS) {
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	nap() // want `may-block call inside read-side critical section: calls a\.nap, which may block \(calls time\.Sleep\)`
}

// And through a helper in another package.
func BadSleepCrossPackage(r *RS) {
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	b.Wait() // want `may-block call inside read-side critical section: calls b\.Wait, which may block \(receives from a channel\)`
}

// Acquiring a sleeping lock inside a read section blocks the reader.
func BadLockUnderRead(r *RS, m *BMu) {
	r.ReadLock(0)
	m.Lock() // want `blocking-lock acquisition inside read-side critical section: acquires blocking lock a\.BMu`
	m.Unlock()
	r.ReadUnlock(0)
}

// ... even when the acquisition hides behind a cross-package helper.
func BadLockIndirect(r *RS) {
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	b.LockShared() // want `blocking-lock acquisition inside read-side critical section: calls b\.LockShared, which acquires blocking lock b\.Mu`
}

var signal = make(chan int)

func BadChannelOps(r *RS) int {
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	signal <- 1   // want `channel send inside read-side critical section`
	v := <-signal // want `channel receive inside read-side critical section`
	select {      // want `select without default inside read-side critical section`
	case w := <-signal:
		v += w
	}
	return v
}

// A select with a default never blocks (the expedite-kick idiom).
func GoodNonBlockingSelect(r *RS) {
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	select {
	case signal <- 1:
	default:
	}
}

// An annotated boundary method blocks by contract.
func BadInterfaceWait(r *RS, s b.Sync) {
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	s.DrainAll() // want `may-block call inside read-side critical section: calls b\.Sync\.DrainAll \(declared //prudence:may_block\)`
}

// Unannotated interface methods are assumed non-blocking.
func GoodInterfacePoke(r *RS, s b.Sync) {
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	s.Poke()
}

// Wait-method names block by convention even with no annotation and no
// body in reach.
type Waiter interface{ Synchronize() }

func BadNamedWait(r *RS, s Waiter) {
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	s.Synchronize() // want `may-block call inside read-side critical section: calls a\.Waiter\.Synchronize, which waits for a grace period`
}

// Pure helpers are fine anywhere.
func GoodRead(r *RS) int {
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	return b.Quick()
}

// Blocking after the section closes is fine.
func GoodSleepAfter(r *RS) {
	r.ReadLock(0)
	r.ReadUnlock(0)
	nap()
}

// The rcu_read contract seeds the section from the annotation.
//
//prudence:rcu_read
func BadAnnotatedReader() {
	nap() // want `may-block call inside read-side critical section: calls a\.nap, which may block \(calls time\.Sleep\)`
}

// ---- spin-class sections ----

func BadSleepUnderSpin(s *SpinMu) {
	s.Lock()
	time.Sleep(time.Millisecond) // want `may-block call while holding spin lock a\.SpinMu: calls time\.Sleep`
	s.Unlock()
}

// Taking a sleeping lock under a spin lock is the deliberate batched
// refill/flush idiom: not reported.
func GoodMutexUnderSpin(s *SpinMu, m *BMu) {
	s.Lock()
	m.Lock()
	m.Unlock()
	s.Unlock()
}

// ---- may_block verification ----

// A may_block declaration on something that cannot block is stale.
//
//prudence:may_block
func Harmless() int { return 2 } // want `stale //prudence:may_block: Harmless cannot block \(no blocking operation in its call graph\)`

// ---- closures (pins for the scheduled-callback shape) ----

// schedule stands in for an idle-work queue; the closure escapes.
func schedule(f func()) { _ = f }

// Scheduling blocking work from inside a read-side section is fine:
// the closure runs later on the worker, not here (core's armPreflush
// hands the idle CPU a pre-flush closure while holding the cache lock).
func GoodEscapingClosure(r *RS) {
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	schedule(func() { nap() })
}

// An immediately-invoked literal runs inline and stays checked.
func BadImmediateClosure(r *RS) {
	r.ReadLock(0)
	defer r.ReadUnlock(0)
	func() {
		nap() // want `may-block call inside read-side critical section: calls a\.nap, which may block \(calls time\.Sleep\)`
	}()
}

// The pinned-reader harness shape: a goroutine that opens its own
// read-side section and parks in it is still checked — synctest
// suppresses exactly this with an audited nolint.
func BadPinnedReader(r *RS, release chan struct{}) {
	go func() {
		r.ReadLock(1)
		<-release // want `channel receive inside read-side critical section`
		r.ReadUnlock(1)
	}()
}

// ---- suppression ----

// An audited exception: the finding is suppressed by nolint (and the
// suppression is exercised, so no unused-suppression error either).
func SuppressedSleep(r *RS) {
	r.ReadLock(0)
	time.Sleep(time.Millisecond) //prudence:nolint:sleepcheck audited: fixture exercises suppression
	r.ReadUnlock(0)
}
