// Package b is sleepcheck's cross-package fixture: helpers whose
// blocking behaviour is only visible through effect summaries, and an
// annotated boundary interface.
package b

import "sync"

//prudence:lockorder 30
type Mu struct{ mu sync.Mutex }

func (m *Mu) Lock()   { m.mu.Lock() }
func (m *Mu) Unlock() { m.mu.Unlock() }

var ch = make(chan struct{})

// Wait blocks until kicked: callers inside read-side sections must be
// reported even though the receive is a package away.
func Wait() { <-ch }

// LockShared acquires the blocking lock (and releases it, so there is
// no net-held effect — only the acquisition itself).
var shared Mu

func LockShared() {
	shared.Lock()
	shared.Unlock()
}

// Quick is a pure helper: calling it anywhere is fine.
func Quick() int { return 1 }

// Sync is a boundary interface. DrainAll's blocking contract cannot be
// computed (no body), so it is declared.
type Sync interface {
	//prudence:may_block
	DrainAll()
	// Poke is unannotated and not a known wait method: calls through
	// it are assumed non-blocking.
	Poke()
}

// RS gives this package its own read-side marker so fixtures here can
// open sections without importing a.
type RS struct{}

func (r *RS) ReadLock(cpu int)   {}
func (r *RS) ReadUnlock(cpu int) {}

// BadCrossRead plants a violation in the imported package itself: the
// harness must assert want comments here too, not only in the package
// named on the command line.
func BadCrossRead(r *RS) {
	r.ReadLock(0)
	Wait() // want `may-block call inside read-side critical section: calls b\.Wait, which may block \(receives from a channel\)`
	r.ReadUnlock(0)
}
