package sleepcheck

import (
	"testing"

	"prudence/internal/analysis/analysistest"
)

func TestSleepCheck(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/a")
}

// TestSummaryGolden pins the computed effect summaries for the fixture:
// a change in the summary lattice or fixpoint shows up as a golden
// diff, separate from any analyzer's reporting.
func TestSummaryGolden(t *testing.T) {
	analysistest.RunSummaryGolden(t, "testdata/summaries.golden", "./testdata/src/a")
}
