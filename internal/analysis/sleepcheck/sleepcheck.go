// Package sleepcheck enforces the paper's core read-side contract: a
// procrastination-based scheme only works if read-side critical
// sections never block — a sleeping reader stalls every grace period
// behind it — and if spin-class lock holders never block while
// spinning peers burn cycles. It is prudence-vet's analogue of the
// kernel's might_sleep/RCU-lockdep machinery.
//
// The check is interprocedural: each call is classified through the
// module-wide effect summaries (internal/analysis/summary), so a
// ReadLock section that calls a helper that calls time.Sleep three
// frames down is reported at the outermost call.
//
// Two severities follow the two ways a lock can wait:
//
//   - Inside a ReadLock/ReadUnlock-delimited section (or a function
//     annotated //prudence:rcu_read), both hard blocking (channel
//     operations, selects without default, time.Sleep, sync.Cond/
//     WaitGroup waits, syscalls, grace-period waits) and acquisition
//     of any blocking (non-spin) lock are reported.
//   - While holding a spin-class lock (//prudence:lockorder <rank>
//     spin), only hard blocking is reported: acquiring a sleeping
//     mutex with a spin lock held is this repository's deliberate
//     batched refill/flush idiom (Node.mu under the owner-core CAS
//     lock), and the spin owner field makes it safe.
//
// //prudence:may_block on a function or interface method declares a
// boundary API that may block; calls to it are reported in read-side
// context, and the declaration itself is verified — a may_block on a
// function whose computed summary cannot block is reported as stale.
package sleepcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"prudence/internal/analysis"
	"prudence/internal/analysis/annot"
	"prudence/internal/analysis/lockstate"
	"prudence/internal/analysis/summary"
)

// Analyzer is the sleepcheck entry point.
var Analyzer = &analysis.Analyzer{
	Name: "sleepcheck",
	Doc:  "report may-block calls inside read-side critical sections or under spin-class locks",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Summaries == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkMayBlockAnnot(pass, fd)
			if annot.FuncHas(fd, annot.VerbNoCheck, "sleepcheck") {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkMayBlockAnnot verifies a //prudence:may_block declaration
// against the function's computed summary: declaring blocking intent
// on something that cannot block would grant callers a false contract.
func checkMayBlockAnnot(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !annot.FuncHas(fd, annot.VerbMayBlock, "") {
		return
	}
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	fe := pass.Summaries.Func(lockstate.FuncKey(fn))
	if fe != nil && fe.HasBody && fe.Blocks == nil && fe.LocksMutex == nil {
		pass.Reportf(fd.Pos(), "stale //prudence:may_block: %s cannot block (no blocking operation in its call graph)", fd.Name.Name)
	}
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	// Receives and sends that are a select's comm clauses are covered by
	// the select's own report; suppress their individual findings.
	commPos := make(map[token.Pos]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					if m != nil {
						commPos[m.Pos()] = true
					}
					return true
				})
			}
		}
		return true
	})

	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}

	w := &lockstate.Walker{
		Info:    pass.TypesInfo,
		Table:   pass.Directives,
		Callees: pass.Summaries,
	}
	w.Hooks.OnNode = func(n ast.Node, st *lockstate.State) {
		inRead := st.ReadDepth > 0
		spin := heldSpin(st)
		if !inRead && spin == "" {
			return
		}
		ctx := "inside read-side critical section"
		if !inRead {
			ctx = "while holding spin lock " + summary.Short(spin)
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			blocks, locks := pass.Summaries.CallEffect(pass.TypesInfo, x)
			switch {
			case blocks != nil:
				report(x.Pos(), "may-block call %s: %s", ctx, blocks.What)
			case locks != nil && inRead:
				report(x.Pos(), "blocking-lock acquisition %s: %s", ctx, locks.What)
			}
		case *ast.SendStmt:
			if !commPos[x.Pos()] {
				report(x.Pos(), "channel send %s", ctx)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !commPos[x.Pos()] {
				report(x.Pos(), "channel receive %s", ctx)
			}
		case *ast.SelectStmt:
			if !hasDefaultClause(x) {
				report(x.Pos(), "select without default %s", ctx)
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(x.Pos(), "range over channel %s", ctx)
				}
			}
		}
	}
	w.Walk(fd)
}

// heldSpin returns the key of a held spin-class lock, or "".
func heldSpin(st *lockstate.State) string {
	for _, h := range st.Held {
		if h.Class.Spin {
			return h.Class.Key
		}
	}
	return ""
}

func hasDefaultClause(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
