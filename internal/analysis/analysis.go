// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough driver-facing surface for
// the prudence-vet analyzers (see the sibling packages lockorder,
// guardedby, atomicalign and rcucheck).
//
// The repository deliberately has no module dependencies, so the
// x/tools analysis framework is reimplemented here over the standard
// library's go/ast, go/types and go/token. The API mirrors x/tools
// where it matters (Analyzer, Pass, Diagnostic, Pass.Reportf) so that
// swapping to the real framework later is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"prudence/internal/analysis/annot"
	"prudence/internal/analysis/summary"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the
	// prudence-vet command line.
	Name string
	// Doc is a one-paragraph description of what the analyzer proves.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer, plus the module-wide annotation table.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// TypesSizes describes the target platform's layout (the driver's
	// host GOARCH); analyzers needing another layout (atomicalign's
	// 32-bit check) construct their own types.Sizes.
	TypesSizes types.Sizes

	// Directives is the module-wide //prudence: annotation table. It is
	// built from the source of every module-local package in the load's
	// dependency graph, so annotations on slabcore types are visible
	// while analyzing core even though core imports slabcore via export
	// data.
	Directives *annot.Table

	// Summaries is the module-wide per-function effect summary set,
	// computed over every module-local package in the load's dependency
	// graph and propagated to fixpoint over call-graph SCCs. Analyzers
	// consult it to see lock, read-side, blocking and retire effects
	// across function (and package) boundaries.
	Summaries *summary.Set

	// Report delivers one diagnostic. The driver sets it.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
