// Package annot parses the //prudence: annotation grammar that the
// prudence-vet analyzers enforce (see DESIGN.md §8 for the full
// grammar and its semantics):
//
//	//prudence:lockorder <rank>      on a lock type or lock field:
//	                                 declares a lock class with an
//	                                 acquisition rank (lower ranks are
//	                                 acquired first).
//	//prudence:guarded_by <spec>     on a struct field: reads/writes
//	                                 require the named lock class held.
//	//prudence:padded <bytes>        on a struct type: its 64-bit size
//	                                 must equal <bytes> exactly.
//	//prudence:rcu [<spec>]          on an atomic pointer field: Load is
//	                                 legal only inside a read-side
//	                                 critical section (or holding the
//	                                 optional writer lock class); Store
//	                                 requires the writer lock class.
//	//prudence:requires <spec>,...   on a function: the caller holds the
//	                                 named lock classes on entry.
//	//prudence:rcu_read              on a function: the caller is inside
//	                                 a read-side critical section.
//	//prudence:fault_point           on (or on the line before) a call
//	                                 into internal/fault's injection
//	                                 entry points (Fire, FireDelay,
//	                                 Sleep): marks a deliberate, audited
//	                                 fault-injection site. rcucheck
//	                                 requires it on every injection call
//	                                 and exempts annotated calls from
//	                                 the no-touch-after-FreeDeferred
//	                                 taint.
//	//prudence:nocheck <analyzer>    on a function: suppress one
//	                                 analyzer in its body (audited —
//	                                 every use needs a justifying
//	                                 comment and a CHANGES.md note).
//
// A <spec> names a lock class by any unambiguous suffix of its key:
// "Node", "slabcore.Node" and "prudence/internal/slabcore.Node" all
// resolve to the class declared on slabcore's Node type. A guarded_by
// spec may instead name a sibling field whose type is (a pointer to) a
// lock class, e.g. guarded_by objs on core's cpuLocal fields.
//
// The table is built from parsed source of every module-local package
// in a load, so annotations travel across package boundaries even
// though type information for imports comes from export data (which
// carries no comments).
package annot

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Directive verbs.
const (
	VerbLockOrder  = "lockorder"
	VerbGuardedBy  = "guarded_by"
	VerbPadded     = "padded"
	VerbRCU        = "rcu"
	VerbRequires   = "requires"
	VerbRCURead    = "rcu_read"
	VerbNoCheck    = "nocheck"
	VerbFaultPoint = "fault_point"
	VerbMayBlock   = "may_block"
	VerbNoLint     = "nolint"
)

const prefix = "//prudence:"

// Class is one declared lock class.
type Class struct {
	// Key is "pkgpath.Type" for a class declared on a type, or
	// "pkgpath.Type.field" for one declared on a struct field.
	Key  string
	Rank int
	// Spin marks a spin-class lock (owner-core CAS locks, the buddy
	// shard locks): acquisition never sleeps, and sleepcheck forbids
	// blocking operations while one is held.
	Spin bool
	Pos  token.Pos
}

// RCUPtr describes one //prudence:rcu field.
type RCUPtr struct {
	// Writer is the optional writer-lock class spec ("" if absent).
	Writer string
	Pos    token.Pos
}

// Table is the module-wide annotation index, keyed by qualified names
// so it can be consulted for types the analyzed package only imports.
type Table struct {
	classes map[string]*Class      // "pkg.Type" / "pkg.Type.field" → class
	guards  map[string]string      // "pkg.Type.field" → guard spec
	rcuPtrs map[string]RCUPtr      // "pkg.Type.field" → rcu pointer info
	padded  map[string]int         // "pkg.Type" → required 64-bit size
	funcs   map[string][]Directive // "pkg.Func" / "pkg.Type.Method" → directives
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		classes: make(map[string]*Class),
		guards:  make(map[string]string),
		rcuPtrs: make(map[string]RCUPtr),
		padded:  make(map[string]int),
		funcs:   make(map[string][]Directive),
	}
}

// parseLockOrder parses a lockorder directive's args: "<rank> [spin]".
func parseLockOrder(args string) (rank int, spin bool, err error) {
	fields := strings.Fields(args)
	switch {
	case len(fields) == 0:
		return 0, false, fmt.Errorf("missing rank")
	case len(fields) > 2, len(fields) == 2 && fields[1] != "spin":
		return 0, false, fmt.Errorf("want \"<rank> [spin]\", got %q", args)
	}
	rank, err = strconv.Atoi(fields[0])
	return rank, len(fields) == 2, err
}

// AddPackage indexes every //prudence: annotation on types and fields
// of the given parsed files, which belong to the package at pkgPath.
// Malformed directives are returned as errors positioned at the
// offending comment.
func (t *Table) AddPackage(pkgPath string, files []*ast.File) []error {
	var errs []error
	fail := func(pos token.Pos, format string, args ...interface{}) {
		errs = append(errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if ds := Parse(fd.Doc); len(ds) > 0 {
					t.funcs[funcDeclKey(pkgPath, fd)] = append(t.funcs[funcDeclKey(pkgPath, fd)], ds...)
				}
				continue
			}
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				typeKey := pkgPath + "." + ts.Name.Name
				docs := []*ast.CommentGroup{ts.Doc, ts.Comment}
				if len(gd.Specs) == 1 {
					docs = append(docs, gd.Doc)
				}
				for _, d := range Parse(docs...) {
					switch d.Verb {
					case VerbLockOrder:
						rank, spin, err := parseLockOrder(d.Args)
						if err != nil {
							fail(d.Pos, "prudence:lockorder on %s: %v", typeKey, err)
							continue
						}
						t.classes[typeKey] = &Class{Key: typeKey, Rank: rank, Spin: spin, Pos: d.Pos}
					case VerbPadded:
						n, err := strconv.Atoi(strings.TrimSpace(d.Args))
						if err != nil || n <= 0 {
							fail(d.Pos, "prudence:padded on %s: size %q is not a positive integer", typeKey, d.Args)
							continue
						}
						t.padded[typeKey] = n
					case VerbGuardedBy, VerbRCU:
						fail(d.Pos, "prudence:%s is a field annotation; it cannot apply to type %s", d.Verb, typeKey)
					}
				}
				if it, ok := ts.Type.(*ast.InterfaceType); ok && it.Methods != nil {
					// Interface method declarations carry caller-facing
					// contracts (may_block on Backend.Synchronize binds
					// every call through the interface).
					for _, m := range it.Methods.List {
						for _, name := range m.Names {
							key := typeKey + "." + name.Name
							if ds := Parse(m.Doc, m.Comment); len(ds) > 0 {
								t.funcs[key] = append(t.funcs[key], ds...)
							}
						}
					}
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					for _, d := range Parse(field.Doc, field.Comment) {
						for _, name := range field.Names {
							fieldKey := typeKey + "." + name.Name
							switch d.Verb {
							case VerbLockOrder:
								rank, spin, err := parseLockOrder(d.Args)
								if err != nil {
									fail(d.Pos, "prudence:lockorder on %s: %v", fieldKey, err)
									continue
								}
								t.classes[fieldKey] = &Class{Key: fieldKey, Rank: rank, Spin: spin, Pos: d.Pos}
							case VerbGuardedBy:
								spec := strings.TrimSpace(d.Args)
								if spec == "" {
									fail(d.Pos, "prudence:guarded_by on %s: missing lock spec", fieldKey)
									continue
								}
								t.guards[fieldKey] = spec
							case VerbRCU:
								t.rcuPtrs[fieldKey] = RCUPtr{Writer: strings.TrimSpace(d.Args), Pos: d.Pos}
							case VerbPadded:
								fail(d.Pos, "prudence:padded is a type annotation; it cannot apply to field %s", fieldKey)
							}
						}
						if len(field.Names) == 0 {
							fail(d.Pos, "prudence:%s cannot apply to an embedded field of %s", d.Verb, typeKey)
						}
					}
				}
			}
		}
	}
	return errs
}

// Error is a malformed-directive error with a position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return e.Msg }

// ClassByKey returns the lock class declared exactly at key, or nil.
func (t *Table) ClassByKey(key string) *Class { return t.classes[key] }

// GuardSpec returns the guarded_by spec for the field key, or "".
func (t *Table) GuardSpec(fieldKey string) string { return t.guards[fieldKey] }

// RCUPtrInfo returns the rcu annotation for the field key.
func (t *Table) RCUPtrInfo(fieldKey string) (RCUPtr, bool) {
	p, ok := t.rcuPtrs[fieldKey]
	return p, ok
}

// PaddedSize returns the required 64-bit size for the type key, or 0.
func (t *Table) PaddedSize(typeKey string) int { return t.padded[typeKey] }

// PaddedTypes returns every "pkg.Type" key carrying a padded directive.
func (t *Table) PaddedTypes() map[string]int { return t.padded }

// MatchSpec reports whether a class key is named by spec. A spec names
// a class by its full key or by any suffix starting at a '.' or '/'
// boundary: "Node", "slabcore.Node" and
// "prudence/internal/slabcore.Node" all match the last of these.
func MatchSpec(key, spec string) bool {
	if key == spec {
		return true
	}
	return strings.HasSuffix(key, "."+spec) || strings.HasSuffix(key, "/"+spec)
}

// ResolveSpec returns every declared class named by spec.
func (t *Table) ResolveSpec(spec string) []*Class {
	var out []*Class
	for key, c := range t.classes {
		if MatchSpec(key, spec) {
			out = append(out, c)
		}
	}
	return out
}

// Directive is one parsed //prudence: comment.
type Directive struct {
	Verb string
	// Sub is the colon-qualified verb argument: for
	// //prudence:nolint:sleepcheck it is "sleepcheck".
	Sub  string
	Args string
	Pos  token.Pos
}

// Parse extracts directives from the given comment groups (nil groups
// are permitted).
func Parse(groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text, ok := strings.CutPrefix(c.Text, prefix)
			if !ok {
				continue
			}
			verb, args, _ := strings.Cut(text, " ")
			verb, sub, _ := strings.Cut(verb, ":")
			out = append(out, Directive{
				Verb: strings.TrimSpace(verb),
				Sub:  strings.TrimSpace(sub),
				Args: strings.TrimSpace(args),
				Pos:  c.Pos(),
			})
		}
	}
	return out
}

// funcDeclKey renders the table key for a function declaration:
// "pkgpath.Func" for a plain function, "pkgpath.Type.Method" for a
// method (pointer receivers and generic type parameters stripped).
func funcDeclKey(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgPath + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver Type[T]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				return pkgPath + "." + id.Name + "." + fd.Name.Name
			}
			return pkgPath + "." + fd.Name.Name
		}
	}
}

// FuncDirs returns the directives declared on the function or interface
// method with the given "pkg.Func" / "pkg.Type.Method" key.
func (t *Table) FuncDirs(key string) []Directive { return t.funcs[key] }

// FuncMayBlock reports whether the function at key declares
// //prudence:may_block.
func (t *Table) FuncMayBlock(key string) bool {
	for _, d := range t.funcs[key] {
		if d.Verb == VerbMayBlock {
			return true
		}
	}
	return false
}

// FuncRequiresKey returns the lock-class specs from prudence:requires
// directives on the function at key (the table-indexed, cross-package
// form of FuncRequires).
func (t *Table) FuncRequiresKey(key string) []string {
	var out []string
	for _, d := range t.funcs[key] {
		if d.Verb != VerbRequires {
			continue
		}
		for _, part := range strings.FieldsFunc(d.Args, func(r rune) bool { return r == ',' || r == ' ' }) {
			if part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

// FuncDirectives returns the directives attached to a function
// declaration's doc comment.
func FuncDirectives(fn *ast.FuncDecl) []Directive {
	if fn == nil {
		return nil
	}
	return Parse(fn.Doc)
}

// FuncRequires returns the lock-class specs from every
// prudence:requires directive on fn (comma- or space-separated).
func FuncRequires(fn *ast.FuncDecl) []string {
	var out []string
	for _, d := range FuncDirectives(fn) {
		if d.Verb != VerbRequires {
			continue
		}
		for _, part := range strings.FieldsFunc(d.Args, func(r rune) bool { return r == ',' || r == ' ' }) {
			if part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

// FuncHas reports whether fn carries the given marker verb
// (prudence:rcu_read), and for nocheck whether it names the analyzer.
func FuncHas(fn *ast.FuncDecl, verb, arg string) bool {
	for _, d := range FuncDirectives(fn) {
		if d.Verb != verb {
			continue
		}
		if arg == "" || strings.Contains(" "+d.Args+" ", " "+arg+" ") {
			return true
		}
	}
	return false
}
