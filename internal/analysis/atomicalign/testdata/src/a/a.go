// Package a is the atomicalign fixture: 32-bit alignment of 64-bit
// atomic fields, and padded struct size contracts.
package a

import "sync/atomic"

// Misaligned: on 386 uint64 aligns to 4, so hits sits at offset 4.
type Bad struct {
	flag uint32
	hits uint64
}

func BumpBad(b *Bad) {
	atomic.AddUint64(&b.hits, 1) // want `address of b\.hits passed to 64-bit atomic\.AddUint64: field offset 4 is not 8-byte aligned on 32-bit`
}

// Aligned: 64-bit fields first is the sync/atomic bug-note idiom.
type Good struct {
	hits uint64
	flag uint32
}

func BumpGood(g *Good) {
	atomic.AddUint64(&g.hits, 1)
	atomic.LoadUint64(&g.hits)
}

// Nested value structs accumulate offsets: inner starts at 4 on 386
// (struct alignment is 4 there), putting inner.hits at 4+0=4.
type Outer struct {
	flag  uint32
	inner struct {
		hits uint64
		pad  uint32
	}
}

func BumpOuter(o *Outer) {
	atomic.AddUint64(&o.inner.hits, 1) // want `field offset 4 is not 8-byte aligned on 32-bit`
}

// 32-bit atomics have no 8-byte requirement.
func Bump32(b *Bad) {
	atomic.AddUint32(&b.flag, 1)
}

//prudence:padded 128
type PadOK struct {
	n uint64
	_ [120]byte
}

//prudence:padded 128
type PadShort struct { // want `a\.PadShort is 112 bytes on 64-bit but prudence:padded declares 128`
	n uint64
	_ [104]byte
}
