package atomicalign

import (
	"testing"

	"prudence/internal/analysis/analysistest"
)

func TestAtomicAlign(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/a")
}
