// Package atomicalign is the static twin of the runtime padding tests:
//
//   - Struct fields passed by address to sync/atomic's 64-bit functions
//     must sit at an 8-byte-aligned offset under 32-bit (GOARCH=386)
//     layout rules, where uint64's natural alignment is only 4. (Fields
//     of type atomic.Int64/Uint64 are immune by construction and not
//     checked.)
//   - Types annotated //prudence:padded <bytes> must have exactly that
//     size under 64-bit layout — the cache-line padding contract of the
//     per-CPU structures (PerCPUCache, cpuLocal, pagealloc's shard, the
//     stats hot shards).
package atomicalign

import (
	"go/ast"
	"go/types"
	"strings"

	"prudence/internal/analysis"
)

// Analyzer is the atomicalign analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicalign",
	Doc:  "check 64-bit atomic field alignment and prudence:padded struct sizes",
	Run:  run,
}

var atomic64 = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

func run(pass *analysis.Pass) error {
	sizes32 := types.SizesFor("gc", "386")
	sizes64 := types.SizesFor("gc", "amd64")

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkAtomicCall(pass, sizes32, call)
			return true
		})
	}

	checkPadded(pass, sizes64)
	return nil
}

// checkAtomicCall flags atomic.XxxInt64(&s.f, ...) when f's offset is
// not 8-aligned under 32-bit layout.
func checkAtomicCall(pass *analysis.Pass, sizes32 types.Sizes, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomic64[sel.Sel.Name] {
		return
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "sync/atomic" || len(call.Args) == 0 {
		return
	}
	addr, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || addr.Op.String() != "&" {
		return
	}
	fieldSel, ok := addr.X.(*ast.SelectorExpr)
	if !ok {
		return
	}
	off, ok := fieldOffset(pass, sizes32, fieldSel)
	if !ok {
		return
	}
	if off%8 != 0 {
		pass.Reportf(addr.Pos(), "address of %s passed to 64-bit atomic.%s: field offset %d is not 8-byte aligned on 32-bit platforms; move it first in the struct or pad before it",
			types.ExprString(fieldSel), sel.Sel.Name, off)
	}
}

// fieldOffset returns sel's byte offset from the innermost addressable
// base under the given layout. Offsets accumulate across value-typed
// field selections; a pointer indirection resets the base (allocated
// objects are 8-aligned).
func fieldOffset(pass *analysis.Pass, sizes types.Sizes, sel *ast.SelectorExpr) (int64, bool) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return 0, false
	}
	off, ok := selectionOffset(sizes, s)
	if !ok {
		return 0, false
	}
	if inner, isSel := sel.X.(*ast.SelectorExpr); isSel {
		if tv, ok := pass.TypesInfo.Types[inner]; ok {
			if _, isPtr := tv.Type.(*types.Pointer); !isPtr {
				if innerOff, ok := fieldOffset(pass, sizes, inner); ok {
					off += innerOff
				}
			}
		}
	}
	return off, true
}

func selectionOffset(sizes types.Sizes, s *types.Selection) (int64, bool) {
	t := s.Recv()
	var off int64
	for _, idx := range s.Index() {
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			off = 0 // indirection: new allocation, new base
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		off += sizes.Offsetsof(fields)[idx]
		t = st.Field(idx).Type()
	}
	return off, true
}

// checkPadded verifies each //prudence:padded type declared in this
// package has exactly the annotated 64-bit size.
func checkPadded(pass *analysis.Pass, sizes64 types.Sizes) {
	prefix := pass.Pkg.Path() + "."
	for key, want := range pass.Directives.PaddedTypes() {
		name, ok := strings.CutPrefix(key, prefix)
		if !ok || strings.Contains(name, ".") {
			continue
		}
		obj := pass.Pkg.Scope().Lookup(name)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		got := sizes64.Sizeof(tn.Type().Underlying())
		if got != int64(want) {
			pass.Reportf(obj.Pos(), "%s is %d bytes on 64-bit but prudence:padded declares %d; adjust the trailing pad array",
				shortKey(key), got, want)
		}
	}
}

func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
