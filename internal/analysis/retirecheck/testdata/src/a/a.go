// Package a is the retirecheck fixture: use-after-retire and
// double-retire, direct and through helpers local and cross-package.
package a

import (
	"prudence/internal/analysis/retirecheck/testdata/src/h"
	"prudence/internal/fault"
)

// ---- direct retires (the intraprocedural baseline) ----

func UseAfterFree(c *h.Cache, n *h.Node) int {
	c.FreeDeferred(0, n)
	return n.V // want `uses n\.V after it was passed to FreeDeferred`
}

func WriteAfterFree(c *h.Cache, n *h.Node) {
	c.FreeDeferred(0, n)
	n.V = 1 // want `uses n\.V after it was passed to FreeDeferred`
}

// Publishing a retired pointer is a use like any other.
var published *h.Node

func PublishAfterFree(c *h.Cache, n *h.Node) {
	c.FreeDeferred(0, n)
	published = n // want `uses n after it was passed to FreeDeferred`
}

// The planted acceptance case: a double FreeDeferred through a helper.
func DoubleRetireThroughHelper(c *h.Cache, n *h.Node) {
	h.Kill(c, n)
	c.FreeDeferred(0, n) // want `double retire: n was already passed to h\.Kill \(which retires it\)`
}

func DoubleRetireDirect(c *h.Cache, n *h.Node) {
	c.FreeDeferred(0, n)
	c.FreeDeferred(0, n) // want `double retire: n was already passed to FreeDeferred`
}

// ---- retires through helpers (summary-only visibility) ----

func UseAfterHelperRetire(c *h.Cache, n *h.Node) int {
	h.Kill(c, n)
	return n.V // want `uses n\.V after it was passed to h\.Kill \(which retires it\)`
}

func UseAfterDeepRetire(c *h.Cache, n *h.Node) int {
	h.KillDeep(c, n)
	return n.V // want `uses n\.V after it was passed to h\.KillDeep \(which retires it\)`
}

func DoubleRetireBothHelpers(c *h.Cache, n *h.Node) {
	h.Kill(c, n)
	h.KillDeep(c, n) // want `double retire: n was already passed to h\.Kill \(which retires it\)`
}

// Only the retired parameter is tainted: keep stays live.
func KeepsUnretiredParam(c *h.Cache, keep, n *h.Node) int {
	h.DropSecond(c, keep, n)
	return keep.V
}

// A helper that merely reads does not taint.
func InspectIsNotARetire(c *h.Cache, n *h.Node) int {
	h.Inspect(n)
	return n.V
}

// Immediate free is a different contract (the allocator panics on
// double free at runtime); retirecheck tracks only deferred retires.
func FreeIsNotDeferred(c *h.Cache, n *h.Node) int {
	c.Free(0, n)
	return n.V
}

// ---- flow handling ----

// Rebinding the variable kills the taint.
func Rebind(c *h.Cache, n *h.Node) int {
	h.Kill(c, n)
	n = &h.Node{}
	return n.V
}

// Uses before the retire are fine.
func UseBefore(c *h.Cache, n *h.Node) int {
	v := n.V
	h.Kill(c, n)
	return v
}

// A sibling else-branch is unreachable from the then-branch's retire,
// but code after the if is covered from either branch.
func Branches(c *h.Cache, n *h.Node, deferred bool) int {
	if deferred {
		h.Kill(c, n)
	} else {
		c.Free(0, n)
	}
	return n.V // want `uses n\.V after it was passed to h\.Kill \(which retires it\)`
}

// A new variable that merely reuses the name carries no taint.
func NameReuse(c *h.Cache, ns []*h.Node) int {
	for _, n := range ns {
		h.Kill(c, n)
	}
	sum := 0
	for _, n := range ns {
		sum += n.V
	}
	return sum
}

// Fields reached through a retired base are dead too.
func FieldThroughRetired(c *h.Cache, n *h.Node) *h.Node {
	h.Kill(c, n)
	return n.Next // want `uses n\.Next after it was passed to h\.Kill \(which retires it\)`
}

// ---- audited exemptions ----

//prudence:nocheck retirecheck
func Suppressed(c *h.Cache, n *h.Node) int {
	c.FreeDeferred(0, n)
	return n.V
}

// An annotated injection site is an audited probe: it may key off the
// retired object's identity without counting as a use.
func AnnotatedFaultProbe(c *h.Cache, n *h.Node) {
	c.FreeDeferred(0, n)
	//prudence:fault_point
	fault.Fire(fault.Point(n.V))
}

// A nolint suppression is exercised here (stale ones are themselves
// reported by the driver).
func NolintUse(c *h.Cache, n *h.Node) int {
	h.Kill(c, n)
	return n.V //prudence:nolint:retirecheck audited: fixture exercises suppression
}
