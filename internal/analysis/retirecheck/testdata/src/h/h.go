// Package h is retirecheck's cross-package fixture: the cache type,
// and helpers that retire a parameter so callers in other packages
// only see the effect through summaries.
package h

type Node struct {
	V    int
	Next *Node
}

// Cache mimics the allocator's deferred-free entry point.
type Cache struct{}

func (c *Cache) FreeDeferred(cpu int, n *Node) {}

// Free is immediate, not deferred: no retire effect.
func (c *Cache) Free(cpu int, n *Node) {}

// Kill retires n one frame down.
func Kill(c *Cache, n *Node) {
	c.FreeDeferred(0, n)
}

// KillDeep retires n two frames down.
func KillDeep(c *Cache, n *Node) {
	Kill(c, n)
}

// DropSecond retires only its last parameter.
func DropSecond(c *Cache, keep, n *Node) {
	c.FreeDeferred(0, n)
}

// Inspect uses but never retires.
func Inspect(n *Node) int { return n.V }

// The taint also applies inside this imported package, and the harness
// must assert the diagnostic here, not only in the package under test.
func BadLocalUse(c *Cache, n *Node) int {
	c.FreeDeferred(0, n)
	return n.V // want `uses n\.V after it was passed to FreeDeferred`
}
