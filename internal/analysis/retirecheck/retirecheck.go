// Package retirecheck enforces the paper's no-touch-after-defer rule
// interprocedurally: once a value is handed to a FreeDeferred method —
// directly, or through any chain of helpers whose effect summaries
// retire a parameter — the caller's copy is dead. Two bug classes are
// reported (the ones Brown's survey of deferred-reclamation bugs calls
// out as the common failure modes):
//
//   - use-after-retire: any later read, write or publish of the
//     retired variable (or a field/element reached through it) in the
//     same function, until the variable is rebound;
//   - double-retire: passing an already-retired value to a retiring
//     call again, however many frames down each retire happens.
//
// The taint is flow-ordered within a function (if/else branches union)
// and crosses function boundaries through the module-wide effect
// summaries (internal/analysis/summary): a helper that forwards its
// parameter to FreeDeferred taints that argument at every call site,
// in every package.
//
// Calls into internal/fault's injection entry points that carry a
// //prudence:fault_point annotation are audited probes and may key off
// a retired object's identity without counting as a use (rcucheck
// separately enforces that the annotation is present and consumed).
//
// retirecheck subsumes the FreeDeferred taint that rcucheck carried
// when it was intraprocedural; rcucheck now checks only the RCU
// pointer and fault-point contracts.
package retirecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"prudence/internal/analysis"
	"prudence/internal/analysis/annot"
	"prudence/internal/analysis/lockstate"
	"prudence/internal/analysis/summary"
)

// Analyzer is the retirecheck entry point.
var Analyzer = &analysis.Analyzer{
	Name: "retirecheck",
	Doc:  "check no-use-after-FreeDeferred and double-retire across function boundaries",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Summaries == nil {
		return nil
	}
	probes := collectFaultLines(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if annot.FuncHas(fn, annot.VerbNoCheck, "retirecheck") {
				continue
			}
			checkRetires(pass, fn, probes)
		}
	}
	return nil
}

type fileLine struct {
	file string
	line int
}

// collectFaultLines indexes //prudence:fault_point comment lines so
// annotated injection probes can be exempted from the taint. Unused or
// missing annotations are rcucheck's contract, not re-reported here.
func collectFaultLines(pass *analysis.Pass) map[fileLine]bool {
	out := make(map[fileLine]bool)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, d := range annot.Parse(cg) {
				if d.Verb == annot.VerbFaultPoint {
					p := pass.Fset.Position(d.Pos)
					out[fileLine{p.Filename, p.Line}] = true
				}
			}
		}
	}
	return out
}

func annotatedProbe(pass *analysis.Pass, probes map[fileLine]bool, call *ast.CallExpr) bool {
	p := pass.Fset.Position(call.Pos())
	return probes[fileLine{p.Filename, p.Line}] || probes[fileLine{p.Filename, p.Line - 1}]
}

// taintKey identifies a tainted storage path by the base variable's
// types.Object plus the rendered path, so a later variable that merely
// reuses the name (a new range variable, a shadowing declaration)
// carries no stale taint.
type taintKey struct {
	obj  types.Object
	path string
}

// taint records one retirement: where it happened and through what.
type taint struct {
	pos  token.Pos
	sink string // "FreeDeferred" or "h.Kill (which retires it)"
}

func checkRetires(pass *analysis.Pass, fn *ast.FuncDecl, probes map[fileLine]bool) {
	if fn.Body == nil {
		return
	}
	taints := make(map[taintKey]taint)

	keyOf := func(e ast.Expr) (taintKey, bool) {
		path := exprPath(e)
		if path == "" {
			return taintKey{}, false
		}
		base := baseIdent(e)
		if base == nil {
			return taintKey{}, false
		}
		obj := pass.TypesInfo.Uses[base]
		if obj == nil {
			obj = pass.TypesInfo.Defs[base]
		}
		if obj == nil {
			return taintKey{}, false
		}
		return taintKey{obj: obj, path: path}, true
	}

	checkUse := func(e ast.Expr, k taintKey) bool {
		for tk, tn := range taints {
			if tk.obj != k.obj || e.Pos() <= tn.pos {
				continue
			}
			if k.path == tk.path || strings.HasPrefix(k.path, tk.path+".") {
				pass.Reportf(e.Pos(), "uses %s after it was passed to %s", k.path, tn.sink)
				return true
			}
		}
		return false
	}

	var visit func(n ast.Node) bool
	inspect := func(n ast.Node) {
		if n != nil {
			ast.Inspect(n, visit)
		}
	}
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			if x.Init != nil {
				inspect(x.Init)
			}
			inspect(x.Cond)
			before := make(map[taintKey]taint, len(taints))
			for k, v := range taints {
				before[k] = v
			}
			inspect(x.Body)
			afterThen := taints
			taints = before
			if x.Else != nil {
				inspect(x.Else)
			}
			for k, v := range afterThen { // union: taint from either branch
				if _, ok := taints[k]; !ok {
					taints[k] = v
				}
			}
			return false
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				inspect(r)
			}
			for _, l := range x.Lhs {
				k, ok := keyOf(l)
				switch {
				case !ok:
					inspect(l)
				case strings.IndexByte(k.path, '.') < 0:
					// Rebinding the variable itself kills every taint
					// rooted at it.
					for tk := range taints {
						if tk.obj == k.obj {
							delete(taints, tk)
						}
					}
				default:
					if _, tainted := taints[k]; tainted {
						delete(taints, k) // rebinding the tainted field
						continue
					}
					if checkUse(l, k) {
						continue
					}
					inspect(l)
				}
			}
			return false
		case *ast.CallExpr:
			if lockstate.IsFaultInjection(pass.TypesInfo, x) && annotatedProbe(pass, probes, x) {
				// Annotated injection sites are audited probes: they may
				// key off a retired object's identity without counting
				// as a use of it.
				return false
			}
			retires := pass.Summaries.CallRetires(pass.TypesInfo, x)
			if len(retires) == 0 {
				return true
			}
			inspect(x.Fun)
			sink := sinkName(pass.TypesInfo, x)
			args := callArgs(pass.TypesInfo, x)
			for i, arg := range args {
				if arg == nil {
					continue // receiver inside x.Fun, already inspected
				}
				_, retired := retires[i]
				if !retired || isScalar(pass.TypesInfo, arg) {
					inspect(arg)
					continue
				}
				k, ok := keyOf(arg)
				if !ok {
					inspect(arg)
					continue
				}
				if tn, tainted := taints[k]; tainted && arg.Pos() > tn.pos {
					pass.Reportf(arg.Pos(), "double retire: %s was already passed to %s", k.path, tn.sink)
					continue
				}
				if checkUse(arg, k) {
					continue
				}
				taints[k] = taint{pos: x.End(), sink: sink}
			}
			return false
		case *ast.SelectorExpr:
			if k, ok := keyOf(x); ok {
				if checkUse(x, k) {
					return false
				}
			}
			return true
		case *ast.Ident:
			if k, ok := keyOf(x); ok {
				checkUse(x, k)
			}
			return true
		}
		return true
	}
	ast.Inspect(fn.Body, visit)
}

// callArgs aligns a call's argument expressions with the summary's
// retire indices: for a method-value call the receiver is index 0 and
// is returned as nil (it lives inside x.Fun).
func callArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isSel := info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
			out = append(out, nil)
		}
	}
	return append(out, call.Args...)
}

// sinkName renders the retiring callee for diagnostics.
func sinkName(info *types.Info, call *ast.CallExpr) string {
	fn := lockstate.CalleeFunc(info, call)
	if fn != nil && fn.Name() == "FreeDeferred" {
		return "FreeDeferred"
	}
	if key := lockstate.FuncKey(fn); key != "" {
		return summary.Short(key) + " (which retires it)"
	}
	return "a retiring call"
}

// exprPath renders a pure ident/selector chain ("c.base.n"), or "".
func exprPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// isScalar reports whether e's type is a basic type (ints, strings):
// scalars passed to a retiring call (the cpu number) carry no freed
// state.
func isScalar(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return true
	}
	_, basic := tv.Type.Underlying().(*types.Basic)
	return basic
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}
