package retirecheck

import (
	"testing"

	"prudence/internal/analysis/analysistest"
)

func TestRetireCheck(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/a")
}

// TestSummaryGolden pins the retire-effect summaries for the helper
// package: which parameter each helper retires, by index.
func TestSummaryGolden(t *testing.T) {
	analysistest.RunSummaryGolden(t, "testdata/summaries.golden", "./testdata/src/h")
}
