package guardedby

import (
	"testing"

	"prudence/internal/analysis/analysistest"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/a")
}

// TestCrossPackage proves annotations on a real internal package
// (slabcore) are honored when analyzing an importer that only sees it
// through export data.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/b")
}
