// Package guardedby enforces //prudence:guarded_by field annotations:
// every read or write of an annotated field must happen while the
// named lock class may be held (via Lock/LockRemote/TryLock/RLock, a
// prudence:requires annotation on the enclosing function, or inside an
// if-TryLock body).
//
// The guard spec names either a lock class ("Node", "PerCPUCache") or
// a sibling field of the same struct whose type is a lock class
// ("objs" on core's cpuLocal fields). Accesses through a local freshly
// bound to a composite literal are exempt: an object is unpublished
// until its constructor hands it out, so init-before-publish stores
// need no lock (the same reasoning the kernel applies to
// not-yet-visible objects).
//
// The check is class-based, not instance-based: holding ANY lock of
// the guard's class satisfies the guard (see DESIGN.md §8).
package guardedby

import (
	"go/ast"
	"go/types"

	"prudence/internal/analysis"
	"prudence/internal/analysis/annot"
	"prudence/internal/analysis/lockstate"
)

// Analyzer is the guardedby analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "check that prudence:guarded_by fields are accessed only under their lock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if annot.FuncHas(fn, annot.VerbNoCheck, "guardedby") {
				continue
			}
			// Callees lets a lock-wrapper helper satisfy the guard: a
			// call to a function whose summary returns with the guard
			// class held counts as holding it.
			w := &lockstate.Walker{
				Info:    pass.TypesInfo,
				Table:   pass.Directives,
				Callees: pass.Summaries,
			}
			w.Hooks.OnNode = func(n ast.Node, st *lockstate.State) {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return
				}
				checkAccess(pass, st, sel)
			}
			w.Walk(fn)
		}
	}
	return nil
}

func checkAccess(pass *analysis.Pass, st *lockstate.State, sel *ast.SelectorExpr) {
	key := lockstate.FieldKey(pass.TypesInfo, sel)
	if key == "" {
		return
	}
	spec := pass.Directives.GuardSpec(key)
	if spec == "" {
		return
	}
	if guardHeld(pass, st, spec, sel) {
		return
	}
	if base := baseIdent(sel); base != nil {
		obj := pass.TypesInfo.Uses[base]
		if obj == nil {
			obj = pass.TypesInfo.Defs[base]
		}
		if st.IsFresh(obj) {
			return
		}
	}
	pass.Reportf(sel.Sel.Pos(), "accesses %s without holding %s", shortKey(key), spec)
}

// guardHeld resolves the guard spec at this access site and reports
// whether the state may hold it. Resolution order: a declared lock
// class named by spec, then a sibling field of the access's owner
// struct whose type carries a lock class.
func guardHeld(pass *analysis.Pass, st *lockstate.State, spec string, sel *ast.SelectorExpr) bool {
	if classes := pass.Directives.ResolveSpec(spec); len(classes) > 0 {
		return st.HoldsSpec(spec)
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	owner := derefStruct(s.Recv())
	if owner == nil {
		return false
	}
	for i := 0; i < owner.NumFields(); i++ {
		fld := owner.Field(i)
		if fld.Name() != spec {
			continue
		}
		if c := lockstate.ClassOfType(pass.Directives, fld.Type()); c != nil {
			return st.HoldsClass(c.Key)
		}
	}
	return false
}

func derefStruct(t types.Type) *types.Struct {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	s, _ := t.Underlying().(*types.Struct)
	return s
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

func shortKey(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			return key[i+1:]
		}
	}
	return key
}
