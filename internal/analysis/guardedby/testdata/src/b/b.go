// Package b exercises cross-package guard checking: slabcore's
// annotations travel through the annotation table even though this
// package imports slabcore via export data.
package b

import "prudence/internal/slabcore"

// Peek reads the cache contents without its owner-core lock.
func Peek(c *slabcore.PerCPUCache) int {
	return len(c.Objs) // want `accesses slabcore\.PerCPUCache\.Objs without holding PerCPUCache`
}

// PeekLocked is the correct idiom.
func PeekLocked(c *slabcore.PerCPUCache) int {
	c.Lock()
	defer c.Unlock()
	return len(c.Objs)
}

// Fresh caches are invisible to other CPUs; no lock needed.
func Fresh() int {
	c := slabcore.PerCPUCache{Size: 4}
	return len(c.Objs)
}
