// Package a is the guardedby fixture: Counter.n and Counter.m are
// guarded by the embedded Guard lock, named by class and by sibling
// field respectively.
package a

import "sync"

//prudence:lockorder 10
type Guard struct{ mu sync.Mutex }

func (g *Guard) Lock()         { g.mu.Lock() }
func (g *Guard) Unlock()       { g.mu.Unlock() }
func (g *Guard) TryLock() bool { return g.mu.TryLock() }

type Counter struct {
	g Guard
	n int //prudence:guarded_by Guard
	m int //prudence:guarded_by g
}

func Locked(c *Counter) int {
	c.g.Lock()
	defer c.g.Unlock()
	c.n++
	c.m = c.n
	return c.m
}

func Unlocked(c *Counter) int {
	c.n++      // want `accesses a\.Counter\.n without holding Guard`
	return c.m // want `accesses a\.Counter\.m without holding g`
}

func LockedThenReleased(c *Counter) int {
	c.g.Lock()
	c.n = 1
	c.g.Unlock()
	return c.n // want `accesses a\.Counter\.n without holding Guard`
}

// A caller-holds contract satisfies the guard.
//
//prudence:requires Guard
func Contract(c *Counter) {
	c.n++
	c.m++
}

// A fresh composite literal is unpublished: init stores need no lock.
func New() *Counter {
	c := &Counter{}
	c.n = 1
	c.m = 1
	return c
}

// TryLock guards the body only.
func Try(c *Counter) {
	if c.g.TryLock() {
		c.n++
		c.g.Unlock()
	}
	c.m++ // want `accesses a\.Counter\.m without holding g`
}

// Both arms of a conditional acquisition count (may-hold union).
func EitherLock(c *Counter, remote bool) {
	if remote {
		c.g.Lock()
	} else {
		c.g.Lock()
	}
	c.n++
	c.g.Unlock()
}

//prudence:nocheck guardedby
func Suppressed(c *Counter) int {
	return c.n
}

// ---- interprocedural guard satisfaction (summary-driven) ----

// lockCounter returns with the guard held: callers inherit the class
// through its net-held effect.
func lockCounter(c *Counter) {
	c.g.Lock()
}

func GoodHelperLocked(c *Counter) int {
	lockCounter(c)
	c.n++
	defer c.g.Unlock()
	return c.n
}

// A helper that locks and unlocks leaves nothing held for the caller.
func lockBriefly(c *Counter) {
	c.g.Lock()
	c.g.Unlock()
}

func BadHelperReleased(c *Counter) int {
	lockBriefly(c)
	return c.n // want `accesses a\.Counter\.n without holding Guard`
}
