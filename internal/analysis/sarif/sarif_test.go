package sarif

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"prudence/internal/analysis"
	"prudence/internal/analysis/driver"
)

func TestWrite(t *testing.T) {
	analyzers := []*analysis.Analyzer{
		{Name: "sleepcheck", Doc: "no blocking under read locks"},
		{Name: "retirecheck", Doc: "no touch after retire"},
	}
	findings := []driver.Finding{
		{
			Pos:      token.Position{Filename: "internal/core/core.go", Line: 42, Column: 7},
			Message:  "may-block call rcu.Synchronize: inside read-side critical section",
			Analyzer: "sleepcheck",
		},
		{
			Pos:      token.Position{Filename: "internal/slub/slub.go", Line: 9, Column: 2},
			Message:  "unused suppression: no retirecheck finding on line 9 (stale //prudence:nolint is an error)",
			Analyzer: "nolint",
		},
	}

	var buf bytes.Buffer
	if err := Write(&buf, analyzers, findings); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Round-trip through a generic map to make sure the JSON shape is
	// what SARIF consumers key on, not just what our structs happen to
	// marshal to.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if v := doc["version"]; v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one run", doc["runs"])
	}
	run := runs[0].(map[string]any)

	drv := run["tool"].(map[string]any)["driver"].(map[string]any)
	if drv["name"] != "prudence-vet" {
		t.Errorf("driver name = %v", drv["name"])
	}
	rules := drv["rules"].([]any)
	// Two registered analyzers plus the synthetic nolint rule.
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rules))
	}
	ids := make([]string, 0, len(rules))
	for _, r := range rules {
		ids = append(ids, r.(map[string]any)["id"].(string))
	}
	if got := strings.Join(ids, ","); got != "sleepcheck,retirecheck,nolint" {
		t.Errorf("rule ids = %s", got)
	}

	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != "sleepcheck" || first["level"] != "error" {
		t.Errorf("first result ruleId/level = %v/%v", first["ruleId"], first["level"])
	}
	loc := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	if uri := loc["artifactLocation"].(map[string]any)["uri"]; uri != "internal/core/core.go" {
		t.Errorf("uri = %v", uri)
	}
	region := loc["region"].(map[string]any)
	if region["startLine"].(float64) != 42 || region["startColumn"].(float64) != 7 {
		t.Errorf("region = %v", region)
	}
}

func TestWriteEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil, nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var doc struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// results must be [] rather than null: the code-scanning upload
	// rejects a missing results array.
	if doc.Runs[0].Results == nil {
		t.Error("results is null, want empty array")
	}
}
