// Package sarif renders prudence-vet findings as a SARIF 2.1.0 log so
// CI systems (GitHub code scanning, VS Code SARIF viewers) can ingest
// them. Only the subset of the schema those consumers require is
// emitted: one run, the tool's rule table, and one result per finding
// with a physical location. URIs are emitted as given by the loader
// (module-relative when the driver is run from the module root), which
// is what the code-scanning upload action expects.
package sarif

import (
	"encoding/json"
	"io"

	"prudence/internal/analysis"
	"prudence/internal/analysis/driver"
)

// Log is the document root.
type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []Run  `json:"runs"`
}

// Run is one invocation of the tool.
type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

// Tool wraps the driver description.
type Tool struct {
	Driver ToolComponent `json:"driver"`
}

// ToolComponent names the analyzer binary and lists its rules.
type ToolComponent struct {
	Name           string `json:"name"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules"`
}

// Rule is one analyzer.
type Rule struct {
	ID               string  `json:"id"`
	ShortDescription Message `json:"shortDescription"`
}

// Message holds plain text.
type Message struct {
	Text string `json:"text"`
}

// Result is one finding.
type Result struct {
	RuleID    string     `json:"ruleId"`
	Level     string     `json:"level"`
	Message   Message    `json:"message"`
	Locations []Location `json:"locations"`
}

// Location wraps a physical location.
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

// PhysicalLocation is an artifact plus region.
type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

// ArtifactLocation names the file.
type ArtifactLocation struct {
	URI string `json:"uri"`
}

// Region is the start position. SARIF columns are 1-based like Go's.
type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// New builds a Log from the analyzer set and findings. Every analyzer
// appears in the rule table whether or not it fired, so consumers can
// show the full rule inventory; the synthetic "nolint" rule is added
// when an unused-suppression finding references it.
func New(analyzers []*analysis.Analyzer, findings []driver.Finding) *Log {
	rules := make([]Rule, 0, len(analyzers)+1)
	known := make(map[string]bool, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, Rule{ID: a.Name, ShortDescription: Message{Text: a.Doc}})
		known[a.Name] = true
	}
	results := make([]Result, 0, len(findings))
	for _, f := range findings {
		if !known[f.Analyzer] {
			rules = append(rules, Rule{ID: f.Analyzer, ShortDescription: Message{Text: "stale //prudence:nolint suppression"}})
			known[f.Analyzer] = true
		}
		results = append(results, Result{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: Message{Text: f.Message},
			Locations: []Location{{
				PhysicalLocation: PhysicalLocation{
					ArtifactLocation: ArtifactLocation{URI: f.Pos.Filename},
					Region:           Region{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	return &Log{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []Run{{
			Tool:    Tool{Driver: ToolComponent{Name: "prudence-vet", Rules: rules}},
			Results: results,
		}},
	}
}

// Write encodes the log as indented JSON.
func Write(w io.Writer, analyzers []*analysis.Analyzer, findings []driver.Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(New(analyzers, findings))
}
