// Package a is the lockorder fixture: Low (rank 10) must be acquired
// before High (rank 20); Shards (rank 30) are same-rank array locks
// taken in ascending index order.
package a

import "sync"

//prudence:lockorder 10
type Low struct{ mu sync.Mutex }

func (l *Low) Lock()         { l.mu.Lock() }
func (l *Low) Unlock()       { l.mu.Unlock() }
func (l *Low) TryLock() bool { return l.mu.TryLock() }

//prudence:lockorder 20
type High struct{ mu sync.Mutex }

func (h *High) Lock()   { h.mu.Lock() }
func (h *High) Unlock() { h.mu.Unlock() }

//prudence:lockorder 30
type Shard struct{ mu sync.Mutex }

type Table struct{ shards [4]Shard }

func Ascending(l *Low, h *High) {
	l.Lock()
	h.Lock()
	h.Unlock()
	l.Unlock()
}

func Descending(l *Low, h *High) {
	h.Lock()
	l.Lock() // want `acquires a\.Low \(rank 10\) while holding a\.High \(rank 20\)`
	l.Unlock()
	h.Unlock()
}

func DeferredAscending(l *Low, h *High) {
	l.Lock()
	defer l.Unlock()
	h.Lock()
	defer h.Unlock()
}

func DeferredDescending(l *Low, h *High) {
	h.Lock()
	defer h.Unlock()
	l.Lock() // want `acquires a\.Low \(rank 10\) while holding a\.High \(rank 20\)`
	defer l.Unlock()
}

// Sequential acquisition is not nesting: releasing High first makes the
// later Low acquisition legal.
func Sequential(l *Low, h *High) {
	h.Lock()
	h.Unlock()
	l.Lock()
	l.Unlock()
}

// An early-exit branch that releases the lock must not poison the
// fall-through state.
func EarlyRelease(l *Low, h *High, bail bool) {
	h.Lock()
	if bail {
		h.Unlock()
		l.Lock()
		l.Unlock()
		return
	}
	h.Unlock()
	l.Lock()
	l.Unlock()
}

func SelfDeadlock(l *Low) {
	l.Lock()
	l.Lock() // want `acquires a\.Low \(rank 10\) while already holding it`
	l.Unlock()
	l.Unlock()
}

// prudence:requires seeds the held set from the caller's contract.
//
//prudence:requires High
func RequiresHigh(l *Low) {
	l.Lock() // want `acquires a\.Low \(rank 10\) while holding a\.High \(rank 20\)`
	l.Unlock()
}

//prudence:requires Low
func RequiresLow(h *High) {
	h.Lock()
	h.Unlock()
}

// Same-rank array locks: ascending constant indices are the escalation
// idiom; descending is a deadlock.
func ShardAscending(t *Table) {
	t.shards[0].mu.Lock()
	t.shards[2].mu.Lock()
	t.shards[2].mu.Unlock()
	t.shards[0].mu.Unlock()
}

func ShardDescending(t *Table) {
	t.shards[2].mu.Lock()
	t.shards[0].mu.Lock() // want `acquires a\.Shard\[0\] while holding a\.Shard\[2\]; same-rank array locks must be taken in ascending index order`
	t.shards[0].mu.Unlock()
	t.shards[2].mu.Unlock()
}

// Dynamic indices are trusted (the escalation loop walks upward by
// construction).
func ShardDynamic(t *Table, i, j int) {
	t.shards[i].mu.Lock()
	t.shards[j].mu.Lock()
	t.shards[j].mu.Unlock()
	t.shards[i].mu.Unlock()
}

// A TryLock in an if-condition holds the lock inside the body only.
func TryBody(l *Low, h *High) {
	h.Lock()
	if l.TryLock() { // want `acquires a\.Low \(rank 10\) while holding a\.High \(rank 20\)`
		l.Unlock()
	}
	h.Unlock()
	l.Lock()
	l.Unlock()
}

// ---- interprocedural ordering (summary-driven) ----

// lockLowBriefly's acquisition is invisible without effect summaries.
func lockLowBriefly(l *Low) {
	l.Lock()
	l.Unlock()
}

func BadIndirect(l *Low, h *High) {
	h.Lock()
	lockLowBriefly(l) // want `calls a\.lockLowBriefly, which acquires a\.Low \(rank 10\), while holding a\.High \(rank 20\); lock ranks must ascend`
	h.Unlock()
}

func BadReacquireIndirect(l *Low) {
	l.Lock()
	lockLowBriefly(l) // want `calls a\.lockLowBriefly, which re-acquires a\.Low \(rank 10\) already held`
	l.Unlock()
}

// lockHighBriefly ascends from Low: fine to call with Low held.
func lockHighBriefly(h *High) {
	h.Lock()
	h.Unlock()
}

func GoodIndirect(l *Low, h *High) {
	l.Lock()
	lockHighBriefly(h)
	l.Unlock()
}

// holdHigh returns with High held (a lock-wrapper idiom): the caller
// inherits the held class through the net-held effect.
func holdHigh(h *High) {
	h.Lock()
}

func BadAfterHeldHelper(l *Low, h *High) {
	holdHigh(h)
	l.Lock() // want `acquires a\.Low \(rank 10\) while holding a\.High \(rank 20\)`
	l.Unlock()
	h.Unlock()
}

func GoodAfterHeldHelper(l *Low, h *High) {
	l.Lock()
	holdHigh(h)
	h.Unlock()
	l.Unlock()
}

// ---- closures and indexed net-held effects (regression pins) ----

// scheduleLater stands in for an idle-work queue: the closure runs
// whenever the worker gets to it, not under the locks held here.
func scheduleLater(f func()) { _ = f }

// The scheduled closure's acquisition is not ordered against the locks
// held at the scheduling site (core's armPreflush idiom).
//
//prudence:requires High
func GoodEscapingClosure(l *Low) {
	scheduleLater(func() {
		l.Lock()
		l.Unlock()
	})
}

// An immediately-invoked literal runs inline and stays checked.
//
//prudence:requires High
func BadImmediateClosure(l *Low) {
	func() {
		l.Lock() // want `acquires a\.Low \(rank 10\) while holding a\.High \(rank 20\)`
		l.Unlock()
	}()
}

// lockShardsThrough returns holding every shard up to g — the buddy
// allocator's escalation idiom. Its net-held effect is indexed, so the
// same-rank acquisition under a caller that already holds a shard is
// trusted (pagealloc.coalesceInsert calling lockThrough).
func lockShardsThrough(t *Table, g int) {
	for i := 0; i <= g; i++ {
		t.shards[i].mu.Lock()
	}
}

//prudence:requires Shard
func GoodIndexedEscalation(t *Table, g int) {
	lockShardsThrough(t, g)
}

// The nocheck escape hatch suppresses this analyzer only.
//
//prudence:nocheck lockorder
func Suppressed(l *Low, h *High) {
	h.Lock()
	l.Lock()
	l.Unlock()
	h.Unlock()
}

// Plain sync.Mutex without an annotation is outside the order.
func Unannotated(l *Low) {
	var mu sync.Mutex
	l.Lock()
	mu.Lock()
	mu.Unlock()
	l.Unlock()
}
