package lockorder

import (
	"testing"

	"prudence/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/a")
}
