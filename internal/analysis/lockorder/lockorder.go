// Package lockorder enforces the module's lock-acquisition order.
//
// Lock classes are declared with //prudence:lockorder <rank> on a lock
// type or lock field. The analyzer flags any path that acquires a lock
// of rank ≤ an already-held lock's rank: all chains must ascend. Locks
// of the same class selected by constant array index (the buddy
// allocator's shards) must be taken in ascending index order; when
// either index is dynamic the escalation loop is trusted (pagealloc's
// lockThrough walks indices upward by construction — a documented
// soundness gap).
package lockorder

import (
	"go/ast"
	"go/token"
	"strings"

	"prudence/internal/analysis"
	"prudence/internal/analysis/annot"
	"prudence/internal/analysis/lockstate"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "check that lock classes are acquired in ascending prudence:lockorder rank",
	Run:  run,
}

func short(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if annot.FuncHas(fn, annot.VerbNoCheck, "lockorder") {
				continue
			}
			w := &lockstate.Walker{
				Info:  pass.TypesInfo,
				Table: pass.Directives,
				Hooks: lockstate.Hooks{
					OnAcquire: func(pos token.Pos, acq lockstate.Held, before *lockstate.State) {
						check(pass, pos, acq, before)
					},
				},
			}
			w.Walk(fn)
		}
	}
	return nil
}

func check(pass *analysis.Pass, pos token.Pos, acq lockstate.Held, before *lockstate.State) {
	for _, h := range before.Held {
		switch {
		case h.Class.Rank > acq.Class.Rank:
			pass.Reportf(pos, "acquires %s (rank %d) while holding %s (rank %d); lock ranks must ascend",
				short(acq.Class.Key), acq.Class.Rank, short(h.Class.Key), h.Class.Rank)
		case h.Class.Rank == acq.Class.Rank:
			// Same rank is a self-deadlock unless it is an indexed
			// acquisition walking the array upward.
			if acq.Dynamic || h.Dynamic {
				continue
			}
			if acq.HasIndex && h.HasIndex {
				if acq.Index > h.Index {
					continue
				}
				pass.Reportf(pos, "acquires %s[%d] while holding %s[%d]; same-rank array locks must be taken in ascending index order",
					short(acq.Class.Key), acq.Index, short(h.Class.Key), h.Index)
				continue
			}
			if h.FromRequires && acq.HasIndex {
				// The caller's held index is unknown; the indexed
				// re-acquisition is the escalation idiom.
				continue
			}
			if h.Class.Key == acq.Class.Key {
				pass.Reportf(pos, "acquires %s (rank %d) while already holding it",
					short(acq.Class.Key), acq.Class.Rank)
			} else {
				pass.Reportf(pos, "acquires %s while holding %s of equal rank %d; give the classes distinct ranks",
					short(acq.Class.Key), short(h.Class.Key), acq.Class.Rank)
			}
		}
	}
}
