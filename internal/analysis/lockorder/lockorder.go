// Package lockorder enforces the module's lock-acquisition order.
//
// Lock classes are declared with //prudence:lockorder <rank> on a lock
// type or lock field. The analyzer flags any path that acquires a lock
// of rank ≤ an already-held lock's rank: all chains must ascend. Locks
// of the same class selected by constant array index (the buddy
// allocator's shards) must be taken in ascending index order; when
// either index is dynamic the escalation loop is trusted (pagealloc's
// lockThrough walks indices upward by construction — a documented
// soundness gap).
//
// The check is interprocedural through the module-wide effect
// summaries: a call to a helper whose call graph acquires a lock class
// is an acquisition of that class at the call site for ordering
// purposes, and a helper that returns with a lock still held (its
// net-held effect) extends the held set exactly as a direct Lock call
// would.
package lockorder

import (
	"go/ast"
	"go/token"
	"strings"

	"prudence/internal/analysis"
	"prudence/internal/analysis/annot"
	"prudence/internal/analysis/lockstate"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "check that lock classes are acquired in ascending prudence:lockorder rank",
	Run:  run,
}

func short(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if annot.FuncHas(fn, annot.VerbNoCheck, "lockorder") {
				continue
			}
			w := &lockstate.Walker{
				Info:    pass.TypesInfo,
				Table:   pass.Directives,
				Callees: pass.Summaries,
				Hooks: lockstate.Hooks{
					OnAcquire: func(pos token.Pos, acq lockstate.Held, before *lockstate.State) {
						check(pass, pos, acq, before)
					},
					OnNode: func(n ast.Node, st *lockstate.State) {
						if call, ok := n.(*ast.CallExpr); ok {
							checkCall(pass, call, st)
						}
					},
				},
			}
			w.Walk(fn)
		}
	}
	return nil
}

// checkCall applies the ordering rule to a callee's transitive
// acquisitions: with locks held at the call site, everything the callee
// may acquire must rank strictly above them. Classes the callee still
// holds on return are excluded here — they surface through the
// walker's net-held OnAcquire path and would double-report. Indexed
// acquisitions anywhere in the callee's chain (shards[i].mu) are the
// escalation idiom and exempt from the same-rank rule, as are same-rank
// re-acquisitions under a requires contract whose held index is
// unknown.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, st *lockstate.State) {
	if pass.Summaries == nil || len(st.Held) == 0 {
		return
	}
	// Direct lock operations (x.Lock, x.TryLock, ...) are classified by
	// the walker itself and checked through OnAcquire; consulting the
	// wrapper method's summary here would double-report them.
	if op, _ := lockstate.Classify(pass.TypesInfo, pass.Directives, call); op != lockstate.OpNone {
		return
	}
	key := lockstate.CalleeKey(pass.TypesInfo, call)
	fe := pass.Summaries.Func(key)
	if fe == nil || len(fe.Acquires) == 0 {
		return
	}
	netHeld := make(map[string]bool)
	for _, k := range fe.NetHeld() {
		netHeld[k] = true
	}
	for classKey := range fe.Acquires {
		if netHeld[classKey] {
			continue
		}
		c := pass.Directives.ClassByKey(classKey)
		if c == nil {
			continue
		}
		indexed := fe.AcquiresIndexed[classKey]
		for _, h := range st.Held {
			switch {
			case h.Class.Rank > c.Rank:
				pass.Reportf(call.Pos(), "calls %s, which acquires %s (rank %d), while holding %s (rank %d); lock ranks must ascend",
					short(key), short(classKey), c.Rank, short(h.Class.Key), h.Class.Rank)
			case h.Class.Rank == c.Rank:
				if indexed || h.HasIndex || h.Dynamic {
					continue // index-walking escalation is trusted
				}
				if h.Class.Key == classKey {
					pass.Reportf(call.Pos(), "calls %s, which re-acquires %s (rank %d) already held",
						short(key), short(classKey), c.Rank)
				} else {
					pass.Reportf(call.Pos(), "calls %s, which acquires %s while %s of equal rank %d is held; give the classes distinct ranks",
						short(key), short(classKey), short(h.Class.Key), c.Rank)
				}
			}
		}
	}
}

func check(pass *analysis.Pass, pos token.Pos, acq lockstate.Held, before *lockstate.State) {
	for _, h := range before.Held {
		switch {
		case h.Class.Rank > acq.Class.Rank:
			pass.Reportf(pos, "acquires %s (rank %d) while holding %s (rank %d); lock ranks must ascend",
				short(acq.Class.Key), acq.Class.Rank, short(h.Class.Key), h.Class.Rank)
		case h.Class.Rank == acq.Class.Rank:
			// Same rank is a self-deadlock unless it is an indexed
			// acquisition walking the array upward.
			if acq.Dynamic || h.Dynamic {
				continue
			}
			if acq.HasIndex && h.HasIndex {
				if acq.Index > h.Index {
					continue
				}
				pass.Reportf(pos, "acquires %s[%d] while holding %s[%d]; same-rank array locks must be taken in ascending index order",
					short(acq.Class.Key), acq.Index, short(h.Class.Key), h.Index)
				continue
			}
			if h.FromRequires && acq.HasIndex {
				// The caller's held index is unknown; the indexed
				// re-acquisition is the escalation idiom.
				continue
			}
			if h.Class.Key == acq.Class.Key {
				pass.Reportf(pos, "acquires %s (rank %d) while already holding it",
					short(acq.Class.Key), acq.Class.Rank)
			} else {
				pass.Reportf(pos, "acquires %s while holding %s of equal rank %d; give the classes distinct ranks",
					short(acq.Class.Key), short(h.Class.Key), acq.Class.Rank)
			}
		}
	}
}
