// Package nolintpkg exercises the driver's //prudence:nolint
// machinery: same-line suppression, next-line anchoring, stale
// suppressions, and suppressions for analyzers that did not run.
package nolintpkg

// Suppressed's finding is killed by the same-line comment.
func Suppressed() int {
	return 1 //prudence:nolint:testcheck audited: fixture exercises same-line suppression
}

// NextLine's finding is killed by the comment on the line above.
func NextLine() int {
	//prudence:nolint:testcheck audited: fixture exercises next-line anchoring
	return 2
}

// Unsuppressed's finding survives.
func Unsuppressed() int {
	return 3
}

// Stale anchors to the var line below, where testcheck reports
// nothing: the driver must flag the suppression itself.
//
//prudence:nolint:testcheck stale: nothing to suppress here
var Stale = 4

// A suppression for an analyzer that did not run is left alone — it
// may be load-bearing for a different invocation.
//
//prudence:nolint:othercheck not stale: othercheck is not in this run
var OtherTool = 5
