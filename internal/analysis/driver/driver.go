// Package driver loads Go packages for the prudence-vet analyzers
// without any dependency outside the standard library.
//
// The loading strategy replaces golang.org/x/tools/go/packages:
//
//  1. `go list -json <patterns>` names the target packages.
//  2. `go list -export -deps -json <patterns>` compiles the whole
//     dependency graph and reports an export-data file for every
//     package in it (stdlib included, via the build cache).
//  3. Target packages are parsed from source with comments and
//     type-checked against that export data through
//     importer.ForCompiler's lookup hook.
//
// Every module-local package in the graph — not just the targets — is
// parsed for //prudence: annotations, so a directive on a slabcore type
// is visible while analyzing core even though core sees slabcore only
// as export data (which carries no comments).
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"prudence/internal/analysis"
	"prudence/internal/analysis/annot"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Finding is one rendered diagnostic.
type Finding struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Load is the result of LoadPackages.
type Load struct {
	Fset    *token.FileSet
	Targets []*Package
	Table   *annot.Table
	Sizes   types.Sizes
	// DirectiveErrs are malformed //prudence: comments anywhere in the
	// module-local graph; they should fail the run like a bad build tag.
	DirectiveErrs []Finding
}

type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
}

func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages loads the packages matching patterns, resolved relative
// to dir, ready for analysis.
func LoadPackages(dir string, patterns []string) (*Load, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	universe, err := goList(dir, append([]string{"-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File)
	parsePkg := func(p listPkg) ([]*ast.File, error) {
		if files, ok := parsed[p.ImportPath]; ok {
			return files, nil
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		parsed[p.ImportPath] = files
		return files, nil
	}

	load := &Load{
		Fset:  fset,
		Table: annot.NewTable(),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}

	exports := make(map[string]string)
	for _, p := range universe {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard {
			continue
		}
		files, err := parsePkg(p)
		if err != nil {
			return nil, err
		}
		for _, e := range load.Table.AddPackage(p.ImportPath, files) {
			ae := e.(*annot.Error)
			load.DirectiveErrs = append(load.DirectiveErrs, Finding{
				Pos:      fset.Position(ae.Pos),
				Message:  ae.Msg,
				Analyzer: "annot",
			})
		}
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	for _, t := range targets {
		files, err := parsePkg(t)
		if err != nil {
			return nil, err
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Sizes:    load.Sizes,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		pkg, _ := conf.Check(t.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, typeErrs[0])
		}
		load.Targets = append(load.Targets, &Package{
			ImportPath: t.ImportPath,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
		})
	}
	return load, nil
}

// Run applies each analyzer to each target package and returns the
// findings in deterministic (position, analyzer, message) order.
func Run(load *Load, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var out []Finding
	for _, t := range load.Targets {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Fset:       load.Fset,
				Files:      t.Files,
				Pkg:        t.Pkg,
				TypesInfo:  t.Info,
				TypesSizes: load.Sizes,
				Directives: load.Table,
				Report: func(d analysis.Diagnostic) {
					out = append(out, Finding{
						Pos:      load.Fset.Position(d.Pos),
						Message:  d.Message,
						Analyzer: a.Name,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, t.ImportPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}
