// Package driver loads Go packages for the prudence-vet analyzers
// without any dependency outside the standard library.
//
// The loading strategy replaces golang.org/x/tools/go/packages:
//
//  1. `go list -json <patterns>` names the target packages.
//  2. `go list -export -deps -json <patterns>` compiles the whole
//     dependency graph and reports an export-data file for every
//     package in it (stdlib included, via the build cache).
//  3. Target packages are parsed from source with comments and
//     type-checked against that export data through
//     importer.ForCompiler's lookup hook.
//
// Every module-local package in the graph — not just the targets — is
// parsed for //prudence: annotations, so a directive on a slabcore type
// is visible while analyzing core even though core sees slabcore only
// as export data (which carries no comments).
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"prudence/internal/analysis"
	"prudence/internal/analysis/annot"
	"prudence/internal/analysis/summary"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Finding is one rendered diagnostic.
type Finding struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// NoLint is one parsed //prudence:nolint:<analyzer> <reason>
// suppression comment. It suppresses matching findings on its anchor
// line: the comment's own line when code shares it, otherwise the line
// below. A suppression that suppresses nothing is itself reported (a
// stale nolint is an error), so every exemption stays auditable.
type NoLint struct {
	Pos        token.Position
	ImportPath string
	Analyzer   string
	Reason     string
	// Line is the source line (in Pos.Filename) whose findings the
	// comment suppresses.
	Line int
	used bool
}

// Stats records load and analysis timing for prudence-vet -stats.
type Stats struct {
	Packages  int // module-local packages type-checked
	Targets   int // packages analyzed
	Functions int // functions summarized
	Load      time.Duration
	Summaries time.Duration
	Analyzers map[string]time.Duration
}

// Load is the result of LoadPackages.
type Load struct {
	Fset    *token.FileSet
	Targets []*Package
	// Local is every module-local package in the dependency graph,
	// targets included, type-checked — the summary computation's input
	// and the source of cross-package want comments in fixtures.
	Local     []*Package
	Table     *annot.Table
	Summaries *summary.Set
	NoLints   []*NoLint
	Sizes     types.Sizes
	Stats     Stats
	// DirectiveErrs are malformed //prudence: comments anywhere in the
	// module-local graph; they should fail the run like a bad build tag.
	DirectiveErrs []Finding
}

type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
}

func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages loads the packages matching patterns, resolved relative
// to dir, ready for analysis. Every module-local package in the
// dependency graph — not just the targets — is type-checked, so the
// interprocedural summary pass sees function bodies across the whole
// module slice in play.
func LoadPackages(dir string, patterns []string) (*Load, error) {
	started := time.Now()
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	universe, err := goList(dir, append([]string{"-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File)
	parsePkg := func(p listPkg) ([]*ast.File, error) {
		if files, ok := parsed[p.ImportPath]; ok {
			return files, nil
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		parsed[p.ImportPath] = files
		return files, nil
	}

	load := &Load{
		Fset:  fset,
		Table: annot.NewTable(),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}

	exports := make(map[string]string)
	for _, p := range universe {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard {
			continue
		}
		files, err := parsePkg(p)
		if err != nil {
			return nil, err
		}
		for _, e := range load.Table.AddPackage(p.ImportPath, files) {
			ae := e.(*annot.Error)
			load.DirectiveErrs = append(load.DirectiveErrs, Finding{
				Pos:      fset.Position(ae.Pos),
				Message:  ae.Msg,
				Analyzer: "annot",
			})
		}
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	local := make(map[string]*Package)
	for _, u := range universe {
		if u.Standard {
			continue
		}
		files := parsed[u.ImportPath]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Sizes:    load.Sizes,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		pkg, _ := conf.Check(u.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("type-checking %s: %v", u.ImportPath, typeErrs[0])
		}
		p := &Package{ImportPath: u.ImportPath, Files: files, Pkg: pkg, Info: info}
		local[u.ImportPath] = p
		load.Local = append(load.Local, p)
		load.collectNoLints(p)
	}

	for _, t := range targets {
		p, ok := local[t.ImportPath]
		if !ok {
			// A target outside the export universe (shouldn't happen for
			// buildable patterns); surface it as a load error.
			return nil, fmt.Errorf("target %s missing from dependency universe", t.ImportPath)
		}
		load.Targets = append(load.Targets, p)
	}
	load.Stats.Load = time.Since(started)

	sumStart := time.Now()
	sumPkgs := make([]summary.Pkg, len(load.Local))
	for i, p := range load.Local {
		sumPkgs[i] = summary.Pkg{Path: p.ImportPath, Files: p.Files, Info: p.Info}
	}
	load.Summaries = summary.Compute(fset, sumPkgs, load.Table)
	load.Stats.Summaries = time.Since(sumStart)
	load.Stats.Packages = len(load.Local)
	load.Stats.Targets = len(load.Targets)
	load.Stats.Functions = load.Summaries.Len()
	return load, nil
}

// collectNoLints indexes every //prudence:nolint:<analyzer> comment in
// p's files, anchored to the comment's own line when code shares it and
// to the following line otherwise. Malformed suppressions (no analyzer
// name, no reason) are directive errors.
func (l *Load) collectNoLints(p *Package) {
	for _, f := range p.Files {
		// Lines holding code: any AST node position outside comments.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil:
				return false
			case *ast.Comment, *ast.CommentGroup:
				return false
			}
			codeLines[l.Fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, d := range annot.Parse(cg) {
				if d.Verb != annot.VerbNoLint {
					continue
				}
				pos := l.Fset.Position(d.Pos)
				switch {
				case d.Sub == "":
					l.DirectiveErrs = append(l.DirectiveErrs, Finding{
						Pos:      pos,
						Message:  "prudence:nolint needs an analyzer: //prudence:nolint:<analyzer> <reason>",
						Analyzer: "annot",
					})
					continue
				case d.Args == "":
					l.DirectiveErrs = append(l.DirectiveErrs, Finding{
						Pos:      pos,
						Message:  fmt.Sprintf("prudence:nolint:%s needs a reason", d.Sub),
						Analyzer: "annot",
					})
					continue
				}
				line := pos.Line
				if !codeLines[line] {
					line++ // comment stands alone: it covers the next line
				}
				l.NoLints = append(l.NoLints, &NoLint{
					Pos:        pos,
					ImportPath: p.ImportPath,
					Analyzer:   d.Sub,
					Reason:     d.Args,
					Line:       line,
				})
			}
		}
	}
}

// Run applies each analyzer to each target package and returns the
// findings in deterministic (position, analyzer, message) order.
// Findings anchored by a matching //prudence:nolint:<analyzer> comment
// are suppressed; suppressions that fire on nothing are reported as
// "nolint" findings in their own right.
func Run(load *Load, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var out []Finding
	if load.Stats.Analyzers == nil {
		load.Stats.Analyzers = make(map[string]time.Duration)
	}
	for _, t := range load.Targets {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Fset:       load.Fset,
				Files:      t.Files,
				Pkg:        t.Pkg,
				TypesInfo:  t.Info,
				TypesSizes: load.Sizes,
				Directives: load.Table,
				Summaries:  load.Summaries,
				Report: func(d analysis.Diagnostic) {
					out = append(out, Finding{
						Pos:      load.Fset.Position(d.Pos),
						Message:  d.Message,
						Analyzer: a.Name,
					})
				},
			}
			started := time.Now()
			err := a.Run(pass)
			load.Stats.Analyzers[a.Name] += time.Since(started)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, t.ImportPath, err)
			}
		}
	}
	out = load.applyNoLints(out, analyzers)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

// applyNoLints drops findings anchored by a matching suppression and
// appends an unused-suppression finding for every nolint in a target
// package that names a ran analyzer yet suppressed nothing.
func (l *Load) applyNoLints(findings []Finding, analyzers []*analysis.Analyzer) []Finding {
	if len(l.NoLints) == 0 {
		return findings
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	targets := make(map[string]bool, len(l.Targets))
	for _, t := range l.Targets {
		targets[t.ImportPath] = true
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, nl := range l.NoLints {
			if nl.Analyzer == f.Analyzer && nl.Line == f.Pos.Line && nl.Pos.Filename == f.Pos.Filename {
				nl.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, nl := range l.NoLints {
		if nl.used || !ran[nl.Analyzer] || !targets[nl.ImportPath] {
			continue
		}
		kept = append(kept, Finding{
			Pos:      nl.Pos,
			Message:  fmt.Sprintf("unused suppression: no %s finding on line %d (stale //prudence:nolint is an error)", nl.Analyzer, nl.Line),
			Analyzer: "nolint",
		})
	}
	return kept
}
