package driver

import (
	"go/ast"
	"strings"
	"testing"

	"prudence/internal/analysis"
)

// testcheck reports every return statement: the fixture package then
// demonstrates which reports the nolint comments kill.
var testcheck = &analysis.Analyzer{
	Name: "testcheck",
	Doc:  "report every return statement (driver test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if ret, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(ret.Pos(), "return statement")
				}
				return true
			})
		}
		return nil
	},
}

func TestNoLintSuppression(t *testing.T) {
	load, err := LoadPackages(".", []string{"./testdata/nolintpkg"})
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(load.DirectiveErrs) > 0 {
		t.Fatalf("directive errors: %v", load.DirectiveErrs)
	}
	findings, err := Run(load, []*analysis.Analyzer{testcheck})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	var returns, unused, other []Finding
	for _, f := range findings {
		switch {
		case f.Analyzer == "testcheck":
			returns = append(returns, f)
		case f.Analyzer == "nolint" && strings.Contains(f.Message, "testcheck"):
			unused = append(unused, f)
		default:
			other = append(other, f)
		}
	}

	// Suppressed and NextLine are killed; only Unsuppressed's return
	// survives.
	if len(returns) != 1 {
		t.Fatalf("got %d testcheck findings, want 1 (Unsuppressed only): %v", len(returns), returns)
	}
	if returns[0].Pos.Line != 19 {
		t.Errorf("surviving finding at line %d, want 19 (Unsuppressed's return)", returns[0].Pos.Line)
	}

	// The stale suppression above var Stale is reported once; the
	// othercheck suppression is NOT (othercheck did not run).
	if len(unused) != 1 {
		t.Fatalf("got %d unused-suppression findings, want 1: %v", len(unused), unused)
	}
	if !strings.Contains(unused[0].Message, "no testcheck finding") {
		t.Errorf("unused-suppression message = %q", unused[0].Message)
	}
	if len(other) != 0 {
		t.Errorf("unexpected findings: %v", other)
	}
}

func TestStatsPopulated(t *testing.T) {
	load, err := LoadPackages(".", []string{"./testdata/nolintpkg"})
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if _, err := Run(load, []*analysis.Analyzer{testcheck}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := load.Stats
	if s.Targets != 1 {
		t.Errorf("Stats.Targets = %d, want 1", s.Targets)
	}
	if s.Packages < 1 {
		t.Errorf("Stats.Packages = %d, want >= 1", s.Packages)
	}
	if s.Functions < 3 {
		t.Errorf("Stats.Functions = %d, want >= 3 (the fixture declares three)", s.Functions)
	}
	if s.Load <= 0 {
		t.Errorf("Stats.Load = %v, want > 0", s.Load)
	}
	if _, ok := s.Analyzers["testcheck"]; !ok {
		t.Errorf("Stats.Analyzers missing testcheck: %v", s.Analyzers)
	}
}
