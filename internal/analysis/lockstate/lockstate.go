// Package lockstate is the shared flow walker behind the lockorder,
// guardedby and rcucheck analyzers: it traverses one function body in
// source order, tracking which annotated lock classes are held and the
// read-side critical-section depth at every node.
//
// The walk is a pragmatic approximation of a control-flow analysis,
// tuned for the idioms in this repository (see DESIGN.md §8 for the
// soundness gaps):
//
//   - Branches are walked independently and merged with a may-hold
//     union; branches that end in return/panic/break/continue do not
//     contribute to the merge, so "unlock and bail" early exits do not
//     poison the fall-through state.
//   - defer x.Unlock() keeps the lock held to the end of the function
//     (matching runtime behaviour for order/guard purposes).
//   - Loop bodies are walked once; back-edge effects are ignored.
//   - Function literals are walked with a clone of the current state
//     (they run inline in this codebase); go-statement closures are
//     walked with an empty state (they run concurrently).
//   - Lock operations inside defer statements are not applied.
package lockstate

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"prudence/internal/analysis/annot"
)

// Held is one lock-class acquisition in flight.
type Held struct {
	Class *annot.Class
	// HasIndex reports the lock was selected from an array/slice
	// (shards[i].mu); Index is its value when constant, Dynamic true
	// otherwise.
	HasIndex bool
	Dynamic  bool
	Index    int64
	// FromRequires marks classes seeded by a prudence:requires
	// annotation rather than an acquisition in the body.
	FromRequires bool
	Pos          token.Pos
}

// key identifies a held entry for deduplication across branch merges.
func (h Held) key() string {
	switch {
	case h.Dynamic:
		return h.Class.Key + "[?]"
	case h.HasIndex:
		return fmt.Sprintf("%s[%d]", h.Class.Key, h.Index)
	default:
		return h.Class.Key
	}
}

// State is the lock context at one program point.
type State struct {
	Held      []Held
	ReadDepth int
	shared    *shared
}

type shared struct {
	fresh map[types.Object]bool
}

// HoldsClass reports whether any held entry has exactly the class key.
func (s *State) HoldsClass(key string) bool {
	for _, h := range s.Held {
		if h.Class.Key == key {
			return true
		}
	}
	return false
}

// HoldsSpec reports whether any held entry's class is named by spec.
func (s *State) HoldsSpec(spec string) bool {
	for _, h := range s.Held {
		if annot.MatchSpec(h.Class.Key, spec) {
			return true
		}
	}
	return false
}

// IsFresh reports whether obj is a local constructed from a composite
// literal in this function (an unpublished object: its fields may be
// initialized without holding their guard).
func (s *State) IsFresh(obj types.Object) bool {
	return obj != nil && s.shared.fresh[obj]
}

func (s *State) clone() *State {
	return &State{Held: append([]Held(nil), s.Held...), ReadDepth: s.ReadDepth, shared: s.shared}
}

// merge unions the other state into s, deduplicating held entries.
func (s *State) merge(o *State) {
	have := make(map[string]bool, len(s.Held))
	for _, h := range s.Held {
		have[h.key()] = true
	}
	for _, h := range o.Held {
		if !have[h.key()] {
			have[h.key()] = true
			s.Held = append(s.Held, h)
		}
	}
	if o.ReadDepth > s.ReadDepth {
		s.ReadDepth = o.ReadDepth
	}
}

// Hooks are the analyzer callbacks driven by Walk.
type Hooks struct {
	// OnAcquire fires for each recognized acquisition with the state
	// BEFORE the lock is added (lockorder's input).
	OnAcquire func(pos token.Pos, acq Held, before *State)
	// OnNode fires for every AST node in source order with the state at
	// that point (guardedby's and rcucheck's input).
	OnNode func(n ast.Node, st *State)
}

// Op kinds recognized on annotated classes.
const (
	OpNone = iota
	OpAcquire
	OpRelease
	OpReadLock
	OpReadUnlock
)

var methodOps = map[string]int{
	"Lock":       OpAcquire,
	"LockRemote": OpAcquire,
	"TryLock":    OpAcquire,
	"RLock":      OpAcquire,
	"Unlock":     OpRelease,
	"RUnlock":    OpRelease,
	"ReadLock":   OpReadLock,
	"ReadUnlock": OpReadUnlock,
}

// CallEffects is the summary surface the walker consumes: the net lock
// and read-side effects of calling the function with the given key (see
// internal/analysis/summary). It decouples the walker from the summary
// representation.
type CallEffects interface {
	// NetEffects returns the annotated lock classes held on return,
	// the classes released on the caller's behalf, the net read-side
	// depth change, and whether a summary exists.
	NetEffects(key string) (held []HeldEffect, released []string, readDelta int, ok bool)
}

// HeldEffect is one lock class a callee still holds when it returns.
// Indexed marks classes acquired through an indexed receiver somewhere
// in the callee's chain (shards[i].mu): the synthesized Held must be
// treated as dynamic so the index-escalation idiom stays trusted
// across calls (pagealloc's lockThrough).
type HeldEffect struct {
	Class   string
	Indexed bool
}

// Walker runs the traversal for one package.
type Walker struct {
	Info  *types.Info
	Table *annot.Table
	Hooks Hooks
	// Callees, when set, lets the walker apply interprocedural effects
	// at statement-level calls: a helper that returns with a lock held
	// or a read-side section open propagates that state to its caller.
	Callees CallEffects
}

// Walk traverses fn's body, seeding held classes from its
// prudence:requires annotations and read depth from prudence:rcu_read.
func (w *Walker) Walk(fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	st := &State{shared: &shared{fresh: make(map[types.Object]bool)}}
	for _, spec := range annot.FuncRequires(fn) {
		for _, c := range w.Table.ResolveSpec(spec) {
			st.Held = append(st.Held, Held{Class: c, FromRequires: true, Pos: fn.Pos()})
		}
	}
	if annot.FuncHas(fn, annot.VerbRCURead, "") {
		st.ReadDepth = 1
	}
	w.block(fn.Body, st)
}

// NamedKey returns the "pkgpath.Name" key of t after stripping
// pointers, or "" when t is not a defined type.
func NamedKey(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// ClassOfType returns the class declared on t (after deref), or nil.
func ClassOfType(table *annot.Table, t types.Type) *annot.Class {
	if key := NamedKey(t); key != "" {
		return table.ClassByKey(key)
	}
	return nil
}

// FieldKey returns "pkgpath.Owner.field" for a selector that resolves
// to a struct field, or "".
func FieldKey(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	owner := NamedKey(s.Recv())
	if owner == "" {
		return ""
	}
	return owner + "." + sel.Sel.Name
}

// LockClassOf resolves the lock class of a lock-method receiver
// expression: the receiver's own named type first, then (for selector
// receivers like a.shards[g].mu) the field's annotation, the enclosing
// struct type's annotation, and finally the field type's annotation.
func LockClassOf(info *types.Info, table *annot.Table, recv ast.Expr) *annot.Class {
	if tv, ok := info.Types[recv]; ok {
		if c := ClassOfType(table, tv.Type); c != nil {
			return c
		}
	}
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if key := FieldKey(info, sel); key != "" {
			if c := table.ClassByKey(key); c != nil {
				return c
			}
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if c := ClassOfType(table, s.Recv()); c != nil {
				return c
			}
		}
	}
	return nil
}

// classify inspects a call expression for a lock operation on an
// annotated class.
func (w *Walker) classify(call *ast.CallExpr) (op int, h Held) {
	return Classify(w.Info, w.Table, call)
}

// Classify inspects a call expression for a lock operation on an
// annotated class (or a read-side marker, recognized by method name on
// any receiver). It is the shared classification behind the walker and
// the summary builder.
func Classify(info *types.Info, table *annot.Table, call *ast.CallExpr) (op int, h Held) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return OpNone, h
	}
	kind, ok := methodOps[sel.Sel.Name]
	if !ok {
		return OpNone, h
	}
	if kind == OpReadLock || kind == OpReadUnlock {
		// Read-side markers are recognized by method name on any
		// receiver (rcu.RCU, ebr epochs, the ReadSync interface).
		return kind, h
	}
	class := LockClassOf(info, table, sel.X)
	if class == nil {
		return OpNone, h
	}
	h = Held{Class: class, Pos: call.Pos()}
	// Find an index step in the receiver chain (shards[g].mu → g).
	for expr := sel.X; ; {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			expr = e.X
			continue
		case *ast.IndexExpr:
			h.HasIndex = true
			if tv, ok := info.Types[e.Index]; ok && tv.Value != nil {
				// constant.Val for ints fits int64 in all our uses.
				if v, exact := constInt64(tv); exact {
					h.Index = v
				} else {
					h.Dynamic = true
				}
			} else {
				h.Dynamic = true
			}
		}
		break
	}
	return kind, h
}

// CalleeFunc resolves the *types.Func a call invokes (static calls and
// method calls, through concrete or interface receivers), or nil for
// calls through function values, conversions and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// FuncKey renders the summary-table key of fn: "pkgpath.Func" for a
// plain function, "pkgpath.Type.Method" for a method (pointer receiver
// stripped, generic origin used). Interface methods key on the
// interface's named type. Returns "" when no stable key exists
// (methods on anonymous types).
func FuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	if recv == nil {
		if fn.Pkg() == nil {
			return ""
		}
		return fn.Pkg().Path() + "." + fn.Name()
	}
	key := NamedKey(recv.Type())
	if key == "" {
		return ""
	}
	return key + "." + fn.Name()
}

// CalleeKey resolves a call expression to its callee's FuncKey, or "".
func CalleeKey(info *types.Info, call *ast.CallExpr) string {
	return FuncKey(CalleeFunc(info, call))
}

// FaultPkgPath is the fault-injection layer; calls into it are
// legitimate only at annotated //prudence:fault_point sites.
const FaultPkgPath = "prudence/internal/fault"

// faultInjectionFuncs are the entry points that perturb execution; the
// rest of the fault API (Enable, Current, ...) is harness plumbing and
// needs no annotation.
var faultInjectionFuncs = map[string]bool{
	"Fire": true, "FireDelay": true, "Sleep": true,
}

// IsFaultInjection reports whether call invokes one of internal/fault's
// injection entry points (Fire, FireDelay, Sleep).
func IsFaultInjection(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !faultInjectionFuncs[sel.Sel.Name] {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == FaultPkgPath
}

func (w *Walker) acquire(st *State, h Held) {
	if w.Hooks.OnAcquire != nil {
		w.Hooks.OnAcquire(h.Pos, h, st)
	}
	st.Held = append(st.Held, h)
}

func (w *Walker) release(st *State, class *annot.Class) {
	for i := len(st.Held) - 1; i >= 0; i-- {
		if st.Held[i].Class.Key == class.Key {
			st.Held = append(st.Held[:i], st.Held[i+1:]...)
			return
		}
	}
}

// applyCall applies a statement-level lock operation to st. Calls that
// are not themselves lock operations consult the callee's effect
// summary (when available), so a helper that returns with a lock held
// or a read-side section open carries that state into the caller.
func (w *Walker) applyCall(call *ast.CallExpr, st *State) {
	op, h := w.classify(call)
	switch op {
	case OpAcquire:
		w.acquire(st, h)
	case OpRelease:
		sel := call.Fun.(*ast.SelectorExpr)
		if class := LockClassOf(w.Info, w.Table, sel.X); class != nil {
			w.release(st, class)
		}
	case OpReadLock:
		st.ReadDepth++
	case OpReadUnlock:
		if st.ReadDepth > 0 {
			st.ReadDepth--
		}
	case OpNone:
		if w.Callees == nil {
			return
		}
		key := CalleeKey(w.Info, call)
		if key == "" {
			return
		}
		held, released, readDelta, ok := w.Callees.NetEffects(key)
		if !ok {
			return
		}
		// Releases first: a helper that swaps one lock for another
		// (unlock A, lock B) must not have its acquisition dropped by
		// its own release.
		for _, classKey := range released {
			if c := w.Table.ClassByKey(classKey); c != nil {
				w.release(st, c)
			}
		}
		for _, he := range held {
			if c := w.Table.ClassByKey(he.Class); c != nil {
				w.acquire(st, Held{Class: c, Pos: call.Pos(), Dynamic: he.Indexed})
			}
		}
		st.ReadDepth += readDelta
		if st.ReadDepth < 0 {
			st.ReadDepth = 0
		}
	}
}

// expr visits an expression subtree, reporting every node to OnNode.
// An immediately-invoked function literal (func(){...}()) runs inline
// and inherits the caller's lock state; any other literal escapes — a
// scheduled callback or stored closure runs whenever its holder
// invokes it, not under the locks held at its creation site — so its
// body is walked with an empty state. Contracts an escaping closure
// depends on must be annotated on a named function instead (the
// closures-as-args soundness gap, DESIGN.md §8).
func (w *Walker) expr(e ast.Expr, st *State) {
	if e == nil {
		return
	}
	var invoked map[*ast.FuncLit]bool
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fl, ok := call.Fun.(*ast.FuncLit); ok {
				if invoked == nil {
					invoked = make(map[*ast.FuncLit]bool)
				}
				invoked[fl] = true
			}
		}
		return true
	})
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			if w.Hooks.OnNode != nil {
				w.Hooks.OnNode(fl, st)
			}
			if invoked[fl] {
				w.block(fl.Body, st.clone())
			} else {
				w.block(fl.Body, &State{shared: st.shared})
			}
			return false
		}
		if n != nil && w.Hooks.OnNode != nil {
			w.Hooks.OnNode(n, st)
		}
		return true
	})
}

// asTryLock returns the call and held entry when e is a TryLock-style
// acquisition on an annotated class.
func (w *Walker) asTryLock(e ast.Expr) (h Held, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return h, false
	}
	op, h := w.classify(call)
	if op != OpAcquire {
		return h, false
	}
	if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "TryLock" {
		return h, true
	}
	return h, false
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// markFresh records locals bound to composite literals.
func (w *Walker) markFresh(st *State, lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		v := rhs[i]
		if u, isU := v.(*ast.UnaryExpr); isU && u.Op == token.AND {
			v = u.X
		}
		if _, isLit := v.(*ast.CompositeLit); !isLit {
			continue
		}
		if obj := w.Info.Defs[id]; obj != nil {
			st.shared.fresh[obj] = true
		} else if obj := w.Info.Uses[id]; obj != nil {
			st.shared.fresh[obj] = true
		}
	}
}

// stmt walks one statement; the return reports whether control cannot
// continue past it on this path.
func (w *Walker) stmt(s ast.Stmt, st *State) (terminated bool) {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		w.expr(s.X, st)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isPanic(w.Info, call) {
				return true
			}
			w.applyCall(call, st)
		}
		return false
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, st)
		}
		for _, l := range s.Lhs {
			w.expr(l, st)
		}
		w.markFresh(st, s.Lhs, s.Rhs)
		// ok := x.TryLock() — treat as held from here on (may-hold).
		if len(s.Rhs) == 1 {
			if h, ok := w.asTryLock(s.Rhs[0]); ok {
				w.acquire(st, h)
			} else if call, isCall := s.Rhs[0].(*ast.CallExpr); isCall {
				// v := lockedGet() — a call in a single-assign RHS is
				// statement-level for effect purposes: apply the
				// callee's net lock/read effects.
				w.applyCall(call, st)
			}
		}
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, st)
					}
					var lhs []ast.Expr
					for _, n := range vs.Names {
						lhs = append(lhs, n)
					}
					w.markFresh(st, lhs, vs.Values)
				}
			}
		}
		return false
	case *ast.IncDecStmt:
		w.expr(s.X, st)
		return false
	case *ast.SendStmt:
		if w.Hooks.OnNode != nil {
			w.Hooks.OnNode(s, st)
		}
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
		return false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt:
		// Report the subtree but apply no lock ops: a deferred Unlock
		// runs at exit, so the lock stays held for the walk.
		w.expr(s.Call, st)
		return false
	case *ast.GoStmt:
		// The goroutine runs concurrently: walk its closure with an
		// empty state.
		for _, arg := range s.Call.Args {
			w.expr(arg, st)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(fl.Body, &State{shared: st.shared})
		} else {
			w.expr(s.Call.Fun, st)
		}
		return false
	case *ast.BlockStmt:
		return w.block(s, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		w.stmt(s.Init, st)
		var thenSt *State
		if h, ok := w.asTryLock(s.Cond); ok {
			// if x.TryLock() { ... }: held inside the body only.
			w.expr(s.Cond, st)
			thenSt = st.clone()
			w.acquire(thenSt, h)
		} else if u, isU := s.Cond.(*ast.UnaryExpr); isU && u.Op == token.NOT {
			if h, ok := w.asTryLock(u.X); ok {
				// if !x.TryLock() { bail }: held after the if when the
				// body terminates.
				w.expr(s.Cond, st)
				bodySt := st.clone()
				if w.block(s.Body, bodySt) {
					w.acquire(st, h)
					return false
				}
				st.merge(bodySt)
				return false
			}
			w.expr(s.Cond, st)
		} else {
			w.expr(s.Cond, st)
		}
		if thenSt == nil {
			thenSt = st.clone()
		}
		thenTerm := w.block(s.Body, thenSt)
		if s.Else == nil {
			if !thenTerm {
				st.merge(thenSt)
			}
			return false
		}
		elseSt := st.clone()
		elseTerm := w.stmt(s.Else, elseSt)
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *thenSt
			st.merge(elseSt)
		}
		return false
	case *ast.ForStmt:
		w.stmt(s.Init, st)
		w.expr(s.Cond, st)
		bodySt := st.clone()
		term := w.block(s.Body, bodySt)
		w.stmt(s.Post, bodySt)
		if !term {
			st.merge(bodySt)
		}
		return false
	case *ast.RangeStmt:
		if w.Hooks.OnNode != nil {
			w.Hooks.OnNode(s, st)
		}
		w.expr(s.X, st)
		bodySt := st.clone()
		if !w.block(s.Body, bodySt) {
			st.merge(bodySt)
		}
		return false
	case *ast.SwitchStmt:
		w.stmt(s.Init, st)
		w.expr(s.Tag, st)
		w.mergeClauses(s.Body, st, hasDefault(s.Body))
		return false
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, st)
		w.stmt(s.Assign, st)
		w.mergeClauses(s.Body, st, hasDefault(s.Body))
		return false
	case *ast.SelectStmt:
		if w.Hooks.OnNode != nil {
			w.Hooks.OnNode(s, st)
		}
		w.mergeClauses(s.Body, st, true)
		return false
	default:
		// Anything unrecognized: inspect for completeness.
		ast.Inspect(s, func(n ast.Node) bool {
			if n != nil && w.Hooks.OnNode != nil {
				w.Hooks.OnNode(n, st)
			}
			return true
		})
		return false
	}
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// mergeClauses walks each case/comm clause on a clone and unions the
// non-terminating results; without a default the incoming state is one
// of the outcomes.
func (w *Walker) mergeClauses(body *ast.BlockStmt, st *State, exhaustive bool) {
	out := st.clone()
	if exhaustive {
		out = nil
	}
	for _, c := range body.List {
		clauseSt := st.clone()
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.expr(e, clauseSt)
			}
			stmts = cc.Body
		case *ast.CommClause:
			w.stmt(cc.Comm, clauseSt)
			stmts = cc.Body
		}
		term := false
		for _, s2 := range stmts {
			if w.stmt(s2, clauseSt) {
				term = true
			}
		}
		if !term {
			if out == nil {
				out = clauseSt
			} else {
				out.merge(clauseSt)
			}
		}
	}
	if out != nil {
		*st = *out
	}
}

func (w *Walker) block(b *ast.BlockStmt, st *State) (terminated bool) {
	if b == nil {
		return false
	}
	for _, s := range b.List {
		if w.stmt(s, st) {
			terminated = true
		}
	}
	return terminated
}

func constInt64(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}
