// Package fault is a deterministic, seed-driven fault-injection layer.
//
// Call sites in the allocator name a Point and ask the package whether
// the fault fires there:
//
//	if fault.Fire(fault.RefillFail) { // behave as if the refill failed
//
// With no injector installed (the default), Fire is one atomic pointer
// load returning false — the hot paths pay nothing measurable. A chaos
// run installs an Injector with Enable(Config{Seed: ...}); from then on
// every decision is a pure function of (seed, point, arrival index), so
// the Nth arrival at a given point gets the same verdict on every run
// with that seed, regardless of goroutine interleaving. That is the
// replay contract: a failing seed reproduces the same per-point
// injection schedule. (The *global* interleaving of arrivals across
// points is scheduler-dependent and is deliberately not part of the
// contract; see DESIGN.md §9.)
//
// Points that model latency rather than outright failure carry a Delay
// in their Rule; use Sleep (blocking) or FireDelay (for call sites that
// must keep selecting on a stop channel while stalled).
package fault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prudence/internal/metrics"
)

// Point names one injection site class threaded through the allocator.
type Point uint8

const (
	// PageAllocFail forces pagealloc.Alloc/AllocZeroed to report
	// ErrOutOfMemory without consulting the free lists.
	PageAllocFail Point = iota
	// PageZeroDelay delays the idle pre-zeroing worker before it checks
	// out a dirty block, starving the known-zero pool.
	PageZeroDelay
	// PageZeroStall stalls the zeroer while a block is checked out
	// (zeroInFlight held), widening the window in which allocation sees
	// free memory that is temporarily unavailable.
	PageZeroStall
	// GPStall delays grace-period completion in the rcu/ebr engines:
	// quiescence is observed but the completion publish is withheld.
	GPStall
	// CBDelay delays invocation of ready callback batches.
	CBDelay
	// LostWakeup drops the wakeup kick that NeedGP sends to the
	// grace-period driver, leaving only the timer fallback.
	LostWakeup
	// RefillFail forces a per-CPU cache/slab refill attempt to fail.
	RefillFail
	// LatentFlushDelay delays the pre-flush of latent objects back to
	// their slabs.
	LatentFlushDelay
	// OOMDelayExpire forces an OOM-delay grace-period wait to behave as
	// if it timed out without a grace period elapsing.
	OOMDelayExpire
	// HPScanDelay stalls a hazard-pointer scan-and-reclaim pass before
	// it collects the published protections, extending retire-list
	// residency.
	HPScanDelay
	// NeutralizeLost drops a neutralize signal the nebr advancer would
	// have sent to a straggler CPU; the advancer must retry rather than
	// advance unsafely or hang.
	NeutralizeLost

	// NumPoints is the number of defined points.
	NumPoints
)

var pointNames = [NumPoints]string{
	PageAllocFail:    "page_alloc_fail",
	PageZeroDelay:    "page_zero_delay",
	PageZeroStall:    "page_zero_stall",
	GPStall:          "gp_stall",
	CBDelay:          "cb_delay",
	LostWakeup:       "lost_wakeup",
	RefillFail:       "refill_fail",
	LatentFlushDelay: "latent_flush_delay",
	OOMDelayExpire:   "oom_delay_expire",
	HPScanDelay:      "hp_scan_delay",
	NeutralizeLost:   "nebr_neutralize_lost",
}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// PointByName resolves a point from its metric/CLI name.
func PointByName(name string) (Point, bool) {
	for p, n := range pointNames {
		if n == name {
			return Point(p), true
		}
	}
	return 0, false
}

// Rule configures one point. Rate is the probability in [0,1] that an
// arrival fires; Max, when non-zero, caps the total number of firings;
// Delay is the stall length for latency-modelling points (Sleep /
// FireDelay call sites) and ignored by plain Fire sites.
type Rule struct {
	Rate  float64
	Max   uint64
	Delay time.Duration
}

// Config seeds an injector. Points absent from Rules never fire and do
// not count arrivals.
type Config struct {
	Seed  uint64
	Rules map[Point]Rule
	// LogLimit bounds the injection event log (default 4096 events;
	// negative disables logging).
	LogLimit int
}

// Event records one firing: the Nth arrival (0-based) at Point fired.
type Event struct {
	Point   Point
	Arrival uint64
}

type pointState struct {
	threshold uint64 // fire iff hash < threshold; 0 = never
	max       uint64 // 0 = unlimited
	delay     time.Duration
	arrivals  atomic.Uint64
	fired     atomic.Uint64
}

// Injector holds the seeded schedule and per-point counters for one
// chaos run.
type Injector struct {
	seed     uint64
	points   [NumPoints]pointState
	logLimit int
	logMu    sync.Mutex
	log      []Event
	lost     atomic.Uint64 // firings dropped from the log by LogLimit
}

// active is the package-level gate: nil means disabled and makes every
// Fire a single atomic load.
var active atomic.Pointer[Injector]

// Enable installs a fresh injector built from cfg and returns it. Any
// previously active injector is replaced; its counters stay readable.
func Enable(cfg Config) *Injector {
	inj := New(cfg)
	active.Store(inj)
	return inj
}

// Disable removes the active injector; all points go back to no-ops.
func Disable() { active.Store(nil) }

// Enabled reports whether an injector is installed.
func Enabled() bool { return active.Load() != nil }

// Current returns the active injector, or nil.
func Current() *Injector { return active.Load() }

// New builds an injector without installing it (tests drive decisions
// directly; Enable is the production path).
func New(cfg Config) *Injector {
	inj := &Injector{seed: cfg.Seed, logLimit: cfg.LogLimit}
	if inj.logLimit == 0 {
		inj.logLimit = 4096
	}
	for p, r := range cfg.Rules {
		if int(p) >= int(NumPoints) {
			continue
		}
		ps := &inj.points[p]
		ps.threshold = rateThreshold(r.Rate)
		ps.max = r.Max
		ps.delay = r.Delay
	}
	return inj
}

// rateThreshold maps a probability to a uint64 comparison threshold.
func rateThreshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return ^uint64(0)
	}
	return uint64(rate * float64(1<<63) * 2)
}

// Fire reports whether point p's fault fires for this arrival. The
// disabled path is one atomic load.
func Fire(p Point) bool {
	inj := active.Load()
	if inj == nil {
		return false
	}
	return inj.fire(p)
}

// FireDelay is Fire for latency points: it returns the configured stall
// length when the fault fires and 0 otherwise, letting call sites that
// must watch a stop channel implement the stall themselves.
func FireDelay(p Point) time.Duration {
	inj := active.Load()
	if inj == nil {
		return 0
	}
	if !inj.fire(p) {
		return 0
	}
	return inj.points[p].delay
}

// Sleep blocks for the point's configured delay when the fault fires.
func Sleep(p Point) {
	if d := FireDelay(p); d > 0 {
		time.Sleep(d)
	}
}

func (i *Injector) fire(p Point) bool {
	ps := &i.points[p]
	if ps.threshold == 0 {
		return false // unconfigured points don't even count arrivals
	}
	n := ps.arrivals.Add(1) - 1
	if !Decide(i.seed, p, n, ps.threshold) {
		return false
	}
	if ps.max > 0 {
		for {
			f := ps.fired.Load()
			if f >= ps.max {
				return false
			}
			if ps.fired.CompareAndSwap(f, f+1) {
				break
			}
		}
	} else {
		ps.fired.Add(1)
	}
	i.record(p, n)
	return true
}

func (i *Injector) record(p Point, arrival uint64) {
	if i.logLimit < 0 {
		return
	}
	i.logMu.Lock()
	if len(i.log) < i.logLimit {
		i.log = append(i.log, Event{Point: p, Arrival: arrival})
	} else {
		i.lost.Add(1)
	}
	i.logMu.Unlock()
}

// Decide is the pure decision function: whether the Nth arrival at p
// fires under seed, given the point's rate threshold. Exposed so tests
// and the replay harness can recompute the schedule without running the
// system.
func Decide(seed uint64, p Point, n, threshold uint64) bool {
	if threshold == 0 {
		return false
	}
	if threshold == ^uint64(0) {
		return true
	}
	return mix(seed^mix(uint64(p)+1)^mix(n+0x9e3779b97f4a7c15)) < threshold
}

// mix is splitmix64's finalizer: a fast, well-distributed 64-bit hash.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seed returns the injector's seed.
func (i *Injector) Seed() uint64 { return i.seed }

// Arrivals returns how many times point p was reached.
func (i *Injector) Arrivals(p Point) uint64 { return i.points[p].arrivals.Load() }

// Fired returns how many times point p's fault fired.
func (i *Injector) Fired(p Point) uint64 { return i.points[p].fired.Load() }

// Threshold returns p's configured rate threshold (0 = never fires).
func (i *Injector) Threshold(p Point) uint64 { return i.points[p].threshold }

// Log returns a copy of the recorded injection events, in firing order.
// The log is bounded by Config.LogLimit; LostEvents reports overflow.
func (i *Injector) Log() []Event {
	i.logMu.Lock()
	defer i.logMu.Unlock()
	out := make([]Event, len(i.log))
	copy(out, i.log)
	return out
}

// LostEvents returns how many firings were dropped from the log.
func (i *Injector) LostEvents() uint64 { return i.lost.Load() }

// FiredArrivals returns, per point, the sorted arrival indices that
// fired, as recorded in the log. This is the per-point realized
// schedule the replay test compares across runs.
func (i *Injector) FiredArrivals() map[Point][]uint64 {
	out := make(map[Point][]uint64)
	for _, ev := range i.Log() {
		out[ev.Point] = append(out[ev.Point], ev.Arrival)
	}
	for _, s := range out {
		sortU64(s)
	}
	return out
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Summary renders per-point arrival/fired counts for CLI output.
func (i *Injector) Summary() string {
	out := fmt.Sprintf("fault: seed=%d", i.seed)
	for p := Point(0); p < NumPoints; p++ {
		a := i.Arrivals(p)
		if a == 0 && i.points[p].threshold == 0 {
			continue
		}
		out += fmt.Sprintf("\n  %-18s arrivals=%d fired=%d", p.String(), a, i.Fired(p))
	}
	return out
}

// RegisterMetrics exposes the active injector's per-point counters on
// r. The collectors read whatever injector is active at scrape time, so
// registration can happen before Enable; with no injector active they
// emit nothing.
func RegisterMetrics(r *metrics.Registry) {
	r.CollectCounters("prudence_fault_arrivals_total",
		"Arrivals at fault-injection points (active injector only).",
		func(emit metrics.Emit) {
			inj := active.Load()
			if inj == nil {
				return
			}
			for p := Point(0); p < NumPoints; p++ {
				if inj.points[p].threshold == 0 {
					continue
				}
				emit(float64(inj.Arrivals(p)), metrics.Label{Name: "point", Value: p.String()})
			}
		})
	r.CollectCounters("prudence_fault_injections_total",
		"Faults fired at injection points (active injector only).",
		func(emit metrics.Emit) {
			inj := active.Load()
			if inj == nil {
				return
			}
			for p := Point(0); p < NumPoints; p++ {
				if inj.points[p].threshold == 0 {
					continue
				}
				emit(float64(inj.Fired(p)), metrics.Label{Name: "point", Value: p.String()})
			}
		})
}
