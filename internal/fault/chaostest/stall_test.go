package chaostest

import (
	"testing"
	"time"
)

// TestStalledReaderNEBR pins the scenario's whole contract on the
// neutralizing scheme: the stalled reader is neutralized, the
// neutralize-lost fault point finally sees arrivals, allocations keep
// flowing, and latent garbage stays under the cap.
func TestStalledReaderNEBR(t *testing.T) {
	res := RunStalledReader(Config{Seed: 42, CPUs: 4, Pages: 2048, Scheme: "nebr",
		Watchdog: time.Minute})
	if !res.Passed {
		t.Fatalf("stalled-reader run failed:\n%s", StallReport(res))
	}
	if res.Neutralizations == 0 || res.NeutralizeLostArrivals == 0 {
		t.Fatalf("neutralization machinery never armed:\n%s", StallReport(res))
	}
	if res.PeakLatentBytes == 0 {
		t.Fatalf("sampler recorded no latent garbage:\n%s", StallReport(res))
	}
	if res.PeakLatentBytes > res.LatentCapBytes {
		t.Fatalf("latent garbage above cap:\n%s", StallReport(res))
	}
}

// TestStalledReaderHP checks hp keeps scanning (and serving) with a
// reader parked on an era; the garbage cap deliberately does not apply
// (see boundedGarbage).
func TestStalledReaderHP(t *testing.T) {
	res := RunStalledReader(Config{Seed: 42, CPUs: 4, Pages: 1024, Scheme: "hp",
		Watchdog: time.Minute})
	if !res.Passed {
		t.Fatalf("stalled-reader run failed:\n%s", StallReport(res))
	}
	if res.Scans == 0 {
		t.Fatalf("hp scan path never armed:\n%s", StallReport(res))
	}
	if res.AllocOK == 0 {
		t.Fatalf("no allocations served:\n%s", StallReport(res))
	}
}
