package chaostest

import (
	"errors"
	"fmt"
	stdsync "sync"
	"sync/atomic"
	"time"

	"prudence/internal/bench"
	"prudence/internal/fault"
	"prudence/internal/memarena"
	"prudence/internal/pagealloc"
	"prudence/internal/slabcore"
)

// StallResult reports one stalled-reader chaos run: the scenario that
// arms the bounded-garbage machinery the plain chaos mix never reaches
// (nebr neutralization, hp scans against a live hazard). One vCPU's
// reader is pinned inside a read-side critical section for the whole
// churn; the remaining CPUs allocate and defer-free flat out.
type StallResult struct {
	Seed     uint64
	Scheme   string
	Passed   bool
	Failures []string
	// AllocOK / AllocOOM count the churn CPUs' allocation outcomes —
	// serving must continue while the reader is stalled.
	AllocOK  uint64
	AllocOOM uint64
	// PeakLatentBytes is the sampler's high-water estimate of
	// garbage awaiting reclamation (latent objects and retire
	// backlogs, times object size).
	PeakLatentBytes int64
	// LatentCapBytes is the cap the run asserted (bounded-garbage
	// schemes only; zero when the cap does not apply).
	LatentCapBytes int64
	// Neutralizations / NeutralizeLostArrivals / Scans are the
	// scheme counters the stall must move.
	Neutralizations        uint64
	NeutralizeLostArrivals uint64
	Scans                  uint64
	Elapsed                time.Duration
}

// boundedGarbage reports whether scheme bounds garbage under a stalled
// ReadLock reader. Only nebr does: it forcibly neutralizes the
// straggler, after which reclamation proceeds. rcu and ebr stall their
// grace periods by design; and hp's ReadLock compatibility shim pins
// an era just like an epoch (its per-object hazard bound applies to
// token-protected traversals, not to ReadLock sections), so a stalled
// ReadLock reader pins hp garbage too — measured here: the arena fills
// completely under rcu, ebr and hp, while nebr stays bounded.
func boundedGarbage(scheme string) bool { return scheme == "nebr" }

// RunStalledReader executes the stalled-reader scenario under the
// chaos fault mix and checks its invariants:
//
//   - the run terminates inside the watchdog (a stalled reader may
//     slow reclamation, never wedge it);
//   - every churning CPU keeps getting allocations served;
//   - for nebr: the stalled reader is neutralized, and the
//     neutralize-lost fault point actually sees arrivals (the chaos
//     mix arms it at 25% — before this scenario nothing ever reached
//     it);
//   - for hp: scan passes run against the stalled reader's pinned era;
//   - for nebr only: the latent-garbage estimate stays under half the
//     arena for the whole run — the neutralization-backed
//     bounded-garbage contract (see boundedGarbage for why the cap
//     does not extend to the other schemes).
func RunStalledReader(cfg Config) StallResult {
	cfg = cfg.withDefaults()
	if cfg.Scheme == "" {
		cfg.Scheme = "nebr"
	}
	res := StallResult{Seed: cfg.Seed, Scheme: cfg.Scheme}
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	fault.Enable(fault.Config{Seed: cfg.Seed, Rules: Rules(), LogLimit: 1 << 16})
	defer fault.Disable()

	bcfg := bench.DefaultConfig()
	bcfg.CPUs = cfg.CPUs
	bcfg.ArenaPages = cfg.Pages
	bcfg.Scheme = cfg.Scheme
	stack := bench.NewStack(bench.KindPrudence, bcfg)
	fault.RegisterMetrics(stack.Reg)

	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		runStalledPhases(cfg, stack, &res, fail)
	}()
	select {
	case <-done:
		res.Elapsed = time.Since(start)
		stack.Close()
	case <-time.After(cfg.Watchdog):
		res.Elapsed = time.Since(start)
		fail("watchdog: stalled-reader run exceeded %v — the pinned reader wedged the system", cfg.Watchdog)
		// The stack is wedged; leak it rather than hang the caller too.
	}
	res.Passed = len(res.Failures) == 0
	return res
}

func runStalledPhases(cfg Config, stack *bench.Stack, res *StallResult, fail func(string, ...any)) {
	env := stack.Env()
	cache := stack.Alloc.NewCache(slabcore.DefaultConfig("stall-churn", 128, cfg.CPUs))
	objSize := 128

	churn := 500 * time.Millisecond
	stallCPU := cfg.CPUs - 1
	release := make(chan struct{})
	pinned := make(chan struct{})
	var readerWg stdsync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		env.Sync.ExitIdle(stallCPU)
		env.Sync.ReadLock(stallCPU)
		close(pinned)
		<-release //prudence:nolint:sleepcheck the scenario exists to pin a reader for the whole run: it is the stalled-reader input the bounded-garbage tiers are measured against
		env.Sync.ReadUnlock(stallCPU)
		env.Sync.EnterIdle(stallCPU)
	}()
	<-pinned

	// Sampler: track the latent-garbage high-water mark while the
	// reader is stalled. Backlog gauges count objects; scale by the
	// churn object size.
	var peakLatent atomic.Int64
	sampleStop := make(chan struct{})
	var samplerWg stdsync.WaitGroup
	samplerWg.Add(1)
	go func() {
		defer samplerWg.Done()
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-sampleStop:
				return
			case <-t.C:
				g := stack.Reg.Gather()
				var objs float64
				for name, v := range g {
					// Exact names for the unlabeled backlog gauges (their
					// *_peak variants must not count), prefix for the
					// per-cache labeled latent gauge.
					if name == "prudence_sync_retire_backlog" ||
						name == "prudence_rcu_callback_backlog" ||
						hasAnyPrefix(name, "prudence_cache_latent_objects") {
						objs += v
					}
				}
				if b := int64(objs) * int64(objSize); b > peakLatent.Load() {
					peakLatent.Store(b)
				}
			}
		}
	}()

	// Churn: every CPU except the stalled one allocates and
	// defer-frees flat out until the clock runs out. OOM is tolerated
	// (rcu/ebr garbage grows unboundedly by design) but each CPU must
	// get some allocations served.
	var ok, oom atomic.Uint64
	perCPUOK := make([]uint64, cfg.CPUs)
	var churnWg stdsync.WaitGroup
	deadline := time.Now().Add(churn)
	for cpu := 0; cpu < cfg.CPUs-1; cpu++ {
		churnWg.Add(1)
		go func(cpu int) {
			defer churnWg.Done()
			env.Sync.ExitIdle(cpu)
			defer env.Sync.EnterIdle(cpu)
			for i := 0; time.Now().Before(deadline); i++ {
				ref, err := cache.Malloc(cpu)
				if err != nil {
					if !errors.Is(err, pagealloc.ErrOutOfMemory) {
						fail("cpu %d: Malloc returned unexpected error: %v", cpu, err)
						return
					}
					oom.Add(1)
					env.Sync.QuiescentState(cpu)
					continue
				}
				ref.Bytes()[0] = byte(i)
				ok.Add(1)
				perCPUOK[cpu]++
				cache.FreeDeferred(cpu, ref)
				env.Sync.QuiescentState(cpu)
			}
		}(cpu)
	}
	churnWg.Wait()
	close(sampleStop)
	samplerWg.Wait()
	close(release)
	readerWg.Wait()

	res.AllocOK = ok.Load()
	res.AllocOOM = oom.Load()
	res.PeakLatentBytes = peakLatent.Load()

	// Serving invariant: the stalled reader must not starve the
	// allocator on any churning CPU.
	for cpu := 0; cpu < cfg.CPUs-1; cpu++ {
		if perCPUOK[cpu] == 0 {
			fail("cpu %d: zero allocations served while the reader was stalled", cpu)
		}
	}

	g := stack.Reg.Gather()
	inj := fault.Current()
	switch cfg.Scheme {
	case "nebr":
		res.Neutralizations = uint64(g["prudence_nebr_neutralizations_total"])
		res.NeutralizeLostArrivals = inj.Arrivals(fault.NeutralizeLost)
		if res.Neutralizations == 0 {
			fail("nebr: stalled reader was never neutralized")
		}
		if res.NeutralizeLostArrivals == 0 {
			fail("nebr: the neutralize-lost fault point saw zero arrivals — the scenario failed to arm it")
		}
	case "hp":
		res.Scans = uint64(g["prudence_hp_scans_total"])
		if res.Scans == 0 {
			fail("hp: no scan passes ran against the stalled reader's hazard")
		}
	}
	if boundedGarbage(cfg.Scheme) {
		res.LatentCapBytes = int64(cfg.Pages) * memarena.PageSize / 2
		if res.PeakLatentBytes > res.LatentCapBytes {
			fail("%s: latent garbage peaked at %d bytes, above the %d-byte bounded-garbage cap",
				cfg.Scheme, res.PeakLatentBytes, res.LatentCapBytes)
		}
	}

	// Teardown consistency: once the reader releases, everything must
	// drain and audit clean.
	stack.Sync.Synchronize()
	cache.Drain()
	if got := cache.Counters().Requested(); got != 0 {
		fail("churn cache: %d objects still requested after release + drain", got)
	}
	if a, okA := cache.(interface{ Audit() error }); okA {
		if err := a.Audit(); err != nil {
			fail("churn cache audit: %v", err)
		}
	}
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}

// StallReport renders a human-readable summary of a stalled-reader run.
func StallReport(r StallResult) string {
	out := fmt.Sprintf("stalled-reader seed=%d scheme=%s passed=%v elapsed=%v\n"+
		"  alloc ok=%d oom=%d latent peak=%dB",
		r.Seed, r.Scheme, r.Passed, r.Elapsed.Round(time.Millisecond),
		r.AllocOK, r.AllocOOM, r.PeakLatentBytes)
	if r.LatentCapBytes > 0 {
		out += fmt.Sprintf(" (cap %dB)", r.LatentCapBytes)
	}
	switch r.Scheme {
	case "nebr":
		out += fmt.Sprintf("\n  neutralizations=%d neutralize_lost_arrivals=%d",
			r.Neutralizations, r.NeutralizeLostArrivals)
	case "hp":
		out += fmt.Sprintf("\n  scans=%d", r.Scans)
	}
	for _, f := range r.Failures {
		out += "\n  FAIL: " + f
	}
	return out
}
