package chaostest

import (
	"testing"
	"time"
)

// Two identical seeded runs must produce the same pass/fail outcome and
// the same realized per-point injection schedule — the acceptance
// criterion for `prudence-endurance -chaos -seed N` replay.
func TestChaosRunReplaysDeterministically(t *testing.T) {
	cfg := Config{Seed: 42, Updates: 400, Pairs: 600, Watchdog: time.Minute}
	a := Run(cfg)
	if !a.Passed {
		t.Fatalf("first chaos run failed:\n%s", Report(a))
	}
	b := Run(cfg)
	if !b.Passed {
		t.Fatalf("second chaos run failed:\n%s", Report(b))
	}
	if a.Passed != b.Passed {
		t.Fatalf("same seed, different outcome: %v vs %v", a.Passed, b.Passed)
	}
	if ok, diff := SamePrefix(a.FiredArrivals, b.FiredArrivals); !ok {
		t.Fatalf("same seed, diverging injection schedules: %s", diff)
	}
	var fired uint64
	for _, n := range a.Injected {
		fired += n
	}
	if fired == 0 {
		t.Fatal("no faults fired; the chaos run exercised nothing")
	}
}

// A second seed must not produce the identical schedule (the seed is
// actually driving the decisions).
func TestChaosSeedsDiffer(t *testing.T) {
	a := Run(Config{Seed: 1, Updates: 200, Pairs: 300, Watchdog: time.Minute})
	b := Run(Config{Seed: 2, Updates: 200, Pairs: 300, Watchdog: time.Minute})
	if !a.Passed || !b.Passed {
		t.Fatalf("chaos runs failed:\n%s\n%s", Report(a), Report(b))
	}
	same := true
	for p, sa := range a.FiredArrivals {
		sb := b.FiredArrivals[p]
		n := min(len(sa), len(sb))
		for i := 0; i < n; i++ {
			if sa[i] != sb[i] {
				same = false
			}
		}
	}
	if same && len(a.FiredArrivals) > 0 {
		t.Fatal("different seeds produced identical schedules")
	}
}
