// Package chaostest is the chaos stress harness: it runs the existing
// workload mix on a full Prudence stack while the fault layer injects
// failures, and asserts the graceful-degradation invariants —
// allocation never hangs (OOM-delay waits are bounded and surface
// out-of-memory), no object is handed out twice, and stats/metrics stay
// consistent under injected failure.
//
// Runs are seeded: the same seed yields the same per-point injection
// schedule (see internal/fault), so a failing run replays with
// `prudence-endurance -chaos -seed N`.
package chaostest

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"prudence/internal/bench"
	"prudence/internal/core"
	"prudence/internal/fault"
	"prudence/internal/pagealloc"
	"prudence/internal/slabcore"
	"prudence/internal/vcpu"
	"prudence/internal/workload"
)

// Config parameterizes one chaos run.
type Config struct {
	// Seed drives the injection schedule. Same seed + same config =
	// same per-point schedule.
	Seed uint64
	// CPUs and Pages size the simulated machine (defaults 4 CPUs, 768
	// pages — small enough that injected failures bite).
	CPUs  int
	Pages int
	// Updates is the endurance phase's update count per CPU (default
	// 2000); Pairs is the tracked phase's malloc/free pairs per CPU
	// (default 2000).
	Updates int
	Pairs   int
	// Watchdog bounds the whole run; exceeding it is itself an
	// invariant failure (something hung). Default 2 minutes.
	Watchdog time.Duration
	// Scheme selects the reclamation backend under chaos (default
	// "rcu"); every registered scheme must satisfy the same
	// degradation invariants.
	Scheme string
}

func (c Config) withDefaults() Config {
	if c.CPUs <= 0 {
		c.CPUs = 4
	}
	if c.Pages <= 0 {
		c.Pages = 768
	}
	if c.Updates <= 0 {
		c.Updates = 2000
	}
	if c.Pairs <= 0 {
		c.Pairs = 2000
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 2 * time.Minute
	}
	return c
}

// Rules is the chaos mix: every fault point armed at rates low enough
// that the system should degrade, not die. Exported so tests and the
// CLI report the exact schedule parameters alongside the seed.
func Rules() map[fault.Point]fault.Rule {
	return map[fault.Point]fault.Rule{
		fault.PageAllocFail:    {Rate: 0.02},
		fault.PageZeroDelay:    {Rate: 0.05, Delay: 200 * time.Microsecond},
		fault.PageZeroStall:    {Rate: 0.05, Delay: 500 * time.Microsecond},
		fault.GPStall:          {Rate: 0.10, Delay: time.Millisecond},
		fault.CBDelay:          {Rate: 0.05, Delay: 200 * time.Microsecond},
		fault.LostWakeup:       {Rate: 0.25},
		fault.RefillFail:       {Rate: 0.05},
		fault.LatentFlushDelay: {Rate: 0.10, Delay: 200 * time.Microsecond},
		fault.OOMDelayExpire:   {Rate: 0.50},
		fault.HPScanDelay:      {Rate: 0.05, Delay: 500 * time.Microsecond},
		fault.NeutralizeLost:   {Rate: 0.25},
	}
}

// Result reports one chaos run.
type Result struct {
	Seed     uint64
	Passed   bool
	Failures []string
	// Endurance is the existing-workload phase's outcome. OOM here is
	// acceptable degradation, not a failure.
	Endurance workload.EnduranceResult
	// Injected maps point name to how many times it fired; Arrivals to
	// how many times it was reached.
	Injected map[string]uint64
	Arrivals map[string]uint64
	// FiredArrivals is the realized per-point schedule (which arrival
	// indices fired), the quantity that replays across runs of the same
	// seed.
	FiredArrivals map[fault.Point][]uint64
}

// Run executes one seeded chaos run and checks the degradation
// invariants. It installs the package-level fault injector for the
// duration; callers must not run concurrent chaos runs.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	res := Result{Seed: cfg.Seed}
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	inj := fault.Enable(fault.Config{Seed: cfg.Seed, Rules: Rules(), LogLimit: 1 << 16})
	defer fault.Disable()

	bcfg := bench.DefaultConfig()
	bcfg.CPUs = cfg.CPUs
	bcfg.ArenaPages = cfg.Pages
	bcfg.Scheme = cfg.Scheme
	bcfg.Prudence = core.Options{
		OOMDelayWait:    2 * time.Millisecond,
		OOMDelayRetries: 3,
	}
	stack := bench.NewStack(bench.KindPrudence, bcfg)
	fault.RegisterMetrics(stack.Reg)

	// The whole run sits under a watchdog: with bounded OOM-delay waits
	// and bounded zero-in-flight waits, no injected fault may turn into
	// a hang.
	done := make(chan struct{})
	go func() {
		defer close(done)
		res.Endurance = runPhases(cfg, stack, fail)
	}()
	select {
	case <-done:
		stack.Close()
	case <-time.After(cfg.Watchdog):
		fail("watchdog: chaos run exceeded %v — an injected fault hung the system", cfg.Watchdog)
		// The stack is wedged; leak it rather than hang the caller too.
	}

	res.Injected = make(map[string]uint64)
	res.Arrivals = make(map[string]uint64)
	for p := fault.Point(0); p < fault.NumPoints; p++ {
		if inj.Threshold(p) == 0 {
			continue
		}
		res.Injected[p.String()] = inj.Fired(p)
		res.Arrivals[p.String()] = inj.Arrivals(p)
	}
	res.FiredArrivals = inj.FiredArrivals()
	res.Passed = len(res.Failures) == 0
	return res
}

// runPhases executes the workload phases and the post-run consistency
// checks. Split out so the watchdog can select against it.
func runPhases(cfg Config, stack *bench.Stack, fail func(string, ...any)) workload.EnduranceResult {
	env := stack.Env()

	// Phase 1: the existing endurance mix (Figure 3's list-update
	// storm) under injected faults. The only invariant here is
	// termination; running out of memory under a hostile schedule is
	// the designed degradation.
	ecache := stack.Alloc.NewCache(slabcore.DefaultConfig("chaos-endurance", 128, cfg.CPUs))
	eres := workload.RunEndurance(env, ecache, workload.EnduranceConfig{
		ListLen: 32,
		Updates: cfg.Updates,
	})

	// Phase 2: a tracked malloc/free mix asserting no object is ever
	// handed out twice while live.
	tcache := stack.Alloc.NewCache(slabcore.DefaultConfig("chaos-tracked", 96, cfg.CPUs))
	var mu sync.Mutex
	live := make(map[slabcore.Ref]int, 1024)
	env.Machine.RunOnAll(func(c *vcpu.CPU) {
		cpu := c.ID()
		env.Sync.ExitIdle(cpu)
		defer env.Sync.EnterIdle(cpu)
		rng := cfg.Seed ^ (uint64(cpu)+1)*0x9e3779b97f4a7c15
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		var held []slabcore.Ref
		release := func(ref Ref) {
			mu.Lock()
			delete(live, ref)
			mu.Unlock()
			if next()%2 == 0 {
				tcache.FreeDeferred(cpu, ref)
			} else {
				tcache.Free(cpu, ref)
			}
		}
		for i := 0; i < cfg.Pairs; i++ {
			ref, err := tcache.Malloc(cpu)
			if err != nil {
				if !errors.Is(err, pagealloc.ErrOutOfMemory) {
					fail("cpu %d: Malloc returned unexpected error: %v", cpu, err)
					return
				}
				// Graceful degradation: free something and move on.
				if len(held) > 0 {
					release(held[len(held)-1])
					held = held[:len(held)-1]
				}
				env.Sync.QuiescentState(cpu)
				continue
			}
			mu.Lock()
			if owner, dup := live[ref]; dup {
				mu.Unlock()
				fail("object handed out twice: ref held by cpu %d also returned to cpu %d", owner, cpu)
				return
			}
			live[ref] = cpu
			mu.Unlock()
			ref.Bytes()[0] = byte(i)
			if next()%4 == 0 && len(held) < 64 {
				held = append(held, ref)
			} else {
				release(ref)
			}
			env.Sync.QuiescentState(cpu)
		}
		for _, ref := range held {
			release(ref)
		}
	})

	// Post-run consistency: with everything freed, the tracked cache
	// must drain to zero requested objects and pass its structural
	// audit, even after the injected failures.
	stack.Sync.Synchronize()
	tcache.Drain()
	if got := tcache.Counters().Requested(); got != 0 {
		fail("tracked cache: %d objects still requested after full free + drain", got)
	}
	if a, ok := tcache.(interface{ Audit() error }); ok {
		if err := a.Audit(); err != nil {
			fail("tracked cache audit: %v", err)
		}
	}
	if a, ok := ecache.(interface{ Audit() error }); ok {
		if err := a.Audit(); err != nil {
			fail("endurance cache audit: %v", err)
		}
	}

	// Metrics must agree with the injector's own counters: the
	// observability layer may not lose injected failures.
	g := stack.Reg.Gather()
	inj := fault.Current()
	for p := fault.Point(0); p < fault.NumPoints; p++ {
		if inj.Threshold(p) == 0 {
			continue
		}
		series := fmt.Sprintf("prudence_fault_injections_total{point=%q}", p.String())
		if got, want := g[series], float64(inj.Fired(p)); got != want {
			fail("metric %s = %v, injector counted %v", series, got, want)
		}
	}
	snap := tcache.Counters().Snapshot()
	if snap.CacheHits+snap.LatentHits > snap.Allocs {
		fail("tracked cache stats inconsistent: hits %d+%d exceed allocs %d",
			snap.CacheHits, snap.LatentHits, snap.Allocs)
	}
	return eres
}

// Ref aliases slabcore.Ref for the tracked workload's closures.
type Ref = slabcore.Ref

// SamePrefix reports whether two realized per-point schedules agree on
// their common prefix for every point, and returns a description of the
// first divergence otherwise. Background goroutines make total arrival
// counts run-dependent, so prefix agreement is exactly the determinism
// the seed guarantees.
func SamePrefix(a, b map[fault.Point][]uint64) (bool, string) {
	points := make(map[fault.Point]bool)
	for p := range a {
		points[p] = true
	}
	for p := range b {
		points[p] = true
	}
	ordered := make([]int, 0, len(points))
	for p := range points {
		ordered = append(ordered, int(p))
	}
	sort.Ints(ordered)
	for _, pi := range ordered {
		p := fault.Point(pi)
		sa, sb := a[p], b[p]
		n := len(sa)
		if len(sb) < n {
			n = len(sb)
		}
		for i := 0; i < n; i++ {
			if sa[i] != sb[i] {
				return false, fmt.Sprintf("%v: firing %d at arrival %d vs %d", p, i, sa[i], sb[i])
			}
		}
	}
	return true, ""
}

// Report renders a human-readable summary of a run for the CLI.
func Report(r Result) string {
	out := fmt.Sprintf("chaos seed=%d passed=%v endurance: updates=%d oom=%v elapsed=%v",
		r.Seed, r.Passed, r.Endurance.Updates, r.Endurance.OOM, r.Endurance.Elapsed.Round(time.Millisecond))
	names := make([]string, 0, len(r.Injected))
	for name := range r.Injected {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out += fmt.Sprintf("\n  %-18s arrivals=%-8d fired=%d", name, r.Arrivals[name], r.Injected[name])
	}
	for _, f := range r.Failures {
		out += "\n  FAIL: " + f
	}
	return out
}
