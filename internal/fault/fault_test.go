package fault

import (
	"strings"
	"sync"
	"testing"

	"prudence/internal/metrics"
)

func TestDisabledFireIsNoop(t *testing.T) {
	Disable()
	if Fire(PageAllocFail) || FireDelay(GPStall) != 0 {
		t.Fatal("disabled injector fired")
	}
	if Enabled() || Current() != nil {
		t.Fatal("no injector should be active")
	}
}

func TestDecideIsDeterministic(t *testing.T) {
	th := rateThreshold(0.3)
	for n := uint64(0); n < 1000; n++ {
		a := Decide(42, RefillFail, n, th)
		b := Decide(42, RefillFail, n, th)
		if a != b {
			t.Fatalf("Decide not stable at n=%d", n)
		}
	}
	// Different seeds and different points must give different streams.
	sameSeed, samePoint := 0, 0
	for n := uint64(0); n < 1000; n++ {
		if Decide(42, RefillFail, n, th) == Decide(43, RefillFail, n, th) {
			sameSeed++
		}
		if Decide(42, RefillFail, n, th) == Decide(42, GPStall, n, th) {
			samePoint++
		}
	}
	if sameSeed == 1000 || samePoint == 1000 {
		t.Fatalf("decision streams identical across seeds (%d) or points (%d)", sameSeed, samePoint)
	}
}

func TestRateExtremes(t *testing.T) {
	inj := New(Config{Seed: 7, Rules: map[Point]Rule{
		RefillFail: {Rate: 1},
		GPStall:    {Rate: 0},
	}})
	for i := 0; i < 100; i++ {
		if !inj.fire(RefillFail) {
			t.Fatal("rate=1 point did not fire")
		}
		if inj.fire(GPStall) {
			t.Fatal("rate=0 point fired")
		}
	}
	if got := inj.Fired(RefillFail); got != 100 {
		t.Fatalf("Fired = %d, want 100", got)
	}
	if got := inj.Arrivals(GPStall); got != 0 {
		t.Fatalf("rate=0 point counted arrivals: %d", got)
	}
}

func TestRateIsRoughlyHonored(t *testing.T) {
	inj := New(Config{Seed: 99, Rules: map[Point]Rule{PageAllocFail: {Rate: 0.25}}})
	const trials = 10000
	fired := 0
	for i := 0; i < trials; i++ {
		if inj.fire(PageAllocFail) {
			fired++
		}
	}
	if fired < trials/5 || fired > trials/3 {
		t.Fatalf("rate 0.25 fired %d/%d times", fired, trials)
	}
}

func TestMaxCapsFirings(t *testing.T) {
	inj := New(Config{Seed: 1, Rules: map[Point]Rule{RefillFail: {Rate: 1, Max: 3}}})
	fired := 0
	var wg sync.WaitGroup
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if inj.fire(RefillFail) {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 3 || inj.Fired(RefillFail) != 3 {
		t.Fatalf("Max=3 but fired %d (counter %d)", fired, inj.Fired(RefillFail))
	}
}

// TestPerPointScheduleReplays is the core replay property: two
// injectors with the same seed and rules, driven with the same
// per-point arrival counts (even from different goroutine
// interleavings), fire on exactly the same arrival indices.
func TestPerPointScheduleReplays(t *testing.T) {
	cfg := Config{Seed: 12345, Rules: map[Point]Rule{
		RefillFail:    {Rate: 0.2},
		PageAllocFail: {Rate: 0.05},
	}}
	run := func(parallel bool) map[Point][]uint64 {
		inj := New(cfg)
		if parallel {
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						inj.fire(RefillFail)
						inj.fire(PageAllocFail)
					}
				}()
			}
			wg.Wait()
		} else {
			for i := 0; i < 2000; i++ {
				inj.fire(RefillFail)
				inj.fire(PageAllocFail)
			}
		}
		return inj.FiredArrivals()
	}
	a, b := run(false), run(true)
	for _, p := range []Point{RefillFail, PageAllocFail} {
		if len(a[p]) == 0 {
			t.Fatalf("%v never fired; schedule test is vacuous", p)
		}
		if len(a[p]) != len(b[p]) {
			t.Fatalf("%v fired %d vs %d times", p, len(a[p]), len(b[p]))
		}
		for i := range a[p] {
			if a[p][i] != b[p][i] {
				t.Fatalf("%v firing %d: arrival %d vs %d", p, i, a[p][i], b[p][i])
			}
		}
		// And the realized schedule matches the pure decision function.
		th := rateThreshold(cfg.Rules[p].Rate)
		for _, n := range a[p] {
			if !Decide(cfg.Seed, p, n, th) {
				t.Fatalf("%v fired at arrival %d but Decide says no", p, n)
			}
		}
	}
}

func TestLogBounded(t *testing.T) {
	inj := New(Config{Seed: 5, LogLimit: 10, Rules: map[Point]Rule{CBDelay: {Rate: 1}}})
	for i := 0; i < 50; i++ {
		inj.fire(CBDelay)
	}
	if len(inj.Log()) != 10 {
		t.Fatalf("log length = %d, want 10", len(inj.Log()))
	}
	if inj.LostEvents() != 40 {
		t.Fatalf("LostEvents = %d, want 40", inj.LostEvents())
	}
}

func TestPointNamesRoundTrip(t *testing.T) {
	for p := Point(0); p < NumPoints; p++ {
		name := p.String()
		if name == "" || strings.HasPrefix(name, "point(") {
			t.Fatalf("point %d has no name", p)
		}
		got, ok := PointByName(name)
		if !ok || got != p {
			t.Fatalf("PointByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := PointByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestEnableDisableAndMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	RegisterMetrics(reg)

	// Nothing emitted while disabled.
	Disable()
	for name := range reg.Gather() {
		if strings.HasPrefix(name, "prudence_fault_") {
			t.Fatalf("series %q emitted with no injector", name)
		}
	}

	inj := Enable(Config{Seed: 3, Rules: map[Point]Rule{GPStall: {Rate: 1, Delay: 1}}})
	defer Disable()
	if !Enabled() || Current() != inj {
		t.Fatal("Enable did not install the injector")
	}
	if d := FireDelay(GPStall); d != 1 {
		t.Fatalf("FireDelay = %v, want 1ns", d)
	}
	Sleep(GPStall)
	g := reg.Gather()
	if g[`prudence_fault_injections_total{point="gp_stall"}`] != 2 {
		t.Fatalf("injections metric = %v, want 2 (gather: %v)", g[`prudence_fault_injections_total{point="gp_stall"}`], g)
	}
	if g[`prudence_fault_arrivals_total{point="gp_stall"}`] != 2 {
		t.Fatalf("arrivals metric missing: %v", g)
	}
	if !strings.Contains(inj.Summary(), "gp_stall") {
		t.Fatalf("Summary missing point: %q", inj.Summary())
	}
}
