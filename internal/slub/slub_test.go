package slub_test

import (
	"testing"
	"time"

	"prudence/internal/alloc"
	"prudence/internal/alloctest"
	"prudence/internal/slabcore"
	"prudence/internal/slub"
	"prudence/internal/trace"
)

func build(s *alloctest.Stack) alloc.Allocator {
	return slub.New(s.Pages, s.RCU, s.Machine.NumCPU())
}

func TestConformance(t *testing.T) {
	alloctest.RunConformance(t, build)
}

func TestName(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	if got := s.Alloc.Name(); got != "slub" {
		t.Fatalf("Name() = %q, want slub", got)
	}
}

// The defining property of the baseline: a deferred free is invisible to
// the allocator until the RCU callback fires, so even after the grace
// period has elapsed a throttled callback processor keeps the objects
// unavailable (the extended object lifetimes of §3.2).
func TestDeferredInvisibleUntilCallback(t *testing.T) {
	cfg := alloctest.DefaultStackConfig()
	cfg.RCU.Blimit = 1
	cfg.RCU.ThrottleDelay = 20 * time.Millisecond
	s := alloctest.NewStack(t, cfg, build)
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("inv"))

	for i := 0; i < 20; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		c.FreeDeferred(0, r)
	}
	s.RCU.Synchronize()
	// Immediately after the grace period the blimit-1 processor has
	// invoked at most a couple of callbacks; most remain pending even
	// though they are safe.
	if got := s.RCU.PendingCallbacks(); got < 10 {
		t.Fatalf("expected a large pending backlog right after GP, got %d", got)
	}
	c.Drain()
	if got := s.RCU.PendingCallbacks(); got != 0 {
		t.Fatalf("pending callbacks after drain = %d", got)
	}
}

// Exhausting the CPU cache forces refills and grows; freeing everything
// back forces overflow flushes and threshold shrinks.
func TestChurnCounters(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("churn"))

	const n = 100 // cache size 8, slab capacity 16
	refs := make([]slabcore.Ref, 0, n)
	for i := 0; i < n; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	ctr := c.Counters().Snapshot()
	if ctr.Refills == 0 {
		t.Fatal("no refills recorded for 100 allocations with cache size 8")
	}
	if ctr.Grows < 7 {
		t.Fatalf("Grows = %d, want >= 7 (100 objects / 16 per slab)", ctr.Grows)
	}
	if ctr.PeakSlabs < 7 {
		t.Fatalf("PeakSlabs = %d, want >= 7", ctr.PeakSlabs)
	}
	if ctr.CacheHits == 0 {
		t.Fatal("no cache hits recorded")
	}
	for _, r := range refs {
		c.Free(0, r)
	}
	ctr = c.Counters().Snapshot()
	if ctr.Flushes == 0 {
		t.Fatal("no flushes recorded after freeing 100 objects")
	}
	if ctr.Shrinks == 0 {
		t.Fatal("no shrinks recorded after freeing all objects")
	}
	c.Drain()
	if got := c.Counters().CurrentSlabs(); got != 0 {
		t.Fatalf("CurrentSlabs after drain = %d", got)
	}
}

// SLUB never uses the Prudence-only machinery.
func TestNoPrudenceCountersMove(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("plain"))
	for i := 0; i < 200; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		c.FreeDeferred(0, r)
	}
	c.Drain()
	ctr := c.Counters().Snapshot()
	if ctr.LatentHits != 0 || ctr.PreFlushes != 0 || ctr.PreMoves != 0 || ctr.PartialFills != 0 || ctr.GPWaits != 0 {
		t.Fatalf("baseline moved Prudence-only counters: %+v", ctr)
	}
	if ctr.DeferredFrees != 200 {
		t.Fatalf("DeferredFrees = %d, want 200", ctr.DeferredFrees)
	}
}

// Deferred frees round-trip through the RCU callback machinery: the
// object count invoked matches the deferred count after drain.
func TestDeferredGoesThroughRCU(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("viarcu"))
	const n = 50
	for i := 0; i < n; i++ {
		r, err := c.Malloc(0)
		if err != nil {
			t.Fatal(err)
		}
		c.FreeDeferred(0, r)
	}
	st := s.RCU.Stats()
	if st.CallbacksQueued != n {
		t.Fatalf("RCU callbacks queued=%d, want %d", st.CallbacksQueued, n)
	}
	c.Drain() // uses rcu.Barrier, which queues sentinel callbacks of its own
	st = s.RCU.Stats()
	if st.CallbacksInvoked != st.CallbacksQueued || st.CallbacksInvoked < n {
		t.Fatalf("RCU callbacks queued=%d invoked=%d after drain", st.CallbacksQueued, st.CallbacksInvoked)
	}
}

func TestCacheIdentityAndHooks(t *testing.T) {
	s := alloctest.NewStack(t, alloctest.DefaultStackConfig(), build)
	c := s.Alloc.NewCache(alloctest.TestCacheConfig("ident")).(*slub.Cache)
	if c.Name() != "ident" || c.ObjectSize() != 256 {
		t.Fatalf("identity: %q/%d", c.Name(), c.ObjectSize())
	}
	ring := trace.NewRing(64)
	c.SetTrace(ring)
	d := c.EnableDebug(slabcore.DebugConfig{TrackOwners: true})
	r, err := c.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep := d.Leaks(); rep.Live != 1 {
		t.Fatalf("owner tracking through slub: %s", rep)
	}
	c.Free(0, r)
	// The refill that served the allocation must have been traced.
	if ring.CountByKind()[trace.KindRefill] == 0 {
		t.Fatal("no refill events traced through slub")
	}
	c.Drain()
}
