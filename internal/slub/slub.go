// Package slub implements the baseline allocator: a SLUB-model slab
// allocator whose deferred frees go through the synchronization
// mechanism, exactly as in the paper's Listing 1.
//
// The allocator itself never sees deferred objects: FreeDeferred
// registers an RCU callback that performs an ordinary Free once the
// callback processor gets around to it. Everything the paper's §3
// attributes to this arrangement — bursty freeing when callbacks drain
// after a grace period, extended object lifetimes from throttled
// processing, the resulting object cache and slab churn, and the OOM
// of Figure 3 — emerges from this code under load.
package slub

import (
	"sync"

	"prudence/internal/alloc"
	"prudence/internal/fault"
	"prudence/internal/metrics"
	"prudence/internal/pagealloc"
	"prudence/internal/slabcore"
	"prudence/internal/stats"
	gsync "prudence/internal/sync"
	"prudence/internal/trace"
)

// Allocator is the SLUB-model allocator.
type Allocator struct {
	pages *pagealloc.Allocator
	sync  gsync.Backend
	cpus  int

	// mu guards the cache registry only; it ranks below every
	// allocation-path lock and is never held across one.
	//
	//prudence:lockorder 5
	mu     sync.Mutex
	caches []alloc.Cache //prudence:guarded_by mu
}

var _ alloc.Allocator = (*Allocator)(nil)

// New creates a SLUB allocator over the given page allocator. r is the
// reclamation backend used to defer frees — any registered scheme (rcu,
// ebr, hp, nebr) works, since the allocator only needs Retire and
// Barrier; cpus is the machine's CPU count.
func New(pages *pagealloc.Allocator, r gsync.Backend, cpus int) *Allocator {
	return &Allocator{pages: pages, sync: r, cpus: cpus}
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "slub" }

// NewCache implements alloc.Allocator.
func (a *Allocator) NewCache(cfg slabcore.CacheConfig) alloc.Cache {
	cfg.CPUs = a.cpus
	c := &Cache{
		alloc: a,
		base:  slabcore.NewBase(a.pages, cfg),
	}
	c.cpuCaches = make([]*slabcore.PerCPUCache, a.cpus)
	for i := range c.cpuCaches {
		c.cpuCaches[i] = slabcore.NewPerCPUCache(c.base.Cfg.CacheSize)
	}
	a.mu.Lock()
	a.caches = append(a.caches, c)
	a.mu.Unlock()
	return c
}

// Caches implements alloc.Allocator.
func (a *Allocator) Caches() []alloc.Cache {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]alloc.Cache, len(a.caches))
	copy(out, a.caches)
	return out
}

// RegisterMetrics implements alloc.Allocator. SLUB's reclamation lag
// (the RCU callback backlog) lives in the engine, which registers its
// own series; only the shared per-cache families are added here.
func (a *Allocator) RegisterMetrics(r *metrics.Registry) {
	alloc.RegisterCacheMetrics(r, a)
}

// Cache is one SLUB slab cache.
type Cache struct {
	alloc     *Allocator
	base      *slabcore.Base
	cpuCaches []*slabcore.PerCPUCache
}

var _ alloc.Cache = (*Cache)(nil)

// Name implements alloc.Cache.
func (c *Cache) Name() string { return c.base.Cfg.Name }

// ObjectSize implements alloc.Cache.
func (c *Cache) ObjectSize() int { return c.base.Cfg.ObjectSize }

// Counters implements alloc.Cache.
func (c *Cache) Counters() *stats.AllocCounters { return &c.base.Ctr }

// Fragmentation implements alloc.Cache.
func (c *Cache) Fragmentation() (float64, int64, int64) {
	return c.base.Fragmentation()
}

// Malloc implements alloc.Cache. The fast path is a pop from the
// current CPU's object cache; a miss refills the cache from the node
// lists, growing the slab cache from the page allocator if needed.
func (c *Cache) Malloc(cpu int) (slabcore.Ref, error) {
	cc := c.cpuCaches[cpu]
	ctr := &c.base.Ctr
	ctr.IncAllocs(cpu)

	for attempt := 0; ; attempt++ {
		cc.Lock()
		if r := cc.TryGet(); !r.IsZero() {
			cc.Unlock()
			ctr.IncCacheHits(cpu)
			c.base.UserAlloc(cpu)
			if d := c.base.Debugger(); d != nil {
				d.OnAlloc(r, cpu)
			}
			return r, nil
		}

		// Slow path: refill from the node lists.
		c.refill(cpu, cc)
		if r := cc.TryGet(); !r.IsZero() {
			cc.Unlock()
			c.base.UserAlloc(cpu)
			if d := c.base.Debugger(); d != nil {
				d.OnAlloc(r, cpu)
			}
			return r, nil
		}

		// Slower path: grow the slab cache by one slab and refill again.
		// As in core, the stand-in grows under the cache lock and
		// accepts the page allocator's bounded zeroer wait.
		node := c.base.NodeFor(cpu)
		if _, err := c.base.NewSlab(node); err != nil { //prudence:nolint:sleepcheck grow-under-cache-lock stand-in: the zeroer wait in pagealloc is bounded
			cc.Unlock()
			ctr.OOMs.Add(1)
			c.base.Trace(trace.KindOOM, cpu, 0, 0)
			return slabcore.Ref{}, err
		}
		c.base.Trace(trace.KindGrow, cpu, 1, 0)
		c.refill(cpu, cc)
		r := cc.TryGet()
		cc.Unlock()
		if r.IsZero() {
			// The fresh slab's objects were taken by other CPUs between
			// our grow and refill; retry a bounded number of times.
			if attempt < 10 {
				continue
			}
			ctr.OOMs.Add(1)
			c.base.Trace(trace.KindOOM, cpu, 0, 0)
			return slabcore.Ref{}, pagealloc.ErrOutOfMemory
		}
		c.base.UserAlloc(cpu)
		if d := c.base.Debugger(); d != nil {
			d.OnAlloc(r, cpu)
		}
		return r, nil
	}
}

// refill moves objects from node-list slabs into the CPU cache until it
// is full or the node has nothing allocatable. Whole freelist segments
// are spliced per slab (FillFrom), so the node lock is held for one
// batched copy per slab rather than a per-object push/pop loop. Caller
// holds the cache lock.
func (c *Cache) refill(cpu int, cc *slabcore.PerCPUCache) {
	// Chaos: a failed refill sends Malloc to the grow path.
	//prudence:fault_point
	if fault.Fire(fault.RefillFail) {
		return
	}
	node := c.base.NodeFor(cpu)
	want := cc.Size - cc.Len()
	if want <= 0 {
		return
	}
	moved := 0
	node.Lock()
	for want > 0 {
		// SLUB picks the first slab on the partial list, then free
		// slabs.
		s := node.FirstPartial()
		if s == nil {
			s = node.FirstFree()
		}
		if s == nil {
			break
		}
		got := cc.FillFrom(s, want)
		want -= got
		moved += got
		node.Move(s, slabcore.HomeList(s))
		if got == 0 {
			break
		}
	}
	node.Unlock()
	if moved > 0 {
		c.base.Ctr.Refills.Add(1)
		c.base.Trace(trace.KindRefill, cpu, int64(moved), 0)
	}
}

// Free implements alloc.Cache: push to the CPU cache, flushing half of
// it to the node lists on overflow, and shrinking the slab cache when
// free slabs exceed the threshold.
func (c *Cache) Free(cpu int, r slabcore.Ref) {
	if d := c.base.Debugger(); d != nil {
		d.OnFree(r, cpu)
	}
	c.base.Ctr.IncFrees(cpu)
	c.base.UserFree(cpu)
	c.freeObj(cpu, r, false)
}

// freeObj is the accounting-free inner free used by both Free and the
// RCU callback path. remote selects the visitor lock protocol: the RCU
// callback processor is a cross-CPU visitor to the target CPU's cache
// and must defer to its owner rather than compete with it.
func (c *Cache) freeObj(cpu int, r slabcore.Ref, remote bool) {
	cc := c.cpuCaches[cpu]
	if remote {
		cc.LockRemote()
	} else {
		cc.Lock()
	}
	cc.Put(r)
	if cc.Len() <= cc.Size {
		cc.Unlock()
		return
	}
	// Overflow: flush the older half of the cache to the node lists.
	victims := cc.Take(cc.Len() / 2)
	cc.Unlock()
	c.base.Ctr.Flushes.Add(1)
	c.base.Trace(trace.KindFlush, cpu, int64(len(victims)), 0)
	c.base.ReleaseRefs(victims, slabcore.HomeList)
	node := c.base.NodeFor(cpu)
	if freed, _ := c.base.ShrinkNode(node, c.base.Cfg.FreeSlabLimit, nil); freed > 0 {
		c.base.Trace(trace.KindShrink, cpu, int64(freed), 0)
	}
}

// FreeDeferred implements alloc.Cache using the paper's Listing 1: the
// writer retires the object through the reclamation backend and it
// stays invisible to the allocator until the backend frees it after its
// grace period (plus whatever throttling delay the backend imposes).
func (c *Cache) FreeDeferred(cpu int, r slabcore.Ref) {
	if d := c.base.Debugger(); d != nil {
		d.OnFree(r, cpu)
	}
	c.base.Ctr.IncDeferredFrees(cpu)
	c.base.UserFree(cpu)
	// Non-closure retirement: the ref travels as a (slab, idx) payload
	// in the backend's retire record. A closure here would heap-
	// allocate on every deferred free — the reclamation scheme
	// generating the very garbage it exists to manage (the BENCH_PR8
	// GC-churn finding).
	c.alloc.sync.RetireObject(cpu, c, r.Slab, uint64(r.Idx))
}

// ReclaimRetired implements sync.Reclaimer: the deferred-free landing
// point for refs retired by FreeDeferred. obj is the ref's slab and
// idx its object index. The backend's processor is a cross-CPU visitor
// to cpu's cache, hence the remote free protocol.
func (c *Cache) ReclaimRetired(cpu int, obj any, idx uint64) {
	c.freeObj(cpu, slabcore.Ref{Slab: obj.(*slabcore.Slab), Idx: uint32(idx)}, true)
}

// Drain implements alloc.Cache: wait for outstanding deferred frees to
// be processed, then flush every CPU cache and release all free slabs.
func (c *Cache) Drain() {
	// Wait for all deferred frees queued so far to be processed
	// (retirements are per-CPU FIFO, so the barrier covers this cache's).
	c.alloc.sync.Barrier()
	for _, cc := range c.cpuCaches {
		cc.LockRemote()
		objs := cc.TakeAll()
		cc.Unlock()
		if len(objs) > 0 {
			c.base.Ctr.Flushes.Add(1)
			c.base.ReleaseRefs(objs, slabcore.HomeList)
		}
	}
	for _, node := range c.base.NodesArr {
		c.base.ShrinkNode(node, 0, nil)
	}
}

// Audit verifies the cache's structural invariants (see slabcore.Audit).
func (c *Cache) Audit() error { return c.base.Audit() }

// EnableDebug attaches SLUB_DEBUG-style red zones and owner tracking to
// this cache. Must be called before the first allocation when red zones
// are requested.
func (c *Cache) EnableDebug(cfg slabcore.DebugConfig) *slabcore.Debugger {
	return c.base.EnableDebug(cfg)
}

// SetTrace attaches an event ring to this cache (nil detaches).
func (c *Cache) SetTrace(r *trace.Ring) { c.base.SetTrace(r) }
