package slub_test

import (
	"testing"
	"time"

	"prudence/internal/memarena"
	"prudence/internal/pagealloc"
	"prudence/internal/slabcore"
	"prudence/internal/slub"
	gsync "prudence/internal/sync"
	"prudence/internal/vcpu"

	// Register every scheme so the regression pins all four retire
	// paths, not just the one the other tests happen to link.
	_ "prudence/internal/ebr"
	_ "prudence/internal/hp"
	_ "prudence/internal/nebr"
)

// TestFreeDeferredZeroAllocs pins the BENCH_PR8 fix: the steady-state
// deferred-free path must not allocate. Before the non-closure
// RetireObject variant, every FreeDeferred heap-allocated a closure
// capturing (cache, ref) — the reclamation scheme generating the very
// garbage it exists to manage, visible as 4× the GC count on the SLUB
// endurance runs. The assertion is exact: testing.AllocsPerRun floors
// at integer granularity, so amortized background work (slice growth,
// batch copies, drain bursts) is allowed, but a per-call allocation on
// the enqueue path fails immediately.
func TestFreeDeferredZeroAllocs(t *testing.T) {
	for _, scheme := range gsync.Backends() {
		t.Run(scheme, func(t *testing.T) {
			const (
				cpus = 2
				runs = 2000
			)
			arena, err := memarena.NewBackend("heap", 4096)
			if err != nil {
				t.Fatal(err)
			}
			defer arena.Close()
			pages := pagealloc.New(arena)
			m := vcpu.NewMachine(cpus)
			defer m.Stop()
			// Long poll/GP intervals keep the backends' own timer churn
			// (time.After allocates) negligible inside the measurement
			// window; the limbo backlog that builds up instead is
			// covered by the pre-grown slab cache below.
			b, err := gsync.New(scheme, m, gsync.Options{
				GPInterval:   2 * time.Millisecond,
				PollInterval: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer b.Stop()
			a := slub.New(pages, b, cpus)
			c := a.NewCache(slabcore.CacheConfig{
				Name:          "allocs",
				ObjectSize:    64,
				SlabOrder:     0,
				CacheSize:     512,
				FreeSlabLimit: 1 << 20, // never shrink: a shrink-regrow cycle allocates slab metadata
			})

			// Pre-grow the slab cache so Malloc never takes the grow
			// path while we measure, even with every measured free
			// sitting unreclaimed in limbo.
			refs := make([]slabcore.Ref, 0, 3*runs)
			for i := 0; i < cap(refs); i++ {
				r, err := c.Malloc(0)
				if err != nil {
					t.Fatal(err)
				}
				refs = append(refs, r)
			}
			for _, r := range refs {
				c.Free(0, r)
			}
			// Warm the deferred path once at full depth so the limbo
			// bags' backing arrays reach steady-state capacity.
			for i := 0; i < runs; i++ {
				r, err := c.Malloc(0)
				if err != nil {
					t.Fatal(err)
				}
				c.FreeDeferred(0, r)
			}
			b.Synchronize()
			b.Barrier()

			avg := testing.AllocsPerRun(runs, func() {
				r, err := c.Malloc(0)
				if err != nil {
					t.Fatal(err)
				}
				c.FreeDeferred(0, r)
			})
			if avg != 0 {
				t.Fatalf("Malloc+FreeDeferred allocates %v allocs/op on %s, want 0", avg, scheme)
			}
		})
	}
}
