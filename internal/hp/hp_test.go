package hp_test

import (
	"sync/atomic"
	"testing"
	"time"

	"prudence/internal/hp"
	gsync "prudence/internal/sync"
	"prudence/internal/sync/synctest"
	"prudence/internal/vcpu"
)

var _ gsync.Backend = (*hp.HP)(nil)

func newHP(t *testing.T, cpus int, opts hp.Options) *hp.HP {
	t.Helper()
	m := vcpu.NewMachine(cpus)
	t.Cleanup(m.Stop)
	h := hp.New(m, opts)
	t.Cleanup(h.Stop)
	return h
}

func TestConformance(t *testing.T) {
	synctest.Run(t, 4, func(t *testing.T) gsync.Backend {
		m := vcpu.NewMachine(4)
		t.Cleanup(m.Stop)
		return hp.New(m, hp.Options{AdvanceInterval: time.Millisecond})
	})
}

// A token published in a hazard slot blocks reclamation of exactly the
// entries retired with that token; Release unblocks them.
func TestTokenProtection(t *testing.T) {
	h := newHP(t, 2, hp.Options{AdvanceInterval: 200 * time.Microsecond})
	const token = 42
	h.Protect(1, 0, token)

	var protectedFreed, plainFreed atomic.Bool
	h.RetireToken(0, token, func() { protectedFreed.Store(true) })
	h.RetireToken(0, 7, func() { plainFreed.Store(true) })

	deadline := time.Now().Add(5 * time.Second)
	for !plainFreed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("unprotected retirement never reclaimed")
		}
		h.NeedGP()
		time.Sleep(time.Millisecond)
	}
	if protectedFreed.Load() {
		t.Fatal("retirement reclaimed while its token was published")
	}

	h.Release(1, 0)
	h.Barrier()
	if !protectedFreed.Load() {
		t.Fatal("retirement not reclaimed after Release + Barrier")
	}
}

func TestProtectZeroTokenPanics(t *testing.T) {
	h := newHP(t, 1, hp.Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("Protect(0) did not panic")
		}
	}()
	h.Protect(0, 0, 0)
}

// The classic hazard-pointer garbage bound: with every slot on every
// CPU protecting a distinct token, retiring a large batch of
// unprotected objects still drains to at most the protected count —
// the backlog is bounded by CPUs × slots + what a single in-flight scan
// has not yet covered, independent of retirement volume.
func TestGarbageBound(t *testing.T) {
	const cpus, slots = 4, 2
	h := newHP(t, cpus, hp.Options{
		Slots:           slots,
		AdvanceInterval: 100 * time.Microsecond,
		ScanThreshold:   32,
	})
	// Protect one distinct token per slot machine-wide.
	token := uint64(1)
	for cpu := 0; cpu < cpus; cpu++ {
		for s := 0; s < slots; s++ {
			h.Protect(cpu, s, token)
			token++
		}
	}
	// Retire the protected tokens plus a large unprotected volume.
	var freed atomic.Int64
	for tk := uint64(1); tk < token; tk++ {
		h.RetireToken(0, tk, func() { freed.Add(1) })
	}
	const volume = 10_000
	for i := 0; i < volume; i++ {
		h.RetireToken(i%cpus, 0, func() { freed.Add(1) })
	}
	deadline := time.Now().Add(10 * time.Second)
	for freed.Load() < volume {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d unprotected retirements reclaimed", freed.Load(), volume)
		}
		h.NeedGP()
		time.Sleep(time.Millisecond)
	}
	if got, want := h.RetireBacklog(), int64(cpus*slots); got != want {
		t.Fatalf("backlog = %d, want exactly the %d protected entries", got, want)
	}
	// Releasing everything lets the backlog drain to zero.
	for cpu := 0; cpu < cpus; cpu++ {
		for s := 0; s < slots; s++ {
			h.Release(cpu, s)
		}
	}
	h.Barrier()
	if got := h.RetireBacklog(); got != 0 {
		t.Fatalf("backlog = %d after releasing all slots", got)
	}
}

// Unlike ebr's advancer, which waits for stragglers before every
// advance, the era moves freely past a stalled reader: safety lives in
// the per-entry coverage checks, so GPsCompleted keeps growing while
// the pinned cookie simply stays un-elapsed until the reader exits.
func TestEraAdvancesPastStalledReader(t *testing.T) {
	h := newHP(t, 2, hp.Options{AdvanceInterval: 100 * time.Microsecond})
	release := make(chan struct{})
	readerDone := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		defer close(readerDone)
		h.ReadLock(1)
		close(entered)
		<-release
		h.ReadUnlock(1)
	}()
	<-entered

	c := h.Snapshot()
	start := h.GPsCompleted()
	deadline := time.Now().Add(5 * time.Second)
	for h.GPsCompleted() < start+3 {
		if time.Now().After(deadline) {
			t.Fatalf("era stuck at %d grace periods behind a stalled reader", h.GPsCompleted())
		}
		h.NeedGP()
		time.Sleep(time.Millisecond)
	}
	if h.Elapsed(c) {
		t.Fatal("cookie elapsed while the reader from before it was still pinned")
	}
	close(release)
	<-readerDone
	if !h.WaitElapsedOn(0, c) {
		t.Fatal("cookie did not elapse after the reader exited")
	}
}
