// Package hp implements a hazard-pointer backend (Michael's SMR, as
// surveyed in Singh's safe-memory-reclamation thesis — the per-pointer
// end of the scheme spectrum) behind the canonical internal/sync
// surface.
//
// Two protection granularities coexist:
//
//   - Per-pointer: a reader publishes an object's token into one of its
//     CPU's hazard slots (Protect), re-validates the source pointer, and
//     the token blocks reclamation of exactly that object until Release.
//     This is classic hazard-pointer usage with the classic bound: at
//     most CPUs × slots objects can be protected at once, so for readers
//     that protect tokens (rather than open critical sections) a scan
//     always reclaims all but O(CPUs·slots) of the retire lists — a
//     reader stalled holding only tokens pins only what it protects.
//   - Per-era: the repository's data structures delimit critical
//     sections (ReadLock/ReadUnlock) instead of publishing individual
//     pointers, so ReadLock publishes the current reclamation era into a
//     dedicated hazard slot. A retired object is stamped with the era
//     after its retirement; it stays unreclaimed while any CPU publishes
//     an older era. This is the hazard-era bridge: critical-section code
//     keeps its API, per-pointer code gets the hard garbage bound.
//
// Reclamation is scan-and-reclaim: retirements accumulate in per-CPU
// retire lists; when a list exceeds the scan threshold (or the era
// driver runs), the scanning CPU collects every published era and token
// once and frees all entries no protection covers. Unlike rcu/ebr there
// is no waiting for a global quiescent point to free anything — only
// covered entries stay.
package hp

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prudence/internal/fault"
	"prudence/internal/metrics"
	"prudence/internal/stats"
	gsync "prudence/internal/sync"
	"prudence/internal/vcpu"
)

// Options configures the hazard-pointer backend.
type Options struct {
	// Slots is the number of per-pointer hazard slots per CPU (default
	// 4). Slot tokens are caller-chosen non-zero uint64s.
	Slots int
	// AdvanceInterval is the minimum gap between era advances (default
	// 200µs). One era advance completes one grace period.
	AdvanceInterval time.Duration
	// PollInterval is the waiter/scanner re-check period (default 20µs).
	PollInterval time.Duration
	// ScanThreshold is the retire-list length that triggers an inline
	// scan on the retiring CPU (default 2 × CPUs × (Slots+1), the
	// classic R = H·K + Ω amortization; minimum 64).
	ScanThreshold int
	// RetireQhimark is the total retire backlog above which each new
	// retirement raises expedited era demand instead of plain demand
	// (default 64 × ScanThreshold; negative disables).
	RetireQhimark int
}

func (o Options) withDefaults(cpus int) Options {
	if o.Slots <= 0 {
		o.Slots = 4
	}
	if o.AdvanceInterval <= 0 {
		o.AdvanceInterval = 200 * time.Microsecond
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 20 * time.Microsecond
	}
	if o.ScanThreshold <= 0 {
		o.ScanThreshold = 2 * cpus * (o.Slots + 1)
		if o.ScanThreshold < 64 {
			o.ScanThreshold = 64
		}
	}
	if o.RetireQhimark == 0 {
		o.RetireQhimark = 64 * o.ScanThreshold
	}
	return o
}

func init() {
	gsync.Register("hp", func(m *vcpu.Machine, o gsync.Options) gsync.Backend {
		return New(m, Options{
			AdvanceInterval: o.GPInterval,
			PollInterval:    o.PollInterval,
			RetireQhimark:   o.Qhimark,
		})
	})
}

// retiredObj is one retired function: cookie is the era it must outwait
// for era-based protection; token, when non-zero, additionally blocks
// reclamation while published in any hazard slot.
type retiredObj struct {
	cookie gsync.Cookie
	token  uint64
	fn     func()
	// Non-closure payload (the RetireObject path): when rec is
	// non-nil, reclamation calls rec.ReclaimRetired(cpu, obj, idx)
	// instead of fn, so retiring costs no per-call allocation.
	rec gsync.Reclaimer
	obj any
	idx uint64
	cpu int32
}

// invoke runs the deferred work, whichever form it was enqueued in.
func (r *retiredObj) invoke() {
	if r.rec != nil {
		r.rec.ReclaimRetired(int(r.cpu), r.obj, r.idx)
		return
	}
	r.fn()
}

type cpuState struct {
	// era is the era published by an open critical section (0 = none).
	era atomic.Uint64
	// slots are the per-pointer hazard tokens (0 = empty).
	slots   []atomic.Uint64
	nesting int32 // owner-goroutine only

	// mu guards the CPU's retire list only; it is released before any
	// retired function runs (retired functions take allocator locks).
	//
	//prudence:lockorder 44
	mu      sync.Mutex
	retired []retiredObj //prudence:guarded_by mu
	// sinceScan counts retirements since the last scan of this list, so
	// inline scans amortize to one per ScanThreshold retirements rather
	// than firing on every retirement while the list sits above the
	// threshold (which goes quadratic and starves the driver off mu).
	sinceScan int //prudence:guarded_by mu
	// seq/done support Barrier: entries ever enqueued / ever invoked.
	seq  atomic.Uint64
	done atomic.Uint64
	// qsCalls counts QuiescentState calls so the hot path can donate
	// its timeslice periodically (see QuiescentState).
	qsCalls atomic.Uint32
}

// HP is the hazard-pointer backend.
type HP struct {
	machine *vcpu.Machine
	opts    Options
	percpu  []*cpuState

	// eraCounter starts at 1 so a published era is never the 0
	// sentinel.
	eraCounter atomic.Uint64
	needGP     atomic.Bool
	// expedite records expedited demand (ExpediteGP): the driver skips
	// its pacing gap while set. Cleared when the advance it hastened
	// publishes.
	expedite          atomic.Bool
	expeditedAdvances atomic.Uint64
	pressured         atomic.Bool

	pending    atomic.Int64
	maxBacklog atomic.Int64
	scans      atomic.Uint64
	reclaimed  atomic.Uint64
	gpHist     stats.Histogram // latency between demanded era advances

	kick chan struct{}

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New creates and starts a hazard-pointer backend for machine.
func New(machine *vcpu.Machine, opts Options) *HP {
	h := &HP{
		machine: machine,
		opts:    opts.withDefaults(machine.NumCPU()),
		percpu:  make([]*cpuState, machine.NumCPU()),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	h.eraCounter.Store(1)
	for i := range h.percpu {
		h.percpu[i] = &cpuState{slots: make([]atomic.Uint64, h.opts.Slots)}
	}
	h.wg.Add(1)
	go h.driver()
	return h
}

// Stop shuts the backend down. Retired entries that no protection
// covers are reclaimed in a final scan; covered entries are dropped.
func (h *HP) Stop() {
	h.stopOnce.Do(func() {
		close(h.stop)
		h.wg.Wait()
		h.scanAll()
	})
}

// Stopped reports whether Stop has begun.
func (h *HP) Stopped() bool {
	select {
	case <-h.stop:
		return true
	default:
		return false
	}
}

func (h *HP) cpu(id int) *cpuState {
	if id < 0 || id >= len(h.percpu) {
		panic(fmt.Sprintf("hp: CPU id %d out of range [0,%d)", id, len(h.percpu)))
	}
	return h.percpu[id]
}

// Era returns the current reclamation era.
func (h *HP) Era() uint64 { return h.eraCounter.Load() }

// ReadLock enters a critical section on cpu by publishing the current
// era into the CPU's era hazard. Publish-then-recheck mirrors ebr's
// pin loop: once the era is stable across the publish, any later scan
// must observe it.
func (h *HP) ReadLock(cpu int) {
	cs := h.cpu(cpu)
	if cs.nesting == 0 {
		for {
			cur := h.eraCounter.Load()
			cs.era.Store(cur)
			if h.eraCounter.Load() == cur {
				break
			}
		}
	}
	cs.nesting++
}

// ReadUnlock leaves the critical section, clearing the era hazard at
// the outermost exit.
func (h *HP) ReadUnlock(cpu int) {
	cs := h.cpu(cpu)
	cs.nesting--
	if cs.nesting < 0 {
		panic("hp: unbalanced ReadUnlock")
	}
	if cs.nesting == 0 {
		cs.era.Store(0)
	}
}

// Protect publishes token into hazard slot on cpu and returns after the
// publication is visible to scans. The caller must re-validate that the
// protected object is still reachable after Protect returns (the
// classic hazard-pointer protocol); if it is, the object cannot be
// reclaimed until Release. token must be non-zero.
func (h *HP) Protect(cpu, slot int, token uint64) {
	if token == 0 {
		panic("hp: Protect with zero token")
	}
	h.cpu(cpu).slots[slot].Store(token)
}

// Release clears hazard slot on cpu.
func (h *HP) Release(cpu, slot int) {
	h.cpu(cpu).slots[slot].Store(0)
}

// Slots returns the number of per-pointer hazard slots per CPU.
func (h *HP) Slots() int { return h.opts.Slots }

// QuiescentState does not affect protection (hazards are explicit
// publication), but it periodically donates the caller's timeslice so
// the driver goroutine gets scheduled even when every runnable vCPU
// spins through allocate/free at GOMAXPROCS=1 — the same scheduling
// donation internal/rcu makes, without which era advances happen only
// at preemption quanta and grace periods starve.
func (h *HP) QuiescentState(cpu int) {
	if h.cpu(cpu).qsCalls.Add(1)%32 == 0 {
		runtime.Gosched()
	}
}

// EnterIdle is a no-op: an idle CPU publishes no hazards.
func (h *HP) EnterIdle(cpu int) {}

// ExitIdle is a no-op, mirroring EnterIdle.
func (h *HP) ExitIdle(cpu int) {}

// Snapshot returns a cookie that elapses once the era has advanced past
// every era published now.
func (h *HP) Snapshot() gsync.Cookie {
	return gsync.Cookie(h.eraCounter.Load() + 1)
}

// Elapsed reports whether every critical section open at Snapshot time
// has closed: the era must have reached the cookie and no CPU may still
// publish an older era.
func (h *HP) Elapsed(c gsync.Cookie) bool {
	if h.eraCounter.Load() < uint64(c) {
		return false
	}
	return h.minPublishedEra() >= uint64(c)
}

// minPublishedEra returns the smallest era any CPU currently publishes,
// or MaxUint64 when none is published.
func (h *HP) minPublishedEra() uint64 {
	min := uint64(math.MaxUint64)
	for _, cs := range h.percpu {
		if e := cs.era.Load(); e != 0 && e < min {
			min = e
		}
	}
	return min
}

// NeedGP signals demand for era advances.
func (h *HP) NeedGP() {
	h.needGP.Store(true)
	// Chaos: a lost wakeup drops the kick after demand is recorded; the
	// driver's timer fallback must recover.
	//prudence:fault_point
	if fault.Fire(fault.LostWakeup) {
		return
	}
	select {
	case h.kick <- struct{}{}:
	default:
	}
}

// ExpediteGP raises expedited demand: the driver advances the era and
// scans without waiting out the pacing gap (safety lives entirely in
// the per-entry protection checks, so there is no protocol reason to
// pace). One-shot: consumed when the advance it hastened publishes.
func (h *HP) ExpediteGP() {
	h.expedite.Store(true)
	h.needGP.Store(true)
	// Chaos: as in NeedGP, the recorded demand, not the kick, carries
	// the liveness guarantee.
	//prudence:fault_point
	if fault.Fire(fault.LostWakeup) {
		return
	}
	select {
	case h.kick <- struct{}{}:
	default:
	}
}

// GPsCompleted counts completed grace periods: era advances.
func (h *HP) GPsCompleted() uint64 { return h.eraCounter.Load() - 1 }

// ExpeditedAdvances returns how many era advances skipped the pacing
// gap on expedited demand.
func (h *HP) ExpeditedAdvances() uint64 { return h.expeditedAdvances.Load() }

// WaitElapsedOn blocks until cookie c elapses. The caller is outside
// any critical section by contract, so its era hazard is already clear.
func (h *HP) WaitElapsedOn(cpu int, c gsync.Cookie) bool {
	if h.cpu(cpu).nesting > 0 {
		panic("hp: WaitElapsedOn inside critical section")
	}
	return h.waitElapsed(c)
}

// WaitElapsedOnTimeout is WaitElapsedOn with a deadline, returning
// false once d passes (or the backend stops) without the cookie
// elapsing.
func (h *HP) WaitElapsedOnTimeout(cpu int, c gsync.Cookie, d time.Duration) bool {
	if h.cpu(cpu).nesting > 0 {
		panic("hp: WaitElapsedOnTimeout inside critical section")
	}
	deadline := time.Now().Add(d)
	for !h.Elapsed(c) {
		if time.Now().After(deadline) {
			return h.Elapsed(c)
		}
		// A deadline-bound waiter is starved by definition: expedite.
		h.ExpediteGP()
		select {
		case <-h.stop:
			return h.Elapsed(c)
		case <-time.After(h.opts.PollInterval):
		}
	}
	return true
}

// Synchronize blocks until a full grace period has elapsed.
func (h *HP) Synchronize() { h.waitElapsed(h.Snapshot()) }

// SynchronizeOn is Synchronize; the (hazard-free) calling CPU needs no
// special treatment.
func (h *HP) SynchronizeOn(cpu int) {
	if h.cpu(cpu).nesting > 0 {
		panic("hp: SynchronizeOn inside critical section")
	}
	h.Synchronize()
}

// waitElapsed polls rather than blocking on a condition variable:
// Elapsed can turn true on a reader's ReadUnlock, an event no driver
// broadcast accompanies. Demand is re-raised on every pass because the
// driver clears it at each advance; a blocked synchronous waiter is
// latency-sensitive, so the demand is expedited.
func (h *HP) waitElapsed(c gsync.Cookie) bool {
	for !h.Elapsed(c) {
		h.ExpediteGP()
		select {
		case <-h.stop:
			return h.Elapsed(c)
		case <-time.After(h.opts.PollInterval):
		}
	}
	return true
}

// Retire schedules fn behind era protection only (token 0): it runs
// once the era advances past the retirement and no critical section
// from before the retirement survives.
func (h *HP) Retire(cpu int, fn func()) { h.RetireToken(cpu, 0, fn) }

// RetireToken schedules fn to run once the retirement's era has been
// left behind AND token (if non-zero) is absent from every hazard slot.
// Callers unlink the object first, then retire it with the token its
// readers publish.
func (h *HP) RetireToken(cpu int, token uint64, fn func()) {
	h.retire(cpu, retiredObj{token: token, fn: fn})
}

// RetireObject is the non-closure Retire variant (era protection only,
// token 0): the deferred free is carried as a (reclaimer, obj, idx)
// payload, so the steady-state retire path allocates nothing.
func (h *HP) RetireObject(cpu int, rec gsync.Reclaimer, obj any, idx uint64) {
	h.retire(cpu, retiredObj{rec: rec, obj: obj, idx: idx, cpu: int32(cpu)})
}

func (h *HP) retire(cpu int, entry retiredObj) {
	cs := h.cpu(cpu)
	entry.cookie = h.Snapshot()
	cs.mu.Lock()
	cs.retired = append(cs.retired, entry)
	cs.sinceScan++
	// Inline scans (the classic hazard-pointer reclamation trigger) fire
	// once per ScanThreshold retirements, and only when the list's
	// oldest entry could actually be reclaimed: the list is append-only
	// in cookie order, so a head cookie beyond the current era means
	// every entry is still era-covered and a scan would be a pure
	// O(len) waste — the era advance it is waiting on comes with the
	// driver's own scan.
	scanNow := cs.sinceScan >= h.opts.ScanThreshold &&
		uint64(cs.retired[0].cookie) <= h.eraCounter.Load()
	if scanNow {
		cs.sinceScan = 0
	}
	cs.mu.Unlock()
	cs.seq.Add(1)
	n := h.pending.Add(1)
	if n > h.maxBacklog.Load() {
		h.maxBacklog.Store(n)
	}
	// A backlog past the qhimark means the scans are losing the race
	// against the updaters — escalate so the driver advances and scans
	// at full speed.
	if h.opts.RetireQhimark > 0 && n > int64(h.opts.RetireQhimark) {
		h.ExpediteGP()
	} else {
		h.NeedGP()
	}
	if scanNow {
		h.scan(cpu)
	}
}

// Barrier blocks until every retirement accepted before the call has
// run (or the backend stopped). Entries whose tokens remain protected
// forever would block forever — exactly rcu.Barrier's behaviour against
// a stalled reader.
func (h *HP) Barrier() {
	targets := make([]uint64, len(h.percpu))
	for i, cs := range h.percpu {
		targets[i] = cs.seq.Load()
	}
	for {
		reached := true
		for i, cs := range h.percpu {
			if cs.done.Load() < targets[i] {
				reached = false
				break
			}
		}
		if reached {
			return
		}
		// A blocked barrier is latency-sensitive by definition.
		h.ExpediteGP()
		select {
		case <-h.stop:
			return
		case <-time.After(h.opts.PollInterval):
		}
	}
}

// SetPressure expedites reclamation under memory pressure: every era
// advance scans, and retire thresholds are effectively ignored by the
// driver's scan cadence.
func (h *HP) SetPressure(under bool) {
	h.pressured.Store(under)
	if under {
		h.ExpediteGP()
	}
}

// RetireBacklog returns the number of retired objects not yet
// reclaimed.
func (h *HP) RetireBacklog() int64 { return h.pending.Load() }

// scan is one scan-and-reclaim pass over cpu's retire list: collect
// every published protection once, then free all entries no protection
// covers. The retire-list lock is released before any retired function
// runs.
func (h *HP) scan(cpu int) {
	// Chaos: stall the scan before protections are collected,
	// lengthening retire-list residency without affecting safety.
	//prudence:fault_point
	fault.Sleep(fault.HPScanDelay)

	h.scans.Add(1)
	minEra := h.minPublishedEra()
	era := h.eraCounter.Load()
	protected := make(map[uint64]struct{})
	for _, cs := range h.percpu {
		for i := range cs.slots {
			if t := cs.slots[i].Load(); t != 0 {
				protected[t] = struct{}{}
			}
		}
	}

	cs := h.cpu(cpu)
	cs.mu.Lock()
	cs.sinceScan = 0
	var free, keep []retiredObj
	for _, r := range cs.retired {
		covered := uint64(r.cookie) > era || uint64(r.cookie) > minEra
		if !covered && r.token != 0 {
			_, covered = protected[r.token]
		}
		if covered {
			keep = append(keep, r)
		} else {
			free = append(free, r)
		}
	}
	cs.retired = keep
	cs.mu.Unlock()
	for i := range free {
		free[i].invoke()
	}
	if n := len(free); n > 0 {
		cs.done.Add(uint64(n))
		h.pending.Add(-int64(n))
		h.reclaimed.Add(uint64(n))
	}
}

// scanAll scans every CPU's retire list.
func (h *HP) scanAll() {
	for cpu := range h.percpu {
		h.scan(cpu)
	}
}

// driver advances the era on demand and runs the background scan
// cadence. Unlike ebr's advancer it never waits for stragglers: safety
// lives in the per-entry protection checks, so the era advances freely
// and stalled readers pin only what they cover.
func (h *HP) driver() {
	defer h.wg.Done()
	timer := time.NewTimer(h.opts.AdvanceInterval)
	defer timer.Stop()
	last := time.Now()
	demandStart := last
	demandFresh := false
	for {
		if !h.needGP.Load() {
			select {
			case <-h.stop:
				return
			case <-h.kick:
			case <-timer.C:
				timer.Reset(h.opts.AdvanceInterval)
				// A backlog with no live demand (its NeedGP kick was
				// consumed by a prior advance that could not reclaim
				// everything, e.g. under a still-open critical
				// section) must keep the era moving and the scans
				// coming, or the memory lingers until the next
				// retirement.
				if h.pending.Load() > 0 {
					h.needGP.Store(true)
				}
			}
			if h.needGP.Load() && !demandFresh {
				demandFresh = true
				demandStart = time.Now()
			}
			continue
		}
		if !demandFresh {
			demandFresh = true
			demandStart = time.Now()
		}
		// Pace the advance — unless expedited demand is pending, in
		// which case the gap is skipped (the per-entry protection checks
		// carry safety, never this pacing).
		expedited := false
		for {
			if h.expedite.Load() {
				expedited = true
				break
			}
			gap := time.Since(last)
			if gap >= h.opts.AdvanceInterval {
				break
			}
			select {
			case <-h.stop:
				return
			case <-h.kick:
				// Re-check: the kick may carry expedited demand.
			case <-time.After(h.opts.AdvanceInterval - gap):
			}
		}
		if expedited {
			h.expeditedAdvances.Add(1)
		}
		// Chaos: stall era publication, as the gp_stall point does in
		// the other engines.
		//prudence:fault_point
		if d := fault.FireDelay(fault.GPStall); d > 0 {
			select {
			case <-h.stop:
				return
			case <-time.After(d):
			}
		}
		h.eraCounter.Add(1)
		last = time.Now()
		h.gpHist.Observe(last.Sub(demandStart))
		demandFresh = false
		h.needGP.Store(false)
		h.expedite.Store(false)
		h.scanAll()
	}
}

// RegisterMetrics registers the backend's observability series, keeping
// the shared prudence_gp_* family names so dashboards read identically
// over any scheme.
func (h *HP) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("prudence_gp_completed_total", "Grace periods completed (era advances).",
		func() float64 { return float64(h.GPsCompleted()) })
	reg.RegisterHistogram("prudence_gp_duration_seconds",
		"Latency from grace-period demand to the era advance serving it.", &h.gpHist)
	reg.GaugeFunc("prudence_hp_era", "Current reclamation era.",
		func() float64 { return float64(h.Era()) })
	reg.GaugeFunc("prudence_hp_retire_backlog", "Retired objects awaiting scan-and-reclaim.",
		func() float64 { return float64(h.pending.Load()) })
	reg.CounterFunc("prudence_hp_scans_total", "Scan-and-reclaim passes.",
		func() float64 { return float64(h.scans.Load()) })
	reg.CounterFunc("prudence_hp_reclaimed_total", "Retired objects reclaimed by scans.",
		func() float64 { return float64(h.reclaimed.Load()) })
	reg.CounterFunc("prudence_sync_expedited_advances_total", "Era advances taken on the expedited path (pacing gap skipped on demand).",
		func() float64 { return float64(h.expeditedAdvances.Load()) })
	reg.GaugeFunc("prudence_sync_retire_backlog", "Retired objects enqueued but not yet reclaimed.",
		func() float64 { return float64(h.pending.Load()) })
	reg.GaugeFunc("prudence_sync_retire_backlog_peak", "High-water mark of the retire backlog.",
		func() float64 { return float64(h.maxBacklog.Load()) })
	reg.GaugeFunc("prudence_hp_protected_slots", "Hazard slots currently publishing a token.",
		func() float64 {
			n := 0
			for _, cs := range h.percpu {
				for i := range cs.slots {
					if cs.slots[i].Load() != 0 {
						n++
					}
				}
			}
			return float64(n)
		})
}
