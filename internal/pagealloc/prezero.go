package pagealloc

import (
	"sync/atomic"

	"prudence/internal/fault"
	"prudence/internal/view"
)

// IdleScheduler dispatches work to per-vCPU idle workers. It is
// satisfied by vcpu.Machine; pagealloc only needs this slice of it.
type IdleScheduler interface {
	NumCPU() int
	ScheduleIdleOn(cpu int, fn func())
}

// Zeroer launders dirty free blocks back into the allocator's
// known-zero pool using idle vCPU time, so slab growth can skip its
// memset (the dominant cost of a grow, §3.3). This mirrors Prudence's
// procrastination theme: the zeroing work is still done — it is real
// cost, just moved off the allocation hot path into idle cycles.
//
// Protocol: a free of a dirty block pokes the arm hook. The first poke
// wins an armed CAS and schedules one idle item; each item zeroes at
// most one block (the largest dirty one) and reschedules itself on the
// next vCPU round-robin until no dirty block remains, then disarms.
// After disarming it re-checks for dirty blocks and re-arms if a free
// raced with the scan, so no dirty block is ever stranded.
type Zeroer struct {
	a       *Allocator
	sched   IdleScheduler
	armed   atomic.Bool
	nextCPU atomic.Uint32
}

// StartPreZero attaches idle-time pre-zeroing to a. Blocks already
// dirty at attach time are picked up immediately.
func StartPreZero(a *Allocator, sched IdleScheduler) *Zeroer {
	z := &Zeroer{a: a, sched: sched}
	hook := func() { z.arm() }
	a.onDirtyFree.Store(&hook)
	z.arm()
	return z
}

// Stop detaches the zeroer from the allocator. Already-scheduled idle
// items finish their current block and stop rescheduling.
func (z *Zeroer) Stop() {
	z.a.onDirtyFree.Store(nil)
}

func (z *Zeroer) arm() {
	if !z.armed.CompareAndSwap(false, true) {
		return // an idle worker is already draining
	}
	z.schedule()
}

func (z *Zeroer) schedule() {
	cpu := int(z.nextCPU.Add(1)-1) % z.sched.NumCPU()
	z.sched.ScheduleIdleOn(cpu, z.run)
}

// run is one idle-queue item: launder one block, then reschedule.
func (z *Zeroer) run() {
	if z.a.onDirtyFree.Load() == nil {
		z.armed.Store(false)
		return // stopped
	}
	// Chaos: delay before checking out a block (starves the zero pool)…
	//prudence:fault_point
	fault.Sleep(fault.PageZeroDelay)
	r, ok := z.a.takeDirty()
	if !ok {
		z.disarm()
		return
	}
	// …and stall while one is checked out, widening the zeroInFlight
	// window that alloc's bounded wait must survive.
	//prudence:fault_point
	fault.Sleep(fault.PageZeroStall)
	view.Zero(z.a.Bytes(r))
	z.a.reinsertZeroed(r)
	z.schedule()
}

func (z *Zeroer) disarm() {
	z.armed.Store(false)
	// A free may have inserted a dirty block after takeDirty's scan but
	// before the store above; its arm() lost the CAS and did nothing.
	// Re-check so that block is not stranded until the next free.
	if z.a.hasDirty() {
		z.arm()
	}
}
