package pagealloc

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prudence/internal/memarena"
	"prudence/internal/vcpu"
)

// Zeroed-state bookkeeping, no machine needed: seeds are zeroed, splits
// inherit the parent's state, a freed block is dirty, and a merge of a
// zeroed half with a dirty half is dirty.
func TestZeroStateTracking(t *testing.T) {
	a := newAlloc(8) // one order-3 seed block, known zero
	if z := a.ZeroedBlockCounts(); z[3] != 1 {
		t.Fatalf("seed not zeroed: %v", z)
	}
	r, zeroed, err := a.AllocZeroed(0)
	if err != nil || !zeroed {
		t.Fatalf("AllocZeroed from fresh arena: zeroed=%v err=%v", zeroed, err)
	}
	if got := a.Stats().ZeroHits; got != 1 {
		t.Fatalf("ZeroHits = %d, want 1", got)
	}
	// The split remainders (orders 0,1,2) must all still be known zero.
	z := a.ZeroedBlockCounts()
	if z[0] != 1 || z[1] != 1 || z[2] != 1 {
		t.Fatalf("split remainders lost zeroed state: %v", z)
	}
	// Freeing makes the block dirty, and coalescing it into its zeroed
	// buddies taints the merged block.
	a.Free(r)
	z = a.ZeroedBlockCounts()
	c := a.FreeBlockCounts()
	if c[3] != 1 || z[3] != 0 {
		t.Fatalf("after dirty free: counts=%v zeroed=%v, want one dirty order-3 block", c, z)
	}
}

// At the same order, plain Alloc prefers dirty blocks (conserving the
// zero pool for AllocZeroed callers) and AllocZeroed prefers zeroed.
func TestAllocPrefersDirty(t *testing.T) {
	a := newAlloc(4)
	var runs [4]Run
	for i := range runs {
		runs[i], _ = a.Alloc(0)
	}
	// Free pages whose buddies stay allocated, so nothing coalesces:
	// order 0 now holds two dirty blocks.
	a.Free(runs[1])
	a.Free(runs[3])
	// Launder one of them, as the idle zeroer would.
	taken, ok := a.takeDirty()
	if !ok {
		t.Fatal("takeDirty found nothing")
	}
	a.reinsertZeroed(taken)

	got, zeroed, err := a.AllocZeroed(0)
	if err != nil || !zeroed || got.Start != taken.Start {
		t.Fatalf("AllocZeroed = %v zeroed=%v err=%v, want the laundered block %v", got, zeroed, err, taken)
	}
	a.Free(got)
	// One dirty and one (just-freed, also dirty) block remain; both
	// Alloc results must be dirty-pool blocks, i.e. no zero hits.
	before := a.Stats().ZeroHits
	if _, err := a.Alloc(0); err != nil {
		t.Fatal(err)
	}
	if a.Stats().ZeroHits != before {
		t.Fatal("plain Alloc consumed a zero hit")
	}
}

// While a block is checked out for idle zeroing, allocation must wait
// for it rather than reporting a spurious OOM.
func TestZeroInFlightBlocksSpuriousOOM(t *testing.T) {
	a := newAlloc(1)
	r, _ := a.Alloc(0)
	a.Free(r) // the only block, now dirty
	taken, ok := a.takeDirty()
	if !ok {
		t.Fatal("takeDirty found nothing")
	}
	done := make(chan Run)
	go func() {
		got, err := a.Alloc(0) // must retry until reinsert, not OOM
		if err != nil {
			t.Error(err)
		}
		done <- got
	}()
	time.Sleep(2 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Alloc completed while the only block was in flight")
	default:
	}
	a.reinsertZeroed(taken)
	got := <-done
	if a.Stats().Failures != 0 {
		t.Fatalf("Failures = %d, want 0", a.Stats().Failures)
	}
	a.Free(got)
}

// End to end with real idle workers: dirty frees are laundered back to
// the zero pool, and the laundered memory is actually zero.
func TestPreZeroLaunders(t *testing.T) {
	arena := memarena.New(16)
	defer arena.Close()
	a := New(arena)
	m := vcpu.NewMachine(2)
	defer m.Stop()
	z := StartPreZero(a, m)
	defer z.Stop()

	r, err := a.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Bytes(r)
	for i := range b {
		b[i] = 0xAB
	}
	a.Free(r)

	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().PreZeroed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle workers never zeroed the dirty block")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Everything free must converge back to known zero (the laundered
	// block coalesces with its zeroed neighbours).
	for {
		zc, fc := a.ZeroedBlockCounts(), a.FreeBlockCounts()
		if zc == fc {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dirty blocks remain: counts=%v zeroed=%v", fc, zc)
		}
		time.Sleep(100 * time.Microsecond)
	}
	r2, zeroed, err := a.AllocZeroed(2)
	if err != nil || !zeroed {
		t.Fatalf("AllocZeroed after laundering: zeroed=%v err=%v", zeroed, err)
	}
	for i, v := range a.Bytes(r2) {
		if v != 0 {
			t.Fatalf("byte %d = %#x after laundering, want 0", i, v)
		}
	}
}

// Property test for the sharded allocator under real concurrency: no
// page is ever owned by two live runs (checked with atomic ownership
// claims, so overlap is caught at allocation time, not post hoc), and
// once everything is freed the free lists coalesce back to the initial
// seeding — all while the idle zeroer churns blocks through the
// dirty->zeroed cycle.
func TestPropertyConcurrentNoDoubleAllocAndFullCoalesce(t *testing.T) {
	const pages = 512
	arena := memarena.New(pages)
	defer arena.Close()
	a := New(arena)
	initial := a.FreeBlockCounts()
	m := vcpu.NewMachine(4)
	defer m.Stop()
	z := StartPreZero(a, m)
	defer z.Stop()

	var owner [pages]atomic.Int32
	claim := func(r Run, id int32) {
		for p := r.Start; p < r.Start+r.Pages(); p++ {
			if !owner[p].CompareAndSwap(0, id) {
				t.Errorf("page %d handed to worker %d while owned by %d", p, id, owner[p].Load())
			}
		}
	}
	release := func(r Run) {
		for p := r.Start; p < r.Start+r.Pages(); p++ {
			owner[p].Store(0)
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int32) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			var live []Run
			for i := 0; i < 800; i++ {
				if rng.Intn(2) == 0 || len(live) == 0 {
					order := rng.Intn(4)
					var r Run
					var err error
					if rng.Intn(2) == 0 {
						r, _, err = a.AllocZeroed(order)
					} else {
						r, err = a.Alloc(order)
					}
					if err == nil {
						claim(r, id)
						live = append(live, r)
					}
				} else {
					j := rng.Intn(len(live))
					release(live[j])
					a.Free(live[j])
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			for _, r := range live {
				release(r)
				a.Free(r)
			}
		}(int32(w + 1))
	}
	wg.Wait()

	// In-flight zeroing momentarily holds blocks out of the free lists;
	// wait for the zeroer to go quiet before checking convergence.
	deadline := time.Now().Add(5 * time.Second)
	for a.zeroInFlight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("zeroer never went quiet")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if got := a.FreePages(); got != pages {
		t.Fatalf("FreePages = %d after balanced ops, want %d", got, pages)
	}
	if final := a.FreeBlockCounts(); final != initial {
		t.Fatalf("free lists did not coalesce back:\n  initial %v\n  final   %v", initial, final)
	}
}
