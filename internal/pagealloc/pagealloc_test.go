package pagealloc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"prudence/internal/memarena"
)

func newAlloc(pages int) *Allocator {
	return New(memarena.New(pages))
}

func TestAllocFreeSinglePage(t *testing.T) {
	a := newAlloc(16)
	r, err := a.Alloc(0)
	if err != nil {
		t.Fatalf("Alloc(0): %v", err)
	}
	if r.Pages() != 1 {
		t.Fatalf("Pages() = %d, want 1", r.Pages())
	}
	if got := a.FreePages(); got != 15 {
		t.Fatalf("FreePages() = %d, want 15", got)
	}
	if got := a.Arena().UsedPages(); got != 1 {
		t.Fatalf("arena UsedPages() = %d, want 1", got)
	}
	a.Free(r)
	if got := a.FreePages(); got != 16 {
		t.Fatalf("FreePages() after free = %d, want 16", got)
	}
	if got := a.Arena().UsedPages(); got != 0 {
		t.Fatalf("arena UsedPages() after free = %d, want 0", got)
	}
}

func TestAllocOrderBounds(t *testing.T) {
	a := newAlloc(16)
	if _, err := a.Alloc(-1); err == nil {
		t.Error("Alloc(-1) succeeded")
	}
	if _, err := a.Alloc(MaxOrder + 1); err == nil {
		t.Errorf("Alloc(%d) succeeded", MaxOrder+1)
	}
}

func TestExhaustionReturnsOOM(t *testing.T) {
	a := newAlloc(4)
	var runs []Run
	for i := 0; i < 4; i++ {
		r, err := a.Alloc(0)
		if err != nil {
			t.Fatalf("Alloc #%d: %v", i, err)
		}
		runs = append(runs, r)
	}
	if _, err := a.Alloc(0); err != ErrOutOfMemory {
		t.Fatalf("Alloc on empty = %v, want ErrOutOfMemory", err)
	}
	if got := a.Stats().Failures; got != 1 {
		t.Fatalf("Failures = %d, want 1", got)
	}
	for _, r := range runs {
		a.Free(r)
	}
	if _, err := a.Alloc(2); err != nil {
		t.Fatalf("Alloc(2) after coalescing frees: %v", err)
	}
}

func TestSplitAndCoalesce(t *testing.T) {
	a := newAlloc(8) // seeds one order-3 block
	r0, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	// One order-3 block split into order-0: 3 splits.
	if got := a.Stats().Splits; got != 3 {
		t.Fatalf("Splits = %d, want 3", got)
	}
	a.Free(r0)
	if got := a.Stats().Coalesces; got != 3 {
		t.Fatalf("Coalesces = %d, want 3", got)
	}
	counts := a.FreeBlockCounts()
	if counts[3] != 1 {
		t.Fatalf("after full coalesce FreeBlockCounts = %v, want single order-3 block", counts)
	}
}

func TestNonPowerOfTwoArenaSeeding(t *testing.T) {
	a := newAlloc(13) // 8 + 4 + 1
	counts := a.FreeBlockCounts()
	if counts[3] != 1 || counts[2] != 1 || counts[0] != 1 {
		t.Fatalf("FreeBlockCounts = %v, want blocks at orders 3,2,0", counts)
	}
	if got := a.FreePages(); got != 13 {
		t.Fatalf("FreePages = %d, want 13", got)
	}
}

func TestDoubleFreeReturnsError(t *testing.T) {
	a := newAlloc(8)
	r, _ := a.Alloc(1)
	if err := a.Free(r); err != nil {
		t.Fatalf("first free: %v", err)
	}
	if err := a.Free(r); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free err = %v, want ErrDoubleFree", err)
	}
	if got := a.Stats().BadFrees; got != 1 {
		t.Fatalf("BadFrees = %d, want 1", got)
	}
	// The rejected free must not corrupt accounting: the block is still
	// free exactly once.
	if got := a.FreePages(); got != 8 {
		t.Fatalf("FreePages = %d, want 8", got)
	}
}

func TestWrongOrderFreeReturnsError(t *testing.T) {
	a := newAlloc(8)
	r, _ := a.Alloc(1)
	if err := a.Free(Run{Start: r.Start, Order: 0}); !errors.Is(err, ErrWrongOrder) {
		t.Fatalf("wrong-order err = %v, want ErrWrongOrder", err)
	}
	if got := a.Stats().BadFrees; got != 1 {
		t.Fatalf("BadFrees = %d, want 1", got)
	}
	if err := a.Free(r); err != nil {
		t.Fatalf("correct free after rejected one: %v", err)
	}
}

func TestDoubleFreePanicsUnderDebug(t *testing.T) {
	a := newAlloc(8)
	a.SetDebugPanic(true)
	r, _ := a.Alloc(1)
	a.Free(r)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	a.Free(r)
}

func TestWrongOrderFreePanicsUnderDebug(t *testing.T) {
	a := newAlloc(8)
	a.SetDebugPanic(true)
	r, _ := a.Alloc(1)
	defer func() {
		if recover() == nil {
			t.Error("wrong-order free did not panic")
		}
	}()
	a.Free(Run{Start: r.Start, Order: 0})
}

func TestBytesLength(t *testing.T) {
	a := newAlloc(8)
	r, _ := a.Alloc(2)
	b := a.Bytes(r)
	if len(b) != 4*memarena.PageSize {
		t.Fatalf("Bytes len = %d, want %d", len(b), 4*memarena.PageSize)
	}
}

func TestNoOverlapAmongAllocations(t *testing.T) {
	a := newAlloc(64)
	owned := map[int]bool{}
	var runs []Run
	for {
		r, err := a.Alloc(1)
		if err != nil {
			break
		}
		for p := r.Start; p < r.Start+r.Pages(); p++ {
			if owned[p] {
				t.Fatalf("page %d handed out twice", p)
			}
			owned[p] = true
		}
		runs = append(runs, r)
	}
	if len(runs) != 32 {
		t.Fatalf("allocated %d order-1 runs from 64 pages, want 32", len(runs))
	}
	for _, r := range runs {
		a.Free(r)
	}
}

func TestPressureNotification(t *testing.T) {
	a := newAlloc(8)
	var mu sync.Mutex
	var events []bool
	a.OnPressure(func(under bool) {
		mu.Lock()
		events = append(events, under)
		mu.Unlock()
	})
	a.SetPressureWatermark(4)
	r1, _ := a.Alloc(2) // 4 used -> pressure
	if !a.UnderPressure() {
		t.Fatal("expected pressure at watermark")
	}
	a.Free(r1) // 0 used -> relief
	if a.UnderPressure() {
		t.Fatal("expected no pressure after free")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || events[0] != true || events[1] != false {
		t.Fatalf("pressure events = %v, want [true false]", events)
	}
}

// Property: any sequence of allocations followed by freeing everything
// restores the allocator to a fully coalesced initial state.
func TestPropertyFullCoalesceAfterRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := newAlloc(128) // one order-7... seeded as 1x64, 1x32, ... per greedy; 128 = 2^7 but MaxOrder=10 so single block of order 7
		initial := a.FreeBlockCounts()
		var live []Run
		for i := 0; i < 200; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				r, err := a.Alloc(rng.Intn(4))
				if err == nil {
					live = append(live, r)
				}
			} else {
				i := rng.Intn(len(live))
				a.Free(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, r := range live {
			a.Free(r)
		}
		if a.FreePages() != 128 || a.Arena().UsedPages() != 0 {
			return false
		}
		final := a.FreeBlockCounts()
		return final == initial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct live runs never overlap, across random op sequences.
func TestPropertyNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := newAlloc(96)
		var live []Run
		for i := 0; i < 150; i++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				if r, err := a.Alloc(rng.Intn(3)); err == nil {
					live = append(live, r)
				}
			} else {
				i := rng.Intn(len(live))
				a.Free(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			seen := map[int]bool{}
			for _, r := range live {
				for p := r.Start; p < r.Start+r.Pages(); p++ {
					if seen[p] {
						return false
					}
					seen[p] = true
				}
			}
		}
		for _, r := range live {
			a.Free(r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a := newAlloc(256)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var live []Run
			for i := 0; i < 500; i++ {
				if rng.Intn(2) == 0 || len(live) == 0 {
					if r, err := a.Alloc(rng.Intn(3)); err == nil {
						live = append(live, r)
					}
				} else {
					i := rng.Intn(len(live))
					a.Free(live[i])
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			for _, r := range live {
				a.Free(r)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := a.FreePages(); got != 256 {
		t.Fatalf("FreePages = %d after balanced concurrent ops, want 256", got)
	}
}
