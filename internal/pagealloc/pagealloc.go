// Package pagealloc implements a binary buddy page allocator over a
// memarena.Arena.
//
// It is the analogue of the Linux buddy page allocator that SLUB and
// Prudence grow slabs from and shrink slabs back to. Allocations are in
// power-of-two page runs ("orders"); freed runs are coalesced with
// their buddies. The allocator exposes a memory-pressure watermark with
// subscriber notification: the RCU callback machinery uses it to
// expedite deferred processing under pressure (as the Linux kernel does,
// observed around the 70 s mark of the paper's Figure 3), and Prudence
// uses it to decide when the OOM path should wait for a grace period.
package pagealloc

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"prudence/internal/memarena"
	"prudence/internal/metrics"
)

// MaxOrder is the largest supported allocation order: a single
// allocation can span at most 2^MaxOrder pages (matching the Linux
// default MAX_ORDER-1 = 10, i.e. 4 MiB runs of 4 KiB pages).
const MaxOrder = 10

// ErrOutOfMemory is returned when no page run of the requested order can
// be assembled.
var ErrOutOfMemory = errors.New("pagealloc: out of memory")

// Run identifies an allocated run of 2^Order contiguous pages starting
// at page Start.
type Run struct {
	Start int
	Order int
}

// Pages returns the number of pages in the run.
func (r Run) Pages() int { return 1 << r.Order }

// Stats counts allocator activity since construction.
type Stats struct {
	Allocs    uint64 // successful allocations
	Frees     uint64 // frees
	Splits    uint64 // buddy splits performed
	Coalesces uint64 // buddy merges performed
	Failures  uint64 // allocations that returned ErrOutOfMemory
}

// Allocator is a binary buddy allocator. It is safe for concurrent use.
type Allocator struct {
	arena *memarena.Arena

	mu        sync.Mutex
	free      [MaxOrder + 1]map[int]struct{} // start page -> member, per order
	blockOrd  map[int]int                    // start page of allocated block -> order
	freePages int
	stats     Stats

	pressureAt  int // used-page watermark above which pressure holds
	underPress  bool
	pressureSub []func(under bool)
}

// New creates a buddy allocator managing all frames of arena.
//
// The arena size does not have to be a power of two: the allocator seeds
// its free lists with the largest aligned power-of-two blocks that fit,
// exactly as physical memory banks are carved into MAX_ORDER blocks.
func New(arena *memarena.Arena) *Allocator {
	a := &Allocator{
		arena:      arena,
		blockOrd:   make(map[int]int),
		pressureAt: arena.Pages(), // pressure disabled until configured
	}
	for o := range a.free {
		a.free[o] = make(map[int]struct{})
	}
	// Seed free lists greedily with maximal aligned blocks.
	page := 0
	remaining := arena.Pages()
	for remaining > 0 {
		o := MaxOrder
		for o > 0 && ((1<<o) > remaining || page%(1<<o) != 0) {
			o--
		}
		a.free[o][page] = struct{}{}
		page += 1 << o
		remaining -= 1 << o
	}
	a.freePages = arena.Pages()
	return a
}

// Arena returns the underlying arena.
func (a *Allocator) Arena() *memarena.Arena { return a.arena }

// FreePages returns the number of pages currently free.
func (a *Allocator) FreePages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.freePages
}

// Stats returns a snapshot of the allocator's counters.
func (a *Allocator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// SetPressureWatermark configures the used-page count at or above which
// the allocator reports memory pressure. Subscribers are notified on
// every transition. Setting the watermark to arena.Pages() (the default)
// effectively disables pressure reporting.
func (a *Allocator) SetPressureWatermark(usedPages int) {
	a.mu.Lock()
	a.pressureAt = usedPages
	a.mu.Unlock()
	a.checkPressure()
}

// OnPressure registers fn to be called with true when the system enters
// memory pressure and false when it leaves. fn runs synchronously under
// allocation/free paths and must be fast.
func (a *Allocator) OnPressure(fn func(under bool)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pressureSub = append(a.pressureSub, fn)
}

// UnderPressure reports whether used pages are at or above the
// watermark.
func (a *Allocator) UnderPressure() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.underPress
}

// Alloc allocates a run of 2^order contiguous pages.
func (a *Allocator) Alloc(order int) (Run, error) {
	if order < 0 || order > MaxOrder {
		return Run{}, fmt.Errorf("pagealloc: order %d out of range [0,%d]", order, MaxOrder)
	}
	a.mu.Lock()
	// Find the smallest order >= requested with a free block.
	o := order
	for o <= MaxOrder && len(a.free[o]) == 0 {
		o++
	}
	if o > MaxOrder {
		a.stats.Failures++
		a.mu.Unlock()
		return Run{}, ErrOutOfMemory
	}
	var start int
	for s := range a.free[o] {
		start = s
		break
	}
	delete(a.free[o], start)
	// Split down to the requested order, returning upper halves.
	for o > order {
		o--
		a.stats.Splits++
		buddy := start + (1 << o)
		a.free[o][buddy] = struct{}{}
	}
	a.blockOrd[start] = order
	a.freePages -= 1 << order
	a.stats.Allocs++
	a.mu.Unlock()

	a.arena.Acquire(1 << order)
	a.checkPressure()
	return Run{Start: start, Order: order}, nil
}

// Free returns a run obtained from Alloc. Double frees and frees of
// never-allocated runs panic: they are bugs in the slab layer, which is
// the only client.
func (a *Allocator) Free(r Run) {
	a.mu.Lock()
	order, ok := a.blockOrd[r.Start]
	if !ok {
		a.mu.Unlock()
		panic(fmt.Sprintf("pagealloc: free of non-allocated run starting at %d", r.Start))
	}
	if order != r.Order {
		a.mu.Unlock()
		panic(fmt.Sprintf("pagealloc: free of run at %d with order %d, allocated as order %d", r.Start, r.Order, order))
	}
	delete(a.blockOrd, r.Start)
	// Coalesce with free buddies as far as possible.
	start, o := r.Start, r.Order
	for o < MaxOrder {
		buddy := start ^ (1 << o)
		if _, free := a.free[o][buddy]; !free {
			break
		}
		delete(a.free[o], buddy)
		a.stats.Coalesces++
		if buddy < start {
			start = buddy
		}
		o++
	}
	a.free[o][start] = struct{}{}
	a.freePages += 1 << r.Order
	a.stats.Frees++
	a.mu.Unlock()

	a.arena.Release(1 << r.Order)
	a.checkPressure()
}

// Bytes returns the backing memory of the run.
func (a *Allocator) Bytes(r Run) []byte {
	return a.arena.Range(r.Start, r.Pages())
}

func (a *Allocator) checkPressure() {
	used := a.arena.UsedPages()
	a.mu.Lock()
	under := used >= a.pressureAt
	changed := under != a.underPress
	a.underPress = under
	subs := a.pressureSub
	a.mu.Unlock()
	if !changed {
		return
	}
	for _, fn := range subs {
		fn(under)
	}
}

// RegisterMetrics registers the buddy allocator's occupancy gauges and
// activity counters. All series are func-backed reads of state the
// allocator already maintains, so scraping is the only cost.
func (a *Allocator) RegisterMetrics(r *metrics.Registry) {
	r.GaugeFunc("prudence_pages_free", "Pages currently free in the buddy allocator.",
		func() float64 { return float64(a.FreePages()) })
	r.GaugeFunc("prudence_pages_used", "Pages currently allocated from the arena.",
		func() float64 { return float64(a.arena.UsedPages()) })
	r.CounterFunc("prudence_page_allocs_total", "Successful page-run allocations.",
		func() float64 { return float64(a.Stats().Allocs) })
	r.CounterFunc("prudence_page_frees_total", "Page-run frees.",
		func() float64 { return float64(a.Stats().Frees) })
	r.CounterFunc("prudence_page_splits_total", "Buddy splits performed.",
		func() float64 { return float64(a.Stats().Splits) })
	r.CounterFunc("prudence_page_coalesces_total", "Buddy merges performed.",
		func() float64 { return float64(a.Stats().Coalesces) })
	r.CounterFunc("prudence_page_alloc_failures_total", "Allocations that returned out-of-memory.",
		func() float64 { return float64(a.Stats().Failures) })
	r.CollectGauges("prudence_pages_free_blocks", "Free blocks per buddy order.",
		func(emit metrics.Emit) {
			counts := a.FreeBlockCounts()
			for o, n := range counts {
				emit(float64(n), metrics.L("order", strconv.Itoa(o)))
			}
		})
}

// FreeBlockCounts returns, for each order, how many free blocks exist.
// It is used by tests and by the fragmentation report.
func (a *Allocator) FreeBlockCounts() [MaxOrder + 1]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out [MaxOrder + 1]int
	for o := range a.free {
		out[o] = len(a.free[o])
	}
	return out
}
