// Package pagealloc implements a binary buddy page allocator over a
// memarena.Arena.
//
// It is the analogue of the Linux buddy page allocator that SLUB and
// Prudence grow slabs from and shrink slabs back to. Allocations are in
// power-of-two page runs ("orders"); freed runs are coalesced with
// their buddies. The allocator exposes a memory-pressure watermark with
// subscriber notification: the RCU callback machinery uses it to
// expedite deferred processing under pressure (as the Linux kernel does,
// observed around the 70 s mark of the paper's Figure 3), and Prudence
// uses it to decide when the OOM path should wait for a grace period.
//
// Two scalability mechanisms keep slab grow/shrink off a single global
// lock:
//
//   - The free lists are sharded by order group (orders 0-3, 4-6,
//     7-10), each group under its own lock. Allocations and frees that
//     stay within one group — the overwhelming majority, since slab
//     orders cluster at the low end — touch one lock. Split and
//     coalesce escalate across groups by acquiring group locks in
//     strictly ascending order, so cross-shard paths are deadlock-free
//     without a global fallback lock.
//   - Every free block is tracked as known-zero or dirty. Freshly
//     seeded arena memory is zero; blocks freed by the slab layer are
//     dirty; an idle-time zeroer (see prezero.go) launders dirty blocks
//     back to the zero pool. AllocZeroed prefers known-zero blocks so
//     slab growth can skip its dominant memset cost (§3.3's 14x
//     grow-vs-hit ratio), while plain Alloc prefers dirty blocks to
//     conserve the zero pool.
package pagealloc

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prudence/internal/fault"
	"prudence/internal/memarena"
	"prudence/internal/metrics"
)

// MaxOrder is the largest supported allocation order: a single
// allocation can span at most 2^MaxOrder pages (matching the Linux
// default MAX_ORDER-1 = 10, i.e. 4 MiB runs of 4 KiB pages).
const MaxOrder = 10

// numShards is the number of order-group shards. Slab allocations
// cluster in orders 0-3, so that group gets its own lock; mid and max
// orders (buddy escalation targets) get the other two.
const numShards = 3

// groupMax[g] is the highest order belonging to shard g.
var groupMax = [numShards]int{3, 6, MaxOrder}

// groupOf maps an order to its shard index.
func groupOf(order int) int {
	switch {
	case order <= 3:
		return 0
	case order <= 6:
		return 1
	default:
		return 2
	}
}

// ErrOutOfMemory is returned when no page run of the requested order can
// be assembled.
var ErrOutOfMemory = errors.New("pagealloc: out of memory")

// ErrDoubleFree is returned by Free for a run that is not currently
// allocated: a double free, or a free of a never-allocated run.
var ErrDoubleFree = errors.New("pagealloc: free of non-allocated run")

// ErrWrongOrder is returned by Free when the run's order does not match
// the order it was allocated with.
var ErrWrongOrder = errors.New("pagealloc: free with mismatched order")

// Run identifies an allocated run of 2^Order contiguous pages starting
// at page Start.
type Run struct {
	Start int
	Order int
}

// Pages returns the number of pages in the run.
func (r Run) Pages() int { return 1 << r.Order }

// Stats counts allocator activity since construction.
type Stats struct {
	Allocs    uint64 // successful allocations
	Frees     uint64 // frees
	Splits    uint64 // buddy splits performed
	Coalesces uint64 // buddy merges performed
	Failures  uint64 // allocations that returned ErrOutOfMemory
	PreZeroed uint64 // dirty free blocks laundered to zero by idle workers
	ZeroHits  uint64 // AllocZeroed calls served from the known-zero pool
	BadFrees  uint64 // frees rejected as double-free or wrong-order
}

// shard is one order group's lock plus the allocated-block index for
// runs allocated at this group's orders. Padded so the shards in the
// array do not false-share (128 bytes covers the adjacent-line
// prefetcher's pairs).
//
// The rank sits below slabcore.Node (20) deliberately: taking a buddy
// shard lock while holding a node lock is the contract violation the
// paper's design rules out (page allocation must never run under the
// node list lock), and lockorder flags it.
//
//prudence:lockorder 15 spin
//prudence:padded 128
type shard struct {
	mu sync.Mutex
	// blockOrd maps start page of an allocated block to its order.
	//prudence:guarded_by shard
	blockOrd map[int]int
	_        [112]byte
}

// freeList is one order's free blocks, split by content state. Guarded
// by shards[groupOf(order)].mu.
type freeList struct {
	// dirty holds start pages of free blocks with unknown content.
	//prudence:guarded_by shard
	dirty map[int]struct{}
	// zeroed holds start pages of free blocks known to be all-zero.
	//prudence:guarded_by shard
	zeroed map[int]struct{}
}

// Allocator is a binary buddy allocator. It is safe for concurrent use.
type Allocator struct {
	arena *memarena.Arena

	shards [numShards]shard
	// lists[o] is guarded by shards[groupOf(o)].mu.
	//prudence:guarded_by shard
	lists [MaxOrder + 1]freeList

	freePages atomic.Int64
	allocs    atomic.Uint64
	frees     atomic.Uint64
	splits    atomic.Uint64
	coalesces atomic.Uint64
	failures  atomic.Uint64
	preZeroed atomic.Uint64
	zeroHits  atomic.Uint64
	badFrees  atomic.Uint64

	// debugPanic restores the pre-error-API behavior of panicking on
	// double-free / wrong-order frees, for debug builds and tests that
	// want bugs loud rather than degraded.
	debugPanic atomic.Bool

	// zeroInFlight counts blocks temporarily absent from the free lists
	// while an idle worker zeroes them. The OOM decision consults it:
	// such blocks are still free memory and will reappear, so Alloc
	// retries instead of failing while any are outstanding.
	zeroInFlight atomic.Int32

	// onDirtyFree, when set, is invoked (outside all locks) after a free
	// inserts a dirty block — the pre-zeroing arm hook.
	onDirtyFree atomic.Pointer[func()]

	//prudence:lockorder 60
	pressMu sync.Mutex
	// pressureAt is the used-page watermark above which pressure holds.
	//prudence:guarded_by pressMu
	pressureAt int
	//prudence:guarded_by pressMu
	underPress bool
	//prudence:guarded_by pressMu
	pressureSub []func(under bool)
}

// New creates a buddy allocator managing all frames of arena.
//
// The arena size does not have to be a power of two: the allocator seeds
// its free lists with the largest aligned power-of-two blocks that fit,
// exactly as physical memory banks are carved into MAX_ORDER blocks.
// Fresh arena memory is zero (the arena is newly-made Go memory), so
// the seed blocks enter the known-zero pool.
func New(arena *memarena.Arena) *Allocator {
	a := &Allocator{
		arena:      arena,
		pressureAt: arena.Pages(), // pressure disabled until configured
	}
	for g := range a.shards {
		a.shards[g].blockOrd = make(map[int]int)
	}
	for o := range a.lists {
		a.lists[o] = freeList{
			dirty:  make(map[int]struct{}),
			zeroed: make(map[int]struct{}),
		}
	}
	// Seed free lists greedily with maximal aligned blocks.
	page := 0
	remaining := arena.Pages()
	for remaining > 0 {
		o := MaxOrder
		for o > 0 && ((1<<o) > remaining || page%(1<<o) != 0) {
			o--
		}
		a.lists[o].zeroed[page] = struct{}{}
		page += 1 << o
		remaining -= 1 << o
	}
	a.freePages.Store(int64(arena.Pages()))
	return a
}

// Arena returns the underlying arena.
func (a *Allocator) Arena() *memarena.Arena { return a.arena }

// FreePages returns the number of pages currently free (including
// blocks momentarily checked out for idle-time zeroing).
func (a *Allocator) FreePages() int {
	return int(a.freePages.Load())
}

// Stats returns a snapshot of the allocator's counters.
func (a *Allocator) Stats() Stats {
	return Stats{
		Allocs:    a.allocs.Load(),
		Frees:     a.frees.Load(),
		Splits:    a.splits.Load(),
		Coalesces: a.coalesces.Load(),
		Failures:  a.failures.Load(),
		PreZeroed: a.preZeroed.Load(),
		ZeroHits:  a.zeroHits.Load(),
		BadFrees:  a.badFrees.Load(),
	}
}

// SetDebugPanic controls whether invalid frees (double free, wrong
// order) panic instead of returning an error. Off by default: a
// misbehaving caller degrades (the error is counted and returned)
// rather than killing the process.
func (a *Allocator) SetDebugPanic(on bool) { a.debugPanic.Store(on) }

// SetPressureWatermark configures the used-page count at or above which
// the allocator reports memory pressure. Subscribers are notified on
// every transition. Setting the watermark to arena.Pages() (the default)
// effectively disables pressure reporting.
func (a *Allocator) SetPressureWatermark(usedPages int) {
	a.pressMu.Lock()
	a.pressureAt = usedPages
	a.pressMu.Unlock()
	a.checkPressure()
}

// OnPressure registers fn to be called with true when the system enters
// memory pressure and false when it leaves. fn runs synchronously under
// allocation/free paths and must be fast.
func (a *Allocator) OnPressure(fn func(under bool)) {
	a.pressMu.Lock()
	defer a.pressMu.Unlock()
	a.pressureSub = append(a.pressureSub, fn)
}

// UnderPressure reports whether used pages are at or above the
// watermark.
func (a *Allocator) UnderPressure() bool {
	a.pressMu.Lock()
	defer a.pressMu.Unlock()
	return a.underPress
}

// takeFreeAt removes one free block of order o, preferring the zeroed
// or dirty pool per preferZeroed but falling back to the other. Caller
// holds shards[groupOf(o)].mu.
//
//prudence:requires shard
func (a *Allocator) takeFreeAt(o int, preferZeroed bool) (start int, zeroed, ok bool) {
	l := &a.lists[o]
	first, second := l.dirty, l.zeroed
	if preferZeroed {
		first, second = l.zeroed, l.dirty
	}
	if len(first) > 0 {
		for s := range first {
			start = s
			break
		}
		delete(first, start)
		return start, preferZeroed, true
	}
	if len(second) > 0 {
		for s := range second {
			start = s
			break
		}
		delete(second, start)
		return start, !preferZeroed, true
	}
	return 0, false, false
}

// insertFree adds a free block at order o. Caller holds
// shards[groupOf(o)].mu.
//
//prudence:requires shard
func (a *Allocator) insertFree(o, start int, zeroed bool) {
	if zeroed {
		a.lists[o].zeroed[start] = struct{}{}
	} else {
		a.lists[o].dirty[start] = struct{}{}
	}
}

// removeIfFree removes the block at (o, start) from the free lists if
// present, reporting whether it was there and whether it was zeroed.
// Caller holds shards[groupOf(o)].mu.
//
//prudence:requires shard
func (a *Allocator) removeIfFree(o, start int) (zeroed, ok bool) {
	if _, in := a.lists[o].dirty[start]; in {
		delete(a.lists[o].dirty, start)
		return false, true
	}
	if _, in := a.lists[o].zeroed[start]; in {
		delete(a.lists[o].zeroed, start)
		return true, true
	}
	return false, false
}

// lockThrough acquires shard locks (locked, g] in ascending order,
// updating *locked. Lock-order discipline: group locks are only ever
// taken ascending, so split/coalesce escalation across shards cannot
// deadlock against concurrent escalations.
//
//prudence:requires shard
func (a *Allocator) lockThrough(locked *int, g int) {
	for *locked < g {
		*locked++
		a.shards[*locked].mu.Lock()
	}
}

// unlockFrom releases shard locks [g, locked], highest first.
//
//prudence:requires shard
func (a *Allocator) unlockFrom(g, locked int) {
	for i := locked; i >= g; i-- {
		a.shards[i].mu.Unlock()
	}
}

// Alloc allocates a run of 2^order contiguous pages. The content of the
// run is unspecified; it prefers dirty blocks so known-zero blocks stay
// available for AllocZeroed.
func (a *Allocator) Alloc(order int) (Run, error) {
	r, _, err := a.alloc(order, false)
	return r, err
}

// AllocZeroed allocates a run of 2^order contiguous pages, preferring
// the known-zero pool. The boolean reports whether the returned run is
// known to be all-zero, letting the caller skip its own memset.
func (a *Allocator) AllocZeroed(order int) (Run, bool, error) {
	return a.alloc(order, true)
}

// zeroWaitSpins is how many Gosched yields alloc spends waiting for a
// checked-out block before switching to timed sleeps, and zeroWaitMax
// bounds the total wait. A healthy zeroer returns a block in
// microseconds; a stalled one must not convert allocation into a hang.
const (
	zeroWaitSpins = 64
	zeroWaitSleep = 20 * time.Microsecond
	zeroWaitMax   = 50 * time.Millisecond
)

func (a *Allocator) alloc(order int, preferZeroed bool) (Run, bool, error) {
	if order < 0 || order > MaxOrder {
		return Run{}, false, fmt.Errorf("pagealloc: order %d out of range [0,%d]", order, MaxOrder)
	}
	//prudence:fault_point
	if fault.Fire(fault.PageAllocFail) {
		a.failures.Add(1)
		return Run{}, false, ErrOutOfMemory
	}
	var deadline time.Time
	for attempt := 0; ; attempt++ {
		run, zeroed, ok := a.tryAlloc(order, preferZeroed)
		if ok {
			a.allocs.Add(1)
			if zeroed && preferZeroed {
				a.zeroHits.Add(1)
			}
			a.arena.Acquire(1 << order)
			a.checkPressure()
			return run, zeroed, nil
		}
		if a.zeroInFlight.Load() == 0 {
			a.failures.Add(1)
			return Run{}, false, ErrOutOfMemory
		}
		// Free memory exists but is momentarily checked out for idle
		// zeroing; it will be reinserted, so wait for it rather than
		// reporting a spurious OOM. The wait is bounded: a zeroer that
		// never returns its block (stalled, wedged, killed) must surface
		// as an allocation failure, not a hang.
		if attempt < zeroWaitSpins {
			runtime.Gosched()
			continue
		}
		now := time.Now()
		if deadline.IsZero() {
			deadline = now.Add(zeroWaitMax)
		} else if now.After(deadline) {
			a.failures.Add(1)
			return Run{}, false, ErrOutOfMemory
		}
		time.Sleep(zeroWaitSleep)
	}
}

// tryAlloc performs one allocation attempt under the shard locks.
func (a *Allocator) tryAlloc(order int, preferZeroed bool) (Run, bool, bool) {
	g := groupOf(order)
	a.shards[g].mu.Lock()
	locked := g

	// Find the smallest order >= requested with a free block, extending
	// the locked group range as the search escalates.
	var (
		start  int
		zeroed bool
		found  bool
		o      int
	)
	for o = order; o <= MaxOrder; o++ {
		a.lockThrough(&locked, groupOf(o))
		if s, z, ok := a.takeFreeAt(o, preferZeroed); ok {
			start, zeroed, found = s, z, true
			break
		}
	}
	if !found {
		a.unlockFrom(g, locked)
		return Run{}, false, false
	}
	// Split down to the requested order, returning upper halves. The
	// halves of a known-zero block are known zero. All insertion orders
	// lie in [order, o], whose groups are all locked.
	for o > order {
		o--
		a.splits.Add(1)
		a.insertFree(o, start+(1<<o), zeroed)
	}
	a.shards[g].blockOrd[start] = order
	a.freePages.Add(-(1 << order))
	a.unlockFrom(g, locked)
	return Run{Start: start, Order: order}, zeroed, true
}

// coalesceInsert merges the block with free buddies as far as possible
// and inserts the result, escalating shard locks as the merged block's
// order crosses group boundaries. The merged block is zeroed only if
// every constituent was. Caller holds shards[groupOf(order)].mu (and
// nothing higher); *locked tracks the highest group locked and is
// updated as locks are taken.
//
//prudence:requires shard
func (a *Allocator) coalesceInsert(start, order int, zeroed bool, locked *int) {
	o := order
	for o < MaxOrder {
		buddy := start ^ (1 << o)
		z, free := a.removeIfFree(o, buddy)
		if !free {
			break
		}
		a.coalesces.Add(1)
		zeroed = zeroed && z
		if buddy < start {
			start = buddy
		}
		o++
		a.lockThrough(locked, groupOf(o))
	}
	a.insertFree(o, start, zeroed)
}

// Free returns a run obtained from Alloc. Double frees, frees of
// never-allocated runs, and order mismatches are bugs in the slab
// layer (the only client); they are counted and returned as
// ErrDoubleFree / ErrWrongOrder so the caller degrades instead of
// dying — unless SetDebugPanic(true) asked for them loud. The freed
// block is dirty (its content is whatever the slab left); the
// pre-zeroing hook, when attached, is poked so an idle worker can
// launder it.
func (a *Allocator) Free(r Run) error {
	g := groupOf(r.Order)
	a.shards[g].mu.Lock()
	order, ok := a.shards[g].blockOrd[r.Start]
	if !ok {
		a.shards[g].mu.Unlock()
		a.badFrees.Add(1)
		if a.debugPanic.Load() {
			panic(fmt.Sprintf("pagealloc: free of non-allocated run starting at %d", r.Start))
		}
		return fmt.Errorf("%w: start %d", ErrDoubleFree, r.Start)
	}
	if order != r.Order {
		a.shards[g].mu.Unlock()
		a.badFrees.Add(1)
		if a.debugPanic.Load() {
			panic(fmt.Sprintf("pagealloc: free of run at %d with order %d, allocated as order %d", r.Start, r.Order, order))
		}
		return fmt.Errorf("%w: start %d freed as order %d, allocated as order %d", ErrWrongOrder, r.Start, r.Order, order)
	}
	delete(a.shards[g].blockOrd, r.Start)
	locked := g
	a.coalesceInsert(r.Start, r.Order, false, &locked)
	a.freePages.Add(1 << r.Order)
	a.frees.Add(1)
	a.unlockFrom(g, locked)

	a.arena.Release(1 << r.Order)
	a.checkPressure()
	if fn := a.onDirtyFree.Load(); fn != nil {
		(*fn)()
	}
	return nil
}

// takeDirty checks out the largest dirty free block for laundering,
// counting it in zeroInFlight. Used by the idle zeroer; the block MUST
// be returned via reinsertZeroed.
func (a *Allocator) takeDirty() (Run, bool) {
	for g := numShards - 1; g >= 0; g-- {
		a.shards[g].mu.Lock()
		lo := 0
		if g > 0 {
			lo = groupMax[g-1] + 1
		}
		for o := groupMax[g]; o >= lo; o-- {
			if len(a.lists[o].dirty) == 0 {
				continue
			}
			var start int
			for s := range a.lists[o].dirty {
				start = s
				break
			}
			delete(a.lists[o].dirty, start)
			a.zeroInFlight.Add(1)
			a.shards[g].mu.Unlock()
			return Run{Start: start, Order: o}, true
		}
		a.shards[g].mu.Unlock()
	}
	return Run{}, false
}

// hasDirty reports whether any dirty free block exists.
func (a *Allocator) hasDirty() bool {
	for g := 0; g < numShards; g++ {
		a.shards[g].mu.Lock()
		lo := 0
		if g > 0 {
			lo = groupMax[g-1] + 1
		}
		for o := lo; o <= groupMax[g]; o++ {
			if len(a.lists[o].dirty) > 0 {
				a.shards[g].mu.Unlock()
				return true
			}
		}
		a.shards[g].mu.Unlock()
	}
	return false
}

// reinsertZeroed returns a block checked out with takeDirty to the
// free lists as known-zero, coalescing normally (a merge with a dirty
// buddy yields a dirty block — the zeroer will find it again).
func (a *Allocator) reinsertZeroed(r Run) {
	g := groupOf(r.Order)
	a.shards[g].mu.Lock()
	locked := g
	a.coalesceInsert(r.Start, r.Order, true, &locked)
	a.unlockFrom(g, locked)
	a.preZeroed.Add(1)
	a.zeroInFlight.Add(-1)
}

// Bytes returns the backing memory of the run.
func (a *Allocator) Bytes(r Run) []byte {
	return a.arena.Range(r.Start, r.Pages())
}

func (a *Allocator) checkPressure() {
	used := a.arena.UsedPages()
	a.pressMu.Lock()
	under := used >= a.pressureAt
	changed := under != a.underPress
	a.underPress = under
	subs := a.pressureSub
	a.pressMu.Unlock()
	if !changed {
		return
	}
	for _, fn := range subs {
		fn(under)
	}
}

// RegisterMetrics registers the buddy allocator's occupancy gauges and
// activity counters. All series are func-backed reads of state the
// allocator already maintains, so scraping is the only cost.
func (a *Allocator) RegisterMetrics(r *metrics.Registry) {
	r.GaugeFunc("prudence_pages_free", "Pages currently free in the buddy allocator.",
		func() float64 { return float64(a.FreePages()) })
	r.GaugeFunc("prudence_pages_used", "Pages currently allocated from the arena.",
		func() float64 { return float64(a.arena.UsedPages()) })
	r.CounterFunc("prudence_page_allocs_total", "Successful page-run allocations.",
		func() float64 { return float64(a.allocs.Load()) })
	r.CounterFunc("prudence_page_frees_total", "Page-run frees.",
		func() float64 { return float64(a.frees.Load()) })
	r.CounterFunc("prudence_page_splits_total", "Buddy splits performed.",
		func() float64 { return float64(a.splits.Load()) })
	r.CounterFunc("prudence_page_coalesces_total", "Buddy merges performed.",
		func() float64 { return float64(a.coalesces.Load()) })
	r.CounterFunc("prudence_page_alloc_failures_total", "Allocations that returned out-of-memory.",
		func() float64 { return float64(a.failures.Load()) })
	r.CounterFunc("prudence_pages_prezeroed_total", "Dirty free blocks zeroed by idle workers.",
		func() float64 { return float64(a.preZeroed.Load()) })
	r.CounterFunc("prudence_page_zero_hits_total", "Zeroed allocations served from the known-zero pool.",
		func() float64 { return float64(a.zeroHits.Load()) })
	r.CounterFunc("prudence_page_bad_frees_total", "Frees rejected as double-free or wrong-order.",
		func() float64 { return float64(a.badFrees.Load()) })
	r.CollectGauges("prudence_pages_free_blocks", "Free blocks per buddy order.",
		func(emit metrics.Emit) {
			counts := a.FreeBlockCounts()
			for o, n := range counts {
				emit(float64(n), metrics.L("order", strconv.Itoa(o)))
			}
		})
}

// FreeBlockCounts returns, for each order, how many free blocks exist
// (dirty and zeroed combined). It is used by tests and by the
// fragmentation report.
func (a *Allocator) FreeBlockCounts() [MaxOrder + 1]int {
	var out [MaxOrder + 1]int
	for g := 0; g < numShards; g++ {
		a.shards[g].mu.Lock()
		lo := 0
		if g > 0 {
			lo = groupMax[g-1] + 1
		}
		for o := lo; o <= groupMax[g]; o++ {
			out[o] = len(a.lists[o].dirty) + len(a.lists[o].zeroed)
		}
		a.shards[g].mu.Unlock()
	}
	return out
}

// ZeroedBlockCounts returns, for each order, how many known-zero free
// blocks exist. Used by the pre-zeroing tests.
func (a *Allocator) ZeroedBlockCounts() [MaxOrder + 1]int {
	var out [MaxOrder + 1]int
	for g := 0; g < numShards; g++ {
		a.shards[g].mu.Lock()
		lo := 0
		if g > 0 {
			lo = groupMax[g-1] + 1
		}
		for o := lo; o <= groupMax[g]; o++ {
			out[o] = len(a.lists[o].zeroed)
		}
		a.shards[g].mu.Unlock()
	}
	return out
}
