package pagealloc

import (
	"testing"

	"prudence/internal/memarena"
)

// FuzzAllocFree drives the buddy allocator with an arbitrary op tape:
// each byte is an operation (low bit: alloc/free; remaining bits pick
// the order or the victim). Invariants: no overlap among live runs,
// accounting balances, and freeing everything restores full coalescing.
func FuzzAllocFree(f *testing.F) {
	f.Add([]byte{0x00, 0x02, 0x04, 0x01, 0x03})
	f.Add([]byte{0xFF, 0x80, 0x41, 0x00, 0x00, 0x13})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 512 {
			tape = tape[:512]
		}
		a := New(memarena.New(128))
		var live []Run
		for _, b := range tape {
			if b&1 == 0 || len(live) == 0 {
				order := int(b>>1) % 4
				r, err := a.Alloc(order)
				if err != nil {
					continue
				}
				live = append(live, r)
			} else {
				i := int(b>>1) % len(live)
				a.Free(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		// No overlap among live runs.
		owned := map[int]bool{}
		pages := 0
		for _, r := range live {
			for p := r.Start; p < r.Start+r.Pages(); p++ {
				if owned[p] {
					t.Fatalf("page %d owned twice", p)
				}
				owned[p] = true
				pages++
			}
		}
		if got := a.Arena().UsedPages(); got != pages {
			t.Fatalf("arena says %d used, live runs hold %d", got, pages)
		}
		for _, r := range live {
			a.Free(r)
		}
		if a.FreePages() != 128 || a.Arena().UsedPages() != 0 {
			t.Fatalf("not fully restored: free=%d used=%d", a.FreePages(), a.Arena().UsedPages())
		}
	})
}
