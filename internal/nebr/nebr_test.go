package nebr_test

import (
	"sync/atomic"
	"testing"
	"time"

	"prudence/internal/fault"
	"prudence/internal/nebr"
	gsync "prudence/internal/sync"
	"prudence/internal/sync/synctest"
	"prudence/internal/vcpu"
)

var _ gsync.Backend = (*nebr.NEBR)(nil)

func newNEBR(t *testing.T, cpus int, opts nebr.Options) *nebr.NEBR {
	t.Helper()
	m := vcpu.NewMachine(cpus)
	t.Cleanup(m.Stop)
	e := nebr.New(m, opts)
	t.Cleanup(e.Stop)
	return e
}

// The conformance suite runs with neutralization disarmed (bound far
// above any suite hold window), where nebr must behave exactly like
// plain EBR; the tests below then arm it.
func TestConformance(t *testing.T) {
	synctest.Run(t, 4, func(t *testing.T) gsync.Backend {
		m := vcpu.NewMachine(4)
		t.Cleanup(m.Stop)
		return nebr.New(m, nebr.Options{
			AdvanceInterval: 500 * time.Microsecond,
			NeutralizeAfter: time.Minute,
		})
	})
}

// A reader stalled inside a critical section past NeutralizeAfter is
// forcibly unpinned: the grace period completes, retired memory drains,
// and the reader finds the neutralization mark it must restart on.
func TestNeutralizationUnblocksReclamation(t *testing.T) {
	e := newNEBR(t, 2, nebr.Options{
		AdvanceInterval: 200 * time.Microsecond,
		NeutralizeAfter: 2 * time.Millisecond,
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		e.ReadLock(1)
		close(entered)
		<-release // stalled far past NeutralizeAfter
		e.ReadUnlock(1)
		if !e.Neutralized(1) {
			t.Error("stalled reader exited without a neutralization mark")
		}
	}()
	<-entered

	var freed atomic.Bool
	e.Retire(0, func() { freed.Store(true) })
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Synchronize()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Synchronize blocked behind a stalled reader — neutralization never fired")
	}
	if e.Neutralizations() == 0 {
		t.Fatal("grace period completed but no neutralization was recorded")
	}
	e.Barrier()
	if !freed.Load() {
		t.Fatal("retired object not reclaimed after neutralization")
	}
	close(release)
	<-readerDone
}

// A healthy reader — one that exits within the bound — is never
// neutralized, and re-entry clears any stale mark.
func TestHealthyReaderNotNeutralized(t *testing.T) {
	e := newNEBR(t, 2, nebr.Options{
		AdvanceInterval: 200 * time.Microsecond,
		NeutralizeAfter: 30 * time.Second,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			e.ReadLock(1)
			e.ReadUnlock(1)
			if e.Neutralized(1) {
				t.Error("healthy reader neutralized")
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		e.Synchronize()
	}
	<-done
	if e.Neutralizations() != 0 {
		t.Fatalf("%d neutralizations with no stalled readers", e.Neutralizations())
	}
}

// SafeEpoch is min(global epoch, pinned entry epochs - 1): a pinned
// reader holds the frontier at its entry epoch; with no readers the
// frontier is the global epoch itself.
func TestSafeEpoch(t *testing.T) {
	e := newNEBR(t, 2, nebr.Options{
		AdvanceInterval: 200 * time.Microsecond,
		NeutralizeAfter: time.Minute,
	})
	e.Synchronize()
	if got, want := e.SafeEpoch(), e.Epoch(); got != want {
		t.Fatalf("idle SafeEpoch = %d, epoch = %d", got, want)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		e.ReadLock(1)
		close(entered)
		<-release
		e.ReadUnlock(1)
	}()
	<-entered
	pinnedAt := e.SafeEpoch()
	// Epoch advances are blocked by the straggler (neutralization is a
	// minute away), so the frontier must hold at the reader's entry.
	c := e.Snapshot()
	e.WaitElapsedOnTimeout(0, c, 20*time.Millisecond)
	if got := e.SafeEpoch(); got != pinnedAt {
		t.Fatalf("SafeEpoch moved %d -> %d under a pinned reader", pinnedAt, got)
	}
	close(release)
	<-readerDone
	if !e.WaitElapsedOn(0, c) {
		t.Fatal("cookie did not elapse after release")
	}
}

// The nebr_neutralize_lost fault point models a dropped signal: with
// every delivery suppressed, the advancer must keep retrying without
// advancing unsafely — and once the fault clears (Max firings
// exhausted), neutralization goes through and reclamation completes.
func TestNeutralizeSignalLost(t *testing.T) {
	fault.Enable(fault.Config{Seed: 7, Rules: map[fault.Point]fault.Rule{
		fault.NeutralizeLost: {Rate: 1.0, Max: 5},
	}})
	defer fault.Disable()

	e := newNEBR(t, 2, nebr.Options{
		AdvanceInterval: 200 * time.Microsecond,
		PollInterval:    200 * time.Microsecond,
		NeutralizeAfter: time.Millisecond,
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		e.ReadLock(1)
		close(entered)
		<-release
		e.ReadUnlock(1)
		e.Neutralized(1) // consume the mark
	}()
	<-entered

	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Synchronize()
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("Synchronize hung: lost neutralize signals were never retried")
	}
	inj := fault.Current()
	if inj.Fired(fault.NeutralizeLost) == 0 {
		t.Fatal("fault point never fired — test exercised nothing")
	}
	if e.Neutralizations() == 0 {
		t.Fatal("neutralization never went through after the fault cleared")
	}
	close(release)
	<-readerDone
}
