// Package nebr implements a DEBRA+-style neutralizing epoch-based
// reclamation backend (Brown, "Reclaiming memory for lock-free data
// structures: there has to be a better way" — arXiv:1712.01044) behind
// the canonical internal/sync surface.
//
// Plain EBR (internal/ebr) has one famous weakness: a single reader
// stalled inside a critical section pins its entry epoch forever, the
// global epoch can never advance past it, and reclamation stops
// system-wide — unbounded garbage from one bad thread. DEBRA+ repairs
// this with neutralization: when the epoch advance has been blocked
// longer than a bound, the advancer sends the straggler a signal whose
// handler forcibly exits the reader's critical section; the reader
// discovers the neutralization and restarts its operation.
//
// This package reproduces that design on the simulated machine:
//
//   - Epochs, pinning and cookies work exactly as in internal/ebr
//     (cookie = epoch+2; safe epoch = min over pinned CPUs, which the
//     advance protocol keeps within one of the global epoch).
//   - Retired objects live in per-CPU limbo bags stamped with their
//     cookie and drain once the epoch passes it.
//   - When stragglers block an advance for longer than NeutralizeAfter,
//     the advancer delivers a vcpu interrupt (the signal analogue) whose
//     handler CASes the straggler's pin away and marks the CPU
//     neutralized. The reader's next outermost Exit (or Neutralized
//     poll) observes the mark; by DEBRA+'s contract it must restart
//     rather than trust anything it read after the neutralization.
//   - A delivered-but-lost signal (the nebr_neutralize_lost fault
//     point) leaves the straggler pinned; the advancer simply finds it
//     again on the next pass and retries — degraded progress, never
//     unsafety.
package nebr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prudence/internal/fault"
	"prudence/internal/metrics"
	"prudence/internal/stats"
	gsync "prudence/internal/sync"
	"prudence/internal/vcpu"
)

// Options configures the neutralizing epoch engine.
type Options struct {
	// AdvanceInterval is the minimum gap between epoch advances
	// (default 200µs). Two advances make one grace period.
	AdvanceInterval time.Duration
	// PollInterval is how often the advancer re-checks pinned CPUs
	// (default 20µs).
	PollInterval time.Duration
	// NeutralizeAfter is how long an advance may stay blocked on
	// straggler CPUs before they are neutralized (default 10ms — two
	// orders of magnitude above a healthy critical section, so only
	// genuinely stalled readers are ever restarted).
	NeutralizeAfter time.Duration
	// RetireBatch bounds how many retired objects the limbo drainer
	// invokes per burst (default 32); RetireDelay is the pause between
	// bursts (default 0).
	RetireBatch int
	RetireDelay time.Duration
	// RetireExpeditedBatch and RetireQhimark tune the shared retire
	// queue's pressure scaling (see sync.QueueOptions; zero = defaults
	// derived from RetireBatch, RetireQhimark < 0 disables escalation).
	RetireExpeditedBatch int
	RetireQhimark        int
}

func (o Options) withDefaults() Options {
	if o.AdvanceInterval <= 0 {
		o.AdvanceInterval = 200 * time.Microsecond
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 20 * time.Microsecond
	}
	if o.NeutralizeAfter <= 0 {
		o.NeutralizeAfter = 10 * time.Millisecond
	}
	return o
}

func init() {
	gsync.Register("nebr", func(m *vcpu.Machine, o gsync.Options) gsync.Backend {
		return New(m, Options{
			AdvanceInterval:      o.GPInterval / 2,
			PollInterval:         o.PollInterval,
			RetireBatch:          o.RetireBatch,
			RetireDelay:          o.RetireDelay,
			RetireExpeditedBatch: o.ExpeditedBlimit,
			RetireQhimark:        o.Qhimark,
		})
	})
}

type cpuState struct {
	// pinned is 0 when outside any critical section; when inside, it
	// holds 1 + the global epoch observed at entry. The advancer's
	// neutralize handler may CAS it to 0 from under a stalled reader.
	pinned  atomic.Uint64
	nesting int32 // owner-goroutine only
	// neutralized is set by the interrupt handler when the CPU's pin
	// was forcibly cleared; the owner consumes it at the outermost Exit
	// or through Neutralized.
	neutralized atomic.Bool
	// qsCalls counts QuiescentState calls so the hot path can donate
	// its timeslice periodically (see QuiescentState).
	qsCalls atomic.Uint32
}

// NEBR is the neutralizing epoch engine.
type NEBR struct {
	machine *vcpu.Machine
	opts    Options
	percpu  []*cpuState

	epoch  atomic.Uint64 // global epoch counter
	needGP atomic.Bool
	// expedite records expedited demand (ExpediteGP): the advancer skips
	// its pacing gap while set. Cleared with needGP on even advances.
	expedite          atomic.Bool
	expeditedAdvances atomic.Uint64
	gpHist            stats.Histogram // latency of each two-advance grace period
	queue             *gsync.RetireQueue

	neutralizations atomic.Uint64 // interrupts that cleared a pin
	signalsLost     atomic.Uint64 // neutralize signals the fault layer dropped
	restarts        atomic.Uint64 // neutralizations consumed by readers

	// gpMu serializes grace-period waiters with the advancer's
	// broadcast, exactly as in internal/ebr.
	//
	//prudence:lockorder 52
	gpMu   sync.Mutex
	gpCond *sync.Cond
	kick   chan struct{}

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New creates and starts a neutralizing epoch engine for machine. The
// engine installs itself as each CPU's interrupt handler.
func New(machine *vcpu.Machine, opts Options) *NEBR {
	e := &NEBR{
		machine: machine,
		opts:    opts.withDefaults(),
		percpu:  make([]*cpuState, machine.NumCPU()),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	e.gpCond = sync.NewCond(&e.gpMu)
	for i := range e.percpu {
		e.percpu[i] = &cpuState{}
		cpu := i
		machine.SetInterruptOn(cpu, func() { e.neutralize(cpu) })
	}
	e.wg.Add(1)
	go e.advancer()
	e.queue = gsync.NewRetireQueue(e, machine.NumCPU(), gsync.QueueOptions{
		Batch:          e.opts.RetireBatch,
		ExpeditedBatch: e.opts.RetireExpeditedBatch,
		Qhimark:        e.opts.RetireQhimark,
		Delay:          e.opts.RetireDelay,
		Poll:           e.opts.PollInterval,
	})
	return e
}

// Stop shuts the engine down and uninstalls its interrupt handlers.
func (e *NEBR) Stop() {
	e.stopOnce.Do(func() {
		close(e.stop)
		e.wg.Wait()
		e.queue.Stop()
		for i := range e.percpu {
			e.machine.SetInterruptOn(i, nil)
		}
		e.gpMu.Lock()
		e.gpCond.Broadcast()
		e.gpMu.Unlock()
	})
}

// Stopped reports whether Stop has begun.
func (e *NEBR) Stopped() bool {
	select {
	case <-e.stop:
		return true
	default:
		return false
	}
}

func (e *NEBR) cpu(id int) *cpuState {
	if id < 0 || id >= len(e.percpu) {
		panic(fmt.Sprintf("nebr: CPU id %d out of range [0,%d)", id, len(e.percpu)))
	}
	return e.percpu[id]
}

// Epoch returns the current global epoch.
func (e *NEBR) Epoch() uint64 { return e.epoch.Load() }

// SafeEpoch returns DEBRA's reclamation frontier: the minimum over the
// global epoch and every pinned CPU's entry epoch. The advance protocol
// (wait-or-neutralize) keeps it within one of the global epoch; limbo
// entries whose cookie it has passed are reclaimable.
func (e *NEBR) SafeEpoch() uint64 {
	min := e.epoch.Load()
	for _, cs := range e.percpu {
		if p := cs.pinned.Load(); p != 0 && p-1 < min {
			min = p - 1
		}
	}
	return min
}

// ReadLock begins a read-side critical section on cpu, pinning the
// epoch it observes (pin-then-recheck as in internal/ebr). Sections may
// nest. Entering clears any stale neutralization mark: the restart, if
// one was due, is this very re-entry.
func (e *NEBR) ReadLock(cpu int) {
	cs := e.cpu(cpu)
	if cs.nesting == 0 {
		if cs.neutralized.Swap(false) {
			e.restarts.Add(1)
		}
		for {
			cur := e.epoch.Load()
			cs.pinned.Store(1 + cur)
			if e.epoch.Load() == cur {
				break
			}
		}
	}
	cs.nesting++
}

// ReadUnlock ends a read-side critical section on cpu. If the section
// was neutralized mid-flight, the pin is already gone; the mark is left
// for Neutralized (or the next ReadLock) so the reader can learn its
// reads after the neutralization point were unprotected.
func (e *NEBR) ReadUnlock(cpu int) {
	cs := e.cpu(cpu)
	cs.nesting--
	if cs.nesting < 0 {
		panic("nebr: unbalanced ReadUnlock")
	}
	if cs.nesting == 0 {
		// CAS, not Store: racing with the neutralize handler, exactly
		// one of us clears the pin, and a pin the handler cleared must
		// not be resurrected here.
		p := cs.pinned.Load()
		if p != 0 {
			cs.pinned.CompareAndSwap(p, 0)
		}
	}
}

// Neutralized reports and consumes cpu's neutralization mark. A
// DEBRA+-correct reader polls it after finishing a critical section (or
// a lookup built on one) and restarts the operation when it reports
// true, because protection lapsed at some point after entry.
func (e *NEBR) Neutralized(cpu int) bool {
	if e.cpu(cpu).neutralized.Swap(false) {
		e.restarts.Add(1)
		return true
	}
	return false
}

// Held reports whether cpu is inside a critical section.
func (e *NEBR) Held(cpu int) bool { return e.cpu(cpu).nesting > 0 }

// neutralize is the interrupt handler: the signal analogue that knocks
// a straggler's pin loose. It runs in the advancer's goroutine and
// touches only atomics, as a real signal handler must.
func (e *NEBR) neutralize(cpu int) {
	cs := e.cpu(cpu)
	p := cs.pinned.Load()
	if p == 0 {
		return
	}
	// CAS so a racing fresh re-pin (reader exited and re-entered at the
	// current epoch) is never clobbered — it is not a straggler.
	if p-1 < e.epoch.Load() && cs.pinned.CompareAndSwap(p, 0) {
		cs.neutralized.Store(true)
		e.neutralizations.Add(1)
	}
}

// Neutralizations returns how many pins the engine has forcibly
// cleared.
func (e *NEBR) Neutralizations() uint64 { return e.neutralizations.Load() }

// --- grace-period state (cookies in epochs, as in internal/ebr) ---

// Snapshot returns a grace-period cookie (epoch+2: readers pinned at
// the current epoch survive at most one advance).
func (e *NEBR) Snapshot() gsync.Cookie {
	return gsync.Cookie(e.epoch.Load() + 2)
}

// Elapsed reports whether the cookie's grace period has passed. The
// global epoch alone decides: the advance protocol guarantees no CPU
// stays pinned below it — stragglers are waited out or neutralized
// before every advance.
func (e *NEBR) Elapsed(c gsync.Cookie) bool {
	return e.epoch.Load() >= uint64(c)
}

// NeedGP signals demand for epoch advances.
func (e *NEBR) NeedGP() {
	e.needGP.Store(true)
	// Chaos: a lost wakeup drops the kick after demand is recorded; the
	// advancer's timer fallback must recover.
	//prudence:fault_point
	if fault.Fire(fault.LostWakeup) {
		return
	}
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// ExpediteGP raises expedited demand: the next grace period is driven
// with the pacing gap between advances skipped (stragglers are still
// waited out or neutralized — expediting never weakens the safety
// protocol). One-shot: consumed when the advance pair it hastened
// completes.
func (e *NEBR) ExpediteGP() {
	e.expedite.Store(true)
	e.needGP.Store(true)
	// Chaos: as in NeedGP, the recorded demand, not the kick, carries
	// the liveness guarantee.
	//prudence:fault_point
	if fault.Fire(fault.LostWakeup) {
		return
	}
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// GPsCompleted returns completed grace periods (epoch advances halved).
func (e *NEBR) GPsCompleted() uint64 { return e.epoch.Load() / 2 }

// ExpeditedAdvances returns how many epoch advances skipped the pacing
// gap on expedited demand.
func (e *NEBR) ExpeditedAdvances() uint64 { return e.expeditedAdvances.Load() }

// WaitElapsedOn blocks until cookie c elapses.
func (e *NEBR) WaitElapsedOn(cpu int, c gsync.Cookie) bool {
	if e.cpu(cpu).nesting > 0 {
		panic("nebr: WaitElapsedOn inside critical section")
	}
	return e.waitElapsed(c)
}

// WaitElapsedOnTimeout is WaitElapsedOn with a deadline, returning
// false once d passes (or the engine stops) without the cookie
// elapsing. With neutralization armed the wait is doubly bounded: even
// a stalled reader only delays the advance by NeutralizeAfter.
func (e *NEBR) WaitElapsedOnTimeout(cpu int, c gsync.Cookie, d time.Duration) bool {
	if e.cpu(cpu).nesting > 0 {
		panic("nebr: WaitElapsedOnTimeout inside critical section")
	}
	deadline := time.Now().Add(d)
	for !e.Elapsed(c) {
		if time.Now().After(deadline) {
			return e.Elapsed(c)
		}
		// A deadline-bound waiter is starved by definition: expedite.
		e.ExpediteGP()
		select {
		case <-e.stop:
			return e.Elapsed(c)
		case <-time.After(e.opts.PollInterval):
		}
	}
	return true
}

// Synchronize blocks until a full grace period has elapsed.
func (e *NEBR) Synchronize() { e.waitElapsed(e.Snapshot()) }

// SynchronizeOn is Synchronize; the unpinned calling CPU needs no
// special treatment.
func (e *NEBR) SynchronizeOn(cpu int) {
	if e.cpu(cpu).nesting > 0 {
		panic("nebr: SynchronizeOn inside critical section")
	}
	e.Synchronize()
}

func (e *NEBR) waitElapsed(c gsync.Cookie) bool {
	if e.Elapsed(c) {
		return true
	}
	e.ExpediteGP()
	e.gpMu.Lock()
	defer e.gpMu.Unlock()
	for !e.Elapsed(c) {
		select {
		case <-e.stop:
			return e.Elapsed(c)
		default:
		}
		// Re-raise demand on every pass (see internal/ebr: demand is
		// cleared every second advance and a cookie snapshotted at an
		// odd epoch outlives the pair that cleared it). A blocked
		// synchronous waiter is latency-sensitive, so the demand is
		// expedited.
		e.ExpediteGP()
		e.gpCond.Wait()
	}
	return true
}

// Retire schedules fn into cpu's limbo bag, stamped with the current
// cookie; the drainer invokes it once two epoch advances have passed.
func (e *NEBR) Retire(cpu int, fn func()) { e.queue.Retire(cpu, fn) }

// RetireObject is the non-closure Retire variant; the queue carries
// the (reclaimer, obj, idx) payload in the limbo record itself, so the
// steady-state retire path allocates nothing.
func (e *NEBR) RetireObject(cpu int, r gsync.Reclaimer, obj any, idx uint64) {
	e.queue.RetireObject(cpu, r, obj, idx)
}

// Barrier blocks until every retirement accepted before the call has
// run (or the engine stopped).
func (e *NEBR) Barrier() { e.queue.Barrier() }

// SetPressure expedites limbo draining under memory pressure.
func (e *NEBR) SetPressure(under bool) { e.queue.SetPressure(under) }

// RetireBacklog returns the number of retired objects awaiting their
// epoch pair.
func (e *NEBR) RetireBacklog() int64 { return e.queue.Pending() }

// advancer advances the global epoch on demand. Unlike internal/ebr's
// advancer, its straggler wait is bounded: past NeutralizeAfter it
// neutralizes every CPU still pinned below the current epoch and
// proceeds. The advance is therefore delayed by at most the bound plus
// signal delivery — a stalled reader cannot block reclamation forever.
func (e *NEBR) advancer() {
	defer e.wg.Done()
	timer := time.NewTimer(e.opts.AdvanceInterval)
	defer timer.Stop()
	last := time.Now()
	pairStart := last
	for {
		if !e.needGP.Load() {
			select {
			case <-e.stop:
				return
			case <-e.kick:
			case <-timer.C:
				timer.Reset(e.opts.AdvanceInterval)
			}
			continue
		}
		// Pace the advance — unless expedited demand is pending, in
		// which case the gap is skipped (safety rests on the straggler
		// wait below, never on this pacing).
		expedited := false
		for {
			if e.expedite.Load() {
				expedited = true
				break
			}
			gap := time.Since(last)
			if gap >= e.opts.AdvanceInterval {
				break
			}
			select {
			case <-e.stop:
				return
			case <-e.kick:
				// Re-check: the kick may carry expedited demand.
			case <-time.After(e.opts.AdvanceInterval - gap):
			}
		}
		if expedited {
			e.expeditedAdvances.Add(1)
		}
		cur := e.epoch.Load()
		// Wait until no CPU is pinned at an epoch older than cur,
		// neutralizing stragglers once the bound expires.
		waitStart := time.Now()
		for {
			stragglers := false
			for cpu, cs := range e.percpu {
				p := cs.pinned.Load()
				if p == 0 || p-1 >= cur {
					continue
				}
				if time.Since(waitStart) >= e.opts.NeutralizeAfter {
					// Chaos: the neutralize signal is lost in
					// delivery; the straggler stays pinned and the
					// next pass retries. Progress degrades, safety
					// holds.
					//prudence:fault_point
					if fault.Fire(fault.NeutralizeLost) {
						e.signalsLost.Add(1)
					} else {
						e.machine.Interrupt(cpu)
					}
				}
				if cs.pinned.Load() != 0 {
					stragglers = true
				}
			}
			if !stragglers {
				break
			}
			select {
			case <-e.stop:
				return
			case <-time.After(e.opts.PollInterval):
			}
		}
		// Chaos: stall the advance after observing quiescence but
		// before publishing the new epoch (gp_stall, as in rcu/ebr).
		//prudence:fault_point
		if d := fault.FireDelay(fault.GPStall); d > 0 {
			select {
			case <-e.stop:
				return
			case <-time.After(d):
			}
		}
		e.epoch.Store(cur + 1)
		last = time.Now()
		if (cur+1)%2 == 0 {
			e.gpHist.Observe(last.Sub(pairStart))
			e.needGP.Store(false)
			e.expedite.Store(false)
		} else {
			pairStart = last
		}
		e.gpMu.Lock()
		e.gpCond.Broadcast()
		e.gpMu.Unlock()
	}
}

// QuiescentState does not affect epoch tracking (pinning detects reader
// completion), but it periodically donates the caller's timeslice so
// the advancer and drainer goroutines get scheduled even when every
// runnable vCPU spins through allocate/free at GOMAXPROCS=1 — the same
// scheduling donation internal/rcu makes, without which epoch advances
// happen only at preemption quanta and grace periods starve.
func (e *NEBR) QuiescentState(cpu int) {
	if e.cpu(cpu).qsCalls.Add(1)%32 == 0 {
		runtime.Gosched()
	}
}

// EnterIdle is a no-op: an idle CPU is simply one that is not pinned.
func (e *NEBR) EnterIdle(cpu int) {}

// ExitIdle is a no-op, mirroring EnterIdle.
func (e *NEBR) ExitIdle(cpu int) {}

// RegisterMetrics registers the engine's observability series, keeping
// the shared prudence_gp_* family names.
func (e *NEBR) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("prudence_gp_completed_total", "Grace periods completed (epoch advances halved).",
		func() float64 { return float64(e.GPsCompleted()) })
	reg.RegisterHistogram("prudence_gp_duration_seconds",
		"Latency of one grace period (two epoch advances).", &e.gpHist)
	reg.GaugeFunc("prudence_nebr_epoch", "Current global epoch.",
		func() float64 { return float64(e.Epoch()) })
	reg.GaugeFunc("prudence_nebr_safe_epoch", "Reclamation frontier: min over the global epoch and pinned entry epochs.",
		func() float64 { return float64(e.SafeEpoch()) })
	reg.GaugeFunc("prudence_nebr_pinned_cpus", "CPUs currently pinning an epoch.",
		func() float64 {
			n := 0
			for _, cs := range e.percpu {
				if cs.pinned.Load() != 0 {
					n++
				}
			}
			return float64(n)
		})
	reg.CounterFunc("prudence_nebr_neutralizations_total", "Stalled readers forcibly unpinned by the neutralize signal.",
		func() float64 { return float64(e.neutralizations.Load()) })
	reg.CounterFunc("prudence_nebr_neutralize_lost_total", "Neutralize signals dropped by fault injection.",
		func() float64 { return float64(e.signalsLost.Load()) })
	reg.CounterFunc("prudence_nebr_restarts_total", "Neutralization marks consumed by readers (restart points).",
		func() float64 { return float64(e.restarts.Load()) })
	reg.GaugeFunc("prudence_nebr_retire_backlog", "Retired objects awaiting their epoch pair.",
		func() float64 { return float64(e.queue.Pending()) })
	reg.CounterFunc("prudence_sync_expedited_advances_total", "Epoch advances taken on the expedited path (pacing gap skipped on demand).",
		func() float64 { return float64(e.expeditedAdvances.Load()) })
	e.queue.RegisterMetrics(reg)
}
