package vcpu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewMachinePanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMachine(%d) did not panic", n)
				}
			}()
			NewMachine(n)
		}()
	}
}

func TestCPUIdentity(t *testing.T) {
	m := NewMachine(4)
	defer m.Stop()
	if m.NumCPU() != 4 {
		t.Fatalf("NumCPU = %d, want 4", m.NumCPU())
	}
	for i := 0; i < 4; i++ {
		c := m.CPU(i)
		if c.ID() != i {
			t.Errorf("CPU(%d).ID() = %d", i, c.ID())
		}
		if c.Machine() != m {
			t.Errorf("CPU(%d).Machine() mismatch", i)
		}
		if m.CPU(i) != c {
			t.Errorf("CPU(%d) not stable", i)
		}
	}
}

func TestCPUOutOfRangePanics(t *testing.T) {
	m := NewMachine(2)
	defer m.Stop()
	for _, id := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CPU(%d) did not panic", id)
				}
			}()
			m.CPU(id)
		}()
	}
}

func TestRunOnAllVisitsEveryCPUOnce(t *testing.T) {
	m := NewMachine(8)
	defer m.Stop()
	var counts [8]atomic.Int32
	m.RunOnAll(func(c *CPU) {
		counts[c.ID()].Add(1)
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Errorf("CPU %d visited %d times, want 1", i, got)
		}
	}
}

func TestScheduleIdleRunsFIFO(t *testing.T) {
	m := NewMachine(1)
	defer m.Stop()
	c := m.CPU(0)
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	for i := 0; i < 5; i++ {
		i := i
		c.ScheduleIdle(func() {
			mu.Lock()
			order = append(order, i)
			n := len(order)
			mu.Unlock()
			if n == 5 {
				close(done)
			}
		})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("idle work did not complete")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("idle order = %v, want FIFO", order)
		}
	}
}

func TestIdleBusyReflectsQueue(t *testing.T) {
	m := NewMachine(1)
	defer m.Stop()
	c := m.CPU(0)
	if c.IdleBusy() {
		t.Fatal("fresh CPU reports IdleBusy")
	}
	block := make(chan struct{})
	started := make(chan struct{})
	c.ScheduleIdle(func() {
		close(started)
		<-block
	})
	<-started
	if !c.IdleBusy() {
		t.Fatal("IdleBusy false while work is executing")
	}
	close(block)
	deadline := time.After(5 * time.Second)
	for c.IdleBusy() {
		select {
		case <-deadline:
			t.Fatal("IdleBusy never cleared")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestStopIsIdempotentAndDiscardsQueued(t *testing.T) {
	m := NewMachine(2)
	m.Stop()
	m.Stop() // must not panic or deadlock
}

func TestIdleWorkersIndependentAcrossCPUs(t *testing.T) {
	m := NewMachine(2)
	defer m.Stop()
	block := make(chan struct{})
	started0 := make(chan struct{})
	m.CPU(0).ScheduleIdle(func() {
		close(started0)
		<-block
	})
	<-started0
	done1 := make(chan struct{})
	m.CPU(1).ScheduleIdle(func() { close(done1) })
	select {
	case <-done1:
	case <-time.After(5 * time.Second):
		t.Fatal("CPU 1 idle work blocked by CPU 0")
	}
	close(block)
}

func TestIdleWorkerSurvivesPanic(t *testing.T) {
	m := NewMachine(1)
	defer m.Stop()
	c := m.CPU(0)
	c.ScheduleIdle(func() { panic("injected") })
	done := make(chan struct{})
	c.ScheduleIdle(func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("idle worker died after a panicking work item")
	}
}
