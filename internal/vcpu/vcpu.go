// Package vcpu models the machine's CPUs.
//
// Kernel per-CPU data structures (SLUB's per-CPU object caches, RCU's
// per-CPU quiescent-state bookkeeping, Prudence's latent caches) rely on
// code running on a particular CPU with preemption disabled. In this
// reproduction, each virtual CPU is owned by exactly one worker
// goroutine at a time; subsystems index their per-CPU state by CPU ID.
//
// Every CPU also has an idle worker: a goroutine that executes queued
// background work when the owning workload is not issuing calls. It is
// the substitute for the "idleness is not sloth" idle-time processing
// the paper borrows for latent cache pre-flush (§4.2): work queued there
// runs concurrently with, and yields to, the foreground workload.
package vcpu

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prudence/internal/metrics"
)

// CPU is a handle to one virtual CPU. The zero value is not usable;
// obtain handles from a Machine.
type CPU struct {
	id      int
	machine *Machine

	idleMu     sync.Mutex
	idleQueue  []func()
	idleWake   chan struct{}
	idleActive atomic.Bool

	idleBusyNanos atomic.Int64  // total time spent executing idle work
	idleRuns      atomic.Uint64 // idle work items executed

	// intr is the CPU's registered interrupt handler (nil = none). It
	// models a per-CPU asynchronous signal: the handler runs in the
	// sender's goroutine and must restrict itself to atomic operations
	// on the target CPU's state, exactly what a real signal handler
	// could safely do to a preempted thread.
	intr          atomic.Pointer[func()]
	intrDelivered atomic.Uint64
}

// SetInterrupt registers h as the CPU's interrupt handler (nil clears
// it). DEBRA+-style neutralizing reclamation uses it to knock a stalled
// reader's pin loose without the reader's cooperation.
func (c *CPU) SetInterrupt(h func()) {
	if h == nil {
		c.intr.Store(nil)
		return
	}
	c.intr.Store(&h)
}

// Interrupt delivers the CPU's interrupt: the registered handler runs
// synchronously in the caller's goroutine. It reports whether a handler
// was installed. Delivery is the analogue of pthread_kill on the thread
// owning the CPU; the handler's effects become visible to the owner
// through the atomics it touches.
func (c *CPU) Interrupt() bool {
	h := c.intr.Load()
	if h == nil {
		return false
	}
	c.intrDelivered.Add(1)
	(*h)()
	return true
}

// Interrupt delivers cpu's interrupt (see CPU.Interrupt).
func (m *Machine) Interrupt(cpu int) bool { return m.CPU(cpu).Interrupt() }

// SetInterruptOn registers h as cpu's interrupt handler (see
// CPU.SetInterrupt).
func (m *Machine) SetInterruptOn(cpu int, h func()) { m.CPU(cpu).SetInterrupt(h) }

// ID returns the CPU's index in [0, Machine.NumCPU()).
func (c *CPU) ID() int { return c.id }

// Machine returns the machine this CPU belongs to.
func (c *CPU) Machine() *Machine { return c.machine }

// Machine is a fixed set of virtual CPUs.
type Machine struct {
	cpus    []*CPU
	started time.Time

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewMachine creates a machine with n virtual CPUs and starts their idle
// workers. Call Stop when the machine is no longer needed.
func NewMachine(n int) *Machine {
	if n <= 0 {
		panic(fmt.Sprintf("vcpu: non-positive CPU count %d", n))
	}
	m := &Machine{stop: make(chan struct{}), started: time.Now()}
	m.cpus = make([]*CPU, n)
	for i := range m.cpus {
		c := &CPU{id: i, machine: m, idleWake: make(chan struct{}, 1)}
		m.cpus[i] = c
		m.wg.Add(1)
		go c.idleLoop(&m.wg, m.stop)
	}
	return m
}

// NumCPU returns the number of CPUs in the machine.
func (m *Machine) NumCPU() int { return len(m.cpus) }

// CPU returns the handle for CPU id.
func (m *Machine) CPU(id int) *CPU {
	if id < 0 || id >= len(m.cpus) {
		panic(fmt.Sprintf("vcpu: CPU id %d out of range [0,%d)", id, len(m.cpus)))
	}
	return m.cpus[id]
}

// Stop shuts down the idle workers. Queued idle work that has not
// started is discarded. Stop is idempotent.
func (m *Machine) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// RunOnAll invokes fn(cpu) concurrently on every CPU (one goroutine per
// CPU, the goroutine owning that CPU for the duration) and waits for all
// to return.
func (m *Machine) RunOnAll(fn func(c *CPU)) {
	var wg sync.WaitGroup
	for _, c := range m.cpus {
		wg.Add(1)
		go func(c *CPU) {
			defer wg.Done()
			fn(c)
		}(c)
	}
	wg.Wait()
}

// RegisterMetrics registers per-CPU idle-worker activity and the
// machine-wide idle ratio — the "idleness is not sloth" budget that
// Prudence's pre-flush consumes (§4.2).
func (m *Machine) RegisterMetrics(r *metrics.Registry) {
	r.CollectCounters("prudence_vcpu_idle_work_seconds_total", "Time spent executing idle-worker items, per CPU.",
		func(emit metrics.Emit) {
			for _, c := range m.cpus {
				emit(float64(c.idleBusyNanos.Load())/1e9, metrics.L("cpu", strconv.Itoa(c.id)))
			}
		})
	r.CollectCounters("prudence_vcpu_idle_work_items_total", "Idle-worker items executed, per CPU.",
		func(emit metrics.Emit) {
			for _, c := range m.cpus {
				emit(float64(c.idleRuns.Load()), metrics.L("cpu", strconv.Itoa(c.id)))
			}
		})
	r.CollectCounters("prudence_vcpu_interrupts_total", "Interrupts delivered, per CPU.",
		func(emit metrics.Emit) {
			for _, c := range m.cpus {
				emit(float64(c.intrDelivered.Load()), metrics.L("cpu", strconv.Itoa(c.id)))
			}
		})
	r.GaugeFunc("prudence_vcpu_idle_ratio", "Fraction of machine time not spent on idle work (1 = fully available).",
		func() float64 {
			elapsed := time.Since(m.started).Seconds() * float64(len(m.cpus))
			if elapsed <= 0 {
				return 1
			}
			var busy float64
			for _, c := range m.cpus {
				busy += float64(c.idleBusyNanos.Load()) / 1e9
			}
			ratio := 1 - busy/elapsed
			if ratio < 0 {
				return 0
			}
			return ratio
		})
}

// ScheduleIdle queues fn to run on the CPU's idle worker. Work items run
// sequentially in FIFO order. fn must not block indefinitely.
func (c *CPU) ScheduleIdle(fn func()) {
	c.idleMu.Lock()
	c.idleQueue = append(c.idleQueue, fn)
	c.idleMu.Unlock()
	select {
	case c.idleWake <- struct{}{}:
	default:
	}
}

// ScheduleIdleOn queues fn on cpu's idle worker. It is the
// machine-level form of CPU.ScheduleIdle, letting subsystems that only
// hold a machine reference (e.g. the page pre-zeroer) dispatch idle
// work without knowing the CPU type.
func (m *Machine) ScheduleIdleOn(cpu int, fn func()) {
	m.CPU(cpu).ScheduleIdle(fn)
}

// IdleBusy reports whether the idle worker is currently executing or has
// queued work. Callers use it to avoid double-scheduling.
func (c *CPU) IdleBusy() bool {
	if c.idleActive.Load() {
		return true
	}
	c.idleMu.Lock()
	defer c.idleMu.Unlock()
	return len(c.idleQueue) > 0
}

// runIdle isolates idle work: a panicking work item must not kill the
// idle worker (background maintenance like Prudence's pre-flush would
// silently stop for the rest of the CPU's life).
func runIdle(fn func()) {
	defer func() { _ = recover() }()
	fn()
}

func (c *CPU) idleLoop(wg *sync.WaitGroup, stop chan struct{}) {
	defer wg.Done()
	for {
		select {
		case <-stop:
			return
		case <-c.idleWake:
		}
		for {
			c.idleMu.Lock()
			if len(c.idleQueue) == 0 {
				c.idleMu.Unlock()
				break
			}
			fn := c.idleQueue[0]
			c.idleQueue = c.idleQueue[1:]
			c.idleMu.Unlock()

			c.idleActive.Store(true)
			start := time.Now()
			runIdle(fn)
			c.idleBusyNanos.Add(int64(time.Since(start)))
			c.idleRuns.Add(1)
			c.idleActive.Store(false)
			// Idle work is low priority: yield between items so the
			// foreground workload goroutine gets the core first.
			runtime.Gosched()
		}
	}
}
