// Command prudence-server runs the long-running session/routing
// service built on the prudence stack, or (with -load) drives it with
// the built-in load generator and reports the run.
//
// Serve mode — start the service and leave it running:
//
//	prudence-server -listen :8377 -cpus 8 -pages 65536 -alloc prudence -scheme rcu
//	curl -X PUT -d 'hello' localhost:8377/v1/session/42
//	curl localhost:8377/v1/session/42
//	curl localhost:8377/metrics
//
// Load mode — run a seeded churn workload in-process and exit (status
// 1 if -fail-on-oom is set and any allocation hit arena exhaustion, or
// if the post-run invariants fail):
//
//	prudence-server -load -sessions 1000000 -ops 3000000 -seed 42
//	prudence-server -load -duration 60s -scheme nebr -alloc slub -fail-on-oom
//
// Load mode still serves HTTP when -listen is set, so a run can be
// scraped while it executes. -json emits BENCH-style records.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prudence"
	"prudence/internal/bench"
	"prudence/internal/server"
	"prudence/internal/server/loadgen"
)

func main() {
	var (
		listen   = flag.String("listen", "", "HTTP listen address (serve mode default :8377; empty in -load mode = no HTTP)")
		cpus     = flag.Int("cpus", 8, "virtual CPUs / shard workers")
		pages    = flag.Int("pages", 16384, "arena size in 4 KiB pages")
		allocStr = flag.String("alloc", "prudence", "allocator: prudence|slub")
		scheme   = flag.String("scheme", "", "reclamation scheme (rcu|ebr|hp|nebr; empty = rcu)")
		arena    = flag.String("arena", "", "arena backend: heap|mmap (empty = heap or $PRUDENCE_ARENA)")
		gpIval   = flag.Duration("gp-interval", 0, "grace-period interval (0 = backend default)")
		qdepth   = flag.Int("queue-depth", 64, "per-shard batch queue capacity")
		backlog  = flag.Int("backlog-high", 1<<16, "latent objects before the monitor expedites")

		load      = flag.Bool("load", false, "run the load generator and exit")
		sessions  = flag.Int("sessions", 100000, "load: target live sessions")
		ops       = flag.Int("ops", 0, "load: op budget after ramp (0 = 2x sessions)")
		duration  = flag.Duration("duration", 0, "load: wall-clock cap for the churn phase")
		batch     = flag.Int("batch", 128, "load: ops per batch")
		hotPm     = flag.Int("hot-permille", 200, "load: hot-key read share, per mille")
		dosPm     = flag.Int("dos-permille", 100, "load: dos flood share, per mille (-1 disables)")
		stormPm   = flag.Int("storm-permille", 30, "load: storm share, per mille (-1 disables)")
		stall     = flag.Int("stall-every", 2048, "load: slow-loris stall per worker every N iterations (0 disables)")
		stallHold = flag.Duration("stall-hold", 20*time.Millisecond, "load: stall pin duration")
		seed      = flag.Uint64("seed", 1, "load: workload seed (same seed replays the same run)")
		failOOM   = flag.Bool("fail-on-oom", false, "load: exit 1 if any operation hit arena exhaustion")
		jsonPath  = flag.String("json", "", "load: write BENCH-style JSON records to this file")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		CPUs:                *cpus,
		MemoryPages:         *pages,
		Allocator:           prudence.AllocatorKind(*allocStr),
		Reclamation:         prudence.ReclamationKind(*scheme),
		Arena:               prudence.ArenaKind(*arena),
		GracePeriodInterval: *gpIval,
		QueueDepth:          *qdepth,
		BacklogHigh:         *backlog,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "prudence-server:", err)
		os.Exit(2)
	}

	addr := *listen
	if !*load && addr == "" {
		addr = ":8377"
	}
	httpErr := make(chan error, 1)
	if addr != "" {
		l, err := net.Listen("tcp", addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prudence-server:", err)
			srv.Close()
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "prudence-server: listening on %s (%s/%s/%s, %d shards, %d pages)\n",
			l.Addr(), srv.System().AllocatorName(), srv.System().ReclamationName(),
			srv.System().ArenaName(), srv.Shards(), *pages)
		go func() { httpErr <- srv.Serve(l) }()
	}

	if !*load {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		select {
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "prudence-server: %v, draining\n", s)
		case err := <-httpErr:
			if err != nil {
				fmt.Fprintln(os.Stderr, "prudence-server:", err)
			}
		}
		srv.Close()
		return
	}

	res := loadgen.Run(srv, loadgen.Config{
		Sessions:      *sessions,
		Ops:           *ops,
		Duration:      *duration,
		BatchSize:     *batch,
		HotPermille:   *hotPm,
		DoSPermille:   *dosPm,
		StormPermille: *stormPm,
		StallEvery:    *stall,
		StallHold:     *stallHold,
		Seed:          *seed,
	})
	fmt.Println(res)
	fmt.Printf("server: peak latent %d bytes (%d objects), expedites=%d busy_rejects=%d ooms=%d gps=%d\n",
		srv.PeakLatentBytes(), srv.PeakLatentObjects(), srv.Expedites(),
		srv.BusyRejects(), srv.OOMs(), srv.System().GracePeriods())

	failed := false
	if *failOOM && (res.OOMs > 0 || srv.OOMs() > 0) {
		fmt.Fprintf(os.Stderr, "FAIL: %d operations hit arena exhaustion\n", srv.OOMs())
		failed = true
	}
	// Post-run invariants: the generator's optimistic accounting and
	// the server's applied state must agree, or batches were lost.
	if got, want := uint64(res.EndLive), res.Connects-res.Disconnects; got != want {
		fmt.Fprintf(os.Stderr, "FAIL: live sessions %d != connects-disconnects %d\n", got, want)
		failed = true
	}
	if res.ShutdownDrops > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d ops dropped at shutdown during the run\n", res.ShutdownDrops)
		failed = true
	}

	if *jsonPath != "" {
		if err := writeRecords(*jsonPath, srv, res, *allocStr, *scheme); err != nil {
			fmt.Fprintln(os.Stderr, "prudence-server:", err)
			failed = true
		}
	}
	srv.Close()
	if failed {
		os.Exit(1)
	}
}

func writeRecords(path string, srv *server.Server, res loadgen.Result, alloc, scheme string) error {
	if scheme == "" {
		scheme = "rcu"
	}
	q := fmt.Sprintf("{alloc=%s,scheme=%s}", alloc, scheme)
	recs := []bench.Record{
		{Exp: "server", Metric: "sessions_total" + q, Value: float64(res.SessionsTotal), Unit: "sessions"},
		{Exp: "server", Metric: "peak_live_sessions" + q, Value: float64(res.PeakLive), Unit: "sessions"},
		{Exp: "server", Metric: "ops_total" + q, Value: float64(res.OpsTotal), Unit: "ops"},
		{Exp: "server", Metric: "throughput" + q, Value: res.ThroughputOps, Unit: "ops/s"},
		{Exp: "server", Metric: "latency_p50" + q, Value: res.P50.Seconds() * 1e6, Unit: "us"},
		{Exp: "server", Metric: "latency_p99" + q, Value: res.P99.Seconds() * 1e6, Unit: "us"},
		{Exp: "server", Metric: "latency_p999" + q, Value: res.P999.Seconds() * 1e6, Unit: "us"},
		{Exp: "server", Metric: "latent_bytes_peak" + q, Value: float64(srv.PeakLatentBytes()), Unit: "bytes"},
		{Exp: "server", Metric: "expedites" + q, Value: float64(srv.Expedites()), Unit: "count"},
		{Exp: "server", Metric: "ooms" + q, Value: float64(srv.OOMs()), Unit: "count"},
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.WriteRecords(f, recs)
}
