// Command prudence-bench regenerates the paper's evaluation: every
// figure (3, 6, 7, 8, 9, 10, 11, 12, 13), the §3.3 allocation path cost
// table, the §3.4 denial-of-service comparison, and the ablation study
// over Prudence's individual optimizations.
//
// Usage:
//
//	prudence-bench -exp all
//	prudence-bench -exp fig6 -pairs 50000
//	prudence-bench -exp fig3 -cpus 8 -pages 16384
//	prudence-bench -exp apps -txns 2000     # figures 7-13 from one run
//	prudence-bench -exp scaling -json out.json
//	prudence-bench -exp matrix -schemes rcu,hp -json out.json
//	prudence-bench -exp fig6 -arena mmap           # off-heap arena everywhere
//	prudence-bench -exp arenacmp -json out.json    # heap vs mmap, with GC metrics
//	prudence-bench -exp fig6 -cpuprofile cpu.pb.gz -mutexprofile mtx.pb.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"prudence/internal/bench"
	"prudence/internal/slabcore"
	"prudence/internal/trace"
	"prudence/internal/workload"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig3|fig6|scaling|matrix|arenacmp|apps|fig7|fig8|fig9|fig10|fig11|fig12|fig13|cost|dos|ablation|gpsweep|trace|server|all")
		cpus    = flag.Int("cpus", 8, "virtual CPUs")
		pages   = flag.Int("pages", 16384, "arena size in 4 KiB pages")
		pairs   = flag.Int("pairs", 20000, "micro-benchmark pairs per CPU (fig6, scaling, ablation)")
		size    = flag.Int("size", 512, "object size in bytes for the scaling sweep")
		txns    = flag.Int("txns", 1500, "application transactions per CPU (figs 7-13)")
		repeats = flag.Int("repeats", 3, "application comparison repeats; figure 13 reports medians")
		dosMs   = flag.Int("dos-ms", 1500, "DoS attack duration in milliseconds")
		metrics = flag.Bool("metrics", false, "dump each stack's Prometheus metrics on teardown")
		schemes = flag.String("schemes", "", "comma-separated reclamation schemes for the matrix (empty = all registered)")
		arena   = flag.String("arena", "", "arena memory backend behind every experiment: heap|mmap (empty = heap, or $PRUDENCE_ARENA)")
		arenas  = flag.String("arenas", "", "comma-separated arena backends for the arenacmp sweep (empty = all available)")

		failOnOOM = flag.Bool("fail-on-oom", false, "exit 1 if any matrix cell reports an out-of-memory (CI guard for the endurance OOM class)")

		jsonPath   = flag.String("json", "", "write machine-readable results (JSON records) to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		mutexProf  = flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
		blockProf  = flag.String("blockprofile", "", "write a blocking profile to this file")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.CPUs = *cpus
	cfg.ArenaPages = *pages
	cfg.Arena = *arena // empty falls through to $PRUDENCE_ARENA in NewStack
	if *metrics {
		cfg.MetricsTo = os.Stdout
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexProf)
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockProf)
	}

	var records []bench.Record
	defer func() {
		if *jsonPath == "" {
			return
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := bench.WriteRecords(f, records); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}()

	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Truncate(time.Millisecond))
	}

	want := func(names ...string) bool {
		if *exp == "all" {
			return true
		}
		for _, n := range names {
			if *exp == n {
				return true
			}
		}
		return false
	}

	if want("fig6") {
		run("fig6", func() error {
			res, err := bench.RunFig6(cfg, *pairs)
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
			records = append(records, res.Records()...)
			return nil
		})
	}
	if want("scaling") {
		run("scaling", func() error {
			res, err := bench.RunScaling(cfg, *size, *pairs, nil)
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
			records = append(records, res.Records()...)
			return nil
		})
	}
	if want("matrix") {
		run("matrix", func() error {
			var list []string
			if *schemes != "" {
				list = strings.Split(*schemes, ",")
			}
			res, err := bench.RunMatrix(cfg, *size, *pairs, list, nil)
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
			records = append(records, res.Records()...)
			if *failOnOOM {
				for _, c := range res.Cells {
					if c.OOM {
						return fmt.Errorf("cell scheme=%s alloc=%s workload=%s reported oom=1", c.Scheme, c.Kind, c.Workload)
					}
				}
			}
			return nil
		})
	}
	if want("arenacmp") {
		run("arenacmp", func() error {
			var arenaList, schemeList []string
			if *arenas != "" {
				arenaList = strings.Split(*arenas, ",")
			}
			if *schemes != "" {
				schemeList = strings.Split(*schemes, ",")
			}
			res, err := bench.RunArenaCompare(cfg, *size, *pairs, arenaList, schemeList, nil)
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
			records = append(records, res.Records()...)
			if *failOnOOM {
				for _, c := range res.Cells {
					if c.OOM {
						return fmt.Errorf("cell arena=%s scheme=%s alloc=%s workload=%s reported oom=1", c.Arena, c.Scheme, c.Kind, c.Workload)
					}
				}
			}
			return nil
		})
	}
	if want("fig3") {
		run("fig3", func() error {
			c := cfg
			if *pages == 16384 {
				// Endurance default: an arena small enough that the
				// baseline's growing callback backlog exhausts it well
				// within the update budget (the Figure 3 OOM).
				c.ArenaPages = 2048 // 8 MiB
			}
			res, err := bench.RunFig3(c, bench.DefaultFig3Config())
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
			return nil
		})
	}
	appsWanted := want("apps", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13")
	if appsWanted {
		run("apps (figs 7-13)", func() error {
			res, err := bench.RunAppsMedian(cfg, *txns, *repeats)
			if err != nil {
				return err
			}
			tables := map[string]string{
				"fig7":  res.Fig7Table(),
				"fig8":  res.Fig8Table(),
				"fig9":  res.Fig9Table(),
				"fig10": res.Fig10Table(),
				"fig11": res.Fig11Table(),
				"fig12": res.Fig12Table(),
				"fig13": res.Fig13Table(),
			}
			order := []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"}
			for _, name := range order {
				if *exp == "all" || *exp == "apps" || *exp == name {
					fmt.Println(tables[name])
				}
			}
			return nil
		})
	}
	if want("cost") {
		run("cost", func() error {
			res, err := bench.RunCostTable(cfg)
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
			return nil
		})
	}
	if want("dos") {
		run("dos", func() error {
			c := cfg
			if *pages == 16384 {
				c.ArenaPages = 1024 // 4 MiB: the flood must be able to win against SLUB
			}
			res, err := bench.RunDoS(c, time.Duration(*dosMs)*time.Millisecond)
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
			return nil
		})
	}
	if want("ablation") {
		run("ablation", func() error {
			res, err := bench.RunAblation(cfg, *pairs)
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
			return nil
		})
	}
	if want("gpsweep") {
		run("gpsweep", func() error {
			res, err := bench.RunGPSweep(cfg, *pairs/2)
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
			return nil
		})
	}
	if want("trace") {
		run("trace", func() error {
			// A short 512 B deferred-free burst on each allocator with an
			// event ring attached: the timeline makes the "hints about
			// the future" machinery visible (refills sized by the latent
			// backlog, batched pre-flushes, grace-period waits).
			for _, kind := range []bench.Kind{bench.KindSLUB, bench.KindPrudence} {
				s := bench.NewStack(kind, cfg)
				cache := s.Alloc.NewCache(slabcore.DefaultConfig("kmalloc-512", 512, cfg.CPUs))
				ring := trace.NewRing(4096)
				type tracer interface{ SetTrace(*trace.Ring) }
				cache.(tracer).SetTrace(ring)
				workload.RunMicro(s.Env(), cache, 4000)
				fmt.Printf("--- %s event counts over a 512 B micro burst ---\n", kind)
				counts := ring.CountByKind()
				for k := trace.KindMalloc; k <= trace.KindOOM; k++ {
					if counts[k] > 0 {
						fmt.Printf("  %-9s %d\n", k, counts[k])
					}
				}
				fmt.Printf("last events:\n%s\n", indent(ring.Dump(12)))
				cache.Drain()
				s.Close()
			}
			return nil
		})
	}
	if want("server") {
		run("server", func() error {
			sc := bench.ServerConfig{CPUs: *cpus, Pages: *pages, Arena: *arena}
			res, err := bench.RunServer(sc)
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
			records = append(records, res.Records()...)
			return nil
		})
	}
	if !want("fig6") && !want("scaling") && !want("matrix") && !want("arenacmp") && !want("fig3") && !appsWanted && !want("cost") && !want("dos") && !want("ablation") && !want("gpsweep") && !want("trace") && !want("server") {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from fig3 fig6 scaling matrix arenacmp apps fig7..fig13 cost dos ablation gpsweep trace server all\n", *exp)
		os.Exit(2)
	}
}

// writeProfile dumps a named runtime profile, for -mutexprofile and
// -blockprofile.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%sprofile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "%sprofile: %v\n", name, err)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n")
}
