// Command prudence-vet type-checks the given packages and applies the
// module's concurrency-contract analyzers:
//
//	lockorder   — ascending lock-rank acquisition order
//	guardedby   — guarded fields accessed only under their lock
//	atomicalign — 64-bit atomic alignment and padded struct sizes
//	rcucheck    — read-side RCU pointer access, no use after FreeDeferred
//	arenaunsafe — pointer-forging unsafe confined to internal/view
//
// Usage:
//
//	go run ./cmd/prudence-vet ./...
//
// Exit status is 0 when clean, 1 when any analyzer reports a finding,
// and 2 on load/configuration errors (including malformed //prudence:
// directives anywhere in the module).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prudence/internal/analysis"
	"prudence/internal/analysis/arenaunsafe"
	"prudence/internal/analysis/atomicalign"
	"prudence/internal/analysis/driver"
	"prudence/internal/analysis/guardedby"
	"prudence/internal/analysis/lockorder"
	"prudence/internal/analysis/rcucheck"
)

var all = []*analysis.Analyzer{
	lockorder.Analyzer,
	guardedby.Analyzer,
	atomicalign.Analyzer,
	rcucheck.Analyzer,
	arenaunsafe.Analyzer,
}

func main() {
	var only string
	flag.StringVar(&only, "run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: prudence-vet [-run analyzers] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := all
	if only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "prudence-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	load, err := driver.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prudence-vet: %v\n", err)
		os.Exit(2)
	}
	if len(load.DirectiveErrs) > 0 {
		for _, d := range load.DirectiveErrs {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
		os.Exit(2)
	}

	findings, err := driver.Run(load, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prudence-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s\n", f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
