// Command prudence-vet type-checks the given packages and applies the
// module's concurrency-contract analyzers:
//
//	lockorder   — ascending lock-rank acquisition order
//	guardedby   — guarded fields accessed only under their lock
//	atomicalign — 64-bit atomic alignment and padded struct sizes
//	rcucheck    — read-side RCU pointer access and fault-point annotations
//	sleepcheck  — no may-block calls under read locks or spin locks
//	retirecheck — no double retire or touch-after-retire through helpers
//	arenaunsafe — pointer-forging unsafe confined to internal/view
//
// Usage:
//
//	go run ./cmd/prudence-vet ./...
//	go run ./cmd/prudence-vet -sarif out.sarif -stats ./...
//
// Findings can be suppressed per line with an auditable
// //prudence:nolint:<analyzer> <reason> comment; a suppression that no
// longer matches a finding is itself reported (analyzer "nolint").
//
// Exit status is 0 when clean, 1 when any analyzer reports a finding,
// and 2 on load/configuration errors (including malformed //prudence:
// directives anywhere in the module).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"prudence/internal/analysis"
	"prudence/internal/analysis/arenaunsafe"
	"prudence/internal/analysis/atomicalign"
	"prudence/internal/analysis/driver"
	"prudence/internal/analysis/guardedby"
	"prudence/internal/analysis/lockorder"
	"prudence/internal/analysis/rcucheck"
	"prudence/internal/analysis/retirecheck"
	"prudence/internal/analysis/sarif"
	"prudence/internal/analysis/sleepcheck"
)

var all = []*analysis.Analyzer{
	lockorder.Analyzer,
	guardedby.Analyzer,
	atomicalign.Analyzer,
	rcucheck.Analyzer,
	sleepcheck.Analyzer,
	retirecheck.Analyzer,
	arenaunsafe.Analyzer,
}

func main() {
	var (
		only      string
		sarifPath string
		stats     bool
	)
	flag.StringVar(&only, "run", "", "comma-separated analyzer names to run (default: all)")
	flag.StringVar(&sarifPath, "sarif", "", "also write findings as SARIF 2.1.0 to this file")
	flag.BoolVar(&stats, "stats", false, "print load/summary/analyzer timing and package counts to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: prudence-vet [-run analyzers] [-sarif out.sarif] [-stats] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := all
	if only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "prudence-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	load, err := driver.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prudence-vet: %v\n", err)
		os.Exit(2)
	}
	if len(load.DirectiveErrs) > 0 {
		for _, d := range load.DirectiveErrs {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
		os.Exit(2)
	}

	findings, err := driver.Run(load, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prudence-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s\n", f)
	}

	if sarifPath != "" {
		f, err := os.Create(sarifPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prudence-vet: %v\n", err)
			os.Exit(2)
		}
		werr := sarif.Write(f, analyzers, findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "prudence-vet: writing %s: %v\n", sarifPath, werr)
			os.Exit(2)
		}
	}

	if stats {
		printStats(load)
	}

	if len(findings) > 0 {
		os.Exit(1)
	}
}

func printStats(load *driver.Load) {
	s := load.Stats
	fmt.Fprintf(os.Stderr, "prudence-vet stats:\n")
	fmt.Fprintf(os.Stderr, "  packages loaded:   %d (%d targets)\n", s.Packages, s.Targets)
	fmt.Fprintf(os.Stderr, "  functions summarized: %d\n", s.Functions)
	fmt.Fprintf(os.Stderr, "  load+typecheck:    %v\n", s.Load.Round(timeUnit(s.Load)))
	fmt.Fprintf(os.Stderr, "  effect summaries:  %v\n", s.Summaries.Round(timeUnit(s.Summaries)))
	// Stable order: the registration order of the analyzers that ran.
	for _, a := range all {
		if d, ok := s.Analyzers[a.Name]; ok {
			fmt.Fprintf(os.Stderr, "  %-18s %v\n", a.Name+":", d.Round(timeUnit(d)))
		}
	}
}

func timeUnit(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return 10 * time.Millisecond
	case d >= time.Millisecond:
		return 10 * time.Microsecond
	default:
		return time.Microsecond
	}
}
