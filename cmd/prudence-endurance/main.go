// Command prudence-endurance runs the Figure 3 endurance experiment
// (§3.5/§5.5): per-CPU linked-list update storms with 512-byte objects
// against both allocators, and emits the used-memory time series as CSV
// for plotting, plus a summary table.
//
// Usage:
//
//	prudence-endurance                      # summary table to stdout
//	prudence-endurance -csv fig3.csv        # also write the series
//	prudence-endurance -cpus 8 -pages 4096 -updates 60000
//
// Chaos mode runs the workload mix under seeded fault injection and
// checks the graceful-degradation invariants; the same seed replays the
// same injection schedule (exit status 1 on invariant failure):
//
//	prudence-endurance -chaos -seed 42
//
// The stalled-reader scenario pins one vCPU's reader inside a
// read-side critical section for the whole run while the other CPUs
// churn deferred frees — the input that arms nebr neutralization and
// hp scans, with a latent-garbage cap asserted for those schemes:
//
//	prudence-endurance -stall -scheme nebr -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prudence/internal/bench"
	"prudence/internal/fault/chaostest"
)

func main() {
	var (
		cpus         = flag.Int("cpus", 8, "virtual CPUs")
		pages        = flag.Int("pages", 4096, "arena size in 4 KiB pages")
		updates      = flag.Int("updates", 60000, "list updates per CPU")
		size         = flag.Int("objsize", 512, "object size in bytes (paper: 512)")
		sample       = flag.Duration("sample", time.Millisecond, "used-memory sampling period")
		pace         = flag.Duration("pace", time.Microsecond, "pause per update (0 = flat out)")
		csvPath      = flag.String("csv", "", "write used-memory series CSV to this file")
		metricsEvery = flag.Duration("metrics-every", 0, "dump Prometheus metrics to stderr at this period during the run (0 = off)")
		chaos        = flag.Bool("chaos", false, "run the seeded chaos harness instead of the Figure 3 experiment")
		stall        = flag.Bool("stall", false, "run the stalled-reader chaos scenario (pins a vCPU reader the whole run; default scheme nebr)")
		seed         = flag.Uint64("seed", 1, "fault-injection seed for -chaos (same seed replays the same schedule)")
		watchdog     = flag.Duration("watchdog", 2*time.Minute, "chaos-mode hang detector")
		scheme       = flag.String("scheme", "", "reclamation scheme for -chaos (rcu|ebr|hp|nebr; empty = rcu)")
	)
	flag.Parse()

	if *stall {
		res := chaostest.RunStalledReader(chaostest.Config{
			Seed:     *seed,
			CPUs:     *cpus,
			Pages:    *pages,
			Watchdog: *watchdog,
			Scheme:   *scheme,
		})
		fmt.Println(chaostest.StallReport(res))
		if !res.Passed {
			os.Exit(1)
		}
		return
	}

	if *chaos {
		res := chaostest.Run(chaostest.Config{
			Seed:     *seed,
			CPUs:     *cpus,
			Updates:  *updates,
			Pairs:    *updates,
			Watchdog: *watchdog,
			Scheme:   *scheme,
		})
		fmt.Println(chaostest.Report(res))
		if !res.Passed {
			os.Exit(1)
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.CPUs = *cpus
	cfg.ArenaPages = *pages

	f3 := bench.DefaultFig3Config()
	f3.UpdatesPerCPU = *updates
	f3.ObjectSize = *size
	f3.SampleEvery = *sample
	f3.PacePerUpdate = *pace
	if *metricsEvery > 0 {
		cfg.MetricsTo = os.Stderr
		f3.MetricsEvery = *metricsEvery
	}

	res, err := bench.RunFig3(cfg, f3)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(res.Table())
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("series written to %s (%d slub samples, %d prudence samples)\n",
			*csvPath, res.SLUB.Series.Len(), res.Prudence.Series.Len())
	}
}
