// Filecache: a Postmark-like file server simulation (the paper's
// highest-gain application benchmark) run against BOTH allocators on
// identical machines, printing the per-cache attribute comparison the
// paper reports in Figures 7-11 and the throughput of Figure 13.
//
// Each transaction creates files (allocating dentry-, inode- and
// filp-like objects), reads them, and deletes old ones; deletions
// defer-free their metadata objects, exactly as RCU-protected VFS
// teardown does.
package main

import (
	"fmt"
	"time"

	"prudence"
)

type fileObjs struct {
	dentry, inode, filp prudence.Object
}

func run(kind prudence.AllocatorKind) (txnPerSec float64, report func()) {
	sys := prudence.MustNew(prudence.Config{Allocator: kind, CPUs: 8, MemoryPages: 16384})
	dentry := sys.NewCache("dentry", 192)
	inode := sys.NewCache("ext4_inode", 1024)
	filp := sys.NewCache("filp", 256)

	const txnsPerCPU = 4000
	const poolFiles = 100 // files alive per CPU, like Postmark's file pool

	start := time.Now()
	sys.RunOnAllCPUs(func(cpu int) {
		var pool []fileObjs
		create := func() bool {
			var f fileObjs
			var err error
			if f.dentry, err = dentry.Malloc(cpu); err != nil {
				return false
			}
			if f.inode, err = inode.Malloc(cpu); err != nil {
				return false
			}
			if f.filp, err = filp.Malloc(cpu); err != nil {
				return false
			}
			copy(f.inode.Bytes(), "inode-metadata")
			pool = append(pool, f)
			return true
		}
		for i := 0; i < poolFiles; i++ {
			if !create() {
				return
			}
		}
		for txn := 0; txn < txnsPerCPU; txn++ {
			// Delete the oldest file: VFS teardown defer-frees the
			// dentry and inode (RCU-protected lookups may be in
			// flight); the filp closes immediately.
			f := pool[0]
			pool = pool[1:]
			dentry.FreeDeferred(cpu, f.dentry)
			inode.FreeDeferred(cpu, f.inode)
			filp.Free(cpu, f.filp)
			// Create a replacement and "read" a few pool files.
			if !create() {
				return
			}
			for k := 0; k < 4; k++ {
				_ = pool[(txn+k)%len(pool)].inode.Bytes()[0]
			}
			sys.QuiescentState(cpu)
		}
		for _, f := range pool {
			dentry.FreeDeferred(cpu, f.dentry)
			inode.FreeDeferred(cpu, f.inode)
			filp.Free(cpu, f.filp)
		}
	})
	elapsed := time.Since(start)
	txnPerSec = float64(txnsPerCPU*sys.NumCPU()) / elapsed.Seconds()

	report = func() {
		defer sys.Close()
		fmt.Printf("\n--- %s: %.0f transactions/sec ---\n", kind, txnPerSec)
		fmt.Printf("%-12s %10s %10s %12s %10s %10s\n",
			"cache", "hit-rate", "oc-churns", "slab-churns", "peak-slabs", "frag")
		for _, c := range []*prudence.Cache{dentry, inode, filp} {
			st := c.Stats()
			ft, _, _ := c.Fragmentation()
			fmt.Printf("%-12s %9.1f%% %10d %12d %10d %10.2f\n",
				c.Name(), st.CacheHitRate()*100, st.ObjectCacheChurns(),
				st.SlabChurns(), st.PeakSlabs, ft)
			c.Drain()
		}
	}
	return txnPerSec, report
}

func main() {
	slubRate, slubReport := run(prudence.SLUB)
	prudenceRate, prudenceReport := run(prudence.Prudence)
	slubReport()
	prudenceReport()
	fmt.Printf("\nPrudence vs SLUB throughput: %+.1f%% (paper's Postmark: +18%%)\n",
		(prudenceRate/slubRate-1)*100)
}
