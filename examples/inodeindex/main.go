// Inodeindex: an ordered inode index (inode number → metadata) over the
// RCU-protected tree — the §3.1 structure whose rebalancing defers
// multiple objects per update. Reader CPUs serve stat() lookups and
// readdir() range scans wait-free while a writer churns creates,
// updates and unlinks; every structural change routes a burst of
// deferred frees through the allocator.
package main

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"prudence"
)

const metaSize = 128 // simulated inode metadata record

func meta(ino uint64, size uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, ino)
	binary.LittleEndian.PutUint64(b[8:], size)
	return b
}

func main() {
	sys := prudence.MustNew(prudence.Config{CPUs: 8, MemoryPages: 8192})
	defer sys.Close()

	cache := sys.NewCache("inode_meta", metaSize)
	index := sys.NewTree(cache)

	// Populate a directory's worth of inodes.
	const inodes = 2000
	for ino := uint64(1); ino <= inodes; ino++ {
		if err := index.Put(0, ino, meta(ino, 0)); err != nil {
			panic(err)
		}
	}

	var stats, scans, corrupt atomic.Int64
	sys.RunOnAllCPUs(func(cpu int) {
		if cpu == 0 {
			// Writer: file churn — create high inodes, grow files,
			// unlink low ones.
			next := uint64(inodes)
			for i := 0; i < 5000; i++ {
				next++
				if err := index.Put(cpu, next, meta(next, 0)); err != nil {
					panic(err)
				}
				if err := index.Put(cpu, next/2, meta(next/2, uint64(i))); err != nil {
					panic(err)
				}
				if _, err := index.Delete(cpu, next-uint64(inodes)); err != nil {
					panic(err)
				}
				sys.QuiescentState(cpu)
			}
			return
		}
		// Readers: stat lookups and range scans (readdir).
		buf := make([]byte, metaSize)
		for i := 0; i < 30000; i++ {
			ino := uint64(i%inodes) + uint64(inodes)/2
			if _, ok := index.Get(cpu, ino, buf); ok {
				if binary.LittleEndian.Uint64(buf) != ino {
					corrupt.Add(1)
				}
				stats.Add(1)
			}
			if i%256 == 0 {
				n := 0
				index.Range(cpu, ino, ino+64, func(k uint64, v []byte) bool {
					if binary.LittleEndian.Uint64(v) != k {
						corrupt.Add(1)
					}
					n++
					return true
				})
				scans.Add(1)
			}
			sys.QuiescentState(cpu)
		}
	})

	st := cache.Stats()
	fmt.Printf("stats=%d scans=%d corrupt=%d entries=%d\n",
		stats.Load(), scans.Load(), corrupt.Load(), index.Len())
	fmt.Printf("allocator: allocs=%d deferred=%d (%.1f deferred per write op)\n",
		st.Allocs, st.DeferredFrees,
		float64(st.DeferredFrees)/15000) // 3 write ops x 5000 rounds
	fmt.Printf("grace periods: %d, latent merges: %d\n", sys.GracePeriods(), st.LatentHits)
	if corrupt.Load() > 0 {
		panic("readers observed corrupt metadata — RCU protection broken")
	}

	// Teardown: unlink everything and drain.
	low, _ := index.Min(0)
	high, _ := index.Max(0)
	for ino := low; ino <= high; ino++ {
		if _, err := index.Delete(0, ino); err != nil {
			panic(err)
		}
	}
	cache.Drain()
	fmt.Printf("after teardown: %d bytes of simulated memory in use\n", sys.UsedBytes())
}
