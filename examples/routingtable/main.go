// Routing table: a read-mostly RCU hash map under concurrent lookups
// and route updates — the classic procrastination-based synchronization
// workload the paper's introduction motivates. Readers run wait-free on
// every CPU while a control-plane writer keeps replacing routes;
// every replaced route is defer-freed through the allocator.
package main

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"prudence"
)

// route is the payload stored per prefix: a next-hop and a version.
const routeSize = 64

func packRoute(nexthop uint32, version uint64) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b, nexthop)
	binary.LittleEndian.PutUint64(b[4:], version)
	return b
}

func main() {
	sys := prudence.MustNew(prudence.Config{CPUs: 8, MemoryPages: 8192})
	defer sys.Close()

	cache := sys.NewCache("route", routeSize)
	table := sys.NewMap(cache, 64)

	// Install 1000 prefixes.
	const prefixes = 1000
	for p := uint64(0); p < prefixes; p++ {
		if err := table.Put(0, p, packRoute(uint32(p), 0)); err != nil {
			panic(err)
		}
	}

	var lookups, updates, misses atomic.Int64
	start := time.Now()
	sys.RunOnAllCPUs(func(cpu int) {
		if cpu == 0 {
			// Control plane: churn routes, each update defer-freeing
			// the old version while readers may still be using it.
			for v := uint64(1); v <= 20000; v++ {
				p := v % prefixes
				if err := table.Put(cpu, p, packRoute(uint32(p+1000), v)); err != nil {
					panic(err)
				}
				updates.Add(1)
				sys.QuiescentState(cpu)
			}
			return
		}
		// Data plane: wait-free lookups.
		buf := make([]byte, routeSize)
		for i := 0; i < 200000; i++ {
			p := uint64(i) % prefixes
			if _, ok := table.Get(cpu, p, buf); !ok {
				misses.Add(1)
			}
			lookups.Add(1)
			sys.QuiescentState(cpu)
		}
	})

	st := cache.Stats()
	fmt.Printf("lookups=%d updates=%d misses=%d in %v\n", lookups.Load(), updates.Load(), misses.Load(), time.Since(start).Truncate(time.Millisecond))
	fmt.Printf("allocator: allocs=%d deferred-frees=%d latent-hits=%d cache-hit-rate=%.1f%%\n",
		st.Allocs, st.DeferredFrees, st.LatentHits, st.CacheHitRate()*100)
	fmt.Printf("grace periods: %d; churn: %d object-cache, %d slab\n",
		sys.GracePeriods(), st.ObjectCacheChurns(), st.SlabChurns())
	if misses.Load() > 0 {
		panic("readers observed missing routes — RCU protection broken")
	}

	// Tear down: remove every route (defer-freeing payloads) and drain.
	for p := uint64(0); p < prefixes; p++ {
		if _, err := table.Delete(0, p); err != nil {
			panic(err)
		}
	}
	cache.Drain()
	fmt.Printf("after teardown: %d bytes of simulated memory in use\n", sys.UsedBytes())
}
