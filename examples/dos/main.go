// DoS: the §3.4 denial-of-service attack — a malicious open/close loop
// generating deferred frees as fast as possible. Under the baseline,
// extended object lifetimes let the backlog exhaust the machine's
// memory; Prudence recycles every deferred object right after its grace
// period and rides the attack out.
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"prudence"
)

func attack(kind prudence.AllocatorKind, duration time.Duration) (survived bool, cycles int64, peakPct float64) {
	// A small machine (8 MiB) so the attack resolves in about a second.
	sys := prudence.MustNew(prudence.Config{
		Allocator:     kind,
		CPUs:          4,
		MemoryPages:   2048,
		CallbackBatch: 8, // throttled callback processing, as deployed kernels run
		CallbackDelay: 2 * time.Millisecond,
	})
	defer sys.Close()
	filp := sys.NewCache("filp", 256)

	var oom atomic.Bool
	var count atomic.Int64
	var peak atomic.Int64
	start := time.Now()
	sys.RunOnAllCPUs(func(cpu int) {
		for !oom.Load() && time.Since(start) < duration {
			for i := 0; i < 128; i++ {
				obj, err := filp.Malloc(cpu) // open(2)
				if err != nil {
					oom.Store(true)
					return
				}
				filp.FreeDeferred(cpu, obj) // close(2): fput -> RCU-deferred
			}
			count.Add(128)
			if u := sys.UsedBytes(); u > peak.Load() {
				peak.Store(u)
			}
			sys.QuiescentState(cpu)
		}
	})
	return !oom.Load(), count.Load(), float64(peak.Load()) / float64(sys.TotalBytes()) * 100
}

func main() {
	const duration = 1500 * time.Millisecond
	fmt.Println("open/close flood, 4 CPUs, 8 MiB machine")

	ok, cycles, peak := attack(prudence.SLUB, duration)
	fmt.Printf("  slub:     survived=%-5v cycles=%-9d peak-mem=%.0f%%\n", ok, cycles, peak)
	if ok {
		fmt.Println("  (unexpected: the baseline usually exhausts memory here)")
	}

	ok, cycles, peak = attack(prudence.Prudence, duration)
	fmt.Printf("  prudence: survived=%-5v cycles=%-9d peak-mem=%.0f%%\n", ok, cycles, peak)
	if !ok {
		fmt.Println("  (unexpected: Prudence should recycle deferred objects and survive)")
	}
}
