// Debugging: the SLUB_DEBUG-style tooling — red zones that catch
// overflows into neighbouring memory, allocation owner tracking that
// attributes leaks to CPUs, the structural trace ring, and the
// post-run invariant audit.
package main

import (
	"fmt"

	"prudence"
)

func main() {
	sys := prudence.MustNew(prudence.Config{CPUs: 4, MemoryPages: 2048})
	defer sys.Close()

	cache := sys.NewCache("session", 192)
	dbg, err := cache.EnableDebug(prudence.DebugConfig{RedZone: true, TrackOwners: true})
	if err != nil {
		panic(err)
	}

	// A workload that "forgets" some frees.
	sys.RunOnAllCPUs(func(cpu int) {
		for i := 0; i < 100; i++ {
			obj, err := cache.Malloc(cpu)
			if err != nil {
				panic(err)
			}
			copy(obj.Bytes(), "session-state")
			if i%10 != cpu { // a bug: one object per 10 leaks on each CPU
				cache.FreeDeferred(cpu, obj)
			}
		}
	})
	sys.Synchronize()

	fmt.Println("leak report:", dbg.Leaks())
	if bad := dbg.CheckRedZones(); len(bad) == 0 {
		fmt.Println("red zones: clean (no overflow in this workload)")
	} else {
		fmt.Println("red zones corrupted:", bad)
	}
	st := cache.Stats()
	fmt.Printf("allocs=%d deferred=%d latent-merges=%d\n",
		st.Allocs, st.DeferredFrees, st.LatentHits)
}
