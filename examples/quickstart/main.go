// Quickstart: build a simulated machine, allocate objects, defer-free
// them the Prudence way, and watch them become reusable after a grace
// period — the whole paper in thirty lines of API.
package main

import (
	"fmt"
	"log"

	"prudence"
)

func main() {
	// A Prudence-backed machine: 4 virtual CPUs, 16 MiB of simulated
	// physical memory. New validates the configuration and returns an
	// error rather than panicking.
	sys, err := prudence.New(prudence.Config{CPUs: 4, MemoryPages: 4096})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// A slab cache of 256-byte objects, like the kernel's filp cache.
	cache := sys.NewCache("filp", 256)

	// Allocate on CPU 0 and use the memory: it is real, arena-backed.
	obj, err := cache.Malloc(0)
	if err != nil {
		panic(err)
	}
	copy(obj.Bytes(), "an open file")
	fmt.Printf("allocated %d bytes: %q\n", len(obj.Bytes()), obj.Bytes()[:12])

	// Defer-free it: the paper's Listing 2. No RCU callback to
	// register — the allocator owns the deferred object from here.
	cache.FreeDeferred(0, obj)
	st := cache.Stats()
	fmt.Printf("after defer-free: allocs=%d deferred=%d (object is latent, not yet reusable)\n",
		st.Allocs, st.DeferredFrees)

	// Once a grace period elapses, the latent object merges back into
	// the object cache: when the object cache runs dry, the allocator
	// serves the deferred object instead of refilling from slabs.
	sys.Synchronize()
	var held []prudence.Object
	for {
		again, err := cache.Malloc(0)
		if err != nil {
			panic(err)
		}
		held = append(held, again)
		if st := cache.Stats(); st.LatentHits > 0 {
			fmt.Printf("after grace period: allocation #%d was served by merging the deferred object\n",
				len(held))
			fmt.Printf("  (latent-hits=%d, refills=%d — no extra slab work for the reuse)\n",
				st.LatentHits, st.Refills)
			break
		}
	}
	for _, o := range held {
		cache.Free(0, o)
	}
	cache.Drain()
	fmt.Printf("drained: %d of %d bytes of simulated memory in use\n",
		sys.UsedBytes(), sys.TotalBytes())
}
