// Benchmarks regenerating the paper's evaluation, one per table/figure.
//
//	go test -bench=. -benchmem
//
// Figure 6  -> BenchmarkFig6Micro/{slub,prudence}/<size>
// Figure 3  -> BenchmarkFig3Endurance/{slub,prudence}
// Figures 7-12 -> BenchmarkApps/<profile>/{slub,prudence} (per-cache
//
//	metrics reported as custom benchmark metrics)
//
// Figure 13 -> the ns/op ratio of the BenchmarkApps pairs
// §3.3 cost -> BenchmarkAllocPath/{hit,refill,grow}
// §3.4 DoS  -> BenchmarkDoS/{slub,prudence}
// Ablation  -> BenchmarkAblation/<variant>
//
// Absolute numbers are machine-dependent; EXPERIMENTS.md records the
// paper-vs-measured comparison for a reference run.
package prudence_test

import (
	"fmt"
	"testing"
	"time"

	"prudence/internal/bench"
	"prudence/internal/core"
	"prudence/internal/rcutree"
	"prudence/internal/slabcore"
	"prudence/internal/vcpu"
	"prudence/internal/workload"
)

func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.CPUs = 4
	cfg.ArenaPages = 8192
	return cfg
}

// BenchmarkFig6Micro measures kmalloc/kfree_deferred pairs (Figure 6).
// ns/op is per pair across all CPUs.
func BenchmarkFig6Micro(b *testing.B) {
	for _, kind := range []bench.Kind{bench.KindSLUB, bench.KindPrudence} {
		for _, size := range bench.Fig6Sizes {
			b.Run(fmt.Sprintf("%s/%d", kind, size), func(b *testing.B) {
				cfg := benchConfig()
				cfg.PressureWatermark = cfg.ArenaPages / 2
				s := bench.NewStack(kind, cfg)
				defer s.Close()
				cache := s.Alloc.NewCache(slabcore.DefaultConfig(
					fmt.Sprintf("kmalloc-%d", size), size, cfg.CPUs))
				pairsPerCPU := b.N/cfg.CPUs + 1
				b.ResetTimer()
				res := workload.RunMicro(s.Env(), cache, pairsPerCPU)
				b.StopTimer()
				b.ReportMetric(res.PairsPerSec(), "pairs/s")
				b.ReportMetric(float64(res.Stalls), "stalls")
				cache.Drain()
			})
		}
	}
}

// BenchmarkFig3Endurance runs the §3.5 list-update storm (Figure 3).
// The oom metric is 1 when the allocator exhausted the arena.
func BenchmarkFig3Endurance(b *testing.B) {
	for _, kind := range []bench.Kind{bench.KindSLUB, bench.KindPrudence} {
		b.Run(string(kind), func(b *testing.B) {
			cfg := benchConfig()
			cfg.ArenaPages = 2048
			cfg.PressureWatermark = cfg.ArenaPages * 3 / 4
			cfg.RCU.ExpeditedDelay = cfg.RCU.ThrottleDelay
			cfg.RCU.ExpeditedBlimit = 3 * cfg.RCU.Blimit
			s := bench.NewStack(kind, cfg)
			defer s.Close()
			cache := s.Alloc.NewCache(slabcore.DefaultConfig("list-512", 512, cfg.CPUs))
			b.ResetTimer()
			res := workload.RunEndurance(s.Env(), cache, workload.EnduranceConfig{
				ListLen:       64,
				Updates:       b.N/cfg.CPUs + 1,
				PacePerUpdate: time.Microsecond,
			})
			b.StopTimer()
			oom := 0.0
			if res.OOM {
				oom = 1
			}
			b.ReportMetric(oom, "oom")
			b.ReportMetric(float64(res.PeakPages), "peak-pages")
		})
	}
}

// BenchmarkApps runs each application profile (Figures 7-13). ns/op is
// per transaction; the reported metrics are the paper's per-run
// attributes aggregated over the profile's caches.
func BenchmarkApps(b *testing.B) {
	for _, p := range workload.Profiles() {
		for _, kind := range []bench.Kind{bench.KindSLUB, bench.KindPrudence} {
			b.Run(p.Name+"/"+string(kind), func(b *testing.B) {
				cfg := benchConfig()
				cfg.ArenaPages = 16384
				s := bench.NewStack(kind, cfg)
				defer s.Close()
				b.ResetTimer()
				res, err := workload.RunApp(s.Env(), s.Alloc, p, b.N/cfg.CPUs+1)
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				var hits, allocs, ocChurn, slabChurn, peak, defers, frees float64
				for _, rep := range res.PerCache {
					hits += float64(rep.Snapshot.CacheHits + rep.Snapshot.LatentHits)
					allocs += float64(rep.Snapshot.Allocs)
					ocChurn += float64(rep.Snapshot.ObjectCacheChurns())
					slabChurn += float64(rep.Snapshot.SlabChurns())
					peak += float64(rep.Snapshot.PeakSlabs)
					defers += float64(rep.Snapshot.DeferredFrees)
					frees += float64(rep.Snapshot.Frees + rep.Snapshot.DeferredFrees)
				}
				if allocs > 0 {
					b.ReportMetric(hits/allocs*100, "hit%")       // Fig 7
					b.ReportMetric(defers/frees*100, "deferred%") // Fig 12
				}
				b.ReportMetric(ocChurn, "oc-churns")     // Fig 8
				b.ReportMetric(slabChurn, "slab-churns") // Fig 9
				b.ReportMetric(peak, "peak-slabs")       // Fig 10
				b.ReportMetric(res.TxnPerSec(), "txn/s") // Fig 13
				for _, c := range s.Alloc.Caches() {
					c.Drain()
				}
			})
		}
	}
}

// BenchmarkAllocPath measures the three allocation paths of §3.3
// (hit : refill : grow = 1 : 4 : 14 in the paper).
func BenchmarkAllocPath(b *testing.B) {
	res, err := bench.RunCostTable(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("hit", func(b *testing.B) {
		b.ReportMetric(float64(res.Hit.Nanoseconds()), "ns/path")
		b.ReportMetric(1.0, "vs-hit")
	})
	b.Run("refill", func(b *testing.B) {
		b.ReportMetric(float64(res.Refill.Nanoseconds()), "ns/path")
		b.ReportMetric(res.RefillFactor(), "vs-hit")
	})
	b.Run("grow", func(b *testing.B) {
		b.ReportMetric(float64(res.Grow.Nanoseconds()), "ns/path")
		b.ReportMetric(res.GrowFactor(), "vs-hit")
	})
}

// BenchmarkDoS runs the §3.4 open/close flood; the survived metric is 1
// if the allocator rode the attack out.
func BenchmarkDoS(b *testing.B) {
	for _, kind := range []bench.Kind{bench.KindSLUB, bench.KindPrudence} {
		b.Run(string(kind), func(b *testing.B) {
			cfg := benchConfig()
			cfg.ArenaPages = 512
			cfg.RCU.Blimit = 4
			cfg.RCU.ThrottleDelay = 2 * time.Millisecond
			cfg.RCU.ExpeditedDelay = 2 * time.Millisecond
			cfg.RCU.ExpeditedBlimit = 12
			s := bench.NewStack(kind, cfg)
			defer s.Close()
			cache := s.Alloc.NewCache(slabcore.DefaultConfig("filp", 256, cfg.CPUs))
			b.ResetTimer()
			res := workload.RunDoS(s.Env(), cache, 500*time.Millisecond)
			b.StopTimer()
			survived := 1.0
			if res.OOM {
				survived = 0
			}
			b.ReportMetric(survived, "survived")
			b.ReportMetric(float64(res.Cycles), "cycles")
		})
	}
}

// BenchmarkAblation measures the 512 B micro-benchmark with each of
// Prudence's optimizations disabled in turn (DESIGN.md's design-choice
// ablations).
func BenchmarkAblation(b *testing.B) {
	variants := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{}},
		{"no-partial-refill", core.Options{DisablePartialRefill: true}},
		{"no-pre-flush", core.Options{DisablePreFlush: true}},
		{"no-pre-move", core.Options{DisablePreMove: true}},
		{"no-slab-selection", core.Options{DisableSlabSelection: true}},
		{"all-disabled", core.Options{
			DisablePartialRefill: true,
			DisablePreFlush:      true,
			DisablePreMove:       true,
			DisableSlabSelection: true,
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Prudence = v.opts
			s := bench.NewStack(bench.KindPrudence, cfg)
			defer s.Close()
			cache := s.Alloc.NewCache(slabcore.DefaultConfig("kmalloc-512", 512, cfg.CPUs))
			b.ResetTimer()
			res := workload.RunMicro(s.Env(), cache, b.N/cfg.CPUs+1)
			b.StopTimer()
			b.ReportMetric(res.PairsPerSec(), "pairs/s")
			cache.Drain()
		})
	}
}

// BenchmarkTreeUpdateStorm exercises the §3.1 multi-object deferral: an
// RCU tree whose every update defer-frees the rebuilt path. ns/op is
// per update across all CPUs; deferred/op shows the burst factor.
func BenchmarkTreeUpdateStorm(b *testing.B) {
	for _, kind := range []bench.Kind{bench.KindSLUB, bench.KindPrudence} {
		b.Run(string(kind), func(b *testing.B) {
			cfg := benchConfig()
			s := bench.NewStack(kind, cfg)
			defer s.Close()
			cache := s.Alloc.NewCache(slabcore.DefaultConfig("treenode", 128, cfg.CPUs))
			trees := make([]*rcutree.Tree, cfg.CPUs)
			for i := range trees {
				trees[i] = rcutree.New(cache, s.RCU)
			}
			perCPU := b.N/cfg.CPUs + 1
			b.ResetTimer()
			s.Machine.RunOnAll(func(c *vcpu.CPU) {
				cpu := c.ID()
				s.RCU.ExitIdle(cpu)
				defer s.RCU.EnterIdle(cpu)
				tr := trees[cpu]
				val := []byte{1}
				for i := 0; i < 128; i++ {
					if err := tr.Put(cpu, uint64(i), val); err != nil {
						b.Error(err)
						return
					}
				}
				for i := 0; i < perCPU; i++ {
					if err := tr.Put(cpu, uint64(i%128), val); err != nil {
						b.Error(err)
						return
					}
					s.RCU.QuiescentState(cpu)
				}
			})
			b.StopTimer()
			snap := cache.Counters().Snapshot()
			b.ReportMetric(float64(snap.DeferredFrees)/float64(b.N), "deferred/op")
			for i := range trees {
				for k := uint64(0); k < 128; k++ {
					if _, err := trees[i].Delete(0, k); err != nil {
						b.Fatal(err)
					}
				}
			}
			cache.Drain()
		})
	}
}
