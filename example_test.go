package prudence_test

import (
	"fmt"

	"prudence"
)

// The paper's Listing 2 in miniature: defer-free an object through the
// allocator; it becomes reusable after one grace period.
func Example() {
	sys := prudence.MustNew(prudence.Config{CPUs: 2, MemoryPages: 1024})
	defer sys.Close()

	cache := sys.NewCache("objects", 128)
	obj, _ := cache.Malloc(0)
	copy(obj.Bytes(), "old version")
	cache.FreeDeferred(0, obj) // turnkey deferred free — no RCU callback

	sys.Synchronize() // a grace period elapses
	st := cache.Stats()
	fmt.Println("deferred frees:", st.DeferredFrees)
	cache.Drain()
	fmt.Println("bytes in use after drain:", sys.UsedBytes())
	// Output:
	// deferred frees: 1
	// bytes in use after drain: 0
}

// An RCU-protected map: Put copy-updates (defer-freeing the replaced
// payload), Get reads wait-free inside a read-side critical section.
func ExampleSystem_NewMap() {
	sys := prudence.MustNew(prudence.Config{CPUs: 2, MemoryPages: 1024})
	defer sys.Close()

	cache := sys.NewCache("route", 64)
	table := sys.NewMap(cache, 8)
	_ = table.Put(0, 42, []byte("via eth0"))
	_ = table.Put(0, 42, []byte("via eth1")) // replaces; old payload deferred

	buf := make([]byte, 8)
	n, ok := table.Get(0, 42, buf)
	fmt.Println(ok, string(buf[:n]))
	// Output:
	// true via eth1
}

// The ordered tree defers several objects per update — the paper's
// §3.1 rebalancing pattern.
func ExampleSystem_NewTree() {
	sys := prudence.MustNew(prudence.Config{CPUs: 2, MemoryPages: 2048})
	defer sys.Close()

	cache := sys.NewCache("index", 64)
	idx := sys.NewTree(cache)
	for k := uint64(1); k <= 100; k++ {
		_ = idx.Put(0, k, []byte{byte(k)})
	}
	before := cache.Stats().DeferredFrees
	_ = idx.Put(0, 50, []byte{0xFF}) // one update, several deferred frees
	after := cache.Stats().DeferredFrees
	fmt.Println("multiple deferred objects per update:", after-before > 1)
	// Output:
	// multiple deferred objects per update: true
}

// Epoch-based reclamation as the synchronization mechanism: the same
// allocator and structures, no quiescent states needed.
func ExampleConfig_ebr() {
	sys := prudence.MustNew(prudence.Config{
		CPUs:        2,
		MemoryPages: 1024,
		Reclamation: prudence.EBR,
	})
	defer sys.Close()

	cache := sys.NewCache("epochs", 64)
	obj, _ := cache.Malloc(0)
	cache.FreeDeferred(0, obj)
	sys.Synchronize()
	fmt.Println("grace periods elapsed:", sys.GracePeriods() > 0)
	// Output:
	// grace periods elapsed: true
}
